// Package repro_test holds the benchmark harness that regenerates the
// paper's evaluation (DATE'05, "Fast and Accurate Transaction Level
// Modeling of an Extended AMBA2.0 Bus Architecture"):
//
//   - BenchmarkTable1Accuracy   — Table 1 (TL vs RTL cycle counts per
//     traffic scenario; reported as diff_pct per scenario)
//   - BenchmarkRTLSimulation    — the 0.47 Kcycles/s baseline analog
//   - BenchmarkTLMSimulation    — the 166 Kcycles/s TL analog (353x)
//   - BenchmarkTLMSingleMaster  — the 456 Kcycles/s one-master analog
//   - BenchmarkThreadedTLM      — the method-vs-thread modeling choice
//   - BenchmarkAblation*        — the design-choice ablations of
//     DESIGN.md (write buffer, pipelining, BI, filter set)
//
// Each speed benchmark reports Kcycles/sec as a custom metric so the
// paper's table can be read directly from the benchmark output.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/traffic"
)

// reportKCycles attaches the paper's speed metric to a benchmark.
func reportKCycles(b *testing.B, res core.RunResult) {
	b.Helper()
	if !res.Completed {
		b.Fatalf("run did not complete (%d cycles)", res.Cycles)
	}
	b.ReportMetric(res.KCyclesPerSec(), "Kcycles/sec")
	b.ReportMetric(float64(res.Cycles), "cycles")
}

// BenchmarkTable1Accuracy reruns every Table 1 scenario through both
// models and reports the cycle-count difference per scenario. The
// paper's claim: average difference below 3%.
func BenchmarkTable1Accuracy(b *testing.B) {
	for _, w := range core.Table1Scenarios() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var row core.AccuracyRow
			for i := 0; i < b.N; i++ {
				row = core.Compare(w)
			}
			if !row.Completed {
				b.Fatal("comparison incomplete")
			}
			b.ReportMetric(row.ErrPct, "diff_pct")
			b.ReportMetric(float64(row.RTLCycles), "rtl_cycles")
			b.ReportMetric(float64(row.TLMCycles), "tl_cycles")
		})
	}
}

// BenchmarkRTLSimulation times the pin-accurate model on the speed
// workload: the analog of the paper's 0.47 Kcycles/s RTL row.
func BenchmarkRTLSimulation(b *testing.B) {
	multi, _ := core.SpeedWorkloads(1000)
	var res core.RunResult
	for i := 0; i < b.N; i++ {
		res = core.Run(multi, core.RTL, core.Options{})
	}
	reportKCycles(b, res)
}

// BenchmarkTLMSimulation times the TLM on the identical workload: the
// analog of the paper's 166 Kcycles/s TL row (353x over RTL).
func BenchmarkTLMSimulation(b *testing.B) {
	multi, _ := core.SpeedWorkloads(1000)
	var res core.RunResult
	for i := 0; i < b.N; i++ {
		res = core.Run(multi, core.TLM, core.Options{})
	}
	reportKCycles(b, res)
}

// BenchmarkTLMSingleMaster times the one-master TL configuration the
// paper uses for "pure bus performance" (456 Kcycles/s analog).
func BenchmarkTLMSingleMaster(b *testing.B) {
	_, single := core.SpeedWorkloads(1000)
	var res core.RunResult
	for i := 0; i < b.N; i++ {
		res = core.Run(single, core.TLM, core.Options{})
	}
	reportKCycles(b, res)
}

// BenchmarkThreadedTLM reruns the TLM speed workload with every master
// generator behind a goroutine rendezvous — the thread-based modeling
// style the paper rejected for speed (§4). Compare with
// BenchmarkTLMSimulation to reproduce the method-vs-thread gap.
func BenchmarkThreadedTLM(b *testing.B) {
	multi, _ := core.SpeedWorkloads(1000)
	plain := multi.Gens
	multi.Gens = func() []traffic.Generator {
		gens := plain()
		for i, g := range gens {
			gens[i] = traffic.NewThreaded(g)
		}
		return gens
	}
	var res core.RunResult
	for i := 0; i < b.N; i++ {
		res = core.Run(multi, core.TLM, core.Options{})
	}
	reportKCycles(b, res)
}

// BenchmarkAHBPlusVsPlainAHB runs the same RT-stream-plus-bulk workload
// on the full AHB+ platform and on a plain AMBA2.0 AHB configuration
// (no write buffer, no pipelining, no BI, round-robin arbitration).
// This is the paper's §2 motivation made measurable: AMBA2.0 "cannot
// guarantee master's QoS"; AHB+ bounds the RT master's latency.
func BenchmarkAHBPlusVsPlainAHB(b *testing.B) {
	mkGens := func() []traffic.Generator {
		return []traffic.Generator{
			&traffic.Stream{Base: 0x100000, Beats: 4, Period: 40, Count: 200},
			&traffic.Sequential{Base: 0x000000, Beats: 16, Count: 400},
			&traffic.Sequential{Base: 0x080000, Beats: 16, Count: 400, WriteEvery: 2},
		}
	}
	for _, plus := range []bool{true, false} {
		plus := plus
		name := "ahb+"
		if !plus {
			name = "plain-ahb"
		}
		b.Run(name, func(b *testing.B) {
			var p config.Params
			if plus {
				p = config.Default(3)
			} else {
				p = config.PlainAHB(3)
			}
			p.Masters[0].RealTime = plus // plain AHB has no QoS registers
			if plus {
				p.Masters[0].QoSObjective = 80
			}
			w := core.Workload{Name: name, Params: p, Gens: mkGens}
			var res core.RunResult
			for i := 0; i < b.N; i++ {
				res = core.Run(w, core.TLM, core.Options{})
			}
			if !res.Completed {
				b.Fatal("incomplete")
			}
			b.ReportMetric(float64(res.Stats.Masters[0].LatencyMax), "rtMaxLat_cycles")
			b.ReportMetric(res.Stats.ThroughputBytesPerKCycle(), "bytes_per_kcycle")
		})
	}
}

// BenchmarkAblationWriteBuffer sweeps write-buffer depth on the
// saturating write-heavy workload (ablation A1). The metric to watch
// is the write master's mean latency.
func BenchmarkAblationWriteBuffer(b *testing.B) {
	for _, depth := range core.AblationWriteBufferDepths() {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			w := core.SaturatingWorkload(depth, 300)
			var res core.RunResult
			for i := 0; i < b.N; i++ {
				res = core.Run(w, core.TLM, core.Options{})
			}
			if !res.Completed {
				b.Fatal("incomplete")
			}
			b.ReportMetric(res.Stats.Masters[1].MeanLatency(), "writeLat_cycles")
			b.ReportMetric(float64(res.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationPipelining compares request pipelining on/off on a
// saturating workload (ablation A2); total cycles is the metric.
func BenchmarkAblationPipelining(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		b.Run(fmt.Sprintf("pipelining=%v", on), func(b *testing.B) {
			w := core.SaturatingWorkload(8, 300)
			w.Params.Pipelining = on
			var res core.RunResult
			for i := 0; i < b.N; i++ {
				res = core.Run(w, core.TLM, core.Options{})
			}
			if !res.Completed {
				b.Fatal("incomplete")
			}
			b.ReportMetric(float64(res.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationBankInterleaving compares BI on/off on the
// row-thrashing dual-bank workload (ablation A3).
func BenchmarkAblationBankInterleaving(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		b.Run(fmt.Sprintf("bi=%v", on), func(b *testing.B) {
			w := core.InterleavingWorkload(on, 300)
			var res core.RunResult
			for i := 0; i < b.N; i++ {
				res = core.Run(w, core.TLM, core.Options{})
			}
			if !res.Completed {
				b.Fatal("incomplete")
			}
			b.ReportMetric(float64(res.Cycles), "cycles")
			b.ReportMetric(100*res.Stats.DDR.HitRate(), "rowhit_pct")
		})
	}
}

// BenchmarkAblationPagePolicy compares the DDRC's open-page and
// closed-page row policies on a row-thrashing workload with think time
// (ablation A6): closed page hides precharges in the idle gaps.
func BenchmarkAblationPagePolicy(b *testing.B) {
	for _, closed := range []bool{false, true} {
		closed := closed
		name := "open-page"
		if closed {
			name = "closed-page"
		}
		b.Run(name, func(b *testing.B) {
			w := core.PagePolicyWorkload(closed, 300)
			var res core.RunResult
			for i := 0; i < b.N; i++ {
				res = core.Run(w, core.TLM, core.Options{})
			}
			if !res.Completed {
				b.Fatal("incomplete")
			}
			b.ReportMetric(float64(res.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationBusWidth compares 32-bit and 64-bit bus widths on a
// streaming workload (ablation A7, the §3.7 bus-width parameter).
func BenchmarkAblationBusWidth(b *testing.B) {
	for _, width := range []int{4, 8} {
		width := width
		b.Run(fmt.Sprintf("bus=%dbit", width*8), func(b *testing.B) {
			w := core.BusWidthWorkload(width, 300)
			var res core.RunResult
			for i := 0; i < b.N; i++ {
				res = core.Run(w, core.TLM, core.Options{})
			}
			if !res.Completed {
				b.Fatal("incomplete")
			}
			b.ReportMetric(res.Stats.ThroughputBytesPerKCycle(), "bytes_per_kcycle")
			b.ReportMetric(float64(res.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationFilters compares the full seven-filter AHB+
// arbitration against bare round-robin (ablation A4); the RT master's
// worst-case latency is the metric the QoS machinery exists to bound.
func BenchmarkAblationFilters(b *testing.B) {
	for _, full := range []bool{true, false} {
		full := full
		name := "all-seven"
		if !full {
			name = "round-robin"
		}
		b.Run(name, func(b *testing.B) {
			w := core.AblationWorkload(8, 300)
			if !full {
				w.Params.Filters.Urgency = false
				w.Params.Filters.RealTime = false
				w.Params.Filters.Bandwidth = false
				w.Params.Filters.BankAffinity = false
			}
			var res core.RunResult
			for i := 0; i < b.N; i++ {
				res = core.Run(w, core.TLM, core.Options{})
			}
			if !res.Completed {
				b.Fatal("incomplete")
			}
			b.ReportMetric(float64(res.Stats.Masters[2].LatencyMax), "rtMaxLat_cycles")
			b.ReportMetric(float64(res.Stats.TotalViolations()), "qos_violations")
		})
	}
}

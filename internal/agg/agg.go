// Package agg is the sweep analysis engine: it folds the raw rows of
// a parameter-grid sweep (one simulated variant each) into one
// deterministic analysis document — argmin/argmax over a named
// metric, top-K tables, grouped summaries per axis value, and a
// two-metric Pareto frontier. This is the layer that turns "here are
// 256 simulation results" into "this configuration is best, and here
// is the latency/bandwidth trade-off curve" — the design-space
// exploration the simulator exists to serve.
//
// Determinism is a contract, not an accident: the same set of inputs
// produces the byte-identical document regardless of arrival order
// (sweep rows complete in pool order, shards interleave arbitrarily).
// Every aggregate sorts its inputs first, ties break on the variant's
// spec content hash, and floating-point reductions run in variant
// index order — so a single process and a sharded cluster answering
// the same grid emit the same bytes, which CI asserts.
//
// Honesty is the other contract: an analysis computed from fewer
// results than the grid expands to (a dead shard, failed variants) is
// marked Incomplete with the failures listed — never a silently
// smaller frontier that reads like the whole design space.
package agg

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Objective directions. ObjectiveMin is the default everywhere an
// objective may be omitted.
const (
	ObjectiveMin = "min"
	ObjectiveMax = "max"
)

// Request selects what the analysis computes. It is embedded in the
// service's POST /sweep/analyze wire request, so the field tags are
// part of the HTTP contract.
type Request struct {
	// Metric names the primary metric for best/worst/top/groups.
	// Empty defaults to "cycles" (run models) or "abs_diff_pct"
	// (compare model).
	Metric string `json:"metric,omitempty"`
	// Objective is "min" (default) or "max".
	Objective string `json:"objective,omitempty"`
	// TopK sizes the ranked table (0: omitted).
	TopK int `json:"top_k,omitempty"`
	// Frontier requests a two-metric Pareto frontier.
	Frontier *FrontierSpec `json:"frontier,omitempty"`
}

// FrontierSpec names the two metrics of a Pareto frontier and the
// direction each is optimized in.
type FrontierSpec struct {
	X string `json:"x"`
	Y string `json:"y"`
	// XObjective/YObjective are "min" (default) or "max".
	XObjective string `json:"x_objective,omitempty"`
	YObjective string `json:"y_objective,omitempty"`
}

// Axis is one swept dimension as the analyzer needs it: the parameter
// name and the declared value order, which fixes the group ordering in
// the document.
type Axis struct {
	Param  string
	Values []any
}

// Input is one variant's outcome: identity, the applied axis
// parameters, and either the extracted metric set or the error that
// prevented one. Exactly one of Metrics and Err is meaningful.
type Input struct {
	Index   int
	Name    string
	Hash    string
	Params  map[string]any
	Metrics map[string]float64
	Err     string
}

// PointValue is one variant scored on the primary metric.
type PointValue struct {
	Index  int            `json:"index"`
	Name   string         `json:"name"`
	Hash   string         `json:"hash"`
	Params map[string]any `json:"params,omitempty"`
	Value  float64        `json:"value"`
}

// Failure is one variant that produced no result.
type Failure struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Hash  string `json:"hash"`
	Error string `json:"error"`
}

// GroupValue summarizes the variants sharing one axis value. Min, Max
// and Mean are omitted when no variant of the cell succeeded — a cell
// with Count 0 carries no invented numbers.
type GroupValue struct {
	Value any      `json:"value"`
	Count int      `json:"count"`
	Min   *float64 `json:"min,omitempty"`
	Max   *float64 `json:"max,omitempty"`
	Mean  *float64 `json:"mean,omitempty"`
	// Best is the spec hash of the cell's best variant per the
	// request's objective.
	Best string `json:"best,omitempty"`
}

// Group is one axis's summary table, cells in declared value order.
type Group struct {
	Param  string       `json:"param"`
	Values []GroupValue `json:"values"`
}

// FrontierPoint is one non-dominated variant.
type FrontierPoint struct {
	Index  int            `json:"index"`
	Name   string         `json:"name"`
	Hash   string         `json:"hash"`
	Params map[string]any `json:"params,omitempty"`
	X      float64        `json:"x"`
	Y      float64        `json:"y"`
}

// Frontier is the Pareto-optimal set over two metrics, points ordered
// along the X objective (ties by Y, then hash).
type Frontier struct {
	X          string          `json:"x"`
	Y          string          `json:"y"`
	XObjective string          `json:"x_objective"`
	YObjective string          `json:"y_objective"`
	Points     []FrontierPoint `json:"points"`
}

// Analysis is the complete document. Variants is the grid's expanded
// size, Analyzed how many produced a result; Incomplete is true
// whenever Analyzed < Variants — the explicit signal that Best, Top,
// Groups and Frontier describe a SUBSET of the design space (dead
// shard, failed runs) and must not be read as the full answer.
type Analysis struct {
	Variants   int          `json:"variants"`
	Analyzed   int          `json:"analyzed"`
	Incomplete bool         `json:"incomplete"`
	Failed     []Failure    `json:"failed,omitempty"`
	Metric     string       `json:"metric"`
	Objective  string       `json:"objective"`
	Best       *PointValue  `json:"best,omitempty"`
	Worst      *PointValue  `json:"worst,omitempty"`
	Top        []PointValue `json:"top,omitempty"`
	Groups     []Group      `json:"groups,omitempty"`
	Frontier   *Frontier    `json:"frontier,omitempty"`
}

// --- metric extraction ---

// Scalar run metrics, valid for the "tl" and "rtl" models.
var runScalarMetrics = []string{
	"cycles", "violations", "utilization", "throughput", "total_txns",
	"grants", "arb_rounds", "wb_full_stalls", "wb_posted", "ddr_hit_rate",
}

// Per-master run metric prefixes: "<prefix>/<port>" (e.g.
// "mean_latency/m0", "bandwidth/m2").
var runMasterMetrics = []string{
	"mean_latency", "max_latency", "min_latency", "mean_wait",
	"txns", "bytes", "bandwidth",
}

// Compare-model metrics.
var compareMetrics = []string{"rtl_cycles", "tl_cycles", "diff_pct", "abs_diff_pct"}

// DefaultMetric is the primary metric used when a request names none.
func DefaultMetric(compare bool) string {
	if compare {
		return "abs_diff_pct"
	}
	return "cycles"
}

// ValidateMetric rejects metric names the given model cannot produce,
// so a bad request fails before any simulation is paid for. Per-master
// metrics are validated by prefix here; whether the named port exists
// is checked against the actual results in Analyze.
func ValidateMetric(metric string, compare bool) error {
	if compare {
		for _, m := range compareMetrics {
			if metric == m {
				return nil
			}
		}
		return fmt.Errorf("agg: unknown compare metric %q (want one of %s)",
			metric, strings.Join(compareMetrics, ", "))
	}
	for _, m := range runScalarMetrics {
		if metric == m {
			return nil
		}
	}
	if base, port, found := strings.Cut(metric, "/"); found && port != "" {
		for _, m := range runMasterMetrics {
			if base == m {
				return nil
			}
		}
	}
	return fmt.Errorf("agg: unknown metric %q (want one of %s, or <%s>/<port>)",
		metric, strings.Join(runScalarMetrics, ", "), strings.Join(runMasterMetrics, "|"))
}

// Validate checks the whole analysis request against the model before
// any grid cost is paid.
func (r Request) Validate(compare bool) error {
	if _, err := objectiveDir(r.Objective); err != nil {
		return err
	}
	if r.TopK < 0 {
		return fmt.Errorf("agg: top_k %d negative", r.TopK)
	}
	metric := r.Metric
	if metric == "" {
		metric = DefaultMetric(compare)
	}
	if err := ValidateMetric(metric, compare); err != nil {
		return err
	}
	if f := r.Frontier; f != nil {
		if f.X == "" || f.Y == "" {
			return fmt.Errorf("agg: frontier needs both x and y metrics")
		}
		if err := ValidateMetric(f.X, compare); err != nil {
			return err
		}
		if err := ValidateMetric(f.Y, compare); err != nil {
			return err
		}
		if _, err := objectiveDir(f.XObjective); err != nil {
			return err
		}
		if _, err := objectiveDir(f.YObjective); err != nil {
			return err
		}
	}
	return nil
}

// objectiveDir normalizes an objective string to its sign: +1
// minimizes, -1 maximizes (values are negated so every comparison
// below minimizes).
func objectiveDir(s string) (float64, error) {
	switch s {
	case "", ObjectiveMin:
		return 1, nil
	case ObjectiveMax:
		return -1, nil
	}
	return 0, fmt.Errorf("agg: unknown objective %q (want %s or %s)", s, ObjectiveMin, ObjectiveMax)
}

// objectiveName normalizes an objective string for the document.
func objectiveName(s string) string {
	if s == ObjectiveMax {
		return ObjectiveMax
	}
	return ObjectiveMin
}

// RunMetrics derives the named metric set from one /run result's
// observable fields. cmd/sweep feeds it core.RunResult fields
// directly; the HTTP path decodes the response body first
// (MetricsFromResult) — both produce the same names and values, so a
// CLI analysis and a service analysis of the same grid agree.
func RunMetrics(cycles, violations uint64, bus *stats.Bus) map[string]float64 {
	m := map[string]float64{
		"cycles":     float64(cycles),
		"violations": float64(violations),
	}
	if bus == nil {
		return m
	}
	m["utilization"] = bus.Utilization()
	m["throughput"] = bus.ThroughputBytesPerKCycle()
	m["total_txns"] = float64(bus.TotalTxns())
	m["grants"] = float64(bus.Grants)
	m["arb_rounds"] = float64(bus.ArbRounds)
	m["wb_full_stalls"] = float64(bus.WBFullStalls)
	m["wb_posted"] = float64(bus.WBPosted)
	m["ddr_hit_rate"] = bus.DDR.HitRate()
	for i := range bus.Masters {
		port := &bus.Masters[i]
		m["mean_latency/"+port.Name] = port.MeanLatency()
		m["max_latency/"+port.Name] = float64(port.LatencyMax)
		m["min_latency/"+port.Name] = float64(port.LatencyMin)
		m["mean_wait/"+port.Name] = port.MeanWait()
		m["txns/"+port.Name] = float64(port.Txns)
		m["bytes/"+port.Name] = float64(port.Bytes)
		if bus.Cycles > 0 {
			m["bandwidth/"+port.Name] = float64(port.Bytes) * 1000 / float64(bus.Cycles)
		} else {
			m["bandwidth/"+port.Name] = 0
		}
	}
	return m
}

// CompareMetrics derives the compare-model metric set from one
// accuracy row.
func CompareMetrics(rtlCycles, tlCycles uint64, diffPct float64) map[string]float64 {
	return map[string]float64{
		"rtl_cycles":   float64(rtlCycles),
		"tl_cycles":    float64(tlCycles),
		"diff_pct":     diffPct,
		"abs_diff_pct": math.Abs(diffPct),
	}
}

// resultBody is the union of the /run and /compare response fields the
// analyzer reads. Stats decodes through the same stats.Bus shape the
// service marshals, so per-master names round-trip exactly.
type resultBody struct {
	Cycles     uint64     `json:"cycles"`
	Violations uint64     `json:"violations"`
	Stats      *stats.Bus `json:"stats"`
	RTLCycles  uint64     `json:"rtl_cycles"`
	TLCycles   uint64     `json:"tl_cycles"`
	DiffPct    float64    `json:"diff_pct"`
}

// MetricsFromResult extracts the metric set from a raw /run or
// /compare response body.
func MetricsFromResult(compare bool, result []byte) (map[string]float64, error) {
	var b resultBody
	if err := json.Unmarshal(result, &b); err != nil {
		return nil, fmt.Errorf("agg: parsing result: %w", err)
	}
	if compare {
		return CompareMetrics(b.RTLCycles, b.TLCycles, b.DiffPct), nil
	}
	return RunMetrics(b.Cycles, b.Violations, b.Stats), nil
}

// --- analysis ---

// Analyze folds the inputs into the document. total is the expanded
// grid size — the number of variants the caller TRIED to resolve —
// which is what Incomplete is judged against: inputs that never
// arrived (cancelled, lost) count as missing exactly like explicit
// failures. The document is a pure, order-independent function of
// (req, axes, total, set-of-inputs).
func Analyze(req Request, compare bool, axes []Axis, total int, inputs []Input) (*Analysis, error) {
	if err := req.Validate(compare); err != nil {
		return nil, err
	}
	metric := req.Metric
	if metric == "" {
		metric = DefaultMetric(compare)
	}
	dir, _ := objectiveDir(req.Objective)

	// Split outcomes and fix the processing order: variant index is
	// unique within a grid, so sorting on it makes every downstream
	// reduction independent of arrival order.
	var ok []Input
	var failed []Failure
	for _, in := range inputs {
		if in.Err != "" {
			failed = append(failed, Failure{Index: in.Index, Name: in.Name, Hash: in.Hash, Error: in.Err})
			continue
		}
		ok = append(ok, in)
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i].Index < ok[j].Index })
	sort.Slice(failed, func(i, j int) bool { return failed[i].Index < failed[j].Index })

	a := &Analysis{
		Variants:   total,
		Analyzed:   len(ok),
		Incomplete: len(ok) < total,
		Failed:     failed,
		Metric:     metric,
		Objective:  objectiveName(req.Objective),
	}

	vals, err := metricValues(ok, metric)
	if err != nil {
		return nil, err
	}

	// Rank on the primary metric: objective direction first, spec hash
	// as the stable tie-break, so equal-valued variants order the same
	// way no matter which shard answered first.
	ranked := make([]PointValue, len(ok))
	for i, in := range ok {
		ranked[i] = PointValue{Index: in.Index, Name: in.Name, Hash: in.Hash, Params: in.Params, Value: vals[i]}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Value != ranked[j].Value {
			return dir*ranked[i].Value < dir*ranked[j].Value
		}
		return ranked[i].Hash < ranked[j].Hash
	})
	if len(ranked) > 0 {
		best, worst := ranked[0], ranked[len(ranked)-1]
		a.Best, a.Worst = &best, &worst
	}
	if req.TopK > 0 {
		k := req.TopK
		if k > len(ranked) {
			k = len(ranked)
		}
		a.Top = ranked[:k:k]
	}

	a.Groups = groupSummaries(axes, ok, vals, dir)

	if req.Frontier != nil {
		f, err := frontier(*req.Frontier, ok)
		if err != nil {
			return nil, err
		}
		a.Frontier = f
	}
	return a, nil
}

// metricValues reads one metric across the successful inputs; a
// variant whose result lacks it (a per-master metric naming a port the
// workload doesn't have) fails the whole analysis rather than being
// silently skewed by partial coverage.
func metricValues(inputs []Input, metric string) ([]float64, error) {
	out := make([]float64, len(inputs))
	for i, in := range inputs {
		v, ok := in.Metrics[metric]
		if !ok {
			return nil, fmt.Errorf("agg: metric %q not present in result for variant %s", metric, in.Name)
		}
		out[i] = v
	}
	return out, nil
}

// groupSummaries builds one summary table per axis, cells in the
// axis's declared value order. Membership matches on the canonical
// string form of the applied parameter value, which is identical for
// the wire (float64) and native (int) representations of the same
// number.
func groupSummaries(axes []Axis, ok []Input, vals []float64, dir float64) []Group {
	if len(axes) == 0 {
		return nil
	}
	groups := make([]Group, 0, len(axes))
	for _, ax := range axes {
		g := Group{Param: ax.Param}
		for _, av := range ax.Values {
			want := canonValue(av)
			cell := GroupValue{Value: av}
			var sum float64
			bestHash := ""
			var bestVal float64
			for i, in := range ok { // index order: deterministic float reduction
				if canonValue(in.Params[ax.Param]) != want {
					continue
				}
				v := vals[i]
				if cell.Count == 0 {
					cell.Min, cell.Max = ptr(v), ptr(v)
					bestHash, bestVal = in.Hash, v
				} else {
					if v < *cell.Min {
						cell.Min = ptr(v)
					}
					if v > *cell.Max {
						cell.Max = ptr(v)
					}
					if dir*v < dir*bestVal || (v == bestVal && in.Hash < bestHash) {
						bestHash, bestVal = in.Hash, v
					}
				}
				sum += v
				cell.Count++
			}
			if cell.Count > 0 {
				cell.Mean = ptr(sum / float64(cell.Count))
				cell.Best = bestHash
			}
			g.Values = append(g.Values, cell)
		}
		groups = append(groups, g)
	}
	return groups
}

// canonValue is the group-matching form of an axis/parameter value:
// fmt's default rendering, under which float64(8) and int(8) — the
// wire and native forms of the same axis value — collapse.
func canonValue(v any) string { return fmt.Sprintf("%v", v) }

func ptr(v float64) *float64 { return &v }

// frontier computes the two-metric Pareto-optimal set. Internally both
// axes are sign-normalized to "minimize"; a point is dominated when
// another is no worse on both metrics and strictly better on at least
// one. Exact duplicates of a frontier point all survive (neither
// dominates the other), so two configurations reaching the same
// optimal trade-off are both reported.
func frontier(spec FrontierSpec, ok []Input) (*Frontier, error) {
	xs, err := metricValues(ok, spec.X)
	if err != nil {
		return nil, err
	}
	ys, err := metricValues(ok, spec.Y)
	if err != nil {
		return nil, err
	}
	xdir, _ := objectiveDir(spec.XObjective)
	ydir, _ := objectiveDir(spec.YObjective)

	type cand struct {
		p      FrontierPoint
		nx, ny float64
	}
	cands := make([]cand, len(ok))
	for i, in := range ok {
		cands[i] = cand{
			p:  FrontierPoint{Index: in.Index, Name: in.Name, Hash: in.Hash, Params: in.Params, X: xs[i], Y: ys[i]},
			nx: xdir * xs[i],
			ny: ydir * ys[i],
		}
	}
	// Sort along the normalized X (ties: Y, then hash), then sweep:
	// a point survives iff its Y strictly improves on everything with
	// a no-worse X — or exactly duplicates the point that did.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].nx != cands[j].nx {
			return cands[i].nx < cands[j].nx
		}
		if cands[i].ny != cands[j].ny {
			return cands[i].ny < cands[j].ny
		}
		return cands[i].p.Hash < cands[j].p.Hash
	})
	f := &Frontier{
		X: spec.X, Y: spec.Y,
		XObjective: objectiveName(spec.XObjective),
		YObjective: objectiveName(spec.YObjective),
		Points:     []FrontierPoint{},
	}
	bestNy, bestNx := math.Inf(1), math.Inf(1)
	haveBest := false
	for _, c := range cands {
		switch {
		case !haveBest || c.ny < bestNy:
			f.Points = append(f.Points, c.p)
			bestNy, bestNx, haveBest = c.ny, c.nx, true
		case c.ny == bestNy && c.nx == bestNx:
			f.Points = append(f.Points, c.p) // exact duplicate of a frontier point
		}
	}
	return f, nil
}

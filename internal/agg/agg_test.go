package agg

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/stats"
)

// point builds one successful input with a single-metric set.
func point(index int, hash string, metrics map[string]float64) Input {
	return Input{
		Index:   index,
		Name:    "v" + hash,
		Hash:    hash,
		Params:  map[string]any{"depth": float64(index)},
		Metrics: metrics,
	}
}

func mustAnalyze(t *testing.T, req Request, compare bool, axes []Axis, total int, inputs []Input) *Analysis {
	t.Helper()
	a, err := Analyze(req, compare, axes, total, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestArgminTieBreaksOnHashDeterministically(t *testing.T) {
	// Three variants tie on the metric; two more are worse. Whatever
	// order the inputs arrive in — completion order is pool/shard
	// scheduling, i.e. effectively random — the winner must be the
	// tied variant with the smallest spec hash, and the whole document
	// must be byte-identical.
	inputs := []Input{
		point(0, "cccc", map[string]float64{"cycles": 10}),
		point(1, "aaaa", map[string]float64{"cycles": 10}),
		point(2, "bbbb", map[string]float64{"cycles": 10}),
		point(3, "dddd", map[string]float64{"cycles": 30}),
		point(4, "eeee", map[string]float64{"cycles": 20}),
	}
	req := Request{Metric: "cycles", TopK: 3}

	var want []byte
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]Input(nil), inputs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a := mustAnalyze(t, req, false, nil, len(inputs), shuffled)
		if a.Best == nil || a.Best.Hash != "aaaa" {
			t.Fatalf("trial %d: best %+v, want hash aaaa", trial, a.Best)
		}
		if a.Worst == nil || a.Worst.Hash != "dddd" {
			t.Fatalf("trial %d: worst %+v", trial, a.Worst)
		}
		if len(a.Top) != 3 || a.Top[0].Hash != "aaaa" || a.Top[1].Hash != "bbbb" || a.Top[2].Hash != "cccc" {
			t.Fatalf("trial %d: top %+v", trial, a.Top)
		}
		got, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(want, got) {
			t.Fatalf("trial %d: document differs across input orders:\n%s\n%s", trial, want, got)
		}
	}
}

func TestArgmaxObjective(t *testing.T) {
	inputs := []Input{
		point(0, "aa", map[string]float64{"throughput": 5}),
		point(1, "bb", map[string]float64{"throughput": 9}),
		point(2, "cc", map[string]float64{"throughput": 7}),
	}
	a := mustAnalyze(t, Request{Metric: "throughput", Objective: ObjectiveMax}, false, nil, 3, inputs)
	if a.Best.Hash != "bb" || a.Best.Value != 9 {
		t.Fatalf("best %+v", a.Best)
	}
	if a.Worst.Hash != "aa" {
		t.Fatalf("worst %+v", a.Worst)
	}
	if a.Objective != ObjectiveMax {
		t.Fatalf("objective %q", a.Objective)
	}
}

func TestParetoFrontierHandChecked(t *testing.T) {
	// Eight points, both metrics minimized. Hand-derived frontier:
	// (1,9) (2,7) (4,4) (6,3) (8,1). The points (3,8), (5,6) and (7,5)
	// are each dominated — e.g. (3,8) by (2,7).
	xy := [][2]float64{
		{1, 9}, {2, 7}, {3, 8}, {4, 4}, {5, 6}, {6, 3}, {7, 5}, {8, 1},
	}
	hashes := []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	var inputs []Input
	for i, p := range xy {
		inputs = append(inputs, point(i, hashes[i], map[string]float64{"cycles": p[0], "violations": p[1]}))
	}
	req := Request{Metric: "cycles", Frontier: &FrontierSpec{X: "cycles", Y: "violations"}}
	a := mustAnalyze(t, req, false, nil, len(inputs), inputs)
	if a.Frontier == nil {
		t.Fatal("frontier missing")
	}
	var got [][2]float64
	for _, p := range a.Frontier.Points {
		got = append(got, [2]float64{p.X, p.Y})
	}
	want := [][2]float64{{1, 9}, {2, 7}, {4, 4}, {6, 3}, {8, 1}}
	if len(got) != len(want) {
		t.Fatalf("frontier %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frontier point %d: %v, want %v (full %v)", i, got[i], want[i], got)
		}
	}
}

func TestParetoFrontierMaxObjectiveAndDuplicates(t *testing.T) {
	// X minimized, Y maximized (cycles vs bandwidth). (2,8) appears
	// twice — identical trade-offs are both reported, neither
	// dominates the other — and (3,8) is dominated by them (same Y,
	// worse X).
	inputs := []Input{
		point(0, "h0", map[string]float64{"cycles": 1, "throughput": 4}),
		point(1, "h1", map[string]float64{"cycles": 2, "throughput": 8}),
		point(2, "h2", map[string]float64{"cycles": 2, "throughput": 8}),
		point(3, "h3", map[string]float64{"cycles": 3, "throughput": 8}),
		point(4, "h4", map[string]float64{"cycles": 4, "throughput": 9}),
		point(5, "h5", map[string]float64{"cycles": 5, "throughput": 2}),
	}
	req := Request{Metric: "cycles", Frontier: &FrontierSpec{
		X: "cycles", Y: "throughput", YObjective: ObjectiveMax,
	}}
	a := mustAnalyze(t, req, false, nil, len(inputs), inputs)
	var hashes []string
	for _, p := range a.Frontier.Points {
		hashes = append(hashes, p.Hash)
	}
	want := []string{"h0", "h1", "h2", "h4"}
	if strings.Join(hashes, ",") != strings.Join(want, ",") {
		t.Fatalf("frontier hashes %v, want %v", hashes, want)
	}
}

func TestIncompleteIsTruthful(t *testing.T) {
	// Two successes, one explicit failure, one variant that never
	// produced a row at all (total 4): the analysis must say analyzed
	// 2 of 4, incomplete, and list the explicit failure — the
	// aggregates describe a subset and say so.
	inputs := []Input{
		point(0, "aa", map[string]float64{"cycles": 5}),
		{Index: 1, Name: "dead", Hash: "bb", Err: "shard 1 unreachable"},
		point(2, "cc", map[string]float64{"cycles": 3}),
	}
	a := mustAnalyze(t, Request{Metric: "cycles", Frontier: &FrontierSpec{X: "cycles", Y: "cycles"}}, false, nil, 4, inputs)
	if !a.Incomplete {
		t.Fatal("analysis of a partial grid not marked incomplete")
	}
	if a.Variants != 4 || a.Analyzed != 2 {
		t.Fatalf("variants/analyzed %d/%d", a.Variants, a.Analyzed)
	}
	if len(a.Failed) != 1 || a.Failed[0].Hash != "bb" || a.Failed[0].Error == "" {
		t.Fatalf("failed %+v", a.Failed)
	}
	// The frontier still exists — over the survivors — but the
	// document-level incomplete flag governs its reading.
	if a.Frontier == nil || len(a.Frontier.Points) == 0 {
		t.Fatal("survivor frontier missing")
	}
	if a.Best == nil || a.Best.Hash != "cc" {
		t.Fatalf("best %+v", a.Best)
	}

	// All-failed: no best/worst, still a complete truthful skeleton.
	allDead := []Input{{Index: 0, Name: "d0", Hash: "aa", Err: "x"}}
	a2 := mustAnalyze(t, Request{Metric: "cycles"}, false, nil, 2, allDead)
	if !a2.Incomplete || a2.Analyzed != 0 || a2.Best != nil || a2.Worst != nil {
		t.Fatalf("all-failed analysis %+v", a2)
	}
}

func TestGroupSummaries(t *testing.T) {
	// One axis, two values; wire-form float64 axis values must match
	// the float64 params of the variants.
	axes := []Axis{{Param: "write_buffer_depth", Values: []any{float64(0), float64(8), float64(99)}}}
	in := func(index int, hash string, depth, cycles float64) Input {
		return Input{
			Index: index, Name: hash, Hash: hash,
			Params:  map[string]any{"write_buffer_depth": depth},
			Metrics: map[string]float64{"cycles": cycles},
		}
	}
	inputs := []Input{
		in(0, "aa", 0, 10),
		in(1, "bb", 0, 30),
		in(2, "cc", 8, 20),
	}
	a := mustAnalyze(t, Request{Metric: "cycles"}, false, axes, 3, inputs)
	if len(a.Groups) != 1 || a.Groups[0].Param != "write_buffer_depth" || len(a.Groups[0].Values) != 3 {
		t.Fatalf("groups %+v", a.Groups)
	}
	g0 := a.Groups[0].Values[0]
	if g0.Count != 2 || *g0.Min != 10 || *g0.Max != 30 || *g0.Mean != 20 || g0.Best != "aa" {
		t.Fatalf("depth-0 cell %+v", g0)
	}
	g1 := a.Groups[0].Values[1]
	if g1.Count != 1 || *g1.Mean != 20 || g1.Best != "cc" {
		t.Fatalf("depth-8 cell %+v", g1)
	}
	// The empty cell (no variant at depth 99) carries no invented
	// statistics.
	g2 := a.Groups[0].Values[2]
	if g2.Count != 0 || g2.Min != nil || g2.Mean != nil || g2.Best != "" {
		t.Fatalf("empty cell %+v", g2)
	}
}

func TestMetricsFromRunResult(t *testing.T) {
	bus := stats.NewBus(2)
	bus.Cycles = 1000
	bus.BusyBeats = 400
	bus.Masters[0].RecordTxn(false, 4, 16, 2, 10, false)
	bus.Masters[1].RecordTxn(true, 8, 32, 4, 20, true)
	body, err := json.Marshal(struct {
		Cycles     uint64     `json:"cycles"`
		Violations uint64     `json:"violations"`
		Stats      *stats.Bus `json:"stats"`
	}{Cycles: 1000, Violations: 1, Stats: bus})
	if err != nil {
		t.Fatal(err)
	}
	m, err := MetricsFromResult(false, body)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"cycles":          1000,
		"violations":      1,
		"utilization":     0.4,
		"throughput":      48, // (16+32)*1000/1000
		"total_txns":      2,
		"mean_latency/m0": 10,
		"max_latency/m1":  20,
		"bytes/m1":        32,
		"bandwidth/m0":    16,
	}
	for name, want := range checks {
		if got, ok := m[name]; !ok || got != want {
			t.Errorf("metric %s = %v (present %v), want %v", name, got, ok, want)
		}
	}

	cm, err := MetricsFromResult(true, []byte(`{"rtl_cycles":100,"tl_cycles":98,"diff_pct":-2}`))
	if err != nil {
		t.Fatal(err)
	}
	if cm["rtl_cycles"] != 100 || cm["tl_cycles"] != 98 || cm["diff_pct"] != -2 || cm["abs_diff_pct"] != 2 {
		t.Fatalf("compare metrics %v", cm)
	}
}

func TestValidateRejectsBadRequests(t *testing.T) {
	cases := []struct {
		name    string
		req     Request
		compare bool
		want    string
	}{
		{"unknown metric", Request{Metric: "warp"}, false, "unknown metric"},
		{"compare metric on run", Request{Metric: "rtl_cycles"}, false, "unknown metric"},
		{"run metric on compare", Request{Metric: "cycles"}, true, "unknown compare metric"},
		{"bad objective", Request{Metric: "cycles", Objective: "best"}, false, "unknown objective"},
		{"negative topk", Request{Metric: "cycles", TopK: -1}, false, "negative"},
		{"half frontier", Request{Metric: "cycles", Frontier: &FrontierSpec{X: "cycles"}}, false, "both x and y"},
		{"bad frontier metric", Request{Metric: "cycles", Frontier: &FrontierSpec{X: "cycles", Y: "warp"}}, false, "unknown metric"},
		{"bad frontier objective", Request{Metric: "cycles", Frontier: &FrontierSpec{X: "cycles", Y: "cycles", XObjective: "down"}}, false, "unknown objective"},
		{"bad master metric shape", Request{Metric: "mean_latency/"}, false, "unknown metric"},
	}
	for _, c := range cases {
		err := c.req.Validate(c.compare)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want substring %q", c.name, err, c.want)
		}
	}
	// Defaults and per-master forms pass.
	for _, req := range []Request{
		{}, {Metric: "mean_latency/m3"}, {Metric: "bandwidth/wb"},
		{Metric: "abs_diff_pct"},
	} {
		compare := req.Metric == "abs_diff_pct"
		if err := req.Validate(compare); err != nil {
			t.Errorf("valid request %+v rejected: %v", req, err)
		}
	}
}

func TestMissingMetricInResultsFailsLoudly(t *testing.T) {
	inputs := []Input{point(0, "aa", map[string]float64{"cycles": 1})}
	_, err := Analyze(Request{Metric: "mean_latency/m9"}, false, nil, 1, inputs)
	if err == nil || !strings.Contains(err.Error(), "not present") {
		t.Fatalf("err %v", err)
	}
}

package config

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arb"
	"repro/internal/qos"
)

func TestDefaultValidates(t *testing.T) {
	p := Default(3)
	if err := p.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	if len(p.Masters) != 3 {
		t.Fatalf("masters %d", len(p.Masters))
	}
	if !p.Pipelining || !p.BIEnabled || p.WriteBufferDepth == 0 {
		t.Fatal("default should enable the AHB+ features")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"bus width", func(p *Params) { p.BusBytes = 3 }},
		{"no masters", func(p *Params) { p.Masters = nil }},
		{"negative wb", func(p *Params) { p.WriteBufferDepth = -1 }},
		{"rt without objective", func(p *Params) { p.Masters[0].RealTime = true; p.Masters[0].QoSObjective = 0 }},
		{"bad quota", func(p *Params) { p.Masters[0].BandwidthQuota = 2 }},
		{"bad ddr", func(p *Params) { p.DDR.TRCD = 0 }},
	}
	for _, c := range cases {
		p := Default(2)
		c.mut(&p)
		if p.Validate() == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
}

func TestMasterCfgReg(t *testing.T) {
	m := MasterCfg{RealTime: true, QoSObjective: 120, BandwidthQuota: 0.25}
	r := m.Reg()
	if r.Class != qos.RT || r.Objective != 120 || r.Quota != 0.25 {
		t.Fatalf("reg %+v", r)
	}
	if (MasterCfg{}).Reg().Class != qos.NRT {
		t.Fatal("default class should be NRT")
	}
}

func TestQoSRegs(t *testing.T) {
	p := Default(2)
	p.Masters[1].RealTime = true
	p.Masters[1].QoSObjective = 90
	regs := p.QoSRegs()
	if len(regs) != 2 || regs[1].Class != qos.RT || regs[1].Objective != 90 {
		t.Fatalf("regs %+v", regs)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "platform.json")
	p := Default(2)
	p.Masters[0].Name = "video"
	p.Masters[0].RealTime = true
	p.Masters[0].QoSObjective = 150
	p.WriteBufferDepth = 16
	p.Filters.Bandwidth = false
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Masters[0].Name != "video" || !got.Masters[0].RealTime {
		t.Fatalf("master lost in round trip: %+v", got.Masters[0])
	}
	if got.WriteBufferDepth != 16 || got.Filters.Bandwidth {
		t.Fatalf("params lost in round trip: %+v", got)
	}
	if got.DDR != p.DDR {
		t.Fatalf("ddr timing lost: %+v vs %+v", got.DDR, p.DDR)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("bad json should error")
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"bus_bytes":3,"masters":[{"name":"a"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(invalid); err == nil {
		t.Fatal("invalid config should fail validation")
	}
}

func TestPlainAHBPreset(t *testing.T) {
	p := PlainAHB(3)
	if err := p.Validate(); err != nil {
		t.Fatalf("plain AHB invalid: %v", err)
	}
	if p.WriteBufferDepth != 0 || p.Pipelining || p.BIEnabled {
		t.Fatalf("plain AHB should disable the AHB+ extensions: %+v", p)
	}
	if p.Filters != (arb.Enabled{}) {
		t.Fatalf("plain AHB should disable all filters: %+v", p.Filters)
	}
}

func TestSRAMCfgContains(t *testing.T) {
	s := SRAMCfg{Enabled: true, Base: 0x1000, Size: 0x100}
	cases := []struct {
		addr uint32
		want bool
	}{
		{0x0FFF, false}, {0x1000, true}, {0x10FF, true}, {0x1100, false},
	}
	for _, c := range cases {
		if s.Contains(c.addr) != c.want {
			t.Errorf("Contains(%#x) = %v, want %v", c.addr, !c.want, c.want)
		}
	}
	s.Enabled = false
	if s.Contains(0x1000) {
		t.Fatal("disabled SRAM should contain nothing")
	}
}

func TestValidateSRAM(t *testing.T) {
	p := Default(1)
	p.SRAM = SRAMCfg{Enabled: true, Base: uint32(p.AddrMap.Capacity()), Size: 0}
	if p.Validate() == nil {
		t.Fatal("zero-size SRAM accepted")
	}
	p.SRAM = SRAMCfg{Enabled: true, Base: 0x1000, Size: 0x100}
	if p.Validate() == nil {
		t.Fatal("SRAM overlapping DDR accepted")
	}
	p.SRAM = SRAMCfg{Enabled: true, Base: uint32(p.AddrMap.Capacity()), Size: 1 << 16}
	if err := p.Validate(); err != nil {
		t.Fatalf("legal SRAM rejected: %v", err)
	}
}

func TestSRAMAndClosedPageRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	p := Default(1)
	p.ClosedPage = true
	p.SRAM = SRAMCfg{Enabled: true, Base: uint32(p.AddrMap.Capacity()), Size: 4096, WaitStates: 3}
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ClosedPage || !got.SRAM.Enabled || got.SRAM.WaitStates != 3 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
}

func TestMarshalIndentStable(t *testing.T) {
	p := Default(1)
	a, err := p.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("marshal not deterministic")
	}
}

func TestSaveToUnwritablePath(t *testing.T) {
	p := Default(1)
	if err := p.Save("/proc/definitely/not/writable.json"); err == nil {
		t.Fatal("expected error")
	}
}

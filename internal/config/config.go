// Package config collects the platform parameters of the AHB+ model.
// The paper emphasizes parameterization for flexibility and reuse
// (§3.7): bus width, write-buffer depth and on/off, arbitration
// algorithm on/off, real-time/non-real-time master type, and QoS value
// are all runtime configuration here, with JSON round-tripping for
// experiment definitions.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/arb"
	"repro/internal/check"
	"repro/internal/ddr"
	"repro/internal/qos"
	"repro/internal/sim"
)

// MasterCfg is the per-master platform configuration.
type MasterCfg struct {
	// Name labels the master in reports.
	Name string `json:"name"`
	// RealTime selects the RT service class.
	RealTime bool `json:"real_time"`
	// QoSObjective is the latency objective in cycles (required for RT).
	QoSObjective uint64 `json:"qos_objective,omitempty"`
	// BandwidthQuota is the reserved bandwidth share in [0,1].
	BandwidthQuota float64 `json:"bandwidth_quota,omitempty"`
}

// Reg converts the master configuration to its QoS register value.
func (m MasterCfg) Reg() qos.Reg {
	r := qos.Reg{Objective: sim.Cycle(m.QoSObjective), Quota: m.BandwidthQuota}
	if m.RealTime {
		r.Class = qos.RT
	}
	return r
}

// SRAMCfg describes an optional on-chip SRAM slave mapped beside the
// DDR region; it gives the platform the multi-slave topology
// flexibility the paper lists among communication-architecture model
// requirements (§1).
type SRAMCfg struct {
	// Enabled turns the slave on.
	Enabled bool `json:"enabled"`
	// Base is the region base address (must lie above the DDR region).
	Base uint32 `json:"base"`
	// Size is the region size in bytes.
	Size uint32 `json:"size"`
	// WaitStates is the fixed access latency before the first beat.
	WaitStates uint64 `json:"wait_states"`
}

// Contains reports whether addr falls in the SRAM region.
func (s SRAMCfg) Contains(addr uint32) bool {
	return s.Enabled && addr >= s.Base && addr-s.Base < s.Size
}

// Params is the full platform configuration shared by the RTL model and
// the TLM.
type Params struct {
	// BusBytes is the data bus width in bytes (4 = AHB 32-bit).
	BusBytes int `json:"bus_bytes"`
	// Masters configures the master ports.
	Masters []MasterCfg `json:"masters"`
	// WriteBufferDepth is the write-buffer capacity in transactions;
	// 0 disables the buffer.
	WriteBufferDepth int `json:"write_buffer_depth"`
	// Pipelining enables AHB+ request pipelining.
	Pipelining bool `json:"pipelining"`
	// BIEnabled enables the BI side-band interface (bank interleaving
	// hints, permission, idle-bank reports).
	BIEnabled bool `json:"bi_enabled"`
	// BILatency is the BI pipeline latency in cycles.
	BILatency uint64 `json:"bi_latency"`
	// Filters selects the active arbitration filters.
	Filters arb.Enabled `json:"filters"`
	// UrgencyThreshold is the QoS slack below which requests are urgent.
	UrgencyThreshold uint64 `json:"urgency_threshold"`
	// DDR is the memory timing set.
	DDR ddr.Timing `json:"ddr"`
	// AddrMap is the DDR address decomposition.
	AddrMap ddr.AddrMap `json:"addr_map"`
	// SRAM optionally maps an on-chip SRAM slave beside the DDR.
	SRAM SRAMCfg `json:"sram,omitempty"`
	// ClosedPage selects the DDRC's auto-precharge row policy instead
	// of the default open-page policy.
	ClosedPage bool `json:"closed_page,omitempty"`
	// MaxCycles caps the simulation (0 = no cap).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
}

// Default returns the paper-like platform: 32-bit bus, 8-deep write
// buffer, all seven filters, request pipelining and BI on, DDR-266.
func Default(masters int) Params {
	p := Params{
		BusBytes:         4,
		WriteBufferDepth: 8,
		Pipelining:       true,
		BIEnabled:        true,
		BILatency:        1,
		Filters:          arb.AllEnabled(),
		UrgencyThreshold: 16,
		DDR:              ddr.DDR266(),
		AddrMap:          ddr.DefaultAddrMap(),
	}
	for i := 0; i < masters; i++ {
		p.Masters = append(p.Masters, MasterCfg{Name: fmt.Sprintf("m%d", i)})
	}
	return p
}

// MaxMasters caps the master-port count; an AHB-class arbiter decodes
// a fixed request/grant vector, and the paper's platforms stay in the
// single digits.
const MaxMasters = 16

// Validate reports configuration errors. Unlike a hardware elaboration
// failure it does not stop at the first defect: every problem in the
// parameter set is collected and reported in one descriptive error, so
// a caller submitting a malformed platform (e.g. through the spec
// service) sees the full repair list at once.
func (p *Params) Validate() error {
	var errs check.Errors
	switch p.BusBytes {
	case 1, 2, 4, 8, 16:
	default:
		errs.Addf("config: bus width %d bytes is not a power of two in [1,16]", p.BusBytes)
	}
	switch {
	case len(p.Masters) == 0:
		errs.Addf("config: at least one master required")
	case len(p.Masters) > MaxMasters:
		errs.Addf("config: %d masters exceed the %d-port arbiter", len(p.Masters), MaxMasters)
	}
	if p.WriteBufferDepth < 0 {
		errs.Addf("config: negative write buffer depth %d", p.WriteBufferDepth)
	}
	names := make(map[string]int, len(p.Masters))
	for i, m := range p.Masters {
		if err := m.Reg().Validate(); err != nil {
			errs.Addf("config: master %d (%s): %v", i, m.Name, err)
		}
		if m.Name != "" {
			if j, dup := names[m.Name]; dup {
				errs.Addf("config: masters %d and %d share the name %q", j, i, m.Name)
			} else {
				names[m.Name] = i
			}
		}
	}
	if err := p.DDR.Validate(); err != nil {
		errs.Addf("config: %v", err)
	}
	if p.SRAM.Enabled {
		if p.SRAM.Size == 0 {
			errs.Addf("config: SRAM enabled with zero size")
		}
		if uint64(p.SRAM.Base) < p.AddrMap.Capacity() {
			errs.Addf("config: SRAM base %#x overlaps the DDR region (capacity %#x)",
				p.SRAM.Base, p.AddrMap.Capacity())
		}
	}
	return errs.Err()
}

// PlainAHB returns a platform configured as a plain AMBA2.0 AHB: no
// write buffer, no request pipelining, no BI side-band, and
// round-robin-only arbitration. It is the baseline the AHB+ extensions
// are measured against (the paper's §2 motivation: AMBA2.0 "cannot
// guarantee master's QoS").
func PlainAHB(masters int) Params {
	p := Default(masters)
	p.WriteBufferDepth = 0
	p.Pipelining = false
	p.BIEnabled = false
	p.Filters = arb.Enabled{} // round-robin tie-break only
	return p
}

// QoSRegs returns the per-master QoS registers.
func (p *Params) QoSRegs() []qos.Reg {
	regs := make([]qos.Reg, len(p.Masters))
	for i, m := range p.Masters {
		regs[i] = m.Reg()
	}
	return regs
}

// MarshalJSONIndent renders the parameters as indented JSON.
func (p *Params) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Load reads parameters from a JSON file and validates them.
func Load(path string) (Params, error) {
	var p Params
	b, err := os.ReadFile(path)
	if err != nil {
		return p, fmt.Errorf("config: %w", err)
	}
	if err := json.Unmarshal(b, &p); err != nil {
		return p, fmt.Errorf("config: parsing %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// Save writes the parameters to a JSON file.
func (p *Params) Save(path string) error {
	b, err := p.MarshalJSONIndent()
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

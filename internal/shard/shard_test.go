package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/config"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// testSpec returns a small distinct workload; vary salt to defeat the
// cache.
func testSpec(salt int) spec.Spec {
	return spec.Spec{
		SpecVersion: spec.Version,
		Name:        fmt.Sprintf("shard/test-%d", salt),
		Params:      config.Default(2),
		Masters: []spec.GenSpec{
			{Kind: spec.KindSequential, Base: 0, Beats: 8, Count: 20 + salt, Gap: 2},
			{Kind: spec.KindStream, Base: 0x80000, Beats: 4, Period: 40, Count: 20},
		},
	}
}

// newBackend starts one real service worker behind httptest.
func newBackend(t *testing.T, opt service.Options) (*service.Server, *httptest.Server) {
	t.Helper()
	srv, err := service.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// newCluster starts n backends plus a router over them, returning the
// backend servers and the router's frontend URL.
func newCluster(t *testing.T, n int, opt service.Options) ([]*service.Server, string) {
	t.Helper()
	backends := make([]*service.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv, ts := newBackend(t, opt)
		backends[i] = srv
		urls[i] = ts.URL
	}
	rt, err := New(Options{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return backends, front.URL
}

// post sends a JSON body and returns status, headers, body.
func post(t *testing.T, url string, req any) (int, http.Header, []byte) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// readSweep posts a /sweep request and splits the NDJSON stream into
// data rows and the terminal summary.
func readSweep(t *testing.T, url string, req any) (http.Header, []Row, service.SweepSummary, bool) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var rows []Row
	summary, done, err := service.DecodeSweepStream(resp.Body, func(line []byte) error {
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			return err
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Header, rows, summary, done
}

// gridRequest is the canonical 8-variant test grid.
func gridRequest(salt int) map[string]any {
	return map[string]any{
		"base":  testSpec(salt),
		"name":  "grid/test",
		"model": "tl",
		"axes": []map[string]any{
			{"param": "write_buffer_depth", "values": []int{0, 2, 4, 8}},
			{"param": "bi_enabled", "values": []bool{true, false}},
		},
	}
}

// expandGrid mirrors the router's expansion for owner bookkeeping.
func expandGrid(t *testing.T, salt int) []sweep.Variant {
	t.Helper()
	return sweep.MustExpand(sweep.Grid{
		Name: "grid/test", Base: testSpec(salt),
		Axes: []sweep.Axis{
			{Param: sweep.ParamWriteBufferDepth, Values: []sweep.Value{{V: 0}, {V: 2}, {V: 4}, {V: 8}}},
			{Param: sweep.ParamBIEnabled, Values: []sweep.Value{{V: true}, {V: false}}},
		},
	})
}

func TestOwnerDeterministicAndBalanced(t *testing.T) {
	// Determinism: the owner of a hash is a pure function of (hash, n).
	sp := testSpec(1)
	hash, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	first := Owner(hash, 4)
	for i := 0; i < 10; i++ {
		if got := Owner(hash, 4); got != first {
			t.Fatalf("owner flapped: %d then %d", first, got)
		}
	}
	if first < 0 || first >= 4 {
		t.Fatalf("owner %d out of range", first)
	}
	if got := Owner(hash, 1); got != 0 {
		t.Fatalf("single shard owner %d", got)
	}

	// Balance: hashing many distinct spec hashes over 4 shards lands
	// a sane share everywhere (rendezvous over uniform input; the
	// bound is loose — this guards against degenerate mixing, not
	// statistical perfection).
	counts := make([]int, 4)
	for salt := 0; salt < 400; salt++ {
		h, err := testSpec(salt).Hash()
		if err != nil {
			t.Fatal(err)
		}
		counts[Owner(h, 4)]++
	}
	for i, c := range counts {
		if c < 40 || c > 160 {
			t.Fatalf("shard %d owns %d of 400 (distribution %v)", i, c, counts)
		}
	}

	// Minimal disruption: growing 3 -> 4 shards only moves keys to the
	// new shard; nothing migrates between surviving shards.
	for salt := 0; salt < 100; salt++ {
		h, _ := testSpec(salt).Hash()
		before, after := Owner(h, 3), Owner(h, 4)
		if before != after && after != 3 {
			t.Fatalf("key moved %d -> %d when shard 3 joined", before, after)
		}
	}
}

func TestRouterMatchesSingleProcessByteForByte(t *testing.T) {
	single, singleTS := newBackend(t, service.Options{Workers: 2})
	backends, front := newCluster(t, 2, service.Options{Workers: 2})

	requests := []map[string]any{
		{"spec": testSpec(2), "model": "tl"},
		{"spec": testSpec(3), "model": "tl"},
		{"spec": testSpec(4), "model": "rtl"},
		{"scenario": "seq/read-dominant", "model": "tl"},
	}
	for _, req := range requests {
		st1, h1, b1 := post(t, singleTS.URL+"/run", req)
		st2, h2, b2 := post(t, front+"/run", req)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("statuses %d/%d: %s / %s", st1, st2, b1, b2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("sharded body differs from single-process:\n%s\n%s", b1, b2)
		}
		if h1.Get("X-Spec-Hash") != h2.Get("X-Spec-Hash") {
			t.Fatalf("hash headers differ: %q vs %q", h1.Get("X-Spec-Hash"), h2.Get("X-Spec-Hash"))
		}
		shardIdx, err := strconv.Atoi(h2.Get("X-Shard"))
		if err != nil || shardIdx < 0 || shardIdx > 1 {
			t.Fatalf("X-Shard %q", h2.Get("X-Shard"))
		}

		// Repeat through the router: a cache hit, served by the SAME
		// shard (deterministic placement is what keeps the per-shard
		// stores disjoint), byte-identical again.
		_, h3, b3 := post(t, front+"/run", req)
		if h3.Get("X-Cache") != "hit" || h3.Get("X-Shard") != h2.Get("X-Shard") || !bytes.Equal(b2, b3) {
			t.Fatalf("replay: cache %q shard %q->%q identical=%v",
				h3.Get("X-Cache"), h2.Get("X-Shard"), h3.Get("X-Shard"), bytes.Equal(b2, b3))
		}
	}
	// Work landed on both shards overall (4 distinct specs over 2
	// shards — if one backend ran everything the hash isn't routing),
	// and the cluster simulated exactly as much as the single process.
	jobs := backends[0].CountersSnapshot().Jobs + backends[1].CountersSnapshot().Jobs
	if jobs != single.CountersSnapshot().Jobs {
		t.Fatalf("cluster ran %d jobs, single process ran %d", jobs, single.CountersSnapshot().Jobs)
	}
	if backends[0].CountersSnapshot().Jobs == 0 || backends[1].CountersSnapshot().Jobs == 0 {
		t.Fatalf("one shard ran everything: %d/%d",
			backends[0].CountersSnapshot().Jobs, backends[1].CountersSnapshot().Jobs)
	}

	// /compare routes the same way and matches byte-for-byte.
	cmpReq := map[string]any{"spec": testSpec(5)}
	_, _, c1 := post(t, singleTS.URL+"/compare", cmpReq)
	_, h2, c2 := post(t, front+"/compare", cmpReq)
	if !bytes.Equal(c1, c2) || h2.Get("X-Shard") == "" {
		t.Fatalf("compare differs or unshared: %s vs %s (shard %q)", c1, c2, h2.Get("X-Shard"))
	}
}

func TestRouterSweepMergesShardsWithTerminalRow(t *testing.T) {
	backends, front := newCluster(t, 2, service.Options{Workers: 2})
	variants := expandGrid(t, 6)
	wantOwner := map[string]int{}
	perShard := []int{0, 0}
	for _, v := range variants {
		o := Owner(v.Hash, 2)
		wantOwner[v.Hash] = o
		perShard[o]++
	}

	hdr, rows, summary, done := readSweep(t, front, gridRequest(6))
	if hdr.Get("X-Sweep-Variants") != "8" {
		t.Fatalf("X-Sweep-Variants %q", hdr.Get("X-Sweep-Variants"))
	}
	if len(rows) != 8 || !done {
		t.Fatalf("%d rows, done=%v", len(rows), done)
	}
	if summary.Rows != 8 || summary.Errors != 0 {
		t.Fatalf("summary %+v", summary)
	}
	for _, row := range rows {
		if row.Error != "" || row.Cache != "miss" {
			t.Fatalf("cold row %s: cache %q error %q", row.Name, row.Cache, row.Error)
		}
		if row.Shard != wantOwner[row.Hash] {
			t.Fatalf("row %s on shard %d, rendezvous owner is %d", row.Name, row.Shard, wantOwner[row.Hash])
		}
	}
	// Each shard simulated exactly its partition — the stores are
	// disjoint by construction, not by luck.
	for i, want := range perShard {
		if got := int(backends[i].CountersSnapshot().Jobs); got != want {
			t.Fatalf("shard %d ran %d jobs, owns %d variants", i, got, want)
		}
	}

	// Warm repeat: all hits, zero new jobs anywhere.
	_, rows2, summary2, done2 := readSweep(t, front, gridRequest(6))
	if len(rows2) != 8 || !done2 || summary2.Errors != 0 {
		t.Fatalf("warm sweep: %d rows done=%v %+v", len(rows2), done2, summary2)
	}
	byHash := map[string][]byte{}
	for _, r := range rows {
		byHash[r.Hash] = r.Result
	}
	for _, r := range rows2 {
		if r.Cache != "hit" || !bytes.Equal(r.Result, byHash[r.Hash]) {
			t.Fatalf("warm row %s: cache %q identical=%v", r.Name, r.Cache, bytes.Equal(r.Result, byHash[r.Hash]))
		}
	}
	for i, want := range perShard {
		if got := int(backends[i].CountersSnapshot().Jobs); got != want {
			t.Fatalf("warm sweep grew shard %d jobs to %d", i, got)
		}
	}
}

func TestRouterSweepDeadShardFailsOverToSurvivor(t *testing.T) {
	// Two backends; one is torn down before the sweep. Results are
	// content-addressed, so ownership only decides cache placement:
	// the dead shard's variants must fail over to the survivor — zero
	// error rows, Failover tags naming the reroute — and the stream
	// must end with a truthful terminal summary. The dead backend's
	// breaker must be open by the end (its variants each cost at most
	// one dial, then the circuit eats the rest).
	srvA, tsA := newBackend(t, service.Options{Workers: 2})
	_, tsB := newBackend(t, service.Options{Workers: 2})
	urls := []string{tsA.URL, tsB.URL}
	rt, err := New(Options{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	tsB.Close() // shard 1 dies

	variants := expandGrid(t, 7)
	deadOwned := 0
	for _, v := range variants {
		if Owner(v.Hash, 2) == 1 {
			deadOwned++
		}
	}
	if deadOwned == 0 || deadOwned == len(variants) {
		t.Fatalf("degenerate partition: dead shard owns %d of %d", deadOwned, len(variants))
	}

	_, rows, summary, done := readSweep(t, front.URL, gridRequest(7))
	if len(rows) != 8 || !done {
		t.Fatalf("%d rows, done=%v", len(rows), done)
	}
	if summary.Rows != 8 || summary.Errors != 0 {
		t.Fatalf("summary %+v, want 0 errors", summary)
	}
	failedOver := 0
	for _, row := range rows {
		if row.Error != "" {
			t.Fatalf("row %s errored despite a live shard: %q", row.Name, row.Error)
		}
		owner := Owner(row.Hash, 2)
		switch owner {
		case 0:
			if row.Shard != 0 || row.Failover != "" {
				t.Fatalf("live-owned row %s served by %d failover %q", row.Name, row.Shard, row.Failover)
			}
		case 1:
			if row.Shard != 0 || row.Failover != "1->0" {
				t.Fatalf("dead-owned row %s served by %d failover %q, want shard 0 via 1->0", row.Name, row.Shard, row.Failover)
			}
		}
	}
	for _, row := range rows {
		if row.Failover != "" {
			failedOver++
		}
	}
	if failedOver != deadOwned {
		t.Fatalf("%d failover rows, dead shard owned %d", failedOver, deadOwned)
	}
	// The survivor computed the WHOLE grid (its own variants plus the
	// failed-over ones).
	if jobs := srvA.CountersSnapshot().Jobs; jobs != 8 {
		t.Fatalf("live shard ran %d jobs, want all 8", jobs)
	}
	// deadOwned >= breaker threshold here, so the circuit must be open
	// (or already probed into half-open — never closed: the backend is
	// still down and the probe cannot have succeeded).
	if deadOwned >= defaultBreakerThreshold {
		if st := rt.view().shards[1].breaker.State(); st != breakerOpen {
			t.Fatalf("dead shard breaker %q, want open", st)
		}
	}

	// Direct /run of a dead-shard spec: 200 via failover, tagged.
	for _, v := range variants {
		if Owner(v.Hash, 2) != 1 {
			continue
		}
		status, hdr, body := post(t, front.URL+"/run", map[string]any{"spec": v.Spec, "model": "tl"})
		if status != http.StatusOK {
			t.Fatalf("dead-shard /run: %d %s", status, body)
		}
		if hdr.Get("X-Shard") != "0" || hdr.Get("X-Failover") != "1->0" {
			t.Fatalf("dead-shard /run X-Shard %q X-Failover %q", hdr.Get("X-Shard"), hdr.Get("X-Failover"))
		}
		break
	}
}

func TestRouterAllShardsDeadIsExplicit(t *testing.T) {
	// Failover has somewhere to go only while a shard lives. With the
	// whole cluster down the router must say so: 502 on /run, explicit
	// error rows plus a truthful summary on /sweep — never a hang.
	_, tsA := newBackend(t, service.Options{Workers: 2})
	_, tsB := newBackend(t, service.Options{Workers: 2})
	rt, err := New(Options{Backends: []string{tsA.URL, tsB.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	tsA.Close()
	tsB.Close()

	status, _, body := post(t, front.URL+"/run", map[string]any{"spec": testSpec(29), "model": "tl"})
	if status != http.StatusBadGateway || !strings.Contains(string(body), "no live shard") {
		t.Fatalf("all-dead /run: %d %s", status, body)
	}

	_, rows, summary, done := readSweep(t, front.URL, gridRequest(29))
	if len(rows) != 8 || !done {
		t.Fatalf("%d rows, done=%v", len(rows), done)
	}
	if summary.Errors != 8 {
		t.Fatalf("summary %+v, want 8 errors", summary)
	}
	for _, row := range rows {
		if !strings.Contains(row.Error, "no live shard") {
			t.Fatalf("row %s error %q", row.Name, row.Error)
		}
	}
}

func TestRouterHealthzAggregates(t *testing.T) {
	srvA, tsA := newBackend(t, service.Options{Workers: 3, Queue: 5})
	_, tsB := newBackend(t, service.Options{Workers: 2, Queue: 4})
	rt, err := New(Options{Backends: []string{tsA.URL, tsB.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	// Prime one result so counters flow through.
	post(t, front.URL+"/run", map[string]any{"spec": testSpec(8), "model": "tl"})

	fetch := func() ClusterHealth {
		resp, err := http.Get(front.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h ClusterHealth
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	h := fetch()
	if !h.OK || len(h.Shards) != 2 {
		t.Fatalf("health %+v", h)
	}
	if h.Workers != 5 || h.QueueCap != 9 {
		t.Fatalf("aggregate pool shape: workers %d queue %d", h.Workers, h.QueueCap)
	}
	if h.Jobs != 1 {
		t.Fatalf("aggregate jobs %d", h.Jobs)
	}
	if h.RetryAfter < 1 {
		t.Fatalf("aggregate retry_after %d", h.RetryAfter)
	}
	for i, sh := range h.Shards {
		if !sh.OK || sh.Health == nil || sh.Health.Pid == 0 || sh.Index != i {
			t.Fatalf("shard slot %d: %+v", i, sh)
		}
	}

	// A dead shard degrades the cluster verdict but the probe itself
	// stays fast and the live shard's numbers remain.
	tsB.Close()
	h = fetch()
	if h.OK {
		t.Fatal("cluster reported ok with a dead shard")
	}
	if h.Shards[0].OK != true || h.Shards[1].OK != false || h.Shards[1].Error == "" {
		t.Fatalf("degraded shards %+v", h.Shards)
	}
	if h.Workers != 3 {
		t.Fatalf("degraded aggregate workers %d", h.Workers)
	}
	_ = srvA
}

// flakyBackend is a scripted fake worker: statuses[i] answers the
// i-th /run POST (clamped to the last entry), with Retry-After and
// optional X-Terminal on 503s. /healthz reports one worker.
type flakyBackend struct {
	statuses   []int
	retryAfter string
	terminal   bool
	calls      int
}

func (f *flakyBackend) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.Health{OK: true, Workers: 1, RetryAfter: 1})
	})
	run := func(w http.ResponseWriter, r *http.Request) {
		i := f.calls
		if i >= len(f.statuses) {
			i = len(f.statuses) - 1
		}
		f.calls++
		status := f.statuses[i]
		w.Header().Set("Content-Type", "application/json")
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", f.retryAfter)
			if f.terminal {
				w.Header().Set("X-Terminal", "1")
			}
			w.WriteHeader(status)
			w.Write([]byte(`{"error":"run queue saturated; retry"}`))
			return
		}
		w.Header().Set("X-Cache", "miss")
		w.WriteHeader(status)
		w.Write([]byte(`{"name":"fake","cycles":1,"completed":true}`))
	}
	mux.HandleFunc("/run", run)
	mux.HandleFunc("/compare", run)
	return mux
}

func TestRouterPropagatesBackpressure(t *testing.T) {
	// A saturated backend's 503 passes through /run with the backend's
	// own Retry-After — the router never invents a cheerier number.
	fake := &flakyBackend{statuses: []int{503}, retryAfter: "7"}
	ts := httptest.NewServer(fake.handler())
	t.Cleanup(ts.Close)
	rt, err := New(Options{Backends: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	status, hdr, _ := post(t, front.URL+"/run", map[string]any{"spec": testSpec(9), "model": "tl"})
	if status != http.StatusServiceUnavailable || hdr.Get("Retry-After") != "7" {
		t.Fatalf("propagated 503: status %d Retry-After %q", status, hdr.Get("Retry-After"))
	}
}

func TestRouterSweepRetriesSaturationButNotShutdown(t *testing.T) {
	// Saturation 503s are retried (honoring Retry-After) until the
	// variant lands...
	fake := &flakyBackend{statuses: []int{503, 503, 200}, retryAfter: "0"}
	ts := httptest.NewServer(fake.handler())
	t.Cleanup(ts.Close)
	rt, err := New(Options{Backends: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	req := map[string]any{
		"base": testSpec(10), "model": "tl",
		"axes": []map[string]any{{"param": "pipelining", "values": []bool{true}}},
	}
	_, rows, summary, done := readSweep(t, front.URL, req)
	if !done || len(rows) != 1 || rows[0].Error != "" || summary.Errors != 0 {
		t.Fatalf("retried sweep: done=%v rows=%+v", done, rows)
	}
	if fake.calls != 3 {
		t.Fatalf("backend saw %d calls, want 3 (two 503s + success)", fake.calls)
	}

	// ...but a shutting-down backend (503 + X-Terminal) is terminal:
	// an error row immediately, no retry spin.
	term := &flakyBackend{statuses: []int{503}, retryAfter: "0", terminal: true}
	ts2 := httptest.NewServer(term.handler())
	t.Cleanup(ts2.Close)
	rt2, err := New(Options{Backends: []string{ts2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front2 := httptest.NewServer(rt2.Handler())
	t.Cleanup(front2.Close)
	_, rows, summary, done = readSweep(t, front2.URL, req)
	if !done || len(rows) != 1 || rows[0].Error == "" || summary.Errors != 1 {
		t.Fatalf("terminal sweep: done=%v rows=%+v summary=%+v", done, rows, summary)
	}
	if term.calls != 1 {
		t.Fatalf("terminal 503 retried: %d calls", term.calls)
	}
}

// analyzeRequest is the canonical 8-variant grid plus an analysis
// selector, mirroring the service-side test shape.
func analyzeRequest(salt int) map[string]any {
	req := gridRequest(salt)
	req["metric"] = "cycles"
	req["top_k"] = 3
	req["frontier"] = map[string]any{"x": "cycles", "y": "throughput", "y_objective": "max"}
	return req
}

func TestRouterAnalyzeByteIdenticalToSingleProcess(t *testing.T) {
	// The acceptance bar of the analysis subsystem: one JSON document,
	// byte-for-byte the same whether the grid ran in one process or
	// across a 2-shard cluster — aggregation is a pure function of the
	// (deterministic) result set, and completion order must not leak
	// into the bytes.
	_, singleTS := newBackend(t, service.Options{Workers: 2})
	_, front := newCluster(t, 2, service.Options{Workers: 2})

	req := analyzeRequest(12)
	st1, _, b1 := post(t, singleTS.URL+"/sweep/analyze", req)
	st2, h2, b2 := post(t, front+"/sweep/analyze", req)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("statuses %d/%d: %s / %s", st1, st2, b1, b2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("sharded analysis differs from single-process:\n%s\n%s", b1, b2)
	}
	if h2.Get("X-Sweep-Variants") != "8" {
		t.Fatalf("X-Sweep-Variants %q", h2.Get("X-Sweep-Variants"))
	}
	var doc agg.Analysis
	if err := json.Unmarshal(b2, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Incomplete || doc.Analyzed != 8 || doc.Best == nil || len(doc.Frontier.Points) == 0 {
		t.Fatalf("doc %+v", doc)
	}

	// Warm repeat through the cluster: still byte-identical (cache
	// hits complete in yet another order).
	_, _, b3 := post(t, front+"/sweep/analyze", req)
	if !bytes.Equal(b2, b3) {
		t.Fatalf("warm cluster analysis differs:\n%s\n%s", b2, b3)
	}
}

func TestRouterAnalyzeDeadShardStaysComplete(t *testing.T) {
	// Single-shard loss must not dent the analysis document: failover
	// computes the dead shard's variants on the survivor, and the
	// resulting document is byte-identical to a healthy single-process
	// run — complete, no failed list.
	_, tsA := newBackend(t, service.Options{Workers: 2})
	_, tsB := newBackend(t, service.Options{Workers: 2})
	rt, err := New(Options{Backends: []string{tsA.URL, tsB.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	tsB.Close() // shard 1 dies

	_, single := newBackend(t, service.Options{Workers: 2})
	wantStatus, _, wantBody := post(t, single.URL+"/sweep/analyze", analyzeRequest(13))
	if wantStatus != http.StatusOK {
		t.Fatalf("single-process analyze: %d %s", wantStatus, wantBody)
	}

	status, _, body := post(t, front.URL+"/sweep/analyze", analyzeRequest(13))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if !bytes.Equal(body, wantBody) {
		t.Fatalf("degraded-cluster analysis diverged from single process:\n%s\nvs\n%s", body, wantBody)
	}
	var doc agg.Analysis
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Incomplete || doc.Analyzed != 8 || len(doc.Failed) != 0 {
		t.Fatalf("incomplete/analyzed/failed %v/%d/%d, want complete 8", doc.Incomplete, doc.Analyzed, len(doc.Failed))
	}
}

func TestRouterAnalyzeAllShardsDeadReportsIncomplete(t *testing.T) {
	// With no shard left to fail over to, the document must carry
	// explicit incomplete metadata — analyzed 0, every variant in the
	// failed list — never a silently-shrunk frontier that reads like
	// the whole design space.
	_, tsA := newBackend(t, service.Options{Workers: 2})
	_, tsB := newBackend(t, service.Options{Workers: 2})
	rt, err := New(Options{Backends: []string{tsA.URL, tsB.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	tsA.Close()
	tsB.Close()

	status, _, body := post(t, front.URL+"/sweep/analyze", analyzeRequest(13))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var doc agg.Analysis
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Incomplete {
		t.Fatalf("all-dead analysis not marked incomplete: %s", body)
	}
	if doc.Variants != 8 || doc.Analyzed != 0 || len(doc.Failed) != 8 {
		t.Fatalf("variants/analyzed/failed %d/%d/%d, want 8/0/8",
			doc.Variants, doc.Analyzed, len(doc.Failed))
	}
	for _, f := range doc.Failed {
		if !strings.Contains(f.Error, "no live shard") {
			t.Fatalf("failure %+v lacks the no-live-shard attribution", f)
		}
	}
	if doc.Best != nil {
		t.Fatalf("best %+v from zero analyzed rows", doc.Best)
	}
}

func TestRouterAnalyzeShapeErrors(t *testing.T) {
	_, front := newCluster(t, 2, service.Options{Workers: 1})
	cases := []struct {
		req  map[string]any
		want string
	}{
		{map[string]any{"metric": "cycles"}, "base spec or a scenario"},
		{func() map[string]any {
			r := analyzeRequest(14)
			r["metric"] = "warp"
			return r
		}(), "unknown metric"},
		{func() map[string]any {
			r := analyzeRequest(14)
			r["objective"] = "best"
			return r
		}(), "unknown objective"},
	}
	for _, c := range cases {
		status, _, body := post(t, front+"/sweep/analyze", c.req)
		if status != http.StatusBadRequest || !strings.Contains(string(body), c.want) {
			t.Errorf("req %v: %d %s", c.req, status, body)
		}
	}
}

func TestRouterSweepSurvivesUnparseableRetryAfter(t *testing.T) {
	// A backend advertising a Retry-After the router cannot parse (an
	// HTTP-date, garbage) must be treated as the DEFAULT backoff — the
	// retry still happens and the variant still lands; it just paces
	// at 1s instead of hammering at the 50ms floor. (The wait mapping
	// itself is pinned by service.TestRetryWaitParsesAndClamps.)
	fake := &flakyBackend{statuses: []int{503, 200}, retryAfter: "Wed, 21 Oct 2198 07:28:00 GMT"}
	ts := httptest.NewServer(fake.handler())
	t.Cleanup(ts.Close)
	rt, err := New(Options{Backends: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	req := map[string]any{
		"base": testSpec(15), "model": "tl",
		"axes": []map[string]any{{"param": "pipelining", "values": []bool{true}}},
	}
	start := time.Now()
	_, rows, summary, done := readSweep(t, front.URL, req)
	if !done || len(rows) != 1 || rows[0].Error != "" || summary.Errors != 0 {
		t.Fatalf("sweep with unparseable Retry-After: done=%v rows=%+v", done, rows)
	}
	if fake.calls != 2 {
		t.Fatalf("backend saw %d calls, want 2", fake.calls)
	}
	// The default backoff (1s) was actually honored — the old code
	// fell through to the 50ms floor here.
	if waited := time.Since(start); waited < service.DefaultRetryWait {
		t.Fatalf("retry after only %v, want >= %v", waited, service.DefaultRetryWait)
	}
}

func TestRouterScenariosAndShapeErrors(t *testing.T) {
	_, front := newCluster(t, 2, service.Options{Workers: 1})

	// The scenario library is identical to a worker's.
	resp, err := http.Get(front + "/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	routerBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	wantBody, _ := service.ScenarioLibrary()
	if !bytes.Equal(routerBody, wantBody) {
		t.Fatal("router /scenarios differs from the service library")
	}

	cases := []struct {
		path string
		req  any
		want string
	}{
		{"/run", map[string]any{}, "spec or a scenario"},
		{"/run", map[string]any{"spec": testSpec(11), "scenario": "seq/read-dominant"}, "both"},
		{"/run", map[string]any{"scenario": "no/such"}, "unknown scenario"},
		{"/sweep", map[string]any{}, "base spec or a scenario"},
		{"/sweep", map[string]any{"base": testSpec(11), "model": "spice"}, "unknown model"},
		{"/sweep", map[string]any{"scenario": "no/such"}, "unknown scenario"},
	}
	for _, c := range cases {
		status, _, body := post(t, front+c.path, c.req)
		if status != http.StatusBadRequest || !strings.Contains(string(body), c.want) {
			t.Errorf("%s %v: %d %s", c.path, c.req, status, body)
		}
	}
}

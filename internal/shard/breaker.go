// Per-backend circuit breakers. Without one, a dead shard charges
// every variant routed at it a full dial timeout before the router
// can fail over; with one, the shard pays for its death once per
// recovery interval (a single background /healthz probe) and the
// sweep path skips it instantly. The breaker is deliberately the
// textbook three-state machine:
//
//	closed    — traffic flows; consecutive failures are counted.
//	open      — traffic is refused locally; a background prober
//	            polls the backend's /healthz every interval.
//	half-open — the probe succeeded; the next real request is the
//	            trial. Success closes the breaker, failure re-opens
//	            it (and restarts the prober).
//
// "Failure" means a transport error or a terminal 503 (X-Terminal:
// the backend is shutting down) — the two signals that retrying the
// same backend is pointless. A saturation 503 is a LIVE backend
// saying "later" and resets the failure streak.
package shard

import (
	"context"
	"sync"
	"time"
)

// Breaker state names, as surfaced in healthz and tests.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// defaultBreakerThreshold is how many CONSECUTIVE failures trip the
// breaker. More than one, so a single flaky connection doesn't eject
// a healthy shard; small, so a dead shard stops costing dial attempts
// almost immediately.
const defaultBreakerThreshold = 3

// defaultBreakerInterval paces the open-state /healthz probes — the
// full price of a dead shard per recovery window.
const defaultBreakerInterval = time.Second

// breaker is one backend's circuit breaker.
type breaker struct {
	threshold int
	interval  time.Duration
	// probe checks the guarded backend's liveness (the router wires
	// this to FetchHealth against /healthz).
	probe func(ctx context.Context) error
	// stop ends the background prober (router shutdown).
	stop <-chan struct{}
	// closed ends this one breaker's prober without touching the
	// router-wide stop channel — a drained shard's breaker is closed
	// individually so it stops probing a backend that is gone on
	// purpose, while every other breaker keeps running.
	closed    chan struct{}
	closeOnce sync.Once

	mu      sync.Mutex
	state   string
	fails   int  // consecutive failures while closed
	probing bool // a prober goroutine is running
	// onTrip, when set, is called (outside the lock) once per
	// transition into the open state — the monotonic trip counter the
	// metrics layer records, which a scrape can catch even when the
	// breaker has already re-closed by the time it looks. Set before
	// the breaker sees traffic.
	onTrip func()
}

func newBreaker(threshold int, interval time.Duration, probe func(ctx context.Context) error, stop <-chan struct{}) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if interval <= 0 {
		interval = defaultBreakerInterval
	}
	return &breaker{threshold: threshold, interval: interval, probe: probe, stop: stop, closed: make(chan struct{}), state: breakerClosed}
}

// allow reports whether a request may be sent to this backend right
// now. Open means no — the caller fails over without paying a dial.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerOpen
}

// success records a response from a live backend (any HTTP status
// that isn't a terminal 503 — even a saturation 503 proves liveness).
// It closes the breaker from any state.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
}

// failure records a transport error or terminal 503. In closed state
// it trips the breaker after threshold consecutive failures; in
// half-open state the trial request failed, so it re-opens
// immediately.
func (b *breaker) failure() {
	b.mu.Lock()
	tripped := false
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.tripLocked()
			tripped = true
		}
	case breakerHalfOpen:
		b.tripLocked()
		tripped = true
	}
	b.mu.Unlock()
	if tripped && b.onTrip != nil {
		b.onTrip()
	}
}

// tripLocked opens the breaker and starts the prober (if one isn't
// already running — a half-open → open transition reuses nothing; the
// previous prober exited when it reported success). Caller holds b.mu.
func (b *breaker) tripLocked() {
	b.state = breakerOpen
	b.fails = 0
	if !b.probing {
		b.probing = true
		go b.probeLoop()
	}
}

// probeLoop polls the backend's /healthz every interval while the
// breaker is open. The first successful probe moves the breaker to
// half-open and exits — the next real request is the trial that
// decides closed vs re-open.
func (b *breaker) probeLoop() {
	for {
		select {
		case <-b.stop:
			b.mu.Lock()
			b.probing = false
			b.mu.Unlock()
			return
		case <-b.closed:
			b.mu.Lock()
			b.probing = false
			b.mu.Unlock()
			return
		case <-time.After(b.interval):
		}
		ctx, cancel := context.WithTimeout(context.Background(), healthTimeout)
		err := b.probe(ctx)
		cancel()
		b.mu.Lock()
		if err == nil {
			if b.state == breakerOpen {
				b.state = breakerHalfOpen
			}
			b.probing = false
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
	}
}

// close retires this breaker: its prober (running or future) exits
// instead of polling a deliberately removed backend forever. The
// breaker itself keeps answering State for any straggling reader.
func (b *breaker) close() { b.closeOnce.Do(func() { close(b.closed) }) }

// State returns the current state name ("closed", "open",
// "half-open") for healthz and tests.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// StateCode returns the state as the gauge encoding the metrics layer
// exports: 0 closed, 1 half-open, 2 open.
func (b *breaker) StateCode() float64 {
	switch b.State() {
	case breakerHalfOpen:
		return 1
	case breakerOpen:
		return 2
	default:
		return 0
	}
}

// Supervisor tests: the respawn loop against real child processes.
// The children are THIS test binary re-exec'd (TestMain dispatches on
// an env var) — a store-backed fake worker that speaks just enough
// HTTP to prove replay, and a crash-looping worker that proves the
// give-up path. No simd build step, no network beyond loopback.
package shard

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/store"
)

func TestMain(m *testing.M) {
	switch os.Getenv("SHARD_TEST_WORKER") {
	case "store":
		fakeStoreWorker()
		return
	case "crash":
		// Announce readiness like a real worker, then die — the
		// supervisor must see the banner (spawn succeeds) and then a
		// corpse, every single time.
		fmt.Println("fake: serving on 127.0.0.1:1 (crash worker)")
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// fakeStoreWorker is a minimal worker: it opens the real disk store at
// -store and serves GET/POST /kv plus /dir, printing the same
// readiness banner simd does. Killing and respawning it exercises the
// exact store-reopen path a revived shard takes.
func fakeStoreWorker() {
	fs := flag.NewFlagSet("fake-worker", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "")
	dir := fs.String("store", "", "")
	fs.Parse(os.Args[1:])
	st, err := store.Open(*dir, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fake worker: %v\n", err)
		os.Exit(1)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/kv", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		switch r.Method {
		case http.MethodPost:
			body, err := io.ReadAll(r.Body)
			if err == nil {
				err = st.Put(key, body)
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			body, ok := st.Get(key)
			if !ok {
				http.NotFound(w, r)
				return
			}
			w.Write(body)
		}
	})
	mux.HandleFunc("/dir", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, st.Dir())
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fake worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fake: serving on %s (store worker)\n", ln.Addr())
	http.Serve(ln, mux)
}

// waitStatus polls the supervisor until cond accepts shard i's status.
func waitStatus(t *testing.T, sup *Supervisor, i int, what string, cond func(ProcStatus) bool) ProcStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := sup.Status()[i]
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d never reached %s: %+v", i, what, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	// A killed-and-respawning worker makes transport errors normal;
	// report them as status 0 and let the caller poll.
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil
	}
	return resp.StatusCode, body
}

func TestSupervisorRespawnReopensStoreAcrossTwoKills(t *testing.T) {
	// Satellite: SIGKILL the same shard TWICE in a row. Each revival
	// must come back on the same port, reopen exactly its own
	// DIR/shard-i store directory, and replay the results written
	// before the first kill byte-identically — the property that makes
	// failover's no-write-through policy safe.
	t.Setenv("SHARD_TEST_WORKER", "store")
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sup, err := SpawnWith(bin, 2, func(i int) []string {
		return []string{"-store", filepath.Join(dir, fmt.Sprintf("shard-%d", i))}
	}, SpawnOptions{
		Log:         io.Discard,
		RespawnBase: 10 * time.Millisecond,
		RespawnMax:  50 * time.Millisecond,
		// Every kill here is deliberate, not a crash loop: a tiny
		// StableUptime keeps the two kills from pooling into one
		// consecutive-failure budget.
		StableUptime: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Stop)

	base := "http://" + sup.Procs()[0].Addr
	value := []byte(`{"cycles":424242,"survives":"respawn"}`)
	resp, err := http.Post(base+"/kv?key=run:TL:deadbeef", "application/json", strings.NewReader(string(value)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put: %d", resp.StatusCode)
	}

	pid := sup.Procs()[0].Pid
	for kill := 1; kill <= 2; kill++ {
		if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
			t.Fatal(err)
		}
		st := waitStatus(t, sup, 0, "respawned", func(st ProcStatus) bool {
			return st.State == ProcRunning && st.Pid != 0 && st.Pid != pid
		})
		if st.Respawns != kill {
			t.Fatalf("kill %d: respawns = %d", kill, st.Respawns)
		}
		// Same port: the router's backend list still points here.
		if got := sup.Procs()[0].Addr; "http://"+got != base {
			t.Fatalf("kill %d: respawned on %s, want %s", kill, got, base)
		}
		// The revived process must be serving ITS directory and replay
		// the pre-kill result byte-for-byte. Poll: ProcRunning means the
		// banner was seen, so the listener is up, but give the first
		// request a moment anyway.
		deadline := time.Now().Add(10 * time.Second)
		for {
			status, body := httpGet(t, base+"/kv?key=run:TL:deadbeef")
			if status == http.StatusOK {
				if string(body) != string(value) {
					t.Fatalf("kill %d: replayed %q, want %q", kill, body, value)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("kill %d: respawned worker never served (last status %d)", kill, status)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if _, wd := httpGet(t, base+"/dir"); !strings.HasSuffix(string(wd), "shard-0") {
			t.Fatalf("kill %d: worker serves store %q, want .../shard-0", kill, wd)
		}
		pid = st.Pid
	}

	// The untouched shard 1 never respawned.
	if st := sup.Status()[1]; st.State != ProcRunning || st.Respawns != 0 {
		t.Fatalf("innocent shard 1: %+v", st)
	}
}

func TestSupervisorGivesUpOnCrashLoopAndHealthzShowsDead(t *testing.T) {
	// A worker that dies instantly on every start must NOT be respawned
	// forever: after RespawnAttempts consecutive failures the
	// supervisor marks the shard dead, and the router's aggregated
	// healthz carries that verdict.
	t.Setenv("SHARD_TEST_WORKER", "crash")
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	sup, err := SpawnWith(bin, 1, func(int) []string { return nil }, SpawnOptions{
		Log:             io.Discard,
		RespawnBase:     5 * time.Millisecond,
		RespawnMax:      20 * time.Millisecond,
		RespawnAttempts: 3,
		// Huge StableUptime: every death is part of the same loop.
		StableUptime: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Stop)

	st := waitStatus(t, sup, 0, "dead", func(st ProcStatus) bool { return st.State == ProcDead })
	if st.Respawns != 3 {
		t.Fatalf("dead after %d respawns, want the full budget of 3", st.Respawns)
	}
	// Dead is terminal: no zombie revival later.
	time.Sleep(100 * time.Millisecond)
	if st := sup.Status()[0]; st.State != ProcDead {
		t.Fatalf("shard rose from the dead: %+v", st)
	}

	// The router over this supervisor reports the process verdict in
	// its aggregated healthz — the operator-facing difference between
	// "briefly down" and "given up on".
	rt, err := New(Options{Backends: sup.URLs(), Supervisor: sup})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	health := rt.FetchClusterHealth(ctx)
	if health.OK {
		t.Fatal("cluster healthz ok=true with its only shard dead")
	}
	sh := health.Shards[0]
	if sh.Proc == nil || sh.Proc.State != ProcDead || sh.Proc.Respawns != 3 {
		t.Fatalf("healthz proc = %+v, want dead after 3 respawns", sh.Proc)
	}
}

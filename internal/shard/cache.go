// The router-side result cache: a bytes-bounded LRU of result bodies
// keyed by the same content-addressed store keys the backends persist
// under (run:TL:<hash>, run:RTL:<hash>, compare:<hash>). Results are
// bit-reproducible, so a body the router has already relayed once is
// the final answer forever — a repeat /run, /compare or sweep variant
// can be served from router memory with zero backend round trips,
// which is a disposition of its own (X-Cache: router_hit) so clients
// can tell router-served replays from backend cache hits.
//
// Entries are held in the store's checksummed envelope encoding
// (store.EncodeEnvelope), not as raw bytes: a get re-verifies the
// envelope before serving, so a corrupted in-memory entry degrades to
// a miss instead of relaying garbage — the same honesty contract the
// disk tier enforces.
package shard

import (
	"container/list"
	"sync"

	"repro/internal/store"
)

// defaultRouterCacheBytes bounds the router cache when Options leaves
// RouterCacheBytes zero. Result bodies are small (a few hundred bytes
// to a few KB), so 64 MiB holds tens of thousands of hot replays.
const defaultRouterCacheBytes = 64 << 20

// resultCache is a mutex-guarded LRU over encoded result envelopes,
// bounded by total envelope bytes.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	size     int64
	order    *list.List // front = most recent; values are *cacheEntry
	byKey    map[string]*list.Element
}

// cacheEntry is one cached result, stored as a checksummed envelope.
type cacheEntry struct {
	key string
	env []byte
}

// newResultCache returns an empty cache bounded to maxBytes of
// encoded envelopes.
func newResultCache(maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		maxBytes = defaultRouterCacheBytes
	}
	return &resultCache{maxBytes: maxBytes, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached body for key and refreshes its recency. The
// envelope is verified on the way out: a corrupt entry is dropped and
// reported as a miss, never served.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	gotKey, body, err := store.DecodeEnvelope(ent.env)
	if err != nil || gotKey != key {
		c.removeLocked(el)
		return nil, false
	}
	c.order.MoveToFront(el)
	return body, true
}

// put stores a body under key, evicting least-recently-used entries
// until the cache fits its byte budget. A body whose envelope alone
// exceeds the budget is not cached at all.
func (c *resultCache) put(key string, body []byte) {
	env := store.EncodeEnvelope(key, body)
	if int64(len(env)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.size += int64(len(env)) - int64(len(ent.env))
		ent.env = env
		c.order.MoveToFront(el)
	} else {
		c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, env: env})
		c.size += int64(len(env))
	}
	for c.size > c.maxBytes && c.order.Len() > 1 {
		c.removeLocked(c.order.Back())
	}
}

// removeLocked drops one entry. Caller holds c.mu.
func (c *resultCache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.order.Remove(el)
	delete(c.byKey, ent.key)
	c.size -= int64(len(ent.env))
}

// bytes returns the cache's current encoded size — the
// simd_router_cache_bytes gauge.
func (c *resultCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

package shard

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"

	"repro/internal/obs"
	"repro/internal/service"
)

// scrapeRouter fetches and parses the router's aggregated /metrics.
func scrapeRouter(t *testing.T, front string) []obs.Family {
	t.Helper()
	resp, err := http.Get(front + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

func TestRouterMetricsAggregateShards(t *testing.T) {
	const n = 3
	_, front := newCluster(t, n, service.Options{Workers: 1})

	// One request so backend series exist with real traffic.
	if status, _, body := post(t, front+"/run", map[string]any{"spec": testSpec(70)}); status != http.StatusOK {
		t.Fatalf("run status %d: %s", status, body)
	}

	fams := scrapeRouter(t, front)

	// Every shard answered this scrape and its series carry its label.
	jobsTotal := 0
	for i := 0; i < n; i++ {
		label := strconv.Itoa(i)
		if v := obs.Find(fams, "simd_shard_up", "shard", label); len(v) != 1 || v[0] != "1" {
			t.Fatalf("shard %d up = %v", i, v)
		}
		v := obs.Find(fams, "simd_jobs_total", "shard", label)
		if len(v) != 1 {
			t.Fatalf("shard %d jobs series: %v", i, v)
		}
		jobs, err := strconv.Atoi(v[0])
		if err != nil {
			t.Fatal(err)
		}
		jobsTotal += jobs
	}
	if jobsTotal != 1 {
		t.Fatalf("cluster jobs = %d, want 1", jobsTotal)
	}

	// The router's own families ride the same scrape.
	if v := obs.Find(fams, "simd_router_shards"); len(v) != 1 || v[0] != "3" {
		t.Fatalf("simd_router_shards = %v", v)
	}
	if v := obs.Find(fams, "simd_router_http_requests_total", "endpoint", "/run", "code", "200"); len(v) != 1 || v[0] != "1" {
		t.Fatalf("router /run count = %v", v)
	}
	// Exactly one backend attempt was made, recorded per shard.
	attempts := 0
	for i := 0; i < n; i++ {
		for _, v := range obs.Find(fams, "simd_router_attempt_seconds_count", "shard", strconv.Itoa(i)) {
			c, err := strconv.Atoi(v)
			if err != nil {
				t.Fatal(err)
			}
			attempts += c
		}
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
}

func TestRouterPropagatesRequestIDAndTiming(t *testing.T) {
	_, front := newCluster(t, 2, service.Options{Workers: 1})

	body, err := json.Marshal(map[string]any{"spec": testSpec(71)})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, front+"/run", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "cluster-trace-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != "cluster-trace-7" {
		t.Fatalf("router echoed rid %q", got)
	}
	// The backend's per-stage timing breakdown survives the proxy hop.
	if tm := resp.Header.Get(service.TimingHeader); tm == "" {
		t.Fatal("X-Timing not forwarded through the router")
	}
}

func TestRouterErrorBodyCarriesRequestID(t *testing.T) {
	_, front := newCluster(t, 1, service.Options{Workers: 1})
	req, _ := http.NewRequest(http.MethodPost, front+"/run", bytes.NewReader([]byte(`{}`)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "router-err-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var e struct {
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != "router-err-1" {
		t.Fatalf("error body rid = %q", e.RequestID)
	}
}

func TestRouterVersionAndHealthzVersion(t *testing.T) {
	_, front := newCluster(t, 1, service.Options{Workers: 1})

	resp, err := http.Get(front + "/version")
	if err != nil {
		t.Fatal(err)
	}
	var v service.VersionInfo
	err = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" || v.Pid == 0 {
		t.Fatalf("implausible router version: %+v", v)
	}

	resp2, err := http.Get(front + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h ClusterHealth
	err = json.NewDecoder(resp2.Body).Decode(&h)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.Version == nil || h.Version.GoVersion == "" {
		t.Fatalf("cluster health missing router version: %+v", h)
	}
	if len(h.Shards) != 1 || h.Shards[0].Health == nil || h.Shards[0].Health.GoVersion == "" {
		t.Fatalf("shard health missing go_version: %+v", h.Shards)
	}
	if h.Restarts != 0 || h.Shards[0].Restarts != 0 {
		t.Fatalf("unsupervised cluster reports restarts: %+v", h)
	}
}

package shard

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/store"
)

func cacheTestKey(i int) string {
	return "run:TL:" + strings.Repeat(fmt.Sprintf("%02x", i%256), 32)
}

func TestResultCacheRoundTrip(t *testing.T) {
	c := newResultCache(1 << 20)
	key := cacheTestKey(1)
	body := []byte(`{"cycles":123}`)
	if _, ok := c.get(key); ok {
		t.Fatal("empty cache claimed a hit")
	}
	c.put(key, body)
	got, ok := c.get(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("cached body %q, want %q", got, body)
	}
	if c.len() != 1 {
		t.Fatalf("len %d, want 1", c.len())
	}
}

func TestResultCacheEvictsLRUByBytes(t *testing.T) {
	// Budget that holds roughly 3 small entries; inserting more must
	// evict from the cold end, never the hot one.
	body := bytes.Repeat([]byte(`x`), 100)
	env := store.EncodeEnvelope(cacheTestKey(0), body)
	c := newResultCache(int64(3 * len(env)))
	for i := 0; i < 5; i++ {
		c.put(cacheTestKey(i), body)
	}
	if c.bytes() > int64(3*len(env)) {
		t.Fatalf("cache holds %d bytes over the %d budget", c.bytes(), 3*len(env))
	}
	if _, ok := c.get(cacheTestKey(0)); ok {
		t.Fatal("oldest entry survived past the byte budget")
	}
	if _, ok := c.get(cacheTestKey(4)); !ok {
		t.Fatal("newest entry evicted")
	}
	// Touch an old survivor, overflow again: the touched entry stays.
	if _, ok := c.get(cacheTestKey(2)); !ok {
		t.Fatal("expected entry 2 resident")
	}
	c.put(cacheTestKey(5), body)
	c.put(cacheTestKey(6), body)
	if _, ok := c.get(cacheTestKey(2)); !ok {
		t.Fatal("recently-touched entry evicted before colder ones")
	}
}

func TestResultCacheUpdateInPlace(t *testing.T) {
	c := newResultCache(1 << 20)
	key := cacheTestKey(7)
	c.put(key, []byte(`{"v":1}`))
	c.put(key, []byte(`{"v":2,"bigger":true}`))
	if c.len() != 1 {
		t.Fatalf("len %d after double put, want 1", c.len())
	}
	got, ok := c.get(key)
	if !ok || !bytes.Equal(got, []byte(`{"v":2,"bigger":true}`)) {
		t.Fatalf("got %q ok=%v", got, ok)
	}
	want := int64(len(store.EncodeEnvelope(key, []byte(`{"v":2,"bigger":true}`))))
	if c.bytes() != want {
		t.Fatalf("size %d after update, want %d", c.bytes(), want)
	}
}

func TestResultCacheOversizedBodyNotCached(t *testing.T) {
	c := newResultCache(64)
	c.put(cacheTestKey(8), bytes.Repeat([]byte(`y`), 1000))
	if c.len() != 0 || c.bytes() != 0 {
		t.Fatalf("oversized body cached: len=%d bytes=%d", c.len(), c.bytes())
	}
}

func TestResultCacheCorruptEntryDegradesToMiss(t *testing.T) {
	c := newResultCache(1 << 20)
	key := cacheTestKey(9)
	c.put(key, []byte(`{"v":1}`))
	// Flip a payload byte behind the cache's back; the envelope
	// checksum must catch it and the entry must be dropped, not served.
	el := c.byKey[key]
	env := el.Value.(*cacheEntry).env
	env[len(env)-2] ^= 0xff
	if _, ok := c.get(key); ok {
		t.Fatal("corrupt envelope served as a hit")
	}
	if c.len() != 0 {
		t.Fatal("corrupt entry not dropped")
	}
}

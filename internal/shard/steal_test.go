package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/sweep"
)

// stealGrid is a 32-variant grid — big enough that a concurrency-
// skewed cluster reliably work-steals.
func stealGrid(salt int) map[string]any {
	return map[string]any{
		"base":  testSpec(salt),
		"name":  "grid/steal",
		"model": "tl",
		"axes": []map[string]any{
			{"param": "write_buffer_depth", "values": []int{0, 2, 4, 8}},
			{"param": "bi_enabled", "values": []bool{true, false}},
			{"param": "count", "values": []int{10, 11, 12, 13}},
		},
	}
}

// expandStealGrid mirrors the router's expansion of stealGrid so a
// test can map a streamed row's hash back to the variant spec.
func expandStealGrid(t *testing.T, salt int) []sweep.Variant {
	t.Helper()
	return sweep.MustExpand(sweep.Grid{
		Name: "grid/steal", Base: testSpec(salt),
		Axes: []sweep.Axis{
			{Param: sweep.ParamWriteBufferDepth, Values: []sweep.Value{{V: 0}, {V: 2}, {V: 4}, {V: 8}}},
			{Param: sweep.ParamBIEnabled, Values: []sweep.Value{{V: true}, {V: false}}},
			{Param: sweep.ParamCount, Values: []sweep.Value{{V: 10}, {V: 11}, {V: 12}, {V: 13}}},
		},
	})
}

// sortRowsByIndex orders streamed rows by grid coordinate — router
// streams emit in completion order, which set comparisons must not
// depend on.
func sortRowsByIndex(rows []Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })
}

// readRouterStream reads any router NDJSON sweep stream (POST body or
// GET resume) into rows plus the terminal summary.
func readRouterStream(t *testing.T, resp *http.Response) ([]Row, service.SweepSummary, bool) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	var rows []Row
	summary, done, err := service.DecodeSweepStream(resp.Body, func(line []byte) error {
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			return err
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows, summary, done
}

func TestSweepWorkStealingWritesBackToOwner(t *testing.T) {
	// A 2-shard cluster with an 8:1 worker skew: the fast shard drains
	// its own queue and must steal from the slow owner's backlog. The
	// stream must still be exactly the grid, stolen rows must carry
	// the owner->thief tag, and every stolen envelope must land in the
	// OWNER's store byte-identically — ownership places the cache,
	// stealing only moves the compute.
	_, slowTS := newBackend(t, service.Options{Workers: 1, Queue: 64})
	_, fastTS := newBackend(t, service.Options{Workers: 8, Queue: 64})
	backends := []*httptest.Server{slowTS, fastTS}
	rt, err := New(Options{Backends: []string{slowTS.URL, fastTS.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	hdr, rows, sum, done := readSweep(t, front.URL, stealGrid(70))
	if !done || sum.Errors != 0 {
		t.Fatalf("stream done=%v summary=%+v", done, sum)
	}
	if got := hdr.Get("X-Sweep-Variants"); got != "32" {
		t.Fatalf("X-Sweep-Variants = %q", got)
	}
	if hdr.Get(service.SweepIDHeader) == "" {
		t.Fatalf("missing %s on router sweep", service.SweepIDHeader)
	}

	// Union of streamed rows is exactly the grid: 32 indices, no
	// duplicates, no gaps, no errors.
	if len(rows) != 32 {
		t.Fatalf("%d rows, want 32", len(rows))
	}
	seen := make(map[int]bool, 32)
	for _, row := range rows {
		if row.Error != "" {
			t.Fatalf("row %d error: %s", row.Index, row.Error)
		}
		if row.Index < 0 || row.Index >= 32 || seen[row.Index] {
			t.Fatalf("index %d out of range or duplicated", row.Index)
		}
		seen[row.Index] = true
	}

	stolen := 0
	byHash := make(map[string]sweep.Variant)
	for _, v := range expandStealGrid(t, 70) {
		byHash[v.Hash] = v
	}
	for _, row := range rows {
		if row.Stolen == "" {
			continue
		}
		stolen++
		var owner, thief int
		if _, err := fmt.Sscanf(row.Stolen, "%d->%d", &owner, &thief); err != nil ||
			owner == thief || owner < 0 || owner > 1 || thief < 0 || thief > 1 {
			t.Fatalf("malformed stolen tag %q", row.Stolen)
		}
		if row.Shard != thief {
			t.Fatalf("stolen row served by shard %d but tagged thief %d", row.Shard, thief)
		}
		v, ok := byHash[row.Hash]
		if !ok {
			t.Fatalf("stolen row hash %q not in the expanded grid", row.Hash)
		}
		// The write-back must have seeded the owner's store: a direct
		// /run against the owner is a hit with the row's exact bytes.
		status, h, body := post(t, backends[owner].URL+"/run", map[string]any{"spec": v.Spec, "model": "tl"})
		if status != http.StatusOK {
			t.Fatalf("owner replay status %d: %s", status, body)
		}
		if h.Get("X-Cache") != "hit" {
			t.Fatalf("owner replay of stolen variant %d was %q, want hit (write-back missing)",
				row.Index, h.Get("X-Cache"))
		}
		if !bytes.Equal(body, row.Result) {
			t.Fatalf("owner's stored envelope differs from the streamed row:\n%s\n%s", body, row.Result)
		}
	}
	if stolen == 0 {
		t.Fatal("8:1 concurrency skew produced zero steals")
	}

	// Warm re-sweep: every variant is now stored on its owner (write-
	// backs included), so the thief's pre-steal probe must convert
	// every would-be steal into an owner-served cache hit. Stealing is
	// for misses only — a warm grid replays owner-placed and untagged.
	_, warm, warmSum, warmDone := readSweep(t, front.URL, stealGrid(70))
	if !warmDone || warmSum.Errors != 0 || len(warm) != 32 {
		t.Fatalf("warm re-sweep done=%v rows=%d summary=%+v", warmDone, len(warm), warmSum)
	}
	for _, row := range warm {
		if row.Stolen != "" {
			t.Fatalf("warm row %d stolen (%s) despite the owner holding the bytes — probe skipped?", row.Index, row.Stolen)
		}
		if row.Cache != "hit" {
			t.Fatalf("warm row %d disposition %q, want hit", row.Index, row.Cache)
		}
		if want := Owner(row.Hash, 2); row.Shard != want {
			t.Fatalf("warm row %d served by shard %d, owner %d", row.Index, row.Shard, want)
		}
	}

	// The thief's steal counter made it into the metric vocabulary.
	status, _, metrics := get(t, front.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	if !strings.Contains(string(metrics), "simd_router_steals_total") {
		t.Fatal("simd_router_steals_total missing from /metrics")
	}
}

// get issues a GET and returns status, headers, body.
func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func TestRouterSweepStatusResumeAndStoredAnalyze(t *testing.T) {
	_, front := newCluster(t, 2, service.Options{Workers: 2, Queue: 64})
	req := gridRequest(71)

	hdr, rows, _, done := readSweep(t, front, req)
	if !done || len(rows) != 8 {
		t.Fatalf("sweep done=%v rows=%d", done, len(rows))
	}
	id := hdr.Get(service.SweepIDHeader)
	if id == "" {
		t.Fatalf("missing %s", service.SweepIDHeader)
	}

	// Cluster-wide status: the router finds the manifest on whichever
	// shard owns the sweep id.
	status, shdr, body := get(t, front+"/sweep/"+id)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if shdr.Get(service.SweepIDHeader) != id {
		t.Fatalf("status header %q", shdr.Get(service.SweepIDHeader))
	}
	var st service.SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Complete || st.DoneCount != 8 || st.Total != 8 {
		t.Fatalf("status %+v, want complete 8/8", st)
	}

	// Resume past index 5: exactly indices 6 and 7, twice (duplicate
	// offsets are idempotent replay).
	for round := 0; round < 2; round++ {
		resp, err := http.Get(front + "/sweep/" + id + "/resume?after=5")
		if err != nil {
			t.Fatal(err)
		}
		rrows, rsum, rdone := readRouterStream(t, resp)
		if !rdone || rsum.Rows != 2 || len(rrows) != 2 {
			t.Fatalf("round %d resume: done=%v summary=%+v rows=%d", round, rdone, rsum, len(rrows))
		}
		sortRowsByIndex(rrows)
		for i, row := range rrows {
			if row.Index != 6+i {
				t.Fatalf("round %d resume row %d index %d", round, i, row.Index)
			}
		}
	}

	// Unknown id: 404 with the re-POST hint.
	status, _, body = get(t, front+"/sweep/"+strings.Repeat("ab", 32))
	if status != http.StatusNotFound || !strings.Contains(string(body), "re-POST") {
		t.Fatalf("unknown id: %d %s", status, body)
	}
	status, _, body = get(t, front+"/sweep/"+strings.Repeat("ab", 32)+"/resume?after=0")
	if status != http.StatusNotFound {
		t.Fatalf("unknown id resume: %d %s", status, body)
	}

	// Stored analyze against the bare id is byte-identical to the
	// inline grid analyze — zero re-simulation, same document.
	inline := analyzeRequest(71)
	status, _, want := post(t, front+"/sweep/analyze", inline)
	if status != http.StatusOK {
		t.Fatalf("inline analyze status %d: %s", status, want)
	}
	sel := map[string]any{
		"metric": "cycles", "top_k": 3,
		"frontier": map[string]any{"x": "cycles", "y": "throughput", "y_objective": "max"},
	}
	status, ahdr, got := post(t, front+"/sweep/"+id+"/analyze", sel)
	if status != http.StatusOK {
		t.Fatalf("stored analyze status %d: %s", status, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("stored analyze differs from inline:\n%s\n%s", want, got)
	}
	if ahdr.Get(service.SweepIDHeader) != id {
		t.Fatalf("stored analyze id header %q", ahdr.Get(service.SweepIDHeader))
	}
}

func TestRouterResumeSkewedOffsetsMatchByteForByte(t *testing.T) {
	// The same offset resumed through the router and against a fresh
	// single-process server must agree row for row — resume is replay
	// of a deterministic grid, not shard-local bookkeeping.
	_, singleTS := newBackend(t, service.Options{Workers: 2, Queue: 64})
	_, front := newCluster(t, 2, service.Options{Workers: 2, Queue: 64})
	req := gridRequest(72)

	sh, srows, _, _ := readSweep(t, front, req)
	id := sh.Get(service.SweepIDHeader)
	if len(srows) != 8 {
		t.Fatalf("cluster sweep rows %d", len(srows))
	}
	// Run the same grid single-process so both sides hold the results.
	st1, h1, b1 := post(t, singleTS.URL+"/sweep", req)
	if st1 != http.StatusOK {
		t.Fatalf("single sweep status %d: %s", st1, b1)
	}
	if h1.Get(service.SweepIDHeader) != id {
		t.Fatalf("tiers disagree on sweep id: %q vs %q", h1.Get(service.SweepIDHeader), id)
	}

	resp, err := http.Get(front + "/sweep/" + id + "/resume?after=3")
	if err != nil {
		t.Fatal(err)
	}
	clusterRows, _, cdone := readRouterStream(t, resp)
	resp, err = http.Get(singleTS.URL + "/sweep/" + id + "/resume?after=3")
	if err != nil {
		t.Fatal(err)
	}
	singleRows, _, sdone := readRouterStream(t, resp)
	if !cdone || !sdone || len(clusterRows) != 4 || len(singleRows) != 4 {
		t.Fatalf("resume shapes: cluster %d/%v single %d/%v", len(clusterRows), cdone, len(singleRows), sdone)
	}
	// The router streams rows in completion order; compare the sets
	// by grid coordinate.
	sortRowsByIndex(clusterRows)
	sortRowsByIndex(singleRows)
	for i := range clusterRows {
		c, s := clusterRows[i], singleRows[i]
		if c.Index != s.Index || c.Hash != s.Hash || !bytes.Equal(c.Result, s.Result) {
			t.Fatalf("resume row %d differs across tiers:\nindex %d/%d hash %s/%s", i, c.Index, s.Index, c.Hash, s.Hash)
		}
	}
}

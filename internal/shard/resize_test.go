package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/service"
)

// resizeCluster is a router over n store-backed backends with direct
// access to both tiers — what the resize and drain tests drive.
type resizeCluster struct {
	rt       *Router
	front    string
	backends []*httptest.Server
	// runCalls counts /run and /compare requests reaching backend i —
	// the ground truth for "zero backend round trips".
	runCalls []*atomic.Int64
}

// newResizeCluster builds n backends (each with its own store dir when
// withStore) and a router with the given result-cache budget.
func newResizeCluster(t *testing.T, n int, withStore bool, cacheBytes int64) *resizeCluster {
	t.Helper()
	c := &resizeCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		opt := service.Options{Workers: 2}
		if withStore {
			opt.StoreDir = filepath.Join(t.TempDir(), "shard-"+strconv.Itoa(i))
		}
		srv, err := service.New(opt)
		if err != nil {
			t.Fatal(err)
		}
		calls := &atomic.Int64{}
		h := srv.Handler()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/run" || r.URL.Path == "/compare" {
				calls.Add(1)
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		c.backends = append(c.backends, ts)
		c.runCalls = append(c.runCalls, calls)
		urls[i] = ts.URL
	}
	rt, err := New(Options{Backends: urls, RouterCacheBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	c.rt = rt
	c.front = front.URL
	return c
}

func (c *resizeCluster) totalRunCalls() int64 {
	var n int64
	for _, calls := range c.runCalls {
		n += calls.Load()
	}
	return n
}

func TestRouterCacheServesRepeatsWithZeroBackendRoundTrips(t *testing.T) {
	c := newResizeCluster(t, 2, false, 64<<20)
	sp := testSpec(400)
	hash, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}

	status, hdr, first := post(t, c.front+"/run", map[string]any{"spec": sp, "model": "tl"})
	if status != http.StatusOK {
		t.Fatalf("first run: %d %s", status, first)
	}
	if hdr.Get("X-Cache") == routerHit {
		t.Fatal("cold request claimed a router hit")
	}
	if n := c.totalRunCalls(); n != 1 {
		t.Fatalf("cold request cost %d backend calls, want 1", n)
	}

	status, hdr, second := post(t, c.front+"/run", map[string]any{"spec": sp, "model": "tl"})
	if status != http.StatusOK {
		t.Fatalf("repeat run: %d %s", status, second)
	}
	if hdr.Get("X-Cache") != routerHit {
		t.Fatalf("repeat X-Cache %q, want %q", hdr.Get("X-Cache"), routerHit)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("router-cached body differs from the backend's")
	}
	if hdr.Get("X-Spec-Hash") != hash {
		t.Fatalf("router hit X-Spec-Hash %q, want %q", hdr.Get("X-Spec-Hash"), hash)
	}
	wantShard := strconv.Itoa(OwnerID(hash, c.rt.view().ids))
	if hdr.Get("X-Shard") != wantShard {
		t.Fatalf("router hit X-Shard %q, want owner %q", hdr.Get("X-Shard"), wantShard)
	}
	// THE acceptance claim: the repeat reached no backend.
	if n := c.totalRunCalls(); n != 1 {
		t.Fatalf("repeat cost backend calls: %d total, want still 1", n)
	}

	// A different model of the same spec is a different result key —
	// it must NOT be served from the tl entry.
	status, hdr, _ = post(t, c.front+"/run", map[string]any{"spec": sp, "model": "rtl"})
	if status != http.StatusOK || hdr.Get("X-Cache") == routerHit {
		t.Fatalf("rtl run status=%d cache=%q; distinct keys must miss", status, hdr.Get("X-Cache"))
	}
}

func TestRouterCacheServesSweepVariants(t *testing.T) {
	c := newResizeCluster(t, 2, false, 64<<20)
	req := gridRequest(410)
	_, rows, summary, done := readSweep(t, c.front, req)
	if !done || summary.Errors != 0 {
		t.Fatalf("cold sweep: done=%v errors=%d", done, summary.Errors)
	}
	cold := c.totalRunCalls()
	if cold == 0 {
		t.Fatal("cold sweep reached no backend")
	}
	_, rows, summary, done = readSweep(t, c.front, req)
	if !done || summary.Errors != 0 {
		t.Fatalf("warm sweep: done=%v errors=%d", done, summary.Errors)
	}
	for _, row := range rows {
		if row.Cache != routerHit {
			t.Fatalf("warm row %s cache %q, want %q", row.Name, row.Cache, routerHit)
		}
	}
	if n := c.totalRunCalls(); n != cold {
		t.Fatalf("warm sweep cost %d extra backend calls", n-cold)
	}
}

func TestAdminGrowAdmitsNewBackendsAtNextEpoch(t *testing.T) {
	c := newResizeCluster(t, 2, false, 0)
	if top := c.rt.Topology(); top.Epoch != 1 || len(top.Members) != 2 {
		t.Fatalf("boot topology %+v", top)
	}

	// A third backend, admitted live.
	srv, err := service.New(service.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	status, _, body := post(t, c.front+"/admin/shards", map[string]any{"backends": []string{ts.URL}})
	if status != http.StatusOK {
		t.Fatalf("grow: %d %s", status, body)
	}
	var top Topology
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatal(err)
	}
	if top.Epoch != 2 || len(top.Members) != 3 || top.Members[2].ID != 2 || top.Members[2].Addr != ts.URL {
		t.Fatalf("post-grow topology %+v", top)
	}

	// The healthz schema carries the same epoch and membership.
	resp, err := http.Get(c.front + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h ClusterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Epoch != 2 || len(h.Topology) != 3 || len(h.Shards) != 3 || !h.OK {
		t.Fatalf("healthz after grow: epoch=%d topology=%d shards=%d ok=%v", h.Epoch, len(h.Topology), len(h.Shards), h.OK)
	}
	for i, sh := range h.Shards {
		if sh.ID != i {
			t.Fatalf("healthz shard %d carries ID %d", i, sh.ID)
		}
	}

	// The new member serves its rendezvous slice: some spec must now be
	// owned by (and served from) shard 2.
	served := false
	for salt := 0; salt < 40 && !served; salt++ {
		sp := testSpec(500 + salt)
		hash, err := sp.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if OwnerID(hash, top.IDs()) != 2 {
			continue
		}
		status, hdr, body := post(t, c.front+"/run", map[string]any{"spec": sp, "model": "tl"})
		if status != http.StatusOK {
			t.Fatalf("run on new shard: %d %s", status, body)
		}
		if hdr.Get("X-Shard") != "2" || hdr.Get("X-Failover") != "" {
			t.Fatalf("new-shard spec served by %q (failover %q)", hdr.Get("X-Shard"), hdr.Get("X-Failover"))
		}
		served = true
	}
	if !served {
		t.Fatal("no test spec landed on the new shard — degenerate salt range")
	}

	// Malformed grows are rejected without touching the topology.
	for _, bad := range []map[string]any{
		{},
		{"count": 1, "backends": []string{ts.URL}},
		{"count": 1}, // unsupervised cluster
		{"backends": []string{"localhost:9"}},
	} {
		if status, _, body := post(t, c.front+"/admin/shards", bad); status != http.StatusBadRequest {
			t.Fatalf("grow %v: status %d, want 400: %s", bad, status, body)
		}
	}
	if top := c.rt.Topology(); top.Epoch != 2 {
		t.Fatalf("rejected grows moved the epoch to %d", top.Epoch)
	}
}

// drainedKeys fetches every key a backend holds, via the enumeration
// endpoint the drain itself uses.
func drainedKeys(t *testing.T, base string) []string {
	t.Helper()
	resp, err := http.Get(base + "/results?prefix=")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enumerate status %d", resp.StatusCode)
	}
	var out struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Keys
}

func TestDrainMigratesEveryEnvelopeByteIdentically(t *testing.T) {
	c := newResizeCluster(t, 3, true, 0)

	// Populate every store: one sweep spreads variants (and a manifest)
	// across the cluster.
	_, rows, summary, done := readSweep(t, c.front, gridRequest(600))
	if !done || summary.Errors != 0 {
		t.Fatalf("seed sweep: done=%v errors=%d", done, summary.Errors)
	}

	// Record the retiring shard's full inventory, body by body.
	const drained = 1
	keys := drainedKeys(t, c.backends[drained].URL)
	if len(keys) == 0 {
		t.Fatal("degenerate test: drained shard holds nothing")
	}
	held := map[string][]byte{}
	for _, key := range keys {
		resp, err := http.Get(c.backends[drained].URL + "/results?key=" + url.QueryEscape(key))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := readAll(t, resp)
		if resp.StatusCode == http.StatusOK {
			held[key] = body
		}
	}

	status, _, body := post(t, c.front+"/admin/shards/"+strconv.Itoa(drained)+"/drain", nil)
	if status != http.StatusOK {
		t.Fatalf("drain: %d %s", status, body)
	}
	var report DrainReport
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if report.Drained != drained || report.Epoch != 2 || len(report.Topology) != 2 {
		t.Fatalf("drain report %+v", report)
	}
	if report.Moved < len(held) {
		t.Fatalf("report moved %d, held at least %d", report.Moved, len(held))
	}
	remaining := []int{0, 2}
	if got := c.rt.Topology().IDs(); !equalInts(got, remaining) {
		t.Fatalf("post-drain IDs %v, want %v", got, remaining)
	}

	// Every result envelope the shard held now lives on its rendezvous
	// owner under the NEW membership, byte-identical.
	for key, want := range held {
		if len(key) < 64 {
			continue
		}
		hash := key[len(key)-64:]
		owner := OwnerID(hash, remaining)
		if bytes.HasPrefix([]byte(key), []byte("sweep:")) {
			// Manifests merge-persist; assert presence, not bytes.
			resp, err := http.Get(c.backends[owner].URL + "/sweep/" + hash)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("manifest %s absent from new owner %d", key, owner)
			}
			continue
		}
		resp, err := http.Get(c.backends[owner].URL + "/results?key=" + url.QueryEscape(key))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("key %s absent from new owner %d: %d", key, owner, resp.StatusCode)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %s not byte-identical after migration", key)
		}
	}

	// The drained shard's keyspace replays as warm hits from the new
	// owners: re-run the sweep, no errors, no row served by the
	// retired ID, every row a hit.
	_, rows, summary, done = readSweep(t, c.front, gridRequest(600))
	if !done || summary.Errors != 0 {
		t.Fatalf("replay sweep: done=%v errors=%d", done, summary.Errors)
	}
	for _, row := range rows {
		if row.Shard == drained {
			t.Fatalf("row %s served by the drained shard", row.Name)
		}
		if row.Cache != "hit" {
			t.Fatalf("replay row %s cache %q, want hit from the new owner", row.Name, row.Cache)
		}
	}

	// Draining the unknown and the drained again both 404.
	if status, _, _ := post(t, c.front+"/admin/shards/1/drain", nil); status != http.StatusNotFound {
		t.Fatalf("double drain status %d, want 404", status)
	}
	if status, _, _ := post(t, c.front+"/admin/shards/99/drain", nil); status != http.StatusNotFound {
		t.Fatalf("unknown drain status %d, want 404", status)
	}
}

func TestConcurrentRunsDuringDrainNeverMiss(t *testing.T) {
	c := newResizeCluster(t, 3, true, 0)

	// Warm a fixed working set through the router: every spec cached on
	// its owner (memory + disk).
	specs := make([]map[string]any, 0, 12)
	for salt := 0; salt < 12; salt++ {
		sp := testSpec(700 + salt)
		req := map[string]any{"spec": sp, "model": "tl"}
		if status, _, body := post(t, c.front+"/run", req); status != http.StatusOK {
			t.Fatalf("warmup %d: %d %s", salt, status, body)
		}
		specs = append(specs, req)
	}

	// Hammer the warm set from several clients while shard 1 drains.
	stop := make(chan struct{})
	var misses, failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := specs[(g+i)%len(specs)]
				buf, _ := json.Marshal(req)
				resp, err := http.Post(c.front+"/run", "application/json", bytes.NewReader(buf))
				if err != nil {
					failures.Add(1)
					continue
				}
				cache := resp.Header.Get("X-Cache")
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				} else if cache == "miss" {
					// A previously-cached key must never be recomputed:
					// pre-swap it is served by its old owner's cache,
					// post-swap by the migrated copy on its new owner.
					misses.Add(1)
				}
			}
		}(g)
	}

	status, _, body := post(t, c.front+"/admin/shards/1/drain", nil)
	close(stop)
	wg.Wait()
	if status != http.StatusOK {
		t.Fatalf("drain under load: %d %s", status, body)
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d request failures during drain", n)
	}
	if n := misses.Load(); n != 0 {
		t.Fatalf("%d cache misses during drain — a warm key went cold", n)
	}
}

func readAll(t *testing.T, resp *http.Response) ([]byte, error) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSupervisorRetireStateVisible(t *testing.T) {
	// Retire on an unknown id is a no-op, not a panic.
	s := &Supervisor{}
	s.Retire(42)
	if fmt.Sprint(ProcRetired) != "retired" {
		t.Fatal("retired state constant changed")
	}
}

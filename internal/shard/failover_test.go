// Failover-path tests: the rendezvous rank order, the circuit
// breaker's state machine, and the router behaviors built on them —
// hung shards cut by the attempt timeout, kill-then-recover sweeps,
// client disconnects mid-failover. The chaos package supplies the
// faults; everything here runs real service backends behind httptest.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/service"
)

func TestRankHeadsWithOwnerAndPermutes(t *testing.T) {
	for salt := 0; salt < 40; salt++ {
		sp := testSpec(salt)
		hash, err := sp.Hash()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 3, 5, 8} {
			ranks := Rank(hash, n)
			if len(ranks) != n {
				t.Fatalf("Rank(%q, %d) has %d entries", hash, n, len(ranks))
			}
			if ranks[0] != Owner(hash, n) {
				t.Fatalf("Rank(%q, %d)[0] = %d, Owner = %d", hash, n, ranks[0], Owner(hash, n))
			}
			seen := make([]bool, n)
			for _, idx := range ranks {
				if idx < 0 || idx >= n || seen[idx] {
					t.Fatalf("Rank(%q, %d) = %v is not a permutation", hash, n, ranks)
				}
				seen[idx] = true
			}
			// Determinism: the failover order must be the same on every
			// router replica, or replicas would place failover traffic on
			// different shards and shred the cache.
			again := Rank(hash, n)
			for i := range ranks {
				if ranks[i] != again[i] {
					t.Fatalf("Rank(%q, %d) unstable: %v vs %v", hash, n, ranks, again)
				}
			}
		}
	}
	// Degenerate single-shard cluster: rank is trivially [0].
	if r := Rank("anything", 1); len(r) != 1 || r[0] != 0 {
		t.Fatalf("Rank(_, 1) = %v", r)
	}
}

func TestBreakerTripsAfterConsecutiveFailuresOnly(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	// A probe that never succeeds, on a long interval: this test drives
	// the closed-state bookkeeping only.
	b := newBreaker(3, time.Hour, func(context.Context) error { return errors.New("down") }, stop)

	if b.State() != breakerClosed || !b.allow() {
		t.Fatalf("new breaker state %q allow %v", b.State(), b.allow())
	}
	// Two failures, then a success: the streak must reset — a single
	// flaky dial plus background noise must not eject a healthy shard.
	b.failure()
	b.failure()
	b.success()
	b.failure()
	b.failure()
	if b.State() != breakerClosed {
		t.Fatalf("state %q after interrupted streak, want closed", b.State())
	}
	b.failure() // third CONSECUTIVE failure
	if b.State() != breakerOpen || b.allow() {
		t.Fatalf("state %q allow %v after threshold, want open/refusing", b.State(), b.allow())
	}
}

func TestBreakerProbeRecoveryAndHalfOpenTrial(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	var healthy atomic.Bool
	probes := atomic.Int32{}
	b := newBreaker(1, 2*time.Millisecond, func(context.Context) error {
		probes.Add(1)
		if healthy.Load() {
			return nil
		}
		return errors.New("still down")
	}, stop)

	b.failure() // threshold 1: open immediately
	if b.State() != breakerOpen {
		t.Fatalf("state %q, want open", b.State())
	}
	// While the backend stays down, the prober must keep polling
	// without ever moving the state.
	deadline := time.Now().Add(5 * time.Second)
	for probes.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d probes fired", probes.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if b.State() != breakerOpen {
		t.Fatalf("state %q while backend down, want open", b.State())
	}

	// Backend heals: the next probe moves the breaker to half-open and
	// the prober exits — the next REAL request is the trial.
	healthy.Store(true)
	for b.State() != breakerHalfOpen {
		if time.Now().After(deadline) {
			t.Fatalf("state %q, never reached half-open", b.State())
		}
		time.Sleep(time.Millisecond)
	}
	if !b.allow() {
		t.Fatal("half-open breaker must admit the trial request")
	}

	// Trial fails: straight back to open, prober restarted.
	healthy.Store(false)
	b.failure()
	if b.State() != breakerOpen {
		t.Fatalf("state %q after failed trial, want open", b.State())
	}
	healthy.Store(true)
	for b.State() != breakerHalfOpen {
		if time.Now().After(deadline) {
			t.Fatalf("prober did not restart after the failed trial (state %q)", b.State())
		}
		time.Sleep(time.Millisecond)
	}
	// Trial succeeds: closed, traffic flows.
	b.success()
	if b.State() != breakerClosed || !b.allow() {
		t.Fatalf("state %q allow %v after successful trial", b.State(), b.allow())
	}
}

// chaosBackend is a real service worker with a chaos injector between
// the router and its handler.
func chaosBackend(t *testing.T, opt service.Options) (*chaos.Injector, *httptest.Server) {
	t.Helper()
	srv, err := service.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	in := &chaos.Injector{}
	ts := httptest.NewServer(in.Middleware(srv.Handler()))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return in, ts
}

// specOwnedBy finds a test spec whose owner (in an n-shard cluster) is
// the wanted shard.
func specOwnedBy(t *testing.T, n, want int) (map[string]any, string) {
	t.Helper()
	for salt := 100; salt < 200; salt++ {
		sp := testSpec(salt)
		hash, err := sp.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if Owner(hash, n) == want {
			return map[string]any{"spec": sp, "model": "tl"}, hash
		}
	}
	t.Fatalf("no test spec owned by shard %d of %d", want, n)
	return nil, ""
}

func TestRouterAttemptTimeoutCutsHungShardAndFailsOver(t *testing.T) {
	// Shard 1 wedges (its handler hangs forever) but keeps answering
	// /healthz — the nastiest failure shape, because nothing errors.
	// The router's per-attempt timeout must cut the attempt, charge the
	// breaker, and serve the spec from the next-ranked shard.
	_, tsA := newBackend(t, service.Options{Workers: 2})
	inB, tsB := chaosBackend(t, service.Options{Workers: 2})
	inB.ArmPath(chaos.Hang, -1, "/run")

	rt, err := New(Options{
		Backends:       []string{tsA.URL, tsB.URL},
		AttemptTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	req, _ := specOwnedBy(t, 2, 1)
	start := time.Now()
	status, hdr, body := post(t, front.URL+"/run", req)
	if status != http.StatusOK {
		t.Fatalf("hung-owner /run: %d %s", status, body)
	}
	if hdr.Get("X-Failover") != "1->0" || hdr.Get("X-Shard") != "0" {
		t.Fatalf("X-Failover %q X-Shard %q, want 1->0 via shard 0", hdr.Get("X-Failover"), hdr.Get("X-Shard"))
	}
	// The hang cost at most roughly one attempt timeout, not forever.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failover took %v — the attempt timeout did not cut the hang", elapsed)
	}
}

func TestRouterDoesNotFailOverDeterministicErrors(t *testing.T) {
	// A 400 is the same answer on every shard: failing it over would
	// repeat the rejection more expensively and mask the client's bug
	// as a cluster problem. The response is relayed from the owner, no
	// failover tag, and the owner's breaker stays closed — a rejected
	// spec is a LIVE backend doing its job.
	_, tsA := newBackend(t, service.Options{Workers: 2})
	_, tsB := newBackend(t, service.Options{Workers: 2})
	rt, err := New(Options{Backends: []string{tsA.URL, tsB.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	sp := testSpec(31)
	sp.Params.BusBytes = 3 // not a power of two: every shard rejects it identically
	status, hdr, body := post(t, front.URL+"/run", map[string]any{"spec": sp, "model": "tl"})
	if status != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d %s", status, body)
	}
	if hdr.Get("X-Failover") != "" {
		t.Fatalf("deterministic 400 failed over: %q", hdr.Get("X-Failover"))
	}
	for i, sh := range rt.view().shards {
		if st := sh.breaker.State(); st != breakerClosed {
			t.Fatalf("shard %d breaker %q after a client error, want closed", i, st)
		}
	}
}

func TestRouterSweepKillThenRecover(t *testing.T) {
	// Satellite: the 502-then-recover path. Shard 1's /run connection
	// is killed enough times to trip its breaker (healthz stays up, so
	// the probe loop can see recovery); a first sweep fails its
	// variants over to shard 0 with zero error rows. Once the breaker's
	// probe moves it to half-open, a second sweep's trial request
	// succeeds mid-sweep and shard 1 resumes serving its own keyspace.
	_, tsA := newBackend(t, service.Options{Workers: 2})
	inB, tsB := chaosBackend(t, service.Options{Workers: 2})

	rt, err := New(Options{
		Backends:         []string{tsA.URL, tsB.URL},
		BreakerThreshold: 2,
		BreakerInterval:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	variants := expandGrid(t, 47)
	bOwned := 0
	for _, v := range variants {
		if Owner(v.Hash, 2) == 1 {
			bOwned++
		}
	}
	if bOwned <= 2 {
		t.Fatalf("degenerate partition: shard 1 owns %d of %d", bOwned, len(variants))
	}

	// Exactly threshold kills: the first two /run attempts at shard 1
	// die like a SIGKILLed process, the breaker opens, and every
	// remaining B-owned variant fails over without paying a dial.
	inB.ArmPath(chaos.Kill, 2, "/run")
	_, rows, summary, done := readSweep(t, front.URL, gridRequest(47))
	if !done || summary.Errors != 0 || len(rows) != 8 {
		t.Fatalf("kill sweep: %d rows errors=%d done=%v", len(rows), summary.Errors, done)
	}
	failedOver := 0
	for _, row := range rows {
		if row.Failover != "" {
			failedOver++
		}
	}
	if failedOver == 0 {
		t.Fatal("no failover rows despite killed connections")
	}

	// Recovery: the injector is spent, so the background probe finds
	// /healthz (it always did) and half-opens the breaker.
	deadline := time.Now().Add(5 * time.Second)
	for rt.view().shards[1].breaker.State() == breakerOpen {
		if time.Now().After(deadline) {
			t.Fatalf("breaker stuck %q", rt.view().shards[1].breaker.State())
		}
		time.Sleep(time.Millisecond)
	}

	// Fresh grid (different salt: no cache masking): shard 1 must be
	// serving its own keyspace again, breaker closed by the trial.
	_, rows, summary, done = readSweep(t, front.URL, gridRequest(48))
	if !done || summary.Errors != 0 {
		t.Fatalf("recovery sweep: errors=%d done=%v", summary.Errors, done)
	}
	served := 0
	for _, row := range rows {
		if row.Shard == 1 {
			served++
			if row.Failover != "" {
				t.Fatalf("recovered shard served %s via failover %q", row.Name, row.Failover)
			}
		}
	}
	if served == 0 {
		t.Fatal("recovered shard served nothing — breaker never readmitted it")
	}
	if st := rt.view().shards[1].breaker.State(); st != breakerClosed {
		t.Fatalf("breaker %q after successful trial, want closed", st)
	}
}

func TestRouterSweepClientDisconnectAbortsFailover(t *testing.T) {
	// Satellite: a client that vanishes while its variants are mid-
	// failover-retry must take the whole fan-out down with it — the
	// fallback attempt aborted, every router goroutine freed, and the
	// cluster still healthy for the next caller.
	inA, tsA := chaosBackend(t, service.Options{Workers: 2})
	_, tsB := newBackend(t, service.Options{Workers: 2})
	rt, err := New(Options{Backends: []string{tsA.URL, tsB.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	tsB.Close()                         // every B-owned variant fails over to A...
	inA.ArmPath(chaos.Hang, -1, "/run") // ...where the fallback attempt wedges

	transport := &http.Transport{}
	t.Cleanup(transport.CloseIdleConnections)
	client := &http.Client{Transport: transport}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, front.URL+"/sweep", strings.NewReader(mustJSON(t, gridRequest(53))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Give the fan-out a moment to park every worker inside a hung
	// fallback attempt, then vanish.
	time.Sleep(100 * time.Millisecond)
	cancel()
	resp.Body.Close()

	// Every goroutine the sweep spawned must drain: the hung attempts
	// are cut by the request context, not leaked behind it.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d, baseline %d — sweep leaked", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The cluster survives the drill: disarm the fault and serve.
	inA.Clear()
	status, _, body := post(t, front.URL+"/run", map[string]any{"spec": testSpec(53), "model": "tl"})
	if status != http.StatusOK {
		t.Fatalf("post-disconnect /run: %d %s", status, body)
	}
}

func TestRouterRejectsPathologicalMaxCycles(t *testing.T) {
	// The router enforces the cluster's cycle cap at validation, before
	// any forward: a fat-fingered max_cycles must cost a 400, not a
	// shard pinned for a trillion cycles.
	_, ts := newBackend(t, service.Options{Workers: 1})
	rt, err := New(Options{Backends: []string{ts.URL}, MaxCycles: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	sp := testSpec(61)
	sp.MaxCycles = 1_000_000_000
	status, _, body := post(t, front.URL+"/run", map[string]any{"spec": sp, "model": "tl"})
	if status != http.StatusBadRequest || !strings.Contains(string(body), "exceeds the cluster cap") {
		t.Fatalf("overbudget /run: %d %s", status, body)
	}

	grid := gridRequest(61)
	grid["base"] = sp
	status, _, body = post(t, front.URL+"/sweep", grid)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "exceeds the cluster cap") {
		t.Fatalf("overbudget /sweep: %d %s", status, body)
	}

	// Within budget still flows.
	sp.MaxCycles = 50_000
	status, _, body = post(t, front.URL+"/run", map[string]any{"spec": sp, "model": "tl"})
	if status != http.StatusOK {
		t.Fatalf("in-budget /run: %d %s", status, body)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// The router's admin surface: live cluster resize. POST /admin/shards
// grows the cluster — new workers are spawned (supervised clusters)
// or adopted (an explicit backend list), admitted under fresh stable
// IDs in ONE epoch bump, and start owning their rendezvous slice of
// every subsequent request. POST /admin/shards/{id}/drain shrinks it:
// the retiring shard's store is enumerated and every envelope is
// migrated to its new rendezvous owner BEFORE the member is removed,
// so a drain is a cache relocation, never a cache loss — the drained
// shard's keys replay as warm hits from their new owners.
//
// Drain ordering is deliberate: migrate under the OLD topology, then
// swap, then re-enumerate once for stragglers written by requests
// that raced the swap. Pass 1 is strict (any failure aborts the drain
// with the topology unchanged); pass 2 is best-effort, because by
// then the retiring shard is out of the routing tables and every
// result it still holds is a recomputable cache entry, not the only
// copy of anything.
package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// migrateOpTimeout bounds one per-key migration call (enumerate,
// fetch, post, verify are each one local store operation on the
// backend — seconds means something is wrong, not slow).
const migrateOpTimeout = 5 * time.Second

// growRequest is the POST /admin/shards body: exactly one of Count
// (supervised clusters: spawn this many new workers) or Backends
// (adopt externally managed workers at these URLs).
type growRequest struct {
	Count    int      `json:"count,omitempty"`
	Backends []string `json:"backends,omitempty"`
}

// DrainReport is the POST /admin/shards/{id}/drain response body.
type DrainReport struct {
	// Drained is the stable ID of the removed shard.
	Drained int `json:"drained"`
	// Moved counts envelopes migrated before the topology swap.
	Moved int `json:"moved"`
	// Stragglers counts envelopes found by the post-swap re-sweep —
	// results written to the retiring shard by requests that raced the
	// drain, migrated best-effort.
	Stragglers int `json:"stragglers"`
	// Epoch and Topology describe the membership after the drain.
	Epoch    int64    `json:"epoch"`
	Topology []Member `json:"topology"`
}

// handleAdminShards serves /admin/shards: GET returns the current
// topology (epoch + members); POST grows the cluster and returns the
// new topology. Growth is atomic from the routing plane's point of
// view — every new worker is spawned and probed first, then the whole
// batch is admitted in one epoch bump, so no request ever routes
// against a half-admitted batch.
func (rt *Router) handleAdminShards(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, rt.Topology())
	case http.MethodPost:
		rt.handleGrow(w, r)
	default:
		writeError(w, r, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

// handleGrow admits new members: spawned through the supervisor
// (count) or adopted from an explicit URL list (backends).
func (rt *Router) handleGrow(w http.ResponseWriter, r *http.Request) {
	var req growRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	if (req.Count > 0) == (len(req.Backends) > 0) {
		writeError(w, r, http.StatusBadRequest, "send exactly one of count or backends")
		return
	}
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	var shs []*shardState
	if req.Count > 0 {
		if rt.sup == nil {
			writeError(w, r, http.StatusBadRequest, "count requires a supervised cluster; this router fronts external backends (send backends instead)")
			return
		}
		ids := rt.allocIDs(req.Count)
		for _, id := range ids {
			p, err := rt.sup.Add(id)
			if err != nil {
				// Roll the partial batch back: nothing was admitted yet,
				// so retiring the already-spawned workers restores the
				// exact pre-request state.
				for _, sh := range shs {
					rt.sup.Retire(sh.id)
				}
				writeError(w, r, http.StatusBadGateway, "spawning shard %d: %v", id, err)
				return
			}
			sh, err := rt.newShardState(id, p.URL)
			if err != nil {
				for _, prev := range shs {
					rt.sup.Retire(prev.id)
				}
				rt.sup.Retire(id)
				writeError(w, r, http.StatusInternalServerError, "shard %d: %v", id, err)
				return
			}
			shs = append(shs, sh)
		}
	} else {
		ids := rt.allocIDs(len(req.Backends))
		for i, base := range req.Backends {
			sh, err := rt.newShardState(ids[i], base)
			if err != nil {
				writeError(w, r, http.StatusBadRequest, "%v", err)
				return
			}
			shs = append(shs, sh)
		}
	}
	rt.probeConcurrency(shs)
	for _, sh := range shs {
		rt.bindShardMetrics(sh)
	}
	top := rt.admit(shs)
	log.Printf("admin: grew cluster to %d shards (epoch %d)", len(top.Members), top.Epoch)
	writeJSON(w, http.StatusOK, top)
}

// handleAdminDrain serves POST /admin/shards/{id}/drain: migrate the
// shard's store to the surviving members' rendezvous slices, then
// remove it from the topology (and, in supervised clusters, stop its
// process for good).
func (rt *Router) handleAdminDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "shard id %q is not an integer", r.PathValue("id"))
		return
	}
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	vw := rt.view()
	src, ok := vw.byID[id]
	if !ok {
		writeError(w, r, http.StatusNotFound, "no shard %d in the current topology", id)
		return
	}
	if len(vw.shards) == 1 {
		writeError(w, r, http.StatusBadRequest, "cannot drain the last shard")
		return
	}
	remaining := make([]int, 0, len(vw.ids)-1)
	for _, other := range vw.ids {
		if other != id {
			remaining = append(remaining, other)
		}
	}

	// Pass 1, strict, under the OLD topology: the shard still serves
	// while its store is copied out, and any failure aborts with the
	// membership untouched.
	moved, seen, err := rt.migrate(r.Context(), vw, src, remaining, nil)
	if err != nil {
		writeError(w, r, http.StatusBadGateway, "draining shard %d: %v (topology unchanged)", id, err)
		return
	}
	top := rt.remove(id)

	// Pass 2, best-effort, after the swap: requests that raced pass 1
	// may have written fresh results to the retiring shard; one
	// re-enumeration catches them. By now the shard is unroutable, so
	// a failure here costs a warm cache entry, never correctness —
	// every result is recomputable from its spec.
	stragglers := 0
	if n, _, err := rt.migrate(context.Background(), vw, src, remaining, seen); err != nil {
		log.Printf("admin: drain %d: straggler sweep: %v (continuing; results are recomputable)", id, err)
	} else {
		stragglers = n
	}

	src.breaker.close()
	if rt.sup != nil {
		rt.sup.Retire(id)
	}
	log.Printf("admin: drained shard %d (moved %d, stragglers %d, epoch %d)", id, moved, stragglers, top.Epoch)
	writeJSON(w, http.StatusOK, DrainReport{
		Drained: id, Moved: moved, Stragglers: stragglers,
		Epoch: top.Epoch, Topology: top.Members,
	})
}

// migrate copies every envelope src holds (minus the keys in skip) to
// its new rendezvous owner among remaining, verifying each copy, and
// returns how many moved plus the set of keys now migrated. Result
// envelopes go through the content-addressed write-back path (POST
// /results) and are verified byte-identical by re-reading the
// destination; sweep manifests go through the merge-persisting PUT
// /sweep/{id} and are verified by presence (the destination may
// legitimately hold a union with MORE progress bits than the copy).
func (rt *Router) migrate(ctx context.Context, vw *view, src *shardState, remaining []int, skip map[string]bool) (int, map[string]bool, error) {
	enumCtx, cancel := context.WithTimeout(ctx, migrateOpTimeout)
	keys, err := src.client.EnumerateResults(enumCtx, "")
	cancel()
	if err != nil {
		return 0, nil, fmt.Errorf("enumerating: %w", err)
	}
	seen := make(map[string]bool, len(keys)+len(skip))
	for k := range skip {
		seen[k] = true
	}
	moved := 0
	for _, key := range keys {
		if skip[key] {
			continue
		}
		seen[key] = true
		// Placement is by the key's content-hash tail — the same string
		// every router path hashes: the spec hash for result keys, the
		// sweep id for manifests.
		hash := key[strings.LastIndex(key, ":")+1:]
		target := OwnerID(hash, remaining)
		dst := vw.byID[target]
		if err := rt.migrateKey(ctx, src, dst, key, hash); err != nil {
			return moved, seen, fmt.Errorf("key %s -> shard %d: %w", key, target, err)
		}
		rt.migrated.With(strconv.Itoa(src.id), strconv.Itoa(target)).Inc()
		moved++
	}
	return moved, seen, nil
}

// migrateKey moves one envelope from src to dst and verifies it.
func (rt *Router) migrateKey(ctx context.Context, src, dst *shardState, key, hash string) error {
	opCtx, cancel := context.WithTimeout(ctx, migrateOpTimeout)
	defer cancel()
	if strings.HasPrefix(key, "sweep:") {
		status, _, body, err := src.client.Do(opCtx, http.MethodGet, "/sweep/"+hash, nil, nil)
		if err != nil {
			return err
		}
		if status == http.StatusNotFound {
			return nil // evicted since enumeration; nothing to move
		}
		if status != http.StatusOK {
			return fmt.Errorf("reading manifest: status %d: %s", status, body)
		}
		var st service.SweepStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("decoding manifest: %w", err)
		}
		raw, err := json.Marshal(st.SweepManifest)
		if err != nil {
			return err
		}
		status, _, body, err = dst.client.Do(opCtx, http.MethodPut, "/sweep/"+hash, raw, http.Header{"Content-Type": {"application/json"}})
		if err != nil {
			return err
		}
		if status != http.StatusNoContent {
			return fmt.Errorf("writing manifest: status %d: %s", status, body)
		}
		status, _, body, err = dst.client.Do(opCtx, http.MethodGet, "/sweep/"+hash, nil, nil)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("verifying manifest: status %d: %s", status, body)
		}
		return nil
	}
	body, ok, err := src.client.FetchResult(opCtx, key)
	if err != nil {
		return err
	}
	if !ok {
		return nil // evicted since enumeration; nothing to move
	}
	status, _, respBody, err := dst.client.Do(opCtx, http.MethodPost, "/results", body, http.Header{
		"Content-Type":          {"application/json"},
		service.ResultKeyHeader: {key},
	})
	if err != nil {
		return err
	}
	if status != http.StatusNoContent {
		return fmt.Errorf("writing: status %d: %s", status, respBody)
	}
	check, ok, err := dst.client.FetchResult(opCtx, key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("verify: destination does not hold the key after the write")
	}
	if string(check) != string(body) {
		return fmt.Errorf("verify: destination bytes differ from the source envelope")
	}
	return nil
}

// writeJSON marshals v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// Package shard scales the simulation service across processes
// without sharing anything. Every result in this system is fully
// determined by its `endpoint:model:spec-hash` cache key (the
// simulations are bit-reproducible), so work partitions perfectly: a
// frontend router assigns each workload spec to exactly one backend
// worker process by rendezvous-hashing the spec's content hash, and
// that backend's memory LRU and disk store hold that spec's results —
// and only that backend's. No coordination, no replication, no cache
// coherence: a spec's owner is a pure function of its hash and the
// shard count, stable across restarts, so a resharded cluster keeps
// serving byte-identical replays from whichever stores already hold
// them.
//
// The router (router.go) owns the public API — /run, /compare,
// /sweep and /sweep/analyze are fanned out per spec, /sweep merging
// the per-shard completion streams into one NDJSON stream with a
// terminal summary row and /sweep/analyze aggregating router-side
// into the same analysis document a single process produces — and the
// supervisor (supervisor.go) spawns and babysits local backend
// processes for `simd -shards N`.
package shard

import (
	"sort"
	"strconv"
)

// Owner returns the shard index in [0, n) that owns the given spec
// content hash, by rendezvous (highest-random-weight) hashing: score
// every shard against the hash, pick the maximum. Properties the
// deployment leans on:
//
//   - Deterministic: a pure function of (hash, n), so the assignment
//     survives router restarts and is computable by any client — the
//     smoke harness predicts which store directory a variant lands in.
//   - Minimal disruption: growing n from k to k+1 only moves the keys
//     the new shard wins; everything else keeps its owner (and its
//     warm store).
//
// n <= 1 trivially owns everything.
func Owner(hash string, n int) int {
	if n <= 1 {
		return 0
	}
	best, bestScore := 0, uint64(0)
	for i := 0; i < n; i++ {
		score := rendezvousScore(hash, i)
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Rank returns every shard index ordered by descending rendezvous
// score for the given hash: Rank(h, n)[0] == Owner(h, n), and the
// rest is the deterministic failover order. Because the scores are a
// pure function of (hash, n), every router replica computes the same
// preference list, so "the next-ranked live shard" is a well-defined
// cluster-wide notion without any coordination. Results are
// content-addressed and bit-reproducible, which is what makes walking
// this list semantically free: any live shard computes the
// byte-identical answer, the owner merely holds the warm cache.
func Rank(hash string, n int) []int {
	if n <= 1 {
		return []int{0}
	}
	scores := make([]uint64, n)
	order := make([]int, n)
	for i := 0; i < n; i++ {
		scores[i] = rendezvousScore(hash, i)
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b] // deterministic on (improbable) ties
	})
	return order
}

// rendezvousScore is FNV-1a over "hash/shard-index". FNV is not
// cryptographic, but the inputs are already SHA-256 hex — uniform by
// construction — so the 64-bit mix only has to break ties between
// shards, not resist adversaries.
func rendezvousScore(hash string, index int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(hash); i++ {
		h ^= uint64(hash[i])
		h *= prime64
	}
	h ^= '/'
	h *= prime64
	for _, c := range strconv.Itoa(index) {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// testHashes returns n distinct well-formed content hashes.
func testHashes(n int) []string {
	out := make([]string, n)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("spec-%d", i)))
		out[i] = hex.EncodeToString(sum[:])
	}
	return out
}

func TestOwnerIDAgreesWithOwnerForContiguousIDs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		for _, h := range testHashes(200) {
			if got, want := OwnerID(h, ids), Owner(h, n); got != want {
				t.Fatalf("OwnerID(%s, 0..%d) = %d, Owner = %d", h[:8], n-1, got, want)
			}
			if got, want := RankIDs(h, ids), Rank(h, n); !reflect.DeepEqual(got, want) {
				t.Fatalf("RankIDs(%s, 0..%d) = %v, Rank = %v", h[:8], n-1, got, want)
			}
		}
	}
}

func TestOwnerIDIndependentOfMemberOrder(t *testing.T) {
	ids := []int{4, 0, 7, 2, 9}
	rng := rand.New(rand.NewSource(1))
	for _, h := range testHashes(100) {
		want := OwnerID(h, ids)
		shuffled := append([]int(nil), ids...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := OwnerID(h, shuffled); got != want {
			t.Fatalf("owner depends on member order: %d vs %d", got, want)
		}
	}
}

func TestRankIDsIsAPermutationLedByOwner(t *testing.T) {
	ids := []int{3, 1, 4, 11, 6}
	for _, h := range testHashes(100) {
		rank := RankIDs(h, ids)
		if len(rank) != len(ids) {
			t.Fatalf("rank length %d, want %d", len(rank), len(ids))
		}
		if rank[0] != OwnerID(h, ids) {
			t.Fatalf("rank[0] = %d, owner = %d", rank[0], OwnerID(h, ids))
		}
		seen := map[int]bool{}
		for _, id := range rank {
			seen[id] = true
		}
		for _, id := range ids {
			if !seen[id] {
				t.Fatalf("rank %v misses member %d", rank, id)
			}
		}
	}
}

func TestDrainMovesOnlyTheDrainedMembersKeys(t *testing.T) {
	// The property the whole drain design rests on: removing one
	// member reassigns exactly the keys it owned — each to its
	// next-ranked surviving member — and nobody else moves.
	all := []int{0, 1, 2, 3}
	const drained = 2
	var remaining []int
	for _, id := range all {
		if id != drained {
			remaining = append(remaining, id)
		}
	}
	moved := 0
	for _, h := range testHashes(2000) {
		before := OwnerID(h, all)
		after := OwnerID(h, remaining)
		if before != drained {
			if after != before {
				t.Fatalf("hash %s moved %d->%d though %d was not drained", h[:8], before, after, drained)
			}
			continue
		}
		moved++
		// The new owner is the drained key's next-ranked survivor.
		rank := RankIDs(h, all)
		if want := rank[1]; after != want {
			t.Fatalf("hash %s reassigned to %d, want next-ranked %d", h[:8], after, want)
		}
	}
	if moved == 0 {
		t.Fatal("degenerate test: drained member owned nothing")
	}
}

func TestGrowMovesKeysOnlyToTheNewMember(t *testing.T) {
	ids := []int{0, 1, 3} // a cluster that already drained shard 2
	grown := append(append([]int(nil), ids...), 4)
	for _, h := range testHashes(2000) {
		before := OwnerID(h, ids)
		after := OwnerID(h, grown)
		if after != before && after != 4 {
			t.Fatalf("hash %s moved %d->%d on grow; only moves to the new member are allowed", h[:8], before, after)
		}
	}
}

func TestTopologyIDs(t *testing.T) {
	top := Topology{Epoch: 3, Members: []Member{{ID: 0, Addr: "a"}, {ID: 5, Addr: "b"}}}
	if got := top.IDs(); !reflect.DeepEqual(got, []int{0, 5}) {
		t.Fatalf("IDs() = %v", got)
	}
	if OwnerID("deadbeef", nil) != -1 {
		t.Fatal("empty topology must own nothing")
	}
}

// Cluster membership as a value. The router used to treat "the
// cluster" as a fixed slice of backends whose indices doubled as
// shard identities; resizing was impossible without restarting, and
// any change of N silently re-labeled every metric series and header.
// Topology separates the two concerns: a shard's identity is a stable
// integer ID assigned at admission and never reused, and the current
// membership is an epoch-numbered snapshot that the router swaps
// atomically at each resize. Rendezvous scores hash against the
// stable ID (not the slice position), so membership order is
// irrelevant to placement and a member can leave without renaming
// anyone else's keys.

package shard

import "sort"

// Member is one cluster member: a stable shard ID bound to a backend
// base URL. The ID is assigned when the shard is admitted and is
// never reused for a different backend within a router's lifetime, so
// metric series, X-Shard headers and failover tags keyed by it stay
// meaningful across resizes.
type Member struct {
	// ID is the shard's stable identity; rendezvous placement hashes
	// against it.
	ID int `json:"id"`
	// Addr is the backend's base URL.
	Addr string `json:"addr"`
}

// Topology is a versioned snapshot of cluster membership. Epoch
// increments on every membership change (grow or drain), so two
// observers can order the snapshots they hold; Members is the current
// member set in admission order. A Topology is a value — handlers
// snapshot it once per request and route against that snapshot, so a
// mid-request resize never splits one request across two views.
type Topology struct {
	// Epoch numbers this membership version, starting at 1 for the
	// boot-time set and incrementing on every admit or drain.
	Epoch int64 `json:"epoch"`
	// Members is the current member set in admission order.
	Members []Member `json:"members"`
}

// IDs returns the stable shard IDs of every member, in membership
// order — the id set OwnerID and RankIDs place against.
func (t Topology) IDs() []int {
	ids := make([]int, len(t.Members))
	for i, m := range t.Members {
		ids[i] = m.ID
	}
	return ids
}

// OwnerID returns the stable shard ID among ids that owns the given
// spec content hash, by the same rendezvous scoring as Owner. Because
// scores hash against the stable ID, the result is independent of the
// order of ids, and removing one member moves only the keys that
// member owned — everything else keeps its owner and its warm store.
// For the contiguous ID set 0..n-1 (a boot-time cluster that has
// never resized), OwnerID agrees with Owner(hash, n). An empty ids
// returns -1.
func OwnerID(hash string, ids []int) int {
	if len(ids) == 0 {
		return -1
	}
	best, bestScore := ids[0], rendezvousScore(hash, ids[0])
	for _, id := range ids[1:] {
		score := rendezvousScore(hash, id)
		if score > bestScore || (score == bestScore && id < best) {
			best, bestScore = id, score
		}
	}
	return best
}

// RankIDs returns ids ordered by descending rendezvous score for the
// given hash: RankIDs(h, ids)[0] == OwnerID(h, ids), and the rest is
// the deterministic failover order under the current membership —
// the generalization of Rank to non-contiguous stable ID sets.
func RankIDs(hash string, ids []int) []int {
	order := make([]int, len(ids))
	copy(order, ids)
	scores := make(map[int]uint64, len(ids))
	for _, id := range ids {
		scores[id] = rendezvousScore(hash, id)
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b] // deterministic on (improbable) ties
	})
	return order
}

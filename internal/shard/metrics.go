// The router's metric vocabulary and its cluster-wide GET /metrics.
//
// The router exposes two kinds of series from one endpoint: its own
// simd_router_* families (request counts and latency, per-backend
// attempt latency, failover/retry counters, breaker state and trips,
// topology epoch, result-cache traffic, migration counts, per-shard
// restarts), and every live backend's simd_* families re-exposed
// verbatim under a shard="<id>" label. One scrape of the router
// therefore sees the whole cluster — no per-worker scrape
// configuration, and the shard label keeps N workers' identically
// named series apart. Backend sample values pass through as raw
// strings (parse → relabel → merge, never through float64), so the
// router reprints exactly what the worker said.
//
// Every shard-labeled series is keyed by the shard's STABLE ID, not
// its position in the current membership: a drain that removes shard
// 1 does not re-label shard 2's series, and a shard admitted later
// gets a fresh label no previous member ever used. Series bound to a
// drained shard stop moving but remain registered (the obs registry
// has no unregister) — a frozen counter under a retired ID is honest
// history, not noise.
package shard

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// scrapeTimeout bounds one backend /metrics fetch inside the router's
// aggregated scrape; a dead shard must not stall the cluster view.
const scrapeTimeout = 2 * time.Second

// initMetrics registers the router's families and binds the boot-time
// shards' series. Called from New after the initial view exists;
// shards admitted later bind through bindShardMetrics at admission.
func (rt *Router) initMetrics() {
	reg := obs.NewRegistry()
	rt.reg = reg
	rt.httpMetrics = obs.NewHTTPMetrics(reg, "simd_router_")

	rt.attemptsVec = reg.HistogramVec("simd_router_attempt_seconds", "Backend attempt latency by shard (stable ID).", obs.DefTimeBuckets, "shard")
	rt.failoversVec = reg.CounterVec("simd_router_failovers_total", "Requests served away from their owning shard, by owner (stable ID).", "shard")
	rt.retriesVec = reg.CounterVec("simd_router_retries_total", "Saturation-503 retry waits against a live shard, by shard (stable ID).", "shard")
	rt.stealsVec = reg.CounterVec("simd_router_steals_total", "Sweep variants work-stolen and computed by this (thief) shard (stable ID).", "shard")
	rt.opensVec = reg.CounterVec("simd_router_breaker_opens_total", "Breaker trips into the open state, by shard (stable ID).", "shard")
	rt.stateVec = reg.GaugeVec("simd_router_breaker_state", "Breaker state by shard (stable ID): 0 closed, 1 half-open, 2 open.", "shard")
	if rt.sup != nil {
		rt.restartsVec = reg.CounterVec("simd_router_shard_restarts_total", "Supervisor respawns, by shard (stable ID).", "shard")
	}
	for _, sh := range rt.topo.shards {
		rt.bindShardMetrics(sh)
	}

	reg.GaugeFunc("simd_router_shards", "Current cluster member count.", func() float64 { return float64(len(rt.view().shards)) })
	reg.GaugeFunc("simd_topology_epoch", "Current topology epoch; increments on every admin grow or drain.", func() float64 { return float64(rt.view().epoch) })
	reg.GaugeFunc("simd_router_process_start_time_seconds", "Unix time the router started serving.", func() float64 { return float64(rt.since.Unix()) })
	rt.sweepRows = reg.Counter("simd_router_sweep_rows_total", "Sweep data rows streamed to clients.")
	rt.sweepResumes = reg.Counter("simd_router_sweep_resumes_total", "Sweep resume streams served by the router.")
	rt.cacheHits = reg.Counter("simd_router_cache_hits_total", "Requests and sweep variants served from the router's own result cache (X-Cache: router_hit).")
	rt.cacheMisses = reg.Counter("simd_router_cache_misses_total", "Router result-cache probes that fell through to a backend.")
	reg.GaugeFunc("simd_router_cache_bytes", "Encoded bytes currently held by the router result cache.", func() float64 {
		if rt.cache == nil {
			return 0
		}
		return float64(rt.cache.bytes())
	})
	rt.migrated = reg.CounterVec("simd_migrated_envelopes_total", "Store envelopes migrated during drains, by source and destination shard (stable IDs).", "from", "to")
}

// bindShardMetrics resolves one shard's per-ID series — called once
// per shard at admission (With takes a lock; the serving path must
// not). The label is the stable ID, so a shard admitted after a drain
// can never collide with a retired member's history.
func (rt *Router) bindShardMetrics(sh *shardState) {
	label := strconv.Itoa(sh.id)
	sh.attempts = rt.attemptsVec.With(label)
	sh.failovers = rt.failoversVec.With(label)
	sh.retries = rt.retriesVec.With(label)
	sh.steals = rt.stealsVec.With(label)
	trip := rt.opensVec.With(label)
	sh.breaker.onTrip = trip.Inc
	rt.stateVec.Func(sh.breaker.StateCode, label)
	if rt.restartsVec != nil {
		id := sh.id
		rt.restartsVec.Func(func() uint64 {
			for _, p := range rt.sup.Status() {
				if p.Index == id {
					return uint64(p.Respawns)
				}
			}
			return 0
		}, label)
	}
}

// Metrics returns the router's own metric registry (cluster
// aggregation happens per scrape in handleMetrics, not here).
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// handleMetrics serves the aggregated GET /metrics: the router's own
// families merged with every reachable backend's, the backend series
// relabeled shard="<id>" (stable ID). A shard whose scrape fails is
// simply absent from this scrape (its own simd_router_* series —
// breaker state, failover counters — still tell the story); a
// synthetic simd_shard_up gauge reports per-shard scrapeability
// explicitly for the current membership.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	vw := rt.view()
	groups := make([][]obs.Family, len(vw.shards))
	up := make([]bool, len(vw.shards))
	var wg sync.WaitGroup
	for i, sh := range vw.shards {
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), scrapeTimeout)
			defer cancel()
			fams, err := scrapeBackend(ctx, sh)
			if err != nil {
				return
			}
			groups[i] = obs.Relabel(fams, "shard", strconv.Itoa(sh.id))
			up[i] = true
		}(i, sh)
	}
	wg.Wait()

	upReg := obs.NewRegistry()
	upVec := upReg.GaugeVec("simd_shard_up", "Whether the shard's /metrics answered this scrape, by stable ID.", "shard")
	for i, ok := range up {
		v := 0.0
		if ok {
			v = 1
		}
		upVec.With(strconv.Itoa(vw.shards[i].id)).Set(v)
	}

	all := make([][]obs.Family, 0, len(vw.shards)+2)
	all = append(all, rt.reg.Families(), upReg.Families())
	all = append(all, groups...)
	w.Header().Set("Content-Type", obs.ContentType)
	obs.WriteFamilies(w, obs.MergeFamilies(all...))
}

// scrapeBackend fetches and parses one backend's /metrics.
func scrapeBackend(ctx context.Context, sh *shardState) ([]obs.Family, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.client.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	httpc := sh.client.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &scrapeError{status: resp.StatusCode}
	}
	return obs.ParseText(resp.Body)
}

// scrapeError is a non-200 backend /metrics answer.
type scrapeError struct{ status int }

func (e *scrapeError) Error() string { return fmt.Sprintf("metrics status %d", e.status) }

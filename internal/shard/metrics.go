// The router's metric vocabulary and its cluster-wide GET /metrics.
//
// The router exposes two kinds of series from one endpoint: its own
// simd_router_* families (request counts and latency, per-backend
// attempt latency, failover/retry counters, breaker state and trips,
// per-shard restarts), and every live backend's simd_* families
// re-exposed verbatim under a shard="<index>" label. One scrape of
// the router therefore sees the whole cluster — no per-worker scrape
// configuration, and the shard label keeps N workers' identically
// named series apart. Backend sample values pass through as raw
// strings (parse → relabel → merge, never through float64), so the
// router reprints exactly what the worker said.
package shard

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// scrapeTimeout bounds one backend /metrics fetch inside the router's
// aggregated scrape; a dead shard must not stall the cluster view.
const scrapeTimeout = 2 * time.Second

// initMetrics registers the router's families. Called from New after
// the shard states exist.
func (rt *Router) initMetrics() {
	reg := obs.NewRegistry()
	rt.reg = reg
	rt.httpMetrics = obs.NewHTTPMetrics(reg, "simd_router_")

	attempts := reg.HistogramVec("simd_router_attempt_seconds", "Backend attempt latency by shard.", obs.DefTimeBuckets, "shard")
	failovers := reg.CounterVec("simd_router_failovers_total", "Requests served away from their owning shard, by owner.", "shard")
	retries := reg.CounterVec("simd_router_retries_total", "Saturation-503 retry waits against a live shard, by shard.", "shard")
	steals := reg.CounterVec("simd_router_steals_total", "Sweep variants work-stolen and computed by this (thief) shard.", "shard")
	opens := reg.CounterVec("simd_router_breaker_opens_total", "Breaker trips into the open state, by shard.", "shard")
	state := reg.GaugeVec("simd_router_breaker_state", "Breaker state by shard: 0 closed, 1 half-open, 2 open.", "shard")
	for _, sh := range rt.shards {
		label := strconv.Itoa(sh.index)
		sh.attempts = attempts.With(label)
		sh.failovers = failovers.With(label)
		sh.retries = retries.With(label)
		sh.steals = steals.With(label)
		trip := opens.With(label)
		sh.breaker.onTrip = trip.Inc
		state.Func(sh.breaker.StateCode, label)
	}

	reg.GaugeFunc("simd_router_shards", "Configured backend count.", func() float64 { return float64(len(rt.shards)) })
	reg.GaugeFunc("simd_router_process_start_time_seconds", "Unix time the router started serving.", func() float64 { return float64(rt.since.Unix()) })
	rt.sweepRows = reg.Counter("simd_router_sweep_rows_total", "Sweep data rows streamed to clients.")
	rt.sweepResumes = reg.Counter("simd_router_sweep_resumes_total", "Sweep resume streams served by the router.")

	if rt.sup != nil {
		restarts := reg.CounterVec("simd_router_shard_restarts_total", "Supervisor respawns, by shard.", "shard")
		for _, sh := range rt.shards {
			idx := sh.index
			restarts.Func(func() uint64 {
				procs := rt.sup.Status()
				if idx < len(procs) {
					return uint64(procs[idx].Respawns)
				}
				return 0
			}, strconv.Itoa(idx))
		}
	}
}

// Metrics returns the router's own metric registry (cluster
// aggregation happens per scrape in handleMetrics, not here).
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// handleMetrics serves the aggregated GET /metrics: the router's own
// families merged with every reachable backend's, the backend series
// relabeled shard="<index>". A shard whose scrape fails is simply
// absent from this scrape (its own simd_router_* series — breaker
// state, failover counters — still tell the story); a synthetic
// simd_shard_up gauge reports per-shard scrapeability explicitly.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	groups := make([][]obs.Family, len(rt.shards))
	up := make([]bool, len(rt.shards))
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), scrapeTimeout)
			defer cancel()
			fams, err := scrapeBackend(ctx, sh)
			if err != nil {
				return
			}
			groups[i] = obs.Relabel(fams, "shard", strconv.Itoa(i))
			up[i] = true
		}(i, sh)
	}
	wg.Wait()

	upReg := obs.NewRegistry()
	upVec := upReg.GaugeVec("simd_shard_up", "Whether the shard's /metrics answered this scrape.", "shard")
	for i, ok := range up {
		v := 0.0
		if ok {
			v = 1
		}
		upVec.With(strconv.Itoa(i)).Set(v)
	}

	all := make([][]obs.Family, 0, len(rt.shards)+2)
	all = append(all, rt.reg.Families(), upReg.Families())
	all = append(all, groups...)
	w.Header().Set("Content-Type", obs.ContentType)
	obs.WriteFamilies(w, obs.MergeFamilies(all...))
}

// scrapeBackend fetches and parses one backend's /metrics.
func scrapeBackend(ctx context.Context, sh *shardState) ([]obs.Family, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.client.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	httpc := sh.client.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &scrapeError{status: resp.StatusCode}
	}
	return obs.ParseText(resp.Body)
}

// scrapeError is a non-200 backend /metrics answer.
type scrapeError struct{ status int }

func (e *scrapeError) Error() string { return fmt.Sprintf("metrics status %d", e.status) }

// The backend supervisor: spawns N local simd worker processes for
// `simd -shards N`, learns each child's actual listen address from
// its startup banner (children bind 127.0.0.1:0 — no port guessing,
// no collision window), and babysits them. A child that dies is
// respawned on the SAME port after an exponentially backed-off delay,
// so the router's backend list — which is what gives shard indices
// their identity — never changes while the cluster runs; with
// per-shard store directories, the revived process reopens its store
// and replays its slice of the keyspace byte-identically. A child
// that keeps dying is eventually abandoned: the supervisor marks it
// dead (visible in Status and the router's healthz) instead of
// forking forever, and the router's failover serves its keyspace from
// the surviving shards.
package shard

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"regexp"
	"sync"
	"time"
)

// Proc describes one running backend process.
type Proc struct {
	Index int
	// Addr is the bound listen address (host:port); stable across
	// respawns.
	Addr string
	// URL is the backend base URL the router dials.
	URL string
	Pid int
}

// Process states reported by Status.
const (
	// ProcRunning: the child is up (banner seen, not yet exited).
	ProcRunning = "running"
	// ProcRespawning: the child died and a revival is in progress
	// (backoff sleep or banner wait).
	ProcRespawning = "respawning"
	// ProcDead: the respawn budget is exhausted; the supervisor has
	// given up on this shard. Terminal until the supervisor restarts.
	ProcDead = "dead"
	// ProcRetired: the shard was deliberately drained and stopped
	// (admin drain); its death is intentional and never respawned.
	ProcRetired = "retired"
)

// ProcStatus is one shard's process state as reported by Status and
// embedded in the router's aggregated healthz.
type ProcStatus struct {
	Index int    `json:"index"`
	Addr  string `json:"addr"`
	Pid   int    `json:"pid"`
	State string `json:"state"`
	// Respawns counts successful revivals over the supervisor's
	// lifetime (a crash-looping child shows this climbing before the
	// state goes dead).
	Respawns int `json:"respawns"`
}

// child is the supervisor's mutable view of one backend slot.
type child struct {
	index    int
	addr     string
	args     []string // argsFor(index), without -addr
	cmd      *exec.Cmd
	state    string
	respawns int
	// retired marks a deliberately drained child: its exit is expected
	// and must not trigger a respawn.
	retired bool
}

// SpawnOptions tunes the supervisor's respawn policy. The zero value
// selects the defaults; tests and the chaos harness shrink the
// timings to exercise crash loops in milliseconds.
type SpawnOptions struct {
	// Log receives child stderr/stdout chatter, prefixed per shard
	// (nil: os.Stderr).
	Log io.Writer
	// RespawnBase is the first revival delay (<= 0: 300ms). Each
	// consecutive short-lived respawn doubles it — with jitter, so a
	// cluster of crash-looping shards doesn't thunder back in sync.
	RespawnBase time.Duration
	// RespawnMax caps the backoff (<= 0: 5s).
	RespawnMax time.Duration
	// RespawnAttempts bounds CONSECUTIVE revival retries (<= 0: 5);
	// past this the shard is marked dead and stays down.
	RespawnAttempts int
	// StableUptime is how long a child must survive for its next
	// crash to count as fresh rather than a continuation of a crash
	// loop (<= 0: 10s).
	StableUptime time.Duration
}

// Supervisor owns a set of locally spawned backend processes.
type Supervisor struct {
	bin string
	opt SpawnOptions
	// argsFor maps a shard's stable ID to its extra command-line
	// arguments; retained from Spawn so Add can build workers for IDs
	// that did not exist at boot.
	argsFor func(i int) []string
	// Log receives child stderr/stdout chatter, prefixed per shard.
	log io.Writer

	mu       sync.Mutex
	children []*child
	// spawning tracks processes started but not yet banner-confirmed
	// (a respawn mid-flight): Stop's kill escalation must reach them
	// too, or shutdown would stall out the full banner timeout behind
	// a wedged revival.
	spawning map[*exec.Cmd]struct{}
	stopping bool
	wg       sync.WaitGroup // monitor goroutines
}

// servingLine matches the simd startup banner; the capture is the
// actual bound address.
var servingLine = regexp.MustCompile(`serving on (\S+)`)

// spawnTimeout bounds how long a child may take to print its banner.
const spawnTimeout = 15 * time.Second

// Respawn-policy defaults; see SpawnOptions. Bounded attempts stop a
// crash-looping worker from burning CPU forever, while a rare crash
// every few hours keeps being healed indefinitely.
const (
	defaultRespawnBase     = 300 * time.Millisecond
	defaultRespawnMax      = 5 * time.Second
	defaultRespawnAttempts = 5
	defaultStableUptime    = 10 * time.Second
)

// Spawn starts n backend processes from bin (a simd binary) with the
// default respawn policy. argsFor returns the extra command-line
// arguments for shard i — per-shard store directories, worker counts
// — and must NOT include -addr, which the supervisor owns (children
// bind port 0; respawns re-bind the original port). logw receives
// child output (nil: os.Stderr). On any child failing to start,
// everything already started is torn down.
func Spawn(bin string, n int, argsFor func(i int) []string, logw io.Writer) (*Supervisor, error) {
	return SpawnWith(bin, n, argsFor, SpawnOptions{Log: logw})
}

// SpawnWith is Spawn with an explicit respawn policy.
func SpawnWith(bin string, n int, argsFor func(i int) []string, opt SpawnOptions) (*Supervisor, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: spawn %d backends", n)
	}
	if opt.Log == nil {
		opt.Log = os.Stderr
	}
	if opt.RespawnBase <= 0 {
		opt.RespawnBase = defaultRespawnBase
	}
	if opt.RespawnMax <= 0 {
		opt.RespawnMax = defaultRespawnMax
	}
	if opt.RespawnAttempts <= 0 {
		opt.RespawnAttempts = defaultRespawnAttempts
	}
	if opt.StableUptime <= 0 {
		opt.StableUptime = defaultStableUptime
	}
	s := &Supervisor{bin: bin, opt: opt, argsFor: argsFor, log: opt.Log, spawning: make(map[*exec.Cmd]struct{})}
	for i := 0; i < n; i++ {
		c := &child{index: i, addr: "127.0.0.1:0", args: argsFor(i), state: ProcRunning}
		if err := s.start(c); err != nil {
			s.Stop()
			return nil, err
		}
		s.children = append(s.children, c)
		s.monitor(c, c.cmd, 0)
	}
	return s, nil
}

// start launches one child and waits for its banner. On success
// c.addr holds the bound address and c.cmd the running process.
//
// The child's stdout goes through an os.Pipe the supervisor owns, NOT
// cmd.StdoutPipe: exec-managed pipes are closed by cmd.Wait, which the
// monitor goroutine calls while the banner/drain goroutine is still
// reading — a documented misuse that can drop the child's final
// output (a dying shard's panic message, exactly the bytes worth
// keeping). With our own pipe, Wait leaves it alone and the reader
// drains to a clean EOF when the child exits.
func (s *Supervisor) start(c *child) error {
	args := append([]string{"-addr", c.addr}, c.args...)
	cmd := exec.Command(s.bin, args...)
	pr, pw, err := os.Pipe()
	if err != nil {
		return fmt.Errorf("shard %d: %w", c.index, err)
	}
	cmd.Stdout = pw
	cmd.Stderr = &prefixWriter{w: s.log, prefix: fmt.Sprintf("[shard %d] ", c.index)}
	if err := cmd.Start(); err != nil {
		pr.Close()
		pw.Close()
		return fmt.Errorf("shard %d: starting %s: %w", c.index, s.bin, err)
	}
	// Drop the parent's writer copy: the child holds its own, so the
	// reader's EOF tracks the child's lifetime exactly.
	pw.Close()
	// Register with Stop's escalation before the (up to spawnTimeout)
	// banner wait; a Stop issued during a revival can then kill this
	// process instead of stalling behind it.
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		cmd.Process.Kill()
		cmd.Wait()
		pr.Close()
		return fmt.Errorf("shard %d: supervisor stopping", c.index)
	}
	s.spawning[cmd] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.spawning, cmd)
		s.mu.Unlock()
	}()

	// The banner is the readiness signal: once it arrives the child is
	// listening, so the router can dial it immediately.
	type banner struct {
		addr string
		err  error
	}
	ch := make(chan banner, 1)
	go func() {
		defer pr.Close()
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			line := sc.Text()
			if m := servingLine.FindStringSubmatch(line); m != nil {
				ch <- banner{addr: m[1]}
				// Keep draining so the child never blocks on a full
				// pipe; forward its chatter like stderr.
				logw := &prefixWriter{w: s.log, prefix: fmt.Sprintf("[shard %d] ", c.index)}
				for sc.Scan() {
					fmt.Fprintln(logw, sc.Text())
				}
				return
			}
		}
		ch <- banner{err: fmt.Errorf("exited before announcing its address")}
	}()
	select {
	case b := <-ch:
		if b.err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return fmt.Errorf("shard %d: %v", c.index, b.err)
		}
		c.addr = b.addr
		c.cmd = cmd
		return nil
	case <-time.After(spawnTimeout):
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("shard %d: no address banner within %v", c.index, spawnTimeout)
	}
}

// respawnDelay is the backoff before revival attempt n (1-based):
// base doubled per consecutive failure, capped, with ±25% jitter so a
// whole cluster crash-looping on the same bug doesn't hammer in
// lockstep.
func (s *Supervisor) respawnDelay(attempt int) time.Duration {
	d := s.opt.RespawnBase
	for i := 1; i < attempt && d < s.opt.RespawnMax; i++ {
		d *= 2
	}
	if d > s.opt.RespawnMax {
		d = s.opt.RespawnMax
	}
	// Jitter in [0.75, 1.25); crash-loop tests only rely on the sum
	// staying the same order of magnitude.
	return time.Duration(float64(d) * (0.75 + 0.5*rand.Float64()))
}

// setState updates a child's Status-visible state under the lock.
func (s *Supervisor) setState(c *child, state string) {
	s.mu.Lock()
	c.state = state
	s.mu.Unlock()
}

// monitor watches one child process and respawns it (same index, same
// port) if it dies while the supervisor is running. The respawn's
// banner wait happens outside the supervisor lock, so Stop is never
// blocked behind a slow revival. failed carries the consecutive
// short-lived-respawn count into the next incarnation's monitor: a
// child that crashes again before StableUptime keeps consuming the
// same budget — and the backoff keeps growing — instead of
// crash-looping forever.
func (s *Supervisor) monitor(c *child, cmd *exec.Cmd, failed int) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		started := time.Now()
		cmd.Wait()
		// A dying child's final stderr may not end in a newline (a
		// SIGKILL cuts writes mid-line); push the residue to the log
		// before deciding anything about the corpse.
		if pw, ok := cmd.Stderr.(*prefixWriter); ok {
			pw.Flush()
		}
		if time.Since(started) >= s.opt.StableUptime {
			failed = 0 // lived long enough; this crash starts a fresh budget
		}
		s.mu.Lock()
		retired := c.retired
		s.mu.Unlock()
		if retired {
			// A drained child's exit is the intended outcome, not a
			// failure; Retire already set the terminal state.
			return
		}
		s.setState(c, ProcRespawning)
		for attempt := failed + 1; attempt <= s.opt.RespawnAttempts; attempt++ {
			s.mu.Lock()
			stopping := s.stopping || c.retired
			s.mu.Unlock()
			if stopping {
				return
			}
			time.Sleep(s.respawnDelay(attempt))
			// Re-bind the port the dead child held: the router's
			// backend URL for this shard index must keep working.
			nc := &child{index: c.index, addr: c.addr, args: c.args}
			if err := s.start(nc); err != nil {
				fmt.Fprintf(s.log, "shard %d: respawn attempt %d: %v\n", c.index, attempt, err)
				continue
			}
			s.mu.Lock()
			if s.stopping || c.retired {
				s.mu.Unlock()
				nc.cmd.Process.Kill()
				nc.cmd.Wait()
				return
			}
			c.addr, c.cmd = nc.addr, nc.cmd
			c.state = ProcRunning
			c.respawns++
			s.mu.Unlock()
			fmt.Fprintf(s.log, "shard %d: respawned on %s (pid %d)\n", c.index, nc.addr, nc.cmd.Process.Pid)
			s.monitor(c, nc.cmd, attempt)
			return
		}
		s.setState(c, ProcDead)
		fmt.Fprintf(s.log, "shard %d: down (respawn gave up after %d attempts)\n", c.index, s.opt.RespawnAttempts)
	}()
}

// Procs returns the current backend processes in shard order.
func (s *Supervisor) Procs() []Proc {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Proc, len(s.children))
	for i, c := range s.children {
		p := Proc{Index: c.index, Addr: c.addr, URL: "http://" + c.addr}
		if c.cmd != nil && c.cmd.Process != nil {
			p.Pid = c.cmd.Process.Pid
		}
		out[i] = p
	}
	return out
}

// Status returns each shard's process state in shard order: whether
// it is running (and under which pid), mid-respawn, or abandoned
// after exhausting its respawn budget.
func (s *Supervisor) Status() []ProcStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ProcStatus, len(s.children))
	for i, c := range s.children {
		st := ProcStatus{Index: c.index, Addr: c.addr, State: c.state, Respawns: c.respawns}
		if c.state == ProcRunning && c.cmd != nil && c.cmd.Process != nil {
			st.Pid = c.cmd.Process.Pid
		}
		out[i] = st
	}
	return out
}

// URLs returns the backend base URLs in shard order — the Router's
// Options.Backends. Stable across respawns.
func (s *Supervisor) URLs() []string {
	procs := s.Procs()
	urls := make([]string, len(procs))
	for i, p := range procs {
		urls[i] = p.URL
	}
	return urls
}

// Add spawns one new backend process under the given stable shard ID,
// using the argsFor function retained from Spawn to build its
// arguments (per-shard store directory and the rest). The child binds
// 127.0.0.1:0 like every boot-time worker; the returned Proc carries
// the bound address. Used by the router's admin grow endpoint.
func (s *Supervisor) Add(id int) (Proc, error) {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return Proc{}, fmt.Errorf("shard %d: supervisor stopping", id)
	}
	for _, c := range s.children {
		if c.index == id && !c.retired {
			s.mu.Unlock()
			return Proc{}, fmt.Errorf("shard %d: already running", id)
		}
	}
	s.mu.Unlock()
	c := &child{index: id, addr: "127.0.0.1:0", args: s.argsFor(id), state: ProcRunning}
	if err := s.start(c); err != nil {
		return Proc{}, err
	}
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		c.cmd.Process.Kill()
		c.cmd.Wait()
		return Proc{}, fmt.Errorf("shard %d: supervisor stopping", id)
	}
	s.children = append(s.children, c)
	s.mu.Unlock()
	s.monitor(c, c.cmd, 0)
	return Proc{Index: c.index, Addr: c.addr, URL: "http://" + c.addr, Pid: c.cmd.Process.Pid}, nil
}

// Retire stops the child with the given stable shard ID for good: its
// exit is marked intentional (state "retired", never respawned) and
// the process is interrupted, with a kill escalation if it lingers.
// Retire does not wait for the exit — the monitor goroutine still
// owns cmd.Wait and observes it as usual. Unknown or already-retired
// IDs are no-ops: retiring is idempotent.
func (s *Supervisor) Retire(id int) {
	s.mu.Lock()
	var cmd *exec.Cmd
	for _, c := range s.children {
		if c.index == id && !c.retired {
			c.retired = true
			c.state = ProcRetired
			cmd = c.cmd
			break
		}
	}
	s.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Signal(os.Interrupt)
	go func() {
		// Escalate a lingering child; harmless if it already exited
		// (Kill on a finished process is an error we ignore).
		time.Sleep(5 * time.Second)
		cmd.Process.Kill()
	}()
}

// Stop terminates every child (graceful interrupt first, kill after a
// drain window) and disables respawning. It returns when all children
// and monitors are gone.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	s.stopping = true
	cmds := s.liveCmdsLocked()
	s.mu.Unlock()
	for _, cmd := range cmds {
		cmd.Process.Signal(os.Interrupt)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		// Re-snapshot at escalation: a respawn that was mid-banner-wait
		// when Stop began is in the spawning set, not the original
		// snapshot, and must be killed too or wg.Wait stalls out the
		// full spawn timeout behind it.
		s.mu.Lock()
		cmds = s.liveCmdsLocked()
		s.mu.Unlock()
		for _, cmd := range cmds {
			cmd.Process.Kill()
		}
		s.wg.Wait()
	}
}

// liveCmdsLocked snapshots every process Stop must reach: confirmed
// children plus in-flight respawns. Caller holds s.mu.
func (s *Supervisor) liveCmdsLocked() []*exec.Cmd {
	cmds := make([]*exec.Cmd, 0, len(s.children)+len(s.spawning))
	for _, c := range s.children {
		if c.cmd != nil && c.cmd.Process != nil {
			cmds = append(cmds, c.cmd)
		}
	}
	for cmd := range s.spawning {
		if cmd.Process != nil {
			cmds = append(cmds, cmd)
		}
	}
	return cmds
}

// prefixWriter prefixes each written line — child process chatter
// stays attributable in the shared supervisor log.
type prefixWriter struct {
	w      io.Writer
	prefix string
	mu     sync.Mutex
	buf    []byte
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf = append(p.buf, b...)
	for {
		nl := bytes.IndexByte(p.buf, '\n')
		if nl < 0 {
			return len(b), nil
		}
		fmt.Fprintf(p.w, "%s%s\n", p.prefix, p.buf[:nl])
		p.buf = p.buf[nl+1:]
	}
}

// Flush emits any buffered partial line — the writer's source may die
// mid-line, and those final bytes are often the interesting ones.
func (p *prefixWriter) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.buf) > 0 {
		fmt.Fprintf(p.w, "%s%s\n", p.prefix, p.buf)
		p.buf = nil
	}
}

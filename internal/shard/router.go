// The frontend router: owns the public simd API and fans requests out
// to the backend shards that own them. /run and /compare forward the
// request body verbatim to the spec's owner (responses — bodies,
// X-Cache, X-Spec-Hash, Retry-After — pass through untouched, so a
// sharded cluster is byte-identical to a single process); /sweep
// expands the grid here, routes every variant to its owner, and
// interleaves the per-shard results into one completion-ordered
// NDJSON stream ending in a terminal summary row.
//
// Membership is a versioned value, not a fixed slice: the router
// holds a Topology snapshot (topology.go) mapping stable shard IDs to
// backends, swapped atomically at each admin resize (admin.go). Every
// request routes against one snapshot — RankIDs over the stable IDs —
// so X-Shard headers, failover tags and metric series name the same
// shard across grows and drains, and a mid-request resize never
// splits one request across two membership views.
//
// Failure is handled by failover, not by reporting: results are
// content-addressed and bit-reproducible, so ownership only decides
// cache placement — any live shard computes the byte-identical
// answer. When a spec's owner is dead (transport error, terminal 503)
// or its circuit is open, the router walks the spec's rendezvous rank
// order (shard.RankIDs) to the next live shard and tags the response
// X-Failover: <owner>-><served>. The failover path writes through
// nothing: the owner's store repopulates from replay when it comes
// back. Per-backend circuit breakers (breaker.go) make a dead shard
// cost one background /healthz probe per recovery interval instead of
// a dial timeout per variant. An error row appears only when EVERY
// shard has refused a variant — never a hang, never a silent
// truncation.
//
// With Options.RouterCacheBytes set, the router additionally holds a
// bounded in-memory result cache (cache.go): a result body it has
// relayed once is served to repeats directly from router memory with
// zero backend round trips, tagged X-Cache: router_hit.
//
// Work-stealing is failover's inverse: when a sweep chunk leaves one
// owner's queue deeper than its workers can drain, idle shards steal
// variants from that queue's tail, compute them locally, and the
// router writes the result body back to the owner's store (POST
// /results with X-Result-Key and X-Stolen) — ownership decides cache
// placement, never who simulates. Stealing is for MISSES only: before
// a thief simulates, the router probes the owner's store (GET
// /results?key=...) and a variant the owner already holds streams as
// an ordinary owner cache hit — warm replays stay owner-served and
// untagged even through a backlog. Sweeps are also checkpointed
// cluster-wide: every grid has a deterministic X-Sweep-ID whose
// manifest is written through to a backend store (PUT /sweep/{id} in
// the id's rank order), so a disconnected client replays the missing
// rows via GET /sweep/{id}/resume?after=N and a stored sweep
// re-analyzes via POST /sweep/{id}/analyze with zero re-simulation.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// Options configures a Router.
type Options struct {
	// Backends are the worker base URLs at boot; backend i is admitted
	// as stable shard ID i (epoch 1), so a boot-time cluster routes
	// identically to the pre-topology index scheme. Later membership
	// changes go through the admin endpoints, which assign fresh IDs.
	Backends []string
	// HTTP is the transport used for every backend call; nil selects
	// http.DefaultClient.
	HTTP *http.Client
	// SweepConcurrency bounds in-flight sweep variants per shard
	// (<= 0: probe the shard's /healthz for its worker count, falling
	// back to defaultSweepConcurrency). The backend's bounded queue
	// stays the real limiter — this only keeps the router from
	// provoking gratuitous 503 churn.
	SweepConcurrency int
	// AttemptTimeout bounds one backend call (<= 0: none). A hung
	// backend is then indistinguishable from a dead one: the attempt
	// is cut, the breaker charged, and the request fails over.
	AttemptTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's circuit (<= 0: defaultBreakerThreshold).
	BreakerThreshold int
	// BreakerInterval paces the open-circuit /healthz probes (<= 0:
	// defaultBreakerInterval).
	BreakerInterval time.Duration
	// MaxCycles caps any spec's max_cycles at validation time (<= 0:
	// only the global spec.MaxRunCycles bound applies). Should match
	// the backends' -max-cycles so the router rejects pathological
	// budgets before they cost a forward.
	MaxCycles uint64
	// MaxSweepVariants caps a sweep grid's full Cartesian product
	// (<= 0: service.DefaultMaxSweepVariants). Should match the
	// backends' -max-sweep-variants so router and workers accept
	// exactly the same grids (cmd/simd wires one flag into both).
	MaxSweepVariants int
	// RouterCacheBytes, when positive, enables the router-side result
	// cache bounded to that many encoded bytes; repeats of a result
	// the router has relayed once are answered from router memory
	// (X-Cache: router_hit) with zero backend round trips. <= 0
	// disables the cache — warm replays then resolve through the
	// owning backend's store exactly as before (cmd/simd enables the
	// cache by default via -router-cache-bytes).
	RouterCacheBytes int64
	// Supervisor, when the router fronts locally supervised backends,
	// lets the aggregated healthz report process state (running /
	// respawning / dead-after-give-up) per shard, and is what the
	// admin grow endpoint spawns new workers through.
	Supervisor *Supervisor
	// TenantHeader names the request header carrying the caller's
	// tenant for the backends' weighted-fair scheduling (empty:
	// service.DefaultTenantHeader). Must match the backends'
	// -tenant-header so the identity the router validates and forwards
	// is the one the workers queue by (cmd/simd wires one flag into
	// both).
	TenantHeader string
}

// defaultSweepConcurrency is the per-shard variant fan-out used when
// a backend's worker count cannot be probed.
const defaultSweepConcurrency = 4

// healthTimeout bounds one backend /healthz probe; liveness must not
// hang on a dead peer.
const healthTimeout = 2 * time.Second

// routerHit is the X-Cache disposition of a response served from the
// router's own result cache — distinct from the backend's "hit" so
// clients and smokes can tell the tiers apart.
const routerHit = "router_hit"

// shardState is one backend as the router sees it. id is the shard's
// stable identity: assigned at admission, never reused, and the value
// rendezvous placement, X-Shard headers, failover/steal tags and
// metric labels are all keyed by.
type shardState struct {
	id      int
	client  *service.Client
	conc    int
	breaker *breaker
	// Per-shard metric series, resolved once at admission (With takes
	// a lock; the serving path must not).
	attempts  *obs.Histogram // backend attempt latency
	failovers *obs.Counter   // requests served away from THIS owner
	retries   *obs.Counter   // saturation retry waits against this shard
	steals    *obs.Counter   // sweep variants THIS shard stole and computed
}

// view is one immutable membership snapshot: the shard states of one
// topology epoch plus the derived indexes the request paths need.
// Handlers take one view per request (or per sweep chunk) and route
// entirely against it; admin resizes install a new view, they never
// mutate an old one.
type view struct {
	epoch  int64
	shards []*shardState // membership order
	byID   map[int]*shardState
	ids    []int // stable IDs in membership order (OwnerID/RankIDs input)
}

// newView builds the derived indexes for one membership snapshot.
func newView(epoch int64, shards []*shardState) *view {
	v := &view{epoch: epoch, shards: shards, byID: make(map[int]*shardState, len(shards)), ids: make([]int, len(shards))}
	for i, sh := range shards {
		v.byID[sh.id] = sh
		v.ids[i] = sh.id
	}
	return v
}

// topology renders the view as the wire-visible Topology value.
func (v *view) topology() Topology {
	t := Topology{Epoch: v.epoch, Members: make([]Member, len(v.shards))}
	for i, sh := range v.shards {
		t.Members[i] = Member{ID: sh.id, Addr: sh.client.Base}
	}
	return t
}

// Router is the sharded frontend. Routing state is one atomic
// membership snapshot plus per-backend circuit state: every routing
// decision derives from the request's spec hash and the stable IDs in
// the current view, so any number of router replicas with the same
// topology agree on ownership and failover order (breaker state may
// briefly differ per replica — it converges via the shared probes).
type Router struct {
	mux              *http.ServeMux
	scenariosBody    []byte
	scenarioByName   map[string]spec.Spec
	attemptTimeout   time.Duration
	maxCycles        uint64
	maxSweepVariants int
	sweepConc        int
	tenantHeader     string
	breakerThreshold int
	breakerInterval  time.Duration
	httpClient       *http.Client
	sup              *Supervisor
	cache            *resultCache
	stop             chan struct{}
	stopOnce         sync.Once
	since            time.Time

	// topoMu guards the current membership snapshot and the stable-ID
	// allocator. Request paths take the read lock once per request to
	// snapshot the view; only admin resizes take the write lock.
	topoMu sync.RWMutex
	topo   *view
	nextID int

	// adminMu serializes membership changes: one grow or drain at a
	// time, so two concurrent drains cannot both believe the other's
	// shard is still a migration target.
	adminMu sync.Mutex

	// reg holds the router's own metric families (metrics.go); the
	// aggregated /metrics merges backend scrapes into it per request.
	reg          *obs.Registry
	httpMetrics  *obs.HTTPMetrics
	sweepRows    *obs.Counter
	sweepResumes *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	migrated     *obs.CounterVec

	// Per-shard metric vecs, kept so shards admitted at runtime bind
	// their own series under their stable ID label (bindShardMetrics).
	attemptsVec  *obs.HistogramVec
	failoversVec *obs.CounterVec
	retriesVec   *obs.CounterVec
	stealsVec    *obs.CounterVec
	opensVec     *obs.CounterVec
	stateVec     *obs.GaugeVec
	restartsVec  *obs.CounterVec
}

// New builds a router over the given backends. Construction never
// requires the backends to be up — a cluster must boot in any order —
// but live backends are probed once for their worker counts to size
// the sweep fan-out.
func New(opt Options) (*Router, error) {
	if len(opt.Backends) == 0 {
		return nil, errors.New("shard: no backends")
	}
	rt := &Router{
		attemptTimeout:   opt.AttemptTimeout,
		maxCycles:        opt.MaxCycles,
		maxSweepVariants: opt.MaxSweepVariants,
		sweepConc:        opt.SweepConcurrency,
		tenantHeader:     opt.TenantHeader,
		breakerThreshold: opt.BreakerThreshold,
		breakerInterval:  opt.BreakerInterval,
		httpClient:       opt.HTTP,
		sup:              opt.Supervisor,
		stop:             make(chan struct{}),
		since:            time.Now(),
	}
	if rt.maxSweepVariants <= 0 {
		rt.maxSweepVariants = service.DefaultMaxSweepVariants
	}
	if rt.tenantHeader == "" {
		rt.tenantHeader = service.DefaultTenantHeader
	}
	if opt.RouterCacheBytes > 0 {
		rt.cache = newResultCache(opt.RouterCacheBytes)
	}
	rt.scenariosBody, rt.scenarioByName = service.ScenarioLibrary()
	shards := make([]*shardState, 0, len(opt.Backends))
	for i, base := range opt.Backends {
		sh, err := rt.newShardState(i, base)
		if err != nil {
			return nil, err
		}
		shards = append(shards, sh)
	}
	rt.probeConcurrency(shards)
	rt.topo = newView(1, shards)
	rt.nextID = len(shards)
	rt.initMetrics()
	rt.mux = http.NewServeMux()
	// Same middleware as the worker: every endpoint is counted, timed
	// and carries the request-ID contract — the router mints the ID
	// the backend hop then inherits through the request context.
	handle := func(pattern string, h http.HandlerFunc) {
		rt.mux.Handle(pattern, rt.httpMetrics.Wrap(pattern, h))
	}
	handle("/run", func(w http.ResponseWriter, r *http.Request) { rt.handleProxy(w, r, "/run") })
	handle("/compare", func(w http.ResponseWriter, r *http.Request) { rt.handleProxy(w, r, "/compare") })
	handle("/sweep", rt.handleSweep)
	handle("/sweep/analyze", rt.handleAnalyze)
	handle("/sweep/{id}", rt.handleSweepStatus)
	handle("/sweep/{id}/resume", rt.handleSweepResume)
	handle("/sweep/{id}/analyze", rt.handleSweepStoredAnalyze)
	handle("/admin/shards", rt.handleAdminShards)
	handle("/admin/shards/{id}/drain", rt.handleAdminDrain)
	handle("/scenarios", rt.handleScenarios)
	handle("/healthz", rt.handleHealthz)
	handle("/metrics", rt.handleMetrics)
	handle("/version", service.VersionHandler(rt.since).ServeHTTP)
	return rt, nil
}

// newShardState validates one backend URL and builds its state under
// the given stable ID (metric series bind later, at admission).
func (rt *Router) newShardState(id int, base string) (*shardState, error) {
	base = strings.TrimSuffix(strings.TrimSpace(base), "/")
	if base == "" {
		return nil, fmt.Errorf("shard: backend %d has an empty URL", id)
	}
	// Reject malformed and scheme-less URLs at construction: a
	// "localhost:8080" (missing http://) parses as scheme
	// "localhost" and would boot cleanly only to 502 every request
	// with an error blaming the network instead of the flag.
	u, err := url.Parse(base)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("shard: backend %d URL %q must be http(s)://host[:port]", id, base)
	}
	client := &service.Client{Base: base, HTTP: rt.httpClient}
	return &shardState{
		id:     id,
		client: client,
		conc:   rt.sweepConc,
		breaker: newBreaker(rt.breakerThreshold, rt.breakerInterval, func(ctx context.Context) error {
			_, err := client.FetchHealth(ctx)
			return err
		}, rt.stop),
	}, nil
}

// probeConcurrency resolves each shard's sweep fan-out: the
// configured value if set, otherwise sized per class from the
// backend's live /healthz (falling back to defaultSweepConcurrency
// when unreachable). Sweep variants are batch-class, and under the
// weighted-fair scheduler a batch call that finds every worker busy
// with interactive work QUEUES (up to the batch cap) instead of
// burning a 503 — so the router keeps one extra worker's worth of
// variants in the shard's batch queue (worker count plus
// min(batch queue capacity, worker count)): the queue stays primed
// through interactive bursts and drains at full rate the moment the
// workers free up, with no gratuitous 503 churn. The same number is
// the work-stealing threshold (collectChunk), so a backlog within
// the shard's own primed pipeline is left alone and stealing starts
// only past what the shard can actually hold in its batch share.
// Backends without a sched block report no batch cap and size to
// the worker count as before.
func (rt *Router) probeConcurrency(shards []*shardState) {
	var wg sync.WaitGroup
	for _, sh := range shards {
		if sh.conc > 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shardState) {
			defer wg.Done()
			sh.conc = defaultSweepConcurrency
			ctx, cancel := context.WithTimeout(context.Background(), healthTimeout)
			defer cancel()
			h, err := sh.client.FetchHealth(ctx)
			if err != nil || h.Workers <= 0 {
				return
			}
			sh.conc = h.Workers
			if h.Sched == nil {
				return
			}
			for _, cs := range h.Sched.Classes {
				if cs.Class == sched.Batch.String() && cs.QueueCap > 0 {
					sh.conc = h.Workers + min(cs.QueueCap, h.Workers)
				}
			}
		}(sh)
	}
	wg.Wait()
}

// view snapshots the current membership. The returned view is
// immutable; the caller routes its whole request (or sweep chunk)
// against it.
func (rt *Router) view() *view {
	rt.topoMu.RLock()
	defer rt.topoMu.RUnlock()
	return rt.topo
}

// allocIDs reserves n fresh stable shard IDs. IDs are never reused
// within a router's lifetime, so a retired shard's metric series and
// log lines can never be confused with a later arrival's.
func (rt *Router) allocIDs(n int) []int {
	rt.topoMu.Lock()
	defer rt.topoMu.Unlock()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = rt.nextID
		rt.nextID++
	}
	return ids
}

// admit installs a new view containing the current members plus shs,
// bumping the epoch. Returns the new topology.
func (rt *Router) admit(shs []*shardState) Topology {
	rt.topoMu.Lock()
	defer rt.topoMu.Unlock()
	all := make([]*shardState, 0, len(rt.topo.shards)+len(shs))
	all = append(all, rt.topo.shards...)
	all = append(all, shs...)
	rt.topo = newView(rt.topo.epoch+1, all)
	return rt.topo.topology()
}

// remove installs a new view without the given shard ID, bumping the
// epoch. Returns the new topology.
func (rt *Router) remove(id int) Topology {
	rt.topoMu.Lock()
	defer rt.topoMu.Unlock()
	kept := make([]*shardState, 0, len(rt.topo.shards))
	for _, sh := range rt.topo.shards {
		if sh.id != id {
			kept = append(kept, sh)
		}
	}
	rt.topo = newView(rt.topo.epoch+1, kept)
	return rt.topo.topology()
}

// Topology returns the current membership snapshot — stable IDs,
// backend addresses and the epoch number.
func (rt *Router) Topology() Topology { return rt.view().topology() }

// Shards returns the current backend count.
func (rt *Router) Shards() int { return len(rt.view().shards) }

// Handler returns the HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the router's background work (open-circuit probers).
// In-flight requests are unaffected; Close exists so embedding tests
// and servers can shut down without leaking probe goroutines against
// permanently dead backends.
func (rt *Router) Close() { rt.stopOnce.Do(func() { close(rt.stop) }) }

// maxBodyBytes mirrors the backend's request-body bound.
const maxBodyBytes = 1 << 20

// writeError sends a JSON error stamped with the request's ID.
func writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	body, _ := json.Marshal(struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id,omitempty"`
	}{Error: fmt.Sprintf(format, args...), RequestID: obs.RequestIDFrom(r.Context())})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// resolveSpec decodes a /run-shaped body far enough to route it: the
// request (for the model selector), the spec and its content hash.
// Validation beyond the routing needs (and the router's own
// max_cycles cap) stays on the backend — the router forwards the
// original bytes, so the backend's strict decode sees exactly what
// the client sent.
func (rt *Router) resolveSpec(body []byte) (service.RunRequest, spec.Spec, string, error) {
	var req service.RunRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, spec.Spec{}, "", fmt.Errorf("parsing request: %w", err)
	}
	var sp spec.Spec
	switch {
	case req.Spec != nil && req.Scenario != "":
		return req, sp, "", errors.New("request has both spec and scenario; send one")
	case req.Spec != nil:
		sp = *req.Spec
	case req.Scenario != "":
		found, ok := rt.scenarioByName[req.Scenario]
		if !ok {
			return req, sp, "", fmt.Errorf("unknown scenario %q", req.Scenario)
		}
		sp = found
	default:
		return req, sp, "", errors.New("request needs a spec or a scenario name")
	}
	hash, err := sp.Hash()
	return req, sp, hash, err
}

// checkCycleCap enforces the router's configured max_cycles cap — the
// same bound the backends enforce via -max-cycles, applied here so a
// pathological budget is rejected before it costs a forward.
func (rt *Router) checkCycleCap(sp spec.Spec) error {
	if rt.maxCycles > 0 && sp.MaxCycles > rt.maxCycles {
		return fmt.Errorf("spec %s: max_cycles %d exceeds the cluster cap %d", sp.Name, sp.MaxCycles, rt.maxCycles)
	}
	return nil
}

// post sends one backend call, bounded by the per-attempt timeout
// when configured. The attempt context is derived from the caller's,
// so a vanished client still cancels the forward immediately. extra
// (may be nil) carries per-request scheduling identity — the
// tenant/class headers the backend's weighted-fair scheduler queues
// by.
func (rt *Router) post(ctx context.Context, sh *shardState, path string, body []byte, extra http.Header) (int, http.Header, []byte, error) {
	if rt.attemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.attemptTimeout)
		defer cancel()
	}
	hdr := http.Header{"Content-Type": {"application/json"}}
	for name, vals := range extra {
		hdr[name] = vals
	}
	start := time.Now()
	status, respHdr, respBody, err := sh.client.Do(ctx, http.MethodPost, path, body, hdr)
	sh.attempts.Observe(time.Since(start).Seconds())
	return status, respHdr, respBody, err
}

// identHeader extracts the scheduling identity a frontend request
// carries — the tenant header (Options.TenantHeader) and X-Class —
// as the header block every backend hop for that request forwards.
// defClass is stamped when the client named no class ("" leaves the
// choice to the backend endpoint's own default); the sweep fan-out
// passes "batch" so a grid's variants are explicitly batch-class on
// every /run they become, even through failover and work-stealing.
// Validation happens here, with the scheduler's own rules, so a bad
// identity is one clean 400 at the front door rather than a
// per-variant error row storm.
func (rt *Router) identHeader(r *http.Request, defClass string) (http.Header, error) {
	hdr := http.Header{}
	if tenant := r.Header.Get(rt.tenantHeader); tenant != "" {
		if !sched.ValidTenant(tenant) {
			return nil, fmt.Errorf("invalid tenant %q in %s (want 1-%d chars of [A-Za-z0-9._-])", tenant, rt.tenantHeader, sched.MaxTenantLen)
		}
		hdr.Set(rt.tenantHeader, tenant)
	}
	class := r.Header.Get(service.ClassHeader)
	if class != "" {
		if _, ok := sched.ParseClass(class); !ok {
			return nil, fmt.Errorf("unknown scheduling class %q in %s (want interactive or batch)", class, service.ClassHeader)
		}
	} else {
		class = defClass
	}
	if class != "" {
		hdr.Set(service.ClassHeader, class)
	}
	return hdr, nil
}

// resultKeyFor maps a variant's endpoint and model selector onto the
// content-addressed store key its result lives under — the shared
// vocabulary of the backend store, the owner probe, the write-back
// and the router cache. Empty when the hash is malformed.
func resultKeyFor(path, runModel, hash string) string {
	model := runModel
	if path == "/compare" {
		model = "compare"
	}
	key, err := service.ResultKey(model, hash)
	if err != nil {
		return ""
	}
	return key
}

// cacheLookup probes the router result cache, counting the hit or
// miss. Always a miss when the cache is disabled or the key is
// unusable (then uncounted: no probe happened).
func (rt *Router) cacheLookup(key string) ([]byte, bool) {
	if rt.cache == nil || key == "" {
		return nil, false
	}
	if body, ok := rt.cache.get(key); ok {
		rt.cacheHits.Inc()
		return body, true
	}
	rt.cacheMisses.Inc()
	return nil, false
}

// cacheFill stores a relayed 200 body in the router cache.
func (rt *Router) cacheFill(key string, body []byte) {
	if rt.cache != nil && key != "" {
		rt.cache.put(key, body)
	}
}

// proxyHeaders is the response-header allowlist forwarded from a
// backend: the cache/replay contract, backpressure, and the per-stage
// timing breakdown.
var proxyHeaders = []string{"Content-Type", "X-Cache", "X-Spec-Hash", "Retry-After", "X-Terminal", "X-Timing"}

// handleProxy serves POST /run and /compare: hash, probe the router
// cache, then walk the spec's rendezvous rank order starting at its
// owner, forward verbatim to the first live shard, relay the
// response. The router adds X-Shard (the stable ID of the shard that
// served — the current owner for router-cache hits, which are
// placement-neutral) and, when the server isn't the owner, X-Failover
// ("owner->served") so operators can see both placement and
// degradation. 502 only when every shard refused.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request, path string) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	req, sp, hash, err := rt.resolveSpec(body)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if err := rt.checkCycleCap(sp); err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	schedHdr, err := rt.identHeader(r, "")
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	vw := rt.view()
	ranks := RankIDs(hash, vw.ids)
	owner := ranks[0]
	key := resultKeyFor(path, req.Model, hash)
	if cached, ok := rt.cacheLookup(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", routerHit)
		w.Header().Set("X-Spec-Hash", hash)
		w.Header().Set("X-Shard", strconv.Itoa(owner))
		w.WriteHeader(http.StatusOK)
		w.Write(cached)
		return
	}
	lastErr := ""
	for _, id := range ranks {
		sh := vw.byID[id]
		if !sh.breaker.allow() {
			lastErr = fmt.Sprintf("shard %d (%s): circuit open", id, sh.client.Base)
			continue
		}
		status, hdr, respBody, err := rt.post(r.Context(), sh, path, body, schedHdr)
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone; nothing to say and no one to say it to
			}
			sh.breaker.failure()
			lastErr = fmt.Sprintf("shard %d (%s) unreachable: %v", id, sh.client.Base, err)
			continue
		}
		if status == http.StatusServiceUnavailable && hdr.Get("X-Terminal") != "" {
			// Shutting down — as dead as a failed dial for routing
			// purposes; the next-ranked shard serves.
			sh.breaker.failure()
			lastErr = fmt.Sprintf("shard %d (%s) shutting down", id, sh.client.Base)
			continue
		}
		sh.breaker.success()
		for _, name := range proxyHeaders {
			if v := hdr.Get(name); v != "" {
				w.Header().Set(name, v)
			}
		}
		w.Header().Set("X-Shard", strconv.Itoa(id))
		if id != owner {
			w.Header().Set("X-Failover", fmt.Sprintf("%d->%d", owner, id))
			vw.byID[owner].failovers.Inc()
			log.Printf("failover endpoint=%s owner=%d served=%d rid=%s reason=%q",
				path, owner, id, obs.RequestIDFrom(r.Context()), lastErr)
		}
		if status == http.StatusOK {
			rt.cacheFill(key, respBody)
		}
		w.WriteHeader(status)
		w.Write(respBody)
		return
	}
	writeError(w, r, http.StatusBadGateway, "no live shard for spec (owner %d): %s", owner, lastErr)
}

// handleScenarios serves GET /scenarios — the same library every
// backend derives from the same spec data.
func (rt *Router) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(rt.scenariosBody)
}

// ShardHealth is one backend's slot in the aggregated /healthz.
type ShardHealth struct {
	// ID is the shard's stable identity — the value X-Shard headers,
	// failover tags and metric labels carry. Index repeats it for
	// consumers written against the positional-era schema.
	ID    int    `json:"id"`
	Index int    `json:"index"`
	Addr  string `json:"addr"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Breaker is the router's circuit state for this backend:
	// "closed", "open" or "half-open".
	Breaker string `json:"breaker"`
	// Proc is the supervisor's process view (supervised clusters
	// only): running / respawning / dead, plus the respawn count.
	Proc *ProcStatus `json:"proc,omitempty"`
	// Restarts is Proc's respawn count lifted to the top level so
	// monitoring can read "this worker's counters reset N times"
	// without probing for the supervisor-only Proc block. Always 0 in
	// pre-spawned (unsupervised) clusters.
	Restarts int `json:"restarts"`
	// Health is the backend's own /healthz body, absent when the
	// shard is unreachable.
	Health *service.Health `json:"health,omitempty"`
}

// ClusterHealth is the router's GET /healthz body: per-shard liveness
// and occupancy plus cluster totals. OK is the conjunction — a
// cluster with a dead shard is degraded (its keyspace is served by
// failover, without its warm store), and monitoring must see that
// even while every request still succeeds.
type ClusterHealth struct {
	OK bool `json:"ok"`
	// Epoch is the current topology version; it increments on every
	// admin grow or drain, so two healthz reads can be ordered.
	Epoch int64 `json:"epoch"`
	// Topology is the current membership: stable shard IDs bound to
	// backend addresses, in admission order.
	Topology []Member      `json:"topology"`
	Shards   []ShardHealth `json:"shards"`
	// Workers/QueueCap/Queued/InFlight are summed over live shards.
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_capacity"`
	Queued   int `json:"queued"`
	InFlight int `json:"in_flight"`
	// RetryAfter is the worst (largest) live-shard backoff — the
	// honest cluster-wide pacing hint, since a request may land on the
	// busiest shard.
	RetryAfter int `json:"retry_after"`
	// Sched aggregates the shards' weighted-fair scheduler state per
	// class: queue capacity, queued, in-flight, rejected and
	// dispatched summed over live shards; retry_after is the worst
	// (largest) live shard's per-class backoff. Class names match the
	// simd_sched_* metric labels. Absent when no live shard reported a
	// sched block.
	Sched []sched.ClassStatus `json:"sched,omitempty"`
	// SchedTenants aggregates per-tenant queue depth across live
	// shards, ordered by class then tenant name — the cluster-wide
	// twin of a worker's sched.tenants healthz block, keyed like the
	// simd_sched_queue_depth{tenant,class} metric.
	SchedTenants []sched.TenantStatus `json:"sched_tenants,omitempty"`
	// Restarts is the total supervisor respawns across shards. A
	// nonzero value warns that the summed Counters below undercount:
	// a respawned worker restarts its counters (and loses its memory
	// cache) even though its disk store replays.
	Restarts int `json:"restarts"`
	// Version describes the router build itself (the shards report
	// their own go_version in their Health blocks).
	Version *service.VersionInfo `json:"version,omitempty"`
	service.Counters
}

// FetchClusterHealth probes every backend concurrently and aggregates.
func (rt *Router) FetchClusterHealth(ctx context.Context) ClusterHealth {
	vw := rt.view()
	top := vw.topology()
	out := ClusterHealth{OK: true, Epoch: top.Epoch, Topology: top.Members, Shards: make([]ShardHealth, len(vw.shards))}
	procByID := make(map[int]ProcStatus)
	if rt.sup != nil {
		for _, p := range rt.sup.Status() {
			procByID[p.Index] = p
		}
	}
	var wg sync.WaitGroup
	for i, sh := range vw.shards {
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			probe, cancel := context.WithTimeout(ctx, healthTimeout)
			defer cancel()
			h, err := sh.client.FetchHealth(probe)
			if err != nil {
				out.Shards[i] = ShardHealth{ID: sh.id, Index: sh.id, Addr: sh.client.Base, Error: err.Error()}
				return
			}
			out.Shards[i] = ShardHealth{ID: sh.id, Index: sh.id, Addr: sh.client.Base, OK: h.OK, Health: &h}
		}(i, sh)
	}
	wg.Wait()
	for i, sh := range vw.shards {
		out.Shards[i].Breaker = sh.breaker.State()
		if p, ok := procByID[sh.id]; ok {
			out.Shards[i].Proc = &p
			out.Shards[i].Restarts = p.Respawns
			out.Restarts += p.Respawns
		}
	}
	v := service.ReadVersion(rt.since)
	out.Version = &v
	classAgg := make(map[string]*sched.ClassStatus)
	var classOrder []string
	tenantAgg := make(map[string]*sched.TenantStatus)
	for _, s := range out.Shards {
		if !s.OK || s.Health == nil {
			out.OK = false
			continue
		}
		h := s.Health
		out.Workers += h.Workers
		out.QueueCap += h.QueueCap
		out.Queued += h.Queued
		out.InFlight += h.InFlight
		if h.RetryAfter > out.RetryAfter {
			out.RetryAfter = h.RetryAfter
		}
		out.Jobs += h.Jobs
		out.CacheHits += h.CacheHits
		out.Coalesced += h.Coalesced
		out.Rejected += h.Rejected
		out.StoreHits += h.StoreHits
		out.Timeouts += h.Timeouts
		if h.Sched == nil {
			continue
		}
		for _, cs := range h.Sched.Classes {
			agg, ok := classAgg[cs.Class]
			if !ok {
				c := cs
				classAgg[cs.Class] = &c
				classOrder = append(classOrder, cs.Class)
				continue
			}
			agg.QueueCap += cs.QueueCap
			agg.Queued += cs.Queued
			agg.InFlight += cs.InFlight
			agg.Rejected += cs.Rejected
			agg.Dispatched += cs.Dispatched
			if cs.RetryAfter > agg.RetryAfter {
				agg.RetryAfter = cs.RetryAfter
			}
		}
		for _, ts := range h.Sched.Tenants {
			// Key by class INDEX so the merged order below is class
			// order then tenant name — exactly a single worker's own
			// healthz block — not the class names' lexicographic order.
			idx, _ := sched.ParseClass(ts.Class)
			k := fmt.Sprintf("%d\x00%s", idx, ts.Tenant)
			if agg, ok := tenantAgg[k]; ok {
				agg.Queued += ts.Queued
			} else {
				t := ts
				tenantAgg[k] = &t
			}
		}
	}
	// Workers report classes in fixed scheduler order, so first-seen
	// order IS that order; tenants sort by class then name, matching a
	// single worker's own healthz block.
	for _, name := range classOrder {
		out.Sched = append(out.Sched, *classAgg[name])
	}
	tenantKeys := make([]string, 0, len(tenantAgg))
	for k := range tenantAgg {
		tenantKeys = append(tenantKeys, k)
	}
	sort.Strings(tenantKeys)
	for _, k := range tenantKeys {
		out.SchedTenants = append(out.SchedTenants, *tenantAgg[k])
	}
	return out
}

// handleHealthz serves the aggregated GET /healthz. The status code
// stays 200 even when degraded — the body's ok field carries the
// verdict, and a load balancer that should stop routing to a
// *router* (rather than a shard) has the per-shard detail to decide.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	body, err := json.Marshal(rt.FetchClusterHealth(r.Context()))
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// Row is one NDJSON data line of the router's /sweep stream: the
// backend's row plus the stable ID of the shard that served the
// variant. Shard is always present (0 is a real shard; -1 marks a
// grid-level build error no shard served), which is why this is a
// distinct wire type rather than an omitempty field on the backend
// row. Failover is set ("owner->served") when the serving shard is
// not the owner — the stream-level twin of the X-Failover header.
// Stolen ("owner->thief") marks a work-stolen row: an idle shard
// computed it past the owner's deep queue and the result was written
// back to the owner's store. A row served from the router's own
// result cache carries Cache "router_hit" with Shard naming the
// current owner (placement, not work).
type Row struct {
	service.SweepRow
	Shard    int    `json:"shard"`
	Failover string `json:"failover,omitempty"`
	Stolen   string `json:"stolen,omitempty"`
}

// sweepEndpoint maps the request's model selector onto the per-variant
// backend endpoint, mirroring the backend's own model switch.
func sweepEndpoint(model string) (path, runModel string, err error) {
	switch model {
	case "", "tl", "tlm", "rtl":
		return "/run", model, nil
	case "compare":
		return "/compare", "", nil
	}
	return "", "", fmt.Errorf("unknown model %q (want tl, rtl or compare)", model)
}

// sweepChunkSize and manifestCheckpointRows mirror the backend's
// values (internal/service): the two tiers buffer the same number of
// expanded variants and checkpoint at the same row cadence, so their
// streams degrade identically under the same failures.
const (
	sweepChunkSize         = 2048
	manifestCheckpointRows = 256
)

// handleSweep serves POST /sweep: walk the grid in bounded chunks,
// route each variant to its owning shard as an individual /run (or
// /compare) call — work-stolen when the owner's queue runs deep — and
// merge the results into one completion-ordered stream. Per-variant
// forwarding — rather than forwarding sub-grids — is what lets every
// variant share the backend's full cache/coalescing path with direct
// requests, and what makes failover per-variant: a dead shard's
// keyspace is simply computed by the next-ranked live shard.
func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req service.SweepRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	schedHdr, err := rt.identHeader(r, sched.Batch.String())
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	rt.streamSweep(w, r, req, -1, schedHdr)
}

// streamSweep validates the grid and streams its NDJSON rows — the
// shared engine of POST /sweep (after = -1: the whole grid) and GET
// /sweep/{id}/resume (after = the client's high-water mark). The
// router mirrors the backend's checkpointing: the sweep's manifest is
// written through to a backend store as rows complete, so a sweep's
// identity and progress survive the death of the client, the router
// AND any single shard. schedHdr is the caller's scheduling identity
// (tenant + class, normally batch) stamped on every per-variant
// backend call.
func (rt *Router) streamSweep(w http.ResponseWriter, r *http.Request, req service.SweepRequest, after int, schedHdr http.Header) {
	grid, total, err := service.ResolveSweepGrid(req, rt.scenarioByName, rt.maxSweepVariants)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if err := service.CheckGridCycleCaps(grid, rt.checkCycleCap); err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	path, runModel, err := sweepEndpoint(req.Model)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := service.SweepID(req, rt.scenarioByName)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	man := rt.loadOrNewManifest(r.Context(), id, req, total)

	// The stream is committed: from here every failure is a row, and
	// completion is the terminal summary line.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Variants", strconv.Itoa(total))
	w.Header().Set(service.SweepIDHeader, id)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)

	emitted, errored, sinceCheckpoint := 0, 0, 0
	emit := func(row Row) {
		enc.Encode(row)
		if flusher != nil {
			flusher.Flush()
		}
		rt.sweepRows.Inc()
		emitted++
		if row.Error != "" {
			errored++
			man.Failed.Set(row.Index)
		} else {
			man.Done.Set(row.Index)
			man.Failed.Clear(row.Index)
		}
		if sinceCheckpoint++; sinceCheckpoint >= manifestCheckpointRows {
			sinceCheckpoint = 0
			rt.checkpointManifest(man)
		}
	}
	distinct, complete := rt.collectGrid(r.Context(), grid, after, path, runModel, schedHdr, emit)
	if complete {
		enc.Encode(service.SweepSummary{Done: true, Rows: emitted, Errors: errored})
		if flusher != nil {
			flusher.Flush()
		}
		// A completed walk knows the deduplicated variant count even
		// when it only EMITTED a suffix — the walk itself always
		// enumerates from index 0 — so a resume that reaches the end
		// can mark the sweep complete just like the initial stream.
		man.Variants = distinct
	}
	// The final checkpoint runs even when the client vanished: the
	// progress made before the disconnect is exactly what its resume
	// wants to skip.
	rt.checkpointManifest(man)
}

// collectGrid walks the grid lazily and resolves it in bounded,
// work-stolen chunks — the router twin of the backend's collectGrid:
// same chunk size, same skip-at-or-below-after replay semantics, same
// build-errors-become-rows rule. Each chunk routes against a fresh
// topology snapshot, so a sweep spanning an admin resize starts using
// the new membership at the next chunk boundary. Returns the
// deduplicated variant count of the FULL walk (valid only when
// complete) and whether the walk finished before ctx ended.
func (rt *Router) collectGrid(ctx context.Context, grid sweep.Grid, after int, path, runModel string, schedHdr http.Header, emit func(Row)) (distinct int, complete bool) {
	chunk := make([]sweep.Variant, 0, sweepChunkSize)
	flush := func() bool {
		if len(chunk) == 0 {
			return true
		}
		ok := rt.collectChunk(ctx, rt.view(), chunk, path, runModel, schedHdr, emit)
		chunk = chunk[:0]
		return ok
	}
	err := grid.Walk(func(v sweep.Variant, verr error) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if verr != nil {
			if v.Index > after {
				emit(Row{SweepRow: service.SweepRow{Index: v.Index, Name: v.Spec.Name, Params: v.Params, Error: verr.Error()}, Shard: -1})
			}
			return nil
		}
		distinct++
		if v.Index <= after {
			return nil
		}
		chunk = append(chunk, v)
		if len(chunk) >= sweepChunkSize {
			if !flush() {
				return context.Canceled
			}
		}
		return nil
	})
	if err != nil {
		return distinct, false
	}
	return distinct, flush()
}

// collectChunk resolves one chunk of variants across the cluster and
// invokes emit — always from this goroutine — once per variant in
// completion order. The whole chunk routes against one membership
// view.
//
// The fan-out is a work-stealing scheduler over per-owner queues:
// EVERY shard gets workers — including shards that own nothing in
// this chunk — and a worker drains its own shard's queue from the
// head first. A worker whose queue is empty steals from the tail of
// the DEEPEST victim queue, but only while that queue holds more
// work than its shard has concurrent slots: a backlog the owner is
// about to clear anyway is left alone (ownership still decides cache
// placement), while a skewed chunk stops being wall-clock-bounded by
// its hottest shard. The two ends never contend for the same variant.
func (rt *Router) collectChunk(ctx context.Context, vw *view, variants []sweep.Variant, path, runModel string, schedHdr http.Header, emit func(Row)) bool {
	pos := make(map[int]int, len(vw.shards))
	for i, sh := range vw.shards {
		pos[sh.id] = i
	}
	queues := make([][]sweep.Variant, len(vw.shards))
	for _, v := range variants {
		owner := pos[OwnerID(v.Hash, vw.ids)]
		queues[owner] = append(queues[owner], v)
	}
	var mu sync.Mutex
	next := func(self int) (sweep.Variant, int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if q := queues[self]; len(q) > 0 {
			queues[self] = q[1:]
			return q[0], self, true
		}
		victim := -1
		for j := range queues {
			if j == self || len(queues[j]) <= vw.shards[j].conc {
				continue
			}
			if victim < 0 || len(queues[j]) > len(queues[victim]) {
				victim = j
			}
		}
		if victim < 0 {
			return sweep.Variant{}, -1, false
		}
		q := queues[victim]
		queues[victim] = q[:len(q)-1]
		return q[len(q)-1], victim, true
	}

	rows := make(chan Row)
	var wg sync.WaitGroup
	for i, sh := range vw.shards {
		workers := min(sh.conc, len(variants))
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func(self int) {
				defer wg.Done()
				for ctx.Err() == nil {
					v, ownerPos, ok := next(self)
					if !ok {
						return // chunk drained (for this worker)
					}
					var row Row
					var alive bool
					if ownerPos == self {
						row, alive = rt.resolveVariant(ctx, vw, v, path, runModel, schedHdr)
					} else {
						row, alive = rt.resolveStolen(ctx, vw, v, vw.shards[ownerPos].id, vw.shards[self].id, path, runModel, schedHdr)
					}
					if !alive {
						return // client gone
					}
					select {
					case rows <- row:
					case <-ctx.Done():
						return
					}
				}
			}(i)
		}
	}
	// Close the merged stream once every worker is done, so the emit
	// loop below can range to completion even if workers bail early on
	// a cancelled context.
	go func() {
		wg.Wait()
		close(rows)
	}()

	for row := range rows {
		emit(row)
	}
	return ctx.Err() == nil
}

// handleAnalyze serves POST /sweep/analyze: walk the grid exactly
// like /sweep and aggregate ROUTER-side into the same analysis
// document a single process produces — byte-identical for identical
// results, because both ends run the identical fold
// (service.AnalyzeInput + agg.Analyze). Failover keeps the document
// complete across single-shard loss; only a variant no shard could
// serve surfaces as explicit incomplete metadata (failed list,
// analyzed < variants) — never a silently-shrunk frontier that reads
// like the whole design space.
func (rt *Router) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req service.AnalyzeRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	schedHdr, err := rt.identHeader(r, sched.Batch.String())
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	rt.analyzeGrid(w, r, req, schedHdr)
}

// analyzeGrid runs the decoded analysis request — the shared engine
// of POST /sweep/analyze (grid inlined) and POST /sweep/{id}/analyze
// (grid from the stored manifest). Rows fold into metric inputs as
// they complete, so a 100k-variant analysis holds per-variant
// metrics, never the full result bodies.
func (rt *Router) analyzeGrid(w http.ResponseWriter, r *http.Request, req service.AnalyzeRequest, schedHdr http.Header) {
	grid, total, err := service.ResolveSweepGrid(req.SweepRequest, rt.scenarioByName, rt.maxSweepVariants)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if err := service.CheckGridCycleCaps(grid, rt.checkCycleCap); err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	path, runModel, err := sweepEndpoint(req.Model)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	compare := path == "/compare"
	// Reject a bad analysis selector before any backend cost, with the
	// backend's own validation — router and worker accept exactly the
	// same analyses.
	if err := req.Request.Validate(compare); err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := service.SweepID(req.SweepRequest, rt.scenarioByName)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}

	inputs := make([]agg.Input, 0, min(total, sweepChunkSize))
	distinct, complete := rt.collectGrid(r.Context(), grid, -1, path, runModel, schedHdr, func(row Row) {
		inputs = append(inputs, service.AnalyzeInput(compare, row.SweepRow))
	})
	if !complete {
		return // client gone
	}
	doc, err := agg.Analyze(req.Request, compare, service.AggAxes(req.Axes), distinct, inputs)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := json.Marshal(doc)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sweep-Variants", strconv.Itoa(total))
	w.Header().Set(service.SweepIDHeader, id)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// resolveVariant runs one variant against the cluster: the router
// cache first, then the shards in the variant's rendezvous rank
// order, starting at its owner. On each live shard, saturation 503s
// are retried with the backend's own Retry-After as the backoff — the
// honest signal: a deep backlog advertises a long wait, and the
// router paces itself accordingly instead of hammering. A dead shard
// (circuit open, transport error, terminal 503) costs one step down
// the rank order; a served-by-non-owner row carries the Failover tag.
// A deterministic non-503 error (bad spec: 400/500) is NOT failed
// over — every shard would answer identically. The error row exists
// only when every shard refused. ok=false means the client's context
// ended.
func (rt *Router) resolveVariant(ctx context.Context, vw *view, v sweep.Variant, path, runModel string, schedHdr http.Header) (Row, bool) {
	ranks := RankIDs(v.Hash, vw.ids)
	owner := ranks[0]
	row := Row{SweepRow: service.SweepRow{
		Index:  v.Index,
		Name:   v.Spec.Name,
		Hash:   v.Hash,
		Params: v.Params,
	}, Shard: owner}
	key := resultKeyFor(path, runModel, v.Hash)
	if cached, ok := rt.cacheLookup(key); ok {
		row.Cache = routerHit
		row.Result = json.RawMessage(cached)
		return row, true
	}
	reqBody, err := json.Marshal(service.RunRequest{Spec: &v.Spec, Model: runModel})
	if err != nil {
		row.Error = err.Error()
		return row, true
	}
	lastErr := ""
	for _, id := range ranks {
		if ctx.Err() != nil {
			return Row{}, false
		}
		sh := vw.byID[id]
		if !sh.breaker.allow() {
			lastErr = fmt.Sprintf("shard %d (%s): circuit open", id, sh.client.Base)
			continue
		}
	attempt:
		for {
			status, hdr, body, err := rt.post(ctx, sh, path, reqBody, schedHdr)
			if err != nil {
				if ctx.Err() != nil {
					return Row{}, false
				}
				sh.breaker.failure()
				lastErr = fmt.Sprintf("shard %d (%s) unreachable: %v", id, sh.client.Base, err)
				break attempt // next-ranked shard
			}
			switch {
			case status == http.StatusOK:
				sh.breaker.success()
				row.Shard = id
				if id != owner {
					row.Failover = fmt.Sprintf("%d->%d", owner, id)
					vw.byID[owner].failovers.Inc()
				}
				row.Cache = hdr.Get("X-Cache")
				row.Result = json.RawMessage(body)
				rt.cacheFill(key, body)
				return row, true
			case status == http.StatusServiceUnavailable && hdr.Get("X-Terminal") == "":
				// Saturated, not shutting down: a LIVE backend asking for
				// patience — honor the advertised wait (the shared clamp —
				// service.RetryWait — also covers the backend's own
				// in-process sweep retries, so the two paths cannot
				// drift), and stay on this shard: its queue drains, and
				// failing over a mere burst would shed the owner's warm
				// cache for nothing.
				sh.breaker.success()
				sh.retries.Inc()
				if !service.SleepRetryAfter(ctx, hdr.Get("Retry-After")) {
					return Row{}, false
				}
			case status == http.StatusServiceUnavailable:
				// Terminal: the backend is going away.
				sh.breaker.failure()
				lastErr = fmt.Sprintf("shard %d (%s) shutting down", id, sh.client.Base)
				break attempt // next-ranked shard
			default:
				// A deterministic error (bad spec, simulation failure):
				// every shard computes the same answer, so failing over
				// would just repeat it more expensively.
				sh.breaker.success()
				row.Shard = id
				var e struct {
					Error string `json:"error"`
				}
				if json.Unmarshal(body, &e) == nil && e.Error != "" {
					row.Error = e.Error
				} else {
					row.Error = fmt.Sprintf("status %d", status)
				}
				return row, true
			}
		}
	}
	row.Error = fmt.Sprintf("no live shard for variant (owner %d): %s", owner, lastErr)
	return row, true
}

// resolveStolen computes one variant on a shard that is NOT its
// owner — the work-stealing path. Before the thief spends a worker,
// the router cache and then the owner's store are probed (GET
// /results?key=...): a queued variant already held — a warm replay
// stuck behind a deep backlog — is answered from the held bytes as a
// cache hit, untagged, because nothing was stolen. Only a genuine
// miss is simulated on the thief, driven exactly like an owner would
// be (saturation 503s wait out Retry-After on the thief; a
// deterministic error is final); on success the row is tagged Stolen
// and the result body is written back to the owner's store, so
// ownership-based cache placement holds even though another shard
// simulated. A dead or terminal thief sends the variant down the
// ordinary rank-walk (resolveVariant) — stealing may change who
// computes, never whether the row appears.
func (rt *Router) resolveStolen(ctx context.Context, vw *view, v sweep.Variant, owner, thief int, path, runModel string, schedHdr http.Header) (Row, bool) {
	key := resultKeyFor(path, runModel, v.Hash)
	if cached, ok := rt.cacheLookup(key); ok {
		return Row{SweepRow: service.SweepRow{
			Index:  v.Index,
			Name:   v.Spec.Name,
			Hash:   v.Hash,
			Params: v.Params,
			Cache:  routerHit,
			Result: json.RawMessage(cached),
		}, Shard: owner}, true
	}
	if row, ok, done := rt.probeOwner(ctx, vw, v, owner, path, runModel); done {
		return Row{}, false
	} else if ok {
		return row, true
	}
	sh := vw.byID[thief]
	if !sh.breaker.allow() {
		return rt.resolveVariant(ctx, vw, v, path, runModel, schedHdr)
	}
	row := Row{SweepRow: service.SweepRow{
		Index:  v.Index,
		Name:   v.Spec.Name,
		Hash:   v.Hash,
		Params: v.Params,
	}, Shard: thief}
	reqBody, err := json.Marshal(service.RunRequest{Spec: &v.Spec, Model: runModel})
	if err != nil {
		row.Error = err.Error()
		return row, true
	}
	for {
		status, hdr, body, err := rt.post(ctx, sh, path, reqBody, schedHdr)
		if err != nil {
			if ctx.Err() != nil {
				return Row{}, false
			}
			sh.breaker.failure()
			return rt.resolveVariant(ctx, vw, v, path, runModel, schedHdr)
		}
		switch {
		case status == http.StatusOK:
			sh.breaker.success()
			row.Cache = hdr.Get("X-Cache")
			row.Result = json.RawMessage(body)
			row.Stolen = fmt.Sprintf("%d->%d", owner, thief)
			sh.steals.Inc()
			rt.cacheFill(key, body)
			rt.writeBack(ctx, vw, owner, thief, key, body)
			return row, true
		case status == http.StatusServiceUnavailable && hdr.Get("X-Terminal") == "":
			// The thief itself is saturated: wait it out here rather
			// than bouncing the variant around the cluster.
			sh.breaker.success()
			sh.retries.Inc()
			if !service.SleepRetryAfter(ctx, hdr.Get("Retry-After")) {
				return Row{}, false
			}
		case status == http.StatusServiceUnavailable:
			sh.breaker.failure()
			return rt.resolveVariant(ctx, vw, v, path, runModel, schedHdr)
		default:
			// Deterministic error: every shard answers identically, so
			// the thief's answer IS the answer.
			sh.breaker.success()
			var e struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(body, &e) == nil && e.Error != "" {
				row.Error = e.Error
			} else {
				row.Error = fmt.Sprintf("status %d", status)
			}
			return row, true
		}
	}
}

// probeOwner asks a variant's owner whether it already holds the
// stored result (GET /results?key=...) before a thief re-simulates
// it. hit=true carries an owner-served cache-hit row; done=true means
// the client's context ended mid-probe. Any owner trouble — open
// circuit, transport error, 404, anything unexpected — is a clean
// miss: the probe is an optimization, never a gate, so the steal
// proceeds and correctness rests on the thief as before.
func (rt *Router) probeOwner(ctx context.Context, vw *view, v sweep.Variant, owner int, path, runModel string) (row Row, hit, done bool) {
	key := resultKeyFor(path, runModel, v.Hash)
	if key == "" {
		return Row{}, false, false
	}
	ow := vw.byID[owner]
	if !ow.breaker.allow() {
		return Row{}, false, false
	}
	probe, cancel := context.WithTimeout(ctx, healthTimeout)
	status, _, body, err := ow.client.Do(probe, http.MethodGet, "/results?key="+url.QueryEscape(key), nil, nil)
	cancel()
	if err != nil {
		if ctx.Err() != nil {
			return Row{}, false, true
		}
		ow.breaker.failure()
		return Row{}, false, false
	}
	ow.breaker.success()
	if status != http.StatusOK {
		return Row{}, false, false
	}
	rt.cacheFill(key, body)
	return Row{SweepRow: service.SweepRow{
		Index:  v.Index,
		Name:   v.Spec.Name,
		Hash:   v.Hash,
		Params: v.Params,
		Cache:  "hit",
		Result: json.RawMessage(body),
	}, Shard: owner}, true, false
}

// writeBack posts a stolen result to the owner's POST /results under
// the content-addressed key the owner's own simulation would have
// persisted it under. Failure is dropped silently: the write-back is
// cache placement, not correctness — a dead owner repopulates from
// replay when it returns.
func (rt *Router) writeBack(ctx context.Context, vw *view, owner, thief int, key string, body []byte) {
	if key == "" {
		return
	}
	if rt.attemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.attemptTimeout)
		defer cancel()
	}
	vw.byID[owner].client.Do(ctx, http.MethodPost, "/results", body, http.Header{
		"Content-Type":          {"application/json"},
		service.ResultKeyHeader: {key},
		service.StolenHeader:    {fmt.Sprintf("%d->%d", owner, thief)},
	})
}

// fetchManifest walks the sweep id's rendezvous rank order (under the
// current topology) for a stored manifest: any live shard holding a
// valid copy answers, 404s and dead shards are walked past, and a
// corrupt copy is skipped the same way — the caller's fallback (404:
// re-POST the grid) is the honest one, never a guess.
func (rt *Router) fetchManifest(ctx context.Context, id string) (*service.SweepManifest, bool) {
	vw := rt.view()
	for _, sid := range RankIDs(id, vw.ids) {
		sh := vw.byID[sid]
		if !sh.breaker.allow() {
			continue
		}
		probe, cancel := context.WithTimeout(ctx, healthTimeout)
		status, _, body, err := sh.client.Do(probe, http.MethodGet, "/sweep/"+id, nil, nil)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return nil, false
			}
			sh.breaker.failure()
			continue
		}
		sh.breaker.success()
		if status != http.StatusOK {
			continue
		}
		var st service.SweepStatus
		if json.Unmarshal(body, &st) != nil {
			continue
		}
		m := st.SweepManifest
		if m.Version != 1 || m.ID != id || m.Total <= 0 {
			continue
		}
		m.Normalize()
		return &m, true
	}
	return nil, false
}

// loadOrNewManifest resumes the cluster's stored manifest when its
// grid size still matches, otherwise starts a fresh one — the router
// twin of the backend's loadOrNewManifest.
func (rt *Router) loadOrNewManifest(ctx context.Context, id string, req service.SweepRequest, total int) *service.SweepManifest {
	if m, ok := rt.fetchManifest(ctx, id); ok && m.Total == total {
		return m
	}
	return &service.SweepManifest{
		Version: 1, ID: id, Request: req, Total: total,
		Done: sweep.NewBitset(total), Failed: sweep.NewBitset(total),
	}
}

// checkpointManifest writes the manifest through to the first live
// shard in the sweep id's rank order (PUT /sweep/{id} merge-persists
// shard-side, so concurrent streams and routers union their progress
// instead of clobbering). The context is detached from the request:
// the final checkpoint after a client disconnect is precisely the
// one its resume needs. Total failure leaves the previous checkpoint
// standing — bookkeeping lost, correctness untouched.
func (rt *Router) checkpointManifest(m *service.SweepManifest) {
	body, err := json.Marshal(m)
	if err != nil {
		return
	}
	vw := rt.view()
	for _, sid := range RankIDs(m.ID, vw.ids) {
		sh := vw.byID[sid]
		if !sh.breaker.allow() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), healthTimeout)
		status, _, _, err := sh.client.Do(ctx, http.MethodPut, "/sweep/"+m.ID, body, http.Header{"Content-Type": {"application/json"}})
		cancel()
		if err != nil {
			sh.breaker.failure()
			continue
		}
		sh.breaker.success()
		// 204 is stored; any 4xx is deterministic and would repeat on
		// every shard — either way this checkpoint is settled.
		_ = status
		return
	}
}

// handleSweepStatus serves GET /sweep/{id}: the stored manifest with
// derived progress counts, fetched from the first live shard holding
// a copy.
func (rt *Router) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := r.PathValue("id")
	m, ok := rt.fetchManifest(r.Context(), id)
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown sweep %q (re-POST the grid to /sweep to rebuild it)", id)
		return
	}
	body, err := json.Marshal(m.Status())
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(service.SweepIDHeader, id)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handleSweepResume serves GET /sweep/{id}/resume?after=N: the stored
// sweep's cluster stream restricted to variants with Index > N. Same
// replay-not-delta semantics as the backend: every variant past the
// offset streams again regardless of manifest bits (done ones at
// cache speed), so duplicate offsets are idempotent and a lost
// checkpoint can never turn into a silent gap.
func (rt *Router) handleSweepResume(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	after := -1
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, "after=%q is not an integer", q)
			return
		}
		after = n
	}
	if after < -1 {
		after = -1
	}
	id := r.PathValue("id")
	m, ok := rt.fetchManifest(r.Context(), id)
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown sweep %q (re-POST the grid to /sweep to rebuild it)", id)
		return
	}
	rt.sweepResumes.Inc()
	schedHdr, err := rt.identHeader(r, sched.Batch.String())
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	rt.streamSweep(w, r, m.Request, after, schedHdr)
}

// handleSweepStoredAnalyze serves POST /sweep/{id}/analyze: the
// analysis selector in the body applied to the STORED sweep's grid.
// A completed sweep re-analyzes with zero simulations — every
// variant is a shard cache hit — and the document is byte-identical
// to POST /sweep/analyze with the grid inlined, because both run the
// same collect-and-aggregate path.
func (rt *Router) handleSweepStoredAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var sel agg.Request
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sel); err != nil {
		writeError(w, r, http.StatusBadRequest, "parsing analysis selector: %v", err)
		return
	}
	id := r.PathValue("id")
	m, ok := rt.fetchManifest(r.Context(), id)
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown sweep %q (re-POST the grid to /sweep to rebuild it)", id)
		return
	}
	schedHdr, err := rt.identHeader(r, sched.Batch.String())
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	rt.analyzeGrid(w, r, service.AnalyzeRequest{SweepRequest: m.Request, Request: sel}, schedHdr)
}

// The frontend router: owns the public simd API and fans requests out
// to the backend shards that own them. /run and /compare forward the
// request body verbatim to the spec's owner (responses — bodies,
// X-Cache, X-Spec-Hash, Retry-After — pass through untouched, so a
// sharded cluster is byte-identical to a single process); /sweep
// expands the grid here, routes every variant to its owner, and
// interleaves the per-shard results into one completion-ordered
// NDJSON stream ending in a terminal summary row. A dead shard costs
// exactly its own variants — explicit error rows, never a hang or a
// silent truncation.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// Options configures a Router.
type Options struct {
	// Backends are the worker base URLs in shard order; the slice
	// index IS the shard identity the rendezvous hash assigns against,
	// so the order must be stable across router restarts (the
	// supervisor and -backends both guarantee this).
	Backends []string
	// HTTP is the transport used for every backend call; nil selects
	// http.DefaultClient.
	HTTP *http.Client
	// SweepConcurrency bounds in-flight sweep variants per shard
	// (<= 0: probe the shard's /healthz for its worker count, falling
	// back to defaultSweepConcurrency). The backend's bounded queue
	// stays the real limiter — this only keeps the router from
	// provoking gratuitous 503 churn.
	SweepConcurrency int
}

// defaultSweepConcurrency is the per-shard variant fan-out used when
// a backend's worker count cannot be probed.
const defaultSweepConcurrency = 4

// healthTimeout bounds one backend /healthz probe; liveness must not
// hang on a dead peer.
const healthTimeout = 2 * time.Second

// shardState is one backend as the router sees it.
type shardState struct {
	index  int
	client *service.Client
	conc   int
}

// Router is the sharded frontend. It is stateless apart from its
// backend list: every routing decision derives from the request's
// spec hash, so any number of router replicas agree.
type Router struct {
	shards         []*shardState
	mux            *http.ServeMux
	scenariosBody  []byte
	scenarioByName map[string]spec.Spec
}

// New builds a router over the given backends. Construction never
// requires the backends to be up — a cluster must boot in any order —
// but live backends are probed once for their worker counts to size
// the sweep fan-out.
func New(opt Options) (*Router, error) {
	if len(opt.Backends) == 0 {
		return nil, errors.New("shard: no backends")
	}
	rt := &Router{}
	rt.scenariosBody, rt.scenarioByName = service.ScenarioLibrary()
	for i, base := range opt.Backends {
		base = strings.TrimSuffix(strings.TrimSpace(base), "/")
		if base == "" {
			return nil, fmt.Errorf("shard: backend %d has an empty URL", i)
		}
		// Reject malformed and scheme-less URLs at construction: a
		// "localhost:8080" (missing http://) parses as scheme
		// "localhost" and would boot cleanly only to 502 every request
		// with an error blaming the network instead of the flag.
		u, err := url.Parse(base)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("shard: backend %d URL %q must be http(s)://host[:port]", i, base)
		}
		rt.shards = append(rt.shards, &shardState{
			index:  i,
			client: &service.Client{Base: base, HTTP: opt.HTTP},
			conc:   opt.SweepConcurrency,
		})
	}
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		if sh.conc > 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shardState) {
			defer wg.Done()
			sh.conc = defaultSweepConcurrency
			ctx, cancel := context.WithTimeout(context.Background(), healthTimeout)
			defer cancel()
			if h, err := sh.client.FetchHealth(ctx); err == nil && h.Workers > 0 {
				sh.conc = h.Workers
			}
		}(sh)
	}
	wg.Wait()
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) { rt.handleProxy(w, r, "/run") })
	rt.mux.HandleFunc("/compare", func(w http.ResponseWriter, r *http.Request) { rt.handleProxy(w, r, "/compare") })
	rt.mux.HandleFunc("/sweep", rt.handleSweep)
	rt.mux.HandleFunc("/sweep/analyze", rt.handleAnalyze)
	rt.mux.HandleFunc("/scenarios", rt.handleScenarios)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	return rt, nil
}

// Shards returns the number of backends.
func (rt *Router) Shards() int { return len(rt.shards) }

// Handler returns the HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// maxBodyBytes mirrors the backend's request-body bound.
const maxBodyBytes = 1 << 20

// errorBody renders the service's error-response shape.
func errorBody(format string, args ...any) []byte {
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: fmt.Sprintf(format, args...)})
	return body
}

// writeError sends a JSON error.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(errorBody(format, args...))
}

// resolveHash decodes a /run-shaped body far enough to route it: the
// spec's content hash. Validation beyond that stays on the backend —
// the router forwards the original bytes, so the backend's strict
// decode sees exactly what the client sent.
func (rt *Router) resolveHash(body []byte) (string, error) {
	var req service.RunRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return "", fmt.Errorf("parsing request: %w", err)
	}
	var sp spec.Spec
	switch {
	case req.Spec != nil && req.Scenario != "":
		return "", errors.New("request has both spec and scenario; send one")
	case req.Spec != nil:
		sp = *req.Spec
	case req.Scenario != "":
		found, ok := rt.scenarioByName[req.Scenario]
		if !ok {
			return "", fmt.Errorf("unknown scenario %q", req.Scenario)
		}
		sp = found
	default:
		return "", errors.New("request needs a spec or a scenario name")
	}
	return sp.Hash()
}

// proxyHeaders is the response-header allowlist forwarded from a
// backend: the cache/replay contract plus backpressure.
var proxyHeaders = []string{"Content-Type", "X-Cache", "X-Spec-Hash", "Retry-After", "X-Terminal"}

// handleProxy serves POST /run and /compare: hash, pick the owner,
// forward verbatim, relay the response. The router adds exactly one
// header of its own (X-Shard) so operators can see placement.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request, path string) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	hash, err := rt.resolveHash(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sh := rt.shards[Owner(hash, len(rt.shards))]
	status, hdr, respBody, err := sh.client.PostJSON(r.Context(), path, body)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nothing to say and no one to say it to
		}
		w.Header().Set("X-Shard", strconv.Itoa(sh.index))
		writeError(w, http.StatusBadGateway, "shard %d (%s) unreachable: %v", sh.index, sh.client.Base, err)
		return
	}
	for _, name := range proxyHeaders {
		if v := hdr.Get(name); v != "" {
			w.Header().Set(name, v)
		}
	}
	w.Header().Set("X-Shard", strconv.Itoa(sh.index))
	w.WriteHeader(status)
	w.Write(respBody)
}

// handleScenarios serves GET /scenarios — the same library every
// backend derives from the same spec data.
func (rt *Router) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(rt.scenariosBody)
}

// ShardHealth is one backend's slot in the aggregated /healthz.
type ShardHealth struct {
	Index int    `json:"index"`
	Addr  string `json:"addr"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Health is the backend's own /healthz body, absent when the
	// shard is unreachable.
	Health *service.Health `json:"health,omitempty"`
}

// ClusterHealth is the router's GET /healthz body: per-shard liveness
// and occupancy plus cluster totals. OK is the conjunction — a
// cluster with a dead shard is degraded (its keyspace slice fails),
// and monitoring must see that even while the healthy shards serve.
type ClusterHealth struct {
	OK     bool          `json:"ok"`
	Shards []ShardHealth `json:"shards"`
	// Workers/QueueCap/Queued/InFlight are summed over live shards.
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_capacity"`
	Queued   int `json:"queued"`
	InFlight int `json:"in_flight"`
	// RetryAfter is the worst (largest) live-shard backoff — the
	// honest cluster-wide pacing hint, since a request may land on the
	// busiest shard.
	RetryAfter int `json:"retry_after"`
	service.Counters
}

// FetchClusterHealth probes every backend concurrently and aggregates.
func (rt *Router) FetchClusterHealth(ctx context.Context) ClusterHealth {
	out := ClusterHealth{OK: true, Shards: make([]ShardHealth, len(rt.shards))}
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			probe, cancel := context.WithTimeout(ctx, healthTimeout)
			defer cancel()
			h, err := sh.client.FetchHealth(probe)
			if err != nil {
				out.Shards[i] = ShardHealth{Index: i, Addr: sh.client.Base, Error: err.Error()}
				return
			}
			out.Shards[i] = ShardHealth{Index: i, Addr: sh.client.Base, OK: h.OK, Health: &h}
		}(i, sh)
	}
	wg.Wait()
	for _, s := range out.Shards {
		if !s.OK || s.Health == nil {
			out.OK = false
			continue
		}
		h := s.Health
		out.Workers += h.Workers
		out.QueueCap += h.QueueCap
		out.Queued += h.Queued
		out.InFlight += h.InFlight
		if h.RetryAfter > out.RetryAfter {
			out.RetryAfter = h.RetryAfter
		}
		out.Jobs += h.Jobs
		out.CacheHits += h.CacheHits
		out.Coalesced += h.Coalesced
		out.Rejected += h.Rejected
		out.StoreHits += h.StoreHits
	}
	return out
}

// handleHealthz serves the aggregated GET /healthz. The status code
// stays 200 even when degraded — the body's ok field carries the
// verdict, and a load balancer that should stop routing to a
// *router* (rather than a shard) has the per-shard detail to decide.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	body, err := json.Marshal(rt.FetchClusterHealth(r.Context()))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// Row is one NDJSON data line of the router's /sweep stream: the
// backend's row plus the shard that owned the variant. Shard is
// always present (0 is a real shard), which is why this is a distinct
// wire type rather than an omitempty field on the backend row.
type Row struct {
	service.SweepRow
	Shard int `json:"shard"`
}

// sweepEndpoint maps the request's model selector onto the per-variant
// backend endpoint, mirroring the backend's own model switch.
func sweepEndpoint(model string) (path, runModel string, err error) {
	switch model {
	case "", "tl", "tlm", "rtl":
		return "/run", model, nil
	case "compare":
		return "/compare", "", nil
	}
	return "", "", fmt.Errorf("unknown model %q (want tl, rtl or compare)", model)
}

// handleSweep serves POST /sweep: expand the grid once, route each
// variant to its owning shard as an individual /run (or /compare)
// call, and merge the results into one completion-ordered stream.
// Per-variant forwarding — rather than forwarding sub-grids — is what
// lets every variant share the backend's full cache/coalescing path
// with direct requests, and keeps a dead shard's blast radius to
// exactly the variants it owns.
func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req service.SweepRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	// The backend's own expansion logic: router and worker accept
	// exactly the same grids, by construction.
	variants, err := service.ExpandSweepRequest(req, rt.scenarioByName)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	path, runModel, err := sweepEndpoint(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The stream is committed: from here every failure is a row, and
	// completion is the terminal summary line.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Variants", strconv.Itoa(len(variants)))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)

	emitted, errored := 0, 0
	complete := rt.collectRows(r.Context(), variants, path, runModel, func(row Row) {
		enc.Encode(row)
		if flusher != nil {
			flusher.Flush()
		}
		emitted++
		if row.Error != "" {
			errored++
		}
	})
	if !complete {
		// Client gone mid-merge: the stream is truncated and must read
		// as such — no terminal row.
		return
	}
	enc.Encode(service.SweepSummary{Done: true, Rows: emitted, Errors: errored})
	if flusher != nil {
		flusher.Flush()
	}
}

// collectRows routes every variant to its owning shard and invokes
// emit — always from this goroutine — once per variant in completion
// order. It is the one fan-out engine behind both the streaming
// /sweep handler and /sweep/analyze, so the two endpoints share
// per-shard concurrency, retry semantics and dead-shard behavior.
// Returns false when ctx ended first — the emitted rows are then a
// subset of the grid.
func (rt *Router) collectRows(ctx context.Context, variants []sweep.Variant, path, runModel string, emit func(Row)) bool {
	// Partition the grid: each variant to its owner's work list.
	perShard := make([][]sweep.Variant, len(rt.shards))
	for _, v := range variants {
		owner := Owner(v.Hash, len(rt.shards))
		perShard[owner] = append(perShard[owner], v)
	}

	rows := make(chan Row)
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		work := perShard[i]
		if len(work) == 0 {
			continue
		}
		// dead is per-sweep state: the first transport failure fails
		// this sweep's remaining variants on the shard immediately
		// (fast explicit errors, no per-variant timeout crawl), while
		// the next sweep re-probes — a respawned shard serves again.
		dead := &atomic.Bool{}
		queue := make(chan sweep.Variant)
		workers := min(sh.conc, len(work))
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func(sh *shardState) {
				defer wg.Done()
				for v := range queue {
					row, ok := rt.resolveVariant(ctx, sh, dead, v, path, runModel)
					if !ok {
						return // client gone
					}
					select {
					case rows <- row:
					case <-ctx.Done():
						return
					}
				}
			}(sh)
		}
		wg.Add(1)
		go func(work []sweep.Variant) {
			defer wg.Done()
			defer close(queue)
			for _, v := range work {
				select {
				case queue <- v:
				case <-ctx.Done():
					return
				}
			}
		}(work)
	}
	// Close the merged stream once every shard worker is done, so the
	// emit loop below can range to completion even if workers bail
	// early on a cancelled context.
	go func() {
		wg.Wait()
		close(rows)
	}()

	for row := range rows {
		emit(row)
	}
	return ctx.Err() == nil
}

// handleAnalyze serves POST /sweep/analyze: expand the grid once, fan
// the variants out per-owner exactly like /sweep, and aggregate
// ROUTER-side into the same analysis document a single process
// produces — byte-identical for identical results, because both ends
// run the identical service.AnalyzeRows path. A dead shard's variants
// arrive as error rows and surface in the document as explicit
// incomplete metadata (failed list, analyzed < variants) — never a
// silently-shrunk frontier that reads like the whole design space.
func (rt *Router) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req service.AnalyzeRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	variants, err := service.ExpandSweepRequest(req.SweepRequest, rt.scenarioByName)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	path, runModel, err := sweepEndpoint(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	compare := path == "/compare"
	// Reject a bad analysis selector before any backend cost, with the
	// backend's own validation — router and worker accept exactly the
	// same analyses.
	if err := req.Request.Validate(compare); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	rows := make([]service.SweepRow, 0, len(variants))
	if !rt.collectRows(r.Context(), variants, path, runModel, func(row Row) {
		rows = append(rows, row.SweepRow)
	}) {
		return // client gone
	}
	doc, err := service.AnalyzeRows(req.Request, compare, req.Axes, len(variants), rows)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := json.Marshal(doc)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sweep-Variants", strconv.Itoa(len(variants)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// resolveVariant runs one variant against its owning shard, retrying
// saturation 503s with the backend's own Retry-After as the backoff —
// the honest signal: a deep backlog advertises a long wait, and the
// router paces itself accordingly instead of hammering. ok=false
// means the client's context ended.
func (rt *Router) resolveVariant(ctx context.Context, sh *shardState, dead *atomic.Bool, v sweep.Variant, path, runModel string) (Row, bool) {
	row := Row{SweepRow: service.SweepRow{
		Index:  v.Index,
		Name:   v.Spec.Name,
		Hash:   v.Hash,
		Params: v.Params,
	}, Shard: sh.index}
	reqBody, err := json.Marshal(service.RunRequest{Spec: &v.Spec, Model: runModel})
	if err != nil {
		row.Error = err.Error()
		return row, true
	}
	for {
		if dead.Load() {
			row.Error = fmt.Sprintf("shard %d (%s) is down", sh.index, sh.client.Base)
			return row, true
		}
		status, hdr, body, err := sh.client.PostJSON(ctx, path, reqBody)
		if err != nil {
			if ctx.Err() != nil {
				return Row{}, false
			}
			dead.Store(true)
			row.Error = fmt.Sprintf("shard %d (%s) unreachable: %v", sh.index, sh.client.Base, err)
			return row, true
		}
		switch {
		case status == http.StatusOK:
			row.Cache = hdr.Get("X-Cache")
			row.Result = json.RawMessage(body)
			return row, true
		case status == http.StatusServiceUnavailable && hdr.Get("X-Terminal") == "":
			// Saturated, not shutting down: honor the advertised wait
			// (the shared clamp — service.RetryWait — also covers the
			// backend's own in-process sweep retries, so the two paths
			// cannot drift).
			if !service.SleepRetryAfter(ctx, hdr.Get("Retry-After")) {
				return Row{}, false
			}
		default:
			var e struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(body, &e) == nil && e.Error != "" {
				row.Error = e.Error
			} else {
				row.Error = fmt.Sprintf("status %d", status)
			}
			return row, true
		}
	}
}

package spec

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/config"
)

// specOf returns a small valid two-master spec for mutation tests.
func specOf() Spec {
	return Spec{
		SpecVersion: Version,
		Name:        "test/basic",
		Params:      config.Default(2),
		Masters: []GenSpec{
			{Kind: KindSequential, Base: 0x0000, Beats: 8, Count: 10, Gap: 2},
			{Kind: KindStream, Base: 0x8000, Beats: 4, Period: 50, Count: 10},
		},
	}
}

func TestDecodeEncodeCanonical(t *testing.T) {
	s := specOf()
	c1, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode the indented rendering: same canonical bytes.
	ind, err := s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Decode(ind)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("canonical bytes differ:\n%s\n%s", c1, c2)
	}
	h1, _ := s.Hash()
	h2, _ := s2.Hash()
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hash unstable: %q vs %q", h1, h2)
	}
}

func TestDecodeStrictness(t *testing.T) {
	base, _ := specOf().Canonical()
	cases := []struct {
		name string
		doc  string
	}{
		{"unknown field", `{"version":1,"name":"x","bogus":3,"params":{},"masters":[]}`},
		{"trailing data", string(base) + `{"again":true}`},
		{"wrong version", `{"version":99,"name":"x","params":{},"masters":[]}`},
		{"not json", `{nope`},
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := Decode(base); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestHashDistinguishesSpecs(t *testing.T) {
	a := specOf()
	b := specOf()
	b.Masters[0].Gap = 3
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha == hb {
		t.Fatal("distinct specs share a hash")
	}
}

func TestValidateAcceptsLibrary(t *testing.T) {
	for _, s := range Scenarios() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	for _, s := range []Spec{
		AblationSpec(8, 0), SaturatingSpec(8, 0), PagePolicySpec(true, 0),
		BusWidthSpec(8, 0), InterleavingSpec(true, 0),
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"bad version", func(s *Spec) { s.SpecVersion = 2 }, "version"},
		{"no name", func(s *Spec) { s.Name = "" }, "name required"},
		{"master count mismatch", func(s *Spec) { s.Masters = s.Masters[:1] }, "descriptors"},
		{"zero masters", func(s *Spec) { s.Params.Masters = nil; s.Masters = nil }, "master required"},
		{"unknown kind", func(s *Spec) { s.Masters[0].Kind = "fancy" }, "unknown generator kind"},
		{"missing kind", func(s *Spec) { s.Masters[0].Kind = "" }, "kind required"},
		{"zero count", func(s *Spec) { s.Masters[0].Count = 0 }, "count"},
		{"bad beats", func(s *Spec) { s.Masters[0].Beats = 0 }, "beats"},
		{"overlong burst", func(s *Spec) { s.Masters[0].Beats = 32 }, "beats"},
		{"params max_cycles", func(s *Spec) { s.Params.MaxCycles = 1000 }, "max_cycles"},
		{"unbounded max_cycles", func(s *Spec) { s.MaxCycles = 1 << 40 }, "max_cycles"},
		{"unbounded count", func(s *Spec) { s.Masters[0].Count = MaxCount + 1 }, "count"},
		{"stream period", func(s *Spec) { s.Masters[1].Period = 0 }, "period"},
		{"qos out of range", func(s *Spec) {
			s.Params.Masters[0].RealTime = true
			s.Params.Masters[0].QoSObjective = 1 << 40
		}, "objective"},
		{"rt without objective", func(s *Spec) { s.Params.Masters[0].RealTime = true }, "objective"},
		{"overlapping ranges", func(s *Spec) { s.Masters[1].Base = 0x0004 }, "overlapping"},
	}
	for _, c := range cases {
		s := specOf()
		c.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestValidateCollectsAllProblems(t *testing.T) {
	s := specOf()
	s.Name = ""
	s.Masters[0].Kind = "fancy"
	s.Params.BusBytes = 3
	err := s.Validate()
	if err == nil {
		t.Fatal("accepted")
	}
	for _, want := range []string{"name required", "fancy", "bus width"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q misses %q", err, want)
		}
	}
}

func TestRandomGeneratorsOverlapByWindow(t *testing.T) {
	s := specOf()
	s.Masters[0] = GenSpec{Kind: KindRandom, Seed: 1, Base: 0x0000, WindowBytes: 1 << 16, MaxBeats: 8, Count: 10}
	s.Masters[1] = GenSpec{Kind: KindStream, Base: 0x8000, Beats: 4, Period: 50, Count: 10}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("window overlap not caught: %v", err)
	}
	s.Masters[1].Base = 1 << 16 // just past the window
	if err := s.Validate(); err != nil {
		t.Fatalf("disjoint window rejected: %v", err)
	}
}

func TestStrayFieldsRejected(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"gap on stream", func(s *Spec) { s.Masters[1].Gap = 5 }, `"gap"`},
		{"seed on sequential", func(s *Spec) { s.Masters[0].Seed = 9 }, `"seed"`},
		{"period on sequential", func(s *Spec) { s.Masters[0].Period = 9 }, `"period"`},
		{"reqs on stream", func(s *Spec) { s.Masters[1].Reqs = []ReqSpec{{Beats: 4}} }, `"reqs"`},
	}
	for _, c := range cases {
		s := specOf()
		c.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) || !strings.Contains(err.Error(), "not used by this kind") {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestOverlapBeyondEnumerationCap(t *testing.T) {
	// Master 0 walks contiguously from 0 for 200k transactions,
	// reaching master 1's base (0x400000) long after the enumeration
	// cap; the conservative extent fallback must still catch it.
	s := specOf()
	s.Masters[0] = GenSpec{Kind: KindSequential, Base: 0, Beats: 8, Count: 200000}
	s.Masters[1] = GenSpec{Kind: KindSequential, Base: 0x400000, Beats: 8, Count: 10}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("overlap past the cap not caught: %v", err)
	}
	// Disjoint version: master 1 moved past master 0's full extent.
	s.Masters[1].Base = 200000*8*4 + 64
	if err := s.Validate(); err != nil {
		t.Fatalf("disjoint long walk rejected: %v", err)
	}
}

func TestAllOverlappingPairsReported(t *testing.T) {
	s := specOf()
	s.Params = mustMasters(s.Params, 4)
	s.Masters = []GenSpec{
		{Kind: KindSequential, Base: 0x0000, Beats: 8, Count: 10},
		{Kind: KindSequential, Base: 0x0004, Beats: 8, Count: 10},
		{Kind: KindSequential, Base: 0x90000, Beats: 8, Count: 10},
		{Kind: KindSequential, Base: 0x90004, Beats: 8, Count: 10},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("accepted")
	}
	if !strings.Contains(err.Error(), "masters 0 and 1") || !strings.Contains(err.Error(), "masters 2 and 3") {
		t.Fatalf("not all overlapping pairs reported: %v", err)
	}
}

func TestWideBusSpansWidenFootprints(t *testing.T) {
	// On an 8-byte bus a 4-beat script request touches 32 bytes; a
	// second master 16 bytes past the script address must collide.
	s := specOf()
	s.Params.BusBytes = 8
	s.Params.AddrMap.BeatBytesLog2 = 3
	s.Masters[0] = GenSpec{Kind: KindScript, Reqs: []ReqSpec{{Addr: 0x1000, Beats: 4}}}
	s.Masters[1] = GenSpec{Kind: KindStream, Base: 0x1010, Beats: 4, Period: 50, Count: 4}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("wide-bus overlap not caught: %v", err)
	}
}

func TestWideBusRandomWindowOverlap(t *testing.T) {
	// On an 8-byte bus a random burst aligned near the window end
	// reaches past it by beats*(bus-4) bytes; a master starting right
	// at the window boundary must be flagged.
	s := specOf()
	s.Params.BusBytes = 8
	s.Params.AddrMap.BeatBytesLog2 = 3
	s.Masters[0] = GenSpec{Kind: KindRandom, Seed: 1, Base: 0, WindowBytes: 1 << 12, MaxBeats: 8, Count: 10}
	s.Masters[1] = GenSpec{Kind: KindStream, Base: 1 << 12, Beats: 4, Period: 50, Count: 4}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("wide-bus window spill not caught: %v", err)
	}
	// Past the spill margin (8 beats * 4 extra bytes) it is legal.
	s.Masters[1].Base = 1<<12 + 32
	if err := s.Validate(); err != nil {
		t.Fatalf("disjoint placement rejected: %v", err)
	}
}

func TestDecodeList(t *testing.T) {
	a, _ := specOf().Canonical()
	b, _ := specOf().MarshalIndent()
	single, err := DecodeList(a)
	if err != nil || len(single) != 1 {
		t.Fatalf("single: %v", err)
	}
	arr, err := DecodeList([]byte("[" + string(a) + "," + string(b) + "]"))
	if err != nil || len(arr) != 2 {
		t.Fatalf("array: %v", err)
	}
	if _, err := DecodeList([]byte("[" + string(a) + "] trailing")); err == nil {
		t.Fatal("trailing data accepted")
	}
	if _, err := DecodeList([]byte(`[{"version":9,"name":"x","params":{},"masters":[]}]`)); err == nil {
		t.Fatal("bad version in array accepted")
	}
	if _, err := DecodeList([]byte(`{nope`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestNestedOverlapPairsReported(t *testing.T) {
	// Masters 1 and 2 overlap while both nested inside master 0's
	// wider interval; the sweep must still report the (1,2) pair.
	s := specOf()
	s.Params = mustMasters(s.Params, 3)
	s.Masters = []GenSpec{
		{Kind: KindSequential, Base: 0x0000, Beats: 8, Count: 100}, // [0, 3200)
		{Kind: KindSequential, Base: 0x0100, Beats: 4, Count: 4},   // [256, 320)
		{Kind: KindSequential, Base: 0x0108, Beats: 4, Count: 2},   // [264, 296)
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("accepted")
	}
	for _, want := range []string{"masters 0 and 1", "masters 0 and 2", "masters 1 and 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing pair %q in %v", want, err)
		}
	}
}

// mustMasters resizes the platform to n masters.
func mustMasters(p config.Params, n int) config.Params {
	q := config.Default(n)
	q.BusBytes = p.BusBytes
	return q
}

func TestInterleavedStridesPassOverlapCheck(t *testing.T) {
	// The A3 workload interleaves two masters' spans without sharing a
	// byte; the footprint check must not false-positive on it.
	if err := InterleavingSpec(true, 0).Validate(); err != nil {
		t.Fatalf("interleaved strides rejected: %v", err)
	}
}

func TestGensBuildFreshGenerators(t *testing.T) {
	s := specOf()
	g1, err := s.Gens()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.Gens()
	if err != nil {
		t.Fatal(err)
	}
	if g1[0] == g2[0] {
		t.Fatal("Gens returned a shared generator")
	}
	// Identical replay: same request stream from both builds.
	for i := 0; i < 10; i++ {
		r1, ok1 := g1[0].Next(0)
		r2, ok2 := g2[0].Next(0)
		if ok1 != ok2 || r1 != r2 {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, r1, r2)
		}
	}
}

func TestScriptRoundTrip(t *testing.T) {
	s := specOf()
	s.Masters[0] = GenSpec{Kind: KindScript, Reqs: []ReqSpec{
		{At: 0, Addr: 0x0000, Beats: 4},
		{At: 10, Addr: 0x0100, Beats: 8, Write: true},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	gens, err := s2.Gens()
	if err != nil {
		t.Fatal(err)
	}
	r, ok := gens[0].Next(0)
	if !ok || r.Addr != 0 || r.Beats != 4 {
		t.Fatalf("script lost: %+v ok=%v", r, ok)
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("seq/read-dominant")
	if err != nil || s.Name != "seq/read-dominant" {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := ByName("no/such"); err == nil {
		t.Fatal("unknown scenario found")
	}
}

func TestTable1SpecsHashesDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, s := range Table1Specs() {
		h, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("scenarios %s and %s share hash %s", prev, s.Name, h)
		}
		seen[h] = s.Name
	}
	if len(seen) != 12 {
		t.Fatalf("want 12 scenarios, got %d", len(seen))
	}
}

func TestCanonicalIsCompactJSON(t *testing.T) {
	b, err := specOf().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), b) {
		t.Fatal("canonical form is not compact")
	}
}

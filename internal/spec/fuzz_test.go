package spec

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// FuzzRoundTrip checks the spec codec invariants on arbitrary
// documents: decode → encode → decode → encode must fix to stable
// canonical bytes and a stable hash, and for valid specs the compiled
// generators must replay a bit-identical request stream across
// builds (identical requests imply identical simulated cycles — the
// kernels are deterministic functions of the request stream).
func FuzzRoundTrip(f *testing.F) {
	for _, s := range Scenarios() {
		b, err := s.Canonical()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		ind, err := s.MarshalIndent()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(ind)
	}
	f.Add([]byte(`{"version":1,"name":"x","params":{"bus_bytes":4,"masters":[{"name":"a"}]},"masters":[{"kind":"sequential","beats":4,"count":3}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return // not a spec; nothing to round-trip
		}
		c1, err := s.Canonical()
		if err != nil {
			t.Skip("unencodable value (e.g. NaN) slipped through decode")
		}
		s2, err := Decode(c1)
		if err != nil {
			t.Fatalf("canonical bytes do not decode: %v\n%s", err, c1)
		}
		c2, err := s2.Canonical()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical bytes unstable:\n%s\n%s", c1, c2)
		}
		h1, err1 := s.Hash()
		h2, err2 := s2.Hash()
		if err1 != nil || err2 != nil || h1 != h2 {
			t.Fatalf("hash unstable: %q (%v) vs %q (%v)", h1, err1, h2, err2)
		}

		if s.Validate() != nil {
			return // invalid specs only need codec stability
		}
		// Compiled workloads must replay identically: drive two
		// independent builds with the same completion-time sequence and
		// require bit-identical requests.
		g1, err := s.Gens()
		if err != nil {
			t.Fatalf("valid spec failed to compile: %v", err)
		}
		g2, err := s2.Gens()
		if err != nil {
			t.Fatalf("round-tripped spec failed to compile: %v", err)
		}
		for m := range g1 {
			var prevDone uint64
			for n := 0; n < 64; n++ {
				r1, ok1 := g1[m].Next(sim.Cycle(prevDone))
				r2, ok2 := g2[m].Next(sim.Cycle(prevDone))
				if ok1 != ok2 || r1 != r2 {
					t.Fatalf("master %d request %d diverges: %+v/%v vs %+v/%v", m, n, r1, ok1, r2, ok2)
				}
				if !ok1 {
					break
				}
				prevDone = uint64(r1.At) + 7 // arbitrary but shared completion model
			}
		}
	})
}

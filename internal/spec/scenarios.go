// The paper's experiment workloads, expressed as declarative specs.
// These used to live only as Go closures in internal/core; as data
// they can be listed, hashed, served over the wire and extended with
// new scenario families without touching simulator code. The core
// harness compiles exactly these specs, so the closure era and the
// spec era produce bit-identical cycle counts (asserted by
// core/spec_equivalence_test.go).

package spec

import (
	"fmt"

	"repro/internal/config"
)

// table1Base returns the Table 1 platform: three named masters, with
// the display master optionally promoted to the RT class.
func table1Base(rtMaster bool) config.Params {
	p := config.Default(3)
	p.Masters[0].Name = "dma0"
	p.Masters[1].Name = "cpu"
	p.Masters[2].Name = "disp"
	if rtMaster {
		p.Masters[2].RealTime = true
		p.Masters[2].QoSObjective = 200
	}
	return p
}

// Table1Specs returns the twelve accuracy-experiment workloads: four
// traffic-pattern families (sequential/DMA, random/CPU-like, bursty,
// real-time stream) in three master-mix variants each (read-dominant,
// write-heavy, RT-mixed). Seeds are fixed: every scenario is
// bit-reproducible, so each spec's hash identifies its result.
func Table1Specs() []Spec {
	mk := func(name string, rt bool, masters ...GenSpec) Spec {
		return Spec{SpecVersion: Version, Name: name, Params: table1Base(rt), Masters: masters}
	}
	return []Spec{
		// Family 1: sequential DMA traffic.
		mk("seq/read-dominant", false,
			GenSpec{Kind: KindSequential, Base: 0x00000, Beats: 8, Count: 150, Gap: 2},
			GenSpec{Kind: KindSequential, Base: 0x80000, Beats: 8, Count: 150, Gap: 4},
			GenSpec{Kind: KindSequential, Base: 0x100000, Beats: 4, Count: 150, Gap: 8},
		),
		mk("seq/write-heavy", false,
			GenSpec{Kind: KindSequential, Base: 0x00000, Beats: 8, Count: 150, WriteEvery: 1},
			GenSpec{Kind: KindSequential, Base: 0x80000, Beats: 4, Count: 150, WriteEvery: 2},
			GenSpec{Kind: KindSequential, Base: 0x100000, Beats: 8, Count: 150, Gap: 4},
		),
		mk("seq/rt-mixed", true,
			GenSpec{Kind: KindSequential, Base: 0x00000, Beats: 16, Count: 150},
			GenSpec{Kind: KindSequential, Base: 0x80000, Beats: 8, Count: 150, WriteEvery: 3},
			GenSpec{Kind: KindStream, Base: 0x100000, Beats: 4, Period: 60, Count: 150},
		),
		// Family 2: random CPU-like traffic.
		mk("rand/read-dominant", false,
			GenSpec{Kind: KindRandom, Seed: 101, Base: 0x00000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.1, MeanGap: 6, Count: 150},
			GenSpec{Kind: KindRandom, Seed: 202, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.1, MeanGap: 10, Count: 150},
			GenSpec{Kind: KindRandom, Seed: 303, Base: 0x100000, WindowBytes: 1 << 16, MaxBeats: 4, WriteFrac: 0.0, MeanGap: 14, Count: 150},
		),
		mk("rand/write-heavy", false,
			GenSpec{Kind: KindRandom, Seed: 404, Base: 0x00000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.7, MeanGap: 4, Count: 150},
			GenSpec{Kind: KindRandom, Seed: 505, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 4, WriteFrac: 0.6, MeanGap: 6, Count: 150},
			GenSpec{Kind: KindRandom, Seed: 606, Base: 0x100000, WindowBytes: 1 << 16, MaxBeats: 8, WriteFrac: 0.5, MeanGap: 10, Count: 150},
		),
		mk("rand/rt-mixed", true,
			GenSpec{Kind: KindRandom, Seed: 707, Base: 0x00000, WindowBytes: 1 << 18, MaxBeats: 16, WriteFrac: 0.3, MeanGap: 5, Count: 150},
			GenSpec{Kind: KindRandom, Seed: 808, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.3, MeanGap: 8, Count: 150},
			GenSpec{Kind: KindStream, Base: 0x100000, Beats: 4, Period: 70, Count: 150},
		),
		// Family 3: bursty on/off traffic.
		mk("burst/read-dominant", false,
			GenSpec{Kind: KindBursty, Base: 0x00000, Beats: 8, BurstTxns: 8, IdleGap: 200, Count: 150},
			GenSpec{Kind: KindBursty, Base: 0x80000, Beats: 8, BurstTxns: 6, IdleGap: 150, Count: 150},
			GenSpec{Kind: KindSequential, Base: 0x100000, Beats: 4, Count: 150, Gap: 10},
		),
		mk("burst/write-heavy", false,
			GenSpec{Kind: KindBursty, Base: 0x00000, Beats: 8, BurstTxns: 8, IdleGap: 150, Count: 150, Write: true},
			GenSpec{Kind: KindBursty, Base: 0x80000, Beats: 4, BurstTxns: 10, IdleGap: 100, Count: 150, Write: true},
			GenSpec{Kind: KindRandom, Seed: 909, Base: 0x100000, WindowBytes: 1 << 16, MaxBeats: 4, WriteFrac: 0.2, MeanGap: 8, Count: 150},
		),
		mk("burst/rt-mixed", true,
			GenSpec{Kind: KindBursty, Base: 0x00000, Beats: 16, BurstTxns: 4, IdleGap: 250, Count: 150},
			GenSpec{Kind: KindBursty, Base: 0x80000, Beats: 8, BurstTxns: 6, IdleGap: 150, Count: 150, Write: true},
			GenSpec{Kind: KindStream, Base: 0x100000, Beats: 8, Period: 90, Count: 150},
		),
		// Family 4: real-time stream dominated traffic.
		mk("stream/read-dominant", true,
			GenSpec{Kind: KindStream, Base: 0x00000, Beats: 8, Period: 50, Count: 150},
			GenSpec{Kind: KindSequential, Base: 0x80000, Beats: 8, Count: 150, Gap: 6},
			GenSpec{Kind: KindStream, Base: 0x100000, Beats: 4, Period: 80, Count: 150},
		),
		mk("stream/write-heavy", true,
			GenSpec{Kind: KindStream, Base: 0x00000, Beats: 8, Period: 60, Count: 150, Write: true},
			GenSpec{Kind: KindSequential, Base: 0x80000, Beats: 8, Count: 150, WriteEvery: 1},
			GenSpec{Kind: KindStream, Base: 0x100000, Beats: 4, Period: 70, Count: 150},
		),
		mk("stream/rt-mixed", true,
			GenSpec{Kind: KindStream, Base: 0x00000, Beats: 16, Period: 120, Count: 150},
			GenSpec{Kind: KindRandom, Seed: 111, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.4, MeanGap: 6, Count: 150},
			GenSpec{Kind: KindStream, Base: 0x100000, Beats: 4, Period: 60, Count: 150},
		),
	}
}

// SpeedSpecs returns the speed-experiment pair: the contended
// three-master mix and the single-master "pure bus performance"
// configuration (paper §4). txns <= 0 selects the default.
func SpeedSpecs(txns int) (multi Spec, single Spec) {
	if txns <= 0 {
		txns = 2000
	}
	multi = Spec{
		SpecVersion: Version, Name: "speed/multi", Params: config.Default(3),
		Masters: []GenSpec{
			{Kind: KindSequential, Base: 0x00000, Beats: 8, Count: txns, WriteEvery: 3, Gap: 90},
			{Kind: KindRandom, Seed: 42, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.3, MeanGap: 110, Count: txns},
			{Kind: KindStream, Base: 0x100000, Beats: 4, Period: 120, Count: txns},
		},
	}
	single = Spec{
		SpecVersion: Version, Name: "speed/single", Params: config.Default(1),
		Masters: []GenSpec{
			{Kind: KindSequential, Base: 0, Beats: 8, Count: 3 * txns, Gap: 100},
		},
	}
	return multi, single
}

// AblationSpec returns the write-heavy contended workload of the
// A1/A2/A4 ablations at the given write-buffer depth.
func AblationSpec(depth, txns int) Spec {
	if txns <= 0 {
		txns = 300
	}
	p := config.Default(3)
	p.WriteBufferDepth = depth
	p.Masters[2].RealTime = true
	p.Masters[2].QoSObjective = 150
	return Spec{
		SpecVersion: Version, Name: "ablation/write-heavy", Params: p,
		Masters: []GenSpec{
			{Kind: KindSequential, Base: 0x00000, Beats: 8, Count: txns, WriteEvery: 1},
			{Kind: KindRandom, Seed: 77, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.6, MeanGap: 3, Count: txns},
			{Kind: KindStream, Base: 0x100000, Beats: 4, Period: 60, Count: txns},
		},
	}
}

// SaturatingSpec returns the no-pacing workload of the A1/A2
// ablations: three back-to-back sequential masters, one write-heavy.
func SaturatingSpec(depth, txns int) Spec {
	if txns <= 0 {
		txns = 300
	}
	p := config.Default(3)
	p.WriteBufferDepth = depth
	return Spec{
		SpecVersion: Version, Name: "ablation/saturating", Params: p,
		Masters: []GenSpec{
			{Kind: KindSequential, Base: 0x00000, Beats: 4, Count: txns},
			{Kind: KindSequential, Base: 0x80000, Beats: 4, Count: txns, WriteEvery: 1},
			{Kind: KindSequential, Base: 0x100000, Beats: 8, Count: txns, WriteEvery: 2},
		},
	}
}

// PagePolicySpec returns the A6 ablation workload: a single master
// thrashing rows within one bank, with think time between
// transactions.
func PagePolicySpec(closed bool, txns int) Spec {
	if txns <= 0 {
		txns = 300
	}
	p := config.Default(1)
	p.BIEnabled = false // isolate the page policy from the hint path
	p.ClosedPage = closed
	rowStride := p.AddrMap.RowBytes() * uint32(p.AddrMap.Banks())
	return Spec{
		SpecVersion: Version, Name: "ablation/pagepolicy", Params: p,
		Masters: []GenSpec{
			{Kind: KindSequential, Base: 0, Beats: 4, Count: txns, Gap: 12, StrideBytes: rowStride},
		},
	}
}

// BusWidthSpec returns the A7 ablation workload: a streaming DMA pair
// on a platform with the given bus width in bytes.
func BusWidthSpec(busBytes, txns int) Spec {
	if txns <= 0 {
		txns = 300
	}
	p := config.Default(2)
	p.BusBytes = busBytes
	switch busBytes {
	case 8:
		p.AddrMap.BeatBytesLog2 = 3
	case 4:
		p.AddrMap.BeatBytesLog2 = 2
	}
	return Spec{
		SpecVersion: Version, Name: "ablation/buswidth", Params: p,
		Masters: []GenSpec{
			{Kind: KindSequential, Base: 0, Beats: 8, Count: txns, BeatBytes: busBytes},
			{Kind: KindSequential, Base: 0x80000, Beats: 8, Count: txns, BeatBytes: busBytes},
		},
	}
}

// InterleavingSpec returns the A3 bank-interleaving workload: two
// masters pinned to different rows of the same banks, each striding a
// full row per transaction. Their address spans interleave without
// sharing a byte — the footprint validator proves it.
func InterleavingSpec(biOn bool, txns int) Spec {
	if txns <= 0 {
		txns = 400
	}
	p := config.Default(2)
	p.BIEnabled = biOn
	rowBytes := p.AddrMap.RowBytes()
	bankStride := rowBytes * uint32(p.AddrMap.Banks()) // next row, same bank
	return Spec{
		SpecVersion: Version, Name: "ablation/interleaving", Params: p,
		Masters: []GenSpec{
			{Kind: KindSequential, Base: 0, Beats: 8, Count: txns, StrideBytes: bankStride},
			{Kind: KindSequential, Base: rowBytes, Beats: 8, Count: txns, StrideBytes: bankStride},
		},
	}
}

// Scenarios returns the named scenario library the simulation service
// lists and accepts by name: the twelve Table 1 scenarios plus the
// speed-experiment pair at default size.
func Scenarios() []Spec {
	ws := Table1Specs()
	multi, single := SpeedSpecs(0)
	return append(ws, multi, single)
}

// ByName returns the library scenario with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("spec: unknown scenario %q", name)
}

// Package spec defines the declarative workload specification: a
// JSON-serializable description of one experiment — platform
// parameters plus one traffic-generator descriptor per master — that
// can be stored, transmitted, hashed and compiled back into the
// generator set that drives both bus models.
//
// Because every simulation in this repository is bit-reproducible
// (fixed seeds, deterministic kernels), a spec fully determines its
// result: two specs with the same content hash produce the same cycle
// counts, beat for beat. That makes the hash a correct cache key,
// which is exactly how the simulation service (internal/service) uses
// it.
//
// Canonical form: a spec's canonical encoding is the compact JSON
// rendering of its decoded Go value, whose struct fields marshal in a
// fixed order with defaulted fields omitted. Encoding is therefore
// stable under decode→encode round trips, and the content hash
// (SHA-256 of the canonical bytes) is independent of the whitespace,
// key order or trailing data of the submitted document.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// Version is the current spec schema version. Decoders reject other
// versions so cached results can never alias across schema changes.
const Version = 1

// Generator kinds accepted in a GenSpec.
const (
	KindSequential = "sequential"
	KindRandom     = "random"
	KindBursty     = "bursty"
	KindStream     = "stream"
	KindScript     = "script"
)

// MaxBurstBeats bounds the per-transaction burst length a spec may
// request: AHB bursts top out at 16 beats (amba.ValidateBurst flags
// longer ones as protocol violations, so a longer "valid" spec would
// simulate to a violation-riddled result).
const MaxBurstBeats = 16

// MaxCount bounds the per-master transaction count and script length.
// Specs reach the simulators through shared services; an unbounded
// count would let one request pin a worker for arbitrary time, which
// turns the service's bounded queue into a denial-of-service lever.
const MaxCount = 1 << 24

// MaxRunCycles bounds the spec-level cycle cap for the same reason.
const MaxRunCycles = 1 << 32

// ReqSpec is one scripted transaction (KindScript only).
type ReqSpec struct {
	// At is the absolute issue floor in cycles.
	At uint64 `json:"at,omitempty"`
	// Addr is the first-beat address.
	Addr uint32 `json:"addr"`
	// Write is the direction.
	Write bool `json:"write,omitempty"`
	// Beats is the burst length.
	Beats int `json:"beats"`
}

// GenSpec describes one master's traffic generator. Kind selects the
// generator type; the remaining fields mirror the corresponding
// internal/traffic generator. Validation rejects fields set on a kind
// that does not consume them: a stray field would change the content
// hash without changing the workload.
type GenSpec struct {
	// Kind is the generator type: sequential, random, bursty, stream
	// or script.
	Kind string `json:"kind"`
	// Name optionally overrides the generator's report label.
	Name string `json:"name,omitempty"`
	// Base is the starting address (all kinds except script).
	Base uint32 `json:"base,omitempty"`
	// Beats is the per-transaction burst length (sequential, bursty,
	// stream).
	Beats int `json:"beats,omitempty"`
	// Count is the number of transactions (all kinds except script).
	Count int `json:"count,omitempty"`
	// Gap is the idle time between transactions (sequential).
	Gap uint64 `json:"gap,omitempty"`
	// WriteEvery makes every n-th transaction a write (sequential).
	WriteEvery int `json:"write_every,omitempty"`
	// WrapBytes wraps the address walk (sequential, stream).
	WrapBytes uint32 `json:"wrap_bytes,omitempty"`
	// StrideBytes overrides the inter-transaction step (sequential).
	StrideBytes uint32 `json:"stride_bytes,omitempty"`
	// BeatBytes is the assumed bus beat width (sequential).
	BeatBytes int `json:"beat_bytes,omitempty"`
	// Seed fixes the pseudo-random sequence (random).
	Seed int64 `json:"seed,omitempty"`
	// WindowBytes bounds the random address window (random).
	WindowBytes uint32 `json:"window_bytes,omitempty"`
	// MaxBeats bounds the random burst length (random).
	MaxBeats int `json:"max_beats,omitempty"`
	// WriteFrac in [0,1] is the fraction of writes (random).
	WriteFrac float64 `json:"write_frac,omitempty"`
	// MeanGap is the mean idle time between transactions (random).
	MeanGap int `json:"mean_gap,omitempty"`
	// BurstTxns is the transactions per active phase (bursty).
	BurstTxns int `json:"burst_txns,omitempty"`
	// IdleGap is the idle time between active phases (bursty).
	IdleGap uint64 `json:"idle_gap,omitempty"`
	// Period is the issue period (stream).
	Period uint64 `json:"period,omitempty"`
	// Write makes the traffic writes instead of reads (bursty, stream).
	Write bool `json:"write,omitempty"`
	// Reqs is the fixed transaction list (script).
	Reqs []ReqSpec `json:"reqs,omitempty"`
}

// Spec is a complete declarative workload: a named platform
// configuration plus one generator descriptor per master.
type Spec struct {
	// SpecVersion is the schema version (must equal Version).
	SpecVersion int `json:"version"`
	// Name labels the workload in reports and scenario listings.
	Name string `json:"name"`
	// Params is the platform configuration.
	Params config.Params `json:"params"`
	// Masters holds one generator descriptor per master port, in port
	// order; len(Masters) must equal len(Params.Masters).
	Masters []GenSpec `json:"masters"`
	// MaxCycles caps the run (0 = the harness default cap).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
}

// Clone returns a deep copy of the spec: mutating the copy's masters,
// platform parameters or script requests never aliases the original.
// Grid engines (internal/sweep) rely on this to derive many variants
// from one base spec.
func (s Spec) Clone() Spec {
	s.Params.Masters = append([]config.MasterCfg(nil), s.Params.Masters...)
	masters := append([]GenSpec(nil), s.Masters...)
	for i := range masters {
		masters[i].Reqs = append([]ReqSpec(nil), masters[i].Reqs...)
	}
	s.Masters = masters
	return s
}

// Decode parses a spec from JSON. The decoder is strict: unknown
// fields, trailing data and schema-version mismatches are errors, so
// a typo'd field name cannot silently produce a default-valued (and
// differently hashed) workload.
func Decode(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	if err := checkEOF(dec); err != nil {
		return Spec{}, err
	}
	if s.SpecVersion != Version {
		return Spec{}, fmt.Errorf("spec: unsupported version %d (want %d)", s.SpecVersion, Version)
	}
	return s, nil
}

// checkEOF rejects trailing content after the decoded document.
func checkEOF(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("spec: trailing data after document")
	}
	return nil
}

// DecodeList parses one spec or an array of specs from JSON, with the
// same strictness as Decode (unknown fields, trailing data and
// version mismatches are errors in both forms).
func DecodeList(data []byte) ([]Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var specs []Spec
	if err := dec.Decode(&specs); err != nil {
		single, serr := Decode(data)
		if serr != nil {
			return nil, fmt.Errorf("spec: neither a spec array (%v) nor a spec (%w)", err, serr)
		}
		return []Spec{single}, nil
	}
	if err := checkEOF(dec); err != nil {
		return nil, err
	}
	for i, s := range specs {
		if s.SpecVersion != Version {
			return nil, fmt.Errorf("spec: entry %d: unsupported version %d (want %d)", i, s.SpecVersion, Version)
		}
	}
	return specs, nil
}

// Canonical returns the canonical encoding of the spec: compact JSON
// with fields in schema order. Two specs describing the same workload
// have identical canonical bytes regardless of how they were written.
func (s Spec) Canonical() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return b, nil
}

// Hash returns the content hash of the spec: the hex SHA-256 of its
// canonical encoding. Simulations are bit-reproducible, so the hash
// identifies the result as well as the workload.
func (s Spec) Hash() (string, error) {
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// MarshalIndent renders the spec as indented JSON for files and docs.
// The canonical (hashed) form is the compact rendering; the indented
// form decodes back to the same canonical bytes.
func (s Spec) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return append(b, '\n'), nil
}

// Validate checks the whole spec — schema version, platform
// parameters, every generator descriptor, and cross-master address
// footprints — and reports all problems in one descriptive error.
func (s Spec) Validate() error {
	var errs check.Errors
	if s.SpecVersion != Version {
		errs.Addf("spec: unsupported version %d (want %d)", s.SpecVersion, Version)
	}
	if s.Name == "" {
		errs.Addf("spec: name required")
	}
	errs.Add(s.Params.Validate())
	if s.Params.MaxCycles != 0 {
		// Compilation reads only the spec-level cap; a dead field here
		// would change the content hash without changing the workload.
		errs.Addf("spec: params.max_cycles is not honored; set max_cycles at the spec top level")
	}
	if len(s.Masters) != len(s.Params.Masters) {
		errs.Addf("spec: %d generator descriptors for %d masters", len(s.Masters), len(s.Params.Masters))
	}
	if s.MaxCycles > MaxRunCycles {
		errs.Addf("spec: max_cycles %d out of range (max %d)", s.MaxCycles, uint64(MaxRunCycles))
	}
	for i, g := range s.Masters {
		g.validate(&errs, i)
		for _, f := range g.strayFields() {
			errs.Addf("spec: master %d (%s): field %q is not used by this kind", i, g.Kind, f)
		}
	}
	// Only check footprints once the descriptors are individually
	// sound; building generators from malformed descriptors could
	// divide by zero.
	if errs.Empty() {
		s.validateFootprints(&errs)
	}
	return errs.Err()
}

// validate checks one generator descriptor, reporting problems with
// the master index m.
func (g GenSpec) validate(errs *check.Errors, m int) {
	bad := func(format string, args ...any) {
		errs.Addf("spec: master %d (%s): %s", m, g.Kind, fmt.Sprintf(format, args...))
	}
	beatsOK := func(beats int) bool { return beats >= 1 && beats <= MaxBurstBeats }
	countOK := func() {
		if g.Count < 1 || g.Count > MaxCount {
			bad("count %d outside [1,%d]", g.Count, MaxCount)
		}
	}
	switch g.Kind {
	case KindSequential:
		countOK()
		if !beatsOK(g.Beats) {
			bad("beats %d outside [1,%d]", g.Beats, MaxBurstBeats)
		}
		switch g.BeatBytes {
		case 0, 1, 2, 4, 8, 16:
		default:
			bad("beat_bytes %d is not a power of two in [1,16]", g.BeatBytes)
		}
	case KindRandom:
		countOK()
		if g.MaxBeats < 1 || g.MaxBeats > 16 {
			bad("max_beats %d outside [1,16]", g.MaxBeats)
		}
		if g.WriteFrac < 0 || g.WriteFrac > 1 {
			bad("write_frac %g outside [0,1]", g.WriteFrac)
		}
		if g.MeanGap < 0 {
			bad("mean_gap %d negative", g.MeanGap)
		}
		// The generator aligns each burst inside the window, so the
		// window must hold the largest burst it can draw.
		if span := uint32(largestBurstUpTo(g.MaxBeats) * 4); g.WindowBytes < span {
			bad("window_bytes %d cannot hold a %d-byte burst", g.WindowBytes, span)
		}
	case KindBursty:
		countOK()
		if !beatsOK(g.Beats) {
			bad("beats %d outside [1,%d]", g.Beats, MaxBurstBeats)
		}
		if g.BurstTxns < 1 {
			bad("burst_txns %d must be >= 1", g.BurstTxns)
		}
	case KindStream:
		countOK()
		if !beatsOK(g.Beats) {
			bad("beats %d outside [1,%d]", g.Beats, MaxBurstBeats)
		}
		if g.Period < 1 {
			bad("period %d must be >= 1", g.Period)
		}
	case KindScript:
		if len(g.Reqs) == 0 {
			bad("script requires at least one request")
		}
		if len(g.Reqs) > MaxCount {
			bad("script length %d exceeds %d", len(g.Reqs), MaxCount)
		}
		for i, r := range g.Reqs {
			if !beatsOK(r.Beats) {
				bad("request %d: beats %d outside [1,%d]", i, r.Beats, MaxBurstBeats)
			}
		}
	case "":
		errs.Addf("spec: master %d: generator kind required", m)
	default:
		errs.Addf("spec: master %d: unknown generator kind %q", m, g.Kind)
	}
}

// strayFields returns the descriptor fields that are set but not
// consumed by the kind, sorted. A stray field would change the
// spec's canonical bytes — and therefore its content hash — without
// changing the workload, silently aliasing identical results under
// different cache keys, so validation rejects it.
func (g GenSpec) strayFields() []string {
	allowed := map[string]bool{}
	switch g.Kind {
	case KindSequential:
		for _, f := range []string{"base", "beats", "count", "gap", "write_every", "wrap_bytes", "stride_bytes", "beat_bytes"} {
			allowed[f] = true
		}
	case KindRandom:
		for _, f := range []string{"base", "count", "seed", "window_bytes", "max_beats", "write_frac", "mean_gap"} {
			allowed[f] = true
		}
	case KindBursty:
		for _, f := range []string{"base", "beats", "count", "burst_txns", "idle_gap", "write"} {
			allowed[f] = true
		}
	case KindStream:
		for _, f := range []string{"base", "beats", "count", "period", "write", "wrap_bytes"} {
			allowed[f] = true
		}
	case KindScript:
		allowed["reqs"] = true
	default:
		return nil // the kind itself is already rejected
	}
	set := map[string]bool{
		"base": g.Base != 0, "beats": g.Beats != 0, "count": g.Count != 0,
		"gap": g.Gap != 0, "write_every": g.WriteEvery != 0,
		"wrap_bytes": g.WrapBytes != 0, "stride_bytes": g.StrideBytes != 0,
		"beat_bytes": g.BeatBytes != 0, "seed": g.Seed != 0,
		"window_bytes": g.WindowBytes != 0, "max_beats": g.MaxBeats != 0,
		"write_frac": g.WriteFrac != 0, "mean_gap": g.MeanGap != 0,
		"burst_txns": g.BurstTxns != 0, "idle_gap": g.IdleGap != 0,
		"period": g.Period != 0, "write": g.Write, "reqs": len(g.Reqs) != 0,
	}
	var stray []string
	for name, isSet := range set {
		if isSet && !allowed[name] {
			stray = append(stray, name)
		}
	}
	sort.Strings(stray)
	return stray
}

// largestBurstUpTo returns the largest burst length Random can draw
// given its MaxBeats bound.
func largestBurstUpTo(maxBeats int) int {
	best := 1
	for _, l := range []int{4, 8, 16} {
		if l <= maxBeats {
			best = l
		}
	}
	return best
}

// Build compiles the descriptor into a fresh generator. The
// descriptor must have passed validation.
func (g GenSpec) Build() (traffic.Generator, error) {
	switch g.Kind {
	case KindSequential:
		return &traffic.Sequential{
			NameStr: g.Name, Base: g.Base, Beats: g.Beats, Gap: sim.Cycle(g.Gap),
			Count: g.Count, WriteEvery: g.WriteEvery, WrapBytes: g.WrapBytes,
			StrideBytes: g.StrideBytes, BeatBytes: g.BeatBytes,
		}, nil
	case KindRandom:
		return &traffic.Random{
			NameStr: g.Name, Seed: g.Seed, Base: g.Base, WindowBytes: g.WindowBytes,
			MaxBeats: g.MaxBeats, WriteFrac: g.WriteFrac, MeanGap: g.MeanGap, Count: g.Count,
		}, nil
	case KindBursty:
		return &traffic.Bursty{
			NameStr: g.Name, Base: g.Base, Beats: g.Beats, BurstTxns: g.BurstTxns,
			IdleGap: sim.Cycle(g.IdleGap), Count: g.Count, Write: g.Write,
		}, nil
	case KindStream:
		return &traffic.Stream{
			NameStr: g.Name, Base: g.Base, Beats: g.Beats, Period: sim.Cycle(g.Period),
			Count: g.Count, Write: g.Write, WrapBytes: g.WrapBytes,
		}, nil
	case KindScript:
		reqs := make([]traffic.Req, len(g.Reqs))
		for i, r := range g.Reqs {
			reqs[i] = traffic.Req{
				At: sim.Cycle(r.At), Addr: r.Addr, Write: r.Write,
				Burst: traffic.BurstFor(r.Beats), Beats: r.Beats,
			}
		}
		return &traffic.Script{NameStr: g.Name, Reqs: reqs}, nil
	}
	return nil, fmt.Errorf("spec: unknown generator kind %q", g.Kind)
}

// Gens compiles every descriptor into a fresh generator set. Each
// call returns new generators, so the identical sequence can be
// replayed through another model.
func (s Spec) Gens() ([]traffic.Generator, error) {
	gens := make([]traffic.Generator, len(s.Masters))
	for i, g := range s.Masters {
		built, err := g.Build()
		if err != nil {
			return nil, fmt.Errorf("spec: master %d: %w", i, err)
		}
		gens[i] = built
	}
	return gens, nil
}

// footprintCap bounds the per-master transaction enumeration of the
// address-overlap check; a walk that is still producing at the cap is
// covered by one conservative interval over its full analytic extent
// instead (which may false-positive on very long sparse strides, but
// never misses an overlap).
const footprintCap = 1 << 16

// interval is one half-open touched address range.
type interval struct {
	lo, hi uint32
	master int
}

// validateFootprints rejects masters whose generators touch
// overlapping address ranges. Two ports writing the same bytes make
// the memory image depend on arbitration order, which breaks the
// cross-model reproducibility contract every spec promises; the check
// enumerates the deterministic address sequences (windows for random
// generators), so bank-interleaved layouts whose spans interleave
// without sharing a byte pass. Every overlapping master pair is
// reported, not just the first.
func (s Spec) validateFootprints(errs *check.Errors) {
	bus := s.Params.BusBytes
	if bus <= 0 {
		bus = 4
	}
	var ivs []interval
	for m, g := range s.Masters {
		ivs = append(ivs, g.footprint(m, bus)...)
	}
	if len(ivs) == 0 {
		return
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		return ivs[i].master < ivs[j].master
	})
	// Sweep with the full active set (at most one live interval per
	// master, since each master's own intervals are merged and
	// disjoint) so pairs nested inside a wider interval still report.
	seen := map[[2]int]bool{}
	var active []interval
	for _, cur := range ivs {
		live := active[:0]
		for _, a := range active {
			if a.hi > cur.lo {
				live = append(live, a)
			}
		}
		active = live
		for _, a := range active {
			if a.master == cur.master {
				continue
			}
			pair := [2]int{a.master, cur.master}
			if pair[0] > pair[1] {
				pair[0], pair[1] = pair[1], pair[0]
			}
			if !seen[pair] {
				seen[pair] = true
				errs.Addf("spec: masters %d and %d touch overlapping address ranges near %#x",
					pair[0], pair[1], cur.lo)
			}
		}
		active = append(active, cur)
	}
}

// footprint returns the merged address intervals the descriptor's
// generator will touch, tagged with the master index. busBytes is the
// platform beat width: each beat of a burst moves that many bytes, so
// a request at addr spans [addr, addr+beats*busBytes).
func (g GenSpec) footprint(m int, busBytes int) []interval {
	var ivs []interval
	add := func(lo uint32, span uint64) {
		if span == 0 {
			return
		}
		hi64 := uint64(lo) + span
		hi := uint32(hi64)
		if hi64 > uint64(^uint32(0)) { // clamp past the 32-bit address space
			hi = ^uint32(0)
		}
		ivs = append(ivs, interval{lo: lo, hi: hi, master: m})
	}
	switch g.Kind {
	case KindRandom:
		// Uniform over the window — but the generator aligns bursts in
		// beats*4 units, so on a wider bus the final beats of a burst
		// starting near the window end reach past it by up to
		// beats*(busBytes-4) bytes.
		span := uint64(g.WindowBytes)
		if busBytes > 4 {
			span += uint64(largestBurstUpTo(g.MaxBeats)) * uint64(busBytes-4)
		}
		add(g.Base, span)
	case KindScript:
		for _, r := range g.Reqs {
			add(r.Addr, uint64(r.Beats*busBytes))
		}
	default:
		// Sequential, bursty and stream address walks are deterministic
		// and independent of bus timing: replay the walk.
		gen, err := g.Build()
		if err != nil {
			return nil
		}
		span := uint64(g.Beats * busBytes)
		if g.Kind == KindSequential && g.BeatBytes > 0 && g.BeatBytes > busBytes {
			span = uint64(g.Beats * g.BeatBytes)
		}
		exhausted := false
		for n := 0; n < footprintCap; n++ {
			req, ok := gen.Next(0)
			if !ok {
				exhausted = true
				break
			}
			add(req.Addr, span)
		}
		if !exhausted {
			// The walk outruns the enumeration budget: cover its whole
			// analytic extent with one conservative interval.
			add(g.Base, g.walkExtent(span))
		}
	}
	return mergeIntervals(ivs)
}

// walkExtent returns a conservative upper bound, in bytes from Base,
// on how far the descriptor's full walk can reach, given the span of
// one transaction.
func (g GenSpec) walkExtent(span uint64) uint64 {
	if g.WrapBytes > 0 {
		// The walk resets into [Base, Base+WrapBytes); the final burst
		// can poke at most one span past the wrap point.
		return uint64(g.WrapBytes) + span
	}
	// Unwrapped walks advance by a fixed step per transaction.
	step := uint64(g.StrideBytes)
	if step == 0 {
		bb := g.BeatBytes
		if bb == 0 {
			bb = 4
		}
		// Bursty and stream advance by beats*4; sequential by
		// beats*(beat_bytes|4). Both are covered by beats*max(bb,4).
		step = uint64(g.Beats * bb)
	}
	if g.Count <= 0 {
		return span
	}
	return uint64(g.Count-1)*step + span
}

// mergeIntervals sorts and coalesces the intervals of one master.
func mergeIntervals(ivs []interval) []interval {
	if len(ivs) <= 1 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

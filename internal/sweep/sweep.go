// Package sweep is the parameter-grid engine: it expands one base
// workload spec plus a list of axis descriptors (write-buffer depth,
// bank interleaving, page policy, generator mix, ...) into the full
// Cartesian product of workload variants, each a complete, hashed
// spec.Spec ready to simulate.
//
// Axes are declarative data, not code: an axis names a platform or
// workload parameter and lists the values to try, so a grid can
// arrive over the wire (the service's POST /sweep), live in a JSON
// file, or be built in Go (cmd/sweep's ablation tables). Variants are
// deduplicated by spec content hash — two axis combinations that
// describe the same workload collapse into one — which keeps
// downstream caches from simulating the same point twice.
package sweep

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"repro/internal/arb"
	"repro/internal/spec"
)

// MaxVariants is the engine's hard bound on one grid's Cartesian
// product. It exists to keep Total arithmetic and bitmap sizes sane,
// not to police callers: the simulation service enforces its own,
// configurable, much lower limit (-max-sweep-variants) before a grid
// ever reaches Walk.
const MaxVariants = 1 << 20

// Params accepted as axis targets, in the order they are documented.
const (
	// ParamWriteBufferDepth sets Params.WriteBufferDepth (int).
	ParamWriteBufferDepth = "write_buffer_depth"
	// ParamPipelining sets Params.Pipelining (bool).
	ParamPipelining = "pipelining"
	// ParamBIEnabled sets Params.BIEnabled (bool).
	ParamBIEnabled = "bi_enabled"
	// ParamClosedPage sets Params.ClosedPage (bool).
	ParamClosedPage = "closed_page"
	// ParamBusBytes sets the bus width (int, power of two in [1,16]):
	// Params.BusBytes, the address map's beat width, and the assumed
	// beat width of every sequential master that declares one.
	ParamBusBytes = "bus_bytes"
	// ParamFilters selects the arbitration filter set (string): "all"
	// (the paper's seven-filter pipeline) or "rr-only" (round-robin
	// with only the structural permission/write-buffer filters).
	ParamFilters = "filters"
	// ParamUrgencyThreshold sets Params.UrgencyThreshold (int).
	ParamUrgencyThreshold = "urgency_threshold"
	// ParamCount sets every master's transaction count (int) — the
	// workload-intensity axis. Script masters have a fixed request
	// list, so a grid over a scripted base rejects this axis.
	ParamCount = "count"
	// ParamMix replaces the whole generator mix (string): the value
	// names a library scenario (spec.ByName) whose master descriptors
	// are grafted onto the base platform. Master counts must match.
	ParamMix = "mix"
	// ParamMaxCycles sets the spec-level run cap (int).
	ParamMaxCycles = "max_cycles"
)

// Value is one setting of an axis. V is the value applied to the
// parameter; Label names it in printed tables and result rows; Slug
// is the spec-name path segment. Empty Label and Slug are derived
// from V.
type Value struct {
	Label string
	Slug  string
	V     any
}

// Axis is one swept dimension: a parameter name and the values to try.
type Axis struct {
	Param  string
	Values []Value
}

// Grid is a full sweep description: a base spec, a name prefix for
// the variants, and the axes whose Cartesian product is explored.
type Grid struct {
	// Name prefixes every variant's spec name ("ablation/wb" +
	// "/depth8"). Empty falls back to the base spec's name.
	Name string
	// Base is the workload every variant starts from.
	Base spec.Spec
	// Axes are the swept dimensions; the last axis varies fastest.
	Axes []Axis
}

// Variant is one expanded grid point.
type Variant struct {
	// Index is the variant's position in the full Cartesian product
	// (row-major expansion order). Deduplication drops later
	// duplicates but never renumbers survivors, so Index always maps
	// back to the same axis-value combination.
	Index int
	// Labels holds one axis label per grid axis, in axis order.
	Labels []string
	// Params maps each axis's parameter name to the applied value.
	Params map[string]any
	// Spec is the complete workload, named Name/slug1/slug2/...
	Spec spec.Spec
	// Hash is the spec's content hash.
	Hash string
}

// Total validates the grid's axis structure and returns the size of
// its full Cartesian product — the index space Variant.Index lives in
// — without building a single variant. The product is guarded against
// overflow by the MaxVariants bound.
func (g Grid) Total() (int, error) {
	total := 1
	for _, ax := range g.Axes {
		if ax.Param == "" {
			return 0, fmt.Errorf("sweep: axis without a param")
		}
		if len(ax.Values) == 0 {
			return 0, fmt.Errorf("sweep: axis %q has no values", ax.Param)
		}
		if total > MaxVariants/len(ax.Values) {
			return 0, fmt.Errorf("sweep: grid exceeds %d variants", MaxVariants)
		}
		total *= len(ax.Values)
	}
	return total, nil
}

// Walk enumerates the grid lazily in row-major order (first axis
// slowest), holding O(1) variants in memory, and calls fn once per
// grid point that survives deduplication. A point whose spec fails to
// apply, validate or hash is reported as fn(partial, err) — Index,
// Labels and Params set, Spec/Hash not usable — so a caller streaming
// a committed response can turn it into an error row and keep going.
// fn returning a non-nil error aborts the walk and Walk returns it.
//
// Deduplication is on the workload alone: the spec name (which embeds
// the axis slugs and participates in the content hash) is cleared for
// the dedup key, so two axis combinations that label the same
// workload differently still collapse into one simulation. The walk
// always starts at index 0 even when the caller only wants a suffix —
// dedup survivors are defined by full-grid history, and skipping a
// prefix would silently renumber them.
func (g Grid) Walk(fn func(v Variant, err error) error) error {
	total, err := g.Total()
	if err != nil {
		return err
	}
	prefix := g.Name
	if prefix == "" {
		prefix = g.Base.Name
	}

	seen := make(map[string]bool)
	idx := make([]int, len(g.Axes))
	for n := 0; n < total; n++ {
		s := g.Base.Clone()
		labels := make([]string, len(g.Axes))
		slugs := make([]string, 0, len(g.Axes)+1)
		slugs = append(slugs, prefix)
		params := make(map[string]any, len(g.Axes))
		var buildErr error
		for a, ax := range g.Axes {
			v := ax.Values[idx[a]]
			label, slug := v.Label, v.Slug
			if label == "" {
				label = fmt.Sprintf("%v", v.V)
			}
			if slug == "" {
				slug = strings.ReplaceAll(label, "/", "-")
			}
			labels[a] = label
			slugs = append(slugs, slug)
			params[ax.Param] = v.V
			if buildErr == nil {
				if err := Apply(&s, ax.Param, v.V); err != nil {
					buildErr = fmt.Errorf("sweep: axis %q value %v: %w", ax.Param, v.V, err)
				}
			}
		}
		s.Name = strings.Join(slugs, "/")
		variant := Variant{Index: n, Labels: labels, Params: params}
		if buildErr == nil {
			if err := s.Validate(); err != nil {
				buildErr = fmt.Errorf("sweep: variant %s: %w", s.Name, err)
			}
		}
		var hash, workload string
		if buildErr == nil {
			if hash, err = s.Hash(); err != nil {
				buildErr = fmt.Errorf("sweep: variant %s: %w", s.Name, err)
			}
		}
		if buildErr == nil {
			unnamed := s
			unnamed.Name = ""
			if workload, err = unnamed.Hash(); err != nil {
				buildErr = fmt.Errorf("sweep: variant %s: %w", s.Name, err)
			}
		}
		switch {
		case buildErr != nil:
			variant.Spec = s
			if err := fn(variant, buildErr); err != nil {
				return err
			}
		case !seen[workload]:
			seen[workload] = true
			variant.Spec, variant.Hash = s, hash
			if err := fn(variant, nil); err != nil {
				return err
			}
		}
		for a := len(g.Axes) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(g.Axes[a].Values) {
				break
			}
			idx[a] = 0
		}
	}
	return nil
}

// Expand produces the deduplicated variant list: the Cartesian
// product of the axis values applied to the base spec, in row-major
// order (first axis slowest), with later duplicates of an already
// seen content hash dropped. Every variant's spec is validated; the
// first invalid grid point fails the whole expansion. Callers that
// cannot afford the materialized slice (or want per-point error
// recovery) walk the grid instead.
func (g Grid) Expand() ([]Variant, error) {
	var variants []Variant
	err := g.Walk(func(v Variant, err error) error {
		if err != nil {
			return err
		}
		variants = append(variants, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return variants, nil
}

// MustExpand is Expand for static (trusted) grids; it panics on error.
func MustExpand(g Grid) []Variant {
	vs, err := g.Expand()
	if err != nil {
		panic(err)
	}
	return vs
}

// Apply sets one parameter on the spec. The value may carry the
// JSON-decoded representation of its type (float64 for ints), so
// grids decoded off the wire apply without caller-side coercion.
func Apply(s *spec.Spec, param string, v any) error {
	switch param {
	case ParamWriteBufferDepth:
		n, err := asInt(v)
		if err != nil {
			return err
		}
		s.Params.WriteBufferDepth = n
	case ParamPipelining:
		b, err := asBool(v)
		if err != nil {
			return err
		}
		s.Params.Pipelining = b
	case ParamBIEnabled:
		b, err := asBool(v)
		if err != nil {
			return err
		}
		s.Params.BIEnabled = b
	case ParamClosedPage:
		b, err := asBool(v)
		if err != nil {
			return err
		}
		s.Params.ClosedPage = b
	case ParamBusBytes:
		n, err := asInt(v)
		if err != nil {
			return err
		}
		if n < 1 || n > 16 || n&(n-1) != 0 {
			return fmt.Errorf("bus_bytes %d is not a power of two in [1,16]", n)
		}
		s.Params.BusBytes = n
		s.Params.AddrMap.BeatBytesLog2 = uint(bits.TrailingZeros(uint(n)))
		// A sequential generator that declared an assumed beat width
		// tracks the platform width, as the A7 ablation workloads do.
		for i := range s.Masters {
			if s.Masters[i].Kind == spec.KindSequential && s.Masters[i].BeatBytes != 0 {
				s.Masters[i].BeatBytes = n
			}
		}
	case ParamFilters:
		name, ok := v.(string)
		if !ok {
			return fmt.Errorf("filters wants a string, got %T", v)
		}
		switch name {
		case "all":
			s.Params.Filters = arb.AllEnabled()
		case "rr-only":
			f := arb.AllEnabled()
			f.Urgency, f.RealTime, f.Bandwidth, f.BankAffinity = false, false, false, false
			s.Params.Filters = f
		default:
			return fmt.Errorf("unknown filter set %q (want all or rr-only)", name)
		}
	case ParamUrgencyThreshold:
		n, err := asInt(v)
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf("urgency_threshold %d negative", n)
		}
		s.Params.UrgencyThreshold = uint64(n)
	case ParamCount:
		n, err := asInt(v)
		if err != nil {
			return err
		}
		for i := range s.Masters {
			if s.Masters[i].Kind == spec.KindScript {
				return fmt.Errorf("count cannot apply to script master %d", i)
			}
			s.Masters[i].Count = n
		}
	case ParamMix:
		name, ok := v.(string)
		if !ok {
			return fmt.Errorf("mix wants a scenario name, got %T", v)
		}
		lib, err := spec.ByName(name)
		if err != nil {
			return err
		}
		if len(lib.Masters) != len(s.Params.Masters) {
			return fmt.Errorf("mix %q has %d masters, platform has %d",
				name, len(lib.Masters), len(s.Params.Masters))
		}
		s.Masters = lib.Clone().Masters
	case ParamMaxCycles:
		n, err := asInt(v)
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf("max_cycles %d negative", n)
		}
		s.MaxCycles = uint64(n)
	default:
		return fmt.Errorf("unknown sweep parameter %q", param)
	}
	return nil
}

// asInt coerces a Go int or a JSON number to an int, rejecting
// fractional values instead of silently truncating them.
func asInt(v any) (int, error) {
	switch n := v.(type) {
	case int:
		return n, nil
	case float64:
		if n != math.Trunc(n) || math.Abs(n) > 1<<52 {
			return 0, fmt.Errorf("value %v is not an integer", n)
		}
		return int(n), nil
	}
	return 0, fmt.Errorf("value %v (%T) is not an integer", v, v)
}

// asBool coerces a bool value.
func asBool(v any) (bool, error) {
	if b, ok := v.(bool); ok {
		return b, nil
	}
	return false, fmt.Errorf("value %v (%T) is not a bool", v, v)
}

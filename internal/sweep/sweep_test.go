package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/spec"
)

func base3(txns int) spec.Spec { return spec.SaturatingSpec(8, txns) }

func TestExpandSingleAxis(t *testing.T) {
	g := Grid{
		Name: "ablation/wb", Base: base3(50),
		Axes: []Axis{{Param: ParamWriteBufferDepth, Values: []Value{
			{Label: "0", Slug: "depth0", V: 0},
			{Label: "8", Slug: "depth8", V: 8},
		}}},
	}
	vs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("%d variants", len(vs))
	}
	if vs[0].Spec.Name != "ablation/wb/depth0" || vs[1].Spec.Name != "ablation/wb/depth8" {
		t.Fatalf("names %q %q", vs[0].Spec.Name, vs[1].Spec.Name)
	}
	if vs[0].Spec.Params.WriteBufferDepth != 0 || vs[1].Spec.Params.WriteBufferDepth != 8 {
		t.Fatal("depth not applied")
	}
	if vs[0].Labels[0] != "0" || vs[1].Labels[0] != "8" {
		t.Fatalf("labels %v %v", vs[0].Labels, vs[1].Labels)
	}
	if vs[0].Params[ParamWriteBufferDepth] != 0 {
		t.Fatalf("params map %v", vs[0].Params)
	}
	// Hashes match independently built specs.
	want := spec.SaturatingSpec(0, 50)
	want.Name = "ablation/wb/depth0"
	wantHash, _ := want.Hash()
	if vs[0].Hash != wantHash {
		t.Fatalf("hash %s want %s", vs[0].Hash, wantHash)
	}
	// The base spec is never mutated by expansion.
	if base := base3(50); g.Base.Params.WriteBufferDepth != base.Params.WriteBufferDepth {
		t.Fatal("base mutated")
	}
}

func TestExpandCartesianProductRowMajor(t *testing.T) {
	g := Grid{
		Base: base3(40),
		Axes: []Axis{
			{Param: ParamWriteBufferDepth, Values: []Value{{V: 2}, {V: 8}}},
			{Param: ParamPipelining, Values: []Value{{V: true}, {V: false}}},
			{Param: ParamClosedPage, Values: []Value{{V: false}, {V: true}}},
		},
	}
	vs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 8 {
		t.Fatalf("%d variants, want 8", len(vs))
	}
	// Row-major: the last axis varies fastest.
	wantLabels := [][]string{
		{"2", "true", "false"}, {"2", "true", "true"},
		{"2", "false", "false"}, {"2", "false", "true"},
		{"8", "true", "false"}, {"8", "true", "true"},
		{"8", "false", "false"}, {"8", "false", "true"},
	}
	seen := map[string]bool{}
	for i, v := range vs {
		if strings.Join(v.Labels, ",") != strings.Join(wantLabels[i], ",") {
			t.Fatalf("variant %d labels %v, want %v", i, v.Labels, wantLabels[i])
		}
		if v.Index != i {
			t.Fatalf("variant %d carries index %d", i, v.Index)
		}
		if seen[v.Hash] {
			t.Fatalf("duplicate hash %s", v.Hash)
		}
		seen[v.Hash] = true
		if err := v.Spec.Validate(); err != nil {
			t.Fatalf("variant %d invalid: %v", i, err)
		}
	}
}

func TestExpandDeduplicatesByWorkload(t *testing.T) {
	// Two axis values that produce the identical workload collapse,
	// even though their distinct slugs give the specs distinct names
	// (and therefore distinct content hashes): dedup keys on the
	// workload with the name cleared.
	g := Grid{
		Base: base3(40),
		Axes: []Axis{{Param: ParamWriteBufferDepth, Values: []Value{
			{Slug: "a", V: 8}, {Slug: "b", V: 8}, {Slug: "c", V: 4},
		}}},
	}
	vs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("%d variants, want 2 (same workload under different labels)", len(vs))
	}
	if !strings.HasSuffix(vs[0].Spec.Name, "/a") || !strings.HasSuffix(vs[1].Spec.Name, "/c") {
		t.Fatalf("survivors %q %q (first duplicate should win)", vs[0].Spec.Name, vs[1].Spec.Name)
	}
	// Indices keep their Cartesian-product coordinates: the dropped
	// duplicate's slot stays vacant instead of shifting later points.
	if vs[0].Index != 0 || vs[1].Index != 2 {
		t.Fatalf("indices %d %d, want 0 2", vs[0].Index, vs[1].Index)
	}
}

func TestExpandRejectsOversizedGrids(t *testing.T) {
	// 1100^2 > MaxVariants: Total must refuse before building anything
	// (and before overflow could wrap the product).
	vals := make([]Value, 1100)
	for i := range vals {
		vals[i] = Value{V: i}
	}
	g := Grid{
		Base: base3(40),
		Axes: []Axis{
			{Param: ParamWriteBufferDepth, Values: vals},
			{Param: ParamUrgencyThreshold, Values: vals},
		},
	}
	if _, err := g.Total(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized grid Total: %v", err)
	}
	if _, err := g.Expand(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized grid: %v", err)
	}
}

func TestWalkMatchesExpandAndRecovers(t *testing.T) {
	g := Grid{
		Name: "walk/test",
		Base: base3(40),
		Axes: []Axis{
			{Param: ParamWriteBufferDepth, Values: []Value{{V: 0}, {V: 4}, {V: 8}}},
			{Param: ParamBIEnabled, Values: []Value{{V: true}, {V: false}}},
		},
	}
	if total, err := g.Total(); err != nil || total != 6 {
		t.Fatalf("Total = %d, %v; want 6", total, err)
	}
	want, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var got []Variant
	if err := g.Walk(func(v Variant, err error) error {
		if err != nil {
			t.Fatalf("walk error at %d: %v", v.Index, err)
		}
		got = append(got, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("walk yielded %d variants, expand %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index || got[i].Hash != want[i].Hash {
			t.Fatalf("variant %d: walk (%d,%s) vs expand (%d,%s)",
				i, got[i].Index, got[i].Hash, want[i].Index, want[i].Hash)
		}
	}

	// A mid-grid invalid point reaches fn as (partial, err) and the
	// walk continues when fn keeps going; Expand aborts on it.
	bad := Grid{
		Base: base3(40),
		Axes: []Axis{{Param: ParamBusBytes, Values: []Value{{V: 4}, {V: 3}, {V: 8}}}},
	}
	var goodIdx, badIdx []int
	if err := bad.Walk(func(v Variant, err error) error {
		if err != nil {
			if !strings.Contains(err.Error(), "power of two") {
				t.Fatalf("unexpected build error: %v", err)
			}
			badIdx = append(badIdx, v.Index)
			return nil
		}
		goodIdx = append(goodIdx, v.Index)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(goodIdx) != 2 || len(badIdx) != 1 || badIdx[0] != 1 {
		t.Fatalf("good %v bad %v, want two good and bad index 1", goodIdx, badIdx)
	}
	if _, err := bad.Expand(); err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("Expand over invalid point: %v", err)
	}
}

func TestWalkAbortPropagates(t *testing.T) {
	g := Grid{
		Base: base3(40),
		Axes: []Axis{{Param: ParamWriteBufferDepth, Values: []Value{{V: 0}, {V: 4}, {V: 8}}}},
	}
	stop := errors.New("stop here")
	n := 0
	err := g.Walk(func(v Variant, err error) error {
		n++
		if n == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || n != 2 {
		t.Fatalf("walk err %v after %d calls, want stop after 2", err, n)
	}
}

func TestBitsetRoundTrip(t *testing.T) {
	b := NewBitset(77)
	for _, i := range []int{0, 1, 63, 64, 76} {
		b.Set(i)
	}
	b.Set(77)  // out of range: no-op
	b.Set(-1)  // out of range: no-op
	b.Clear(1) // and clear works
	if b.Count() != 4 || !b.Get(0) || b.Get(1) || !b.Get(76) || b.Get(77) {
		t.Fatalf("count %d after sets/clears", b.Count())
	}
	enc, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back Bitset
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 77 || back.Count() != 4 || !back.Get(64) {
		t.Fatalf("round trip: len %d count %d", back.Len(), back.Count())
	}

	// A torn payload (byte count disagreeing with the claimed length)
	// must be an unmarshal error, never plausible progress.
	if err := json.Unmarshal([]byte(`{"n":128,"bits":"AAA="}`), &back); err == nil {
		t.Fatal("length-mismatched bitset unmarshalled cleanly")
	}

	other := NewBitset(77)
	other.Set(10)
	other.Or(b)
	if other.Count() != 5 || !other.Get(10) || !other.Get(63) {
		t.Fatalf("or-merge count %d", other.Count())
	}
	mismatch := NewBitset(5)
	mismatch.Or(b) // different lengths: no-op
	if mismatch.Count() != 0 {
		t.Fatal("or across lengths merged")
	}
}

func TestExpandRejectsBadAxes(t *testing.T) {
	cases := []struct {
		name string
		axes []Axis
		want string
	}{
		{"no values", []Axis{{Param: ParamPipelining}}, "no values"},
		{"no param", []Axis{{Values: []Value{{V: 1}}}}, "without a param"},
		{"unknown param", []Axis{{Param: "warp_factor", Values: []Value{{V: 9}}}}, "unknown sweep parameter"},
		{"wrong type", []Axis{{Param: ParamPipelining, Values: []Value{{V: 3}}}}, "not a bool"},
		{"fractional int", []Axis{{Param: ParamWriteBufferDepth, Values: []Value{{V: 2.5}}}}, "not an integer"},
		{"bad filters", []Axis{{Param: ParamFilters, Values: []Value{{V: "turbo"}}}}, "unknown filter set"},
		{"bad bus width", []Axis{{Param: ParamBusBytes, Values: []Value{{V: 3}}}}, "power of two"},
	}
	for _, c := range cases {
		g := Grid{Base: base3(40), Axes: c.axes}
		if _, err := g.Expand(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want %q", c.name, err, c.want)
		}
	}
}

func TestExpandValidatesVariants(t *testing.T) {
	g := Grid{
		Base: base3(40),
		Axes: []Axis{{Param: ParamCount, Values: []Value{{V: spec.MaxCount + 1}}}},
	}
	if _, err := g.Expand(); err == nil || !strings.Contains(err.Error(), "count") {
		t.Fatalf("invalid variant accepted: %v", err)
	}
}

func TestApplyJSONNumbersCoerce(t *testing.T) {
	s := base3(40)
	if err := Apply(&s, ParamWriteBufferDepth, float64(4)); err != nil {
		t.Fatal(err)
	}
	if s.Params.WriteBufferDepth != 4 {
		t.Fatal("float64 int not applied")
	}
}

func TestApplyBusBytesTracksSequentialBeatWidth(t *testing.T) {
	s := spec.BusWidthSpec(4, 40)
	if err := Apply(&s, ParamBusBytes, 8); err != nil {
		t.Fatal(err)
	}
	want := spec.BusWidthSpec(8, 40)
	a, _ := s.Canonical()
	want.Name = s.Name
	b, _ := want.Canonical()
	if string(a) != string(b) {
		t.Fatalf("bus_bytes axis diverges from BusWidthSpec:\n%s\n%s", a, b)
	}
}

func TestApplyCountRejectsScriptMasters(t *testing.T) {
	s := spec.Spec{
		SpecVersion: spec.Version, Name: "t", Params: base3(40).Params,
		Masters: []spec.GenSpec{
			{Kind: spec.KindScript, Reqs: []spec.ReqSpec{{Addr: 0, Beats: 4}}},
			{Kind: spec.KindSequential, Base: 0x80000, Beats: 4, Count: 10},
			{Kind: spec.KindSequential, Base: 0x100000, Beats: 4, Count: 10},
		},
	}
	if err := Apply(&s, ParamCount, 20); err == nil || !strings.Contains(err.Error(), "script") {
		t.Fatalf("script count: %v", err)
	}
}

func TestApplyMixGraftsLibraryMasters(t *testing.T) {
	s := base3(40)
	if err := Apply(&s, ParamMix, "seq/read-dominant"); err != nil {
		t.Fatal(err)
	}
	lib, _ := spec.ByName("seq/read-dominant")
	if len(s.Masters) != len(lib.Masters) || s.Masters[0].Kind != lib.Masters[0].Kind ||
		s.Masters[0].Base != lib.Masters[0].Base || s.Masters[0].Count != lib.Masters[0].Count {
		t.Fatal("mix not grafted")
	}
	// Platform still the base's.
	if s.Params.WriteBufferDepth != base3(40).Params.WriteBufferDepth {
		t.Fatal("mix replaced the platform")
	}
	if err := Apply(&s, ParamMix, "no/such"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestVariantLabelsDefaultFromValues(t *testing.T) {
	g := Grid{
		Base: base3(40),
		Axes: []Axis{{Param: ParamMix, Values: []Value{{V: "seq/read-dominant"}}}},
	}
	vs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if vs[0].Labels[0] != "seq/read-dominant" {
		t.Fatalf("label %q", vs[0].Labels[0])
	}
	// Slug sanitizes the path separator.
	if want := base3(40).Name + "/seq-read-dominant"; vs[0].Spec.Name != want {
		t.Fatalf("name %q want %q", vs[0].Spec.Name, want)
	}
}

func TestCmdSweepNamingContract(t *testing.T) {
	// The ablation tables ride on these exact names (-dump filenames,
	// CHANGES history); pin the grid-engine rendering of each family.
	cases := []struct {
		grid Grid
		want []string
	}{
		{
			Grid{Name: "ablation/wb", Base: spec.SaturatingSpec(8, 50),
				Axes: []Axis{{Param: ParamWriteBufferDepth, Values: []Value{{Slug: "depth0", V: 0}, {Slug: "depth8", V: 8}}}}},
			[]string{"ablation/wb/depth0", "ablation/wb/depth8"},
		},
		{
			Grid{Name: "ablation/pipelining", Base: spec.SaturatingSpec(8, 50),
				Axes: []Axis{{Param: ParamPipelining, Values: []Value{{V: true}, {V: false}}}}},
			[]string{"ablation/pipelining/true", "ablation/pipelining/false"},
		},
		{
			Grid{Name: "ablation/buswidth", Base: spec.BusWidthSpec(4, 50),
				Axes: []Axis{{Param: ParamBusBytes, Values: []Value{{Label: "32b", Slug: "32", V: 4}, {Label: "64b", Slug: "64", V: 8}}}}},
			[]string{"ablation/buswidth/32", "ablation/buswidth/64"},
		},
	}
	for _, c := range cases {
		vs, err := c.grid.Expand()
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, v := range vs {
			got = append(got, v.Spec.Name)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("names %v, want %v", got, c.want)
		}
	}
}

package sweep

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math/bits"
)

// Bitset is a fixed-size bit vector indexed by a variant's Cartesian
// coordinate (Variant.Index). Sweep manifests persist one bit per
// grid point — done and failed maps — so a 100k-variant sweep's
// checkpoint is ~12 KB, not a row list. The zero value is an empty
// set of length 0; out-of-range Set/Clear are no-ops and
// out-of-range Get is false, so a manifest whose bitmap disagrees
// with its grid can never claim progress it does not hold.
type Bitset struct {
	n    int
	bits []byte
}

// NewBitset returns an all-zero set over indices [0, n).
func NewBitset(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{n: n, bits: make([]byte, (n+7)/8)}
}

// Len returns the index-space size the set was built for.
func (b *Bitset) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Set marks index i. Out of range is a no-op.
func (b *Bitset) Set(i int) {
	if b == nil || i < 0 || i >= b.n {
		return
	}
	b.bits[i>>3] |= 1 << (i & 7)
}

// Clear unmarks index i. Out of range is a no-op.
func (b *Bitset) Clear(i int) {
	if b == nil || i < 0 || i >= b.n {
		return
	}
	b.bits[i>>3] &^= 1 << (i & 7)
}

// Get reports whether index i is marked.
func (b *Bitset) Get(i int) bool {
	if b == nil || i < 0 || i >= b.n {
		return false
	}
	return b.bits[i>>3]&(1<<(i&7)) != 0
}

// Count returns the number of marked indices.
func (b *Bitset) Count() int {
	if b == nil {
		return 0
	}
	n := 0
	for _, w := range b.bits {
		n += bits.OnesCount8(w)
	}
	return n
}

// Or merges every marked index of other into b. Sets of different
// lengths do not merge — progress recorded against one grid shape
// says nothing about another.
func (b *Bitset) Or(other *Bitset) {
	if b == nil || other == nil || b.n != other.n {
		return
	}
	for i, w := range other.bits {
		b.bits[i] |= w
	}
}

// AndNot clears every index of b that is marked in other, under the
// same equal-length rule as Or.
func (b *Bitset) AndNot(other *Bitset) {
	if b == nil || other == nil || b.n != other.n {
		return
	}
	for i, w := range other.bits {
		b.bits[i] &^= w
	}
}

// bitsetWire is the JSON shape: the length plus the packed bytes.
type bitsetWire struct {
	N    int    `json:"n"`
	Bits string `json:"bits"`
}

// MarshalJSON encodes the set as {"n": N, "bits": "<base64>"}.
func (b *Bitset) MarshalJSON() ([]byte, error) {
	if b == nil {
		return json.Marshal(bitsetWire{})
	}
	return json.Marshal(bitsetWire{N: b.n, Bits: base64.StdEncoding.EncodeToString(b.bits)})
}

// UnmarshalJSON decodes the wire shape, rejecting a payload whose
// byte count disagrees with its claimed length — a torn or hand-
// edited manifest must surface as corrupt, not as plausible progress.
func (b *Bitset) UnmarshalJSON(data []byte) error {
	var w bitsetWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	raw, err := base64.StdEncoding.DecodeString(w.Bits)
	if err != nil {
		return fmt.Errorf("bitset: %w", err)
	}
	if w.N < 0 || w.N > MaxVariants || len(raw) != (w.N+7)/8 {
		return fmt.Errorf("bitset: %d bytes for %d bits", len(raw), w.N)
	}
	b.n, b.bits = w.N, raw
	return nil
}

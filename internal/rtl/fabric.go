package rtl

import (
	"fmt"

	"repro/internal/amba"
	"repro/internal/bi"
	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/ddr"
	"repro/internal/memmodel"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// wbEntry is one posted write waiting in the write buffer. The payload
// is already in memory (the datapath is abstracted, per the paper); the
// entry carries only what the drain needs for timing.
type wbEntry struct {
	addr  uint32
	beats int
}

// curTxn is the fabric's in-flight transaction.
type curTxn struct {
	active     bool
	port       int
	addr       uint32
	write      bool
	beats      int
	posted     bool
	erred      bool
	reqVisible sim.Cycle
	grantAt    sim.Cycle
	first      sim.Cycle
	last       sim.Cycle
	kind       string
}

// fabricComp is the bus fabric + DDRC slave: it multiplexes the granted
// master's address phase, consults the DDR engine for beat timing,
// drives HREADY/HRDATA, hosts the write buffer, and delivers BI hints
// to the controller.
type fabricComp struct {
	w       *Wires
	eng     *ddr.Engine
	mem     *memmodel.Memory
	link    *bi.Link
	chk     *check.Checker
	tracer  *trace.Recorder
	tracker *qos.Tracker
	bus     *stats.Bus
	size    amba.Size
	wbDepth int
	bank    sim.RegBank

	cur    curTxn
	queue  []wbEntry
	txnID  uint64
	rbuf   []byte
	sram   config.SRAMCfg
	ddrCap uint64

	// slotR are the write-buffer FIFO entry registers: one per slot,
	// re-driven every cycle like the RTL FIFO flops.
	slotR []*sim.Reg[wbSlot]
}

// wbSlot is the registered image of one write-buffer FIFO entry.
type wbSlot struct {
	addr  uint32
	beats int
	valid bool
}

func newFabric(w *Wires, eng *ddr.Engine, mem *memmodel.Memory, link *bi.Link,
	chk *check.Checker, tracer *trace.Recorder, tracker *qos.Tracker,
	bus *stats.Bus, size amba.Size, wbDepth int, sram config.SRAMCfg) *fabricComp {
	f := &fabricComp{
		w: w, eng: eng, mem: mem, link: link, chk: chk,
		tracer: tracer, tracker: tracker, bus: bus, size: size, wbDepth: wbDepth,
		sram: sram, ddrCap: eng.Map.Capacity(),
	}
	f.bank.Add(w.HReady)
	f.bank.Add(w.HResp)
	f.bank.Add(w.HRData)
	f.bank.Add(w.BusOwner)
	f.bank.Add(w.BusLastData)
	f.bank.Add(w.WBUsed)
	f.bank.Add(w.WBFrontA)
	f.bank.Add(w.WBFrontLen)
	for i := 0; i < wbDepth; i++ {
		r := sim.NewReg(wbSlot{})
		f.slotR = append(f.slotR, r)
		f.bank.Add(r)
	}
	return f
}

// Name implements sim.Component.
func (f *fabricComp) Name() string { return "fabric" }

// Eval implements sim.Component.
func (f *fabricComp) Eval(now sim.Cycle) {
	w := f.w

	// 1. Deliver due BI hints to the memory controller.
	for _, d := range f.link.DeliverUpTo(now) {
		f.eng.Hint(d.At, d.Msg.Addr, d.Msg.Write)
	}

	// 2. Complete the in-flight transaction on its final beat.
	if f.cur.active && now == f.cur.last {
		f.finish(now)
	}

	// 3. Capture a granted master's address phase.
	if g := w.GrantIdx.Get(); g >= 0 && w.HTransM[g].Get() == amba.TransNonSeq {
		f.capture(now, g)
	}

	// 4. Drive the slave-side signals for the (possibly new) current
	// transaction. Re-drives of an unchanged value are elided: the
	// committed value is identical either way, and skipping the commit
	// avoids waking components that watch these registers.
	if f.cur.active {
		next := now + 1
		inBeats := next >= f.cur.first && next <= f.cur.last
		if w.HReady.Get() != inBeats {
			w.HReady.Set(inBeats)
		}
		if inBeats && !f.cur.write && !f.cur.erred {
			beat := int(next - f.cur.first)
			ba := f.cur.addr + uint32(beat*f.size.Bytes())
			w.HRData.Set(uint32(f.mem.ReadWord(ba, min(4, f.size.Bytes()))))
		}
		resp := amba.RespOkay
		if inBeats && f.cur.erred {
			resp = amba.RespError
		}
		if w.HResp.Get() != resp {
			w.HResp.Set(resp)
		}
	} else {
		if w.HReady.Get() {
			w.HReady.Set(false)
		}
		if w.HResp.Get() != amba.RespOkay {
			w.HResp.Set(amba.RespOkay)
		}
	}

	// 5. Publish write-buffer state: occupancy, front entry, and the
	// per-slot FIFO registers (driven on change; an RTL flop re-driven
	// with its own value commits the same state).
	for i, r := range f.slotR {
		slot := wbSlot{}
		if i < len(f.queue) {
			slot = wbSlot{addr: f.queue[i].addr, beats: f.queue[i].beats, valid: true}
		}
		if r.Get() != slot {
			r.Set(slot)
		}
	}
	if w.WBUsed.Get() != len(f.queue) {
		w.WBUsed.Set(len(f.queue))
	}
	var frontA uint32
	var frontLen int
	if len(f.queue) > 0 {
		frontA, frontLen = f.queue[0].addr, f.queue[0].beats
	}
	if w.WBFrontA.Get() != frontA {
		w.WBFrontA.Set(frontA)
	}
	if w.WBFrontLen.Get() != frontLen {
		w.WBFrontLen.Set(frontLen)
	}
	if len(f.queue) > f.bus.WBPeak {
		f.bus.WBPeak = len(f.queue)
	}
}

// capture starts the transaction whose address phase is visible.
func (f *fabricComp) capture(now sim.Cycle, g int) {
	w := f.w
	f.chk.Assert(!f.cur.active, "address phase for master %d while transaction of %d in flight", g, f.cur.port)
	addr := w.HAddrM[g].Get()
	write := w.HWriteM[g].Get()
	beats := w.HBeatsM[g].Get()
	burst := w.HBurstM[g].Get()
	info := w.ReqInfo[g]
	if amba.ValidateBurst(addr, burst, f.size, beats) == nil {
		f.chk.PropertyOK()
	} else {
		f.chk.Property(now, "burst-legal", false,
			"master %d drove an illegal burst: %#x %v x%d", g, addr, burst, beats)
	}

	f.txnID++
	isWB := g == w.wbIndex()
	cur := curTxn{
		active:     true,
		port:       g,
		addr:       addr,
		write:      write,
		beats:      beats,
		reqVisible: info.since,
		grantAt:    info.since, // refined below
	}
	// Grant became visible one cycle before the master drove the
	// address phase.
	cur.grantAt = now - 1

	inDDR := uint64(addr) < f.ddrCap
	switch {
	case !inDDR && f.sram.Contains(addr):
		// On-chip SRAM slave: fixed wait states, then one beat per
		// cycle. No bank machinery, no write posting.
		cur.first = now + 1 + sim.Cycle(f.sram.WaitStates)
		cur.last = cur.first + sim.Cycle(beats-1)
		cur.kind = "sram"
		if write {
			f.mem.Write(addr, w.WDataBuf)
		} else {
			n := beats * f.size.Bytes()
			if cap(f.rbuf) < n {
				f.rbuf = make([]byte, n)
			}
			f.rbuf = f.rbuf[:n]
			f.mem.Read(addr, f.rbuf)
			w.RDataBuf = f.rbuf
		}
	case !inDDR:
		// Unmapped address: the decoder selects no slave; the default
		// slave terminates the transfer with a single ERROR beat.
		cur.first = now + 1
		cur.last = now + 1
		cur.erred = true
		cur.kind = "error"
	case write && !isWB && f.wbDepth > 0 && len(f.queue) < f.wbDepth:
		// Posted write: absorbed by the write buffer at bus speed, one
		// beat per cycle starting next cycle.
		cur.posted = true
		cur.first = now + 1
		cur.last = now + sim.Cycle(beats)
		cur.kind = "posted"
		f.queue = append(f.queue, wbEntry{addr: addr, beats: beats})
		f.mem.Write(addr, w.WDataBuf) // datapath abstracted: eager write
		f.bus.WBPosted++
	default:
		if write && !isWB && f.wbDepth > 0 {
			f.bus.WBFullStalls++
		}
		res := f.eng.Access(now+1, addr, write, beats)
		cur.first = res.FirstData
		cur.last = res.LastData
		cur.kind = res.Kind.String()
		if write {
			if isWB {
				// Drain: payload was written eagerly at post time.
				f.popFront(addr, beats)
				f.bus.WBDrained++
			} else {
				f.mem.Write(addr, w.WDataBuf)
			}
		} else {
			n := beats * f.size.Bytes()
			if cap(f.rbuf) < n {
				f.rbuf = make([]byte, n)
			}
			f.rbuf = f.rbuf[:n]
			f.mem.Read(addr, f.rbuf)
			w.RDataBuf = f.rbuf
		}
	}
	f.cur = cur
	w.BusOwner.Set(g)
	w.BusLastData.Set(cur.last)
}

// popFront removes the drained entry and checks it matches the drive.
func (f *fabricComp) popFront(addr uint32, beats int) {
	f.chk.Assert(len(f.queue) > 0, "write-buffer drain with empty queue")
	front := f.queue[0]
	f.chk.Assert(front.addr == addr && front.beats == beats,
		"write-buffer drain mismatch: drove %#x x%d, front %#x x%d", addr, beats, front.addr, front.beats)
	f.queue = append(f.queue[:0], f.queue[1:]...)
}

// finish records the completed transaction.
func (f *fabricComp) finish(now sim.Cycle) {
	c := &f.cur
	violated := false
	if c.port < f.w.NMasters {
		violated = f.tracker.Record(c.port, c.reqVisible, c.first)
	}
	wait := c.grantAt.SubFloor(c.reqVisible)
	lat := c.first.SubFloor(c.reqVisible)
	beats, bytes := c.beats, c.beats*f.size.Bytes()
	if c.erred {
		beats, bytes = 1, 0
		f.bus.Masters[c.port].Errors++
	}
	f.bus.Masters[c.port].RecordTxn(c.write, beats, bytes, wait, lat, violated)
	f.bus.BusyBeats += uint64(beats)
	if f.tracer != nil {
		f.tracer.Add(trace.Record{
			ID: f.txnID, Master: c.port, Addr: c.addr, Write: c.write, Beats: c.beats,
			Req: c.reqVisible, Grant: c.grantAt, FirstData: c.first, Done: c.last, Kind: c.kind,
		})
	}
	c.active = false
	// Release ownership unless a pipelined handoff grant is in flight.
	if f.w.GrantIdx.Get() < 0 {
		f.w.BusOwner.Set(-1)
	}
}

// idle reports whether the fabric has no transaction in flight and no
// pending write-buffer work.
func (f *fabricComp) idle() bool { return !f.cur.active && len(f.queue) == 0 }

// Update implements sim.Component.
func (f *fabricComp) Update(now sim.Cycle) { f.bank.CommitAll() }

// Quiescent implements sim.Sleeper: the fabric idles when no
// transaction is in flight, the write buffer is empty, no BI hint is
// still travelling, no grant awaits its address phase, and no request
// line is asserted. The request-line condition keeps the fabric awake
// through arbitration so a zero-latency BI hint sent on the grant cycle
// is delivered on that exact cycle, as an always-evaluated fabric
// would.
func (f *fabricComp) Quiescent(now sim.Cycle) (sim.Cycle, bool) {
	if f.cur.active || len(f.queue) > 0 || f.link.Pending() > 0 {
		return 0, false
	}
	if f.w.GrantIdx.Get() >= 0 {
		return 0, false
	}
	for i := 0; i <= f.w.NMasters; i++ {
		if f.w.HBusReq[i].Get() {
			return 0, false
		}
	}
	return sim.CycleMax, true
}

// String aids debugging.
func (f *fabricComp) String() string {
	return fmt.Sprintf("fabric{cur=%+v wb=%d}", f.cur, len(f.queue))
}

package rtl

import (
	"io"

	"repro/internal/amba"
	"repro/internal/sim"
	"repro/internal/trace"
)

// waveComp dumps the AHB signal bundle to a VCD waveform every cycle —
// pin-level visibility into the bus, viewable in any waveform viewer.
// Only the pin-accurate model offers this; it has no meaning at
// transaction level, which is part of the abstraction trade the paper
// describes.
type waveComp struct {
	w   *Wires
	vcd *trace.VCD

	busReq, grant []trace.SignalID
	htrans        []trace.SignalID
	haddr         trace.SignalID
	hready        trace.SignalID
	hresp         trace.SignalID
	owner         trace.SignalID
	wbUsed        trace.SignalID
}

// newWave registers the interesting subset of the bundle. The muxed
// address is reconstructed from the granted master's bundle.
func newWave(w *Wires, out io.Writer) *waveComp {
	v := trace.NewVCD(out)
	c := &waveComp{w: w, vcd: v}
	for i := 0; i <= w.NMasters; i++ {
		c.busReq = append(c.busReq, v.AddSignal(sigName("hbusreq", i), 1))
		c.grant = append(c.grant, v.AddSignal(sigName("hgrant", i), 1))
		c.htrans = append(c.htrans, v.AddSignal(sigName("htrans", i), 2))
	}
	c.haddr = v.AddSignal("haddr", 32)
	c.hready = v.AddSignal("hready", 1)
	c.hresp = v.AddSignal("hresp", 2)
	c.owner = v.AddSignal("busowner", 8)
	c.wbUsed = v.AddSignal("wbused", 8)
	if err := v.Begin("ahbplus"); err != nil {
		panic(err)
	}
	return c
}

func sigName(base string, i int) string {
	const digits = "0123456789"
	if i < 10 {
		return base + string(digits[i])
	}
	return base + string(digits[i/10]) + string(digits[i%10])
}

// Name implements sim.Component.
func (c *waveComp) Name() string { return "waveform" }

// Eval implements sim.Component.
func (c *waveComp) Eval(now sim.Cycle) {
	t := uint64(now)
	w := c.w
	for i := 0; i <= w.NMasters; i++ {
		c.vcd.Sample(t, c.busReq[i], boolBit(w.HBusReq[i].Get()))
		c.vcd.Sample(t, c.grant[i], boolBit(w.HGrant[i].Get()))
		c.vcd.Sample(t, c.htrans[i], uint64(w.HTransM[i].Get()))
	}
	// Muxed address: the granted master's HADDR, X (0) otherwise.
	if g := w.GrantIdx.Get(); g >= 0 && w.HTransM[g].Get() == amba.TransNonSeq {
		c.vcd.Sample(t, c.haddr, uint64(w.HAddrM[g].Get()))
	}
	c.vcd.Sample(t, c.hready, boolBit(w.HReady.Get()))
	c.vcd.Sample(t, c.hresp, uint64(w.HResp.Get()))
	c.vcd.Sample(t, c.owner, uint64(int64(w.BusOwner.Get())&0xFF))
	c.vcd.Sample(t, c.wbUsed, uint64(w.WBUsed.Get()))
}

// Update implements sim.Component.
func (c *waveComp) Update(now sim.Cycle) {}

// flush drains buffered waveform output; called at end of run.
func (c *waveComp) flush() { _ = c.vcd.Flush() }

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

package rtl

import (
	"repro/internal/amba"
	"repro/internal/arb"
	"repro/internal/bi"
	"repro/internal/check"
	"repro/internal/qos"
	"repro/internal/sim"
)

// arbiterComp samples the request lines every cycle and, when an
// arbitration window is open, runs the shared seven-filter pipeline to
// pick the next bus owner. With request pipelining enabled the window
// opens while the previous transaction is still streaming data (cycle
// L-1), which is the AHB+ latency-hiding scheme; the winning request is
// simultaneously announced to the DDRC over BI so the controller can
// prepare the target bank.
type arbiterComp struct {
	w    *Wires
	pipe *arb.Pipeline
	// comb re-evaluates the same filters every cycle regardless of the
	// grant window, because the paper's seven filters "are always
	// activated without the consideration of master/slave
	// combinations" — combinational logic does not idle. Its result is
	// committed only when the window is open (via pipe).
	comb       *arb.Pipeline
	regs       []qos.Reg
	link       *bi.Link
	status     *bi.Provider
	chk        *check.Checker
	pipelining bool
	urgency    sim.Cycle
	wbCap      int
	bank       sim.RegBank
	reqsBuf    []arb.Request
	portsBuf   []int
	ctx        arb.Context // persistent round context (no per-cycle rebuild)

	grantedTo int       // unconsumed grant (-1 none)
	ldSeen    sim.Cycle // BusLastData value the window flag refers to
	arbDone   bool      // a busy-window arbitration already granted
	lastGrant int       // round-robin memory (master index)

	served      []uint64 // beats granted per master (bandwidth window)
	totalServed uint64

	// grants counts issued grants; rounds counts evaluated rounds.
	grants, rounds uint64
}

func newArbiter(w *Wires, pipe, comb *arb.Pipeline, regs []qos.Reg, link *bi.Link, status *bi.Provider,
	chk *check.Checker, pipelining bool, urgency sim.Cycle, wbCap int) *arbiterComp {
	a := &arbiterComp{
		w: w, pipe: pipe, comb: comb, regs: regs, link: link, status: status, chk: chk,
		pipelining: pipelining, urgency: urgency, wbCap: wbCap,
		grantedTo: -1, lastGrant: -1,
		served: make([]uint64, w.NMasters+1),
	}
	for i := range w.HGrant {
		a.bank.Add(w.HGrant[i])
	}
	a.bank.Add(w.GrantIdx)
	a.ctx = arb.Context{
		Regs:             regs,
		Provider:         status,
		Served:           a.served,
		WBCap:            wbCap,
		UrgencyThreshold: urgency,
	}
	a.ctx.PrecomputeQoS()
	return a
}

// Name implements sim.Component.
func (a *arbiterComp) Name() string { return "arbiter" }

// Eval implements sim.Component.
func (a *arbiterComp) Eval(now sim.Cycle) {
	w := a.w

	// Per-cycle protocol property: the grant vector is one-hot or zero.
	granted := 0
	for i := range w.HGrant {
		if w.HGrant[i].Get() {
			granted++
		}
	}
	if granted <= 1 {
		a.chk.PropertyOK()
	} else {
		a.chk.Property(now, "grant-one-hot", false, "%d grants asserted", granted)
	}

	// Collect the requests visible this cycle (combinational request
	// sampling happens unconditionally, every cycle).
	reqs := a.reqsBuf[:0]
	ports := a.portsBuf[:0]
	for i := 0; i <= w.NMasters; i++ {
		if !w.HBusReq[i].Get() {
			continue
		}
		info := w.ReqInfo[i]
		reqs = append(reqs, arb.Request{
			Master:     i,
			Addr:       info.addr,
			Write:      info.write,
			Beats:      info.beats,
			Since:      info.since,
			IsWriteBuf: i == w.wbIndex(),
		})
		ports = append(ports, i)
	}
	a.reqsBuf, a.portsBuf = reqs, ports

	ctx := &a.ctx
	ctx.Now = now
	ctx.Reqs = reqs
	ctx.WBUsed = w.WBUsed.Get()
	ctx.TotalBeats = a.totalServed
	ctx.LastGrant = a.lastGrant
	// The seven filters are "always activated": the combinational
	// pipeline evaluates every cycle whether or not the grant register
	// will load its result.
	if len(reqs) > 0 {
		a.comb.Select(ctx)
	}

	// Detect consumption of an outstanding grant: the granted master's
	// address phase is visible this cycle. Drop the grant lines so a
	// stale grant can never authorize an unarbitrated transaction, and
	// skip arbitration for this cycle — the fabric is capturing the new
	// transaction right now, so BusOwner does not yet reflect it.
	if a.grantedTo >= 0 && w.HTransM[a.grantedTo].Get() == amba.TransNonSeq {
		w.HGrant[a.grantedTo].Set(false)
		w.GrantIdx.Set(-1)
		a.grantedTo = -1
		return
	}

	// One busy-window arbitration per transaction: reopen the window
	// when the fabric publishes a new completion cycle.
	if ld := w.BusLastData.Get(); ld != a.ldSeen {
		a.ldSeen = ld
		a.arbDone = false
	}

	if a.grantedTo >= 0 {
		return // a grant is in flight; nothing to do
	}
	owner := w.BusOwner.Get()
	busyWindow := a.pipelining && owner >= 0 && !a.arbDone && now+1 >= a.ldSeen
	if owner >= 0 && !busyWindow {
		return
	}
	if len(reqs) == 0 {
		return
	}
	a.rounds++
	win, ok := a.pipe.Select(ctx)
	if !ok {
		return // permission veto (refresh window); retry next cycle
	}
	g := ports[win]
	a.chk.Property(now, "grant-implies-request", w.HBusReq[g].Get(),
		"granted master %d without a visible request", g)
	for i := range w.HGrant {
		w.HGrant[i].Set(i == g)
	}
	w.GrantIdx.Set(g)
	a.grantedTo = g
	a.lastGrant = g
	if owner >= 0 {
		a.arbDone = true
	}
	a.grants++
	a.served[g] += uint64(reqs[win].Beats)
	a.totalServed += uint64(reqs[win].Beats)
	// Announce the winner to the DDRC over BI (bank-interleaving hint).
	a.link.Send(now, bi.NextTxn{
		Master: g,
		Addr:   reqs[win].Addr,
		Write:  reqs[win].Write,
		Beats:  reqs[win].Beats,
	})
}

// Update implements sim.Component.
func (a *arbiterComp) Update(now sim.Cycle) { a.bank.CommitAll() }

// Quiescent implements sim.Sleeper: the arbiter idles when no request
// line is asserted, no grant is outstanding and the bus is unowned.
// Commits on any HBUSREQ line (wired in New) wake it, so it evaluates
// again on exactly the cycle a request first becomes visible.
func (a *arbiterComp) Quiescent(now sim.Cycle) (sim.Cycle, bool) {
	if a.grantedTo >= 0 || a.w.BusOwner.Get() >= 0 {
		return 0, false
	}
	for i := 0; i <= a.w.NMasters; i++ {
		if a.w.HBusReq[i].Get() {
			return 0, false
		}
	}
	return sim.CycleMax, true
}

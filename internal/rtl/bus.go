package rtl

import (
	"fmt"
	"io"

	"repro/internal/amba"
	"repro/internal/arb"
	"repro/internal/bi"
	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/ddr"
	"repro/internal/memmodel"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Config assembles a pin-accurate simulation.
type Config struct {
	// Params is the shared platform configuration.
	Params config.Params
	// Gens drives the master ports; len(Gens) must equal
	// len(Params.Masters).
	Gens []traffic.Generator
	// Checker receives assertions and property checks (optional).
	Checker *check.Checker
	// Tracer records per-transaction timelines (optional).
	Tracer *trace.Recorder
	// Waveform, when non-nil, receives a VCD dump of the AHB signals.
	Waveform io.Writer
}

// Result summarizes a completed run.
type Result struct {
	// Cycles is the number of simulated bus cycles.
	Cycles sim.Cycle
	// Completed is true when every generator drained and the write
	// buffer emptied before the cycle cap.
	Completed bool
	// Stats is the profile of the run.
	Stats *stats.Bus
}

// Bus is the assembled pin-accurate AHB+ platform.
type Bus struct {
	kernel  *sim.Kernel
	wires   *Wires
	masters []*masterComp
	wbm     *wbMasterComp
	arb     *arbiterComp
	fabric  *fabricComp
	eng     *ddr.Engine
	mem     *memmodel.Memory
	pipe    *arb.Pipeline
	tracker *qos.Tracker
	bus     *stats.Bus
	chk     *check.Checker
	wave    *waveComp
}

// New assembles the platform. It panics on invalid configuration
// (static setup errors are programming mistakes, mirroring hardware
// elaboration failure); callers holding untrusted configuration use
// NewChecked.
func New(cfg Config) *Bus {
	b, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// NewChecked assembles the platform, reporting invalid configuration
// as a descriptive error instead of panicking — the entry point for
// externally submitted platforms (spec service, config files).
func NewChecked(cfg Config) (*Bus, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Gens) != len(cfg.Params.Masters) {
		return nil, fmt.Errorf("rtl: %d generators for %d masters", len(cfg.Gens), len(cfg.Params.Masters))
	}
	n := len(cfg.Gens)
	size := amba.SizeForBytes(cfg.Params.BusBytes)

	w := newWires(n)
	eng := ddr.NewEngine(cfg.Params.DDR, cfg.Params.AddrMap)
	if cfg.Params.ClosedPage {
		eng.Policy = ddr.ClosedPage
	}
	mem := memmodel.New()
	link := bi.NewLink(sim.Cycle(cfg.Params.BILatency))
	link.Enabled = cfg.Params.BIEnabled
	provider := &bi.Provider{
		Link:     link,
		PermitFn: eng.Permit,
		InfoFn:   eng.IdleOrOpen,
	}
	// QoS registers: traffic masters from config, the write-buffer
	// pseudo-master as plain NRT.
	regs := append(cfg.Params.QoSRegs(), qos.Reg{})
	tracker := qos.NewTracker(regs[:n])
	pipe := arb.DefaultWith(cfg.Params.Filters)
	busStats := stats.NewBus(n + 1)
	for i := 0; i < n; i++ {
		busStats.Masters[i].Name = cfg.Params.Masters[i].Name
	}
	busStats.Masters[n].Name = "wbuf"

	b := &Bus{
		kernel: sim.NewKernel(), wires: w, eng: eng, mem: mem,
		pipe: pipe, tracker: tracker, bus: busStats, chk: cfg.Checker,
	}
	for i, g := range cfg.Gens {
		m := newMaster(w, i, g, size, cfg.Checker)
		b.masters = append(b.masters, m)
		b.kernel.Register(m)
	}
	b.wbm = newWBMaster(w, cfg.Checker)
	b.kernel.Register(b.wbm)
	comb := arb.DefaultWith(cfg.Params.Filters)
	b.arb = newArbiter(w, pipe, comb, regs, link, provider, cfg.Checker,
		cfg.Params.Pipelining, sim.Cycle(cfg.Params.UrgencyThreshold), cfg.Params.WriteBufferDepth)
	b.kernel.Register(b.arb)
	b.fabric = newFabric(w, eng, mem, link, cfg.Checker, cfg.Tracer, tracker,
		busStats, size, cfg.Params.WriteBufferDepth, cfg.Params.SRAM)
	b.kernel.Register(b.fabric)
	ddrfsm := newDDRFSM(eng, cfg.Checker, w, link)
	b.kernel.Register(ddrfsm)
	if cfg.Waveform != nil {
		b.wave = newWave(w, cfg.Waveform)
		b.kernel.Register(b.wave)
	}

	// Clock-gating wake wiring. Every component above implements
	// sim.Sleeper; these register watches wake a gated component on the
	// exact cycle the input becomes visible to an always-evaluated one:
	//   - a request line wakes the arbiter (new round), the fabric
	//     (same-cycle BI hint delivery on the eventual grant) and the
	//     controller FSM (the round's permission probe touches the
	//     engine);
	//   - a committed grant wakes the fabric for the address-phase
	//     capture two cycles later;
	//   - write-buffer occupancy wakes the drain pseudo-master.
	arbW := b.kernel.Waker(b.arb)
	fabW := b.kernel.Waker(b.fabric)
	ddrW := b.kernel.Waker(ddrfsm)
	for i := range w.HBusReq {
		w.HBusReq[i].Notify(arbW)
		w.HBusReq[i].Notify(fabW)
		w.HBusReq[i].Notify(ddrW)
	}
	w.GrantIdx.Notify(fabW)
	w.GrantIdx.Notify(ddrW)
	w.WBUsed.Notify(b.kernel.Waker(b.wbm))
	return b, nil
}

// done reports whether all workloads drained and the bus quiesced.
func (b *Bus) done() bool {
	for _, m := range b.masters {
		if !m.finished() {
			return false
		}
	}
	return b.fabric.idle()
}

// Run simulates until every workload drains (plus the write buffer) or
// maxCycles elapses (0 means a generous default cap).
func (b *Bus) Run(maxCycles sim.Cycle) Result {
	if maxCycles == 0 {
		maxCycles = 50_000_000
	}
	_, ok := b.kernel.RunUntil(b.done, maxCycles)
	if b.wave != nil {
		b.wave.flush()
	}
	b.bus.Cycles = b.kernel.Now()
	b.bus.DDR = b.eng.Stats()
	ps := b.pipe.Stats()
	b.bus.Grants = ps.Grants
	b.bus.ArbRounds = ps.Rounds
	for k, v := range ps.Decisive {
		b.bus.FilterDecisive[k] = v
	}
	return Result{Cycles: b.kernel.Now(), Completed: ok, Stats: b.bus}
}

// Step advances the simulation a single cycle; exposed for directed
// protocol tests.
func (b *Bus) Step() { b.kernel.Step() }

// Now returns the current simulation cycle.
func (b *Bus) Now() sim.Cycle { return b.kernel.Now() }

// Mem exposes the backing store for end-to-end data checks.
func (b *Bus) Mem() *memmodel.Memory { return b.mem }

// Engine exposes the DDR engine (stats, bank state) for tests.
func (b *Bus) Engine() *ddr.Engine { return b.eng }

// Tracker exposes QoS outcomes.
func (b *Bus) Tracker() *qos.Tracker { return b.tracker }

// LastRead returns the payload of master m's most recent completed
// read.
func (b *Bus) LastRead(m int) []byte { return b.masters[m].lastRead }

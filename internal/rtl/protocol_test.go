package rtl

import (
	"testing"

	"repro/internal/amba"
	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// TestPipeliningHandoffFormula verifies the documented arbitration
// window against observed traces: with request pipelining, the next
// grant becomes visible at max(L-1, A+1, rv) + 1 for a request already
// pending during the previous transaction.
func TestPipeliningHandoffFormula(t *testing.T) {
	p := params(2)
	p.BIEnabled = false
	p.WriteBufferDepth = 0
	b, _, tr := build(t, p,
		&traffic.Script{Reqs: []traffic.Req{{At: 0, Addr: 0x0, Beats: 8, Burst: amba.BurstIncr8}}},
		&traffic.Script{Reqs: []traffic.Req{{At: 0, Addr: 0x80000, Beats: 4, Burst: amba.BurstIncr4}}},
	)
	if !b.Run(2000).Completed {
		t.Fatal("did not complete")
	}
	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	first, second := recs[0], recs[1]
	// A1 = first.Grant + 1 (address phase follows grant by one cycle).
	a1 := first.Grant + 1
	wantArb := sim.MaxCycle(first.Done.SubFloor(1), sim.MaxCycle(a1+1, second.Req))
	if second.Grant != wantArb+1 {
		t.Fatalf("second grant at %d, want %d (L1=%d A1=%d rv=%d)",
			second.Grant, wantArb+1, first.Done, a1, second.Req)
	}
}

// TestWriteBufferFullFallsBackToDirect fills the buffer and verifies
// overflow writes take the direct DDR path instead of stalling.
func TestWriteBufferFullFallsBackToDirect(t *testing.T) {
	// Three masters posting row-thrashing writes into a 4-deep buffer:
	// in the round-robin mid-band several posts can land back-to-back
	// before the drain's turn, so the buffer occasionally fills and the
	// overflow writes must fall back to the direct DDR path.
	p := params(3)
	p.WriteBufferDepth = 4
	stride := p.AddrMap.RowBytes() * uint32(p.AddrMap.Banks())
	b, _, tr := build(t, p,
		&traffic.Sequential{Base: 0, Beats: 8, Count: 80, WriteEvery: 1, StrideBytes: stride},
		&traffic.Sequential{Base: 0x400, Beats: 8, Count: 80, WriteEvery: 1, StrideBytes: stride},
		&traffic.Sequential{Base: 0x800, Beats: 8, Count: 80, WriteEvery: 1, StrideBytes: stride},
	)
	res := b.Run(100000)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if res.Stats.WBFullStalls == 0 {
		t.Fatal("expected at least one buffer-full fallback")
	}
	direct := 0
	for _, r := range tr.Records() {
		if r.Master < 3 && r.Write && r.Kind != "posted" {
			direct++
		}
	}
	if direct == 0 {
		t.Fatal("no direct-path writes recorded despite full stalls")
	}
	// Data integrity must hold regardless of the path taken.
	for txn := uint32(0); txn < 80; txn += 7 {
		for m := uint32(0); m < 3; m++ {
			a := m*0x400 + txn*stride + 4
			if got, want := b.Mem().ByteAt(a), writePattern(int(m), a); got != want {
				t.Fatalf("mem[%#x] = %#x, want %#x", a, got, want)
			}
		}
	}
}

// hostileGen produces a protocol-illegal burst (crossing the 1KB
// boundary) for failure-injection testing.
type hostileGen struct{ done bool }

func (h *hostileGen) Name() string { return "hostile" }
func (h *hostileGen) Reset()       { h.done = false }
func (h *hostileGen) Next(prev sim.Cycle) (traffic.Req, bool) {
	if h.done {
		return traffic.Req{}, false
	}
	h.done = true
	return traffic.Req{At: 0, Addr: 0x3F8, Beats: 4, Burst: amba.BurstIncr4}, true
}

// TestIllegalBurstCaughtByPropertyCheck injects a 1KB-crossing burst
// and verifies the fabric's burst-legal property fires while the
// simulation continues (collect mode), the paper's §3.5 property
// checking behavior.
func TestIllegalBurstCaughtByPropertyCheck(t *testing.T) {
	chk := &check.Checker{} // collect, do not panic
	p := params(1)
	b := New(Config{Params: p, Gens: []traffic.Generator{&hostileGen{}}, Checker: chk})
	res := b.Run(2000)
	if !res.Completed {
		t.Fatal("simulation should survive an illegal burst in collect mode")
	}
	if chk.Total() == 0 {
		t.Fatal("burst-legal property did not fire")
	}
	found := false
	for _, v := range chk.Violations() {
		if v.Property == "burst-legal" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no burst-legal violation in %v", chk.Violations())
	}
}

// TestContentionAccounting verifies request-to-grant wait accounting:
// with two masters colliding on every transaction, the loser's mean
// wait must exceed the canonical 1-cycle arbitration latency.
func TestContentionAccounting(t *testing.T) {
	p := params(2)
	b, _, _ := build(t, p,
		&traffic.Sequential{Base: 0, Beats: 16, Count: 30},
		&traffic.Sequential{Base: 0x80000, Beats: 16, Count: 30},
	)
	res := b.Run(0)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	wait0 := res.Stats.Masters[0].MeanWait()
	wait1 := res.Stats.Masters[1].MeanWait()
	if wait0+wait1 < 10 {
		t.Fatalf("expected visible contention, waits %.1f/%.1f", wait0, wait1)
	}
}

// TestGrantFairnessUnderSaturation: with identical saturating masters
// and round-robin arbitration only, grants split evenly.
func TestGrantFairnessUnderSaturation(t *testing.T) {
	p := params(3)
	p.Filters = config.PlainAHB(3).Filters // round-robin only
	p.WriteBufferDepth = 0
	b, _, _ := build(t, p,
		&traffic.Sequential{Base: 0x00000, Beats: 4, Count: 60},
		&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 60},
		&traffic.Sequential{Base: 0x100000, Beats: 4, Count: 60},
	)
	res := b.Run(0)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	// All masters issued the same transaction count; fairness shows up
	// as similar mean waits.
	w0 := res.Stats.Masters[0].MeanWait()
	for i := 1; i < 3; i++ {
		wi := res.Stats.Masters[i].MeanWait()
		if wi > 2*w0+10 || w0 > 2*wi+10 {
			t.Fatalf("unfair waits: m0=%.1f m%d=%.1f", w0, i, wi)
		}
	}
}

// TestDDR333TimingAlsoAgrees runs a workload under DDR-333 timing on
// both levels via the trace to confirm the timing preset is wired
// through (faster tRAS class, different refresh interval).
func TestDDR333TimingAlsoAgrees(t *testing.T) {
	p := params(2) // NoRefresh timing
	p266 := p
	p333 := p
	p333.DDR.TRAS = 7
	p333.DDR.TRC = 10
	gens := func() []traffic.Generator {
		return []traffic.Generator{
			&traffic.Sequential{Base: 0, Beats: 4, Count: 20},
			&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 20},
		}
	}
	b266, _, _ := build(t, p266, gens()...)
	b333, _, _ := build(t, p333, gens()...)
	r266 := b266.Run(0)
	r333 := b333.Run(0)
	if !r266.Completed || !r333.Completed {
		t.Fatal("incomplete")
	}
	// Different timing parameters must actually change behavior when
	// the constraints bind; at minimum the runs complete and produce
	// sensible stats.
	if r266.Stats.TotalTxns() != r333.Stats.TotalTxns() {
		t.Fatal("transaction counts should match across timing presets")
	}
}

// TestTraceRecorderCapInRTL verifies capped tracing drops excess
// records without disturbing the run.
func TestTraceRecorderCapInRTL(t *testing.T) {
	p := params(1)
	chk := &check.Checker{PanicOnProperty: true}
	tr := trace.New(5)
	b := New(Config{Params: p, Gens: []traffic.Generator{
		&traffic.Sequential{Base: 0, Beats: 4, Count: 20},
	}, Checker: chk, Tracer: tr})
	if !b.Run(0).Completed {
		t.Fatal("did not complete")
	}
	if len(tr.Records()) != 5 {
		t.Fatalf("stored %d records, want 5", len(tr.Records()))
	}
	if tr.Dropped() != 15 {
		t.Fatalf("dropped %d, want 15", tr.Dropped())
	}
}

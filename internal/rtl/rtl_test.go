package rtl

import (
	"strings"
	"testing"

	"repro/internal/amba"
	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// build assembles a platform with property panics enabled so any
// protocol slip fails the test immediately.
func build(t *testing.T, p config.Params, gens ...traffic.Generator) (*Bus, *check.Checker, *trace.Recorder) {
	t.Helper()
	chk := &check.Checker{PanicOnProperty: true}
	tr := trace.New(0)
	b := New(Config{Params: p, Gens: gens, Checker: chk, Tracer: tr})
	return b, chk, tr
}

func params(masters int) config.Params {
	p := config.Default(masters)
	p.DDR = p.DDR.NoRefresh()
	return p
}

func TestSingleReadTimeline(t *testing.T) {
	// One master, one 4-beat read at cycle 0. Canonical timeline:
	// request visible 1, arbitration at 1, grant visible 2, address
	// phase 3, access at 4 — row miss: first data 4+tRCD+tCL, four
	// beats.
	p := params(1)
	p.WriteBufferDepth = 0
	p.BIEnabled = false // no hint pre-activation: pure demand timing
	b, _, tr := build(t, p, &traffic.Script{Reqs: []traffic.Req{
		{At: 0, Addr: 0x100, Beats: 4, Burst: amba.BurstIncr4},
	}})
	res := b.Run(2000)
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("%d trace records", len(recs))
	}
	r := recs[0]
	if r.Req != 1 {
		t.Errorf("req visible at %d, want 1", r.Req)
	}
	if r.Grant != 2 {
		t.Errorf("grant visible at %d, want 2", r.Grant)
	}
	tm := p.DDR
	wantFirst := sim.Cycle(4) + tm.TRCD + tm.TCL
	if r.FirstData != wantFirst {
		t.Errorf("first data at %d, want %d", r.FirstData, wantFirst)
	}
	if r.Done != wantFirst+3 {
		t.Errorf("done at %d, want %d", r.Done, wantFirst+3)
	}
	if r.Kind != "miss" {
		t.Errorf("kind %q, want miss", r.Kind)
	}
	if res.Stats.Masters[0].Txns != 1 || res.Stats.Masters[0].Beats != 4 {
		t.Errorf("master stats %+v", res.Stats.Masters[0])
	}
}

func TestSequentialReadsRowHit(t *testing.T) {
	// Back-to-back sequential reads in one row: after the first miss,
	// subsequent accesses must be row hits. BI off so the first access
	// is a genuine miss rather than a hint-warmed hit.
	p := params(1)
	p.BIEnabled = false
	b, _, tr := build(t, p, &traffic.Sequential{Base: 0x0, Beats: 8, Count: 5})
	res := b.Run(5000)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	recs := tr.Records()
	if len(recs) != 5 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Kind != "miss" {
		t.Errorf("first access %q, want miss", recs[0].Kind)
	}
	for i, r := range recs[1:] {
		if r.Kind != "hit" {
			t.Errorf("access %d kind %q, want hit", i+1, r.Kind)
		}
	}
}

func TestWriteDataIntegrity(t *testing.T) {
	// Writes land in memory with the master's deterministic pattern,
	// whether posted through the write buffer or sent directly.
	for _, wbDepth := range []int{0, 8} {
		p := params(1)
		p.WriteBufferDepth = wbDepth
		b, _, _ := build(t, p, &traffic.Script{Reqs: []traffic.Req{
			{At: 0, Addr: 0x200, Beats: 4, Burst: amba.BurstIncr4, Write: true},
		}})
		res := b.Run(2000)
		if !res.Completed {
			t.Fatalf("wb=%d: did not complete", wbDepth)
		}
		for i := uint32(0); i < 16; i++ {
			want := writePattern(0, 0x200+i)
			if got := b.Mem().ByteAt(0x200 + i); got != want {
				t.Fatalf("wb=%d: mem[%#x] = %#x, want %#x", wbDepth, 0x200+i, got, want)
			}
		}
	}
}

func TestReadAfterWriteRoundTrip(t *testing.T) {
	p := params(1)
	b, _, _ := build(t, p, &traffic.Script{Reqs: []traffic.Req{
		{At: 0, Addr: 0x300, Beats: 4, Burst: amba.BurstIncr4, Write: true},
		{At: 0, Addr: 0x300, Beats: 4, Burst: amba.BurstIncr4},
	}})
	res := b.Run(5000)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	got := b.LastRead(0)
	if len(got) != 16 {
		t.Fatalf("read %d bytes", len(got))
	}
	for i, v := range got {
		if want := writePattern(0, 0x300+uint32(i)); v != want {
			t.Fatalf("readback[%d] = %#x, want %#x", i, v, want)
		}
	}
}

func TestPostedWriteFasterThanDirect(t *testing.T) {
	run := func(depth int) sim.Cycle {
		p := params(1)
		p.WriteBufferDepth = depth
		b, _, tr := build(t, p, &traffic.Script{Reqs: []traffic.Req{
			{At: 0, Addr: 0x400, Beats: 4, Burst: amba.BurstIncr4, Write: true},
		}})
		if !b.Run(2000).Completed {
			t.Fatal("did not complete")
		}
		return tr.Records()[0].Done
	}
	posted := run(8)
	direct := run(0)
	if posted >= direct {
		t.Fatalf("posted write (%d) should finish before direct write (%d)", posted, direct)
	}
}

func TestWriteBufferDrains(t *testing.T) {
	p := params(1)
	p.WriteBufferDepth = 4
	b, _, _ := build(t, p, &traffic.Sequential{Base: 0, Beats: 4, Count: 10, WriteEvery: 1})
	res := b.Run(10000)
	if !res.Completed {
		t.Fatal("did not complete (write buffer failed to drain)")
	}
	if res.Stats.WBPosted == 0 {
		t.Fatal("no writes were posted")
	}
	if res.Stats.WBDrained != res.Stats.WBPosted {
		t.Fatalf("posted %d but drained %d", res.Stats.WBPosted, res.Stats.WBDrained)
	}
	// The write-buffer pseudo-master's drains are accounted on its own
	// port.
	if res.Stats.Masters[1].Txns != res.Stats.WBDrained {
		t.Fatalf("wb port txns %d, drains %d", res.Stats.Masters[1].Txns, res.Stats.WBDrained)
	}
}

func TestMultiMasterAllComplete(t *testing.T) {
	p := params(3)
	b, chk, _ := build(t, p,
		&traffic.Sequential{Base: 0x0000, Beats: 8, Count: 20},
		&traffic.Random{Seed: 1, Base: 0x80000, WindowBytes: 1 << 16, MaxBeats: 8, WriteFrac: 0.4, Count: 20},
		&traffic.Stream{Base: 0x100000, Beats: 4, Period: 60, Count: 20},
	)
	res := b.Run(100000)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	for i := 0; i < 3; i++ {
		if res.Stats.Masters[i].Txns != 20 {
			t.Fatalf("master %d completed %d txns, want 20", i, res.Stats.Masters[i].Txns)
		}
	}
	if chk.Total() != 0 {
		t.Fatalf("property violations: %v", chk.Violations())
	}
	if res.Stats.Utilization() <= 0 {
		t.Fatal("utilization should be positive")
	}
}

func TestPipeliningReducesCycles(t *testing.T) {
	run := func(pipelining bool) sim.Cycle {
		p := params(2)
		p.Pipelining = pipelining
		b, _, _ := build(t, p,
			&traffic.Sequential{Base: 0x0000, Beats: 4, Count: 30},
			&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 30},
		)
		res := b.Run(100000)
		if !res.Completed {
			t.Fatal("did not complete")
		}
		return res.Cycles
	}
	on, off := run(true), run(false)
	if on >= off {
		t.Fatalf("pipelining should reduce cycles: on=%d off=%d", on, off)
	}
}

func TestBIHintsImproveThroughput(t *testing.T) {
	// Two masters striding through different banks: with BI the
	// controller pre-activates the next bank during the current burst.
	run := func(biOn bool) sim.Cycle {
		p := params(2)
		p.BIEnabled = biOn
		b, _, _ := build(t, p,
			&traffic.Sequential{Base: 0x0000, Beats: 4, Count: 40},
			&traffic.Sequential{Base: 0x00400, Beats: 4, Count: 40}, // next bank
		)
		res := b.Run(100000)
		if !res.Completed {
			t.Fatal("did not complete")
		}
		return res.Cycles
	}
	on, off := run(true), run(false)
	if on > off {
		t.Fatalf("BI hints should not hurt: on=%d off=%d", on, off)
	}
}

func TestQoSUrgencyProtectsRTMaster(t *testing.T) {
	// An RT stream master competing with two aggressive NRT masters:
	// with the urgency/realtime filters its worst-case latency must be
	// dramatically better than without any QoS filters.
	run := func(filters bool) sim.Cycle {
		p := params(3)
		p.Masters[0].RealTime = true
		p.Masters[0].QoSObjective = 60
		if !filters {
			p.Filters.Urgency = false
			p.Filters.RealTime = false
		}
		b, _, _ := build(t, p,
			&traffic.Stream{Base: 0x100000, Beats: 4, Period: 40, Count: 50},
			&traffic.Sequential{Base: 0x0000, Beats: 16, Count: 200},
			&traffic.Sequential{Base: 0x80000, Beats: 16, Count: 200},
		)
		res := b.Run(200000)
		if !res.Completed {
			t.Fatal("did not complete")
		}
		return res.Stats.Masters[0].LatencyMax
	}
	with, without := run(true), run(false)
	if with > without {
		t.Fatalf("QoS filters should bound RT latency: with=%d without=%d", with, without)
	}
}

func TestRefreshDoesNotDeadlock(t *testing.T) {
	p := config.Default(2) // refresh enabled
	b, _, _ := build(t, p,
		&traffic.Sequential{Base: 0, Beats: 4, Count: 50},
		&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 50, WriteEvery: 2},
	)
	res := b.Run(300000)
	if !res.Completed {
		t.Fatal("refresh-enabled run did not complete")
	}
	if res.Stats.DDR.Refreshes == 0 {
		t.Fatal("expected refreshes to occur")
	}
}

func TestCycleCapReturnsIncomplete(t *testing.T) {
	p := params(1)
	b, _, _ := build(t, p, &traffic.Sequential{Base: 0, Beats: 4, Count: 1000})
	res := b.Run(50)
	if res.Completed {
		t.Fatal("run within 50 cycles should not complete 1000 txns")
	}
	if res.Cycles != 50 {
		t.Fatalf("cycles %d, want 50", res.Cycles)
	}
}

func TestMismatchedGeneratorsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Params: params(2), Gens: []traffic.Generator{&traffic.Sequential{Count: 1, Beats: 1}}})
}

func TestWaveformDump(t *testing.T) {
	var vcd strings.Builder
	p := params(2)
	b := New(Config{
		Params: p,
		Gens: []traffic.Generator{
			&traffic.Sequential{Base: 0, Beats: 4, Count: 5},
			&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 5, WriteEvery: 1},
		},
		Waveform: &vcd,
	})
	if !b.Run(0).Completed {
		t.Fatal("did not complete")
	}
	out := vcd.String()
	for _, want := range []string{
		"$var wire 1", "hbusreq0", "hgrant1", "haddr", "hready", "$enddefinitions",
		"#0", // at least one timestamped change
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("waveform missing %q", want)
		}
	}
	// Grants must actually toggle in the dump.
	if !strings.Contains(out, "1\"") && !strings.Contains(out, "1%") {
		t.Log(out[:400])
	}
	if len(out) < 500 {
		t.Fatalf("suspiciously small waveform (%d bytes)", len(out))
	}
}

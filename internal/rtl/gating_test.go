package rtl

import (
	"testing"

	"repro/internal/config"
	"repro/internal/traffic"
)

// gatingConfig is a mixed workload with think time (idle stretches the
// gating exists to skip), posted writes (write-buffer pseudo-master),
// QoS (RT stream) and refresh left enabled — every sleeper in the
// model gets exercised.
func gatingConfig() (config.Params, func() []traffic.Generator) {
	p := config.Default(3)
	p.Masters[2].RealTime = true
	p.Masters[2].QoSObjective = 200
	gens := func() []traffic.Generator {
		return []traffic.Generator{
			&traffic.Sequential{Base: 0x00000, Beats: 8, Count: 60, WriteEvery: 2, Gap: 70},
			&traffic.Bursty{Base: 0x80000, Beats: 8, BurstTxns: 4, IdleGap: 300, Count: 60},
			&traffic.Stream{Base: 0x100000, Beats: 4, Period: 90, Count: 60},
		}
	}
	return p, gens
}

// TestClockGatingObservationEquivalence runs the identical workload on
// the gated kernel and with gating disabled and requires bit-identical
// results: cycle count, completion, per-master transaction stats, DDR
// activity and QoS outcomes. This is the clock-gating contract on the
// full pin-accurate platform.
func TestClockGatingObservationEquivalence(t *testing.T) {
	p, gens := gatingConfig()

	gated := New(Config{Params: p, Gens: gens()})
	plain := New(Config{Params: p, Gens: gens()})
	plain.kernel.GateDisabled = true

	rg := gated.Run(0)
	rp := plain.Run(0)

	if !rg.Completed || !rp.Completed {
		t.Fatalf("completion diverged or failed: gated=%v plain=%v", rg.Completed, rp.Completed)
	}
	if rg.Cycles != rp.Cycles {
		t.Fatalf("cycle counts diverged: gated=%d plain=%d", rg.Cycles, rp.Cycles)
	}
	if ge, pe := gated.Engine().Stats(), plain.Engine().Stats(); ge != pe {
		t.Fatalf("DDR stats diverged:\n gated %+v\n plain %+v", ge, pe)
	}
	for i := range rg.Stats.Masters {
		g, pl := rg.Stats.Masters[i], rp.Stats.Masters[i]
		if g.Reads != pl.Reads || g.Writes != pl.Writes || g.LatencySum != pl.LatencySum ||
			g.LatencyMax != pl.LatencyMax || g.WaitCycles != pl.WaitCycles || g.Errors != pl.Errors {
			t.Fatalf("master %d stats diverged:\n gated %+v\n plain %+v", i, g, pl)
		}
	}
	if rg.Stats.Grants != rp.Stats.Grants || rg.Stats.BusyBeats != rp.Stats.BusyBeats ||
		rg.Stats.WBPosted != rp.Stats.WBPosted || rg.Stats.WBDrained != rp.Stats.WBDrained {
		t.Fatalf("bus stats diverged:\n gated %+v\n plain %+v", rg.Stats, rp.Stats)
	}

	// The gated run must actually have gated something: with the think
	// time above, components sleep for most of the run.
	if gated.kernel.Sleeping() == 0 && gated.kernel.Now() > 0 {
		// Sleeping() at the end may legitimately be zero (everything
		// finished awake); assert on the cheap observable instead: the
		// data-integrity read-back matches.
		t.Log("no sleepers at end of run (not an error)")
	}
}

// TestClockGatingDataIntegrity checks the end-to-end datapath is
// unaffected by gating: the memory images of a gated and ungated run
// are identical where written.
func TestClockGatingDataIntegrity(t *testing.T) {
	p, gens := gatingConfig()
	gated := New(Config{Params: p, Gens: gens()})
	plain := New(Config{Params: p, Gens: gens()})
	plain.kernel.GateDisabled = true
	gated.Run(0)
	plain.Run(0)
	for _, addr := range []uint32{0x00000, 0x00100, 0x80000, 0x100000} {
		for off := uint32(0); off < 64; off++ {
			if g, pl := gated.Mem().ByteAt(addr+off), plain.Mem().ByteAt(addr+off); g != pl {
				t.Fatalf("memory diverged at %#x: gated %#x plain %#x", addr+off, g, pl)
			}
		}
	}
}

package rtl

import (
	"repro/internal/amba"
	"repro/internal/check"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// mstate is the master port FSM state.
type mstate uint8

const (
	mIdle mstate = iota // waiting for the next request time
	mWait               // HBUSREQ asserted, waiting for HGRANT
	mData               // counting data beats
	mDone               // workload exhausted
)

// writePattern returns the deterministic payload byte masters write, a
// function of master index and byte address so end-to-end data
// integrity is checkable across models.
func writePattern(master int, addr uint32) byte {
	return byte(uint32(master)*31 + addr*7 + (addr >> 8))
}

// masterComp is a signal-level AHB master driven by a traffic
// generator: it requests the bus, waits for grant, drives its address
// phase bundle and counts HREADY data beats.
type masterComp struct {
	w    *Wires
	idx  int
	gen  traffic.Generator
	size amba.Size
	chk  *check.Checker
	bank sim.RegBank

	st        mstate
	cur       traffic.Req
	wantAt    sim.Cycle
	reqSince  sim.Cycle // cycle the request became visible
	grantAt   sim.Cycle // cycle the grant became visible
	beatsSeen int
	wbuf      []byte

	// lastRead holds the payload of the most recent completed read,
	// for data-integrity tests.
	lastRead []byte
	// completions counts finished transactions.
	completions uint64
	// errors counts ERROR-terminated transactions.
	errors uint64
	// waitedTotal accumulates request-to-grant contention cycles.
	waitedTotal sim.Cycle
}

func newMaster(w *Wires, idx int, gen traffic.Generator, size amba.Size, chk *check.Checker) *masterComp {
	m := &masterComp{w: w, idx: idx, gen: gen, size: size, chk: chk}
	m.bank.Add(w.HBusReq[idx])
	m.bank.Add(w.HTransM[idx])
	m.bank.Add(w.HAddrM[idx])
	m.bank.Add(w.HWriteM[idx])
	m.bank.Add(w.HBurstM[idx])
	m.bank.Add(w.HBeatsM[idx])
	m.bank.Add(w.HWDataM[idx])
	m.fetch(0)
	return m
}

// Name implements sim.Component.
func (m *masterComp) Name() string { return "master" + m.gen.Name() }

// fetch pulls the next request from the generator.
func (m *masterComp) fetch(prevDone sim.Cycle) {
	req, ok := m.gen.Next(prevDone)
	if !ok {
		m.st = mDone
		return
	}
	m.chk.Assert(req.Beats > 0, "generator %s produced empty burst", m.gen.Name())
	m.cur = req
	m.wantAt = req.At
	m.st = mIdle
}

// Eval implements sim.Component.
func (m *masterComp) Eval(now sim.Cycle) {
	w := m.w
	switch m.st {
	case mDone:
		return

	case mIdle:
		if now < m.wantAt {
			return
		}
		w.HBusReq[m.idx].Set(true)
		m.reqSince = now + 1 // visible next cycle
		w.ReqInfo[m.idx] = reqInfo{
			addr:  m.cur.Addr,
			write: m.cur.Write,
			beats: m.cur.Beats,
			burst: m.cur.Burst,
			since: now + 1,
		}
		m.st = mWait

	case mWait:
		if !w.HGrant[m.idx].Get() {
			if now >= m.reqSince {
				m.waitedTotal++
			}
			return
		}
		m.grantAt = now
		// Drive the address phase (visible next cycle) and release the
		// request line.
		w.HBusReq[m.idx].Set(false)
		w.HTransM[m.idx].Set(amba.TransNonSeq)
		w.HAddrM[m.idx].Set(m.cur.Addr)
		w.HWriteM[m.idx].Set(m.cur.Write)
		w.HBurstM[m.idx].Set(m.cur.Burst)
		w.HBeatsM[m.idx].Set(m.cur.Beats)
		if m.cur.Write {
			// Post the payload through the out-of-band write-data port.
			n := m.cur.Beats * m.size.Bytes()
			if cap(m.wbuf) < n {
				m.wbuf = make([]byte, n)
			}
			m.wbuf = m.wbuf[:n]
			for b := 0; b < m.cur.Beats; b++ {
				ba := amba.BeatAddr(m.cur.Addr, m.cur.Burst, m.size, b)
				for j := 0; j < m.size.Bytes(); j++ {
					m.wbuf[b*m.size.Bytes()+j] = writePattern(m.idx, ba+uint32(j))
				}
			}
			w.WDataBuf = m.wbuf
		}
		m.beatsSeen = 0
		m.st = mData

	case mData:
		// The address pulse lasts exactly one cycle.
		if w.HTransM[m.idx].Get() == amba.TransNonSeq {
			w.HTransM[m.idx].Set(amba.TransIdle)
		}
		if w.BusOwner.Get() == m.idx && w.HReady.Get() {
			if w.HResp.Get() == amba.RespError {
				// The default slave terminated an unmapped access with a
				// single ERROR beat; abandon the transfer.
				m.errors++
				m.completions++
				m.fetch(now)
				return
			}
			m.chk.PropertyOK()
			if m.cur.Write {
				// Drive the write-data signal for the beat, as the pins
				// would carry it (the payload itself moved through the
				// transaction port at the address phase).
				off := m.beatsSeen * m.size.Bytes()
				var word uint32
				for j := 0; j < m.size.Bytes() && j < 4; j++ {
					word |= uint32(m.wbuf[off+j]) << (8 * j)
				}
				w.HWDataM[m.idx].Set(word)
			}
			m.beatsSeen++
			if m.beatsSeen == m.cur.Beats {
				if !m.cur.Write {
					m.lastRead = append(m.lastRead[:0], w.RDataBuf...)
				}
				m.completions++
				m.fetch(now)
			}
		}
	}
}

// Update implements sim.Component.
func (m *masterComp) Update(now sim.Cycle) { m.bank.CommitAll() }

// Quiescent implements sim.Sleeper: a master idles between the
// completion of one transaction and the request time of the next (and
// forever once its workload drains). Both states are purely
// time-driven, so no watched signal is needed — the kernel wakes the
// master at its own request time.
func (m *masterComp) Quiescent(now sim.Cycle) (sim.Cycle, bool) {
	switch m.st {
	case mDone:
		return sim.CycleMax, true
	case mIdle:
		return m.wantAt, true
	}
	return 0, false
}

// finished reports whether the workload is exhausted.
func (m *masterComp) finished() bool { return m.st == mDone }

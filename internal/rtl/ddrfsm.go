package rtl

import (
	"repro/internal/bi"
	"repro/internal/check"
	"repro/internal/ddr"
	"repro/internal/sim"
)

// ddrFSMComp is the cycle-stepped view of the DDRC bank state machines.
// The paper models the DDRC FSM "as accurate as register transfer
// level" in its pin-accurate model; here each bank's FSM state is
// sampled and legality-checked every bus cycle, the per-cycle cost a
// signal-level DDRC simulation pays. The TLM consults the same engine
// purely as a timing oracle and skips this work — one of the structural
// sources of its speedup.
type ddrFSMComp struct {
	eng  *ddr.Engine
	chk  *check.Checker
	w    *Wires   // observed for the clock-gating quiescence test
	link *bi.Link // in-flight hints force the FSM to keep sampling
	prev []ddr.BankState
	rows []uint32
	// transitions counts observed state changes per bank.
	transitions []uint64

	// Registered controller state, updated every cycle exactly as the
	// RTL flops would be: per-bank FSM state and open-row registers,
	// per-bank transient-phase down-counters, and the refresh-interval
	// down-counter.
	stateR   []*sim.Reg[ddr.BankState]
	rowR     []*sim.Reg[uint32]
	cntR     []*sim.Reg[int]
	refCntR  *sim.Reg[int]
	bank     sim.RegBank
	trefi    int
	maxPhase int
}

func newDDRFSM(eng *ddr.Engine, chk *check.Checker, w *Wires, link *bi.Link) *ddrFSMComp {
	d := &ddrFSMComp{
		eng:         eng,
		chk:         chk,
		w:           w,
		link:        link,
		prev:        make([]ddr.BankState, eng.Banks()),
		rows:        make([]uint32, eng.Banks()),
		transitions: make([]uint64, eng.Banks()),
		refCntR:     sim.NewReg(int(eng.T.TREFI)),
		trefi:       int(eng.T.TREFI),
	}
	// The longest transient phase any down-counter must cover.
	d.maxPhase = int(eng.T.TRCD)
	for _, t := range []sim.Cycle{eng.T.TRP, eng.T.TRFC, eng.T.TRC} {
		if int(t) > d.maxPhase {
			d.maxPhase = int(t)
		}
	}
	for i := 0; i < eng.Banks(); i++ {
		d.stateR = append(d.stateR, sim.NewReg(ddr.BankIdle))
		d.rowR = append(d.rowR, sim.NewReg[uint32](0))
		d.cntR = append(d.cntR, sim.NewReg(0))
		d.bank.Add(d.stateR[i])
		d.bank.Add(d.rowR[i])
		d.bank.Add(d.cntR[i])
	}
	d.bank.Add(d.refCntR)
	return d
}

// Name implements sim.Component.
func (d *ddrFSMComp) Name() string { return "ddr-fsm" }

// legalTransition encodes the bank FSM edge relation at one-cycle
// sampling granularity (same-state self loops are always legal).
func legalTransition(from, to ddr.BankState) bool {
	if from == to {
		return true
	}
	switch from {
	case ddr.BankIdle:
		// Activate starts, or a refresh closes the (already closed)
		// bank into its recovery window.
		return to == ddr.BankActivating || to == ddr.BankPrecharging
	case ddr.BankActivating:
		// Activation completes, or a refresh interrupts it.
		return to == ddr.BankActive || to == ddr.BankPrecharging
	case ddr.BankActive:
		// Precharge starts, or a new in-bank operation makes the bank
		// transient again (column busy / row switch via the engine).
		return to == ddr.BankPrecharging || to == ddr.BankActivating
	case ddr.BankPrecharging:
		// Precharge completes; a back-to-back activate may begin in the
		// same sampling window.
		return to == ddr.BankIdle || to == ddr.BankActivating
	}
	return false
}

// Eval implements sim.Component.
func (d *ddrFSMComp) Eval(now sim.Cycle) {
	// The refresh timer is part of the controller FSM: tick it every
	// cycle so refresh windows materialize eagerly, the way hardware
	// behaves.
	d.eng.Tick(now)
	if d.trefi > 0 {
		c := d.refCntR.Get() - 1
		if c <= 0 {
			c = d.trefi
		}
		d.refCntR.Set(c)
	}
	for b := 0; b < d.eng.Banks(); b++ {
		st := d.eng.BankState(b, now)
		if st != d.prev[b] {
			if !legalTransition(d.prev[b], st) {
				d.chk.Assert(false,
					"bank %d illegal FSM transition %v -> %v at %v", b, d.prev[b], st, now)
			}
			d.transitions[b]++
			d.prev[b] = st
			// Entering a transient phase reloads the phase counter.
			if st == ddr.BankActivating || st == ddr.BankPrecharging {
				d.cntR[b].Set(d.maxPhase)
			}
		}
		// Per-cycle register updates, as the controller flops would
		// switch: FSM state, open row, and the transient down-counter.
		d.stateR[b].Set(st)
		cnt := d.cntR[b].Get()
		switch st {
		case ddr.BankActivating, ddr.BankPrecharging:
			if cnt > 0 {
				d.cntR[b].Set(cnt - 1)
			}
			if cnt < 0 {
				d.chk.Assert(false, "bank %d phase counter underflow", b)
			}
		default:
			if cnt != 0 {
				d.cntR[b].Set(0)
			}
		}
		if row, open := d.eng.OpenRow(b); open {
			d.rows[b] = row
			d.rowR[b].Set(row)
		}
	}
}

// Update implements sim.Component.
func (d *ddrFSMComp) Update(now sim.Cycle) { d.bank.CommitAll() }

// Quiescent implements sim.Sleeper. The controller FSM may stop
// sampling only when nothing can move a bank: no request is visible
// (requests lead to arbitration, whose permission probe and eventual
// access touch the engine), no grant or transaction is in flight, no BI
// hint is still travelling, and every bank sits in a settled state from
// the next cycle on. Bank state then holds still until the next
// engine call — which the conditions above exclude — or the refresh
// timer, so the FSM asks to be woken exactly when the next refresh
// becomes due. Skipped cycles are provably observation-free: the
// legality checker sees the same transition sequence, merely without
// the self-loop samples in between.
func (d *ddrFSMComp) Quiescent(now sim.Cycle) (sim.Cycle, bool) {
	if d.w.GrantIdx.Get() >= 0 || d.w.BusOwner.Get() >= 0 {
		return 0, false
	}
	for i := 0; i <= d.w.NMasters; i++ {
		if d.w.HBusReq[i].Get() {
			return 0, false
		}
	}
	if d.link.Pending() > 0 {
		return 0, false
	}
	for b := 0; b < d.eng.Banks(); b++ {
		switch d.eng.BankState(b, now+1) {
		case ddr.BankActivating, ddr.BankPrecharging:
			return 0, false
		}
	}
	return d.eng.NextRefresh(), true
}

package rtl

import (
	"repro/internal/amba"
	"repro/internal/check"
	"repro/internal/sim"
)

// wbMasterComp is the write buffer acting "as another master when it is
// occupied" (paper §3.3): it watches the fabric-published occupancy,
// requests the bus, and drives drain address phases from the published
// front entry. The fabric itself pops the queue when it captures the
// drain's address phase.
type wbMasterComp struct {
	w    *Wires
	idx  int
	chk  *check.Checker
	bank sim.RegBank

	st        mstate
	beats     int
	beatsSeen int
	reqSince  sim.Cycle
}

func newWBMaster(w *Wires, chk *check.Checker) *wbMasterComp {
	m := &wbMasterComp{w: w, idx: w.wbIndex(), chk: chk}
	m.bank.Add(w.HBusReq[m.idx])
	m.bank.Add(w.HTransM[m.idx])
	m.bank.Add(w.HAddrM[m.idx])
	m.bank.Add(w.HWriteM[m.idx])
	m.bank.Add(w.HBurstM[m.idx])
	m.bank.Add(w.HBeatsM[m.idx])
	return m
}

// Name implements sim.Component.
func (m *wbMasterComp) Name() string { return "writebuffer-master" }

// Eval implements sim.Component.
func (m *wbMasterComp) Eval(now sim.Cycle) {
	w := m.w
	switch m.st {
	case mIdle, mDone:
		if w.WBUsed.Get() == 0 {
			return
		}
		w.HBusReq[m.idx].Set(true)
		m.reqSince = now + 1
		w.ReqInfo[m.idx] = reqInfo{
			addr:  w.WBFrontA.Get(),
			write: true,
			beats: w.WBFrontLen.Get(),
			burst: amba.FixedBurstFor(w.WBFrontLen.Get(), false),
			since: now + 1,
		}
		m.st = mWait

	case mWait:
		if !w.HGrant[m.idx].Get() {
			// The front entry is stable while we wait (only the fabric
			// pops, and only for our own drains), but refresh the
			// request info in case a new front was published.
			w.ReqInfo[m.idx].addr = w.WBFrontA.Get()
			w.ReqInfo[m.idx].beats = w.WBFrontLen.Get()
			return
		}
		m.beats = w.WBFrontLen.Get()
		m.chk.Assert(m.beats > 0, "write buffer granted with empty front")
		w.HBusReq[m.idx].Set(false)
		w.HTransM[m.idx].Set(amba.TransNonSeq)
		w.HAddrM[m.idx].Set(w.WBFrontA.Get())
		w.HWriteM[m.idx].Set(true)
		w.HBurstM[m.idx].Set(amba.FixedBurstFor(m.beats, false))
		w.HBeatsM[m.idx].Set(m.beats)
		m.beatsSeen = 0
		m.st = mData

	case mData:
		if w.HTransM[m.idx].Get() == amba.TransNonSeq {
			w.HTransM[m.idx].Set(amba.TransIdle)
		}
		if w.BusOwner.Get() == m.idx && w.HReady.Get() {
			m.beatsSeen++
			if m.beatsSeen == m.beats {
				m.st = mIdle
			}
		}
	}
}

// Update implements sim.Component.
func (m *wbMasterComp) Update(now sim.Cycle) { m.bank.CommitAll() }

// Quiescent implements sim.Sleeper: the pseudo-master sleeps while the
// fabric-published occupancy register reads empty; a commit on WBUsed
// (wired via Reg.Notify in New) wakes it the cycle the first posted
// write becomes visible — exactly the cycle an always-evaluated
// instance would first see it.
func (m *wbMasterComp) Quiescent(now sim.Cycle) (sim.Cycle, bool) {
	if (m.st == mIdle || m.st == mDone) && m.w.WBUsed.Get() == 0 {
		return sim.CycleMax, true
	}
	return 0, false
}

// Package rtl implements the pin-accurate AHB+ bus model: the baseline
// the paper validates its TLM against. Every AHB signal (HBUSREQ,
// HGRANT, HTRANS, HADDR, HBURST, HREADY, ...) is a registered value
// evaluated every bus cycle on the two-phase kernel, so simulation cost
// is proportional to cycles × components — the cost structure of a
// pin-accurate RTL simulation.
//
// # Timing contract
//
// A value Set during Eval(t) is visible to Get during Eval(t+1)
// ("visible at t+1"). The canonical transaction timeline, mirrored
// arithmetically by the TLM in internal/tlm, is:
//
//	W    master decides to request; drives HBUSREQ
//	W+1  request visible to the arbiter (earliest arbitration cycle T)
//	T+1  grant visible to the master
//	T+2  address phase visible to the bus fabric (cycle A)
//	A+1  memory access begins (DDR engine consulted with now = A+1)
//	F..L data beats (HREADY high); L is the completion cycle
//
// With request pipelining enabled the arbiter re-arbitrates while the
// bus is busy, from cycle L-1 of the current transaction (bounded below
// by A+1); without it, arbitration waits for the bus to go idle at L+1.
package rtl

import (
	"repro/internal/amba"
	"repro/internal/sim"
)

// reqInfo is the out-of-band request metadata a master publishes for
// the arbiter alongside its HBUSREQ signal (the paper maps signals to
// "variables or functions" in exactly this way, §3.1).
type reqInfo struct {
	addr  uint32
	write bool
	beats int
	burst amba.Burst
	since sim.Cycle // cycle the request became visible
}

// Wires is the AHB+ signal bundle. Per-master signals are driven by
// exactly one component; the fabric multiplexes by grant index, which
// is how the AHB address mux works.
type Wires struct {
	// NMasters is the number of traffic masters; the write-buffer
	// pseudo-master uses index NMasters.
	NMasters int

	// HBusReq[i] is master i's bus request (one extra for the WB).
	HBusReq []*sim.Reg[bool]
	// HGrant[i] is the one-hot grant vector.
	HGrant []*sim.Reg[bool]
	// GrantIdx is the arbiter's granted master (-1 when none
	// outstanding); it drives the address mux.
	GrantIdx *sim.Reg[int]

	// Per-master address-phase bundles.
	HTransM []*sim.Reg[amba.Trans]
	HAddrM  []*sim.Reg[uint32]
	HWriteM []*sim.Reg[bool]
	HBurstM []*sim.Reg[amba.Burst]
	HBeatsM []*sim.Reg[int]
	HWDataM []*sim.Reg[uint32]

	// Slave-side signals driven by the fabric.
	HReady *sim.Reg[bool]
	HResp  *sim.Reg[amba.Resp]
	HRData *sim.Reg[uint32]

	// BusOwner is the master whose data phase is in flight (-1 idle).
	BusOwner *sim.Reg[int]
	// BusLastData is the completion cycle of the in-flight transaction.
	BusLastData *sim.Reg[sim.Cycle]

	// Write-buffer state published by the fabric for the WB
	// pseudo-master and the arbitration write-buffer gate.
	WBUsed     *sim.Reg[int]
	WBFrontA   *sim.Reg[uint32]
	WBFrontLen *sim.Reg[int]

	// Out-of-band transaction-port variables (§3.1): the write payload
	// posted by the master during its address phase and the read
	// payload posted by the fabric at capture. Time-disjoint use is
	// guaranteed by the bus protocol (one address phase at a time).
	WDataBuf []byte
	RDataBuf []byte

	// ReqInfo[i] is master i's out-of-band request metadata.
	ReqInfo []reqInfo
}

// newWires allocates the signal bundle for n traffic masters plus the
// write-buffer pseudo-master.
func newWires(n int) *Wires {
	total := n + 1
	w := &Wires{
		NMasters:    n,
		GrantIdx:    sim.NewReg(-1),
		HReady:      sim.NewReg(false),
		HResp:       sim.NewReg(amba.RespOkay),
		HRData:      sim.NewReg[uint32](0),
		BusOwner:    sim.NewReg(-1),
		BusLastData: sim.NewReg(sim.Cycle(0)),
		WBUsed:      sim.NewReg(0),
		WBFrontA:    sim.NewReg[uint32](0),
		WBFrontLen:  sim.NewReg(0),
		ReqInfo:     make([]reqInfo, total),
	}
	for i := 0; i < total; i++ {
		w.HBusReq = append(w.HBusReq, sim.NewReg(false))
		w.HGrant = append(w.HGrant, sim.NewReg(false))
		w.HTransM = append(w.HTransM, sim.NewReg(amba.TransIdle))
		w.HAddrM = append(w.HAddrM, sim.NewReg[uint32](0))
		w.HWriteM = append(w.HWriteM, sim.NewReg(false))
		w.HBurstM = append(w.HBurstM, sim.NewReg(amba.BurstSingle))
		w.HBeatsM = append(w.HBeatsM, sim.NewReg(0))
		w.HWDataM = append(w.HWDataM, sim.NewReg[uint32](0))
	}
	return w
}

// wbIndex returns the write-buffer pseudo-master index.
func (w *Wires) wbIndex() int { return w.NMasters }

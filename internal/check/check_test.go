package check

import (
	"strings"
	"testing"
)

func TestAssertPassesQuietly(t *testing.T) {
	var c Checker
	c.Assert(true, "fine")
	if c.AssertsRun() != 1 {
		t.Fatalf("AssertsRun = %d", c.AssertsRun())
	}
}

func TestAssertPanicsOnFailure(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(r.(string), "bad state 42") {
			t.Fatalf("panic message %q", r)
		}
	}()
	var c Checker
	c.Assert(false, "bad state %d", 42)
}

func TestNilCheckerAssertStillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil checker must still panic on model assertion")
		}
	}()
	var c *Checker
	c.Assert(false, "broken")
}

func TestPropertyCollects(t *testing.T) {
	var c Checker
	if c.Property(10, "grant-implies-request", false, "master %d", 3) {
		t.Fatal("failed property should return false")
	}
	if c.Property(11, "hready-legal", true, "") != true {
		t.Fatal("passing property should return true")
	}
	if c.Total() != 1 || c.ChecksRun() != 2 {
		t.Fatalf("total=%d run=%d", c.Total(), c.ChecksRun())
	}
	v := c.Violations()
	if len(v) != 1 || v[0].Property != "grant-implies-request" || v[0].At != 10 {
		t.Fatalf("violations %+v", v)
	}
	if !strings.Contains(v[0].String(), "master 3") {
		t.Fatalf("violation string %q", v[0])
	}
}

func TestPropertyCapRespected(t *testing.T) {
	c := Checker{Limit: 3}
	for i := 0; i < 10; i++ {
		c.Property(0, "p", false, "n=%d", i)
	}
	if len(c.Violations()) != 3 {
		t.Fatalf("stored %d, want 3", len(c.Violations()))
	}
	if c.Total() != 10 {
		t.Fatalf("Total = %d, want 10 (counting continues)", c.Total())
	}
}

func TestPropertyPanicMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic in PanicOnProperty mode")
		}
	}()
	c := Checker{PanicOnProperty: true}
	c.Property(0, "p", false, "boom")
}

func TestNilCheckerPropertyIsFree(t *testing.T) {
	var c *Checker
	if !c.Property(0, "p", true, "") {
		t.Fatal("nil checker should pass through cond")
	}
	if c.Property(0, "p", false, "") {
		t.Fatal("nil checker should pass through cond")
	}
	if c.Total() != 0 || c.ChecksRun() != 0 || c.Violations() != nil {
		t.Fatal("nil checker must report empty state")
	}
}

func TestReport(t *testing.T) {
	var b strings.Builder
	var clean Checker
	clean.Report(&b)
	if !strings.Contains(b.String(), "no violations") {
		t.Fatalf("clean report %q", b.String())
	}
	b.Reset()
	var c Checker
	c.Property(5, "one-hot-grant", false, "two grants")
	c.Report(&b)
	out := b.String()
	if !strings.Contains(out, "1 violation") || !strings.Contains(out, "one-hot-grant") {
		t.Fatalf("report %q", out)
	}
	var nilC *Checker
	b.Reset()
	nilC.Report(&b)
	if !strings.Contains(b.String(), "no violations") {
		t.Fatal("nil checker report")
	}
}

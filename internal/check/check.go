// Package check implements the two kinds of assertion the paper inserts
// into its transaction-level models (§3.5):
//
//   - model assertions, for functional debugging of the model itself
//     ("this can never happen if the model is right"), and
//   - protocol properties, checked when the bus model is integrated
//     with master models and simulated for performance analysis.
//
// Model assertions panic by default — a failed one is a bug in this
// repository. Properties are collected and reported, because a property
// violation usually indicates a misconfigured platform, which the user
// wants listed, not crashed on.
package check

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Errors collects static-configuration problems so a validator can
// report every defect in one pass instead of panicking on (or stopping
// at) the first. The zero value is ready to use.
type Errors struct {
	list []string
}

// Addf records one formatted problem.
func (e *Errors) Addf(format string, args ...any) {
	e.list = append(e.list, fmt.Sprintf(format, args...))
}

// Add records err if it is non-nil and returns whether it was.
func (e *Errors) Add(err error) bool {
	if err == nil {
		return false
	}
	e.list = append(e.list, err.Error())
	return true
}

// Empty reports whether no problems were recorded.
func (e *Errors) Empty() bool { return len(e.list) == 0 }

// Problems returns the recorded problem messages in insertion order.
func (e *Errors) Problems() []string { return e.list }

// Err returns nil when no problems were recorded, and otherwise an
// error whose message lists every problem (semicolon-separated, with a
// count when there is more than one).
func (e *Errors) Err() error {
	switch len(e.list) {
	case 0:
		return nil
	case 1:
		return fmt.Errorf("%s", e.list[0])
	default:
		return fmt.Errorf("%d problems: %s", len(e.list), strings.Join(e.list, "; "))
	}
}

// Violation is one recorded property failure.
type Violation struct {
	// At is the simulation cycle of the failure.
	At sim.Cycle
	// Property names the violated property.
	Property string
	// Detail is the formatted failure message.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] property %s: %s", v.At, v.Property, v.Detail)
}

// Checker collects property violations and dispatches model assertions.
// The zero value is usable: assertions panic and properties are
// collected with the default cap.
type Checker struct {
	// PanicOnProperty promotes property violations to panics; useful in
	// tests that must not tolerate any violation.
	PanicOnProperty bool
	// Limit caps stored violations (0 means DefaultLimit); counting
	// continues past the cap.
	Limit int

	violations []Violation
	total      uint64
	asserts    uint64
	checksRun  uint64
}

// DefaultLimit is the default cap on stored violations.
const DefaultLimit = 100

// Assert is a model assertion: cond must hold if the model itself is
// correct. A failure panics with the formatted message, independent of
// collection mode.
func (c *Checker) Assert(cond bool, format string, args ...any) {
	if c != nil {
		c.asserts++
	}
	if !cond {
		panic("check: model assertion failed: " + fmt.Sprintf(format, args...))
	}
}

// PropertyOK records a passing property evaluation without any message
// formatting. Hot paths call it on the pass branch so the format
// arguments of Property are only materialized on failure.
func (c *Checker) PropertyOK() {
	if c != nil {
		c.checksRun++
	}
}

// Property records a protocol property check. It returns cond so call
// sites can branch on it. A nil Checker skips recording but still
// returns cond, letting models run uninstrumented.
func (c *Checker) Property(at sim.Cycle, name string, cond bool, format string, args ...any) bool {
	if c == nil {
		return cond
	}
	c.checksRun++
	if cond {
		return true
	}
	c.total++
	v := Violation{At: at, Property: name, Detail: fmt.Sprintf(format, args...)}
	if c.PanicOnProperty {
		panic("check: " + v.String())
	}
	limit := c.Limit
	if limit == 0 {
		limit = DefaultLimit
	}
	if len(c.violations) < limit {
		c.violations = append(c.violations, v)
	}
	return false
}

// Violations returns the stored violations (up to the cap).
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.violations
}

// Total returns the number of property violations, including those past
// the storage cap.
func (c *Checker) Total() uint64 {
	if c == nil {
		return 0
	}
	return c.total
}

// ChecksRun returns how many property evaluations ran.
func (c *Checker) ChecksRun() uint64 {
	if c == nil {
		return 0
	}
	return c.checksRun
}

// AssertsRun returns how many model assertions ran.
func (c *Checker) AssertsRun() uint64 {
	if c == nil {
		return 0
	}
	return c.asserts
}

// Report writes the violation list.
func (c *Checker) Report(w io.Writer) {
	if c == nil || c.total == 0 {
		fmt.Fprintln(w, "properties: no violations")
		return
	}
	fmt.Fprintf(w, "properties: %d violation(s), %d shown\n", c.total, len(c.violations))
	for _, v := range c.violations {
		fmt.Fprintf(w, "  %s\n", v)
	}
}

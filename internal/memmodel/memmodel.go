// Package memmodel provides the sparse byte-addressable backing store
// behind the DDR device model. The paper abstracts the DDR datapath in
// the TLM ("the data path is highly abstracted to increase simulation
// speed"); here the datapath is this store, shared by both abstraction
// levels so end-to-end data integrity can be checked across models.
package memmodel

import (
	"sort"
	"sync"
)

const pageShift = 12 // 4 KiB pages
const pageSize = 1 << pageShift
const pageMask = pageSize - 1

// pagePool recycles page frames across Memory instances. Simulation
// harnesses construct a fresh Memory per run; without recycling, page
// allocation dominates the allocation profile of short runs (the pages
// are the overwhelming majority of bytes a run allocates). Pages are
// zeroed when returned, so a pooled frame is indistinguishable from a
// fresh one.
var pagePool = sync.Pool{New: func() any { return new([pageSize]byte) }}

// Memory is a sparse byte-addressable store. The zero value is an empty
// memory in which every byte reads as zero. Memory is not safe for
// concurrent use; the simulators are single-goroutine by design.
type Memory struct {
	pages map[uint32]*[pageSize]byte
	// One-entry page cache: simulated traffic is strongly page-local
	// (sequential bursts, streams), so most accesses skip the map.
	lastKey  uint32
	lastPage *[pageSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	key := addr >> pageShift
	if m.lastPage != nil && m.lastKey == key {
		return m.lastPage
	}
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	p := m.pages[key]
	if p == nil && create {
		p = pagePool.Get().(*[pageSize]byte)
		m.pages[key] = p
	}
	if p != nil {
		m.lastKey, m.lastPage = key, p
	}
	return p
}

// Release returns every page frame to the shared pool and empties the
// memory. Call it when a simulation run is finished with its backing
// store; using the Memory afterwards is valid (it reads as all zeroes
// again). Releasing is what makes back-to-back runs — benchmarks, the
// run farm — allocation-free in steady state.
func (m *Memory) Release() {
	if m == nil {
		return
	}
	for k, p := range m.pages {
		*p = [pageSize]byte{}
		pagePool.Put(p)
		delete(m.pages, k)
	}
	m.lastKey, m.lastPage = 0, nil
}

// ByteAt returns the byte at addr (zero if never written).
func (m *Memory) ByteAt(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint32, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read fills dst with the bytes starting at addr.
func (m *Memory) Read(addr uint32, dst []byte) {
	for len(dst) > 0 {
		off := addr & pageMask
		n := pageSize - int(off)
		if n > len(dst) {
			n = len(dst)
		}
		if p := m.page(addr, false); p != nil {
			copy(dst[:n], p[off:int(off)+n])
		} else {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += uint32(n)
	}
}

// Write stores src starting at addr.
func (m *Memory) Write(addr uint32, src []byte) {
	for len(src) > 0 {
		off := addr & pageMask
		n := pageSize - int(off)
		if n > len(src) {
			n = len(src)
		}
		copy(m.page(addr, true)[off:int(off)+n], src[:n])
		src = src[n:]
		addr += uint32(n)
	}
}

// ReadWord returns the little-endian n-byte word at addr (n in 1..8).
func (m *Memory) ReadWord(addr uint32, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(m.ByteAt(addr+uint32(i))) << (8 * i)
	}
	return v
}

// WriteWord stores the little-endian n-byte word v at addr (n in 1..8).
func (m *Memory) WriteWord(addr uint32, v uint64, n int) {
	for i := 0; i < n; i++ {
		m.SetByte(addr+uint32(i), byte(v>>(8*i)))
	}
}

// PagesAllocated returns the number of 4 KiB pages backed by storage.
func (m *Memory) PagesAllocated() int { return len(m.pages) }

// Snapshot returns the sorted list of allocated page base addresses;
// useful for debugging footprint in tests.
func (m *Memory) Snapshot() []uint32 {
	keys := make([]uint32, 0, len(m.pages))
	for k := range m.pages {
		keys = append(keys, k<<pageShift)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

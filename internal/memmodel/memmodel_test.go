package memmodel

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueReadsZero(t *testing.T) {
	var m Memory
	if m.ByteAt(0x1234) != 0 {
		t.Fatal("unwritten byte should read zero")
	}
	buf := make([]byte, 64)
	m.Read(0xFFFF0, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten range should read zero")
		}
	}
}

func TestByteRoundTrip(t *testing.T) {
	m := New()
	m.SetByte(0x100, 0xAB)
	if m.ByteAt(0x100) != 0xAB {
		t.Fatal("byte round trip failed")
	}
	if m.ByteAt(0x101) != 0 {
		t.Fatal("adjacent byte disturbed")
	}
}

func TestBlockCrossingPages(t *testing.T) {
	m := New()
	// Straddle a 4 KiB page boundary.
	addr := uint32(0x1FF8)
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	m.Write(addr, src)
	dst := make([]byte, len(src))
	m.Read(addr, dst)
	if !bytes.Equal(src, dst) {
		t.Fatalf("cross-page round trip: got %v want %v", dst, src)
	}
	if m.PagesAllocated() != 2 {
		t.Fatalf("expected 2 pages allocated, got %d", m.PagesAllocated())
	}
}

func TestWordRoundTrip(t *testing.T) {
	m := New()
	m.WriteWord(0x200, 0xDEADBEEF, 4)
	if got := m.ReadWord(0x200, 4); got != 0xDEADBEEF {
		t.Fatalf("word round trip: %#x", got)
	}
	// Little-endian layout.
	if m.ByteAt(0x200) != 0xEF || m.ByteAt(0x203) != 0xDE {
		t.Fatal("word not little-endian")
	}
	m.WriteWord(0x300, 0x1122334455667788, 8)
	if got := m.ReadWord(0x300, 8); got != 0x1122334455667788 {
		t.Fatalf("8-byte word round trip: %#x", got)
	}
}

func TestSnapshotSorted(t *testing.T) {
	m := New()
	m.SetByte(0x9000, 1)
	m.SetByte(0x1000, 1)
	m.SetByte(0x5000, 1)
	snap := m.Snapshot()
	want := []uint32{0x1000, 0x5000, 0x9000}
	if len(snap) != len(want) {
		t.Fatalf("snapshot %v", snap)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot %v, want %v", snap, want)
		}
	}
}

// Property: any sequence of block writes followed by reads returns the
// most recently written data, like a flat array would.
func TestMemoryMatchesFlatArray(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		ref := make([]byte, 1<<16)
		for op := 0; op < 50; op++ {
			addr := uint32(rng.Intn(len(ref) - 256))
			n := rng.Intn(256) + 1
			if rng.Intn(2) == 0 {
				blk := make([]byte, n)
				rng.Read(blk)
				m.Write(addr, blk)
				copy(ref[addr:], blk)
			} else {
				got := make([]byte, n)
				m.Read(addr, got)
				if !bytes.Equal(got, ref[addr:int(addr)+n]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWrite64(b *testing.B) {
	m := New()
	buf := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Write(uint32(i*64)&0xFFFFF, buf)
	}
}

package sim

import (
	"errors"
	"fmt"
)

// Component is a hardware block simulated by the two-phase cycle-based
// Kernel. On every cycle the kernel first calls Eval on every component
// (phase 1: compute next state from the current, stable signal values)
// and then Update on every component (phase 2: commit next state so it
// becomes visible in the following cycle). This is the classic two-step
// cycle-based scheme: no delta cycles, no event sensitivity lists.
type Component interface {
	// Name identifies the component in error messages and traces.
	Name() string
	// Eval computes the component's next state from currently visible
	// signal values. It must not make its own writes visible to other
	// components within the same cycle.
	Eval(now Cycle)
	// Update commits the state computed by Eval.
	Update(now Cycle)
}

// Kernel is the two-phase cycle-based simulation kernel used by the
// pin-accurate model. Components are evaluated in registration order in
// phase 1 and committed in the same order in phase 2; because phase-1
// reads only see phase-2 (committed) values, registration order does not
// affect results.
type Kernel struct {
	comps   []Component
	now     Cycle
	stopped bool
	stopMsg string
}

// ErrStopped is returned by Run when a component requested a stop via
// Kernel.Stop before the requested cycle count elapsed.
var ErrStopped = errors.New("sim: stopped by component request")

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Register adds a component to the kernel. Registering the same
// component twice is a programming error and panics.
func (k *Kernel) Register(c Component) {
	for _, existing := range k.comps {
		if existing == c {
			panic(fmt.Sprintf("sim: component %q registered twice", c.Name()))
		}
	}
	k.comps = append(k.comps, c)
}

// Components returns the number of registered components.
func (k *Kernel) Components() int { return len(k.comps) }

// Now returns the current simulation cycle. During Eval/Update callbacks
// it is the cycle being simulated.
func (k *Kernel) Now() Cycle { return k.now }

// Stop requests that the simulation stop after the current cycle
// completes (both phases still run for every component). The message is
// reported through StopReason.
func (k *Kernel) Stop(msg string) {
	k.stopped = true
	k.stopMsg = msg
}

// StopReason returns the message passed to Stop, or "" if no stop was
// requested.
func (k *Kernel) StopReason() string { return k.stopMsg }

// Step simulates exactly one cycle: phase 1 (Eval) over all components,
// then phase 2 (Update), then the cycle counter advances.
func (k *Kernel) Step() {
	now := k.now
	for _, c := range k.comps {
		c.Eval(now)
	}
	for _, c := range k.comps {
		c.Update(now)
	}
	k.now++
}

// Run simulates n cycles, or fewer if a component calls Stop. It returns
// the number of cycles actually simulated and ErrStopped if the run was
// cut short.
func (k *Kernel) Run(n Cycle) (Cycle, error) {
	start := k.now
	for i := Cycle(0); i < n; i++ {
		k.Step()
		if k.stopped {
			return k.now - start, ErrStopped
		}
	}
	return k.now - start, nil
}

// RunUntil simulates cycles until pred returns true (checked after each
// cycle) or the limit is reached. It returns the number of cycles
// simulated and whether the predicate was satisfied.
func (k *Kernel) RunUntil(pred func() bool, limit Cycle) (Cycle, bool) {
	start := k.now
	for k.now-start < limit {
		k.Step()
		if pred() {
			return k.now - start, true
		}
		if k.stopped {
			return k.now - start, false
		}
	}
	return k.now - start, false
}

package sim

import (
	"errors"
	"fmt"
)

// Component is a hardware block simulated by the two-phase cycle-based
// Kernel. On every cycle the kernel first calls Eval on every component
// (phase 1: compute next state from the current, stable signal values)
// and then Update on every component (phase 2: commit next state so it
// becomes visible in the following cycle). This is the classic two-step
// cycle-based scheme: no delta cycles, no event sensitivity lists.
type Component interface {
	// Name identifies the component in error messages and traces.
	Name() string
	// Eval computes the component's next state from currently visible
	// signal values. It must not make its own writes visible to other
	// components within the same cycle.
	Eval(now Cycle)
	// Update commits the state computed by Eval.
	Update(now Cycle)
}

// Sleeper is an optional Component extension enabling clock gating: a
// component that reports itself quiescent is skipped (neither Eval nor
// Update runs) until either its reported wake cycle arrives or a
// watched register (see Reg.Notify) commits a new value. Quiescence
// must be conservative: a sleeping component is promised bit-identical
// behaviour to an always-evaluated one, so a component may only report
// quiescent when, absent a watched-signal change, every future Eval up
// to the wake cycle would be a no-op.
type Sleeper interface {
	Component
	// Quiescent is polled after the Update phase. ok reports whether
	// the component may be gated; wakeAt is the first future cycle at
	// which it has time-driven work again (CycleMax when only a watched
	// signal can wake it).
	Quiescent(now Cycle) (wakeAt Cycle, ok bool)
}

// kcomp is a registered component plus its gating state.
type kcomp struct {
	c        Component
	sl       Sleeper // nil when the component cannot be gated
	asleep   bool
	wakeAt   Cycle
	signaled Cycle // last cycle a watched register committed a change
}

// Kernel is the two-phase cycle-based simulation kernel used by the
// pin-accurate model. Components are evaluated in registration order in
// phase 1 and committed in the same order in phase 2; because phase-1
// reads only see phase-2 (committed) values, registration order does not
// affect results. Components implementing Sleeper are clock gated while
// quiescent, and when every registered component sleeps the kernel
// fast-forwards the cycle counter to the earliest wake — the cycle
// count and all visible state remain exactly as if every cycle had been
// stepped.
type Kernel struct {
	// GateDisabled turns clock gating off: every component is evaluated
	// every cycle, exactly as the pre-gating kernel behaved. Gating is
	// required to be observation-equivalent, so this exists for
	// differential tests and debugging, not configuration.
	GateDisabled bool

	comps    []kcomp
	now      Cycle
	stopped  bool
	stopMsg  string
	sleeping int
	gateable int
}

// ErrStopped is returned by Run when a component requested a stop via
// Kernel.Stop before the requested cycle count elapsed.
var ErrStopped = errors.New("sim: stopped by component request")

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Register adds a component to the kernel. Registering the same
// component twice is a programming error and panics.
func (k *Kernel) Register(c Component) {
	for i := range k.comps {
		if k.comps[i].c == c {
			panic(fmt.Sprintf("sim: component %q registered twice", c.Name()))
		}
	}
	kc := kcomp{c: c, signaled: CycleMax}
	if sl, ok := c.(Sleeper); ok {
		kc.sl = sl
		k.gateable++
	}
	k.comps = append(k.comps, kc)
}

// Waker returns a wake handle for a registered component, for wiring to
// watched registers via Reg.Notify. It panics if c is not registered.
func (k *Kernel) Waker(c Component) *Waker {
	for i := range k.comps {
		if k.comps[i].c == c {
			return &Waker{k: k, idx: i}
		}
	}
	panic(fmt.Sprintf("sim: waker for unregistered component %q", c.Name()))
}

// Waker wakes one gated component when a watched register commits.
type Waker struct {
	k   *Kernel
	idx int
}

// Wake marks the component's watched input as changed this cycle: a
// sleeping component resumes evaluation next cycle, and an awake one is
// prevented from gating itself at the end of this cycle (it has not yet
// observed the new value).
func (w *Waker) Wake() {
	cs := &w.k.comps[w.idx]
	cs.signaled = w.k.now
	if cs.asleep {
		cs.asleep = false
		w.k.sleeping--
	}
}

// Components returns the number of registered components.
func (k *Kernel) Components() int { return len(k.comps) }

// Sleeping returns the number of currently gated components.
func (k *Kernel) Sleeping() int { return k.sleeping }

// Now returns the current simulation cycle. During Eval/Update callbacks
// it is the cycle being simulated.
func (k *Kernel) Now() Cycle { return k.now }

// Stop requests that the simulation stop after the current cycle
// completes (both phases still run for every component). The message is
// reported through StopReason.
func (k *Kernel) Stop(msg string) {
	k.stopped = true
	k.stopMsg = msg
}

// StopReason returns the message passed to Stop, or "" if no stop was
// requested.
func (k *Kernel) StopReason() string { return k.stopMsg }

// Step simulates exactly one cycle: phase 1 (Eval) over all awake
// components, then phase 2 (Update), then gating decisions, then the
// cycle counter advances.
func (k *Kernel) Step() {
	now := k.now
	for i := range k.comps {
		cs := &k.comps[i]
		if cs.asleep {
			if now < cs.wakeAt {
				continue
			}
			cs.asleep = false
			k.sleeping--
		}
		cs.c.Eval(now)
	}
	for i := range k.comps {
		cs := &k.comps[i]
		if cs.asleep {
			continue
		}
		cs.c.Update(now)
	}
	if k.gateable > 0 && !k.GateDisabled {
		for i := range k.comps {
			cs := &k.comps[i]
			if cs.sl == nil || cs.asleep || cs.signaled == now {
				continue
			}
			// A watched register may have committed during this cycle's
			// Update phase after this component's own Update ran; the
			// signaled stamp above catches that and keeps it awake.
			if wakeAt, ok := cs.sl.Quiescent(now); ok && wakeAt > now+1 {
				cs.asleep = true
				cs.wakeAt = wakeAt
				k.sleeping++
			}
		}
	}
	k.now++
}

// fastForward advances the clock without stepping while every component
// sleeps, stopping at the earliest wake cycle or the horizon (the first
// cycle that must not be simulated). With every component quiescent no
// state can change, so the skipped cycles are bit-identical no-ops.
func (k *Kernel) fastForward(horizon Cycle) {
	if k.sleeping != len(k.comps) || len(k.comps) == 0 {
		return
	}
	wake := CycleMax
	for i := range k.comps {
		if w := k.comps[i].wakeAt; w < wake {
			wake = w
		}
	}
	if wake > horizon {
		wake = horizon
	}
	if wake > k.now {
		k.now = wake
	}
}

// Run simulates n cycles, or fewer if a component calls Stop. It returns
// the number of cycles actually simulated and ErrStopped if the run was
// cut short.
func (k *Kernel) Run(n Cycle) (Cycle, error) {
	start := k.now
	end := start.AddSat(n)
	for k.now < end {
		k.fastForward(end)
		if k.now >= end {
			break
		}
		k.Step()
		if k.stopped {
			return k.now - start, ErrStopped
		}
	}
	return k.now - start, nil
}

// RunUntil simulates cycles until pred returns true (checked after each
// cycle) or the limit is reached. It returns the number of cycles
// simulated and whether the predicate was satisfied. pred must be a
// pure observation: while every component sleeps its value cannot
// change, which lets the kernel fast-forward gated stretches.
func (k *Kernel) RunUntil(pred func() bool, limit Cycle) (Cycle, bool) {
	start := k.now
	end := start.AddSat(limit)
	for k.now < end {
		k.fastForward(end)
		if k.now >= end {
			break
		}
		k.Step()
		if pred() {
			return k.now - start, true
		}
		if k.stopped {
			return k.now - start, false
		}
	}
	return k.now - start, false
}

package sim

import "testing"

// BenchmarkSchedulerPostDispatch measures the steady-state event cycle
// of the wheel: post via the EventFn fast path, dispatch, recycle. The
// headline number is allocs/op — the tentpole claim is zero-allocation
// steady-state scheduling.
func BenchmarkSchedulerPostDispatch(b *testing.B) {
	s := NewScheduler()
	noop := func(Cycle, any, uint64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Post(s.Now()+3, noop, nil, 0)
		s.Run(s.Now() + 4)
	}
}

// BenchmarkSchedulerPostDispatchSparse spaces events ~100 cycles apart,
// the duty cycle of the paper's think-time workloads, exercising the
// bucket-skip path.
func BenchmarkSchedulerPostDispatchSparse(b *testing.B) {
	s := NewScheduler()
	noop := func(Cycle, any, uint64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Post(s.Now()+97, noop, nil, 0)
		s.Run(s.Now() + 100)
	}
}

// BenchmarkSchedulerClosureAt measures the legacy closure-compatible
// path for comparison (the closure's captures may allocate).
func BenchmarkSchedulerClosureAt(b *testing.B) {
	s := NewScheduler()
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+3, func(Cycle) { sink++ })
		s.Run(s.Now() + 4)
	}
}

// BenchmarkSchedulerCancel measures cancel + repost, the TLM's
// arbitration-rescheduling pattern.
func BenchmarkSchedulerCancel(b *testing.B) {
	s := NewScheduler()
	noop := func(Cycle, any, uint64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := s.Post(s.Now()+50, noop, nil, 0)
		s.Cancel(id)
		s.Post(s.Now()+2, noop, nil, 0)
		s.Run(s.Now() + 3)
	}
}

// tickComp is a minimal always-on component for kernel benchmarks.
type tickComp struct{ n int }

func (c *tickComp) Name() string     { return "tick" }
func (c *tickComp) Eval(now Cycle)   { c.n++ }
func (c *tickComp) Update(now Cycle) {}

// gatedComp sleeps with a long timed wake, modeling an idle block.
type gatedComp struct{ n int }

func (c *gatedComp) Name() string     { return "gated" }
func (c *gatedComp) Eval(now Cycle)   { c.n++ }
func (c *gatedComp) Update(now Cycle) {}
func (c *gatedComp) Quiescent(now Cycle) (Cycle, bool) {
	return now + 1000, true
}

// BenchmarkKernelTickBusy is the per-cycle cost with every component
// evaluated (the pre-gating kernel behaviour).
func BenchmarkKernelTickBusy(b *testing.B) {
	k := NewKernel()
	for i := 0; i < 8; i++ {
		k.Register(&tickComp{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

// BenchmarkKernelTickGated is the same platform with every component
// quiescent: the kernel fast-forwards across the gated stretch, so the
// per-simulated-cycle cost collapses.
func BenchmarkKernelTickGated(b *testing.B) {
	k := NewKernel()
	for i := 0; i < 8; i++ {
		k.Register(&gatedComp{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Run(1000)
	}
	b.ReportMetric(float64(uint64(k.Now()))/float64(b.N), "cycles/op")
}

package sim

import "container/heap"

// Event is a callback scheduled at a specific cycle on a Scheduler.
type Event struct {
	at  Cycle
	seq uint64 // FIFO tie-break for events at the same cycle
	fn  func(now Cycle)
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a cycle-keyed event wheel: the execution engine of the
// method-based TLM. Unlike the cycle-based Kernel it advances directly
// to the next scheduled event, skipping quiescent cycles entirely.
// Events at the same cycle run in scheduling (FIFO) order, which keeps
// runs deterministic.
type Scheduler struct {
	q       eventHeap
	now     Cycle
	seq     uint64
	stopped bool
	stopMsg string
	free    []*Event // recycled event records
}

// NewScheduler returns an empty scheduler at cycle 0.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current cycle; inside an event callback it is the
// cycle the event was scheduled for.
func (s *Scheduler) Now() Cycle { return s.now }

// At schedules fn to run at cycle c. Scheduling in the past (c < Now)
// panics: it indicates a causality bug in the model.
func (s *Scheduler) At(c Cycle, fn func(now Cycle)) {
	if c < s.now {
		panic("sim: event scheduled in the past")
	}
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
		e.at, e.seq, e.fn = c, s.seq, fn
	} else {
		e = &Event{at: c, seq: s.seq, fn: fn}
	}
	heap.Push(&s.q, e)
}

// After schedules fn to run d cycles from now.
func (s *Scheduler) After(d Cycle, fn func(now Cycle)) {
	s.At(s.now.AddSat(d), fn)
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.q) }

// PeekNext returns the cycle of the earliest queued event, or CycleMax
// if the queue is empty.
func (s *Scheduler) PeekNext() Cycle {
	if len(s.q) == 0 {
		return CycleMax
	}
	return s.q[0].at
}

// Stop requests that Run return after the currently executing event.
func (s *Scheduler) Stop(msg string) {
	s.stopped = true
	s.stopMsg = msg
}

// StopReason returns the message passed to Stop, or "".
func (s *Scheduler) StopReason() string { return s.stopMsg }

// Run executes events in cycle order until the queue drains, the cycle
// limit would be exceeded, or Stop is called. It returns the cycle the
// scheduler stopped at: the cycle of the last executed event, or limit
// if the first unexecuted event lies beyond it.
func (s *Scheduler) Run(limit Cycle) Cycle {
	for len(s.q) > 0 && !s.stopped {
		if s.q[0].at > limit {
			s.now = limit
			return s.now
		}
		e := heap.Pop(&s.q).(*Event)
		s.now = e.at
		fn := e.fn
		e.fn = nil
		if len(s.free) < 64 {
			s.free = append(s.free, e)
		}
		fn(s.now)
	}
	return s.now
}

// RunAll executes events until the queue drains or Stop is called, with
// no cycle limit.
func (s *Scheduler) RunAll() Cycle {
	return s.Run(CycleMax)
}

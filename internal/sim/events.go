package sim

import "math/bits"

// EventFn is a scheduled callback. Instead of a capturing closure, hot
// paths pass a static function plus an owner (typically the component
// the event belongs to, a pointer — boxed without allocation) and an
// opaque argument word. Steady-state scheduling is thereby allocation
// free: the scheduler recycles slab entries and never materializes a
// closure.
type EventFn func(now Cycle, owner any, arg uint64)

// EventID identifies a queued event for Cancel. The zero value (NoEvent)
// is never a valid id. Ids are generation-tagged: once an event has run
// or been cancelled, its id goes stale and Cancel on it reports false.
type EventID uint64

// NoEvent is the invalid EventID.
const NoEvent EventID = 0

// event is one slab entry: a queued callback threaded into an intrusive
// per-bucket FIFO list via next.
type event struct {
	at    Cycle
	fn    EventFn
	owner any
	arg   uint64
	next  int32
	gen   uint32
	live  bool
}

// list is an intrusive FIFO of slab indices (-1 = empty).
type list struct{ head, tail int32 }

// bitset tracks which of the 256 buckets of a wheel level are occupied,
// so the dispatcher can jump to the next event instead of probing empty
// buckets one cycle at a time.
type bitset [wheelSlots / 64]uint64

func (b *bitset) set(i uint32)   { b[i>>6] |= 1 << (i & 63) }
func (b *bitset) clear(i uint32) { b[i>>6] &^= 1 << (i & 63) }
func (b *bitset) any() bool      { return b[0]|b[1]|b[2]|b[3] != 0 }

// nextFrom returns the first set bit at position >= i, or -1.
func (b *bitset) nextFrom(i uint32) int32 {
	if i >= wheelSlots {
		return -1
	}
	w := i >> 6
	m := b[w] & (^uint64(0) << (i & 63))
	for {
		if m != 0 {
			return int32(w<<6) + int32(bits.TrailingZeros64(m))
		}
		w++
		if w >= uint32(len(b)) {
			return -1
		}
		m = b[w]
	}
}

const (
	wheelBits  = 8
	wheelSlots = 1 << wheelBits // 256 one-cycle buckets per level
	wheelMask  = wheelSlots - 1
)

// Scheduler is the execution engine of the method-based TLM: a
// two-level hierarchical event wheel over a slab of recycled event
// records. Unlike the cycle-based Kernel it advances directly to the
// next scheduled event, skipping quiescent cycles entirely.
//
// Level 0 holds the 256 cycles of the current block (at>>8 == l0Block),
// one single-cycle FIFO bucket each; level 1 holds the following 255
// blocks, one 256-cycle bucket each; anything further out waits in an
// overflow list. Buckets cascade downward as time advances. Events at
// the same cycle run in scheduling (FIFO) order, which keeps runs
// deterministic, and steady-state Post/dispatch performs no heap
// allocation: event records live in a slab and are recycled through an
// intrusive free list.
type Scheduler struct {
	now     Cycle
	stopped bool
	stopMsg string

	slab     []event
	freeHead int32

	l0      [wheelSlots]list
	l1      [wheelSlots]list
	l0Bits  bitset // occupancy of the level-0 buckets
	l1Bits  bitset // occupancy of the level-1 buckets
	l0Block Cycle  // block number (cycle>>8) the level-0 wheel covers

	far    []int32 // beyond the level-1 horizon, in scheduling order
	farMin Cycle   // lower bound on the earliest live far event

	count int // live (pending) events
}

// NewScheduler returns an empty scheduler at cycle 0.
func NewScheduler() *Scheduler {
	s := &Scheduler{freeHead: -1, farMin: CycleMax}
	for i := range s.l0 {
		s.l0[i] = list{head: -1, tail: -1}
		s.l1[i] = list{head: -1, tail: -1}
	}
	return s
}

// Now returns the current cycle; inside an event callback it is the
// cycle the event was scheduled for.
func (s *Scheduler) Now() Cycle { return s.now }

// Pending returns the number of queued (not yet executed or cancelled)
// events.
func (s *Scheduler) Pending() int { return s.count }

// Stop requests that Run return after the currently executing event.
func (s *Scheduler) Stop(msg string) {
	s.stopped = true
	s.stopMsg = msg
}

// StopReason returns the message passed to Stop, or "".
func (s *Scheduler) StopReason() string { return s.stopMsg }

// alloc takes a slab entry from the free list or grows the slab.
func (s *Scheduler) alloc() int32 {
	if s.freeHead >= 0 {
		idx := s.freeHead
		s.freeHead = s.slab[idx].next
		return idx
	}
	s.slab = append(s.slab, event{})
	return int32(len(s.slab) - 1)
}

// release returns a slab entry to the free list, bumping its generation
// so outstanding EventIDs for it go stale.
func (s *Scheduler) release(idx int32) {
	e := &s.slab[idx]
	e.gen++
	e.fn = nil
	e.owner = nil
	e.live = false
	e.next = s.freeHead
	s.freeHead = idx
}

// push appends a slab entry to a bucket FIFO.
func (s *Scheduler) push(l *list, idx int32) {
	s.slab[idx].next = -1
	if l.tail < 0 {
		l.head, l.tail = idx, idx
	} else {
		s.slab[l.tail].next = idx
		l.tail = idx
	}
}

// popHead removes and returns the first entry of a bucket FIFO.
func (s *Scheduler) popHead(l *list) int32 {
	idx := l.head
	l.head = s.slab[idx].next
	if l.head < 0 {
		l.tail = -1
	}
	return idx
}

// Post schedules fn(c, owner, arg) at cycle c and returns an id usable
// with Cancel. Scheduling in the past (c < Now) panics: it indicates a
// causality bug in the model.
func (s *Scheduler) Post(c Cycle, fn EventFn, owner any, arg uint64) EventID {
	if c < s.now {
		panic("sim: event scheduled in the past")
	}
	if !s.l0Bits.any() && !s.l1Bits.any() {
		// Both wheel levels are empty: re-anchor the window at the
		// current cycle so the new event lands as low as possible.
		s.l0Block = s.now >> wheelBits
	}
	idx := s.alloc()
	e := &s.slab[idx]
	e.at, e.fn, e.owner, e.arg, e.live = c, fn, owner, arg, true
	s.count++
	blk := c >> wheelBits
	// An event at or beyond the earliest far entry must queue behind it
	// in the far list — landing it in either wheel level would let it
	// overtake the far entry (or break same-cycle FIFO order) when the
	// far list is later merged in. The level-0 case is reachable too:
	// the empty-wheel re-anchor above can place l0Block inside a block
	// that still holds a live far event.
	farBlocked := len(s.far) > 0 && c >= s.farMin
	switch {
	case blk == s.l0Block && !farBlocked:
		s.push(&s.l0[c&wheelMask], idx)
		s.l0Bits.set(uint32(c & wheelMask))
	case blk-s.l0Block <= wheelMask && !farBlocked:
		s.push(&s.l1[blk&wheelMask], idx)
		s.l1Bits.set(uint32(blk & wheelMask))
	default:
		s.far = append(s.far, idx)
		if c < s.farMin {
			s.farMin = c
		}
	}
	return EventID(uint64(idx+1) | uint64(e.gen)<<32)
}

// At schedules fn to run at cycle c. This is the closure-compatible
// wrapper over Post; the closure is boxed (func values are
// pointer-shaped, so the boxing itself does not allocate — only
// whatever the closure captures does).
func (s *Scheduler) At(c Cycle, fn func(now Cycle)) {
	s.Post(c, closureEvent, fn, 0)
}

// closureEvent adapts the legacy closure signature onto EventFn.
func closureEvent(now Cycle, owner any, _ uint64) {
	owner.(func(Cycle))(now)
}

// After schedules fn to run d cycles from now.
func (s *Scheduler) After(d Cycle, fn func(now Cycle)) {
	s.At(s.now.AddSat(d), fn)
}

// Cancel removes a queued event. It reports whether the id named a
// still-pending event; ids of executed or already-cancelled events are
// stale and return false. The slab entry is reclaimed lazily when the
// wheel next touches its bucket.
func (s *Scheduler) Cancel(id EventID) bool {
	idx := int32(uint32(id)) - 1
	if idx < 0 || int(idx) >= len(s.slab) {
		return false
	}
	e := &s.slab[idx]
	if !e.live || e.gen != uint32(id>>32) {
		return false
	}
	e.live = false
	e.fn = nil
	e.owner = nil
	s.count--
	return true
}

// cascade moves every entry of a level-1 bucket into its level-0
// bucket, preserving scheduling order; cancelled entries are reclaimed.
func (s *Scheduler) cascade(l *list) {
	for l.head >= 0 {
		idx := s.popHead(l)
		e := &s.slab[idx]
		if !e.live {
			s.release(idx)
			continue
		}
		s.push(&s.l0[e.at&wheelMask], idx)
		s.l0Bits.set(uint32(e.at & wheelMask))
	}
}

// mergeFar moves every far entry that fits the current two-level
// window (l0Block unchanged) into the wheel, reclaims cancelled
// entries, and recomputes farMin exactly. Returns true while far work
// remains possible (entries moved or kept).
func (s *Scheduler) mergeFar() bool {
	keep := s.far[:0]
	newMin := CycleMax
	for _, idx := range s.far {
		e := &s.slab[idx]
		if !e.live {
			s.release(idx)
			continue
		}
		blk := e.at >> wheelBits
		switch {
		case blk < s.l0Block:
			panic("sim: far event behind the wheel window")
		case blk == s.l0Block:
			s.push(&s.l0[e.at&wheelMask], idx)
			s.l0Bits.set(uint32(e.at & wheelMask))
		case blk-s.l0Block <= wheelMask:
			s.push(&s.l1[blk&wheelMask], idx)
			s.l1Bits.set(uint32(blk & wheelMask))
		default:
			keep = append(keep, idx)
			if e.at < newMin {
				newMin = e.at
			}
		}
	}
	moved := len(s.far) - len(keep)
	s.far = keep
	s.farMin = newMin
	return moved > 0 || len(keep) > 0
}

// refillFromFar re-anchors the empty wheel at the earliest far event
// and merges every far entry now within the two-level horizon. Only
// legal while both wheel levels are empty (the anchor moves). Returns
// false when no live far events remain.
func (s *Scheduler) refillFromFar() bool {
	anchor := s.farMin >> wheelBits
	if anchor < s.now>>wheelBits {
		anchor = s.now >> wheelBits
	}
	s.l0Block = anchor
	return s.mergeFar()
}

// nextReady finds the earliest live queued event with at <= limit,
// advancing the wheel window as far as the limit allows. It returns the
// unlinked slab index and its cycle, or ok=false when the next event
// (if any) lies beyond the limit.
func (s *Scheduler) nextReady(limit Cycle) (int32, Cycle, bool) {
	for {
		if s.l0Bits.any() {
			base := s.l0Block << wheelBits
			start := s.now
			if start < base {
				start = base
			}
			slot := uint32(start & wheelMask)
			for {
				sl := s.l0Bits.nextFrom(slot)
				if sl < 0 {
					break
				}
				c := base | Cycle(sl)
				l := &s.l0[sl]
				for l.head >= 0 && !s.slab[l.head].live {
					s.release(s.popHead(l)) // reclaim cancelled events
				}
				if l.head < 0 {
					s.l0Bits.clear(uint32(sl))
					slot = uint32(sl)
					continue
				}
				if c > limit {
					return 0, 0, false
				}
				idx := s.popHead(l)
				if l.head < 0 {
					s.l0Bits.clear(uint32(sl))
				}
				return idx, c, true
			}
		}
		if s.l1Bits.any() {
			ls := uint32(s.l0Block & wheelMask)
			sl := s.l1Bits.nextFrom(ls + 1)
			if sl < 0 {
				sl = s.l1Bits.nextFrom(0) // wrapped: later blocks
			}
			delta := Cycle(uint32(sl)-ls) & wheelMask
			if delta == 0 {
				panic("sim: event wheel bookkeeping corrupted")
			}
			blk := s.l0Block + delta
			if len(s.far) > 0 && s.farMin>>wheelBits <= blk {
				// A far event may have drifted into (or before) the
				// window as l0Block advanced: merge before cascading so
				// it cannot be overtaken. farMin is never stale-high,
				// so this triggers whenever a merge could matter; each
				// pass either moves entries or tightens farMin.
				s.mergeFar()
				continue
			}
			if blk<<wheelBits > limit {
				// The earliest remaining event starts beyond the limit;
				// leave the wheel untouched.
				return 0, 0, false
			}
			s.l0Block = blk
			s.l1Bits.clear(uint32(sl))
			s.cascade(&s.l1[sl])
			continue
		}
		if len(s.far) > 0 {
			if s.farMin > limit {
				return 0, 0, false
			}
			if s.refillFromFar() {
				continue
			}
		}
		return 0, 0, false
	}
}

// PeekNext returns the cycle of the earliest queued event, or CycleMax
// if the queue is empty. It does not advance the wheel.
func (s *Scheduler) PeekNext() Cycle {
	if s.count == 0 {
		return CycleMax
	}
	min := CycleMax
	scan := func(l *list) {
		for idx := l.head; idx >= 0; idx = s.slab[idx].next {
			if e := &s.slab[idx]; e.live && e.at < min {
				min = e.at
			}
		}
	}
	for i := range s.l0 {
		scan(&s.l0[i])
		scan(&s.l1[i])
	}
	for _, idx := range s.far {
		if e := &s.slab[idx]; e.live && e.at < min {
			min = e.at
		}
	}
	return min
}

// Run executes events in cycle order until the queue drains, the cycle
// limit would be exceeded, or Stop is called. It returns the cycle the
// scheduler stopped at: the cycle of the last executed event, or limit
// if the first unexecuted event lies beyond it.
func (s *Scheduler) Run(limit Cycle) Cycle {
	for s.count > 0 && !s.stopped {
		idx, at, ok := s.nextReady(limit)
		if !ok {
			s.now = limit
			return s.now
		}
		s.now = at
		e := &s.slab[idx]
		fn, owner, arg := e.fn, e.owner, e.arg
		s.release(idx)
		s.count--
		fn(at, owner, arg)
	}
	return s.now
}

// RunAll executes events until the queue drains or Stop is called, with
// no cycle limit.
func (s *Scheduler) RunAll() Cycle {
	return s.Run(CycleMax)
}

package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// chaosComp flips registered state based on other components' committed
// values; used to stress order-invariance with many components.
type chaosComp struct {
	id    int
	peers []*chaosComp
	v     *Reg[uint64]
}

func (c *chaosComp) Name() string { return "chaos" }
func (c *chaosComp) Eval(now Cycle) {
	acc := c.v.Get()*1099511628211 + uint64(c.id)
	for _, p := range c.peers {
		acc ^= p.v.Get()
	}
	c.v.Set(acc)
}
func (c *chaosComp) Update(now Cycle) { c.v.Commit() }

// TestKernelOrderInvarianceProperty: any registration order of mutually
// reading components yields identical state trajectories.
func TestKernelOrderInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		build := func(perm []int) uint64 {
			n := 6
			comps := make([]*chaosComp, n)
			for i := range comps {
				comps[i] = &chaosComp{id: i, v: NewReg(uint64(i + 1))}
			}
			for i := range comps {
				comps[i].peers = []*chaosComp{comps[(i+1)%n], comps[(i+3)%n]}
			}
			k := NewKernel()
			for _, idx := range perm {
				k.Register(comps[idx])
			}
			if _, err := k.Run(50); err != nil {
				t.Fatal(err)
			}
			var h uint64
			for _, c := range comps {
				h = h*31 + c.v.Get()
			}
			return h
		}
		rng := rand.New(rand.NewSource(seed))
		identity := []int{0, 1, 2, 3, 4, 5}
		perm := rng.Perm(6)
		return build(identity) == build(perm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerEventStorm pushes tens of thousands of events with
// identical and clustered timestamps.
func TestSchedulerEventStorm(t *testing.T) {
	s := NewScheduler()
	const n = 50_000
	count := 0
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		s.At(Cycle(rng.Intn(100)), func(Cycle) { count++ })
	}
	s.RunAll()
	if count != n {
		t.Fatalf("executed %d/%d", count, n)
	}
}

// TestSchedulerReentrantScheduling: events scheduling at their own
// cycle run within the same cycle, in FIFO order after existing events.
func TestSchedulerReentrantScheduling(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.At(5, func(now Cycle) {
		order = append(order, "a")
		s.At(now, func(Cycle) { order = append(order, "c") })
	})
	s.At(5, func(Cycle) { order = append(order, "b") })
	s.RunAll()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestSchedulerEventPoolReuse: the free list must never deliver a stale
// callback.
func TestSchedulerEventPoolReuse(t *testing.T) {
	s := NewScheduler()
	seen := map[int]int{}
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			i := i
			s.At(s.Now()+Cycle(1+i%7), func(Cycle) { seen[i]++ })
		}
		s.RunAll()
	}
	for i, n := range seen {
		if n != 10 {
			t.Fatalf("callback %d ran %d times, want 10", i, n)
		}
	}
}

// TestRegWithStructValues: registers of composite types behave by value.
func TestRegWithStructValues(t *testing.T) {
	type pair struct {
		A, B int
	}
	r := NewReg(pair{1, 2})
	v := r.Get()
	v.A = 99 // mutating the copy must not leak into the register
	if r.Get().A != 1 {
		t.Fatal("register leaked a reference")
	}
	r.Set(pair{3, 4})
	if r.Get() != (pair{1, 2}) {
		t.Fatal("set visible before commit")
	}
	r.Commit()
	if r.Get() != (pair{3, 4}) {
		t.Fatal("commit failed")
	}
}

// TestKernelLongRun: the kernel sustains millions of cycles without
// drift in the cycle counter.
func TestKernelLongRun(t *testing.T) {
	k := NewKernel()
	c := newCounter()
	k.Register(c)
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 1_000_000 || c.Value() != 1_000_000 {
		t.Fatalf("drift: now=%v counter=%d", k.Now(), c.Value())
	}
}

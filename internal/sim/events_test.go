package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchedulerRunsInCycleOrder(t *testing.T) {
	s := NewScheduler()
	var got []Cycle
	for _, c := range []Cycle{30, 10, 20, 10, 5} {
		c := c
		s.At(c, func(now Cycle) {
			if now != c {
				t.Errorf("event scheduled at %v ran at %v", c, now)
			}
			got = append(got, now)
		})
	}
	s.RunAll()
	want := []Cycle{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSchedulerFIFOWithinCycle(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func(Cycle) { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events ran out of FIFO order: %v", order)
		}
	}
}

func TestSchedulerEventsCanScheduleEvents(t *testing.T) {
	s := NewScheduler()
	hops := 0
	var hop func(now Cycle)
	hop = func(now Cycle) {
		hops++
		if hops < 5 {
			s.After(3, hop)
		}
	}
	s.At(0, hop)
	end := s.RunAll()
	if hops != 5 {
		t.Fatalf("hops = %d, want 5", hops)
	}
	if end != 12 { // 0,3,6,9,12
		t.Fatalf("final cycle = %v, want 12", end)
	}
}

func TestSchedulerLimitStopsBeforeEvent(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.At(100, func(Cycle) { ran = true })
	end := s.Run(50)
	if ran {
		t.Fatal("event beyond limit ran")
	}
	if end != 50 {
		t.Fatalf("Run returned %v, want 50", end)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	// Resuming past the limit runs the event.
	s.Run(200)
	if !ran {
		t.Fatal("event did not run after raising limit")
	}
}

func TestSchedulerPastSchedulingPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func(now Cycle) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(now-1, func(Cycle) {})
	})
	s.RunAll()
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := Cycle(0); i < 10; i++ {
		s.At(i, func(now Cycle) {
			count++
			if now == 3 {
				s.Stop("enough")
			}
		})
	}
	s.RunAll()
	if count != 4 {
		t.Fatalf("ran %d events, want 4", count)
	}
	if s.StopReason() != "enough" {
		t.Fatalf("StopReason = %q", s.StopReason())
	}
}

func TestSchedulerPeekNext(t *testing.T) {
	s := NewScheduler()
	if s.PeekNext() != CycleMax {
		t.Fatal("PeekNext on empty queue should be CycleMax")
	}
	s.At(42, func(Cycle) {})
	s.At(17, func(Cycle) {})
	if s.PeekNext() != 17 {
		t.Fatalf("PeekNext = %v, want 17", s.PeekNext())
	}
}

// Property: for any random schedule, events execute in nondecreasing
// cycle order and every event executes exactly once.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		cycles := make([]Cycle, n)
		var executed []Cycle
		for i := 0; i < n; i++ {
			c := Cycle(rng.Intn(1000))
			cycles[i] = c
			s.At(c, func(now Cycle) { executed = append(executed, now) })
		}
		s.RunAll()
		if len(executed) != n {
			return false
		}
		if !sort.SliceIsSorted(executed, func(i, j int) bool { return executed[i] < executed[j] }) {
			return false
		}
		sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
		for i := range cycles {
			if cycles[i] != executed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCycleHelpers(t *testing.T) {
	if MaxCycle(3, 5) != 5 || MaxCycle(5, 3) != 5 {
		t.Fatal("MaxCycle")
	}
	if MinCycle(3, 5) != 3 || MinCycle(5, 3) != 3 {
		t.Fatal("MinCycle")
	}
	if CycleMax.AddSat(10) != CycleMax {
		t.Fatal("AddSat should saturate")
	}
	if Cycle(5).SubFloor(7) != 0 {
		t.Fatal("SubFloor should floor at zero")
	}
	if Cycle(7).SubFloor(5) != 2 {
		t.Fatal("SubFloor arithmetic")
	}
	if Cycle(3).String() != "cyc3" || CycleMax.String() != "∞" {
		t.Fatal("String")
	}
}

package sim

import (
	"errors"
	"testing"
)

// counter increments a registered value every cycle; its committed value
// therefore equals the number of completed cycles.
type counter struct {
	v *Reg[int]
}

func newCounter() *counter          { return &counter{v: NewReg(0)} }
func (c *counter) Name() string     { return "counter" }
func (c *counter) Eval(now Cycle)   { c.v.Set(c.v.Get() + 1) }
func (c *counter) Update(now Cycle) { c.v.Commit() }
func (c *counter) Value() int       { return c.v.Get() }

// follower copies the counter's committed value; because reads in Eval
// see only committed values, it must lag the counter by exactly one.
type follower struct {
	src *counter
	v   *Reg[int]
}

func (f *follower) Name() string     { return "follower" }
func (f *follower) Eval(now Cycle)   { f.v.Set(f.src.Value()) }
func (f *follower) Update(now Cycle) { f.v.Commit() }

func TestKernelStepAdvancesCycle(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("new kernel at cycle %v, want 0", k.Now())
	}
	k.Step()
	k.Step()
	if k.Now() != 2 {
		t.Fatalf("after 2 steps Now() = %v, want 2", k.Now())
	}
}

func TestKernelTwoPhaseSemantics(t *testing.T) {
	k := NewKernel()
	c := newCounter()
	f := &follower{src: c, v: NewReg(-1)}
	// Register the follower FIRST: if Eval leaked uncommitted values the
	// follower would see stale data in a registration-order-dependent
	// way. With correct two-phase semantics order must not matter.
	k.Register(f)
	k.Register(c)
	for i := 0; i < 10; i++ {
		k.Step()
		if got, want := c.Value(), i+1; got != want {
			t.Fatalf("cycle %d: counter = %d, want %d", i, got, want)
		}
		if got, want := f.v.Get(), i; got != want {
			t.Fatalf("cycle %d: follower = %d, want %d (one-cycle lag)", i, got, want)
		}
	}
}

func TestKernelRegistrationOrderInvariance(t *testing.T) {
	run := func(followerFirst bool) int {
		k := NewKernel()
		c := newCounter()
		f := &follower{src: c, v: NewReg(-1)}
		if followerFirst {
			k.Register(f)
			k.Register(c)
		} else {
			k.Register(c)
			k.Register(f)
		}
		if _, err := k.Run(25); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return f.v.Get()
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("registration order changed result: %d vs %d", a, b)
	}
}

func TestKernelDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	k := NewKernel()
	c := newCounter()
	k.Register(c)
	k.Register(c)
}

type stopper struct {
	k     *Kernel
	at    Cycle
	evals int
}

func (s *stopper) Name() string { return "stopper" }
func (s *stopper) Eval(now Cycle) {
	s.evals++
	if now == s.at {
		s.k.Stop("reached target")
	}
}
func (s *stopper) Update(now Cycle) {}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	s := &stopper{k: k, at: 4}
	k.Register(s)
	n, err := k.Run(100)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run err = %v, want ErrStopped", err)
	}
	if n != 5 { // cycles 0..4 inclusive
		t.Fatalf("ran %d cycles, want 5", n)
	}
	if k.StopReason() != "reached target" {
		t.Fatalf("StopReason = %q", k.StopReason())
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	c := newCounter()
	k.Register(c)
	n, ok := k.RunUntil(func() bool { return c.Value() >= 7 }, 100)
	if !ok || n != 7 {
		t.Fatalf("RunUntil = (%d,%v), want (7,true)", n, ok)
	}
	n, ok = k.RunUntil(func() bool { return c.Value() >= 1000 }, 10)
	if ok || n != 10 {
		t.Fatalf("RunUntil limit = (%d,%v), want (10,false)", n, ok)
	}
}

func TestRegForceBypassesPhases(t *testing.T) {
	r := NewReg(1)
	r.Set(2)
	r.Force(9)
	r.Commit() // must not resurrect the pending Set(2)
	if r.Get() != 9 {
		t.Fatalf("after Force+Commit Get() = %d, want 9", r.Get())
	}
}

func TestRegBankCommitsAll(t *testing.T) {
	var bank RegBank
	a, b := NewReg(0), NewReg("x")
	bank.Add(a)
	bank.Add(b)
	a.Set(5)
	b.Set("y")
	if a.Get() != 0 || b.Get() != "x" {
		t.Fatal("Set leaked before commit")
	}
	bank.CommitAll()
	if a.Get() != 5 || b.Get() != "y" {
		t.Fatalf("after CommitAll: %d %q", a.Get(), b.Get())
	}
}

package sim

// Reg is a registered (clocked) value with the two-phase discipline the
// Kernel expects: reads during Eval observe the value committed at the
// end of the previous cycle; writes during Eval become visible only
// after Commit runs in the Update phase.
//
// Components own their registers and must call Commit from Update (or
// embed a RegBank and commit that).
type Reg[T any] struct {
	cur, next T
	dirty     bool
	wakers    []*Waker
}

// NewReg returns a register initialized to v in both phases.
func NewReg[T any](v T) *Reg[T] {
	return &Reg[T]{cur: v, next: v}
}

// Get returns the currently visible (committed) value.
func (r *Reg[T]) Get() T { return r.cur }

// Set schedules v to become visible after the next Commit.
func (r *Reg[T]) Set(v T) {
	r.next = v
	r.dirty = true
}

// Commit makes the pending value visible. Safe to call when no Set
// happened (it is then a no-op). Committing a pending Set wakes every
// watcher registered via Notify, which is how clock-gated components
// resume when an input register changes.
func (r *Reg[T]) Commit() {
	if r.dirty {
		r.cur = r.next
		r.dirty = false
		for _, w := range r.wakers {
			w.Wake()
		}
	}
}

// Notify registers a wake handle to fire whenever a pending Set commits
// on this register. Used to wire clock-gated components to the inputs
// that must wake them; see Kernel.Waker.
func (r *Reg[T]) Notify(w *Waker) {
	r.wakers = append(r.wakers, w)
}

// Force immediately sets both phases to v, bypassing the two-phase
// discipline. Intended for reset logic only.
func (r *Reg[T]) Force(v T) {
	r.cur = v
	r.next = v
	r.dirty = false
}

// RegBank groups registers so a component can commit them all with one
// call from its Update method.
type RegBank struct {
	regs []interface{ Commit() }
}

// Add registers r with the bank and returns the bank for chaining.
func (b *RegBank) Add(r interface{ Commit() }) {
	b.regs = append(b.regs, r)
}

// CommitAll commits every register in the bank.
func (b *RegBank) CommitAll() {
	for _, r := range b.regs {
		r.Commit()
	}
}

package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// heapOracle is the retired container/heap scheduler, kept here as the
// reference implementation the wheel is differential-tested against.
type heapOracle struct {
	entries []*heapEntry
	seq     uint64
}

type heapEntry struct {
	at        Cycle
	seq       uint64
	id        int
	cancelled bool
}

func (h *heapOracle) post(at Cycle, id int) *heapEntry {
	h.seq++
	e := &heapEntry{at: at, seq: h.seq, id: id}
	h.entries = append(h.entries, e)
	return e
}

// runOrder returns the ids of uncancelled events with at <= limit in
// dispatch order (cycle, then scheduling order), consuming them.
func (h *heapOracle) runOrder(limit Cycle) []int {
	sort.SliceStable(h.entries, func(i, j int) bool {
		if h.entries[i].at != h.entries[j].at {
			return h.entries[i].at < h.entries[j].at
		}
		return h.entries[i].seq < h.entries[j].seq
	})
	var out []int
	var rest []*heapEntry
	for _, e := range h.entries {
		switch {
		case e.cancelled:
		case e.at <= limit:
			out = append(out, e.id)
		default:
			rest = append(rest, e)
		}
	}
	h.entries = rest
	return out
}

func TestSchedulerPostCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	id := s.Post(10, func(Cycle, any, uint64) { ran = true }, nil, 0)
	if !s.Cancel(id) {
		t.Fatal("Cancel of a pending event should report true")
	}
	if s.Cancel(id) {
		t.Fatal("double Cancel should report false")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after cancel", s.Pending())
	}
	s.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestSchedulerCancelledIDGoesStaleAfterReuse(t *testing.T) {
	s := NewScheduler()
	var got []int
	id := s.Post(5, func(Cycle, any, uint64) { got = append(got, 1) }, nil, 0)
	s.Cancel(id)
	// The slab entry is recycled; the old id must not cancel the new
	// occupant.
	s.Post(6, func(Cycle, any, uint64) { got = append(got, 2) }, nil, 0)
	s.RunAll() // reclaims the cancelled entry, then runs event 2
	s.Post(7, func(Cycle, any, uint64) { got = append(got, 3) }, nil, 0)
	if s.Cancel(id) {
		t.Fatal("stale id cancelled a recycled slab entry")
	}
	s.RunAll()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("got %v, want [2 3]", got)
	}
}

func TestSchedulerCancelReschedule(t *testing.T) {
	s := NewScheduler()
	var order []string
	fn := func(tag string) EventFn {
		return func(Cycle, any, uint64) { order = append(order, tag) }
	}
	id := s.Post(50, fn("stale"), nil, 0)
	if !s.Cancel(id) {
		t.Fatal("cancel failed")
	}
	s.Post(20, fn("early"), nil, 0)
	s.Post(50, fn("late"), nil, 0)
	s.RunAll()
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("order %v", order)
	}
}

func TestSchedulerCycleMaxSentinel(t *testing.T) {
	s := NewScheduler()
	if s.PeekNext() != CycleMax {
		t.Fatal("empty PeekNext should be CycleMax")
	}
	ran := false
	s.Post(CycleMax, func(now Cycle, _ any, _ uint64) {
		if now != CycleMax {
			t.Errorf("ran at %v", now)
		}
		ran = true
	}, nil, 0)
	if s.PeekNext() != CycleMax {
		t.Fatal("PeekNext should report the far event at CycleMax")
	}
	if end := s.Run(1 << 30); end != 1<<30 || ran {
		t.Fatalf("limited run reached %v ran=%v", end, ran)
	}
	s.RunAll()
	if !ran {
		t.Fatal("CycleMax event never ran")
	}
}

func TestSchedulerFarHorizonOrdering(t *testing.T) {
	s := NewScheduler()
	var got []Cycle
	record := func(now Cycle, _ any, _ uint64) { got = append(got, now) }
	// Beyond both wheel levels (>= 2^16 ahead), inside level 1, inside
	// level 0, and same-cycle pairs across the far boundary.
	cycles := []Cycle{1 << 20, 3, 70_000, 500, 1 << 20, 70_000, 3, 1 << 21}
	for _, c := range cycles {
		s.Post(c, record, nil, 0)
	}
	s.RunAll()
	want := append([]Cycle(nil), cycles...)
	sort.SliceStable(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSchedulerSlabFreeListReuseAfterDrain(t *testing.T) {
	s := NewScheduler()
	noop := func(Cycle, any, uint64) {}
	// Steady state: K events in flight, drained and re-posted many
	// times. The slab must stay at its high-water mark instead of
	// growing per post.
	const inFlight = 8
	for round := 0; round < 1000; round++ {
		base := s.Now() + 1
		for i := Cycle(0); i < inFlight; i++ {
			s.Post(base+i, noop, nil, 0)
		}
		s.Run(base + inFlight)
	}
	if len(s.slab) > inFlight+1 {
		t.Fatalf("slab grew to %d entries for %d in-flight events: free list not reused", len(s.slab), inFlight)
	}
}

func TestSchedulerSameCycleFIFOAcrossLevels(t *testing.T) {
	s := NewScheduler()
	var got []uint64
	record := func(_ Cycle, _ any, arg uint64) { got = append(got, arg) }
	// Two events for the same far cycle posted while it is beyond the
	// wheel, one more posted after time has advanced close to it: FIFO
	// within the cycle must hold across cascade and refill.
	target := Cycle(100_000)
	s.Post(target, record, nil, 1)
	s.Post(target, record, nil, 2)
	s.Post(99_000, func(now Cycle, _ any, _ uint64) {
		s.Post(target, record, nil, 3)
	}, nil, 0)
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("same-cycle order %v, want [1 2 3]", got)
	}
}

// differentialOps drives a Scheduler and the heap oracle through the
// same randomized schedule and compares dispatch order exactly.
func differentialOps(t *testing.T, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := NewScheduler()
	oracle := &heapOracle{}
	type pending struct {
		id  EventID
		ref *heapEntry
	}
	var live []pending
	var got []int
	nextID := 0
	record := func(_ Cycle, _ any, arg uint64) { got = append(got, int(arg)) }

	for op := 0; op < ops; op++ {
		switch r := rng.Intn(10); {
		case r < 6: // post
			at := s.Now() + Cycle(rng.Intn(1000))
			if rng.Intn(20) == 0 {
				at = s.Now() + Cycle(rng.Intn(1<<20)) // far horizon
			}
			id := s.Post(at, record, nil, uint64(nextID))
			live = append(live, pending{id: id, ref: oracle.post(at, nextID)})
			nextID++
		case r < 8 && len(live) > 0: // cancel a random pending event
			i := rng.Intn(len(live))
			c1 := s.Cancel(live[i].id)
			c2 := !live[i].ref.cancelled
			if c1 != c2 {
				t.Fatalf("seed %d: Cancel=%v oracle=%v", seed, c1, c2)
			}
			live[i].ref.cancelled = true
			live = append(live[:i], live[i+1:]...)
		default: // run to a limit
			limit := s.Now() + Cycle(rng.Intn(2000))
			got = got[:0]
			s.Run(limit)
			want := oracle.runOrder(limit)
			if len(got) != len(want) {
				t.Fatalf("seed %d op %d: ran %v, oracle %v", seed, op, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d op %d: ran %v, oracle %v", seed, op, got, want)
				}
			}
			// Rebuild the live list from the oracle's surviving entries
			// (runOrder consumed the dispatched ones).
			live = live[:0]
			for _, e := range oracle.entries {
				if !e.cancelled {
					live = append(live, pending{id: findLive(s, e.id), ref: e})
				}
			}
		}
	}
	got = got[:0]
	s.RunAll()
	want := oracle.runOrder(CycleMax)
	if len(got) != len(want) {
		t.Fatalf("seed %d: final ran %d, oracle %d", seed, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seed %d: final %v, oracle %v", seed, got, want)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("seed %d: %d events still pending after RunAll", seed, s.Pending())
	}
}

// findLive locates the EventID of the slab entry carrying arg id.
func findLive(s *Scheduler, id int) EventID {
	for i := range s.slab {
		e := &s.slab[i]
		if e.live && int(e.arg) == id {
			return EventID(uint64(i+1) | uint64(e.gen)<<32)
		}
	}
	return NoEvent
}

func TestSchedulerDifferentialVsHeap(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		differentialOps(t, seed, 300)
	}
}

// FuzzWheelVsHeap feeds arbitrary byte programs to the wheel and the
// retired heap implementation and requires identical dispatch order.
func FuzzWheelVsHeap(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 250, 0, 9, 200})
	f.Add([]byte{0, 0, 0, 255, 255, 16, 32, 64, 128})
	f.Fuzz(func(t *testing.T, program []byte) {
		s := NewScheduler()
		oracle := &heapOracle{}
		var got []int
		nextID := 0
		record := func(_ Cycle, _ any, arg uint64) { got = append(got, int(arg)) }
		for i := 0; i+1 < len(program); i += 2 {
			op, val := program[i], Cycle(program[i+1])
			switch op % 3 {
			case 0: // near post
				at := s.Now() + val
				s.Post(at, record, nil, uint64(nextID))
				oracle.post(at, nextID)
				nextID++
			case 1: // far post (stresses cascade/refill)
				at := s.Now() + val*300
				s.Post(at, record, nil, uint64(nextID))
				oracle.post(at, nextID)
				nextID++
			case 2: // bounded run
				limit := s.Now() + val*4
				got = got[:0]
				s.Run(limit)
				want := oracle.runOrder(limit)
				if len(got) != len(want) {
					t.Fatalf("ran %v, oracle %v", got, want)
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("ran %v, oracle %v", got, want)
					}
				}
			}
		}
		got = got[:0]
		s.RunAll()
		want := oracle.runOrder(CycleMax)
		if len(got) != len(want) {
			t.Fatalf("final ran %v, oracle %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("final ran %v, oracle %v", got, want)
			}
		}
	})
}

// TestSchedulerSameCycleFIFOAfterReanchor is the regression test for a
// review finding: a limited Run can stop inside the block of a far
// event; a subsequent Post at that event's exact cycle re-anchors the
// empty wheel into that block and, without the far guard, would land in
// level 0 ahead of the earlier-posted far event.
func TestSchedulerSameCycleFIFOAfterReanchor(t *testing.T) {
	s := NewScheduler()
	var got []int
	rec := func(_ Cycle, _ any, arg uint64) { got = append(got, int(arg)) }
	s.Post(70000, rec, nil, 1) // far (beyond the two-level horizon)
	s.Run(69999)               // stop one cycle short, inside 70000's block
	s.Post(70000, rec, nil, 2) // same cycle, posted later
	s.RunAll()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("same-cycle order %v, want [1 2]", got)
	}
}

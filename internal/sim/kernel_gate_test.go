package sim

import (
	"testing"
)

// pulser drives a register high for one cycle every period cycles; it
// never sleeps.
type pulser struct {
	out    *Reg[bool]
	period Cycle
	bank   RegBank
}

func (p *pulser) Name() string { return "pulser" }
func (p *pulser) Eval(now Cycle) {
	high := now%p.period == 0
	if p.out.Get() != high {
		p.out.Set(high)
	}
}
func (p *pulser) Update(now Cycle) { p.bank.CommitAll() }

// listener counts the cycles it evaluated and the pulses it observed.
// The gated variant sleeps whenever its input is low and relies on the
// register watch to wake it.
type listener struct {
	in      *Reg[bool]
	gated   bool
	evals   int
	pulses  []Cycle
	wakeLog []Cycle
}

func (l *listener) Name() string { return "listener" }
func (l *listener) Eval(now Cycle) {
	l.evals++
	if l.in.Get() {
		l.pulses = append(l.pulses, now)
	}
}
func (l *listener) Update(now Cycle) {}
func (l *listener) Quiescent(now Cycle) (Cycle, bool) {
	if !l.gated {
		return 0, false
	}
	if l.in.Get() {
		return 0, false // pulse visible next cycle: stay awake to see it
	}
	return CycleMax, true
}

// alarm is purely time-driven: it records its evaluations and sleeps
// until a fixed next-work cycle.
type alarm struct {
	every Cycle
	seen  []Cycle
}

func (a *alarm) Name() string { return "alarm" }
func (a *alarm) Eval(now Cycle) {
	if now%a.every == 0 {
		a.seen = append(a.seen, now)
	}
}
func (a *alarm) Update(now Cycle) {}
func (a *alarm) Quiescent(now Cycle) (Cycle, bool) {
	next := (now/a.every + 1) * a.every
	return next, true
}

// TestKernelGatingObservationEquivalence runs the same pulser/listener
// pair on a gated and an ungated kernel and requires identical
// observations — the core clock-gating contract.
func TestKernelGatingObservationEquivalence(t *testing.T) {
	build := func(disable bool) (*Kernel, *listener) {
		k := NewKernel()
		k.GateDisabled = disable
		out := NewReg(false)
		p := &pulser{out: out, period: 37}
		p.bank.Add(out)
		l := &listener{in: out, gated: true}
		k.Register(p)
		k.Register(l)
		out.Notify(k.Waker(l))
		return k, l
	}
	kGated, lGated := build(false)
	kPlain, lPlain := build(true)
	kGated.Run(500)
	kPlain.Run(500)
	if kGated.Now() != kPlain.Now() {
		t.Fatalf("cycle counts diverged: %v vs %v", kGated.Now(), kPlain.Now())
	}
	if len(lGated.pulses) != len(lPlain.pulses) {
		t.Fatalf("pulse counts diverged: %v vs %v", lGated.pulses, lPlain.pulses)
	}
	for i := range lGated.pulses {
		if lGated.pulses[i] != lPlain.pulses[i] {
			t.Fatalf("pulse cycles diverged: %v vs %v", lGated.pulses, lPlain.pulses)
		}
	}
	if lGated.evals >= lPlain.evals {
		t.Fatalf("gating saved no evaluations: %d vs %d", lGated.evals, lPlain.evals)
	}
}

// TestKernelTimedWake checks that a sleeping component wakes exactly at
// its requested cycle, including across all-asleep fast-forwards.
func TestKernelTimedWake(t *testing.T) {
	k := NewKernel()
	a := &alarm{every: 100}
	k.Register(a)
	n, err := k.Run(1000)
	if err != nil || n != 1000 {
		t.Fatalf("Run = %d, %v", n, err)
	}
	want := []Cycle{0, 100, 200, 300, 400, 500, 600, 700, 800, 900}
	if len(a.seen) != len(want) {
		t.Fatalf("alarm fired at %v, want %v", a.seen, want)
	}
	for i := range want {
		if a.seen[i] != want[i] {
			t.Fatalf("alarm fired at %v, want %v", a.seen, want)
		}
	}
}

// TestKernelFastForwardRunUntil checks that the predicate contract
// (pure observation, constant while everything sleeps) holds across a
// fast-forwarded stretch.
func TestKernelFastForwardRunUntil(t *testing.T) {
	k := NewKernel()
	a := &alarm{every: 5000}
	k.Register(a)
	n, ok := k.RunUntil(func() bool { return len(a.seen) >= 2 }, 100000)
	if !ok {
		t.Fatal("predicate never satisfied")
	}
	if n != 5001 {
		// The second firing happens at cycle 5000; RunUntil counts the
		// step that completed it.
		t.Fatalf("RunUntil simulated %d cycles, want 5001", n)
	}
}

// TestKernelSignalWakeDuringUpdate ensures a component that would gate
// itself at the end of a cycle stays awake when a watched register
// committed that same cycle (the value is only visible next cycle).
func TestKernelSignalWakeDuringUpdate(t *testing.T) {
	k := NewKernel()
	out := NewReg(false)
	p := &pulser{out: out, period: 2} // pulses at 0,2,4,...
	p.bank.Add(out)
	l := &listener{in: out, gated: true}
	k.Register(p)
	k.Register(l)
	out.Notify(k.Waker(l))
	k.Run(10)
	// Pulses commit at the pulse cycle and are visible one cycle later:
	// the listener must observe every odd cycle.
	want := []Cycle{1, 3, 5, 7, 9}
	if len(l.pulses) != len(want) {
		t.Fatalf("observed %v, want %v", l.pulses, want)
	}
	for i := range want {
		if l.pulses[i] != want[i] {
			t.Fatalf("observed %v, want %v", l.pulses, want)
		}
	}
}

func TestKernelSleepingCount(t *testing.T) {
	k := NewKernel()
	a := &alarm{every: 50}
	k.Register(a)
	if k.Sleeping() != 0 {
		t.Fatal("nothing should sleep before the first step")
	}
	k.Step()
	if k.Sleeping() != 1 {
		t.Fatalf("Sleeping = %d after first step", k.Sleeping())
	}
}

func TestKernelWakerUnregisteredPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Waker(&alarm{every: 1})
}

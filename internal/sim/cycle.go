// Package sim provides the simulation kernels used by both the
// pin-accurate (RTL-style) model and the transaction-level model.
//
// Two kernels are provided, mirroring the paper's setup:
//
//   - Kernel: a two-phase (evaluate/update) cycle-based kernel. Every
//     registered component is evaluated every clock cycle, exactly like
//     the "2-step cycle-based simulation tool" the paper uses for its
//     pin-accurate model. This is deliberately exhaustive and therefore
//     slow: its cost is proportional to simulated cycles times component
//     count.
//
//   - Scheduler: a cycle-keyed event wheel used by the method-based TLM.
//     It skips cycles in which nothing happens, which is the structural
//     source of the TLM speedup the paper reports.
//
// Both kernels share the Cycle timebase so results are directly
// comparable.
package sim

import "fmt"

// Cycle is a point in simulated time, measured in bus clock cycles.
type Cycle uint64

// CycleMax is the largest representable cycle, used as an "infinitely
// far in the future" sentinel.
const CycleMax = Cycle(^uint64(0))

// String implements fmt.Stringer.
func (c Cycle) String() string {
	if c == CycleMax {
		return "∞"
	}
	return fmt.Sprintf("cyc%d", uint64(c))
}

// MaxCycle returns the later of a and b.
func MaxCycle(a, b Cycle) Cycle {
	if a > b {
		return a
	}
	return b
}

// MinCycle returns the earlier of a and b.
func MinCycle(a, b Cycle) Cycle {
	if a < b {
		return a
	}
	return b
}

// AddSat adds d to c, saturating at CycleMax instead of wrapping.
func (c Cycle) AddSat(d Cycle) Cycle {
	s := c + d
	if s < c {
		return CycleMax
	}
	return s
}

// SubFloor subtracts d from c, flooring at 0 instead of wrapping.
func (c Cycle) SubFloor(d Cycle) Cycle {
	if d >= c {
		return 0
	}
	return c - d
}

package arb

import (
	"repro/internal/qos"
	"repro/internal/sim"
)

// Permission drops candidates whose target the DDRC cannot currently
// accept (refresh window), as reported over BI. It is the only filter
// allowed to veto the whole round.
type Permission struct{}

// Name implements Filter.
func (Permission) Name() string { return "permission" }

// CanVeto implements Filter.
func (Permission) CanVeto() bool { return true }

// Apply implements Filter.
func (Permission) Apply(ctx *Context, cands []int) []int {
	if !ctx.hasStatus() {
		return cands
	}
	out := cands[:0:len(cands)]
	for _, i := range cands {
		if ctx.permitFor(i) {
			out = append(out, i)
		}
	}
	return out
}

// Urgency keeps only the requests whose QoS slack has fallen to or
// below the urgency threshold, and among those the minimum-slack ones.
// When nothing is urgent it passes the set through unchanged. This is
// the filter that converts the QoS objective registers into actual
// grant decisions before a deadline is lost.
type Urgency struct{}

// Name implements Filter.
func (Urgency) Name() string { return "urgency" }

// CanVeto implements Filter.
func (Urgency) CanVeto() bool { return false }

// Apply implements Filter.
func (Urgency) Apply(ctx *Context, cands []int) []int {
	if !ctx.hasQoS() {
		return cands
	}
	if ctx.qosStatic && !ctx.anyObjective {
		return cands // no master has an objective: nothing can be urgent
	}
	minSlack := sim.CycleMax
	urgent := false
	for _, i := range cands {
		r := ctx.Reqs[i]
		slack := ctx.qosReg(r.Master).Slack(ctx.Now, r.Since)
		if slack <= ctx.UrgencyThreshold {
			urgent = true
			if slack < minSlack {
				minSlack = slack
			}
		}
	}
	if !urgent {
		return cands
	}
	out := cands[:0:len(cands)]
	for _, i := range cands {
		r := ctx.Reqs[i]
		if ctx.qosReg(r.Master).Slack(ctx.Now, r.Since) == minSlack {
			out = append(out, i)
		}
	}
	return out
}

// RealTime keeps RT-class masters when at least one is present,
// otherwise passes through. The write-buffer pseudo-master is treated
// by its own filter, not here.
type RealTime struct{}

// Name implements Filter.
func (RealTime) Name() string { return "realtime" }

// CanVeto implements Filter.
func (RealTime) CanVeto() bool { return false }

// Apply implements Filter.
func (RealTime) Apply(ctx *Context, cands []int) []int {
	if !ctx.hasQoS() {
		return cands
	}
	if ctx.qosStatic && !ctx.anyRT {
		return cands // no RT master registered: provably pass-through
	}
	out := cands[:0:len(cands)]
	for _, i := range cands {
		r := ctx.Reqs[i]
		if !r.IsWriteBuf && ctx.qosReg(r.Master).Class == qos.RT {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		return cands
	}
	return out
}

// Bandwidth keeps masters that are below their reserved bandwidth
// share within the accounting window; when every candidate has met its
// reservation (or none has one) it passes through.
type Bandwidth struct{}

// Name implements Filter.
func (Bandwidth) Name() string { return "bandwidth" }

// CanVeto implements Filter.
func (Bandwidth) CanVeto() bool { return false }

// Apply implements Filter.
func (Bandwidth) Apply(ctx *Context, cands []int) []int {
	if !ctx.hasQoS() || !ctx.hasServed() || ctx.TotalBeats == 0 {
		return cands
	}
	if ctx.qosStatic && !ctx.anyQuota {
		return cands // no reservations: provably pass-through
	}
	out := cands[:0:len(cands)]
	for _, i := range cands {
		r := ctx.Reqs[i]
		quota := ctx.qosReg(r.Master).Quota
		if quota == 0 {
			continue
		}
		share := float64(ctx.served(r.Master)) / float64(ctx.TotalBeats)
		if share < quota {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		return cands
	}
	return out
}

// BankAffinity prefers requests that hit an open DDR row, then requests
// targeting an idle bank, using the BI idle-bank report. This is the
// arbitration half of the bank-interleaving scheme: it steers grants so
// the controller can stream data back-to-back.
type BankAffinity struct{}

// Name implements Filter.
func (BankAffinity) Name() string { return "bankaffinity" }

// CanVeto implements Filter.
func (BankAffinity) CanVeto() bool { return false }

// Apply implements Filter.
func (BankAffinity) Apply(ctx *Context, cands []int) []int {
	if !ctx.hasStatus() {
		return cands
	}
	anyHit, anyIdle := false, false
	for _, i := range cands {
		st := ctx.statusFor(i)
		if st.RowOpen {
			anyHit = true
			break
		}
		if st.BankIdle {
			anyIdle = true
		}
	}
	if !anyHit && !anyIdle {
		return cands
	}
	out := cands[:0:len(cands)]
	for _, i := range cands {
		st := ctx.statusFor(i)
		if (anyHit && st.RowOpen) || (!anyHit && st.BankIdle) {
			out = append(out, i)
		}
	}
	return out
}

// WriteBufferGate manages the write-buffer pseudo-master: when the
// buffer is nearly full its drain request is boosted above everything
// else (it must not overflow, or masters stall); when it is nearly
// empty the drain is suppressed so demand traffic goes first. In the
// middle band the drain competes like a normal master.
type WriteBufferGate struct{}

// Name implements Filter.
func (WriteBufferGate) Name() string { return "writebuffer" }

// CanVeto implements Filter.
func (WriteBufferGate) CanVeto() bool { return false }

// Apply implements Filter.
func (WriteBufferGate) Apply(ctx *Context, cands []int) []int {
	if ctx.WBCap == 0 {
		return cands
	}
	nWB := 0
	for _, i := range cands {
		if ctx.Reqs[i].IsWriteBuf {
			nWB++
		}
	}
	if nWB == 0 {
		return cands
	}
	keepWB := false
	switch {
	case ctx.WBUsed*4 >= ctx.WBCap*3: // >= 3/4 full: drain now
		keepWB = true
	case ctx.WBUsed*4 <= ctx.WBCap && nWB < len(cands): // <= 1/4: defer
		keepWB = false
	default:
		return cands
	}
	out := cands[:0:len(cands)]
	for _, i := range cands {
		if ctx.Reqs[i].IsWriteBuf == keepWB {
			out = append(out, i)
		}
	}
	return out
}

// RoundRobin picks exactly one winner, rotating fairly from the last
// granted master. It is always the final stage.
type RoundRobin struct{}

// Name implements Filter.
func (RoundRobin) Name() string { return "roundrobin" }

// CanVeto implements Filter.
func (RoundRobin) CanVeto() bool { return false }

// Apply implements Filter.
func (RoundRobin) Apply(ctx *Context, cands []int) []int {
	if len(cands) == 0 {
		return cands
	}
	best := -1
	bestKey := 1 << 30
	for _, i := range cands {
		m := ctx.Reqs[i].Master
		// Distance of m after LastGrant in circular order; the smallest
		// positive distance wins, so ownership rotates.
		key := m - ctx.LastGrant
		if key <= 0 {
			key += 1 << 20
		}
		if key < bestKey {
			bestKey = key
			best = i
		}
	}
	return append(cands[:0], best)
}

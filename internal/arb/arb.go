// Package arb implements the AHB+ arbitration scheme: seven arbitration
// filters, always activated regardless of master/slave combination
// (paper §3.3), applied as a narrowing pipeline over the set of pending
// requests. The same pipeline object drives both the pin-accurate model
// and the TLM, so the two abstraction levels implement the identical
// policy by construction.
//
// Filter order (first to last):
//
//  1. permission    — drop requests the DDRC cannot accept (BI veto)
//  2. urgency       — requests whose QoS slack is nearly exhausted win
//  3. realtime      — RT masters beat NRT masters
//  4. bandwidth     — masters below their reserved share beat the rest
//  5. bank-affinity — open-row, then idle-bank targets preferred (BI)
//  6. write-buffer  — the write-buffer pseudo-master is boosted when
//     nearly full and suppressed when nearly empty
//  7. round-robin   — final single-winner tie-break, fair rotation
//
// Only the permission filter may veto every candidate (no grant this
// round); any other filter that would empty the candidate set is
// ignored for that round, which keeps the pipeline deadlock-free.
package arb

import (
	"fmt"

	"repro/internal/bi"
	"repro/internal/qos"
	"repro/internal/sim"
)

// Request is one pending bus request as seen by the arbiter.
type Request struct {
	// Master is the requesting port index. The write-buffer
	// pseudo-master participates with its own index.
	Master int
	// Addr is the first-beat address.
	Addr uint32
	// Write is the transfer direction.
	Write bool
	// Beats is the burst length.
	Beats int
	// Since is the cycle the request was first asserted.
	Since sim.Cycle
	// IsWriteBuf marks the write-buffer pseudo-master's drain request.
	IsWriteBuf bool
}

// Context is everything the filter pipeline may observe for one
// arbitration round. The hot paths (both simulation models) populate
// the direct data fields — Regs, Served, Provider — which the filters
// read without going through a captured closure; the closure fields
// QoS, Status and ServedBeats remain as a flexible fallback for tests
// and custom harnesses and are consulted only when the corresponding
// direct field is unset.
type Context struct {
	// Now is the arbitration cycle.
	Now sim.Cycle
	// Reqs are the pending requests; filters operate on indices into it.
	Reqs []Request
	// Regs are the per-master QoS registers, indexed by master (out of
	// range reads as the zero register). Preferred over QoS.
	Regs []qos.Reg
	// QoS returns the QoS register of a master (fallback for Regs).
	QoS func(master int) qos.Reg
	// Provider answers BI bank-status queries directly. Preferred over
	// Status; results are cached per request for the round, so the
	// permission and bank-affinity filters share one engine query.
	Provider *bi.Provider
	// Status returns the BI bank status for an address (fallback for
	// Provider; nil with nil Provider means no BI).
	Status func(addr uint32) bi.BankStatus
	// WBUsed and WBCap describe write-buffer occupancy.
	WBUsed, WBCap int
	// Served is the per-master count of data beats served within the
	// current bandwidth accounting window. Preferred over ServedBeats.
	Served []uint64
	// ServedBeats is the closure fallback for Served.
	ServedBeats func(master int) uint64
	// TotalBeats is the total beats served in the window.
	TotalBeats uint64
	// LastGrant is the master granted in the previous round (-1 if
	// none); the round-robin filter rotates from it.
	LastGrant int
	// UrgencyThreshold is the slack (cycles) below which a request is
	// treated as urgent.
	UrgencyThreshold sim.Cycle

	// Per-round bank-status memo, keyed by request index and validated
	// by cycle and address so stale entries can never be returned.
	stCache []bankStatusEntry
	stCycle sim.Cycle

	// Static QoS summary, precomputed once per run by PrecomputeQoS:
	// when valid, filters whose outcome is fully determined by the
	// register file skip their per-round scans.
	qosStatic    bool
	anyObjective bool
	anyRT        bool
	anyQuota     bool
}

// PrecomputeQoS derives the static filter-skip flags from Regs. Call it
// once after populating Regs (the register file is immutable for the
// duration of a run); contexts using the QoS closure fallback must not
// call it, since the closure's answers are not statically known.
func (c *Context) PrecomputeQoS() {
	c.qosStatic = c.Regs != nil
	c.anyObjective, c.anyRT, c.anyQuota = false, false, false
	for _, r := range c.Regs {
		if r.Objective != 0 {
			c.anyObjective = true
		}
		if r.Class == qos.RT {
			c.anyRT = true
		}
		if r.Quota != 0 {
			c.anyQuota = true
		}
	}
}

// bankStatusEntry is one memoized bank-status lookup.
type bankStatusEntry struct {
	addr  uint32
	valid bool
	st    bi.BankStatus
}

// hasQoS reports whether QoS registers are available.
func (c *Context) hasQoS() bool { return c.Regs != nil || c.QoS != nil }

// qosReg returns master m's QoS register.
func (c *Context) qosReg(m int) qos.Reg {
	if c.Regs != nil {
		if m < len(c.Regs) {
			return c.Regs[m]
		}
		return qos.Reg{}
	}
	if c.QoS != nil {
		return c.QoS(m)
	}
	return qos.Reg{}
}

// hasStatus reports whether BI bank status is available.
func (c *Context) hasStatus() bool { return c.Provider != nil || c.Status != nil }

// hasServed reports whether per-master served-beat counts are available.
func (c *Context) hasServed() bool { return c.Served != nil || c.ServedBeats != nil }

// served returns master m's beats served in the bandwidth window.
func (c *Context) served(m int) uint64 {
	if c.Served != nil {
		if m < len(c.Served) {
			return c.Served[m]
		}
		return 0
	}
	if c.ServedBeats != nil {
		return c.ServedBeats(m)
	}
	return 0
}

// permitFor returns just the permission bit for request i, without
// computing the bank-affinity half of the status report. The permission
// filter runs every round (it is the only veto), while bank affinity
// only matters in contended rounds; splitting the query halves the
// controller work of the common single-candidate round.
func (c *Context) permitFor(i int) bool {
	if c.Provider != nil {
		return c.Provider.Permit(c.Now, c.Reqs[i].Addr)
	}
	return c.Status(c.Reqs[i].Addr).Permit
}

// statusFor returns the BI bank status for request i. Provider-backed
// lookups are memoized for the round (several filters query the same
// request; the engine is asked once, and the controller's answer cannot
// change within a cycle). The Status closure fallback is consulted on
// every call, preserving the historical contract for harnesses that
// vary the answer between Select calls.
func (c *Context) statusFor(i int) bi.BankStatus {
	addr := c.Reqs[i].Addr
	if c.Provider == nil {
		return c.Status(addr)
	}
	if c.stCycle != c.Now || len(c.stCache) < len(c.Reqs) {
		if cap(c.stCache) < len(c.Reqs) {
			c.stCache = make([]bankStatusEntry, len(c.Reqs))
		}
		c.stCache = c.stCache[:len(c.Reqs)]
		for j := range c.stCache {
			c.stCache[j].valid = false
		}
		c.stCycle = c.Now
	}
	if e := &c.stCache[i]; e.valid && e.addr == addr {
		return e.st
	}
	st := c.Provider.Status(c.Now, addr)
	c.stCache[i] = bankStatusEntry{addr: addr, valid: true, st: st}
	return st
}

// Filter narrows a candidate set. It must be deterministic and must not
// mutate the context.
type Filter interface {
	// Name identifies the filter in stats and config.
	Name() string
	// Apply returns the surviving subset of cands (indices into
	// ctx.Reqs), preserving order.
	Apply(ctx *Context, cands []int) []int
	// CanVeto reports whether an empty result is meaningful (grant
	// nobody) rather than an over-narrowing to be ignored.
	CanVeto() bool
}

// Stats counts, per filter, how many rounds it ran and in how many it
// strictly narrowed the candidate set (was "decisive").
type Stats struct {
	Rounds   uint64
	Decisive map[string]uint64
	Vetoed   uint64
	Grants   uint64
}

// Pipeline applies an ordered list of filters and picks the winner.
type Pipeline struct {
	filters []Filter
	vetoers []Filter // the subset with CanVeto, for the fast path
	stats   Stats
	buf     []int // reused candidate scratch
	one     [1]int
}

// NewPipeline returns a pipeline over the given filters in order.
func NewPipeline(filters ...Filter) *Pipeline {
	p := &Pipeline{filters: filters, stats: Stats{Decisive: make(map[string]uint64)}}
	for _, f := range filters {
		if f.CanVeto() {
			p.vetoers = append(p.vetoers, f)
		}
	}
	return p
}

// Default returns the full seven-filter AHB+ pipeline. Individual
// filters can be disabled through config by building a custom pipeline;
// see DefaultWith.
func Default() *Pipeline {
	return NewPipeline(
		Permission{}, Urgency{}, RealTime{}, Bandwidth{},
		BankAffinity{}, WriteBufferGate{}, RoundRobin{},
	)
}

// Enabled describes which of the seven filters are active; the
// round-robin tie-break is always present so arbitration stays
// deterministic.
type Enabled struct {
	Permission   bool
	Urgency      bool
	RealTime     bool
	Bandwidth    bool
	BankAffinity bool
	WriteBuffer  bool
}

// AllEnabled returns the paper configuration: every filter on.
func AllEnabled() Enabled {
	return Enabled{true, true, true, true, true, true}
}

// DefaultWith builds the pipeline with the selected filters (round-robin
// always last).
func DefaultWith(e Enabled) *Pipeline {
	var fs []Filter
	if e.Permission {
		fs = append(fs, Permission{})
	}
	if e.Urgency {
		fs = append(fs, Urgency{})
	}
	if e.RealTime {
		fs = append(fs, RealTime{})
	}
	if e.Bandwidth {
		fs = append(fs, Bandwidth{})
	}
	if e.BankAffinity {
		fs = append(fs, BankAffinity{})
	}
	if e.WriteBuffer {
		fs = append(fs, WriteBufferGate{})
	}
	fs = append(fs, RoundRobin{})
	return NewPipeline(fs...)
}

// Filters returns the names of the filters in pipeline order.
func (p *Pipeline) Filters() []string {
	out := make([]string, len(p.filters))
	for i, f := range p.filters {
		out[i] = f.Name()
	}
	return out
}

// Stats returns a copy of the pipeline statistics.
func (p *Pipeline) Stats() Stats {
	c := p.stats
	c.Decisive = make(map[string]uint64, len(p.stats.Decisive))
	for k, v := range p.stats.Decisive {
		c.Decisive[k] = v
	}
	return c
}

// Select runs the pipeline over ctx.Reqs and returns the index (into
// ctx.Reqs) of the winner, or ok=false when no request may be granted
// this round (permission veto or no requests at all).
func (p *Pipeline) Select(ctx *Context) (winner int, ok bool) {
	if len(ctx.Reqs) == 0 {
		return 0, false
	}
	p.stats.Rounds++
	if len(ctx.Reqs) == 1 {
		// Fast path: a single candidate cannot be narrowed, so no
		// filter can be decisive — only a veto-capable filter matters.
		// Stats stay exactly as the general path would leave them.
		for _, f := range p.vetoers {
			p.one[0] = 0
			if len(f.Apply(ctx, p.one[:1])) == 0 {
				p.stats.Vetoed++
				return 0, false
			}
		}
		p.stats.Grants++
		return 0, true
	}
	if cap(p.buf) < len(ctx.Reqs) {
		p.buf = make([]int, len(ctx.Reqs))
	}
	cands := p.buf[:len(ctx.Reqs)]
	for i := range cands {
		cands[i] = i
	}
	for _, f := range p.filters {
		next := f.Apply(ctx, cands)
		if len(next) == 0 {
			if f.CanVeto() {
				p.stats.Vetoed++
				return 0, false
			}
			continue // over-narrowed: ignore this filter's result
		}
		if len(next) < len(cands) {
			p.stats.Decisive[f.Name()]++
		}
		cands = next
	}
	if len(cands) != 1 {
		// The round-robin stage guarantees a single winner; reaching
		// here means a filter violated its contract.
		panic(fmt.Sprintf("arb: pipeline left %d candidates", len(cands)))
	}
	p.stats.Grants++
	return cands[0], true
}

// Package arb implements the AHB+ arbitration scheme: seven arbitration
// filters, always activated regardless of master/slave combination
// (paper §3.3), applied as a narrowing pipeline over the set of pending
// requests. The same pipeline object drives both the pin-accurate model
// and the TLM, so the two abstraction levels implement the identical
// policy by construction.
//
// Filter order (first to last):
//
//  1. permission    — drop requests the DDRC cannot accept (BI veto)
//  2. urgency       — requests whose QoS slack is nearly exhausted win
//  3. realtime      — RT masters beat NRT masters
//  4. bandwidth     — masters below their reserved share beat the rest
//  5. bank-affinity — open-row, then idle-bank targets preferred (BI)
//  6. write-buffer  — the write-buffer pseudo-master is boosted when
//     nearly full and suppressed when nearly empty
//  7. round-robin   — final single-winner tie-break, fair rotation
//
// Only the permission filter may veto every candidate (no grant this
// round); any other filter that would empty the candidate set is
// ignored for that round, which keeps the pipeline deadlock-free.
package arb

import (
	"fmt"

	"repro/internal/bi"
	"repro/internal/qos"
	"repro/internal/sim"
)

// Request is one pending bus request as seen by the arbiter.
type Request struct {
	// Master is the requesting port index. The write-buffer
	// pseudo-master participates with its own index.
	Master int
	// Addr is the first-beat address.
	Addr uint32
	// Write is the transfer direction.
	Write bool
	// Beats is the burst length.
	Beats int
	// Since is the cycle the request was first asserted.
	Since sim.Cycle
	// IsWriteBuf marks the write-buffer pseudo-master's drain request.
	IsWriteBuf bool
}

// Context is everything the filter pipeline may observe for one
// arbitration round.
type Context struct {
	// Now is the arbitration cycle.
	Now sim.Cycle
	// Reqs are the pending requests; filters operate on indices into it.
	Reqs []Request
	// QoS returns the QoS register of a master.
	QoS func(master int) qos.Reg
	// Status returns the BI bank status for an address (nil means no BI).
	Status func(addr uint32) bi.BankStatus
	// WBUsed and WBCap describe write-buffer occupancy.
	WBUsed, WBCap int
	// ServedBeats is the per-master count of data beats served within
	// the current bandwidth accounting window.
	ServedBeats func(master int) uint64
	// TotalBeats is the total beats served in the window.
	TotalBeats uint64
	// LastGrant is the master granted in the previous round (-1 if
	// none); the round-robin filter rotates from it.
	LastGrant int
	// UrgencyThreshold is the slack (cycles) below which a request is
	// treated as urgent.
	UrgencyThreshold sim.Cycle
}

// Filter narrows a candidate set. It must be deterministic and must not
// mutate the context.
type Filter interface {
	// Name identifies the filter in stats and config.
	Name() string
	// Apply returns the surviving subset of cands (indices into
	// ctx.Reqs), preserving order.
	Apply(ctx *Context, cands []int) []int
	// CanVeto reports whether an empty result is meaningful (grant
	// nobody) rather than an over-narrowing to be ignored.
	CanVeto() bool
}

// Stats counts, per filter, how many rounds it ran and in how many it
// strictly narrowed the candidate set (was "decisive").
type Stats struct {
	Rounds   uint64
	Decisive map[string]uint64
	Vetoed   uint64
	Grants   uint64
}

// Pipeline applies an ordered list of filters and picks the winner.
type Pipeline struct {
	filters []Filter
	stats   Stats
	buf     []int // reused candidate scratch
}

// NewPipeline returns a pipeline over the given filters in order.
func NewPipeline(filters ...Filter) *Pipeline {
	return &Pipeline{filters: filters, stats: Stats{Decisive: make(map[string]uint64)}}
}

// Default returns the full seven-filter AHB+ pipeline. Individual
// filters can be disabled through config by building a custom pipeline;
// see DefaultWith.
func Default() *Pipeline {
	return NewPipeline(
		Permission{}, Urgency{}, RealTime{}, Bandwidth{},
		BankAffinity{}, WriteBufferGate{}, RoundRobin{},
	)
}

// Enabled describes which of the seven filters are active; the
// round-robin tie-break is always present so arbitration stays
// deterministic.
type Enabled struct {
	Permission   bool
	Urgency      bool
	RealTime     bool
	Bandwidth    bool
	BankAffinity bool
	WriteBuffer  bool
}

// AllEnabled returns the paper configuration: every filter on.
func AllEnabled() Enabled {
	return Enabled{true, true, true, true, true, true}
}

// DefaultWith builds the pipeline with the selected filters (round-robin
// always last).
func DefaultWith(e Enabled) *Pipeline {
	var fs []Filter
	if e.Permission {
		fs = append(fs, Permission{})
	}
	if e.Urgency {
		fs = append(fs, Urgency{})
	}
	if e.RealTime {
		fs = append(fs, RealTime{})
	}
	if e.Bandwidth {
		fs = append(fs, Bandwidth{})
	}
	if e.BankAffinity {
		fs = append(fs, BankAffinity{})
	}
	if e.WriteBuffer {
		fs = append(fs, WriteBufferGate{})
	}
	fs = append(fs, RoundRobin{})
	return NewPipeline(fs...)
}

// Filters returns the names of the filters in pipeline order.
func (p *Pipeline) Filters() []string {
	out := make([]string, len(p.filters))
	for i, f := range p.filters {
		out[i] = f.Name()
	}
	return out
}

// Stats returns a copy of the pipeline statistics.
func (p *Pipeline) Stats() Stats {
	c := p.stats
	c.Decisive = make(map[string]uint64, len(p.stats.Decisive))
	for k, v := range p.stats.Decisive {
		c.Decisive[k] = v
	}
	return c
}

// Select runs the pipeline over ctx.Reqs and returns the index (into
// ctx.Reqs) of the winner, or ok=false when no request may be granted
// this round (permission veto or no requests at all).
func (p *Pipeline) Select(ctx *Context) (winner int, ok bool) {
	if len(ctx.Reqs) == 0 {
		return 0, false
	}
	p.stats.Rounds++
	if cap(p.buf) < len(ctx.Reqs) {
		p.buf = make([]int, len(ctx.Reqs))
	}
	cands := p.buf[:len(ctx.Reqs)]
	for i := range cands {
		cands[i] = i
	}
	for _, f := range p.filters {
		next := f.Apply(ctx, cands)
		if len(next) == 0 {
			if f.CanVeto() {
				p.stats.Vetoed++
				return 0, false
			}
			continue // over-narrowed: ignore this filter's result
		}
		if len(next) < len(cands) {
			p.stats.Decisive[f.Name()]++
		}
		cands = next
	}
	if len(cands) != 1 {
		// The round-robin stage guarantees a single winner; reaching
		// here means a filter violated its contract.
		panic(fmt.Sprintf("arb: pipeline left %d candidates", len(cands)))
	}
	p.stats.Grants++
	return cands[0], true
}

package arb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bi"
	"repro/internal/qos"
	"repro/internal/sim"
)

// ctxWith builds a minimal context over the given requests with QoS
// registers regs (indexed by master).
func ctxWith(reqs []Request, regs map[int]qos.Reg) *Context {
	return &Context{
		Now:  100,
		Reqs: reqs,
		QoS: func(m int) qos.Reg {
			if r, ok := regs[m]; ok {
				return r
			}
			return qos.Reg{}
		},
		LastGrant:        -1,
		UrgencyThreshold: 8,
	}
}

func TestPipelineEmptyRequestSet(t *testing.T) {
	p := Default()
	if _, ok := p.Select(ctxWith(nil, nil)); ok {
		t.Fatal("empty request set must not grant")
	}
}

func TestRoundRobinRotates(t *testing.T) {
	p := NewPipeline(RoundRobin{})
	reqs := []Request{{Master: 0}, {Master: 1}, {Master: 2}}
	ctx := ctxWith(reqs, nil)
	order := []int{}
	last := -1
	for i := 0; i < 6; i++ {
		ctx.LastGrant = last
		w, ok := p.Select(ctx)
		if !ok {
			t.Fatal("no grant")
		}
		last = reqs[w].Master
		order = append(order, last)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("rotation %v, want %v", order, want)
		}
	}
}

func TestRealTimeFilterPrefersRT(t *testing.T) {
	regs := map[int]qos.Reg{
		0: {Class: qos.NRT},
		1: {Class: qos.RT, Objective: 1000},
	}
	p := Default()
	ctx := ctxWith([]Request{{Master: 0, Since: 100}, {Master: 1, Since: 100}}, regs)
	w, ok := p.Select(ctx)
	if !ok || ctx.Reqs[w].Master != 1 {
		t.Fatalf("winner = %v/%v, want RT master 1", w, ok)
	}
}

func TestRealTimePassThroughWhenNoRT(t *testing.T) {
	p := NewPipeline(RealTime{}, RoundRobin{})
	ctx := ctxWith([]Request{{Master: 0}, {Master: 1}}, map[int]qos.Reg{})
	if _, ok := p.Select(ctx); !ok {
		t.Fatal("all-NRT set must still grant")
	}
}

func TestUrgencyOverridesRealTime(t *testing.T) {
	// Master 0 is NRT but has an objective and is nearly overdue;
	// master 1 is RT with plenty of slack. Urgency runs before the RT
	// filter, so master 0 must win.
	regs := map[int]qos.Reg{
		0: {Class: qos.NRT, Objective: 105},
		1: {Class: qos.RT, Objective: 10000},
	}
	p := Default()
	ctx := ctxWith([]Request{
		{Master: 0, Since: 0},  // waited 100, slack 5 <= threshold 8
		{Master: 1, Since: 90}, // slack huge
	}, regs)
	w, ok := p.Select(ctx)
	if !ok || ctx.Reqs[w].Master != 0 {
		t.Fatalf("urgent NRT master should win, got %v", ctx.Reqs[w].Master)
	}
}

func TestUrgencyPicksMinimumSlack(t *testing.T) {
	regs := map[int]qos.Reg{
		0: {Class: qos.RT, Objective: 104}, // slack 4
		1: {Class: qos.RT, Objective: 102}, // slack 2 — most urgent
	}
	p := NewPipeline(Urgency{}, RoundRobin{})
	ctx := ctxWith([]Request{{Master: 0, Since: 0}, {Master: 1, Since: 0}}, regs)
	w, ok := p.Select(ctx)
	if !ok || ctx.Reqs[w].Master != 1 {
		t.Fatal("minimum-slack request should win")
	}
}

func TestPermissionVetoesRound(t *testing.T) {
	p := Default()
	ctx := ctxWith([]Request{{Master: 0, Addr: 0x10}}, nil)
	ctx.Status = func(addr uint32) bi.BankStatus { return bi.BankStatus{Permit: false} }
	if _, ok := p.Select(ctx); ok {
		t.Fatal("permission filter should veto the round")
	}
	if p.Stats().Vetoed != 1 {
		t.Fatalf("Vetoed = %d", p.Stats().Vetoed)
	}
}

func TestPermissionDropsOnlyBlocked(t *testing.T) {
	p := Default()
	ctx := ctxWith([]Request{{Master: 0, Addr: 0xBAD0}, {Master: 1, Addr: 0x40}}, nil)
	ctx.Status = func(addr uint32) bi.BankStatus {
		return bi.BankStatus{Permit: addr != 0xBAD0}
	}
	w, ok := p.Select(ctx)
	if !ok || ctx.Reqs[w].Master != 1 {
		t.Fatal("unblocked master should win")
	}
}

func TestBankAffinityPrefersOpenRow(t *testing.T) {
	p := NewPipeline(BankAffinity{}, RoundRobin{})
	ctx := ctxWith([]Request{
		{Master: 0, Addr: 0x1000}, // idle bank
		{Master: 1, Addr: 0x2000}, // open row
		{Master: 2, Addr: 0x3000}, // neither
	}, nil)
	ctx.Status = func(addr uint32) bi.BankStatus {
		switch addr {
		case 0x1000:
			return bi.BankStatus{Permit: true, BankIdle: true}
		case 0x2000:
			return bi.BankStatus{Permit: true, RowOpen: true}
		}
		return bi.BankStatus{Permit: true}
	}
	w, _ := p.Select(ctx)
	if ctx.Reqs[w].Master != 1 {
		t.Fatalf("open-row request should win, got master %d", ctx.Reqs[w].Master)
	}
	// Without the open-row candidate, the idle bank wins.
	ctx.Reqs = ctx.Reqs[:1:1]
	ctx.Reqs = append(ctx.Reqs, Request{Master: 2, Addr: 0x3000})
	w, _ = p.Select(ctx)
	if ctx.Reqs[w].Master != 0 {
		t.Fatalf("idle-bank request should win, got master %d", ctx.Reqs[w].Master)
	}
}

func TestBandwidthPrefersUnderServed(t *testing.T) {
	regs := map[int]qos.Reg{
		0: {Quota: 0.5},
		1: {Quota: 0.5},
	}
	p := NewPipeline(Bandwidth{}, RoundRobin{})
	ctx := ctxWith([]Request{{Master: 0}, {Master: 1}}, regs)
	served := map[int]uint64{0: 90, 1: 10}
	ctx.ServedBeats = func(m int) uint64 { return served[m] }
	ctx.TotalBeats = 100
	w, _ := p.Select(ctx)
	if ctx.Reqs[w].Master != 1 {
		t.Fatal("under-served master should win")
	}
	// Everyone over quota: pass through, round robin decides.
	served = map[int]uint64{0: 60, 1: 60}
	ctx.TotalBeats = 120
	if _, ok := p.Select(ctx); !ok {
		t.Fatal("saturated quotas must not block granting")
	}
}

func TestWriteBufferGateBoostsWhenFull(t *testing.T) {
	p := NewPipeline(WriteBufferGate{}, RoundRobin{})
	reqs := []Request{{Master: 0}, {Master: 9, IsWriteBuf: true}}
	ctx := ctxWith(reqs, nil)
	ctx.WBCap = 8

	ctx.WBUsed = 7 // nearly full → drain wins
	w, _ := p.Select(ctx)
	if !ctx.Reqs[w].IsWriteBuf {
		t.Fatal("nearly-full write buffer should win arbitration")
	}

	ctx.WBUsed = 1 // nearly empty → demand traffic wins
	w, _ = p.Select(ctx)
	if ctx.Reqs[w].IsWriteBuf {
		t.Fatal("nearly-empty write buffer should be suppressed")
	}

	ctx.WBUsed = 4 // mid band → compete normally (round robin)
	if _, ok := p.Select(ctx); !ok {
		t.Fatal("mid-band should still grant")
	}
}

func TestWriteBufferAloneStillDrains(t *testing.T) {
	p := NewPipeline(WriteBufferGate{}, RoundRobin{})
	ctx := ctxWith([]Request{{Master: 9, IsWriteBuf: true}}, nil)
	ctx.WBCap = 8
	ctx.WBUsed = 1
	w, ok := p.Select(ctx)
	if !ok || !ctx.Reqs[w].IsWriteBuf {
		t.Fatal("lone write-buffer request must be granted even when nearly empty")
	}
}

func TestDefaultWithSubsets(t *testing.T) {
	p := DefaultWith(Enabled{})
	if got := p.Filters(); len(got) != 1 || got[0] != "roundrobin" {
		t.Fatalf("empty Enabled should leave only round-robin, got %v", got)
	}
	p = DefaultWith(AllEnabled())
	if got := p.Filters(); len(got) != 7 {
		t.Fatalf("AllEnabled should build 7 filters, got %v", got)
	}
}

func TestPipelineStats(t *testing.T) {
	p := Default()
	regs := map[int]qos.Reg{0: {Class: qos.RT, Objective: 500}, 1: {Class: qos.NRT}}
	ctx := ctxWith([]Request{{Master: 0, Since: 100}, {Master: 1, Since: 100}}, regs)
	p.Select(ctx)
	st := p.Stats()
	if st.Rounds != 1 || st.Grants != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Decisive["realtime"] != 1 {
		t.Fatalf("realtime filter should have been decisive: %+v", st.Decisive)
	}
}

// Property: the pipeline always grants when there is at least one
// request and no permission veto, and the winner is one of the
// requests.
func TestPipelineAlwaysGrantsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]Request, n)
		regs := map[int]qos.Reg{}
		for i := range reqs {
			reqs[i] = Request{
				Master: i,
				Addr:   uint32(rng.Intn(1 << 20)),
				Write:  rng.Intn(2) == 0,
				Beats:  1 + rng.Intn(8),
				Since:  sim.Cycle(rng.Intn(100)),
			}
			if rng.Intn(2) == 0 {
				regs[i] = qos.Reg{Class: qos.RT, Objective: sim.Cycle(rng.Intn(500) + 1)}
			}
		}
		ctx := ctxWith(reqs, regs)
		ctx.WBCap = 8
		ctx.WBUsed = rng.Intn(9)
		p := Default()
		w, ok := p.Select(ctx)
		return ok && w >= 0 && w < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitration is deterministic — the same context yields the
// same winner.
func TestPipelineDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Master: i, Addr: uint32(rng.Intn(1 << 16)), Since: sim.Cycle(rng.Intn(50))}
		}
		ctx1 := ctxWith(reqs, nil)
		ctx2 := ctxWith(reqs, nil)
		w1, ok1 := Default().Select(ctx1)
		w2, ok2 := Default().Select(ctx2)
		return ok1 == ok2 && w1 == w2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package arb

import (
	"testing"

	"repro/internal/bi"
	"repro/internal/qos"
	"repro/internal/sim"
)

func TestUrgencyIgnoresMastersWithoutObjective(t *testing.T) {
	regs := map[int]qos.Reg{1: {Class: qos.RT, Objective: 1000}}
	p := NewPipeline(Urgency{}, RoundRobin{})
	// Master 0 has no objective: infinite slack, never urgent.
	ctx := ctxWith([]Request{{Master: 0, Since: 0}, {Master: 1, Since: 99}}, regs)
	w, ok := p.Select(ctx)
	if !ok {
		t.Fatal("no grant")
	}
	// Neither is urgent (slack huge): round robin decides → master 0.
	if ctx.Reqs[w].Master != 0 {
		t.Fatalf("non-urgent round should fall to round robin, got %d", ctx.Reqs[w].Master)
	}
}

func TestUrgencyZeroSlackFloors(t *testing.T) {
	// A request already past its objective has slack 0 (floored), and
	// must win over one with slack 1.
	regs := map[int]qos.Reg{
		0: {Class: qos.RT, Objective: 10},  // waited 100 → slack 0
		1: {Class: qos.RT, Objective: 101}, // waited 100 → slack 1
	}
	p := NewPipeline(Urgency{}, RoundRobin{})
	ctx := ctxWith([]Request{{Master: 0, Since: 0}, {Master: 1, Since: 0}}, regs)
	ctx.LastGrant = 0 // round robin would pick m1; urgency must override
	w, _ := p.Select(ctx)
	if ctx.Reqs[w].Master != 0 {
		t.Fatal("overdue request must win")
	}
}

func TestBandwidthNilServedFnPassesThrough(t *testing.T) {
	p := NewPipeline(Bandwidth{}, RoundRobin{})
	ctx := ctxWith([]Request{{Master: 0}, {Master: 1}}, map[int]qos.Reg{0: {Quota: 0.5}})
	ctx.ServedBeats = nil
	if _, ok := p.Select(ctx); !ok {
		t.Fatal("nil accounting must not block grants")
	}
}

func TestBankAffinityAllColdPassesThrough(t *testing.T) {
	p := NewPipeline(BankAffinity{}, RoundRobin{})
	ctx := ctxWith([]Request{{Master: 0}, {Master: 1}}, nil)
	ctx.Status = func(addr uint32) bi.BankStatus { return bi.BankStatus{Permit: true} }
	if _, ok := p.Select(ctx); !ok {
		t.Fatal("no-affinity round must still grant")
	}
}

func TestRoundRobinWrapsPastHighestMaster(t *testing.T) {
	p := NewPipeline(RoundRobin{})
	reqs := []Request{{Master: 0}, {Master: 2}}
	ctx := ctxWith(reqs, nil)
	ctx.LastGrant = 2 // highest master granted last → wrap to 0
	w, _ := p.Select(ctx)
	if reqs[w].Master != 0 {
		t.Fatalf("wrap-around failed, got master %d", reqs[w].Master)
	}
}

func TestPipelineVetoCountsOnlyPermission(t *testing.T) {
	p := Default()
	ctx := ctxWith([]Request{{Master: 0, Addr: 1}}, nil)
	blocked := true
	ctx.Status = func(addr uint32) bi.BankStatus { return bi.BankStatus{Permit: !blocked} }
	if _, ok := p.Select(ctx); ok {
		t.Fatal("should veto")
	}
	blocked = false
	if _, ok := p.Select(ctx); !ok {
		t.Fatal("should grant after unblock")
	}
	st := p.Stats()
	if st.Vetoed != 1 || st.Grants != 1 || st.Rounds != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFilterNamesAndVetoFlags(t *testing.T) {
	veto := map[string]bool{"permission": true}
	for _, f := range []Filter{
		Permission{}, Urgency{}, RealTime{}, Bandwidth{},
		BankAffinity{}, WriteBufferGate{}, RoundRobin{},
	} {
		if f.Name() == "" {
			t.Errorf("%T has empty name", f)
		}
		if f.CanVeto() != veto[f.Name()] {
			t.Errorf("%s CanVeto = %v", f.Name(), f.CanVeto())
		}
	}
}

func TestWriteBufferGateOnlyOthersWhenEmptyBand(t *testing.T) {
	// Occupancy exactly at the 1/4 boundary with a lone WB request:
	// the drain must still be grantable (pass-through protection).
	p := NewPipeline(WriteBufferGate{}, RoundRobin{})
	ctx := ctxWith([]Request{{Master: 5, IsWriteBuf: true}}, nil)
	ctx.WBCap = 8
	ctx.WBUsed = 2
	w, ok := p.Select(ctx)
	if !ok || !ctx.Reqs[w].IsWriteBuf {
		t.Fatal("lone drain at low occupancy must be granted")
	}
}

func TestContextSinceDrivesUrgencyNotArrivalOrder(t *testing.T) {
	// Request order in the slice must not matter; Since does.
	regs := map[int]qos.Reg{
		0: {Class: qos.RT, Objective: 50},
		1: {Class: qos.RT, Objective: 50},
	}
	p := NewPipeline(Urgency{}, RoundRobin{})
	// Master 1 listed first but waited less.
	ctx := ctxWith([]Request{{Master: 1, Since: 95}, {Master: 0, Since: 55}}, regs)
	ctx.Now = 100
	ctx.UrgencyThreshold = 10
	w, _ := p.Select(ctx)
	if ctx.Reqs[w].Master != 0 {
		t.Fatal("longest-waiting urgent request must win regardless of slice order")
	}
}

func TestPipelineScratchReuseAcrossRounds(t *testing.T) {
	// Many rounds of different sizes on one pipeline: results stay
	// correct (guards against scratch-buffer aliasing bugs).
	p := Default()
	for n := 1; n <= 6; n++ {
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Master: i, Since: sim.Cycle(i)}
		}
		ctx := ctxWith(reqs, nil)
		w, ok := p.Select(ctx)
		if !ok || w < 0 || w >= n {
			t.Fatalf("n=%d: bad selection %d/%v", n, w, ok)
		}
	}
}

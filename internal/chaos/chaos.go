// Package chaos is the fault-injection layer behind the cluster's
// resilience tests: an HTTP middleware that can kill, hang, slow,
// 503 or corrupt responses on demand from test code, and a store
// fault that corrupts result envelopes on disk. It promotes the
// repo's adversarial differential-testing habit to whole-cluster
// scope — the chaos smoke (examples/chaos_service) and the shard
// package's failover tests drive a real router over real backends
// while this package breaks things, and assert the serving layer's
// promises hold: zero error rows under single-shard loss,
// byte-identical analyses, truthful terminal summaries.
//
// Faults are ARMED, not configured: Arm(fault, n) injects the fault
// into the next n matching requests and then the injector goes
// transparent again. That makes recovery scenarios (fail N requests,
// then heal) deterministic without any clock coupling between the
// test and the victim.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Fault enumerates the injectable behaviors.
type Fault int

const (
	// None passes requests through untouched.
	None Fault = iota
	// Kill aborts the connection mid-response (the client sees a
	// transport error, exactly like a SIGKILLed process).
	Kill
	// Hang never responds; the request blocks until the client (or a
	// router attempt timeout) gives up.
	Hang
	// Slow delays the response by the injector's Delay, then serves
	// normally.
	Slow
	// Unavailable answers 503 with a Retry-After, imitating a
	// saturated backend.
	Unavailable
	// Corrupt serves the real response with its body bytes mangled.
	Corrupt
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Kill:
		return "kill"
	case Hang:
		return "hang"
	case Slow:
		return "slow"
	case Unavailable:
		return "unavailable"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Injector is an HTTP middleware with an armable fault. The zero
// value is a transparent proxy; it is safe for concurrent use.
type Injector struct {
	mu        sync.Mutex
	fault     Fault
	remaining int // requests left to fault; < 0 means until Clear
	path      string
	delay     time.Duration
}

// Arm makes the next n matching requests experience the fault
// (n < 0: every request until Clear). Matching is by path prefix set
// with ArmPath; an empty prefix matches everything.
func (in *Injector) Arm(f Fault, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fault = f
	in.remaining = n
}

// ArmPath is Arm restricted to requests whose URL path starts with
// prefix — so a test can break /run while /healthz keeps answering,
// which is exactly the shape of a wedged-but-alive backend (and what
// lets a circuit breaker's health probe see recovery).
func (in *Injector) ArmPath(f Fault, n int, prefix string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fault = f
	in.remaining = n
	in.path = prefix
}

// SetDelay sets the Slow fault's delay.
func (in *Injector) SetDelay(d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.delay = d
}

// Clear disarms the injector.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fault = None
	in.remaining = 0
	in.path = ""
}

// take consumes one faulted request if the injector is armed for this
// request, returning the fault to apply (and the Slow delay).
func (in *Injector) take(r *http.Request) (Fault, time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fault == None || in.remaining == 0 {
		return None, 0
	}
	if in.path != "" && !strings.HasPrefix(r.URL.Path, in.path) {
		return None, 0
	}
	if in.remaining > 0 {
		in.remaining--
	}
	return in.fault, in.delay
}

// Middleware wraps next with the injector.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fault, delay := in.take(r)
		switch fault {
		case Kill:
			// The canonical way to abort the connection without a
			// response: the client observes EOF/RST, indistinguishable
			// from the process dying under it.
			panic(http.ErrAbortHandler)
		case Hang:
			// Hold the request until the CLIENT gives up — a wedged
			// handler never politely times itself out. Drain the body
			// first: the HTTP server only watches for the client
			// vanishing once the request body has been consumed, and a
			// hang that also blinds itself to disconnects would wedge
			// graceful shutdown behind every abandoned request.
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		case Slow:
			io.Copy(io.Discard, r.Body)
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				panic(http.ErrAbortHandler)
			}
		case Unavailable:
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"injected: unavailable"}`))
			return
		case Corrupt:
			next.ServeHTTP(&corruptingWriter{ResponseWriter: w}, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// corruptingWriter flips bits in every body chunk it forwards. The
// headers (status, content-type) pass through intact — corruption
// that announces itself in the status line is not corruption, it's an
// error response.
type corruptingWriter struct {
	http.ResponseWriter
}

func (c *corruptingWriter) Write(b []byte) (int, error) {
	mangled := make([]byte, len(b))
	for i, by := range b {
		mangled[i] = by ^ 0x5a
	}
	n, err := c.ResponseWriter.Write(mangled)
	if n > len(b) {
		n = len(b)
	}
	return n, err
}

// CorruptResults overwrites the envelope header of up to n result
// files under dir (an internal/store directory), returning how many
// were damaged. The files are picked in sorted-name order so drills
// are deterministic. A store that reopens the directory must detect,
// count and delete every one of them — that assertion is the point.
func CorruptResults(dir string, n int) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var names []string
	for _, de := range entries {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".res") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	damaged := 0
	for _, name := range names {
		if damaged >= n {
			break
		}
		path := filepath.Join(dir, name)
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return damaged, err
		}
		// Stomp the magic: the cheapest damage every header read
		// catches.
		if _, err := f.WriteAt([]byte("CHAOSCHAOS"), 0); err != nil {
			f.Close()
			return damaged, err
		}
		f.Close()
		damaged++
	}
	return damaged, nil
}

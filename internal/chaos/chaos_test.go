package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// echoHandler answers 200 "ok" and is the victim behind the injector.
func echoHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
}

func get(t *testing.T, url string) (int, string, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(body), nil
}

func TestInjectorArmsForExactlyNRequests(t *testing.T) {
	in := &Injector{}
	ts := httptest.NewServer(in.Middleware(echoHandler()))
	t.Cleanup(ts.Close)

	// Transparent by default.
	if status, body, err := get(t, ts.URL); err != nil || status != 200 || body != "ok" {
		t.Fatalf("unarmed: %d %q %v", status, body, err)
	}

	in.Arm(Unavailable, 2)
	for i := 0; i < 2; i++ {
		status, body, err := get(t, ts.URL)
		if err != nil || status != http.StatusServiceUnavailable {
			t.Fatalf("armed request %d: %d %v", i, status, err)
		}
		if !strings.Contains(body, "injected") {
			t.Fatalf("injected 503 body %q", body)
		}
	}
	// Spent: back to transparent without any Clear.
	if status, _, err := get(t, ts.URL); err != nil || status != 200 {
		t.Fatalf("after exhaustion: %d %v", status, err)
	}
}

func TestInjectorPathScopingAndClear(t *testing.T) {
	in := &Injector{}
	ts := httptest.NewServer(in.Middleware(echoHandler()))
	t.Cleanup(ts.Close)

	// Scoped to /run: /healthz keeps answering — the wedged-but-alive
	// backend shape the breaker probes rely on.
	in.ArmPath(Kill, -1, "/run")
	if _, _, err := get(t, ts.URL+"/run"); err == nil {
		t.Fatal("killed path answered")
	}
	if status, _, err := get(t, ts.URL+"/healthz"); err != nil || status != 200 {
		t.Fatalf("scoped fault leaked onto /healthz: %d %v", status, err)
	}
	// Unlimited arming persists until Clear.
	if _, _, err := get(t, ts.URL+"/run"); err == nil {
		t.Fatal("n<0 fault expired on its own")
	}
	in.Clear()
	if status, _, err := get(t, ts.URL+"/run"); err != nil || status != 200 {
		t.Fatalf("after Clear: %d %v", status, err)
	}
}

func TestInjectorKillLooksLikeADeadProcess(t *testing.T) {
	in := &Injector{}
	ts := httptest.NewServer(in.Middleware(echoHandler()))
	t.Cleanup(ts.Close)
	in.Arm(Kill, 1)
	if _, _, err := get(t, ts.URL); err == nil {
		t.Fatal("killed connection produced a response")
	}
}

func TestInjectorSlowDelaysThenServes(t *testing.T) {
	in := &Injector{}
	ts := httptest.NewServer(in.Middleware(echoHandler()))
	t.Cleanup(ts.Close)
	in.SetDelay(50 * time.Millisecond)
	in.Arm(Slow, 1)
	start := time.Now()
	status, body, err := get(t, ts.URL)
	if err != nil || status != 200 || body != "ok" {
		t.Fatalf("slow: %d %q %v", status, body, err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("served in %v, want >= the injected 50ms", elapsed)
	}
}

func TestInjectorCorruptManglesBody(t *testing.T) {
	in := &Injector{}
	ts := httptest.NewServer(in.Middleware(echoHandler()))
	t.Cleanup(ts.Close)
	in.Arm(Corrupt, 1)
	status, body, err := get(t, ts.URL)
	if err != nil || status != 200 {
		t.Fatalf("corrupt: %d %v", status, err)
	}
	if body == "ok" {
		t.Fatal("corrupting writer passed the body through intact")
	}
	// Deterministic damage: XOR 0x5a, so the mangling is invertible in
	// assertions.
	want := string([]byte{'o' ^ 0x5a, 'k' ^ 0x5a})
	if body != want {
		t.Fatalf("mangled body %q, want %q", body, want)
	}
}

func TestCorruptResultsDamagesOldestNamesFirst(t *testing.T) {
	dir := t.TempDir()
	names := []string{"aa.res", "bb.res", "cc.res", "not-a-result.tmp"}
	for _, n := range names {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("simstore1 header then body"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	damaged, err := CorruptResults(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if damaged != 2 {
		t.Fatalf("damaged %d, want 2", damaged)
	}
	for i, n := range []string{"aa.res", "bb.res", "cc.res"} {
		raw, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			t.Fatal(err)
		}
		stomped := strings.HasPrefix(string(raw), "CHAOSCHAOS")
		if want := i < 2; stomped != want {
			t.Fatalf("%s stomped=%v, want %v (sorted-order damage)", n, stomped, want)
		}
	}
	// Non-.res files are never touched.
	raw, _ := os.ReadFile(filepath.Join(dir, "not-a-result.tmp"))
	if strings.HasPrefix(string(raw), "CHAOSCHAOS") {
		t.Fatal(".tmp file damaged")
	}
}

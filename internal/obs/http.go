package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log"
	"net/http"
	"strconv"
	"time"
)

// RequestIDHeader is the tracing header both tiers speak: the router
// mints one per request (or honors a well-formed client value) and
// forwards it to the owning/failover shard, so one ID stitches the
// hop chain together in logs and error bodies.
const RequestIDHeader = "X-Request-ID"

// ridKey is the context key carrying the request ID.
type ridKey struct{}

// WithRequestID returns ctx carrying rid.
func WithRequestID(ctx context.Context, rid string) context.Context {
	return context.WithValue(ctx, ridKey{}, rid)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey{}).(string)
	return rid
}

// validRequestID accepts client-supplied IDs that are safe to echo
// into headers and logs: 1-64 chars of [A-Za-z0-9._-].
func validRequestID(rid string) bool {
	if len(rid) == 0 || len(rid) > 64 {
		return false
	}
	for i := 0; i < len(rid); i++ {
		c := rid[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// NewRequestID mints a 16-hex-char random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a
		// constant here only degrades log correlation, not serving.
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// EnsureRequestID returns the request's ID — the client's if
// well-formed, otherwise freshly minted — and a context carrying it.
func EnsureRequestID(r *http.Request) (string, context.Context) {
	rid := r.Header.Get(RequestIDHeader)
	if !validRequestID(rid) {
		rid = NewRequestID()
	}
	return rid, WithRequestID(r.Context(), rid)
}

// HTTPMetrics instruments handlers with per-endpoint request counts
// and latency histograms, and enforces the request-ID contract on
// every wrapped endpoint.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
}

// NewHTTPMetrics registers <prefix>http_requests_total{endpoint,code}
// and <prefix>http_request_seconds{endpoint} on reg.
func NewHTTPMetrics(reg *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.CounterVec(prefix+"http_requests_total", "HTTP requests by endpoint and status code.", "endpoint", "code"),
		latency:  reg.HistogramVec(prefix+"http_request_seconds", "HTTP request latency by endpoint.", DefTimeBuckets, "endpoint"),
	}
}

// statusWriter records the response code. It forwards Flush because
// the NDJSON sweep stream depends on per-row flushes reaching the
// client — a wrapper that swallows Flusher would silently rebuffer
// the stream.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Wrap instruments h: ensures a request ID (echoed on the response
// and carried in the request context), counts the request under
// endpoint/code, observes latency, and logs a structured line for
// non-2xx responses.
func (m *HTTPMetrics) Wrap(endpoint string, h http.Handler) http.Handler {
	lat := m.latency.With(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid, ctx := EnsureRequestID(r)
		w.Header().Set(RequestIDHeader, rid)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		m.requests.With(endpoint, strconv.Itoa(status)).Inc()
		lat.Observe(elapsed.Seconds())
		if status < 200 || status > 299 {
			log.Printf("request endpoint=%s status=%d rid=%s dur=%s", endpoint, status, rid, elapsed.Round(time.Microsecond))
		}
	})
}

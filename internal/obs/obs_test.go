package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with every metric kind and
// deliberately awkward label values, in non-alphabetical registration
// order so the test proves exposition sorting, not insertion luck.
func goldenRegistry() *Registry {
	reg := NewRegistry()

	rows := reg.Counter("simd_sweep_rows_total", "Sweep rows streamed.")
	rows.Add(64)

	cache := reg.CounterVec("simd_cache_requests_total", "Cache lookups by disposition.", "tier")
	cache.With("memory_hit").Add(10)
	cache.With("disk_hit").Add(4)
	cache.With("miss").Add(7)
	cache.With("coalesced").Inc()

	lat := reg.HistogramVec("simd_http_request_seconds", "Request latency.", []float64{0.01, 0.1, 1}, "endpoint")
	run := lat.With("/run")
	run.Observe(0.004)
	run.Observe(0.05)
	run.Observe(0.05)
	run.Observe(2.5)
	lat.With("/healthz").Observe(0.001)

	depth := reg.Gauge("simd_pool_queue_depth", "Jobs waiting in the pool queue.")
	depth.Set(3)

	reg.GaugeFunc("simd_pool_in_flight", "Jobs currently executing.", func() float64 { return 2 })
	reg.CounterFunc("simd_jobs_total", "Simulations executed.", func() uint64 { return 21 })

	weird := reg.GaugeVec("simd_label_escaping", "Label escaping fixture: backslash, quote, newline.", "path")
	weird.With(`C:\temp\"quoted"` + "\nline2").Set(1.5)

	breaker := reg.GaugeVec("simd_router_breaker_state", "Breaker state per shard (0 closed, 1 half-open, 2 open).", "shard")
	breaker.With("0").Set(0)
	breaker.With("1").Set(2)
	return reg
}

func TestExpositionGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// A second snapshot must be byte-identical: exposition may not
	// depend on map iteration order.
	var b2 strings.Builder
	if err := goldenRegistry().WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Error("two snapshots of identical state differ — exposition is nondeterministic")
	}
}

func TestHistogramInvariants(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_seconds", "", []float64{0.1, 1, 10})
	vals := []float64{0.05, 0.5, 0.5, 5, 50, 0.09}
	var sum float64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	fams := reg.Families()

	var prev uint64
	bounds := []string{"0.1", "1", "10", "+Inf"}
	wantCum := []uint64{2, 4, 5, 6}
	for i, le := range bounds {
		got := Find(fams, "t_seconds_bucket", "le", le)
		if len(got) != 1 {
			t.Fatalf("bucket le=%s: %d samples", le, len(got))
		}
		n, _ := strconv.ParseUint(got[0], 10, 64)
		if n < prev {
			t.Errorf("bucket le=%s not cumulative: %d < %d", le, n, prev)
		}
		if n != wantCum[i] {
			t.Errorf("bucket le=%s = %d, want %d", le, n, wantCum[i])
		}
		prev = n
	}
	count := Find(fams, "t_seconds_count")
	if len(count) != 1 || count[0] != "6" {
		t.Errorf("_count = %v, want [6]", count)
	}
	if inf := Find(fams, "t_seconds_bucket", "le", "+Inf"); inf[0] != count[0] {
		t.Errorf("+Inf bucket %s != _count %s", inf[0], count[0])
	}
	gotSum := Find(fams, "t_seconds_sum")
	s, _ := strconv.ParseFloat(gotSum[0], 64)
	if math.Abs(s-sum) > 1e-9 {
		t.Errorf("_sum = %v, want %v", s, sum)
	}
}

func TestParseRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 strings.Builder
	if err := WriteFamilies(&b2, fams); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Errorf("parse/write round trip not byte-identical\n--- reprinted ---\n%s\n--- original ---\n%s", b2.String(), b.String())
	}

	// The awkward label value must survive the trip intact.
	want := `C:\temp\"quoted"` + "\nline2"
	got := Find(fams, "simd_label_escaping")
	if len(got) != 1 {
		t.Fatalf("escaping fixture: %d samples", len(got))
	}
	found := false
	for _, f := range fams {
		for _, s := range f.Samples {
			for _, l := range s.Labels {
				if l.Name == "path" && l.Value == want {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("escaped label value did not round-trip")
	}
}

func TestRelabelMerge(t *testing.T) {
	mk := func(v string) []Family {
		reg := NewRegistry()
		c := reg.CounterVec("hits_total", "Hits.", "tier")
		c.With("memory").Add(1)
		h := reg.Histogram("lat_seconds", "Latency.", []float64{1})
		h.Observe(0.5)
		_ = v
		return reg.Families()
	}
	own := NewRegistry()
	own.Counter("router_up", "Router liveness.").Inc()

	merged := MergeFamilies(own.Families(), Relabel(mk("a"), "shard", "0"), Relabel(mk("b"), "shard", "1"))

	if got := Find(merged, "hits_total", "shard", "0", "tier", "memory"); len(got) != 1 || got[0] != "1" {
		t.Errorf("shard 0 hits = %v", got)
	}
	if got := Find(merged, "hits_total", "shard", "1"); len(got) != 1 {
		t.Errorf("shard 1 hits = %v", got)
	}
	// Families must come out name-sorted, each exactly once.
	var names []string
	for _, f := range merged {
		names = append(names, f.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("merged families not strictly sorted: %v", names)
		}
	}
	// Histogram bucket ordering must survive merging: per shard, the
	// le="1" bucket precedes le="+Inf".
	var seq []string
	for _, f := range merged {
		if f.Name != "lat_seconds" {
			continue
		}
		for _, s := range f.Samples {
			if s.Name == "lat_seconds_bucket" {
				for _, l := range s.Labels {
					if l.Name == "le" {
						seq = append(seq, l.Value)
					}
				}
			}
		}
	}
	want := []string{"1", "+Inf", "1", "+Inf"}
	if len(seq) != len(want) {
		t.Fatalf("bucket sequence %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("bucket sequence %v, want %v (order destroyed by merge)", seq, want)
		}
	}
}

// TestConcurrentHammer drives counters, gauges and histograms from 32
// goroutines under -race, with concurrent scrapes. Totals must be
// exact: instrumentation may never drop events.
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer_total", "")
	cv := reg.CounterVec("hammer_vec_total", "", "worker")
	g := reg.Gauge("hammer_gauge", "")
	h := reg.Histogram("hammer_seconds", "", []float64{0.25, 0.5, 0.75})

	const goroutines = 32
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lane := cv.With(strconv.Itoa(id % 4))
			for j := 0; j < perG; j++ {
				c.Inc()
				lane.Inc()
				g.Set(float64(j))
				h.Observe(float64(j%100) / 100)
			}
		}(i)
	}
	// Concurrent scrapes must not race with writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := reg.WriteText(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	const total = goroutines * perG
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	fams := reg.Families()
	var vecSum uint64
	for _, v := range Find(fams, "hammer_vec_total") {
		n, _ := strconv.ParseUint(v, 10, 64)
		vecSum += n
	}
	if vecSum != total {
		t.Errorf("vec counter sum = %d, want %d", vecSum, total)
	}
	if got := Find(fams, "hammer_seconds_count"); len(got) != 1 || got[0] != strconv.Itoa(total) {
		t.Errorf("histogram _count = %v, want %d", got, total)
	}
	if inf := Find(fams, "hammer_seconds_bucket", "le", "+Inf"); inf[0] != strconv.Itoa(total) {
		t.Errorf("+Inf bucket = %s, want %d", inf[0], total)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	reg.Counter("dup_total", "")
}

func TestRequestIDValidation(t *testing.T) {
	for _, ok := range []string{"abc", "a-b_c.9", strings.Repeat("x", 64)} {
		if !validRequestID(ok) {
			t.Errorf("validRequestID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "has space", "semi;colon", strings.Repeat("x", 65), "new\nline", `q"uote`} {
		if validRequestID(bad) {
			t.Errorf("validRequestID(%q) = true, want false", bad)
		}
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Error("two minted request IDs collide")
	}
	if !validRequestID(a) {
		t.Errorf("minted ID %q fails own validation", a)
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Label is one name=value pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line. Value stays the raw rendered string
// through parse → relabel → merge, so the router re-exposes backend
// samples byte-identically instead of round-tripping them through
// float64.
type Sample struct {
	Name   string
	Labels []Label
	Value  string
}

// Family is one metric family: metadata plus its samples in
// exposition order.
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WriteFamilies renders families in exposition text format.
func WriteFamilies(w io.Writer, fams []Family) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			bw.WriteString(s.Name)
			if len(s.Labels) > 0 {
				bw.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						bw.WriteByte(',')
					}
					fmt.Fprintf(bw, `%s="%s"`, l.Name, escapeLabel(l.Value))
				}
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(s.Value)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ParseText parses exposition text back into families — the scrape
// half of the router's cluster aggregation. It understands exactly
// the subset WriteFamilies emits (one # HELP / # TYPE per family,
// samples grouped under their family header, no timestamps).
func ParseText(r io.Reader) ([]Family, error) {
	var fams []Family
	byName := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	cur := -1
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, help, _ := strings.Cut(rest, " ")
			cur = familyIndex(&fams, byName, name)
			fams[cur].Help = unescapeHelp(help)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("obs: malformed TYPE line %q", line)
			}
			cur = familyIndex(&fams, byName, name)
			fams[cur].Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal exposition; skip
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, err
		}
		// _bucket/_sum/_count belong to the base histogram family.
		fam := baseName(s.Name)
		idx, ok := byName[fam]
		if !ok {
			idx = familyIndex(&fams, byName, fam)
			fams[idx].Type = "untyped"
		}
		cur = idx
		fams[cur].Samples = append(fams[cur].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// familyIndex finds or appends the family entry for name.
func familyIndex(fams *[]Family, byName map[string]int, name string) int {
	if i, ok := byName[name]; ok {
		return i
	}
	*fams = append(*fams, Family{Name: name})
	byName[name] = len(*fams) - 1
	return len(*fams) - 1
}

// baseName strips histogram sample suffixes down to the family name.
func baseName(sample string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(sample, suf) {
			return strings.TrimSuffix(sample, suf)
		}
	}
	return sample
}

// unescapeHelp reverses escapeHelp.
func unescapeHelp(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			switch v[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// parseSample parses one `name{a="b",...} value` line.
func parseSample(line string) (Sample, error) {
	var s Sample
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			return s, fmt.Errorf("obs: malformed sample %q", line)
		}
		s.Name, s.Value = name, strings.TrimSpace(value)
		return s, nil
	}
	s.Name = line[:brace]
	rest := line[brace+1:]
	for {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return s, fmt.Errorf("obs: malformed labels in %q", line)
		}
		name := rest[:eq]
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return s, fmt.Errorf("obs: malformed label value in %q", line)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(c)
					val.WriteByte(rest[i+1])
				}
				i++
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return s, fmt.Errorf("obs: unterminated label value in %q", line)
		}
		s.Labels = append(s.Labels, Label{Name: name, Value: val.String()})
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			rest = strings.TrimSpace(rest[1:])
			break
		}
		return s, fmt.Errorf("obs: malformed label separator in %q", line)
	}
	if rest == "" {
		return s, fmt.Errorf("obs: missing value in %q", line)
	}
	s.Value = rest
	return s, nil
}

// Relabel returns fams with `name=value` prepended to every sample's
// label set — how a backend's series acquire their shard label before
// the router merges them with its own.
func Relabel(fams []Family, name, value string) []Family {
	out := make([]Family, len(fams))
	for i, f := range fams {
		nf := Family{Name: f.Name, Type: f.Type, Help: f.Help, Samples: make([]Sample, len(f.Samples))}
		for j, s := range f.Samples {
			labels := make([]Label, 0, len(s.Labels)+1)
			labels = append(labels, Label{Name: name, Value: value})
			labels = append(labels, s.Labels...)
			nf.Samples[j] = Sample{Name: s.Name, Labels: labels, Value: s.Value}
		}
		out[i] = nf
	}
	return out
}

// MergeFamilies combines several family sets into one deterministic
// exposition: families sort by name; within a family, samples keep
// the order of the input groups (router-own series first, then shard
// 0..N-1) and their within-group order — which preserves per-series
// histogram bucket ordering, something a global sort would destroy
// (le="+Inf" does not sort numerically).
func MergeFamilies(groups ...[]Family) []Family {
	merged := make(map[string]*Family)
	var names []string
	for _, g := range groups {
		for _, f := range g {
			m, ok := merged[f.Name]
			if !ok {
				nf := Family{Name: f.Name, Type: f.Type, Help: f.Help}
				merged[f.Name] = &nf
				m = merged[f.Name]
				names = append(names, f.Name)
			}
			if m.Help == "" {
				m.Help = f.Help
			}
			if m.Type == "" || m.Type == "untyped" {
				m.Type = f.Type
			}
			m.Samples = append(m.Samples, f.Samples...)
		}
	}
	sort.Strings(names)
	out := make([]Family, len(names))
	for i, n := range names {
		out[i] = *merged[n]
	}
	return out
}

// Find returns the value strings of samples in fams matching name and
// the given label subset (pairs of name, value) — the lookup helper
// smokes and tests gate on.
func Find(fams []Family, name string, labelPairs ...string) []string {
	if len(labelPairs)%2 != 0 {
		panic("obs: Find label pairs must come in twos")
	}
	var out []string
	for _, f := range fams {
		for _, s := range f.Samples {
			if s.Name != name {
				continue
			}
			match := true
			for i := 0; i < len(labelPairs); i += 2 {
				found := false
				for _, l := range s.Labels {
					if l.Name == labelPairs[i] && l.Value == labelPairs[i+1] {
						found = true
						break
					}
				}
				if !found {
					match = false
					break
				}
			}
			if match {
				out = append(out, s.Value)
			}
		}
	}
	return out
}

// Package obs is the observability layer: a zero-dependency metrics
// registry (counters, gauges, fixed-bucket histograms) with
// deterministic Prometheus text-format exposition, a parser for the
// same format (the shard router re-exposes its backends' series under
// a shard label), and the HTTP instrumentation middleware both tiers
// share (per-endpoint request counters, latency histograms and the
// X-Request-ID contract).
//
// Hot-path cost is kept to atomics: a counter increment is one
// atomic add, a histogram observation is one atomic bucket add plus
// one CAS-loop float add. Label lookup (Vec.With) takes a read lock
// and a map probe, so instrumented code resolves its series once at
// construction and holds the pointer — never per event. Exposition
// walks the registry under its lock, but scrapes are rare and cheap
// relative to simulations.
//
// Exposition is deterministic: families sort by name, series within a
// family sort by label values, floats render via strconv 'g'
// formatting, histogram buckets emit in ascending bound order with
// the +Inf bucket equal to _count. Determinism is what makes the
// format golden-file-testable and cluster merges stable.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric family types, as emitted on # TYPE lines.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// DefTimeBuckets is the default latency histogram layout (seconds):
// half-millisecond resolution at the fast end (a warm cache hit),
// ten-second reach at the slow end (a cold RTL sweep variant under a
// saturated pool).
var DefTimeBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu       sync.Mutex
	families map[string]*familyState
}

// familyState is one registered family: fixed metadata plus its live
// series, keyed by joined label values.
type familyState struct {
	name, help string
	typ        string
	labelNames []string
	buckets    []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]*series
}

// series is one label combination's live state. Exactly one of the
// value holders is used, per the family type.
type series struct {
	labelValues []string

	count   atomic.Uint64   // counter
	fnU     func() uint64   // counter sourced from a callback
	gauge   atomic.Uint64   // gauge (float bits)
	fnF     func() float64  // gauge sourced from a callback
	buckets []atomic.Uint64 // histogram: one per bound, non-cumulative
	inf     atomic.Uint64   // histogram: observations past the last bound
	sum     atomic.Uint64   // histogram: float bits, CAS-added
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*familyState)}
}

// register installs a family; a duplicate name is a programming error.
func (r *Registry) register(name, help, typ string, labelNames []string, buckets []float64) *familyState {
	if name == "" {
		panic("obs: metric with an empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	f := &familyState{name: name, help: help, typ: typ, labelNames: labelNames, buckets: buckets, series: make(map[string]*series)}
	r.families[name] = f
	return f
}

// with resolves (creating if needed) the series for the given label
// values; arity mismatches are programming errors.
func (f *familyState) with(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	if f.typ == TypeHistogram {
		s.buckets = make([]atomic.Uint64, len(f.buckets))
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing uint64.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.count.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.s.count.Add(n) }

// Value returns the current count (tests and gates).
func (c *Counter) Value() uint64 { return c.s.count.Load() }

// CounterVec is a labeled counter family.
type CounterVec struct{ f *familyState }

// With resolves one label combination. Resolve once and keep the
// pointer — With takes a lock.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{v.f.with(values)} }

// Func registers a callback-backed counter under one label
// combination — for counters that already live elsewhere as atomics
// (per-tier cache dispositions derived from healthz counters).
func (v *CounterVec) Func(fn func() uint64, values ...string) { v.f.with(values).fnU = fn }

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{r.register(name, help, TypeCounter, nil, nil).with(nil)}
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, TypeCounter, labelNames, nil)}
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for counters that already live
// elsewhere as atomics (the service's healthz counters).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, TypeCounter, nil, nil).with(nil).fnU = fn
}

// Gauge is a settable float64.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.gauge.Store(math.Float64bits(v)) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *familyState }

// With resolves one label combination.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{v.f.with(values)} }

// Func registers a callback-backed gauge under one label combination
// (per-shard breaker state, per-pool queue depth).
func (v *GaugeVec) Func(fn func() float64, values ...string) { v.f.with(values).fnF = fn }

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{r.register(name, help, TypeGauge, nil, nil).with(nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, TypeGauge, labelNames, nil)}
}

// GaugeFunc registers a gauge whose value is read from fn at
// exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeGauge, nil, nil).with(nil).fnF = fn
}

// Histogram is a fixed-bucket distribution.
type Histogram struct {
	s      *series
	bounds []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (tens) and the scan is
	// branch-predictable; a binary search saves nothing at this size.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.s.buckets[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.s.inf.Add(1)
	}
	for {
		old := h.s.sum.Load()
		if h.s.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *familyState }

// With resolves one label combination.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{s: v.f.with(values), bounds: v.f.buckets}
}

// Histogram registers an unlabeled fixed-bucket histogram. Buckets
// are upper bounds in ascending order; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, TypeHistogram, nil, checkBuckets(name, buckets))
	return &Histogram{s: f.with(nil), bounds: f.buckets}
}

// HistogramVec registers a labeled fixed-bucket histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, TypeHistogram, labelNames, checkBuckets(name, buckets))}
}

// checkBuckets validates ascending finite bounds (programming errors).
func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic("obs: histogram " + name + " with no buckets")
	}
	for i, b := range buckets {
		if math.IsInf(b, 0) || math.IsNaN(b) || (i > 0 && b <= buckets[i-1]) {
			panic("obs: histogram " + name + " buckets must be finite and ascending")
		}
	}
	return append([]float64(nil), buckets...)
}

// formatFloat renders a float deterministically ('g', shortest).
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Families snapshots the registry as parsed-form families — the
// exchange format the shard router merges its backends' scrapes into.
// Families sort by name, series by label values; sample values are
// rendered strings, so a snapshot round-trips through WriteFamilies
// byte-identically.
func (r *Registry) Families() []Family {
	r.mu.Lock()
	states := make([]*familyState, 0, len(r.families))
	for _, f := range r.families {
		states = append(states, f)
	}
	r.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].name < states[j].name })

	out := make([]Family, 0, len(states))
	for _, f := range states {
		fam := Family{Name: f.name, Type: f.typ, Help: f.help}
		f.mu.RLock()
		ordered := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ordered = append(ordered, s)
		}
		f.mu.RUnlock()
		sort.Slice(ordered, func(i, j int) bool {
			return strings.Join(ordered[i].labelValues, "\x00") < strings.Join(ordered[j].labelValues, "\x00")
		})
		for _, s := range ordered {
			labels := make([]Label, len(f.labelNames))
			for i, n := range f.labelNames {
				labels[i] = Label{Name: n, Value: s.labelValues[i]}
			}
			switch f.typ {
			case TypeCounter:
				v := s.count.Load()
				if s.fnU != nil {
					v = s.fnU()
				}
				fam.Samples = append(fam.Samples, Sample{Name: f.name, Labels: labels, Value: strconv.FormatUint(v, 10)})
			case TypeGauge:
				v := math.Float64frombits(s.gauge.Load())
				if s.fnF != nil {
					v = s.fnF()
				}
				fam.Samples = append(fam.Samples, Sample{Name: f.name, Labels: labels, Value: formatFloat(v)})
			case TypeHistogram:
				// Cumulative buckets ascending, then +Inf == _count, then
				// _sum and _count — the histogram exposition invariants.
				var cum uint64
				for i, b := range f.buckets {
					cum += s.buckets[i].Load()
					bl := append(append([]Label(nil), labels...), Label{Name: "le", Value: formatFloat(b)})
					fam.Samples = append(fam.Samples, Sample{Name: f.name + "_bucket", Labels: bl, Value: strconv.FormatUint(cum, 10)})
				}
				cum += s.inf.Load()
				bl := append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"})
				fam.Samples = append(fam.Samples, Sample{Name: f.name + "_bucket", Labels: bl, Value: strconv.FormatUint(cum, 10)})
				fam.Samples = append(fam.Samples,
					Sample{Name: f.name + "_sum", Labels: labels, Value: formatFloat(math.Float64frombits(s.sum.Load()))},
					Sample{Name: f.name + "_count", Labels: labels, Value: strconv.FormatUint(cum, 10)})
			}
		}
		out = append(out, fam)
	}
	return out
}

// WriteText renders the registry in Prometheus text format.
func (r *Registry) WriteText(w io.Writer) error { return WriteFamilies(w, r.Families()) }

// Handler serves the registry at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		r.WriteText(w)
	})
}

// ContentType is the exposition MIME type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

package sched

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// gate blocks the scheduler's single worker so tests can stage queue
// contents deterministically, then releases it.
type gate struct {
	started chan struct{}
	release chan struct{}
}

func newGate() *gate {
	return &gate{started: make(chan struct{}), release: make(chan struct{})}
}

// hold submits the blocking job and waits until it occupies a worker.
func (g *gate) hold(t *testing.T, s *Scheduler) func() {
	t.Helper()
	wait, err := s.Submit("gate", Interactive, func() { close(g.started); <-g.release })
	if err != nil {
		t.Fatalf("gate submit: %v", err)
	}
	<-g.started
	return wait
}

// order records job completion order; with one worker, completion
// order IS dispatch order.
type order struct {
	mu    sync.Mutex
	names []string
}

func (o *order) add(name string) {
	o.mu.Lock()
	o.names = append(o.names, name)
	o.mu.Unlock()
}

func (o *order) snapshot() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.names...)
}

// TestWeightedClassSharing pins the 4:1 interactive:batch discipline:
// with both classes backlogged on one worker, every window of five
// dispatches gives interactive four slots.
func TestWeightedClassSharing(t *testing.T) {
	s := New(Options{Workers: 1, Queue: 32})
	defer s.Close()
	g := newGate()
	gw := g.hold(t, s)

	var got order
	var waits []func()
	submit := func(tenant string, class Class, name string) {
		w, err := s.Submit(tenant, class, func() { got.add(name) })
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		waits = append(waits, w)
	}
	for i := 0; i < 8; i++ {
		submit("alice", Interactive, "I")
	}
	for i := 0; i < 8; i++ {
		submit("bob", Batch, "B")
	}
	close(g.release)
	gw()
	for _, w := range waits {
		w()
	}

	names := got.snapshot()
	interactive := 0
	for _, n := range names[:10] {
		if n == "I" {
			interactive++
		}
	}
	// Weights 4:1 over the first ten dispatches: all eight interactive
	// jobs and exactly two batch jobs (the stride pattern is
	// deterministic: I B I I I I B I I I ...).
	if interactive != 8 {
		t.Fatalf("first 10 dispatches ran %d interactive jobs, want 8: %v", interactive, names)
	}
	if names[0] != "I" {
		t.Fatalf("first dispatch was %q, want interactive: %v", names[0], names)
	}
}

// TestTenantFairnessWithinClass pins equal sharing inside one class: a
// tenant with a deep backlog alternates with a tenant holding two
// jobs instead of running its whole queue first.
func TestTenantFairnessWithinClass(t *testing.T) {
	s := New(Options{Workers: 1, Queue: 32})
	defer s.Close()
	g := newGate()
	gw := g.hold(t, s)

	var got order
	var waits []func()
	submit := func(tenant, name string) {
		w, err := s.Submit(tenant, Batch, func() { got.add(name) })
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		waits = append(waits, w)
	}
	for i := 0; i < 6; i++ {
		submit("alice", "a")
	}
	submit("bob", "b")
	submit("bob", "b")
	close(g.release)
	gw()
	for _, w := range waits {
		w()
	}

	names := got.snapshot()
	want := []string{"a", "b", "a", "b"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("dispatch order %v, want prefix %v", names, want)
		}
	}
}

// TestPanicIsolation is the pool panic contract under the scheduler
// wrapper: a panicking job rethrows at its waiter and the worker
// survives to run the next job.
func TestPanicIsolation(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()

	wait, err := s.Submit("alice", Interactive, func() { panic("boom") })
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("wait did not rethrow the job panic")
			}
			if fmt.Sprint(r) != "boom" {
				t.Fatalf("panic value %v, want boom", r)
			}
		}()
		wait()
	}()

	ran := make(chan struct{})
	wait, err = s.Submit("alice", Interactive, func() { close(ran) })
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	wait()
	select {
	case <-ran:
	default:
		t.Fatal("worker did not survive the panicking job")
	}
}

// TestCloseWhileSaturated is the pool close contract under the
// scheduler wrapper: Close stops admissions immediately but drains
// every already-queued job before returning.
func TestCloseWhileSaturated(t *testing.T) {
	s := New(Options{Workers: 1, Queue: 4})
	g := newGate()
	g.hold(t, s)

	var executed sync.WaitGroup
	executed.Add(4)
	for i := 0; i < 4; i++ {
		if _, err := s.Submit("alice", Batch, executed.Done); err != nil {
			t.Fatalf("fill submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit("alice", Batch, func() {}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("submit at cap: %v, want ErrSaturated", err)
	}

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	// Admissions stop as soon as Close marks the scheduler closed,
	// even while the drain is still blocked on the gate.
	deadline := time.After(5 * time.Second)
	for {
		_, err := s.Submit("alice", Batch, func() {})
		if errors.Is(err, ErrClosed) {
			break
		}
		if !errors.Is(err, ErrSaturated) {
			t.Fatalf("submit during close: %v", err)
		}
		select {
		case <-deadline:
			t.Fatal("Close never stopped admissions")
		case <-time.After(time.Millisecond):
		}
	}
	select {
	case <-closed:
		t.Fatal("Close returned while queued jobs were still blocked")
	default:
	}

	close(g.release)
	executed.Wait() // every queued job ran despite the close
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the drain")
	}
}

// TestRetryAfterPerClass pins the honest per-class backoff: a deep
// interactive backlog inflates interactive Retry-After only, and the
// weighted share splits the workers when both classes are backlogged.
func TestRetryAfterPerClass(t *testing.T) {
	s := New(Options{Workers: 1, Queue: 8})
	defer s.Close()

	if got := s.RetryAfterSeconds(Interactive); got != 1 {
		t.Fatalf("idle interactive retry-after %d, want 1", got)
	}
	if got := s.RetryAfterSeconds(Batch); got != 1 {
		t.Fatalf("idle batch retry-after %d, want 1", got)
	}

	g := newGate()
	gw := g.hold(t, s)
	var waits []func()
	for i := 0; i < 4; i++ {
		w, err := s.Submit("alice", Interactive, func() {})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		waits = append(waits, w)
	}
	// Interactive backlog: 4 queued + 1 in flight over its full
	// 1-worker share -> 1 + 5 = 6. Batch is idle and must still say 1.
	if got := s.RetryAfterSeconds(Interactive); got != 6 {
		t.Fatalf("loaded interactive retry-after %d, want 6", got)
	}
	if got := s.RetryAfterSeconds(Batch); got != 1 {
		t.Fatalf("batch retry-after under interactive load %d, want 1", got)
	}

	for i := 0; i < 2; i++ {
		w, err := s.Submit("bob", Batch, func() {})
		if err != nil {
			t.Fatalf("submit batch: %v", err)
		}
		waits = append(waits, w)
	}
	// Both classes backlogged: each gets its weighted share (floored
	// at one worker). Batch: 1 + 2/1 = 3; interactive unchanged.
	if got := s.RetryAfterSeconds(Batch); got != 3 {
		t.Fatalf("contended batch retry-after %d, want 3", got)
	}
	if got := s.RetryAfterSeconds(Interactive); got != 6 {
		t.Fatalf("contended interactive retry-after %d, want 6", got)
	}

	close(g.release)
	gw()
	for _, w := range waits {
		w()
	}
}

// TestSnapshotAndObserver pins the healthz snapshot shape and the
// metrics hooks: class order, sorted active tenants, rejection
// accounting, and wait/depth callbacks firing.
func TestSnapshotAndObserver(t *testing.T) {
	s := New(Options{Workers: 1, Queue: 2})
	defer s.Close()

	var mu sync.Mutex
	depths := map[string]int{}
	rejections := map[Class]int{}
	waitObs := 0
	s.SetObserver(Observer{
		QueueDepth: func(tenant string, class Class, depth int) {
			mu.Lock()
			depths[tenant+"/"+class.String()] = depth
			mu.Unlock()
		},
		Wait: func(class Class, d time.Duration) {
			mu.Lock()
			waitObs++
			mu.Unlock()
		},
		Rejected: func(class Class) {
			mu.Lock()
			rejections[class]++
			mu.Unlock()
		},
	})

	g := newGate()
	gw := g.hold(t, s)
	var waits []func()
	for _, tenant := range []string{"zoe", "ann"} {
		w, err := s.Submit(tenant, Batch, func() {})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		waits = append(waits, w)
	}
	if _, err := s.Submit("zoe", Batch, func() {}); !errors.Is(err, ErrSaturated) {
		t.Fatal("batch cap did not reject")
	}
	// The interactive queue has its own cap: batch saturation must not
	// reject interactive admissions.
	w, err := s.Submit("ann", Interactive, func() {})
	if err != nil {
		t.Fatalf("interactive submit under batch saturation: %v", err)
	}
	waits = append(waits, w)

	snap := s.Snapshot()
	if len(snap.Classes) != 2 || snap.Classes[0].Class != "interactive" || snap.Classes[1].Class != "batch" {
		t.Fatalf("snapshot classes: %+v", snap.Classes)
	}
	if snap.Classes[1].Queued != 2 || snap.Classes[1].Rejected != 1 {
		t.Fatalf("batch class status: %+v", snap.Classes[1])
	}
	if snap.Classes[0].Queued != 1 || snap.Classes[0].InFlight != 1 {
		t.Fatalf("interactive class status: %+v", snap.Classes[0])
	}
	wantTenants := []TenantStatus{
		{Tenant: "ann", Class: "interactive", Queued: 1},
		{Tenant: "ann", Class: "batch", Queued: 1},
		{Tenant: "zoe", Class: "batch", Queued: 1},
	}
	if len(snap.Tenants) != len(wantTenants) {
		t.Fatalf("snapshot tenants: %+v", snap.Tenants)
	}
	for i, want := range wantTenants {
		if snap.Tenants[i] != want {
			t.Fatalf("snapshot tenant %d: %+v, want %+v", i, snap.Tenants[i], want)
		}
	}

	close(g.release)
	gw()
	for _, w := range waits {
		w()
	}

	mu.Lock()
	defer mu.Unlock()
	if rejections[Batch] != 1 || rejections[Interactive] != 0 {
		t.Fatalf("rejection observer: %v", rejections)
	}
	if waitObs < 4 { // gate + three drained jobs
		t.Fatalf("wait observer fired %d times, want >= 4", waitObs)
	}
	if d := depths["zoe/batch"]; d != 0 {
		t.Fatalf("zoe/batch final depth %d, want 0", d)
	}
}

// TestTenantValidation pins the tenant identifier rules.
func TestTenantValidation(t *testing.T) {
	for _, ok := range []string{"alice", "team-7", "a.b_c", "X"} {
		if !ValidTenant(ok) {
			t.Errorf("ValidTenant(%q) = false, want true", ok)
		}
	}
	long := make([]byte, MaxTenantLen+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "has space", "semi;colon", "ünïcode", string(long)} {
		if ValidTenant(bad) {
			t.Errorf("ValidTenant(%q) = true, want false", bad)
		}
	}
}

// TestParseClass pins the wire vocabulary round trip.
func TestParseClass(t *testing.T) {
	for _, c := range Classes() {
		got, ok := ParseClass(c.String())
		if !ok || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseClass("premium"); ok {
		t.Fatal("ParseClass accepted an unknown class")
	}
}

// Package sched is the tenant-aware execution scheduler: a two-level
// weighted-fair queue in front of the farm.Pool worker substrate.
//
// The bounded FIFO pool is honest but first-come: one tenant's
// 100k-variant sweep fills the queue and every interactive /run
// behind it waits (or eats the one global saturation 503). This
// package replaces "one queue, one high-water mark" with:
//
//   - Priority classes. Every job belongs to a Class — Interactive
//     (/run, /compare) or Batch (sweep backfill) — and classes share
//     the workers by weighted fair queueing (stride scheduling):
//     with weights 4:1 a saturated cluster gives interactive work
//     4 of every 5 worker dispatches, yet an idle class cedes its
//     share entirely (the scheduler is work-conserving — weights
//     shape contention, never capacity).
//   - Per-tenant fairness inside a class. Tenants queue separately
//     and share their class's dispatches equally, so one tenant's
//     burst delays its own backlog, not every other tenant's.
//   - Admission control per class. Each class has its own queue cap
//     and its own honest Retry-After derived from its own backlog
//     and weighted worker share — an interactive client is never
//     told to back off because the sweep backlog is deep.
//
// Determinism is untouched by construction: the scheduler decides
// WHEN a job runs, never what it computes — a simulation's bytes are
// a pure function of its spec, regardless of dispatch order.
//
// Jobs execute on a farm.Pool sized exactly to the worker count; the
// scheduler dispatches a job only when a worker slot is free, so the
// pool's own queue never saturates and the per-(tenant,class) queues
// here are the only queues. A panic inside a job is recovered and
// rethrown on the goroutine that waits on the job, exactly like the
// bare pool. Close stops admissions and drains every queued job
// before returning, matching the pool's close-while-saturated
// semantics.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/farm"
)

// Class is a job's priority class.
type Class uint8

// The scheduler's class vocabulary. Interactive outranks Batch by
// weight, not absolutely: a saturated cluster still makes batch
// progress in proportion to the configured weights.
const (
	// Interactive is the class of latency-sensitive single requests
	// (/run, /compare) — the default for direct HTTP traffic.
	Interactive Class = iota
	// Batch is the class of sweep backfill (sweep, analyze and resume
	// variant resolution) — throughput work that must not starve
	// interactive requests.
	Batch

	numClasses
)

// String returns the class's wire name — the value of the X-Class
// header, the healthz "class" key and the metrics class label, which
// are all deliberately the same vocabulary.
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass maps a wire name (the X-Class header value) onto its
// Class; ok=false means the name is not in the vocabulary.
func ParseClass(name string) (Class, bool) {
	switch name {
	case "interactive":
		return Interactive, true
	case "batch":
		return Batch, true
	}
	return 0, false
}

// Classes returns every class in stable display order — the iteration
// order of healthz snapshots and metric registration.
func Classes() []Class { return []Class{Interactive, Batch} }

// Default class weights: interactive work wins 4 of every 5 worker
// dispatches under full contention. Batch is never starved (weight 0
// is not representable — New floors weights at 1).
const (
	DefaultInteractiveWeight = 4
	DefaultBatchWeight       = 1
)

// DefaultTenant buckets requests that carry no tenant header. It is a
// real tenant like any other: anonymous traffic shares one fair slice
// instead of bypassing fairness.
const DefaultTenant = "default"

// MaxTenantLen bounds a tenant identifier (tenants become metric
// label values; unbounded identifiers would be a cardinality and
// exposition-size hazard).
const MaxTenantLen = 64

// ValidTenant reports whether name is an acceptable tenant
// identifier: 1..MaxTenantLen characters drawn from [A-Za-z0-9._-].
func ValidTenant(name string) bool {
	if len(name) == 0 || len(name) > MaxTenantLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// ErrSaturated is returned by Submit when the job's class queue is at
// its cap — the per-class backpressure signal a service translates
// into a 503 whose Retry-After reflects that class's backlog alone.
var ErrSaturated = errors.New("sched: class queue saturated")

// ErrClosed is returned by Submit after Close — terminal, never worth
// retrying.
var ErrClosed = errors.New("sched: scheduler closed")

// MaxRetryAfterSeconds caps the advertised backoff so a pathological
// backlog never tells clients to go away for minutes.
const MaxRetryAfterSeconds = 30

// Options sizes a Scheduler.
type Options struct {
	// Workers is the worker count (<= 0: one per CPU).
	Workers int
	// Queue caps each class's queued-job backlog (<= 0: 2x workers).
	// The cap is per class: a full batch queue rejects batch
	// submissions and nothing else.
	Queue int
	// Weights are the per-class dispatch weights (missing or <= 0:
	// the class default). Under full contention a class receives
	// weight/sum(active weights) of worker dispatches.
	Weights map[Class]int
}

// Observer is the scheduler's metrics hook: optional callbacks fired
// on queue-depth changes, dispatches and admission rejections. They
// run under the scheduler's lock and must be fast and must not call
// back into the Scheduler.
type Observer struct {
	// QueueDepth reports a (tenant, class) queue's new depth after an
	// enqueue or a dispatch.
	QueueDepth func(tenant string, class Class, depth int)
	// Wait reports one job's queue wait (admission to dispatch).
	Wait func(class Class, d time.Duration)
	// Rejected reports one admission rejection (class queue at cap).
	Rejected func(class Class)
}

// job is one queued unit of work.
type job struct {
	fn func()
	// done receives the job's recovered panic value (nil on success)
	// exactly once; waiters rethrow it.
	done     chan any
	tenant   string
	class    Class
	enqueued time.Time
}

// tenantQueue is one tenant's FIFO within a class.
type tenantQueue struct {
	name string
	// pass is the tenant's stride-scheduling virtual time; the active
	// tenant with the smallest pass dispatches next.
	pass uint64
	jobs []*job
}

// classState is one class's scheduling state.
type classState struct {
	class  Class
	weight int
	// stride is the pass increment per dispatch (strideOne/weight):
	// heavier classes accumulate pass slower and so dispatch more.
	stride uint64
	// pass is the class's virtual time; the backlogged class with the
	// smallest pass dispatches next.
	pass    uint64
	queued  int
	tenants map[string]*tenantQueue

	inFlight   int
	rejected   uint64
	dispatched uint64
}

// strideOne is the stride numerator: a weight-1 queue advances its
// pass by strideOne per dispatch, a weight-w queue by strideOne/w.
const strideOne uint64 = 1 << 20

// Scheduler is the weighted-fair scheduler. It owns a farm.Pool of
// workers and per-(tenant,class) FIFO queues in front of them; see
// the package comment for the scheduling discipline.
type Scheduler struct {
	pool     *farm.Pool
	workers  int
	queueCap int

	mu      sync.Mutex
	drained sync.Cond
	classes [numClasses]*classState
	// running counts jobs handed to the pool and not yet finished; it
	// never exceeds workers, which is why the pool's own queue cannot
	// saturate.
	running int
	closed  bool

	admitted  uint64
	completed uint64

	obs Observer
}

// New starts a scheduler (its workers run until Close).
func New(opt Options) *Scheduler {
	if opt.Workers <= 0 {
		opt.Workers = farm.DefaultWorkers()
	}
	if opt.Queue <= 0 {
		opt.Queue = 2 * opt.Workers
	}
	s := &Scheduler{
		// The pool's queue holds at most `workers` dispatched-but-not-
		// picked-up jobs (running <= workers), so sizing it to the
		// worker count makes pool-side saturation impossible.
		pool:     farm.NewPool(opt.Workers, opt.Workers),
		workers:  opt.Workers,
		queueCap: opt.Queue,
	}
	s.drained.L = &s.mu
	for _, c := range Classes() {
		w := opt.Weights[c]
		if w <= 0 {
			w = defaultWeight(c)
		}
		s.classes[c] = &classState{
			class:   c,
			weight:  w,
			stride:  strideOne / uint64(w),
			tenants: make(map[string]*tenantQueue),
		}
	}
	return s
}

// defaultWeight is the weight a class gets when Options.Weights does
// not name it.
func defaultWeight(c Class) int {
	if c == Batch {
		return DefaultBatchWeight
	}
	return DefaultInteractiveWeight
}

// SetObserver installs the metrics hooks (call before serving; the
// zero Observer is valid and reports nothing).
func (s *Scheduler) SetObserver(o Observer) {
	s.mu.Lock()
	s.obs = o
	s.mu.Unlock()
}

// Workers returns the worker count.
func (s *Scheduler) Workers() int { return s.workers }

// QueueCap returns the per-class queue cap.
func (s *Scheduler) QueueCap() int { return s.queueCap }

// Submit enqueues fn for tenant and class and returns a wait function
// that blocks until the job finishes (rethrowing the job's panic, if
// any). An empty or invalid tenant falls into DefaultTenant. It
// returns ErrSaturated without enqueueing when the class's queue is
// at its cap, and ErrClosed after Close.
func (s *Scheduler) Submit(tenant string, class Class, fn func()) (wait func(), err error) {
	if !ValidTenant(tenant) {
		tenant = DefaultTenant
	}
	if class >= numClasses {
		class = Interactive
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	c := s.classes[class]
	if c.queued >= s.queueCap {
		c.rejected++
		if s.obs.Rejected != nil {
			s.obs.Rejected(class)
		}
		s.mu.Unlock()
		return nil, fmt.Errorf("%s: %w", class, ErrSaturated)
	}
	j := &job{fn: fn, done: make(chan any, 1), tenant: tenant, class: class, enqueued: time.Now()}
	s.enqueueLocked(c, j)
	s.admitted++
	s.dispatchLocked()
	s.mu.Unlock()
	return func() {
		if r := <-j.done; r != nil {
			panic(r)
		}
	}, nil
}

// enqueueLocked appends j to its tenant queue, creating the queue
// (and normalizing its virtual time) if the tenant is newly active.
func (s *Scheduler) enqueueLocked(c *classState, j *job) {
	t := c.tenants[j.tenant]
	if t == nil {
		// A newly active tenant starts at the smallest active pass in
		// its class, not zero: a tenant cannot bank credit by idling
		// and then monopolize dispatches to "catch up".
		t = &tenantQueue{name: j.tenant, pass: c.minTenantPass()}
		c.tenants[j.tenant] = t
	}
	if c.queued == 0 {
		// Same normalization one level up: a class going idle->active
		// re-enters at the backlogged minimum, never with banked credit.
		if m, ok := s.minClassPass(); ok && c.pass < m {
			c.pass = m
		}
	}
	t.jobs = append(t.jobs, j)
	c.queued++
	if s.obs.QueueDepth != nil {
		s.obs.QueueDepth(t.name, c.class, len(t.jobs))
	}
}

// minTenantPass returns the smallest pass among the class's active
// tenants (0 when none are active).
func (c *classState) minTenantPass() uint64 {
	var m uint64
	first := true
	for _, t := range c.tenants {
		if first || t.pass < m {
			m, first = t.pass, false
		}
	}
	return m
}

// minClassPass returns the smallest pass among backlogged classes.
func (s *Scheduler) minClassPass() (uint64, bool) {
	var m uint64
	found := false
	for _, c := range s.classes {
		if c.queued == 0 {
			continue
		}
		if !found || c.pass < m {
			m, found = c.pass, true
		}
	}
	return m, found
}

// dispatchLocked hands queued jobs to the pool while worker slots are
// free — called on every admission and every completion, which keeps
// the scheduler work-conserving without a pump goroutine.
func (s *Scheduler) dispatchLocked() {
	for s.running < s.workers {
		j := s.pickLocked()
		if j == nil {
			return
		}
		s.running++
		c := s.classes[j.class]
		c.inFlight++
		c.dispatched++
		if s.obs.Wait != nil {
			s.obs.Wait(j.class, time.Since(j.enqueued))
		}
		run := j
		if _, err := s.pool.Submit(func() {
			defer func() {
				r := recover()
				s.finish(run)
				run.done <- r
			}()
			run.fn()
		}); err != nil {
			// Unreachable by construction (the pool can neither
			// saturate nor close before the scheduler drains), but a
			// blocked waiter would be worse than a surfaced error.
			s.running--
			c.inFlight--
			run.done <- fmt.Errorf("sched: dispatch: %w", err)
		}
	}
}

// pickLocked pops the next job under the two-level discipline:
// backlogged class with the smallest pass, then its active tenant
// with the smallest pass, then FIFO; both levels advance their
// virtual time by their stride. Ties break deterministically (class
// order, then tenant name).
func (s *Scheduler) pickLocked() *job {
	var c *classState
	for _, cand := range s.classes {
		if cand.queued == 0 {
			continue
		}
		if c == nil || cand.pass < c.pass {
			c = cand
		}
	}
	if c == nil {
		return nil
	}
	var t *tenantQueue
	for _, cand := range c.tenants {
		if t == nil || cand.pass < t.pass || (cand.pass == t.pass && cand.name < t.name) {
			t = cand
		}
	}
	j := t.jobs[0]
	t.jobs[0] = nil
	t.jobs = t.jobs[1:]
	c.queued--
	c.pass += c.stride
	t.pass += strideOne
	if s.obs.QueueDepth != nil {
		s.obs.QueueDepth(t.name, c.class, len(t.jobs))
	}
	if len(t.jobs) == 0 {
		// Drop idle tenants: state stays O(active tenants) and a
		// returning tenant re-enters through the pass normalization
		// in enqueueLocked.
		delete(c.tenants, t.name)
	}
	return j
}

// finish retires one dispatched job and refills the freed slot.
func (s *Scheduler) finish(j *job) {
	s.mu.Lock()
	s.running--
	s.classes[j.class].inFlight--
	s.completed++
	s.dispatchLocked()
	if s.closed && s.running == 0 && s.queuedLocked() == 0 {
		s.drained.Broadcast()
	}
	s.mu.Unlock()
}

// queuedLocked sums queued jobs across classes.
func (s *Scheduler) queuedLocked() int {
	n := 0
	for _, c := range s.classes {
		n += c.queued
	}
	return n
}

// Queued returns the number of jobs queued (admitted, not yet
// dispatched) across all classes and tenants.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedLocked()
}

// InFlight returns the number of jobs dispatched and not yet
// finished. Queued()+InFlight() is the scheduler's instantaneous
// load.
func (s *Scheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Admitted returns the lifetime count of jobs accepted by Submit.
func (s *Scheduler) Admitted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admitted
}

// Completed returns the lifetime count of jobs finished by a worker.
func (s *Scheduler) Completed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// RetryAfterSeconds derives the honest per-class backoff a 503 for
// class should advertise: one second base plus one per worker-share
// batch of that class's OWN backlog. The share is the class's
// weighted slice of the workers among currently backlogged classes —
// a class with no competition counts every worker as its own, so a
// single-class deployment reproduces the old global formula exactly,
// while under contention a deep batch backlog inflates batch waits
// without touching interactive ones. Capped at
// MaxRetryAfterSeconds.
func (s *Scheduler) RetryAfterSeconds(class Class) int {
	if class >= numClasses {
		class = Interactive
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryAfterLocked(s.classes[class])
}

func (s *Scheduler) retryAfterLocked(c *classState) int {
	backlog := c.queued + c.inFlight
	if backlog == 0 {
		return 1
	}
	activeWeight := 0
	for _, other := range s.classes {
		if other.queued+other.inFlight > 0 {
			activeWeight += other.weight
		}
	}
	share := s.workers * c.weight / activeWeight
	if share < 1 {
		share = 1
	}
	secs := 1 + backlog/share
	if secs > MaxRetryAfterSeconds {
		secs = MaxRetryAfterSeconds
	}
	return secs
}

// ClassStatus is one class's healthz snapshot. Class matches the
// X-Class wire name and the metrics class label.
type ClassStatus struct {
	// Class is the class's wire name ("interactive", "batch").
	Class string `json:"class"`
	// Weight is the class's dispatch weight.
	Weight int `json:"weight"`
	// QueueCap is the class's admission cap.
	QueueCap int `json:"queue_capacity"`
	// Queued and InFlight are the class's instantaneous load.
	Queued   int `json:"queued"`
	InFlight int `json:"in_flight"`
	// RetryAfter is the backoff (seconds) a 503 for this class would
	// carry right now.
	RetryAfter int `json:"retry_after"`
	// Rejected counts admissions refused at this class's cap.
	Rejected uint64 `json:"rejected"`
	// Dispatched counts jobs handed to a worker.
	Dispatched uint64 `json:"dispatched"`
}

// TenantStatus is one active (tenant, class) queue's healthz
// snapshot; idle tenants are absent.
type TenantStatus struct {
	// Tenant matches the X-Tenant wire value and the metrics tenant
	// label.
	Tenant string `json:"tenant"`
	// Class is the queue's class wire name.
	Class string `json:"class"`
	// Queued is the queue's depth.
	Queued int `json:"queued"`
}

// Snapshot is the scheduler's healthz block: per-class and active
// per-tenant queue state, keyed with exactly the metrics label
// vocabulary (class, tenant).
type Snapshot struct {
	// Classes has one entry per class, in Classes() order.
	Classes []ClassStatus `json:"classes"`
	// Tenants lists active (tenant, class) queues, sorted by class
	// then tenant.
	Tenants []TenantStatus `json:"tenants,omitempty"`
}

// Snapshot returns the current per-class and per-tenant state.
func (s *Scheduler) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{Classes: make([]ClassStatus, 0, int(numClasses))}
	for _, class := range Classes() {
		c := s.classes[class]
		snap.Classes = append(snap.Classes, ClassStatus{
			Class:      class.String(),
			Weight:     c.weight,
			QueueCap:   s.queueCap,
			Queued:     c.queued,
			InFlight:   c.inFlight,
			RetryAfter: s.retryAfterLocked(c),
			Rejected:   c.rejected,
			Dispatched: c.dispatched,
		})
		names := make([]string, 0, len(c.tenants))
		for name := range c.tenants {
			names = append(names, name)
		}
		sortStrings(names)
		for _, name := range names {
			snap.Tenants = append(snap.Tenants, TenantStatus{
				Tenant: name, Class: class.String(), Queued: len(c.tenants[name].jobs),
			})
		}
	}
	return snap
}

// sortStrings is an insertion sort; tenant sets are small and this
// avoids importing sort into the hot package for a healthz path.
func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Close stops admissions, drains every queued job (queued work runs
// to completion, matching the pool's close semantics), then stops the
// workers. Safe to call more than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	for s.running > 0 || s.queuedLocked() > 0 {
		s.drained.Wait()
	}
	s.mu.Unlock()
	s.pool.Close()
}

// Package amba defines the AMBA2.0 AHB protocol vocabulary shared by
// the pin-accurate model (internal/rtl) and the AHB+ transaction-level
// model (internal/tlm): transfer-type and burst encodings, response
// codes, and the burst address arithmetic of the AHB specification.
//
// Keeping this vocabulary in one package is the first step of the
// paper's TLM procedure ("re-definition of protocol in transaction
// level"): the signal-level protocol of the design spec is mapped onto
// types that both abstraction levels consume, so the two models cannot
// drift apart on protocol arithmetic.
package amba

import "fmt"

// Trans is the AHB HTRANS transfer-type encoding.
type Trans uint8

const (
	// TransIdle indicates no transfer is required.
	TransIdle Trans = iota
	// TransBusy inserts idle beats in the middle of a burst while the
	// master keeps bus ownership.
	TransBusy
	// TransNonSeq is the first transfer of a burst or a single transfer.
	TransNonSeq
	// TransSeq is a continuation beat of a burst.
	TransSeq
)

// String implements fmt.Stringer.
func (t Trans) String() string {
	switch t {
	case TransIdle:
		return "IDLE"
	case TransBusy:
		return "BUSY"
	case TransNonSeq:
		return "NONSEQ"
	case TransSeq:
		return "SEQ"
	}
	return fmt.Sprintf("Trans(%d)", uint8(t))
}

// Burst is the AHB HBURST burst-kind encoding.
type Burst uint8

const (
	// BurstSingle is a single transfer.
	BurstSingle Burst = iota
	// BurstIncr is an incrementing burst of unspecified length.
	BurstIncr
	// BurstWrap4 is a 4-beat wrapping burst.
	BurstWrap4
	// BurstIncr4 is a 4-beat incrementing burst.
	BurstIncr4
	// BurstWrap8 is an 8-beat wrapping burst.
	BurstWrap8
	// BurstIncr8 is an 8-beat incrementing burst.
	BurstIncr8
	// BurstWrap16 is a 16-beat wrapping burst.
	BurstWrap16
	// BurstIncr16 is a 16-beat incrementing burst.
	BurstIncr16
)

// String implements fmt.Stringer.
func (b Burst) String() string {
	switch b {
	case BurstSingle:
		return "SINGLE"
	case BurstIncr:
		return "INCR"
	case BurstWrap4:
		return "WRAP4"
	case BurstIncr4:
		return "INCR4"
	case BurstWrap8:
		return "WRAP8"
	case BurstIncr8:
		return "INCR8"
	case BurstWrap16:
		return "WRAP16"
	case BurstIncr16:
		return "INCR16"
	}
	return fmt.Sprintf("Burst(%d)", uint8(b))
}

// Beats returns the fixed beat count of the burst kind, or 0 for
// BurstIncr whose length is master-defined.
func (b Burst) Beats() int {
	switch b {
	case BurstSingle:
		return 1
	case BurstWrap4, BurstIncr4:
		return 4
	case BurstWrap8, BurstIncr8:
		return 8
	case BurstWrap16, BurstIncr16:
		return 16
	}
	return 0
}

// Wrapping reports whether the burst kind wraps at its size boundary.
func (b Burst) Wrapping() bool {
	switch b {
	case BurstWrap4, BurstWrap8, BurstWrap16:
		return true
	}
	return false
}

// FixedBurstFor returns the fixed-length burst kind for the given beat
// count (wrapping or incrementing), falling back to BurstIncr when the
// count has no fixed encoding.
func FixedBurstFor(beats int, wrapping bool) Burst {
	switch beats {
	case 1:
		return BurstSingle
	case 4:
		if wrapping {
			return BurstWrap4
		}
		return BurstIncr4
	case 8:
		if wrapping {
			return BurstWrap8
		}
		return BurstIncr8
	case 16:
		if wrapping {
			return BurstWrap16
		}
		return BurstIncr16
	}
	return BurstIncr
}

// Resp is the AHB HRESP response encoding.
type Resp uint8

const (
	// RespOkay indicates the transfer completed successfully.
	RespOkay Resp = iota
	// RespError indicates the transfer failed.
	RespError
	// RespRetry asks the master to retry the transfer.
	RespRetry
	// RespSplit releases the master; the slave will signal resumption.
	RespSplit
)

// String implements fmt.Stringer.
func (r Resp) String() string {
	switch r {
	case RespOkay:
		return "OKAY"
	case RespError:
		return "ERROR"
	case RespRetry:
		return "RETRY"
	case RespSplit:
		return "SPLIT"
	}
	return fmt.Sprintf("Resp(%d)", uint8(r))
}

// Size is the AHB HSIZE transfer-size encoding: the transfer moves
// 2^Size bytes per beat.
type Size uint8

const (
	// Size8 transfers one byte per beat.
	Size8 Size = iota
	// Size16 transfers two bytes per beat.
	Size16
	// Size32 transfers four bytes per beat.
	Size32
	// Size64 transfers eight bytes per beat.
	Size64
	// Size128 transfers sixteen bytes per beat.
	Size128
)

// Bytes returns the number of bytes moved per beat.
func (s Size) Bytes() int { return 1 << s }

// String implements fmt.Stringer.
func (s Size) String() string { return fmt.Sprintf("%dbit", 8<<s) }

// SizeForBytes returns the Size encoding for a beat width of n bytes.
// It panics if n is not a power of two in [1,16]; bus widths are static
// configuration, so a bad value is a programming error.
func SizeForBytes(n int) Size {
	switch n {
	case 1:
		return Size8
	case 2:
		return Size16
	case 4:
		return Size32
	case 8:
		return Size64
	case 16:
		return Size128
	}
	panic(fmt.Sprintf("amba: invalid beat width %d bytes", n))
}

// Addr is a 32-bit AHB address.
type Addr = uint32

// BeatAddr returns the address of beat i (0-based) of a burst starting
// at start with the given kind and per-beat size, following the AHB
// wrapping rules: a wrapping burst of n beats wraps at an
// (n * beatBytes)-aligned boundary.
func BeatAddr(start Addr, kind Burst, size Size, i int) Addr {
	step := Addr(size.Bytes())
	if !kind.Wrapping() {
		return start + Addr(i)*step
	}
	n := Addr(kind.Beats())
	boundary := n * step
	base := start &^ (boundary - 1)
	return base + (start+Addr(i)*step-base)%boundary
}

// CrossesBoundary reports whether an incrementing burst of beats beats
// of the given size starting at start crosses a boundary-byte aligned
// address boundary (AHB forbids bursts crossing 1KB boundaries).
func CrossesBoundary(start Addr, size Size, beats int, boundary Addr) bool {
	if beats <= 0 {
		return false
	}
	end := start + Addr(beats)*Addr(size.Bytes()) - 1
	return start/boundary != end/boundary
}

// KB is the AHB 1KB burst address boundary.
const KB Addr = 1024

package amba

import (
	"fmt"

	"repro/internal/sim"
)

// Txn is one bus transaction: the unit the AHB+ TLM arbitrates and
// times, and the unit the pin-accurate model decomposes into per-cycle
// signal activity. A Txn with Beats > 1 is a burst.
type Txn struct {
	// Master is the index of the issuing master port. The write buffer
	// pseudo-master uses the dedicated index assigned by the bus.
	Master int
	// Addr is the address of the first beat.
	Addr Addr
	// Write is true for a write transfer.
	Write bool
	// Burst is the AHB burst kind.
	Burst Burst
	// Size is the per-beat transfer size.
	Size Size
	// Beats is the burst length in beats. For fixed burst kinds it must
	// match Burst.Beats(); for BurstIncr it is free.
	Beats int
	// Data holds the write payload (len Beats*Size.Bytes()) or receives
	// the read payload. Nil is allowed for timing-only simulation.
	Data []byte
	// Issue is the cycle at which the master first requested the bus
	// for this transaction.
	Issue sim.Cycle
	// ID is a simulation-unique transaction number assigned by the bus.
	ID uint64
}

// Validate checks protocol legality: burst length consistency, 1KB
// boundary rule for incrementing bursts, and address alignment to the
// transfer size.
func (t *Txn) Validate() error {
	if err := ValidateBurst(t.Addr, t.Burst, t.Size, t.Beats); err != nil {
		return err
	}
	if t.Data != nil && len(t.Data) != t.Beats*t.Size.Bytes() {
		return fmt.Errorf("amba: data length %d, want %d", len(t.Data), t.Beats*t.Size.Bytes())
	}
	return nil
}

// ValidateBurst checks the payload-independent protocol legality rules
// for a burst. It is the hot-path form of Txn.Validate: the simulators
// check every granted transaction, and assembling a full Txn record
// just to discard it dominates the check itself.
func ValidateBurst(addr Addr, burst Burst, size Size, beats int) error {
	if beats <= 0 {
		return fmt.Errorf("amba: txn has %d beats", beats)
	}
	if fb := burst.Beats(); fb != 0 && fb != beats {
		return fmt.Errorf("amba: burst %v requires %d beats, txn has %d", burst, fb, beats)
	}
	if burst == BurstIncr && beats > 16 {
		return fmt.Errorf("amba: INCR burst of %d beats exceeds modeling limit 16", beats)
	}
	step := Addr(size.Bytes())
	if addr%step != 0 {
		return fmt.Errorf("amba: address %#x not aligned to %v", addr, size)
	}
	if !burst.Wrapping() && CrossesBoundary(addr, size, beats, KB) {
		return fmt.Errorf("amba: burst at %#x (%d beats of %v) crosses 1KB boundary", addr, beats, size)
	}
	return nil
}

// BeatAddr returns the address of beat i of this transaction.
func (t *Txn) BeatAddr(i int) Addr {
	return BeatAddr(t.Addr, t.Burst, t.Size, i)
}

// Bytes returns the total payload size in bytes.
func (t *Txn) Bytes() int { return t.Beats * t.Size.Bytes() }

// Dir returns "W" for writes and "R" for reads, for compact traces.
func (t *Txn) Dir() string {
	if t.Write {
		return "W"
	}
	return "R"
}

// String implements fmt.Stringer.
func (t *Txn) String() string {
	return fmt.Sprintf("txn#%d m%d %s %#08x %v x%d", t.ID, t.Master, t.Dir(), t.Addr, t.Burst, t.Beats)
}

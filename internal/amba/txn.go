package amba

import (
	"fmt"

	"repro/internal/sim"
)

// Txn is one bus transaction: the unit the AHB+ TLM arbitrates and
// times, and the unit the pin-accurate model decomposes into per-cycle
// signal activity. A Txn with Beats > 1 is a burst.
type Txn struct {
	// Master is the index of the issuing master port. The write buffer
	// pseudo-master uses the dedicated index assigned by the bus.
	Master int
	// Addr is the address of the first beat.
	Addr Addr
	// Write is true for a write transfer.
	Write bool
	// Burst is the AHB burst kind.
	Burst Burst
	// Size is the per-beat transfer size.
	Size Size
	// Beats is the burst length in beats. For fixed burst kinds it must
	// match Burst.Beats(); for BurstIncr it is free.
	Beats int
	// Data holds the write payload (len Beats*Size.Bytes()) or receives
	// the read payload. Nil is allowed for timing-only simulation.
	Data []byte
	// Issue is the cycle at which the master first requested the bus
	// for this transaction.
	Issue sim.Cycle
	// ID is a simulation-unique transaction number assigned by the bus.
	ID uint64
}

// Validate checks protocol legality: burst length consistency, 1KB
// boundary rule for incrementing bursts, and address alignment to the
// transfer size.
func (t *Txn) Validate() error {
	if t.Beats <= 0 {
		return fmt.Errorf("amba: txn has %d beats", t.Beats)
	}
	if fb := t.Burst.Beats(); fb != 0 && fb != t.Beats {
		return fmt.Errorf("amba: burst %v requires %d beats, txn has %d", t.Burst, fb, t.Beats)
	}
	if t.Burst == BurstIncr && t.Beats > 16 {
		return fmt.Errorf("amba: INCR burst of %d beats exceeds modeling limit 16", t.Beats)
	}
	step := Addr(t.Size.Bytes())
	if t.Addr%step != 0 {
		return fmt.Errorf("amba: address %#x not aligned to %v", t.Addr, t.Size)
	}
	if !t.Burst.Wrapping() && CrossesBoundary(t.Addr, t.Size, t.Beats, KB) {
		return fmt.Errorf("amba: burst at %#x (%d beats of %v) crosses 1KB boundary", t.Addr, t.Beats, t.Size)
	}
	if t.Data != nil && len(t.Data) != t.Beats*t.Size.Bytes() {
		return fmt.Errorf("amba: data length %d, want %d", len(t.Data), t.Beats*t.Size.Bytes())
	}
	return nil
}

// BeatAddr returns the address of beat i of this transaction.
func (t *Txn) BeatAddr(i int) Addr {
	return BeatAddr(t.Addr, t.Burst, t.Size, i)
}

// Bytes returns the total payload size in bytes.
func (t *Txn) Bytes() int { return t.Beats * t.Size.Bytes() }

// Dir returns "W" for writes and "R" for reads, for compact traces.
func (t *Txn) Dir() string {
	if t.Write {
		return "W"
	}
	return "R"
}

// String implements fmt.Stringer.
func (t *Txn) String() string {
	return fmt.Sprintf("txn#%d m%d %s %#08x %v x%d", t.ID, t.Master, t.Dir(), t.Addr, t.Burst, t.Beats)
}

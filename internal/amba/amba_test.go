package amba

import (
	"testing"
	"testing/quick"
)

func TestBurstBeats(t *testing.T) {
	cases := []struct {
		b    Burst
		want int
	}{
		{BurstSingle, 1}, {BurstIncr, 0},
		{BurstWrap4, 4}, {BurstIncr4, 4},
		{BurstWrap8, 8}, {BurstIncr8, 8},
		{BurstWrap16, 16}, {BurstIncr16, 16},
	}
	for _, c := range cases {
		if got := c.b.Beats(); got != c.want {
			t.Errorf("%v.Beats() = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestBurstWrapping(t *testing.T) {
	wrapping := map[Burst]bool{
		BurstWrap4: true, BurstWrap8: true, BurstWrap16: true,
		BurstSingle: false, BurstIncr: false, BurstIncr4: false,
		BurstIncr8: false, BurstIncr16: false,
	}
	for b, want := range wrapping {
		if got := b.Wrapping(); got != want {
			t.Errorf("%v.Wrapping() = %v, want %v", b, got, want)
		}
	}
}

func TestFixedBurstFor(t *testing.T) {
	if FixedBurstFor(4, true) != BurstWrap4 || FixedBurstFor(4, false) != BurstIncr4 {
		t.Fatal("4-beat mapping wrong")
	}
	if FixedBurstFor(8, true) != BurstWrap8 || FixedBurstFor(16, false) != BurstIncr16 {
		t.Fatal("8/16-beat mapping wrong")
	}
	if FixedBurstFor(1, false) != BurstSingle {
		t.Fatal("single mapping wrong")
	}
	if FixedBurstFor(5, false) != BurstIncr || FixedBurstFor(3, true) != BurstIncr {
		t.Fatal("odd lengths must fall back to INCR")
	}
}

func TestBeatAddrIncrementing(t *testing.T) {
	// INCR4 of 32-bit beats from 0x100: 0x100,0x104,0x108,0x10C.
	for i, want := range []Addr{0x100, 0x104, 0x108, 0x10c} {
		if got := BeatAddr(0x100, BurstIncr4, Size32, i); got != want {
			t.Errorf("beat %d: %#x, want %#x", i, got, want)
		}
	}
}

func TestBeatAddrWrapping(t *testing.T) {
	// WRAP4 of 32-bit beats from 0x38 wraps at a 16-byte boundary:
	// 0x38,0x3C,0x30,0x34 (AMBA spec example style).
	for i, want := range []Addr{0x38, 0x3c, 0x30, 0x34} {
		if got := BeatAddr(0x38, BurstWrap4, Size32, i); got != want {
			t.Errorf("WRAP4 beat %d: %#x, want %#x", i, got, want)
		}
	}
	// WRAP8 of 16-bit beats from 0x34 wraps at a 16-byte boundary.
	want8 := []Addr{0x34, 0x36, 0x38, 0x3a, 0x3c, 0x3e, 0x30, 0x32}
	for i, want := range want8 {
		if got := BeatAddr(0x34, BurstWrap8, Size16, i); got != want {
			t.Errorf("WRAP8 beat %d: %#x, want %#x", i, got, want)
		}
	}
}

// Property: wrapping bursts visit exactly the addresses of the aligned
// window, each once; incrementing bursts are strictly ascending by the
// beat size.
func TestBeatAddrProperties(t *testing.T) {
	wrap := func(startRaw uint32, kindSel, sizeSel uint8) bool {
		kinds := []Burst{BurstWrap4, BurstWrap8, BurstWrap16}
		sizes := []Size{Size8, Size16, Size32, Size64}
		kind := kinds[int(kindSel)%len(kinds)]
		size := sizes[int(sizeSel)%len(sizes)]
		step := Addr(size.Bytes())
		start := (Addr(startRaw) &^ (step - 1)) & 0xFFFF
		n := kind.Beats()
		window := Addr(n) * step
		base := start &^ (window - 1)
		seen := map[Addr]bool{}
		for i := 0; i < n; i++ {
			a := BeatAddr(start, kind, size, i)
			if a < base || a >= base+window {
				return false
			}
			if a%step != 0 {
				return false
			}
			if seen[a] {
				return false
			}
			seen[a] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(wrap, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatalf("wrapping burst property: %v", err)
	}

	incr := func(startRaw uint32, beatsRaw, sizeSel uint8) bool {
		sizes := []Size{Size8, Size16, Size32, Size64}
		size := sizes[int(sizeSel)%len(sizes)]
		step := Addr(size.Bytes())
		start := (Addr(startRaw) &^ (step - 1)) & 0xFFFF
		beats := int(beatsRaw%16) + 1
		for i := 0; i < beats; i++ {
			if BeatAddr(start, BurstIncr, size, i) != start+Addr(i)*step {
				return false
			}
		}
		return true
	}
	if err := quick.Check(incr, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatalf("incrementing burst property: %v", err)
	}
}

func TestCrossesBoundary(t *testing.T) {
	if CrossesBoundary(0x3F0, Size32, 4, KB) {
		t.Fatal("burst ending at 0x3FF must not cross 1KB")
	}
	if !CrossesBoundary(0x3F4, Size32, 4, KB) {
		t.Fatal("burst ending at 0x403 must cross 1KB")
	}
	if CrossesBoundary(0x400, Size32, 1, KB) {
		t.Fatal("single beat at boundary start does not cross")
	}
	if CrossesBoundary(0, Size32, 0, KB) {
		t.Fatal("zero beats never crosses")
	}
}

func TestSizeEncoding(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		if SizeForBytes(n).Bytes() != n {
			t.Errorf("SizeForBytes(%d) round-trip failed", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SizeForBytes(3) should panic")
		}
	}()
	SizeForBytes(3)
}

func TestTxnValidate(t *testing.T) {
	ok := Txn{Addr: 0x100, Burst: BurstIncr4, Size: Size32, Beats: 4}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid txn rejected: %v", err)
	}
	cases := []struct {
		name string
		txn  Txn
	}{
		{"zero beats", Txn{Addr: 0, Burst: BurstSingle, Size: Size32, Beats: 0}},
		{"beat mismatch", Txn{Addr: 0, Burst: BurstIncr4, Size: Size32, Beats: 5}},
		{"misaligned", Txn{Addr: 0x102, Burst: BurstSingle, Size: Size32, Beats: 1}},
		{"1KB crossing", Txn{Addr: 0x3F8, Burst: BurstIncr4, Size: Size32, Beats: 4}},
		{"incr too long", Txn{Addr: 0, Burst: BurstIncr, Size: Size32, Beats: 32}},
		{"bad data len", Txn{Addr: 0, Burst: BurstSingle, Size: Size32, Beats: 1, Data: make([]byte, 3)}},
	}
	for _, c := range cases {
		if err := c.txn.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid txn", c.name)
		}
	}
}

func TestTxnHelpers(t *testing.T) {
	txn := Txn{ID: 7, Master: 2, Addr: 0x40, Write: true, Burst: BurstWrap4, Size: Size32, Beats: 4}
	if txn.Bytes() != 16 {
		t.Fatalf("Bytes = %d, want 16", txn.Bytes())
	}
	if txn.Dir() != "W" {
		t.Fatal("Dir for write")
	}
	txn.Write = false
	if txn.Dir() != "R" {
		t.Fatal("Dir for read")
	}
	if txn.BeatAddr(0) != 0x40 {
		t.Fatal("BeatAddr(0) should be start address")
	}
	if s := txn.String(); s == "" {
		t.Fatal("String empty")
	}
}

func TestStringers(t *testing.T) {
	for _, v := range []interface{ String() string }{
		TransIdle, TransBusy, TransNonSeq, TransSeq, Trans(99),
		BurstSingle, BurstIncr, BurstWrap16, Burst(99),
		RespOkay, RespError, RespRetry, RespSplit, Resp(99),
		Size8, Size32,
	} {
		if v.String() == "" {
			t.Errorf("%T has empty String()", v)
		}
	}
}

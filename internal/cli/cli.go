// Package cli holds the workload construction and reporting shared by
// the ahbsim and rtlsim commands, so the two abstraction levels are
// driven identically from the command line.
package cli

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Flags are the common simulation flags.
type Flags struct {
	Workload  *string
	Masters   *int
	Txns      *int
	WBDepth   *int
	Pipelined *bool
	BIOn      *bool
	TraceN    *int
	CfgPath   *string
	MaxCycles *uint64
	VCDPath   *string
	TraceFile *string
	Hist      *bool
}

// Register installs the common flags on fs.
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		Workload:  fs.String("workload", "mixed", "traffic pattern: seq|rand|burst|stream|mixed"),
		Masters:   fs.Int("masters", 3, "number of master ports"),
		Txns:      fs.Int("txns", 1000, "transactions per master"),
		WBDepth:   fs.Int("wb", 8, "write buffer depth (0 disables)"),
		Pipelined: fs.Bool("pipelining", true, "enable AHB+ request pipelining"),
		BIOn:      fs.Bool("bi", true, "enable the BI side-band interface"),
		TraceN:    fs.Int("trace", 0, "print the first N transaction traces"),
		CfgPath:   fs.String("config", "", "load platform parameters from JSON"),
		MaxCycles: fs.Uint64("max-cycles", 0, "cycle cap (0 = default)"),
		VCDPath:   fs.String("vcd", "", "write a VCD waveform of the AHB signals (pin-accurate model only)"),
		TraceFile: fs.String("trace-file", "", "replay a CSV transaction trace (master,at,addr,dir,beats) instead of -workload"),
		Hist:      fs.Bool("hist", false, "print per-master latency histograms"),
	}
}

// BuildGens returns a generator factory for a named workload family.
func BuildGens(workload string, masters, txns int) (func() []traffic.Generator, error) {
	mk := func(i int) traffic.Generator {
		base := uint32(i) << 19
		switch workload {
		case "seq":
			return &traffic.Sequential{Base: base, Beats: 8, Count: txns, Gap: 4}
		case "rand":
			return &traffic.Random{Seed: int64(i + 1), Base: base, WindowBytes: 1 << 18,
				MaxBeats: 8, WriteFrac: 0.3, MeanGap: 8, Count: txns}
		case "burst":
			return &traffic.Bursty{Base: base, Beats: 8, BurstTxns: 8, IdleGap: 150, Count: txns}
		case "stream":
			return &traffic.Stream{Base: base, Beats: 4, Period: 60, Count: txns}
		case "mixed":
			switch i % 3 {
			case 0:
				return &traffic.Sequential{Base: base, Beats: 8, Count: txns, WriteEvery: 3}
			case 1:
				return &traffic.Random{Seed: int64(i + 1), Base: base, WindowBytes: 1 << 18,
					MaxBeats: 8, WriteFrac: 0.4, MeanGap: 6, Count: txns}
			default:
				return &traffic.Stream{Base: base, Beats: 4, Period: 50, Count: txns}
			}
		}
		return nil
	}
	if mk(0) == nil {
		return nil, fmt.Errorf("unknown workload %q (seq|rand|burst|stream|mixed)", workload)
	}
	return func() []traffic.Generator {
		gens := make([]traffic.Generator, masters)
		for i := range gens {
			gens[i] = mk(i)
		}
		return gens
	}, nil
}

// Execute builds the workload from flags and runs it on the model,
// writing the full report to w. It returns a process exit code.
func Execute(f *Flags, model core.Model, w io.Writer) int {
	var p config.Params
	if *f.CfgPath != "" {
		loaded, err := config.Load(*f.CfgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		p = loaded
	} else {
		p = config.Default(*f.Masters)
		p.WriteBufferDepth = *f.WBDepth
		p.Pipelining = *f.Pipelined
		p.BIEnabled = *f.BIOn
	}
	var gens func() []traffic.Generator
	name := *f.Workload
	if *f.TraceFile != "" {
		data, err := os.ReadFile(*f.TraceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		loaded, err := traffic.LoadCSV(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *f.CfgPath == "" {
			// Size the platform to the trace.
			p = config.Default(len(loaded))
		}
		if len(loaded) != len(p.Masters) {
			fmt.Fprintf(os.Stderr, "trace has %d masters, platform has %d\n", len(loaded), len(p.Masters))
			return 1
		}
		name = *f.TraceFile
		gens = func() []traffic.Generator {
			g, _ := traffic.LoadCSV(bytes.NewReader(data))
			return g
		}
	} else {
		built, err := BuildGens(*f.Workload, len(p.Masters), *f.Txns)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		gens = built
	}
	wl := core.Workload{Name: name, Params: p, Gens: gens, MaxCycles: sim.Cycle(*f.MaxCycles)}

	var tr *trace.Recorder
	if *f.TraceN > 0 {
		tr = trace.New(*f.TraceN)
	}
	chk := &check.Checker{}
	opt := core.Options{Tracer: tr, Checker: chk}
	if *f.VCDPath != "" {
		if model != core.RTL {
			fmt.Fprintln(os.Stderr, "waveforms exist only at pin level; use the rtl model with -vcd")
			return 2
		}
		vf, err := os.Create(*f.VCDPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer vf.Close()
		opt.Waveform = vf
	}
	res := core.Run(wl, model, opt)

	fmt.Fprintf(w, "model %s, workload %q, %d masters x %d txns\n", res.Model, *f.Workload, len(p.Masters), *f.Txns)
	if !res.Completed {
		fmt.Fprintln(w, "WARNING: run hit the cycle cap before the workload drained")
	}
	fmt.Fprintf(w, "wall clock            : %s (%.1f Kcycles/sec)\n", res.Wall, res.KCyclesPerSec())
	res.Stats.Report(w)
	if *f.Hist {
		fmt.Fprintln(w)
		res.Stats.ReportHistograms(w)
	}
	chk.Report(w)
	if tr != nil {
		fmt.Fprintln(w)
		tr.WriteText(w)
	}
	if !res.Completed {
		return 1
	}
	return 0
}

package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
)

func newFlags(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBuildGensFamilies(t *testing.T) {
	for _, wl := range []string{"seq", "rand", "burst", "stream", "mixed"} {
		mk, err := BuildGens(wl, 3, 10)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		gens := mk()
		if len(gens) != 3 {
			t.Fatalf("%s: %d generators", wl, len(gens))
		}
		for i, g := range gens {
			if _, ok := g.Next(0); !ok {
				t.Fatalf("%s: generator %d empty", wl, i)
			}
		}
	}
	if _, err := BuildGens("nope", 1, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestExecuteTLM(t *testing.T) {
	f := newFlags(t, "-workload", "seq", "-masters", "2", "-txns", "30", "-trace", "3")
	var out strings.Builder
	if code := Execute(f, core.TLM, &out); code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{"model TL", "utilization", "no violations", "txn"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestExecuteRTLMatchesTLMCycles(t *testing.T) {
	run := func(m core.Model) string {
		f := newFlags(t, "-workload", "seq", "-masters", "2", "-txns", "20")
		var out strings.Builder
		if code := Execute(f, m, &out); code != 0 {
			t.Fatalf("exit %d", code)
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "simulated cycles") {
				return line
			}
		}
		t.Fatal("no cycle line")
		return ""
	}
	if a, b := run(core.TLM), run(core.RTL); a != b {
		t.Fatalf("cycle counts diverged between CLI models:\n%s\n%s", a, b)
	}
}

func TestExecuteCycleCapReturnsError(t *testing.T) {
	f := newFlags(t, "-txns", "100000", "-max-cycles", "100")
	var out strings.Builder
	if code := Execute(f, core.TLM, &out); code != 1 {
		t.Fatalf("exit code %d, want 1 for capped run", code)
	}
	if !strings.Contains(out.String(), "WARNING") {
		t.Fatal("capped run should warn")
	}
}

func TestExecuteConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	p := config.Default(2)
	p.Masters[0].Name = "custom0"
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	f := newFlags(t, "-config", path, "-txns", "10")
	var out strings.Builder
	if code := Execute(f, core.TLM, &out); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "custom0") {
		t.Fatalf("config-file master name not used:\n%s", out.String())
	}
}

func TestExecuteBadConfigPath(t *testing.T) {
	f := newFlags(t, "-config", "/does/not/exist.json")
	var out strings.Builder
	if code := Execute(f, core.TLM, &out); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestExecuteBadWorkload(t *testing.T) {
	f := newFlags(t, "-workload", "bogus")
	var out strings.Builder
	if code := Execute(f, core.TLM, &out); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestExecuteVCD(t *testing.T) {
	dir := t.TempDir()
	vcdPath := filepath.Join(dir, "bus.vcd")
	f := newFlags(t, "-txns", "10", "-masters", "1", "-vcd", vcdPath)
	var out strings.Builder
	if code := Execute(f, core.RTL, &out); code != 0 {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(vcdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "$enddefinitions") {
		t.Fatal("VCD file lacks header")
	}
	// VCD on the TLM is rejected: waveforms do not exist at
	// transaction level.
	f2 := newFlags(t, "-txns", "10", "-vcd", vcdPath)
	if code := Execute(f2, core.TLM, &out); code != 2 {
		t.Fatalf("TLM -vcd exit %d, want 2", code)
	}
}

func TestExecuteTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	data := "master,at,addr,dir,beats\n0,0,0x1000,R,8\n1,10,0x80000,W,4\n0,30,0x1020,R,8\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	f := newFlags(t, "-trace-file", path, "-trace", "10")
	var out strings.Builder
	if code := Execute(f, core.TLM, &out); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "2 masters") {
		t.Fatalf("platform not sized to trace:\n%s", got)
	}
	if !strings.Contains(got, "0x1000") {
		t.Fatalf("trace transactions not replayed:\n%s", got)
	}
}

func TestExecuteHistFlag(t *testing.T) {
	f := newFlags(t, "-txns", "20", "-masters", "1", "-hist")
	var out strings.Builder
	if code := Execute(f, core.TLM, &out); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "latency histogram") {
		t.Fatalf("histogram missing:\n%s", out.String())
	}
}

func TestExecuteBadTraceFile(t *testing.T) {
	f := newFlags(t, "-trace-file", "/does/not/exist.csv")
	var out strings.Builder
	if code := Execute(f, core.TLM, &out); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

// Package tlm implements the AHB+ transaction-level model — the
// paper's contribution. It is method-based: masters interact with the
// bus through transaction calls rather than signal wiggling, and the
// simulator advances directly from event to event on a cycle-keyed
// wheel, skipping quiescent cycles. Per-transaction timing is computed
// arithmetically from the same timing contract the pin-accurate model
// (internal/rtl) implements signal by signal:
//
//	request visible  rv = assert+1
//	arbitration      T  = max(window floor, rv)
//	grant visible    T+1
//	address phase    A  = T+2
//	memory access    A+1 (shared DDR engine)
//	data beats       F..L from the engine (posted writes: A+1..A+beats)
//
// window floor: with request pipelining, max(L-1, A+1) of the previous
// transaction; without it, L+1.
//
// Remaining abstractions (the deliberate sources of the small TLM
// error the paper reports): write-buffer occupancy is sampled at
// arbitration instants rather than per cycle, and queue pushes/pops
// take effect at the arbitration event rather than at the address
// phase two cycles later.
package tlm

import (
	"fmt"

	"repro/internal/amba"
	"repro/internal/arb"
	"repro/internal/bi"
	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/ddr"
	"repro/internal/memmodel"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Config assembles a transaction-level simulation. It is deliberately
// identical in shape to rtl.Config so experiments drive both models
// from one description.
type Config struct {
	// Params is the shared platform configuration.
	Params config.Params
	// Gens drives the master ports.
	Gens []traffic.Generator
	// Checker receives assertions and property checks (optional).
	Checker *check.Checker
	// Tracer records per-transaction timelines (optional).
	Tracer *trace.Recorder
}

// Result summarizes a completed run.
type Result struct {
	// Cycles is the simulated cycle count (last completion + 1),
	// directly comparable with rtl.Result.Cycles.
	Cycles sim.Cycle
	// Completed is true when every generator drained and the write
	// buffer emptied before the cycle cap.
	Completed bool
	// Stats is the profile of the run.
	Stats *stats.Bus
}

// mState is the method-based master port state.
type mState struct {
	gen      traffic.Generator
	cur      traffic.Req
	rv       sim.Cycle // request visible cycle
	pending  bool
	finished bool
}

// wbEntry is one posted write awaiting drain.
type wbEntry struct {
	addr  uint32
	beats int
	// capA is the address-phase cycle of the posting transaction: the
	// entry becomes visible to the write-buffer pseudo-master one cycle
	// later, exactly as the pin-accurate WBUsed register behaves.
	capA sim.Cycle
}

// wbState is the write-buffer pseudo-master state.
type wbState struct {
	queue    []wbEntry
	pending  bool
	rv       sim.Cycle
	draining bool
}

// Bus is the AHB+ transaction-level model.
type Bus struct {
	p       config.Params
	size    amba.Size
	sch     *sim.Scheduler
	eng     *ddr.Engine
	mem     *memmodel.Memory
	link    *bi.Link
	status  *bi.Provider
	pipe    *arb.Pipeline
	regs    []qos.Reg
	tracker *qos.Tracker
	bus     *stats.Bus
	chk     *check.Checker
	tracer  *trace.Recorder

	masters []*mState
	wb      wbState

	// Arbitration window state of the most recent transaction.
	lastA, lastL sim.Cycle
	floor        sim.Cycle // earliest next arbitration cycle
	nextArbAt    sim.Cycle // scheduled arbitration event (CycleMax none)
	lastGrant    int
	served       []uint64
	totalServed  uint64
	txnID        uint64
	maxDone      sim.Cycle
	wbuf         []byte
	arbEv        sim.EventID // the armed arbitration event (cancellable)
	ddrCap       uint64

	// Reused arbitration-round scratch (method-based TLM hot path).
	ctx      arb.Context
	reqsBuf  []arb.Request
	portsBuf []int
}

// New assembles the TLM platform. It panics on invalid configuration;
// callers holding untrusted configuration use NewChecked.
func New(cfg Config) *Bus {
	b, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// NewChecked assembles the TLM platform, reporting invalid
// configuration as a descriptive error instead of panicking — the
// entry point for externally submitted platforms (spec service, config
// files).
func NewChecked(cfg Config) (*Bus, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Gens) != len(cfg.Params.Masters) {
		return nil, fmt.Errorf("tlm: %d generators for %d masters", len(cfg.Gens), len(cfg.Params.Masters))
	}
	n := len(cfg.Gens)
	link := bi.NewLink(sim.Cycle(cfg.Params.BILatency))
	link.Enabled = cfg.Params.BIEnabled
	eng := ddr.NewEngine(cfg.Params.DDR, cfg.Params.AddrMap)
	if cfg.Params.ClosedPage {
		eng.Policy = ddr.ClosedPage
	}
	b := &Bus{
		p:    cfg.Params,
		size: amba.SizeForBytes(cfg.Params.BusBytes),
		sch:  sim.NewScheduler(),
		eng:  eng,
		mem:  memmodel.New(),
		link: link,
		status: &bi.Provider{
			Link:     link,
			PermitFn: eng.Permit,
			InfoFn:   eng.IdleOrOpen,
		},
		pipe:      arb.DefaultWith(cfg.Params.Filters),
		regs:      append(cfg.Params.QoSRegs(), qos.Reg{}),
		bus:       stats.NewBus(n + 1),
		chk:       cfg.Checker,
		tracer:    cfg.Tracer,
		lastGrant: -1,
		nextArbAt: sim.CycleMax,
		served:    make([]uint64, n+1),
	}
	b.tracker = qos.NewTracker(b.regs[:n])
	b.ddrCap = cfg.Params.AddrMap.Capacity()
	b.ctx = arb.Context{
		Regs:             b.regs,
		Provider:         b.status,
		Served:           b.served,
		WBCap:            cfg.Params.WriteBufferDepth,
		UrgencyThreshold: sim.Cycle(cfg.Params.UrgencyThreshold),
	}
	b.ctx.PrecomputeQoS()
	for i := 0; i < n; i++ {
		b.bus.Masters[i].Name = cfg.Params.Masters[i].Name
	}
	b.bus.Masters[n].Name = "wbuf"
	for _, g := range cfg.Gens {
		m := &mState{gen: g}
		b.masters = append(b.masters, m)
		b.fetch(m, 0, true)
	}
	// Arm the first arbitration round for the earliest initial request.
	b.rescheduleForPending(0)
	return b, nil
}

// wbIndex is the write-buffer pseudo-master port number.
func (b *Bus) wbIndex() int { return len(b.masters) }

// fetch pulls master m's next request and marks it pending from its
// visibility cycle m.rv onward. prevDone is the completion cycle of
// the previous transaction (0 and first=true for the initial fetch).
// Arbitration scheduling for the new request is handled by the
// caller's rescheduleForPending pass — there is no per-request event,
// which is a large part of the method-based model's speed.
func (b *Bus) fetch(m *mState, prevDone sim.Cycle, first bool) {
	req, ok := m.gen.Next(prevDone)
	if !ok {
		m.finished = true
		return
	}
	if req.Beats <= 0 {
		b.chk.Assert(false, "generator %s produced empty burst", m.gen.Name())
	}
	m.cur = req
	assert := req.At
	if !first {
		assert = sim.MaxCycle(req.At, prevDone+1)
	}
	m.rv = assert + 1
	m.pending = true
}

// arbEventFn dispatches the arbitration event without a per-schedule
// closure: the owning Bus rides along as the event's owner word.
func arbEventFn(now sim.Cycle, owner any, _ uint64) {
	owner.(*Bus).arbEvent(now)
}

// scheduleArb (re)schedules the arbitration event no earlier than the
// window floor and the given cycle. A superseded later event is
// cancelled rather than left to fire as a stale no-op.
func (b *Bus) scheduleArb(from sim.Cycle) {
	t := sim.MaxCycle(b.floor, from)
	if t >= b.nextArbAt {
		return // an earlier or equal arbitration is already scheduled
	}
	if b.nextArbAt != sim.CycleMax {
		b.sch.Cancel(b.arbEv)
	}
	b.nextArbAt = t
	b.arbEv = b.sch.Post(t, arbEventFn, b, 0)
}

// deliverHints applies BI messages due by the cutoff cycle to the
// controller, each at its true delivery time — the pin-accurate fabric
// polls the link every cycle, so its hints always land at their due
// cycle, and the TLM must match.
func (b *Bus) deliverHints(upTo sim.Cycle) {
	for _, d := range b.link.DeliverUpTo(upTo) {
		b.eng.Hint(d.At, d.Msg.Addr, d.Msg.Write)
	}
}

// arbEvent is one arbitration round at its scheduled cycle.
func (b *Bus) arbEvent(now sim.Cycle) {
	if now != b.nextArbAt {
		return // superseded by a rescheduled round
	}
	b.nextArbAt = sim.CycleMax
	if now < b.floor {
		// A stale event from before the floor moved; reschedule.
		b.scheduleArb(b.floor)
		return
	}
	// The pin-accurate fabric delivers hints after the arbiter has
	// evaluated within a cycle, so at cycle `now` the arbiter observes
	// controller state including hints due through now-1 only.
	b.deliverHints(now.SubFloor(1))

	// Collect the requests visible this cycle into reused buffers.
	reqs := b.reqsBuf[:0]
	ports := b.portsBuf[:0]
	for i, m := range b.masters {
		if m.pending && m.rv <= now {
			reqs = append(reqs, arb.Request{
				Master: i, Addr: m.cur.Addr, Write: m.cur.Write,
				Beats: m.cur.Beats, Since: m.rv,
			})
			ports = append(ports, i)
		}
	}
	if b.wb.pending && b.wb.rv <= now && len(b.wb.queue) > 0 {
		front := b.wb.queue[0]
		reqs = append(reqs, arb.Request{
			Master: b.wbIndex(), Addr: front.addr, Write: true,
			Beats: front.beats, Since: b.wb.rv, IsWriteBuf: true,
		})
		ports = append(ports, b.wbIndex())
	}
	b.reqsBuf, b.portsBuf = reqs, ports
	if len(reqs) == 0 {
		b.rescheduleForPending(now)
		return
	}

	b.ctx.Now = now
	b.ctx.Reqs = reqs
	b.ctx.WBUsed = len(b.wb.queue)
	b.ctx.TotalBeats = b.totalServed
	b.ctx.LastGrant = b.lastGrant
	win, ok := b.pipe.Select(&b.ctx)
	if !ok {
		// Permission veto (refresh window). The pin-accurate arbiter
		// retries every cycle; no retry can succeed before the window
		// clears, so jump straight to the clear cycle — the grant lands
		// on the identical cycle with the no-op rounds elided.
		b.scheduleArb(sim.MaxCycle(b.eng.RefreshClear(now+1), now+1))
		return
	}
	b.grant(now, ports[win], reqs[win])
	b.rescheduleForPending(now + 1)
}

// rescheduleForPending arms the next arbitration for the earliest
// pending request, if any.
func (b *Bus) rescheduleForPending(now sim.Cycle) {
	earliest := sim.CycleMax
	for _, m := range b.masters {
		if m.pending && m.rv < earliest {
			earliest = m.rv
		}
	}
	if b.wb.pending && len(b.wb.queue) > 0 && b.wb.rv < earliest {
		earliest = b.wb.rv
	}
	if earliest == sim.CycleMax {
		return
	}
	b.scheduleArb(sim.MaxCycle(earliest, now))
}

// grant times the winning transaction and commits all bus state.
func (b *Bus) grant(t sim.Cycle, port int, req arb.Request) {
	grantVis := t + 1
	a := t + 2
	// Protocol property, mirroring the pin-accurate fabric's capture
	// check: the burst must be AHB-legal.
	if err := amba.ValidateBurst(req.Addr, amba.FixedBurstFor(req.Beats, false), b.size, req.Beats); err == nil {
		b.chk.PropertyOK()
	} else {
		b.chk.Property(t, "burst-legal", false, "master %d drove an illegal burst: %v", port, err)
	}
	b.txnID++
	b.lastGrant = port
	b.served[port] += uint64(req.Beats)
	b.totalServed += uint64(req.Beats)
	b.bus.Grants++

	// Announce over BI for bank interleaving (delivered before the next
	// engine access, mirroring the fabric's per-cycle delivery).
	b.link.Send(t, bi.NextTxn{Master: port, Addr: req.Addr, Write: req.Write, Beats: req.Beats})

	isWB := port == b.wbIndex()
	var first, last sim.Cycle
	var kind string
	erred := false
	inDDR := uint64(req.Addr) < b.ddrCap
	switch {
	case !inDDR && b.p.SRAM.Contains(req.Addr):
		// On-chip SRAM slave: fixed wait states, then one beat/cycle.
		first = a + 1 + sim.Cycle(b.p.SRAM.WaitStates)
		last = first + sim.Cycle(req.Beats-1)
		kind = "sram"
		if req.Write {
			b.writePayload(port, req.Addr, req.Beats)
		}
	case !inDDR:
		// Unmapped: single ERROR beat from the default slave.
		first = a + 1
		last = a + 1
		erred = true
		kind = "error"
	case req.Write && !isWB && b.p.WriteBufferDepth > 0 && len(b.wb.queue) < b.p.WriteBufferDepth:
		// Posted write: absorbed at bus speed.
		first = a + 1
		last = a + sim.Cycle(req.Beats)
		kind = "posted"
		b.wb.queue = append(b.wb.queue, wbEntry{addr: req.Addr, beats: req.Beats, capA: a})
		b.writePayload(port, req.Addr, req.Beats)
		b.bus.WBPosted++
		if len(b.wb.queue) > b.bus.WBPeak {
			b.bus.WBPeak = len(b.wb.queue)
		}
		if !b.wb.pending && !b.wb.draining {
			b.wb.pending = true
			b.wb.rv = a + 2
		}
	default:
		if req.Write && !isWB && b.p.WriteBufferDepth > 0 {
			b.bus.WBFullStalls++
		}
		// The fabric delivers hints due through A at the top of the
		// capture cycle, before it consults the engine.
		b.deliverHints(a)
		res := b.eng.Access(a+1, req.Addr, req.Write, req.Beats)
		first, last = res.FirstData, res.LastData
		kind = res.Kind.String()
		if req.Write {
			if isWB {
				b.chk.Assert(len(b.wb.queue) > 0, "write-buffer drain with empty queue")
				b.wb.queue = append(b.wb.queue[:0], b.wb.queue[1:]...)
				b.wb.pending = false
				b.wb.draining = true
				b.bus.WBDrained++
			} else {
				b.writePayload(port, req.Addr, req.Beats)
			}
		}
	}

	if first > t {
		b.chk.PropertyOK()
	} else {
		b.chk.Property(t, "data-after-grant", false,
			"txn %d first data %v not after arbitration %v", b.txnID, first, t)
	}

	// Account the completed transaction (its timing is fully known).
	violated := false
	if !isWB {
		violated = b.tracker.Record(port, req.Since, first)
	}
	wait := grantVis.SubFloor(req.Since)
	lat := first.SubFloor(req.Since)
	beats, bytes := req.Beats, req.Beats*b.size.Bytes()
	if erred {
		beats, bytes = 1, 0
		b.bus.Masters[port].Errors++
	}
	b.bus.Masters[port].RecordTxn(req.Write, beats, bytes, wait, lat, violated)
	b.bus.BusyBeats += uint64(beats)
	if b.tracer != nil {
		b.tracer.Add(trace.Record{
			ID: b.txnID, Master: port, Addr: req.Addr, Write: req.Write, Beats: req.Beats,
			Req: req.Since, Grant: grantVis, FirstData: first, Done: last, Kind: kind,
		})
	}
	if last > b.maxDone {
		b.maxDone = last
	}

	// Move the arbitration window.
	b.lastA, b.lastL = a, last
	if b.p.Pipelining {
		b.floor = sim.MaxCycle(last.SubFloor(1), a+1)
	} else {
		b.floor = last + 1
	}

	// Schedule the port's next activity. A master's next request is
	// computed immediately (generators are pure functions of the
	// completion time); the write buffer needs a completion event
	// because its re-request depends on the queue length at drain end,
	// which posted writes granted in the meantime can change.
	if isWB {
		b.sch.Post(last, wbDrainDoneFn, b, 0)
	} else {
		m := b.masters[port]
		m.pending = false
		b.fetch(m, last, false)
	}
}

// wbDrainDoneFn is the write-buffer drain-completion event.
func wbDrainDoneFn(done sim.Cycle, owner any, _ uint64) {
	b := owner.(*Bus)
	b.wb.draining = false
	if len(b.wb.queue) > 0 {
		b.wb.pending = true
		// The pseudo-master re-asserts one cycle after both the drain
		// completion and the front entry's visibility (its posting
		// transaction's address phase + 1).
		b.wb.rv = sim.MaxCycle(done, b.wb.queue[0].capA) + 2
		b.scheduleArb(b.wb.rv)
	}
}

// writePayload writes the master's deterministic pattern to memory
// (datapath abstracted, identical to the pin-accurate model's pattern).
// Reads have no TLM-side consumer — the model exposes no read-data port
// — so the read datapath is elided entirely, exactly the "highly
// abstracted data path" the paper prescribes; write data is kept so
// cross-model memory-image checks hold.
func (b *Bus) writePayload(port int, addr uint32, beats int) {
	n := beats * b.size.Bytes()
	if cap(b.wbuf) < n {
		b.wbuf = make([]byte, n)
	}
	b.wbuf = b.wbuf[:n]
	// Incremental form of payloadByte over consecutive addresses: +7 per
	// byte, +1 extra whenever the address crosses a 256-byte boundary.
	a := addr
	v := uint32(port)*31 + a*7 + (a >> 8)
	for i := 0; i < n; i++ {
		b.wbuf[i] = byte(v)
		a++
		v += 7
		if a&0xff == 0 {
			v++
		}
	}
	b.mem.Write(addr, b.wbuf)
}

// payloadByte matches rtl.writePattern so cross-model data checks hold.
func payloadByte(master int, addr uint32) byte {
	return byte(uint32(master)*31 + addr*7 + (addr >> 8))
}

// done reports whether all workloads and the write buffer drained.
func (b *Bus) done() bool {
	for _, m := range b.masters {
		if !m.finished {
			return false
		}
	}
	return len(b.wb.queue) == 0 && !b.wb.draining
}

// Run simulates until every workload drains or maxCycles elapses
// (0 means a generous default cap).
func (b *Bus) Run(maxCycles sim.Cycle) Result {
	if maxCycles == 0 {
		maxCycles = 50_000_000
	}
	b.sch.Run(maxCycles)
	completed := b.done() && b.sch.Pending() == 0
	b.bus.Cycles = b.maxDone + 1
	if !completed && b.sch.Now() > b.maxDone {
		b.bus.Cycles = b.sch.Now()
	}
	b.bus.DDR = b.eng.Stats()
	ps := b.pipe.Stats()
	b.bus.ArbRounds = ps.Rounds
	for k, v := range ps.Decisive {
		b.bus.FilterDecisive[k] = v
	}
	return Result{Cycles: b.bus.Cycles, Completed: completed, Stats: b.bus}
}

// Mem exposes the backing store for end-to-end data checks.
func (b *Bus) Mem() *memmodel.Memory { return b.mem }

// Engine exposes the DDR engine for tests.
func (b *Bus) Engine() *ddr.Engine { return b.eng }

// Tracker exposes QoS outcomes.
func (b *Bus) Tracker() *qos.Tracker { return b.tracker }

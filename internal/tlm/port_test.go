package tlm

import (
	"bytes"
	"testing"

	"repro/internal/config"
)

func portParams() config.Params {
	p := config.Default(1)
	p.DDR = p.DDR.NoRefresh()
	return p
}

func TestPortWriteReadRoundTrip(t *testing.T) {
	pt := NewPort(portParams())
	if !pt.CheckGrant() {
		t.Fatal("CheckGrant on idle bus")
	}
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	var ctrl Ctrl
	ctrl.Beats = 4
	if st := pt.Write(0x1000, payload, &ctrl); st != OK {
		t.Fatalf("Write status %v", st)
	}
	got := make([]byte, 16)
	ctrl2 := Ctrl{Beats: 4}
	if st := pt.Read(0x1000, got, &ctrl2); st != OK {
		t.Fatalf("Read status %v", st)
	}
	if !bytes.Equal(payload, got) {
		t.Fatalf("round trip: %v vs %v", got, payload)
	}
	if ctrl2.Done <= ctrl.Done {
		t.Fatal("time must advance across calls")
	}
	if ctrl2.FirstData > ctrl2.Done || ctrl2.ReqCycle >= ctrl2.FirstData {
		t.Fatalf("timing ordering broken: %+v", ctrl2)
	}
}

func TestPortTimingAdvances(t *testing.T) {
	pt := NewPort(portParams())
	var prev Ctrl
	for i := 0; i < 5; i++ {
		var c Ctrl
		c.Beats = 8
		if st := pt.Read(uint32(i)*0x40, nil, &c); st != OK {
			t.Fatalf("read %d: %v", i, st)
		}
		if i > 0 && c.Done <= prev.Done {
			t.Fatalf("read %d did not advance time: %+v after %+v", i, c, prev)
		}
		prev = c
	}
	if pt.Now() == 0 {
		t.Fatal("port clock did not advance")
	}
}

func TestPortRejectsIllegal(t *testing.T) {
	pt := NewPort(portParams())
	ctrl := Ctrl{Beats: 4}
	if st := pt.Read(0x3F8, nil, &ctrl); st != ErrIllegal {
		t.Fatalf("1KB-crossing burst returned %v, want ILLEGAL", st)
	}
	ctrl = Ctrl{Beats: 1}
	if st := pt.Read(0x2, nil, &ctrl); st != ErrIllegal {
		t.Fatalf("misaligned read returned %v, want ILLEGAL", st)
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{OK, ErrTimeout, ErrIllegal, Status(9)} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

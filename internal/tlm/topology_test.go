package tlm

import (
	"testing"

	"repro/internal/amba"
	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/rtl"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// sramParams maps a 64 KiB SRAM with 2 wait states above the DDR.
func sramParams(masters int) config.Params {
	p := params(masters)
	p.SRAM = config.SRAMCfg{
		Enabled:    true,
		Base:       uint32(p.AddrMap.Capacity()),
		Size:       64 << 10,
		WaitStates: 2,
	}
	return p
}

func TestSRAMAccessTiming(t *testing.T) {
	p := sramParams(1)
	p.BIEnabled = false
	base := p.SRAM.Base
	b, _, tr := build(t, p, &traffic.Script{Reqs: []traffic.Req{
		{At: 0, Addr: base, Beats: 4, Burst: amba.BurstIncr4},
	}})
	if !b.Run(1000).Completed {
		t.Fatal("did not complete")
	}
	r := tr.Records()[0]
	if r.Kind != "sram" {
		t.Fatalf("kind %q, want sram", r.Kind)
	}
	// Address phase at 3 (T=1), first beat at A+1+wait = 4+2.
	if r.FirstData != 6 || r.Done != 9 {
		t.Fatalf("first/done %d/%d, want 6/9", r.FirstData, r.Done)
	}
}

func TestSRAMDataRoundTrip(t *testing.T) {
	p := sramParams(1)
	base := p.SRAM.Base
	b, _, _ := build(t, p, &traffic.Script{Reqs: []traffic.Req{
		{At: 0, Addr: base + 0x40, Beats: 4, Burst: amba.BurstIncr4, Write: true},
		{At: 0, Addr: base + 0x40, Beats: 4, Burst: amba.BurstIncr4},
	}})
	if !b.Run(1000).Completed {
		t.Fatal("did not complete")
	}
	for i := uint32(0); i < 16; i++ {
		if got, want := b.Mem().ByteAt(base+0x40+i), payloadByte(0, base+0x40+i); got != want {
			t.Fatalf("sram[%#x] = %#x, want %#x", base+0x40+i, got, want)
		}
	}
}

func TestUnmappedAddressErrors(t *testing.T) {
	p := sramParams(1)
	unmapped := p.SRAM.Base + p.SRAM.Size + 0x1000
	b, _, tr := build(t, p, &traffic.Script{Reqs: []traffic.Req{
		{At: 0, Addr: unmapped, Beats: 4, Burst: amba.BurstIncr4},
		{At: 0, Addr: 0x100, Beats: 4, Burst: amba.BurstIncr4}, // normal follow-up
	}})
	res := b.Run(1000)
	if !res.Completed {
		t.Fatal("did not complete (error path wedged the bus)")
	}
	if tr.Records()[0].Kind != "error" {
		t.Fatalf("kind %q, want error", tr.Records()[0].Kind)
	}
	if res.Stats.Masters[0].Errors != 1 {
		t.Fatalf("errors = %d, want 1", res.Stats.Masters[0].Errors)
	}
	if res.Stats.Masters[0].Txns != 2 {
		t.Fatalf("txns = %d, want 2 (bus must recover after ERROR)", res.Stats.Masters[0].Txns)
	}
}

func TestSRAMCrossModelAgreement(t *testing.T) {
	// Mixed DDR + SRAM + one unmapped access through both models: the
	// cycle counts and error accounting must agree.
	mk := func() []traffic.Generator {
		p := sramParams(2)
		base := p.SRAM.Base
		return []traffic.Generator{
			&traffic.Script{Reqs: []traffic.Req{
				{At: 0, Addr: 0x0000, Beats: 8, Burst: amba.BurstIncr8},
				{At: 0, Addr: base, Beats: 4, Burst: amba.BurstIncr4, Write: true},
				{At: 0, Addr: base + p.SRAM.Size + 64, Beats: 1, Burst: amba.BurstSingle},
				{At: 0, Addr: 0x0100, Beats: 4, Burst: amba.BurstIncr4, Write: true},
			}},
			&traffic.Sequential{Base: base + 0x8000, Beats: 4, Count: 20},
		}
	}
	p := sramParams(2)
	rb := rtl.New(rtl.Config{Params: p, Gens: mk(), Checker: &check.Checker{PanicOnProperty: true}, Tracer: trace.New(0)})
	rres := rb.Run(0)
	tb := New(Config{Params: p, Gens: mk(), Checker: &check.Checker{PanicOnProperty: true}, Tracer: trace.New(0)})
	tres := tb.Run(0)
	if !rres.Completed || !tres.Completed {
		t.Fatal("incomplete")
	}
	if rres.Cycles != tres.Cycles {
		t.Fatalf("cycles diverged: rtl=%d tlm=%d", rres.Cycles, tres.Cycles)
	}
	if rres.Stats.Masters[0].Errors != 1 || tres.Stats.Masters[0].Errors != 1 {
		t.Fatalf("errors rtl=%d tlm=%d, want 1/1",
			rres.Stats.Masters[0].Errors, tres.Stats.Masters[0].Errors)
	}
}

func TestPlainAHBvsAHBPlus(t *testing.T) {
	// The paper's motivation: plain AMBA2.0 cannot guarantee QoS and
	// leaves throughput on the table. Same workload, both platforms.
	mk := func() []traffic.Generator {
		return []traffic.Generator{
			&traffic.Stream{Base: 0x100000, Beats: 4, Period: 40, Count: 150},
			&traffic.Sequential{Base: 0x000000, Beats: 16, Count: 300},
			&traffic.Sequential{Base: 0x080000, Beats: 16, Count: 300, WriteEvery: 2},
		}
	}
	setQoS := func(p *config.Params) {
		p.Masters[0].RealTime = true
		p.Masters[0].QoSObjective = 80
	}
	pPlus := config.Default(3)
	pPlus.DDR = pPlus.DDR.NoRefresh()
	setQoS(&pPlus)
	pPlain := config.PlainAHB(3)
	pPlain.DDR = pPlain.DDR.NoRefresh()
	setQoS(&pPlain)

	plus := New(Config{Params: pPlus, Gens: mk()})
	plusRes := plus.Run(0)
	plain := New(Config{Params: pPlain, Gens: mk()})
	plainRes := plain.Run(0)
	if !plusRes.Completed || !plainRes.Completed {
		t.Fatal("incomplete")
	}
	if plusRes.Stats.Masters[0].LatencyMax >= plainRes.Stats.Masters[0].LatencyMax {
		t.Fatalf("AHB+ should bound the RT master's worst-case latency: ahb+=%d plain=%d",
			plusRes.Stats.Masters[0].LatencyMax, plainRes.Stats.Masters[0].LatencyMax)
	}
	if plusRes.Stats.TotalViolations() > plainRes.Stats.TotalViolations() {
		t.Fatalf("AHB+ should not violate more: ahb+=%d plain=%d",
			plusRes.Stats.TotalViolations(), plainRes.Stats.TotalViolations())
	}
}

package tlm

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/rtl"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// TestDebugTraceDiff prints the first divergent transaction between the
// two models for a contended workload. Skipped unless -run selects it
// explicitly with -v; it never fails.
func TestDebugTraceDiff(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("debug helper")
	}
	mk := func() []traffic.Generator {
		return []traffic.Generator{
			&traffic.Sequential{Base: 0x0000, Beats: 4, Count: 10},
			&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 10},
		}
	}
	p := params(2)
	rtr := trace.New(0)
	rb := rtl.New(rtl.Config{Params: p, Gens: mk(), Checker: &check.Checker{}, Tracer: rtr})
	rb.Run(0)
	ttr := trace.New(0)
	tb := New(Config{Params: p, Gens: mk(), Checker: &check.Checker{}, Tracer: ttr})
	tb.Run(0)
	rr, tr2 := rtr.Records(), ttr.Records()
	n := len(rr)
	if len(tr2) < n {
		n = len(tr2)
	}
	for i := 0; i < n; i++ {
		a, b := rr[i], tr2[i]
		mark := "  "
		if a != b {
			mark = "**"
		}
		fmt.Printf("%s rtl: m%d %s a=%#x req=%d grant=%d first=%d done=%d %s\n", mark, a.Master, dirOf(a.Write), a.Addr, a.Req, a.Grant, a.FirstData, a.Done, a.Kind)
		fmt.Printf("%s tlm: m%d %s a=%#x req=%d grant=%d first=%d done=%d %s\n", mark, b.Master, dirOf(b.Write), b.Addr, b.Req, b.Grant, b.FirstData, b.Done, b.Kind)
	}
}

func dirOf(w bool) string {
	if w {
		return "W"
	}
	return "R"
}

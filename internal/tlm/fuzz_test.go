package tlm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// randomPlatform derives a platform configuration from a seed, sampling
// the whole parameter space of §3.7: write-buffer depth, pipelining,
// BI, filter set, QoS classes.
func randomPlatform(rng *rand.Rand, masters int) config.Params {
	p := config.Default(masters)
	p.WriteBufferDepth = []int{0, 2, 4, 8, 16}[rng.Intn(5)]
	p.Pipelining = rng.Intn(2) == 0
	p.BIEnabled = rng.Intn(2) == 0
	p.BILatency = uint64(rng.Intn(3))
	p.Filters.Permission = rng.Intn(2) == 0
	p.Filters.Urgency = rng.Intn(2) == 0
	p.Filters.RealTime = rng.Intn(2) == 0
	p.Filters.Bandwidth = rng.Intn(2) == 0
	p.Filters.BankAffinity = rng.Intn(2) == 0
	p.Filters.WriteBuffer = rng.Intn(2) == 0
	if rng.Intn(2) == 0 {
		p.DDR = p.DDR.NoRefresh()
	}
	p.ClosedPage = rng.Intn(3) == 0
	if rng.Intn(3) == 0 {
		p.SRAM = config.SRAMCfg{
			Enabled:    true,
			Base:       uint32(p.AddrMap.Capacity()),
			Size:       1 << 16,
			WaitStates: uint64(rng.Intn(4)),
		}
	}
	for i := range p.Masters {
		if rng.Intn(3) == 0 {
			p.Masters[i].RealTime = true
			p.Masters[i].QoSObjective = uint64(rng.Intn(400) + 50)
		}
		if rng.Intn(3) == 0 {
			p.Masters[i].BandwidthQuota = float64(rng.Intn(4)) * 0.1
		}
	}
	return p
}

// randomGens derives a reproducible workload mix from a seed.
func randomGens(seed int64, masters, txns int) func() []traffic.Generator {
	return func() []traffic.Generator {
		rng := rand.New(rand.NewSource(seed))
		gens := make([]traffic.Generator, masters)
		for i := range gens {
			base := uint32(i) << 19
			switch rng.Intn(4) {
			case 0:
				gens[i] = &traffic.Sequential{Base: base, Beats: []int{1, 4, 8, 16}[rng.Intn(4)],
					Count: txns, Gap: 0, WriteEvery: rng.Intn(4)}
			case 1:
				gens[i] = &traffic.Random{Seed: rng.Int63(), Base: base, WindowBytes: 1 << 17,
					MaxBeats: 8, WriteFrac: rng.Float64(), MeanGap: rng.Intn(20), Count: txns}
			case 2:
				gens[i] = &traffic.Bursty{Base: base, Beats: 4, BurstTxns: rng.Intn(6) + 2,
					IdleGap: sim.Cycle(50 + 10*rng.Intn(20)), Count: txns, Write: rng.Intn(2) == 0}
			default:
				gens[i] = &traffic.Stream{Base: base, Beats: 4, Period: sim.Cycle(30 + 10*rng.Intn(10)), Count: txns}
			}
		}
		return gens
	}
}

// TestFuzzCrossModelAgreement drives randomized platform configurations
// and workloads through both abstraction levels and requires the cycle
// counts to track within the paper's accuracy band and memory contents
// to match exactly. This is the repository's strongest evidence that
// the TLM is faithful across the whole configuration space, not just on
// the Table 1 scenarios.
func TestFuzzCrossModelAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz equivalence in -short mode")
	}
	f := func(seedRaw int64) bool {
		seed := seedRaw
		rng := rand.New(rand.NewSource(seed))
		masters := rng.Intn(3) + 1
		p := randomPlatform(rng, masters)
		mk := randomGens(rng.Int63(), masters, 40)

		rb := rtl.New(rtl.Config{Params: p, Gens: mk(), Checker: &check.Checker{PanicOnProperty: true}})
		rres := rb.Run(3_000_000)
		tb := New(Config{Params: p, Gens: mk(), Checker: &check.Checker{PanicOnProperty: true}})
		tres := tb.Run(3_000_000)
		if !rres.Completed || !tres.Completed {
			t.Logf("seed %d: incomplete (rtl=%v tlm=%v)", seed, rres.Completed, tres.Completed)
			return false
		}
		// Cycle agreement within the paper's error band.
		d := float64(rres.Cycles) - float64(tres.Cycles)
		if d < 0 {
			d = -d
		}
		if errPct := 100 * d / float64(rres.Cycles); errPct > 10 {
			t.Logf("seed %d: cycle divergence %.2f%% (rtl=%d tlm=%d, cfg=%+v)",
				seed, errPct, rres.Cycles, tres.Cycles, p)
			return false
		}
		// Transaction counts must match exactly.
		for i := 0; i < masters; i++ {
			if rres.Stats.Masters[i].Txns != tres.Stats.Masters[i].Txns {
				t.Logf("seed %d: master %d txns diverged", seed, i)
				return false
			}
		}
		// Memory contents must be identical.
		srng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for k := 0; k < 2000; k++ {
			a := uint32(srng.Intn(1 << 21))
			if rb.Mem().ByteAt(a) != tb.Mem().ByteAt(a) {
				t.Logf("seed %d: memory diverged at %#x", seed, a)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzTLMDeterminism replays the same seed twice through the TLM
// and requires bit-identical outcomes.
func TestFuzzTLMDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		run := func() (uint64, uint64) {
			rng := rand.New(rand.NewSource(seed))
			masters := rng.Intn(3) + 1
			p := randomPlatform(rng, masters)
			mk := randomGens(rng.Int63(), masters, 30)
			b := New(Config{Params: p, Gens: mk()})
			res := b.Run(3_000_000)
			return uint64(res.Cycles), res.Stats.TotalTxns()
		}
		c1, t1 := run()
		c2, t2 := run()
		return c1 == c2 && t1 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

package tlm

import (
	"testing"

	"repro/internal/amba"
	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// TestNoStarvationUnderSaturation: every master keeps making progress
// under full contention, with and without the QoS filters.
func TestNoStarvationUnderSaturation(t *testing.T) {
	for _, filters := range []bool{true, false} {
		p := params(4)
		if !filters {
			p.Filters = config.PlainAHB(4).Filters
		}
		b, _, _ := build(t, p,
			&traffic.Sequential{Base: 0x000000, Beats: 16, Count: 50},
			&traffic.Sequential{Base: 0x080000, Beats: 16, Count: 50},
			&traffic.Sequential{Base: 0x100000, Beats: 16, Count: 50},
			&traffic.Sequential{Base: 0x180000, Beats: 16, Count: 50},
		)
		res := b.Run(0)
		if !res.Completed {
			t.Fatalf("filters=%v: starvation (run incomplete)", filters)
		}
		for i := 0; i < 4; i++ {
			if res.Stats.Masters[i].Txns != 50 {
				t.Fatalf("filters=%v: master %d finished %d/50", filters, i, res.Stats.Masters[i].Txns)
			}
		}
	}
}

// TestRefreshVetoRetries: with an aggressive refresh cadence the
// permission filter vetoes rounds, and the retry path must still drain
// the workload.
func TestRefreshVetoRetries(t *testing.T) {
	p := config.Default(2)
	p.DDR.TREFI = 60 // refresh every 60 cycles: constant interference
	p.DDR.TRFC = 12
	b, chk, _ := build(t, p,
		&traffic.Sequential{Base: 0, Beats: 4, Count: 60},
		&traffic.Random{Seed: 3, Base: 0x80000, WindowBytes: 1 << 16, MaxBeats: 4, WriteFrac: 0.5, Count: 60},
	)
	res := b.Run(0)
	if !res.Completed {
		t.Fatal("did not complete under aggressive refresh")
	}
	if res.Stats.DDR.Refreshes < 10 {
		t.Fatalf("only %d refreshes; cadence not exercised", res.Stats.DDR.Refreshes)
	}
	if chk.Total() != 0 {
		t.Fatalf("property violations: %v", chk.Violations())
	}
}

// TestIllegalBurstCaughtInCollectMode mirrors the RTL failure-injection
// test: a 1KB-crossing burst is flagged by the burst-legal property and
// the simulation continues.
func TestIllegalBurstCaughtInCollectMode(t *testing.T) {
	chk := &check.Checker{}
	p := params(1)
	b := New(Config{Params: p, Gens: []traffic.Generator{&traffic.Script{Reqs: []traffic.Req{
		{At: 0, Addr: 0x3F8, Beats: 4, Burst: amba.BurstIncr4}, // crosses 1KB
		{At: 0, Addr: 0x100, Beats: 4, Burst: amba.BurstIncr4},
	}}}, Checker: chk})
	res := b.Run(2000)
	if !res.Completed {
		t.Fatal("collect-mode run should complete")
	}
	found := false
	for _, v := range chk.Violations() {
		if v.Property == "burst-legal" {
			found = true
		}
	}
	if !found {
		t.Fatalf("burst-legal violation missing: %v", chk.Violations())
	}
}

// TestBandwidthQuotaShapesShare: a master with a reserved quota gets a
// larger share of a saturated bus than an identical master without one.
func TestBandwidthQuotaShapesShare(t *testing.T) {
	p := params(2)
	p.Masters[0].BandwidthQuota = 0.7
	p.WriteBufferDepth = 0
	b, _, _ := build(t, p,
		&traffic.Sequential{Base: 0, Beats: 4, Count: 400},
		&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 400},
	)
	// Cap the run so the contended phase dominates the measurement.
	res := b.Run(6000)
	m0, m1 := res.Stats.Masters[0].Txns, res.Stats.Masters[1].Txns
	if m0 <= m1 {
		t.Fatalf("quota-holding master should lead: m0=%d m1=%d", m0, m1)
	}
}

// TestUrgencyThresholdParameter: a tiny threshold makes urgency rare, a
// huge one makes it dominate; both must complete and the huge-threshold
// run must cut the RT master's worst latency.
func TestUrgencyThresholdParameter(t *testing.T) {
	run := func(threshold uint64) sim.Cycle {
		p := params(3)
		p.Masters[0].RealTime = true
		p.Masters[0].QoSObjective = 100
		p.UrgencyThreshold = threshold
		b, _, _ := build(t, p,
			&traffic.Stream{Base: 0x100000, Beats: 4, Period: 50, Count: 80},
			&traffic.Sequential{Base: 0, Beats: 16, Count: 200},
			&traffic.Sequential{Base: 0x80000, Beats: 16, Count: 200},
		)
		res := b.Run(0)
		if !res.Completed {
			t.Fatal("did not complete")
		}
		return res.Stats.Masters[0].LatencyMax
	}
	tight := run(1)
	loose := run(90)
	if loose > tight {
		t.Fatalf("larger urgency threshold should not worsen RT latency: thr=1 %d vs thr=90 %d", tight, loose)
	}
}

// TestBILatencyParameter: a longer BI pipeline delays hints; the
// interleaving benefit should not grow with added latency.
func TestBILatencyParameter(t *testing.T) {
	run := func(lat uint64) sim.Cycle {
		p := params(2)
		p.BILatency = lat
		rowBytes := p.AddrMap.RowBytes()
		stride := rowBytes * uint32(p.AddrMap.Banks())
		b, _, _ := build(t, p,
			&traffic.Sequential{Base: 0, Beats: 8, Count: 100, StrideBytes: stride},
			&traffic.Sequential{Base: rowBytes, Beats: 8, Count: 100, StrideBytes: stride},
		)
		res := b.Run(0)
		if !res.Completed {
			t.Fatal("did not complete")
		}
		return res.Cycles
	}
	fast, slow := run(1), run(6)
	if fast > slow {
		t.Fatalf("shorter BI latency should not be worse: lat1=%d lat6=%d", fast, slow)
	}
}

// TestTLMStatsMatchRTLPerMaster: beyond total cycles, the per-master
// profile (txns, beats, bytes) must agree between the models.
func TestTLMStatsMatchRTLPerMaster(t *testing.T) {
	p := params(3)
	mk := func() []traffic.Generator {
		return []traffic.Generator{
			&traffic.Sequential{Base: 0, Beats: 8, Count: 40, WriteEvery: 2},
			&traffic.Random{Seed: 8, Base: 0x80000, WindowBytes: 1 << 16, MaxBeats: 8, WriteFrac: 0.3, Count: 40},
			&traffic.Stream{Base: 0x100000, Beats: 4, Period: 60, Count: 40},
		}
	}
	tres := runTLMOnly(t, p, mk)
	rres := runRTLOnly(t, p, mk)
	for i := 0; i < 3; i++ {
		tm, rm := tres.Stats.Masters[i], rres.Stats.Masters[i]
		if tm.Txns != rm.Txns || tm.Beats != rm.Beats || tm.Bytes != rm.Bytes {
			t.Fatalf("master %d profile diverged: tlm{%d,%d,%d} rtl{%d,%d,%d}",
				i, tm.Txns, tm.Beats, tm.Bytes, rm.Txns, rm.Beats, rm.Bytes)
		}
		if tm.Reads != rm.Reads || tm.Writes != rm.Writes {
			t.Fatalf("master %d direction split diverged", i)
		}
	}
}

// runTLMOnly and runRTLOnly are small helpers for profile comparisons.
func runTLMOnly(t *testing.T, p config.Params, mk func() []traffic.Generator) Result {
	t.Helper()
	b := New(Config{Params: p, Gens: mk(), Checker: &check.Checker{PanicOnProperty: true}})
	res := b.Run(0)
	if !res.Completed {
		t.Fatal("TLM incomplete")
	}
	return res
}

func runRTLOnly(t *testing.T, p config.Params, mk func() []traffic.Generator) rtl.Result {
	t.Helper()
	b := rtl.New(rtl.Config{Params: p, Gens: mk(), Checker: &check.Checker{PanicOnProperty: true}})
	res := b.Run(0)
	if !res.Completed {
		t.Fatal("RTL incomplete")
	}
	return res
}

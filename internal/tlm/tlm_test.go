package tlm

import (
	"testing"

	"repro/internal/amba"
	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func build(t *testing.T, p config.Params, gens ...traffic.Generator) (*Bus, *check.Checker, *trace.Recorder) {
	t.Helper()
	chk := &check.Checker{PanicOnProperty: true}
	tr := trace.New(0)
	b := New(Config{Params: p, Gens: gens, Checker: chk, Tracer: tr})
	return b, chk, tr
}

func params(masters int) config.Params {
	p := config.Default(masters)
	p.DDR = p.DDR.NoRefresh()
	return p
}

func TestSingleReadTimelineMatchesContract(t *testing.T) {
	p := params(1)
	p.WriteBufferDepth = 0
	p.BIEnabled = false
	b, _, tr := build(t, p, &traffic.Script{Reqs: []traffic.Req{
		{At: 0, Addr: 0x100, Beats: 4, Burst: amba.BurstIncr4},
	}})
	res := b.Run(2000)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	r := tr.Records()[0]
	if r.Req != 1 || r.Grant != 2 {
		t.Fatalf("req/grant %d/%d, want 1/2", r.Req, r.Grant)
	}
	wantFirst := sim.Cycle(4) + p.DDR.TRCD + p.DDR.TCL
	if r.FirstData != wantFirst || r.Done != wantFirst+3 {
		t.Fatalf("first/done %d/%d, want %d/%d", r.FirstData, r.Done, wantFirst, wantFirst+3)
	}
}

func TestWriteDataIntegrity(t *testing.T) {
	for _, wbDepth := range []int{0, 8} {
		p := params(1)
		p.WriteBufferDepth = wbDepth
		b, _, _ := build(t, p, &traffic.Script{Reqs: []traffic.Req{
			{At: 0, Addr: 0x200, Beats: 4, Burst: amba.BurstIncr4, Write: true},
		}})
		if !b.Run(2000).Completed {
			t.Fatalf("wb=%d: did not complete", wbDepth)
		}
		for i := uint32(0); i < 16; i++ {
			want := payloadByte(0, 0x200+i)
			if got := b.Mem().ByteAt(0x200 + i); got != want {
				t.Fatalf("wb=%d: mem[%#x] = %#x, want %#x", wbDepth, 0x200+i, got, want)
			}
		}
	}
}

func TestWriteBufferDrains(t *testing.T) {
	p := params(1)
	p.WriteBufferDepth = 4
	b, _, _ := build(t, p, &traffic.Sequential{Base: 0, Beats: 4, Count: 10, WriteEvery: 1})
	res := b.Run(10000)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if res.Stats.WBPosted == 0 || res.Stats.WBDrained != res.Stats.WBPosted {
		t.Fatalf("posted=%d drained=%d", res.Stats.WBPosted, res.Stats.WBDrained)
	}
}

func TestMultiMasterAllComplete(t *testing.T) {
	p := params(3)
	b, chk, _ := build(t, p,
		&traffic.Sequential{Base: 0x0000, Beats: 8, Count: 20},
		&traffic.Random{Seed: 1, Base: 0x80000, WindowBytes: 1 << 16, MaxBeats: 8, WriteFrac: 0.4, Count: 20},
		&traffic.Stream{Base: 0x100000, Beats: 4, Period: 60, Count: 20},
	)
	res := b.Run(100000)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	for i := 0; i < 3; i++ {
		if res.Stats.Masters[i].Txns != 20 {
			t.Fatalf("master %d completed %d txns", i, res.Stats.Masters[i].Txns)
		}
	}
	if chk.Total() != 0 {
		t.Fatalf("property violations: %v", chk.Violations())
	}
}

func TestRefreshEnabledCompletes(t *testing.T) {
	p := config.Default(2)
	b, _, _ := build(t, p,
		&traffic.Sequential{Base: 0, Beats: 4, Count: 50},
		&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 50, WriteEvery: 2},
	)
	res := b.Run(300000)
	if !res.Completed {
		t.Fatal("did not complete with refresh enabled")
	}
	if res.Stats.DDR.Refreshes == 0 {
		t.Fatal("expected refreshes")
	}
}

// --- Cross-model validation: the heart of the reproduction. ---

// runBoth drives the identical workload through the pin-accurate model
// and the TLM and returns both cycle counts.
func runBoth(t *testing.T, p config.Params, mk func() []traffic.Generator) (rtlCycles, tlmCycles sim.Cycle) {
	t.Helper()
	rb := rtl.New(rtl.Config{Params: p, Gens: mk(), Checker: &check.Checker{PanicOnProperty: true}})
	rres := rb.Run(2_000_000)
	if !rres.Completed {
		t.Fatal("RTL run did not complete")
	}
	tb := New(Config{Params: p, Gens: mk(), Checker: &check.Checker{PanicOnProperty: true}})
	tres := tb.Run(2_000_000)
	if !tres.Completed {
		t.Fatal("TLM run did not complete")
	}
	return rres.Cycles, tres.Cycles
}

func pctErr(a, b sim.Cycle) float64 {
	d := float64(a) - float64(b)
	if d < 0 {
		d = -d
	}
	return 100 * d / float64(a)
}

func TestSingleMasterCycleAgreementExact(t *testing.T) {
	// With one master there is no arbitration interleaving and no
	// write-buffer contention: the TLM should agree with the
	// pin-accurate model cycle for cycle.
	cases := []struct {
		name string
		mk   func() []traffic.Generator
	}{
		{"sequential reads", func() []traffic.Generator {
			return []traffic.Generator{&traffic.Sequential{Base: 0, Beats: 8, Count: 50, Gap: 3}}
		}},
		{"random mixed", func() []traffic.Generator {
			return []traffic.Generator{&traffic.Random{Seed: 9, Base: 0, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.3, MeanGap: 4, Count: 50}}
		}},
		{"stream", func() []traffic.Generator {
			return []traffic.Generator{&traffic.Stream{Base: 0, Beats: 4, Period: 40, Count: 50}}
		}},
	}
	for _, c := range cases {
		p := params(1)
		p.WriteBufferDepth = 0 // no posted-write drain interleaving
		r, m := runBoth(t, p, c.mk)
		if r != m {
			t.Errorf("%s: RTL %d vs TLM %d cycles (want exact agreement)", c.name, r, m)
		}
	}
}

func TestMultiMasterCycleAgreementClose(t *testing.T) {
	// Contended multi-master workloads: the TLM's documented
	// abstractions may cost a few cycles; the error must stay small
	// (the paper reports < 3% on average).
	cases := []struct {
		name string
		mk   func() []traffic.Generator
	}{
		{"2x sequential", func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0x0000, Beats: 4, Count: 60},
				&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 60},
			}
		}},
		{"mixed rw", func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0x0000, Beats: 8, Count: 40, WriteEvery: 2},
				&traffic.Random{Seed: 5, Base: 0x80000, WindowBytes: 1 << 16, MaxBeats: 8, WriteFrac: 0.5, Count: 40},
				&traffic.Stream{Base: 0x100000, Beats: 4, Period: 50, Count: 40},
			}
		}},
	}
	for _, c := range cases {
		p := params(len(c.mk()))
		r, m := runBoth(t, p, c.mk)
		if e := pctErr(r, m); e > 5 {
			t.Errorf("%s: RTL %d vs TLM %d cycles (%.2f%% error, want <= 5%%)", c.name, r, m, e)
		}
	}
}

func TestCrossModelMemoryIdentical(t *testing.T) {
	// After the same write-heavy workload, both models' memories hold
	// identical contents.
	mk := func() []traffic.Generator {
		return []traffic.Generator{
			&traffic.Sequential{Base: 0x1000, Beats: 4, Count: 30, WriteEvery: 1},
			&traffic.Random{Seed: 11, Base: 0x40000, WindowBytes: 1 << 14, MaxBeats: 4, WriteFrac: 1.0, Count: 30},
		}
	}
	p := params(2)
	rb := rtl.New(rtl.Config{Params: p, Gens: mk()})
	if !rb.Run(0).Completed {
		t.Fatal("RTL incomplete")
	}
	tb := New(Config{Params: p, Gens: mk()})
	if !tb.Run(0).Completed {
		t.Fatal("TLM incomplete")
	}
	for _, base := range []uint32{0x1000, 0x40000} {
		for off := uint32(0); off < 1<<14; off += 97 {
			a := base + off
			if rv, tv := rb.Mem().ByteAt(a), tb.Mem().ByteAt(a); rv != tv {
				t.Fatalf("memory diverged at %#x: rtl=%#x tlm=%#x", a, rv, tv)
			}
		}
	}
}

func TestPipeliningReducesCyclesTLM(t *testing.T) {
	run := func(pipelining bool) sim.Cycle {
		p := params(2)
		p.Pipelining = pipelining
		b, _, _ := build(t, p,
			&traffic.Sequential{Base: 0x0000, Beats: 4, Count: 30},
			&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 30},
		)
		res := b.Run(100000)
		if !res.Completed {
			t.Fatal("did not complete")
		}
		return res.Cycles
	}
	if on, off := run(true), run(false); on >= off {
		t.Fatalf("pipelining should reduce cycles: on=%d off=%d", on, off)
	}
}

func TestCycleCapReturnsIncomplete(t *testing.T) {
	p := params(1)
	b, _, _ := build(t, p, &traffic.Sequential{Base: 0, Beats: 4, Count: 100000})
	res := b.Run(100)
	if res.Completed {
		t.Fatal("should not complete in 100 cycles")
	}
}

func TestMismatchedGeneratorsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Params: params(2), Gens: []traffic.Generator{&traffic.Sequential{Count: 1, Beats: 1}}})
}

package tlm

import (
	"fmt"

	"repro/internal/amba"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// Status is the return code of a Port transaction call, mirroring the
// paper's transaction-port protocol ("the transaction port of the
// master calls 'Read(addr, *data, *ctrl)' and receives 'OK'").
type Status uint8

const (
	// OK: the transfer completed successfully.
	OK Status = iota
	// ErrTimeout: the transfer did not complete within the cycle cap.
	ErrTimeout
	// ErrIllegal: the request violated the AHB protocol rules.
	ErrIllegal
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case ErrTimeout:
		return "TIMEOUT"
	case ErrIllegal:
		return "ILLEGAL"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Ctrl carries the per-transaction control information of a Port call
// and returns its timing, the §3.2 "ctrl" argument.
type Ctrl struct {
	// Burst is the AHB burst kind (derived from Beats if zero-valued
	// BurstSingle does not match).
	Burst amba.Burst
	// Beats is the burst length (default 1).
	Beats int
	// ReqCycle is filled with the cycle the request became visible.
	ReqCycle sim.Cycle
	// GrantCycle is filled with the grant-visible cycle.
	GrantCycle sim.Cycle
	// FirstData and Done are filled with the data-phase bounds.
	FirstData, Done sim.Cycle
}

// Port is the interactive master-side transaction port of the AHB+
// TLM: the API of paper §3.2. Each call issues one transaction on a
// dedicated single-master platform and runs the simulation until it
// completes, returning its status and timing. A Port owns its bus; use
// the Bus/Config path with traffic generators for multi-master
// platforms (method-based batch simulation).
type Port struct {
	p      config.Params
	bus    *Bus
	script *traffic.Script
	now    sim.Cycle
}

// NewPort returns a port on a fresh single-master AHB+ platform.
func NewPort(p config.Params) *Port {
	p.Masters = p.Masters[:0]
	p.Masters = append(p.Masters, config.MasterCfg{Name: "port"})
	return &Port{p: p}
}

// CheckGrant reports whether the bus would grant this master
// immediately (always true on an otherwise idle single-master bus once
// arbitration latency has passed); it mirrors the paper's CheckGrant()
// port call.
func (pt *Port) CheckGrant() bool { return true }

// Now returns the port's current simulation cycle.
func (pt *Port) Now() sim.Cycle { return pt.now }

// run issues one transaction and advances simulated time.
func (pt *Port) run(addr uint32, write bool, data []byte, ctrl *Ctrl) Status {
	beats := 1
	if ctrl != nil && ctrl.Beats > 0 {
		beats = ctrl.Beats
	}
	burst := amba.FixedBurstFor(beats, false)
	if ctrl != nil && ctrl.Burst != amba.BurstSingle {
		burst = ctrl.Burst
	}
	txn := amba.Txn{Addr: addr, Write: write, Burst: burst, Size: amba.SizeForBytes(pt.p.BusBytes), Beats: beats}
	if err := txn.Validate(); err != nil {
		return ErrIllegal
	}

	// Each call extends a script-driven single-master bus. Rebuilding
	// per call keeps the port trivially correct; interactive use is not
	// the performance path.
	pt.script = &traffic.Script{Reqs: []traffic.Req{{
		At: pt.now, Addr: addr, Write: write, Burst: burst, Beats: beats,
	}}}
	prevMem := pt.bus
	b := New(Config{Params: pt.p, Gens: []traffic.Generator{pt.script}})
	if prevMem != nil {
		// Carry memory contents across calls.
		b.mem = prevMem.mem
	}
	res := b.Run(pt.now + 1_000_000)
	if !res.Completed {
		return ErrTimeout
	}
	pt.bus = b
	m := res.Stats.Masters[0]
	if write {
		if data != nil {
			b.mem.Write(addr, data)
		}
	} else if data != nil {
		b.mem.Read(addr, data)
	}
	if ctrl != nil {
		ctrl.Beats = beats
		ctrl.Burst = burst
		ctrl.Done = res.Cycles - 1
		ctrl.FirstData = ctrl.Done - sim.Cycle(beats-1)
		ctrl.ReqCycle = pt.now + 1
		ctrl.GrantCycle = ctrl.ReqCycle + sim.Cycle(m.WaitCycles)
	}
	pt.now = res.Cycles
	return OK
}

// Read performs a read burst at addr into data (sized beats×bus
// width; nil for timing-only). It returns OK and fills ctrl timing on
// success.
func (pt *Port) Read(addr uint32, data []byte, ctrl *Ctrl) Status {
	return pt.run(addr, false, data, ctrl)
}

// Write performs a write burst at addr from data (nil writes the
// deterministic test pattern).
func (pt *Port) Write(addr uint32, data []byte, ctrl *Ctrl) Status {
	return pt.run(addr, true, data, ctrl)
}

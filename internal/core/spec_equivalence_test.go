package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/spec"
	"repro/internal/traffic"
)

// closureTable1 is the original closure-defined Table 1 scenario set,
// kept verbatim from before the workloads became declarative specs.
// The production set (Table1Scenarios) is compiled from
// spec.Table1Specs; this copy pins the equivalence: spec-compiled and
// closure-defined workloads must produce identical cycle counts in
// both models, scenario by scenario.
func closureTable1() []Workload {
	var ws []Workload

	base := func(rtMaster bool) config.Params {
		p := config.Default(3)
		p.Masters[0].Name = "dma0"
		p.Masters[1].Name = "cpu"
		p.Masters[2].Name = "disp"
		if rtMaster {
			p.Masters[2].RealTime = true
			p.Masters[2].QoSObjective = 200
		}
		return p
	}

	ws = append(ws,
		Workload{
			Name:   "seq/read-dominant",
			Params: base(false),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Sequential{Base: 0x00000, Beats: 8, Count: 150, Gap: 2},
					&traffic.Sequential{Base: 0x80000, Beats: 8, Count: 150, Gap: 4},
					&traffic.Sequential{Base: 0x100000, Beats: 4, Count: 150, Gap: 8},
				}
			},
		},
		Workload{
			Name:   "seq/write-heavy",
			Params: base(false),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Sequential{Base: 0x00000, Beats: 8, Count: 150, WriteEvery: 1},
					&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 150, WriteEvery: 2},
					&traffic.Sequential{Base: 0x100000, Beats: 8, Count: 150, Gap: 4},
				}
			},
		},
		Workload{
			Name:   "seq/rt-mixed",
			Params: base(true),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Sequential{Base: 0x00000, Beats: 16, Count: 150},
					&traffic.Sequential{Base: 0x80000, Beats: 8, Count: 150, WriteEvery: 3},
					&traffic.Stream{Base: 0x100000, Beats: 4, Period: 60, Count: 150},
				}
			},
		},
		Workload{
			Name:   "rand/read-dominant",
			Params: base(false),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Random{Seed: 101, Base: 0x00000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.1, MeanGap: 6, Count: 150},
					&traffic.Random{Seed: 202, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.1, MeanGap: 10, Count: 150},
					&traffic.Random{Seed: 303, Base: 0x100000, WindowBytes: 1 << 16, MaxBeats: 4, WriteFrac: 0.0, MeanGap: 14, Count: 150},
				}
			},
		},
		Workload{
			Name:   "rand/write-heavy",
			Params: base(false),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Random{Seed: 404, Base: 0x00000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.7, MeanGap: 4, Count: 150},
					&traffic.Random{Seed: 505, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 4, WriteFrac: 0.6, MeanGap: 6, Count: 150},
					&traffic.Random{Seed: 606, Base: 0x100000, WindowBytes: 1 << 16, MaxBeats: 8, WriteFrac: 0.5, MeanGap: 10, Count: 150},
				}
			},
		},
		Workload{
			Name:   "rand/rt-mixed",
			Params: base(true),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Random{Seed: 707, Base: 0x00000, WindowBytes: 1 << 18, MaxBeats: 16, WriteFrac: 0.3, MeanGap: 5, Count: 150},
					&traffic.Random{Seed: 808, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.3, MeanGap: 8, Count: 150},
					&traffic.Stream{Base: 0x100000, Beats: 4, Period: 70, Count: 150},
				}
			},
		},
		Workload{
			Name:   "burst/read-dominant",
			Params: base(false),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Bursty{Base: 0x00000, Beats: 8, BurstTxns: 8, IdleGap: 200, Count: 150},
					&traffic.Bursty{Base: 0x80000, Beats: 8, BurstTxns: 6, IdleGap: 150, Count: 150},
					&traffic.Sequential{Base: 0x100000, Beats: 4, Count: 150, Gap: 10},
				}
			},
		},
		Workload{
			Name:   "burst/write-heavy",
			Params: base(false),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Bursty{Base: 0x00000, Beats: 8, BurstTxns: 8, IdleGap: 150, Count: 150, Write: true},
					&traffic.Bursty{Base: 0x80000, Beats: 4, BurstTxns: 10, IdleGap: 100, Count: 150, Write: true},
					&traffic.Random{Seed: 909, Base: 0x100000, WindowBytes: 1 << 16, MaxBeats: 4, WriteFrac: 0.2, MeanGap: 8, Count: 150},
				}
			},
		},
		Workload{
			Name:   "burst/rt-mixed",
			Params: base(true),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Bursty{Base: 0x00000, Beats: 16, BurstTxns: 4, IdleGap: 250, Count: 150},
					&traffic.Bursty{Base: 0x80000, Beats: 8, BurstTxns: 6, IdleGap: 150, Count: 150, Write: true},
					&traffic.Stream{Base: 0x100000, Beats: 8, Period: 90, Count: 150},
				}
			},
		},
		Workload{
			Name:   "stream/read-dominant",
			Params: base(true),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Stream{Base: 0x00000, Beats: 8, Period: 50, Count: 150},
					&traffic.Sequential{Base: 0x80000, Beats: 8, Count: 150, Gap: 6},
					&traffic.Stream{Base: 0x100000, Beats: 4, Period: 80, Count: 150},
				}
			},
		},
		Workload{
			Name:   "stream/write-heavy",
			Params: base(true),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Stream{Base: 0x00000, Beats: 8, Period: 60, Count: 150, Write: true},
					&traffic.Sequential{Base: 0x80000, Beats: 8, Count: 150, WriteEvery: 1},
					&traffic.Stream{Base: 0x100000, Beats: 4, Period: 70, Count: 150},
				}
			},
		},
		Workload{
			Name:   "stream/rt-mixed",
			Params: base(true),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Stream{Base: 0x00000, Beats: 16, Period: 120, Count: 150},
					&traffic.Random{Seed: 111, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.4, MeanGap: 6, Count: 150},
					&traffic.Stream{Base: 0x100000, Beats: 4, Period: 60, Count: 150},
				}
			},
		},
	)
	return ws
}

// TestSpecCompiledTable1MatchesClosures is the acceptance criterion
// for the declarative spec layer: every Table 1 scenario, compiled
// from its spec, must produce the cycle counts of the original
// closure-defined workload in BOTH models.
func TestSpecCompiledTable1MatchesClosures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 48 simulations")
	}
	closures := closureTable1()
	compiled := Table1Scenarios()
	if len(closures) != len(compiled) {
		t.Fatalf("scenario counts differ: %d closures vs %d specs", len(closures), len(compiled))
	}
	cRows, cAvg := CompareAll(closures)
	sRows, sAvg := CompareAll(compiled)
	for i := range cRows {
		c, s := cRows[i], sRows[i]
		if c.Name != s.Name {
			t.Fatalf("scenario %d name: closure %q vs spec %q", i, c.Name, s.Name)
		}
		if c.RTLCycles != s.RTLCycles || c.TLMCycles != s.TLMCycles {
			t.Errorf("%s: closure RTL=%d TL=%d, spec RTL=%d TL=%d",
				c.Name, uint64(c.RTLCycles), uint64(c.TLMCycles), uint64(s.RTLCycles), uint64(s.TLMCycles))
		}
		if !s.Completed {
			t.Errorf("%s: spec-compiled run incomplete", s.Name)
		}
	}
	if cAvg != sAvg {
		t.Errorf("average error differs: closure %.6f vs spec %.6f", cAvg, sAvg)
	}
}

// TestSpeedWorkloadsSpecBacked pins the speed pair's spec compilation
// to the closure originals at a reduced size.
func TestSpeedWorkloadsSpecBacked(t *testing.T) {
	multiSpec, singleSpec := spec.SpeedSpecs(60)
	multi := MustFromSpec(multiSpec)
	single := MustFromSpec(singleSpec)

	closureMulti := Workload{
		Name:   "speed/multi",
		Params: config.Default(3),
		Gens: func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0x00000, Beats: 8, Count: 60, WriteEvery: 3, Gap: 90},
				&traffic.Random{Seed: 42, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.3, MeanGap: 110, Count: 60},
				&traffic.Stream{Base: 0x100000, Beats: 4, Period: 120, Count: 60},
			}
		},
	}
	closureSingle := Workload{
		Name:   "speed/single",
		Params: config.Default(1),
		Gens: func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0, Beats: 8, Count: 180, Gap: 100},
			}
		},
	}
	for _, pair := range []struct {
		name            string
		specW, closureW Workload
	}{
		{"multi", multi, closureMulti},
		{"single", single, closureSingle},
	} {
		a := Run(pair.specW, TLM, Options{})
		b := Run(pair.closureW, TLM, Options{})
		if a.Cycles != b.Cycles || !a.Completed {
			t.Errorf("%s: spec %d cycles (completed=%v) vs closure %d",
				pair.name, uint64(a.Cycles), a.Completed, uint64(b.Cycles))
		}
	}
}

// TestFromSpecRejectsInvalid confirms the error path surfaces the
// validator's message instead of panicking.
func TestFromSpecRejectsInvalid(t *testing.T) {
	s := spec.Table1Specs()[0]
	s.Masters[0].Count = 0
	if _, err := FromSpec(s); err == nil {
		t.Fatal("invalid spec compiled")
	}
	s2 := spec.Table1Specs()[0]
	if w, err := FromSpec(s2); err != nil || w.Name != s2.Name {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

package core

import (
	"repro/internal/spec"
)

// The experiment workloads are defined as declarative specs in
// internal/spec and compiled here. The paper's scenario set is data:
// it can be listed, hashed, served by the simulation service and
// extended with new families without touching simulator code.
// Equivalence with the original closure-defined workloads is pinned
// by spec_equivalence_test.go (identical cycle counts in both
// models).

// Table1Scenarios returns the accuracy-experiment workloads: the
// paper's Table 1 varies "the traffic patterns of the masters" on a
// three-master target system and compares TL against RTL cycle counts
// per scenario. The twelve scenarios cover four pattern families
// (sequential/DMA, random/CPU-like, bursty, real-time stream) in
// three master-mix variants each (read-dominant, write-heavy,
// RT-mixed). Seeds are fixed: every scenario is bit-reproducible.
func Table1Scenarios() []Workload {
	return compileAll(spec.Table1Specs())
}

// SpeedWorkloads returns the workload pair of the speed experiment: a
// contended three-master mix (the paper's 0.47 vs 166 Kcycles/s
// comparison) and a single-master sequential workload (the 456
// Kcycles/s "pure bus performance" configuration).
func SpeedWorkloads(txns int) (multi Workload, single Workload) {
	m, s := spec.SpeedSpecs(txns)
	return MustFromSpec(m), MustFromSpec(s)
}

// AblationWriteBufferDepths returns the write-buffer ablation sweep
// (experiment A1): the same write-heavy workload with varying depth.
func AblationWriteBufferDepths() []int { return []int{0, 2, 4, 8, 16} }

// AblationWorkload returns a write-heavy contended workload used by
// the A1/A2/A4 ablations.
func AblationWorkload(depth int, txns int) Workload {
	return MustFromSpec(spec.AblationSpec(depth, txns))
}

// PagePolicyWorkload returns the A6 ablation workload: a single master
// whose accesses thrash rows within one bank with think time between
// transactions — the pattern where the closed-page auto-precharge can
// hide in idle cycles while the open-page policy pays a demand
// conflict precharge every access.
func PagePolicyWorkload(closed bool, txns int) Workload {
	return MustFromSpec(spec.PagePolicySpec(closed, txns))
}

// BusWidthWorkload returns the A7 ablation workload: a streaming DMA
// pair on a platform with the given bus width in bytes (4 = 32-bit
// AHB, 8 = 64-bit). Wider beats move more bytes per data cycle, the
// §3.7 bus-width parameter made measurable.
func BusWidthWorkload(busBytes int, txns int) Workload {
	return MustFromSpec(spec.BusWidthSpec(busBytes, txns))
}

// SaturatingWorkload returns a workload with no pacing master: three
// back-to-back sequential masters (one write-heavy). Total cycle count
// then reflects bus efficiency directly, which is what the pipelining
// (A2) and write-buffer (A1) ablations need to show.
func SaturatingWorkload(depth int, txns int) Workload {
	return MustFromSpec(spec.SaturatingSpec(depth, txns))
}

// InterleavingWorkload returns the A3 bank-interleaving workload: two
// masters pinned to different banks, each striding a full row per
// transaction so every demand access would be a row miss or conflict.
// With BI on, the controller learns the next transaction while the
// current burst streams and prepares the bank early, which is exactly
// the paper's bank-interleaving scheme.
func InterleavingWorkload(biOn bool, txns int) Workload {
	return MustFromSpec(spec.InterleavingSpec(biOn, txns))
}

// compileAll compiles a spec list, panicking on the first invalid
// entry (the built-in scenario library is static configuration).
func compileAll(specs []spec.Spec) []Workload {
	ws := make([]Workload, len(specs))
	for i, s := range specs {
		ws[i] = MustFromSpec(s)
	}
	return ws
}

package core

import (
	"repro/internal/config"
	"repro/internal/traffic"
)

// Table1Scenarios returns the accuracy-experiment workloads: the
// paper's Table 1 varies "the traffic patterns of the masters" on a
// three-master target system and compares TL against RTL cycle counts
// per scenario. The twelve scenarios here cover four pattern families
// (sequential/DMA, random/CPU-like, bursty, real-time stream) in three
// master-mix variants each (read-dominant, write-heavy, RT-mixed),
// which spans the same space. Seeds are fixed: every scenario is
// bit-reproducible.
func Table1Scenarios() []Workload {
	var ws []Workload

	base := func(rtMaster bool) config.Params {
		p := config.Default(3)
		p.Masters[0].Name = "dma0"
		p.Masters[1].Name = "cpu"
		p.Masters[2].Name = "disp"
		if rtMaster {
			p.Masters[2].RealTime = true
			p.Masters[2].QoSObjective = 200
		}
		return p
	}

	// Family 1: sequential DMA traffic.
	ws = append(ws,
		Workload{
			Name:   "seq/read-dominant",
			Params: base(false),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Sequential{Base: 0x00000, Beats: 8, Count: 150, Gap: 2},
					&traffic.Sequential{Base: 0x80000, Beats: 8, Count: 150, Gap: 4},
					&traffic.Sequential{Base: 0x100000, Beats: 4, Count: 150, Gap: 8},
				}
			},
		},
		Workload{
			Name:   "seq/write-heavy",
			Params: base(false),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Sequential{Base: 0x00000, Beats: 8, Count: 150, WriteEvery: 1},
					&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 150, WriteEvery: 2},
					&traffic.Sequential{Base: 0x100000, Beats: 8, Count: 150, Gap: 4},
				}
			},
		},
		Workload{
			Name:   "seq/rt-mixed",
			Params: base(true),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Sequential{Base: 0x00000, Beats: 16, Count: 150},
					&traffic.Sequential{Base: 0x80000, Beats: 8, Count: 150, WriteEvery: 3},
					&traffic.Stream{Base: 0x100000, Beats: 4, Period: 60, Count: 150},
				}
			},
		},
	)

	// Family 2: random CPU-like traffic.
	ws = append(ws,
		Workload{
			Name:   "rand/read-dominant",
			Params: base(false),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Random{Seed: 101, Base: 0x00000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.1, MeanGap: 6, Count: 150},
					&traffic.Random{Seed: 202, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.1, MeanGap: 10, Count: 150},
					&traffic.Random{Seed: 303, Base: 0x100000, WindowBytes: 1 << 16, MaxBeats: 4, WriteFrac: 0.0, MeanGap: 14, Count: 150},
				}
			},
		},
		Workload{
			Name:   "rand/write-heavy",
			Params: base(false),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Random{Seed: 404, Base: 0x00000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.7, MeanGap: 4, Count: 150},
					&traffic.Random{Seed: 505, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 4, WriteFrac: 0.6, MeanGap: 6, Count: 150},
					&traffic.Random{Seed: 606, Base: 0x100000, WindowBytes: 1 << 16, MaxBeats: 8, WriteFrac: 0.5, MeanGap: 10, Count: 150},
				}
			},
		},
		Workload{
			Name:   "rand/rt-mixed",
			Params: base(true),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Random{Seed: 707, Base: 0x00000, WindowBytes: 1 << 18, MaxBeats: 16, WriteFrac: 0.3, MeanGap: 5, Count: 150},
					&traffic.Random{Seed: 808, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.3, MeanGap: 8, Count: 150},
					&traffic.Stream{Base: 0x100000, Beats: 4, Period: 70, Count: 150},
				}
			},
		},
	)

	// Family 3: bursty on/off traffic.
	ws = append(ws,
		Workload{
			Name:   "burst/read-dominant",
			Params: base(false),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Bursty{Base: 0x00000, Beats: 8, BurstTxns: 8, IdleGap: 200, Count: 150},
					&traffic.Bursty{Base: 0x80000, Beats: 8, BurstTxns: 6, IdleGap: 150, Count: 150},
					&traffic.Sequential{Base: 0x100000, Beats: 4, Count: 150, Gap: 10},
				}
			},
		},
		Workload{
			Name:   "burst/write-heavy",
			Params: base(false),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Bursty{Base: 0x00000, Beats: 8, BurstTxns: 8, IdleGap: 150, Count: 150, Write: true},
					&traffic.Bursty{Base: 0x80000, Beats: 4, BurstTxns: 10, IdleGap: 100, Count: 150, Write: true},
					&traffic.Random{Seed: 909, Base: 0x100000, WindowBytes: 1 << 16, MaxBeats: 4, WriteFrac: 0.2, MeanGap: 8, Count: 150},
				}
			},
		},
		Workload{
			Name:   "burst/rt-mixed",
			Params: base(true),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Bursty{Base: 0x00000, Beats: 16, BurstTxns: 4, IdleGap: 250, Count: 150},
					&traffic.Bursty{Base: 0x80000, Beats: 8, BurstTxns: 6, IdleGap: 150, Count: 150, Write: true},
					&traffic.Stream{Base: 0x100000, Beats: 8, Period: 90, Count: 150},
				}
			},
		},
	)

	// Family 4: real-time stream dominated traffic.
	ws = append(ws,
		Workload{
			Name:   "stream/read-dominant",
			Params: base(true),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Stream{Base: 0x00000, Beats: 8, Period: 50, Count: 150},
					&traffic.Sequential{Base: 0x80000, Beats: 8, Count: 150, Gap: 6},
					&traffic.Stream{Base: 0x100000, Beats: 4, Period: 80, Count: 150},
				}
			},
		},
		Workload{
			Name:   "stream/write-heavy",
			Params: base(true),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Stream{Base: 0x00000, Beats: 8, Period: 60, Count: 150, Write: true},
					&traffic.Sequential{Base: 0x80000, Beats: 8, Count: 150, WriteEvery: 1},
					&traffic.Stream{Base: 0x100000, Beats: 4, Period: 70, Count: 150},
				}
			},
		},
		Workload{
			Name:   "stream/rt-mixed",
			Params: base(true),
			Gens: func() []traffic.Generator {
				return []traffic.Generator{
					&traffic.Stream{Base: 0x00000, Beats: 16, Period: 120, Count: 150},
					&traffic.Random{Seed: 111, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.4, MeanGap: 6, Count: 150},
					&traffic.Stream{Base: 0x100000, Beats: 4, Period: 60, Count: 150},
				}
			},
		},
	)

	return ws
}

// SpeedWorkloads returns the workload pair of the speed experiment: a
// contended three-master mix (the paper's 0.47 vs 166 Kcycles/s
// comparison) and a single-master sequential workload (the 456
// Kcycles/s "pure bus performance" configuration).
func SpeedWorkloads(txns int) (multi Workload, single Workload) {
	if txns <= 0 {
		txns = 2000
	}
	// Duty cycles follow the paper's platform class (DVD-player SoC):
	// periodic media IPs and a CPU with think time, so the bus idles
	// between transactions — exactly the cycles a method-based TLM
	// skips and a pin-accurate simulation must still evaluate.
	multi = Workload{
		Name:   "speed/multi",
		Params: config.Default(3),
		Gens: func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0x00000, Beats: 8, Count: txns, WriteEvery: 3, Gap: 90},
				&traffic.Random{Seed: 42, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.3, MeanGap: 110, Count: txns},
				&traffic.Stream{Base: 0x100000, Beats: 4, Period: 120, Count: txns},
			}
		},
	}
	single = Workload{
		Name:   "speed/single",
		Params: config.Default(1),
		Gens: func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0, Beats: 8, Count: 3 * txns, Gap: 100},
			}
		},
	}
	return multi, single
}

// AblationWriteBufferDepths returns the write-buffer ablation sweep
// (experiment A1): the same write-heavy workload with varying depth.
func AblationWriteBufferDepths() []int { return []int{0, 2, 4, 8, 16} }

// AblationWorkload returns a write-heavy contended workload used by
// the A1/A2/A4 ablations.
func AblationWorkload(depth int, txns int) Workload {
	if txns <= 0 {
		txns = 300
	}
	p := config.Default(3)
	p.WriteBufferDepth = depth
	p.Masters[2].RealTime = true
	p.Masters[2].QoSObjective = 150
	return Workload{
		Name:   "ablation/write-heavy",
		Params: p,
		Gens: func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0x00000, Beats: 8, Count: txns, WriteEvery: 1},
				&traffic.Random{Seed: 77, Base: 0x80000, WindowBytes: 1 << 18, MaxBeats: 8, WriteFrac: 0.6, MeanGap: 3, Count: txns},
				&traffic.Stream{Base: 0x100000, Beats: 4, Period: 60, Count: txns},
			}
		},
	}
}

// PagePolicyWorkload returns the A6 ablation workload: a single master
// whose accesses thrash rows within one bank with think time between
// transactions — the pattern where the closed-page auto-precharge can
// hide in idle cycles while the open-page policy pays a demand
// conflict precharge every access.
func PagePolicyWorkload(closed bool, txns int) Workload {
	if txns <= 0 {
		txns = 300
	}
	p := config.Default(1)
	p.BIEnabled = false // isolate the page policy from the hint path
	p.ClosedPage = closed
	rowStride := p.AddrMap.RowBytes() * uint32(p.AddrMap.Banks())
	return Workload{
		Name:   "ablation/pagepolicy",
		Params: p,
		Gens: func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0, Beats: 4, Count: txns, Gap: 12, StrideBytes: rowStride},
			}
		},
	}
}

// BusWidthWorkload returns the A7 ablation workload: a streaming DMA
// pair on a platform with the given bus width in bytes (4 = 32-bit
// AHB, 8 = 64-bit). Wider beats move more bytes per data cycle, the
// §3.7 bus-width parameter made measurable.
func BusWidthWorkload(busBytes int, txns int) Workload {
	if txns <= 0 {
		txns = 300
	}
	p := config.Default(2)
	p.BusBytes = busBytes
	switch busBytes {
	case 8:
		p.AddrMap.BeatBytesLog2 = 3
	case 4:
		p.AddrMap.BeatBytesLog2 = 2
	}
	return Workload{
		Name:   "ablation/buswidth",
		Params: p,
		Gens: func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0, Beats: 8, Count: txns, BeatBytes: busBytes},
				&traffic.Sequential{Base: 0x80000, Beats: 8, Count: txns, BeatBytes: busBytes},
			}
		},
	}
}

// SaturatingWorkload returns a workload with no pacing master: three
// back-to-back sequential masters (one write-heavy). Total cycle count
// then reflects bus efficiency directly, which is what the pipelining
// (A2) and write-buffer (A1) ablations need to show.
func SaturatingWorkload(depth int, txns int) Workload {
	if txns <= 0 {
		txns = 300
	}
	p := config.Default(3)
	p.WriteBufferDepth = depth
	return Workload{
		Name:   "ablation/saturating",
		Params: p,
		Gens: func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0x00000, Beats: 4, Count: txns},
				&traffic.Sequential{Base: 0x80000, Beats: 4, Count: txns, WriteEvery: 1},
				&traffic.Sequential{Base: 0x100000, Beats: 8, Count: txns, WriteEvery: 2},
			}
		},
	}
}

// InterleavingWorkload returns the A3 bank-interleaving workload: two
// masters pinned to different banks, each striding a full row per
// transaction so every demand access would be a row miss or conflict.
// With BI on, the controller learns the next transaction while the
// current burst streams and prepares the bank early, which is exactly
// the paper's bank-interleaving scheme.
func InterleavingWorkload(biOn bool, txns int) Workload {
	if txns <= 0 {
		txns = 400
	}
	p := config.Default(2)
	p.BIEnabled = biOn
	rowBytes := p.AddrMap.RowBytes()
	bankStride := rowBytes * uint32(p.AddrMap.Banks()) // next row, same bank
	return Workload{
		Name:   "ablation/interleaving",
		Params: p,
		Gens: func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0, Beats: 8, Count: txns, StrideBytes: bankStride},
				&traffic.Sequential{Base: rowBytes, Beats: 8, Count: txns, StrideBytes: bankStride},
			}
		},
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func TestSpeedWorkloadsDeterministic(t *testing.T) {
	multi, single := SpeedWorkloads(100)
	a := Run(multi, TLM, Options{})
	b := Run(multi, TLM, Options{})
	if a.Cycles != b.Cycles {
		t.Fatalf("speed workload nondeterministic: %d vs %d", a.Cycles, b.Cycles)
	}
	s := Run(single, TLM, Options{})
	if !s.Completed || s.Stats.TotalTxns() == 0 {
		t.Fatal("single workload broken")
	}
	if len(single.Gens()) != 1 || len(multi.Gens()) != 3 {
		t.Fatal("workload shapes wrong")
	}
}

func TestSaturatingWorkloadValid(t *testing.T) {
	for _, d := range AblationWriteBufferDepths() {
		w := SaturatingWorkload(d, 50)
		if err := w.Params.Validate(); err != nil {
			t.Fatalf("depth %d: %v", d, err)
		}
		res := Run(w, TLM, Options{})
		if !res.Completed {
			t.Fatalf("depth %d incomplete", d)
		}
		// Saturating means high utilization.
		if res.Stats.Utilization() < 0.3 {
			t.Fatalf("depth %d: utilization %.2f too low for a saturating workload", d, res.Stats.Utilization())
		}
	}
}

func TestAblationWorkloadHasRTMaster(t *testing.T) {
	w := AblationWorkload(8, 50)
	if !w.Params.Masters[2].RealTime || w.Params.Masters[2].QoSObjective == 0 {
		t.Fatal("ablation workload should configure an RT master")
	}
	res := Run(w, TLM, Options{})
	if !res.Completed {
		t.Fatal("incomplete")
	}
}

func TestInterleavingAblationShape(t *testing.T) {
	on := Run(InterleavingWorkload(true, 150), TLM, Options{})
	off := Run(InterleavingWorkload(false, 150), TLM, Options{})
	if !on.Completed || !off.Completed {
		t.Fatal("incomplete")
	}
	if on.Cycles >= off.Cycles {
		t.Fatalf("BI should reduce cycles on the row-thrashing workload: on=%d off=%d", on.Cycles, off.Cycles)
	}
	if on.Stats.DDR.HintPrecharges == 0 {
		t.Fatal("BI run produced no hint precharges")
	}
}

func TestRunWithTracer(t *testing.T) {
	tr := trace.New(10)
	res := Run(smallWorkload(1), TLM, Options{Tracer: tr})
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if len(tr.Records()) == 0 {
		t.Fatal("tracer empty")
	}
}

func TestRunWaveformRTL(t *testing.T) {
	var vcd strings.Builder
	res := Run(smallWorkload(1), RTL, Options{Waveform: &vcd})
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if !strings.Contains(vcd.String(), "$enddefinitions") {
		t.Fatal("waveform not produced")
	}
}

func TestPlainAHBWorkloadsRunOnBothModels(t *testing.T) {
	w := Workload{
		Name:   "plain",
		Params: config.PlainAHB(2),
		Gens: func() []traffic.Generator {
			return []traffic.Generator{
				&traffic.Sequential{Base: 0, Beats: 4, Count: 20},
				&traffic.Sequential{Base: 0x80000, Beats: 4, Count: 20},
			}
		},
	}
	row := Compare(w)
	if !row.Completed {
		t.Fatal("plain-AHB comparison incomplete")
	}
	if row.ErrPct > 5 {
		t.Fatalf("plain-AHB models diverge %.2f%%", row.ErrPct)
	}
}

func TestTable1ScenariosCoverFamilies(t *testing.T) {
	rows := Table1Scenarios()
	if len(rows) != 12 {
		t.Fatalf("%d scenarios, want 12", len(rows))
	}
	families := map[string]int{}
	for _, w := range rows {
		fam := strings.SplitN(w.Name, "/", 2)[0]
		families[fam]++
	}
	for _, fam := range []string{"seq", "rand", "burst", "stream"} {
		if families[fam] != 3 {
			t.Fatalf("family %s has %d scenarios, want 3", fam, families[fam])
		}
	}
}

func TestPagePolicyAblationShape(t *testing.T) {
	open := Run(PagePolicyWorkload(false, 150), TLM, Options{})
	closed := Run(PagePolicyWorkload(true, 150), TLM, Options{})
	if !open.Completed || !closed.Completed {
		t.Fatal("incomplete")
	}
	if closed.Cycles >= open.Cycles {
		t.Fatalf("closed page should win on gap-spaced row thrash: closed=%d open=%d",
			closed.Cycles, open.Cycles)
	}
	// Cross-model agreement holds under the alternate policy too.
	row := Compare(PagePolicyWorkload(true, 100))
	if !row.Completed || row.ErrPct > 5 {
		t.Fatalf("closed-page cross-model error %.2f%%", row.ErrPct)
	}
}

func TestBusWidthAblation(t *testing.T) {
	narrow := Run(BusWidthWorkload(4, 150), TLM, Options{})
	wide := Run(BusWidthWorkload(8, 150), TLM, Options{})
	if !narrow.Completed || !wide.Completed {
		t.Fatal("incomplete")
	}
	// Same beat count, double the bytes: the 64-bit bus must move at
	// least ~1.9x the data per kilocycle.
	ratio := wide.Stats.ThroughputBytesPerKCycle() / narrow.Stats.ThroughputBytesPerKCycle()
	if ratio < 1.8 {
		t.Fatalf("64-bit bus throughput ratio %.2f, want ~2x", ratio)
	}
	// Cross-model agreement holds at the alternate width.
	row := Compare(BusWidthWorkload(8, 100))
	if !row.Completed || row.ErrPct > 5 {
		t.Fatalf("64-bit cross-model error %.2f%% (rtl=%d tlm=%d)", row.ErrPct, row.RTLCycles, row.TLMCycles)
	}
}

// Package core is the public facade of the AHB+ reproduction: it wires
// traffic masters, the AHB+ bus (transaction-level or pin-accurate),
// the DDR controller and the BI side-band into a runnable system, and
// provides the experiment harnesses that regenerate the paper's
// results — the Table 1 accuracy comparison and the TLM-vs-RTL
// simulation-speed measurement.
package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/farm"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/tlm"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Workload pairs a platform configuration with a reproducible master
// workload. Gens must return fresh generators on every call so the
// identical sequence can be replayed through both models.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Params is the platform configuration.
	Params config.Params
	// Gens builds the master traffic generators.
	Gens func() []traffic.Generator
	// MaxCycles caps each run (0 = default cap).
	MaxCycles sim.Cycle
}

// FromSpec validates and compiles a declarative workload spec into a
// runnable Workload. The returned workload's Gens builds fresh
// generators from the spec on every call, so both models replay the
// identical sequence — a spec-compiled workload is interchangeable
// with a closure-defined one.
func FromSpec(s spec.Spec) (Workload, error) {
	if err := s.Validate(); err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:   s.Name,
		Params: s.Params,
		Gens: func() []traffic.Generator {
			gens, err := s.Gens()
			if err != nil {
				// Unreachable: Validate vetted every descriptor above.
				panic(err)
			}
			return gens
		},
		MaxCycles: sim.Cycle(s.MaxCycles),
	}, nil
}

// MustFromSpec is FromSpec for static (trusted) specs; it panics on a
// spec that fails validation.
func MustFromSpec(s spec.Spec) Workload {
	w, err := FromSpec(s)
	if err != nil {
		panic(err)
	}
	return w
}

// Model selects the abstraction level.
type Model int

const (
	// TLM is the transaction-level model (the paper's contribution).
	TLM Model = iota
	// RTL is the pin-accurate signal-level model (the baseline).
	RTL
)

// String implements fmt.Stringer.
func (m Model) String() string {
	if m == TLM {
		return "TL"
	}
	return "RTL"
}

// RunResult is the model-independent outcome of one run.
type RunResult struct {
	// Model is the abstraction level that produced the result.
	Model Model
	// Cycles is the simulated cycle count.
	Cycles sim.Cycle
	// Completed reports whether the workload drained.
	Completed bool
	// Stats is the bus profile.
	Stats *stats.Bus
	// Wall is the host wall-clock time of the run.
	Wall time.Duration
	// Violations is the number of protocol property violations.
	Violations uint64
	// Interrupted reports that Options.Interrupt cut the run short;
	// Cycles/Stats describe the partial run and Completed is false.
	Interrupted bool
}

// KCyclesPerSec returns the simulation speed in kilocycles per second
// of host time, the metric the paper reports (0.47 Kcycles/s RTL vs
// 166 Kcycles/s TL).
func (r RunResult) KCyclesPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Cycles) / 1000 / r.Wall.Seconds()
}

// Options adjusts a run.
type Options struct {
	// Tracer records per-transaction timelines (optional).
	Tracer *trace.Recorder
	// Checker collects property violations; nil installs a collecting
	// checker automatically.
	Checker *check.Checker
	// Waveform receives a VCD dump of the AHB signals (pin-accurate
	// model only).
	Waveform io.Writer
	// Interrupt, when non-nil, is polled between simulation slices
	// (every interruptStride cycles) and aborts the run when it
	// returns true — the hook a serving deadline hangs off. It must be
	// cheap and safe to call from the running goroutine. nil runs the
	// workload in one uninterruptible shot, byte-identical to builds
	// before the hook existed; a hook that never fires produces the
	// identical result too, because slicing a discrete-event
	// simulation at a cycle boundary does not perturb it.
	Interrupt func() bool
}

// interruptStride is how many simulated cycles run between Interrupt
// polls: small enough that a deadline cuts a hung workload within a
// fraction of a second of host time, large enough that the poll is
// free next to the simulation itself.
const interruptStride sim.Cycle = 1 << 18

// defaultMaxCycles mirrors the buses' own generous default cap for
// MaxCycles == 0 (tlm.Bus.Run / rtl.Bus.Run use the same value).
const defaultMaxCycles sim.Cycle = 50_000_000

// Run executes the workload on the chosen model.
func Run(w Workload, m Model, opt Options) RunResult {
	chk := opt.Checker
	if chk == nil {
		chk = &check.Checker{}
	}
	start := time.Now()
	var out RunResult
	switch m {
	case TLM:
		b := tlm.New(tlm.Config{Params: w.Params, Gens: w.Gens(), Checker: chk, Tracer: opt.Tracer})
		res, interrupted := runTLM(b, w.MaxCycles, opt.Interrupt)
		out = RunResult{Model: TLM, Cycles: res.Cycles, Completed: res.Completed, Stats: res.Stats, Interrupted: interrupted}
		// The backing store is not part of the result; recycle its pages
		// so back-to-back runs stop paying the page-allocation GC tax.
		b.Mem().Release()
	case RTL:
		b := rtl.New(rtl.Config{Params: w.Params, Gens: w.Gens(), Checker: chk, Tracer: opt.Tracer, Waveform: opt.Waveform})
		res, interrupted := runRTL(b, w.MaxCycles, opt.Interrupt)
		out = RunResult{Model: RTL, Cycles: res.Cycles, Completed: res.Completed, Stats: res.Stats, Interrupted: interrupted}
		b.Mem().Release()
	default:
		panic(fmt.Sprintf("core: unknown model %d", m))
	}
	out.Wall = time.Since(start)
	out.Violations = chk.Total()
	return out
}

// runTLM runs the transaction-level bus, in one shot when there is no
// interrupt hook, otherwise in interruptStride slices. tlm.Bus.Run's
// limit is an ABSOLUTE cycle, and its scheduler resumes exactly where
// the previous slice stopped, so the sliced run visits the identical
// event sequence as the single-shot one — the slice boundary only
// decides when the hook is polled.
func runTLM(b *tlm.Bus, maxCycles sim.Cycle, interrupt func() bool) (tlm.Result, bool) {
	if interrupt == nil {
		return b.Run(maxCycles), false
	}
	max := maxCycles
	if max == 0 {
		max = defaultMaxCycles
	}
	var res tlm.Result
	for limit := interruptStride; ; limit += interruptStride {
		if limit > max {
			limit = max
		}
		res = b.Run(limit)
		if res.Completed || limit >= max {
			return res, false
		}
		if interrupt() {
			return res, true
		}
	}
}

// runRTL is runTLM's pin-accurate twin. rtl.Bus.Run's budget is
// RELATIVE (the kernel advances up to that many cycles from now), so
// each slice passes the remaining absolute budget down.
func runRTL(b *rtl.Bus, maxCycles sim.Cycle, interrupt func() bool) (rtl.Result, bool) {
	if interrupt == nil {
		return b.Run(maxCycles), false
	}
	max := maxCycles
	if max == 0 {
		max = defaultMaxCycles
	}
	var res rtl.Result
	for {
		step := interruptStride
		if remaining := max - b.Now(); remaining < step {
			step = remaining
		}
		res = b.Run(step)
		if res.Completed || b.Now() >= max {
			return res, false
		}
		if interrupt() {
			return res, true
		}
	}
}

// AccuracyRow is one line of the Table 1 reproduction: the same
// workload through both models and the cycle-count difference.
type AccuracyRow struct {
	// Name is the scenario label.
	Name string
	// RTLCycles and TLMCycles are the simulated cycle counts.
	RTLCycles, TLMCycles sim.Cycle
	// ErrPct is |RTL-TLM| / RTL in percent.
	ErrPct float64
	// Completed reports whether both runs drained their workloads.
	Completed bool
}

// Compare runs the workload through both models — concurrently, on the
// run farm — and reports the accuracy row. The models share no mutable
// state (each Run builds its own platform and generators), so the
// parallel rows are bit-identical to sequential ones.
func Compare(w Workload) AccuracyRow {
	row, _ := CompareInterruptible(w, nil)
	return row
}

// CompareInterruptible is Compare with an interrupt hook applied to
// both model runs (each gets its own Options so nothing else is
// shared between the concurrent runs). The hook must be safe to call
// from two goroutines — a context check is. interrupted reports that
// either run was cut short; the row then describes partial runs and
// must not be treated as an accuracy result.
func CompareInterruptible(w Workload, interrupt func() bool) (row AccuracyRow, interrupted bool) {
	var r, t RunResult
	farm.Pair(
		func() { r = Run(w, RTL, Options{Interrupt: interrupt}) },
		func() { t = Run(w, TLM, Options{Interrupt: interrupt}) },
	)
	d := float64(r.Cycles) - float64(t.Cycles)
	if d < 0 {
		d = -d
	}
	row = AccuracyRow{
		Name:      w.Name,
		RTLCycles: r.Cycles,
		TLMCycles: t.Cycles,
		Completed: r.Completed && t.Completed,
	}
	if r.Cycles > 0 {
		row.ErrPct = 100 * d / float64(r.Cycles)
	}
	return row, r.Interrupted || t.Interrupted
}

// CompareAll runs Compare over the workloads and returns the rows plus
// the average error percentage (the paper's summary statistic). The
// scenarios execute on the run farm with the default worker count; use
// CompareAllN to bound or widen the pool.
func CompareAll(ws []Workload) ([]AccuracyRow, float64) {
	return CompareAllN(ws, 0)
}

// CompareAllN is CompareAll with an explicit farm worker bound
// (workers <= 0 selects one worker per CPU). Every scenario runs both
// models, so up to 2*workers simulations may be in flight.
func CompareAllN(ws []Workload, workers int) ([]AccuracyRow, float64) {
	rows := farm.Map(workers, len(ws), func(i int) AccuracyRow {
		return Compare(ws[i])
	})
	var sum float64
	for _, r := range rows {
		sum += r.ErrPct
	}
	if len(rows) == 0 {
		return rows, 0
	}
	return rows, sum / float64(len(rows))
}

// WriteAccuracyTable renders rows in the layout of the paper's Table 1
// (per-scenario RTL cycles, TL cycles, difference) plus the average.
func WriteAccuracyTable(w io.Writer, rows []AccuracyRow, avg float64) {
	fmt.Fprintf(w, "%-28s %12s %12s %8s\n", "scenario", "RTL cycles", "TL cycles", "diff %")
	for _, r := range rows {
		note := ""
		if !r.Completed {
			note = "  (incomplete)"
		}
		fmt.Fprintf(w, "%-28s %12d %12d %8.2f%s\n", r.Name, uint64(r.RTLCycles), uint64(r.TLMCycles), r.ErrPct, note)
	}
	fmt.Fprintf(w, "%-28s %12s %12s %8.2f\n", "average", "", "", avg)
}

// SpeedComparison is the paper's §4 speed experiment: the same
// workload timed on both models, plus the single-master TLM speed.
type SpeedComparison struct {
	// RTL and TLM are the multi-master results.
	RTL, TLM RunResult
	// SingleTLM is the one-master TLM result (the paper's 456
	// Kcycles/s configuration).
	SingleTLM RunResult
	// Speedup is TLM Kcycles/s over RTL Kcycles/s.
	Speedup float64
}

// MeasureSpeed times the workload on both models and the single-master
// workload on the TLM. The runs are deliberately sequential — this is
// the wall-clock experiment, and co-scheduling the models would
// contaminate the Kcycles/sec readings.
func MeasureSpeed(multi Workload, single Workload) SpeedComparison {
	sc := SpeedComparison{
		RTL:       Run(multi, RTL, Options{}),
		TLM:       Run(multi, TLM, Options{}),
		SingleTLM: Run(single, TLM, Options{}),
	}
	if r := sc.RTL.KCyclesPerSec(); r > 0 {
		sc.Speedup = sc.TLM.KCyclesPerSec() / r
	}
	return sc
}

// WriteSpeedReport renders the speed comparison.
func WriteSpeedReport(w io.Writer, sc SpeedComparison) {
	fmt.Fprintf(w, "%-22s %12s %12s %14s\n", "model", "cycles", "wall", "Kcycles/sec")
	for _, r := range []struct {
		name string
		res  RunResult
	}{
		{"RTL (pin-accurate)", sc.RTL},
		{"TL (multi-master)", sc.TLM},
		{"TL (single master)", sc.SingleTLM},
	} {
		fmt.Fprintf(w, "%-22s %12d %12s %14.1f\n",
			r.name, uint64(r.res.Cycles), r.res.Wall.Round(time.Microsecond), r.res.KCyclesPerSec())
	}
	fmt.Fprintf(w, "TL speedup over RTL: %.0fx\n", sc.Speedup)
}

package core

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/traffic"
)

func smallWorkload(masters int) Workload {
	p := config.Default(masters)
	p.DDR = p.DDR.NoRefresh()
	return Workload{
		Name:   "small",
		Params: p,
		Gens: func() []traffic.Generator {
			gens := []traffic.Generator{
				&traffic.Sequential{Base: 0, Beats: 4, Count: 20},
			}
			for i := 1; i < masters; i++ {
				gens = append(gens, &traffic.Random{
					Seed: int64(i), Base: uint32(i) << 19, WindowBytes: 1 << 16,
					MaxBeats: 8, WriteFrac: 0.4, Count: 20,
				})
			}
			return gens
		},
	}
}

func TestRunBothModels(t *testing.T) {
	w := smallWorkload(2)
	r := Run(w, RTL, Options{})
	if !r.Completed || r.Cycles == 0 {
		t.Fatalf("RTL result %+v", r)
	}
	m := Run(w, TLM, Options{})
	if !m.Completed || m.Cycles == 0 {
		t.Fatalf("TLM result %+v", m)
	}
	if r.Violations != 0 || m.Violations != 0 {
		t.Fatalf("violations rtl=%d tlm=%d", r.Violations, m.Violations)
	}
	if r.Model.String() != "RTL" || m.Model.String() != "TL" {
		t.Fatal("model names")
	}
}

func TestCompareProducesSmallError(t *testing.T) {
	row := Compare(smallWorkload(2))
	if !row.Completed {
		t.Fatal("comparison incomplete")
	}
	if row.ErrPct > 5 {
		t.Fatalf("error %.2f%% too large (rtl=%d tlm=%d)", row.ErrPct, row.RTLCycles, row.TLMCycles)
	}
}

// TestTable1AccuracyBelow3Percent is the reproduction of the paper's
// headline accuracy claim: "the average accuracy difference is below
// 3%". The full Table 1 scenario set runs through both models.
func TestTable1AccuracyBelow3Percent(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 sweep in -short mode")
	}
	rows, avg := CompareAll(Table1Scenarios())
	for _, r := range rows {
		if !r.Completed {
			t.Errorf("%s: incomplete", r.Name)
		}
		t.Logf("%-28s RTL=%8d TL=%8d diff=%5.2f%%", r.Name, r.RTLCycles, r.TLMCycles, r.ErrPct)
		if r.ErrPct > 10 {
			t.Errorf("%s: per-scenario error %.2f%% exceeds 10%%", r.Name, r.ErrPct)
		}
	}
	t.Logf("average error: %.2f%%", avg)
	if avg >= 3 {
		t.Errorf("average accuracy difference %.2f%%, paper reports < 3%%", avg)
	}
}

func TestSpeedTLMFasterThanRTL(t *testing.T) {
	multi, single := SpeedWorkloads(300)
	sc := MeasureSpeed(multi, single)
	if !sc.RTL.Completed || !sc.TLM.Completed || !sc.SingleTLM.Completed {
		t.Fatal("speed runs incomplete")
	}
	if sc.Speedup <= 1 {
		t.Fatalf("TLM should be faster than RTL, speedup=%.2f", sc.Speedup)
	}
	var b strings.Builder
	WriteSpeedReport(&b, sc)
	if !strings.Contains(b.String(), "speedup") {
		t.Fatalf("report: %s", b.String())
	}
}

func TestWriteAccuracyTable(t *testing.T) {
	rows := []AccuracyRow{
		{Name: "x", RTLCycles: 100, TLMCycles: 98, ErrPct: 2, Completed: true},
		{Name: "y", RTLCycles: 100, TLMCycles: 100, Completed: false},
	}
	var b strings.Builder
	WriteAccuracyTable(&b, rows, 1.0)
	out := b.String()
	for _, want := range []string{"RTL cycles", "x", "average", "incomplete"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestScenarioDefinitionsAreReplayable(t *testing.T) {
	for _, w := range Table1Scenarios() {
		if err := w.Params.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		a, b := w.Gens(), w.Gens()
		if len(a) != len(b) || len(a) != len(w.Params.Masters) {
			t.Errorf("%s: generator count mismatch", w.Name)
		}
		// Fresh factories must not share state.
		ra, _ := a[0].Next(0)
		rb, _ := b[0].Next(0)
		if ra != rb {
			t.Errorf("%s: generator factories share state", w.Name)
		}
	}
}

func TestInterleavingWorkloadTargetsDistinctBanks(t *testing.T) {
	w := InterleavingWorkload(true, 10)
	gens := w.Gens()
	r0, _ := gens[0].Next(0)
	r1, _ := gens[1].Next(0)
	b0, _, _ := w.Params.AddrMap.Decode(r0.Addr)
	b1, _, _ := w.Params.AddrMap.Decode(r1.Addr)
	if b0 == b1 {
		t.Fatalf("interleaving workload masters share bank %d", b0)
	}
}

func TestKCyclesPerSecZeroWall(t *testing.T) {
	if (RunResult{}).KCyclesPerSec() != 0 {
		t.Fatal("zero wall should give zero speed")
	}
}

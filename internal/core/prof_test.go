package core

import "testing"

func BenchmarkTLMProfile(b *testing.B) {
	multi, _ := SpeedWorkloads(2000)
	for i := 0; i < b.N; i++ {
		Run(multi, TLM, Options{})
	}
}

package qos

import (
	"testing"

	"repro/internal/sim"
)

func TestRegValidate(t *testing.T) {
	if err := (Reg{Class: RT, Objective: 100}).Validate(); err != nil {
		t.Fatalf("valid RT reg rejected: %v", err)
	}
	if err := (Reg{Class: NRT}).Validate(); err != nil {
		t.Fatalf("valid NRT reg rejected: %v", err)
	}
	if (Reg{Class: RT}).Validate() == nil {
		t.Fatal("RT without objective must be rejected")
	}
	if (Reg{Quota: 1.5}).Validate() == nil {
		t.Fatal("quota > 1 must be rejected")
	}
	if (Reg{Quota: -0.1}).Validate() == nil {
		t.Fatal("negative quota must be rejected")
	}
}

func TestSlack(t *testing.T) {
	r := Reg{Class: RT, Objective: 100}
	if got := r.Slack(50, 0); got != 50 {
		t.Fatalf("Slack = %v, want 50", got)
	}
	if got := r.Slack(150, 0); got != 0 {
		t.Fatalf("overdue Slack = %v, want 0 (floored)", got)
	}
	if got := r.Slack(10, 10); got != 100 {
		t.Fatalf("fresh request Slack = %v, want full objective", got)
	}
	noObj := Reg{Class: NRT}
	if noObj.Slack(1000, 0) != sim.CycleMax {
		t.Fatal("no-objective Slack should be CycleMax")
	}
}

func TestTrackerRecords(t *testing.T) {
	tr := NewTracker([]Reg{
		{Class: RT, Objective: 20},
		{Class: NRT},
	})
	if tr.Masters() != 2 {
		t.Fatalf("Masters = %d", tr.Masters())
	}
	if v := tr.Record(0, 0, 10); v {
		t.Fatal("latency 10 <= objective 20 should not violate")
	}
	if v := tr.Record(0, 0, 30); !v {
		t.Fatal("latency 30 > objective 20 should violate")
	}
	if v := tr.Record(1, 0, 10000); v {
		t.Fatal("NRT master should never violate")
	}
	if tr.Violations(0) != 1 || tr.Violations(1) != 0 {
		t.Fatalf("violations = %d/%d", tr.Violations(0), tr.Violations(1))
	}
	if tr.TotalViolations() != 1 {
		t.Fatalf("TotalViolations = %d", tr.TotalViolations())
	}
	if tr.Grants(0) != 2 {
		t.Fatalf("Grants = %d", tr.Grants(0))
	}
	if tr.WorstLatency(0) != 30 {
		t.Fatalf("WorstLatency = %v", tr.WorstLatency(0))
	}
	if got := tr.MeanLatency(0); got != 20 {
		t.Fatalf("MeanLatency = %f, want 20", got)
	}
	if tr.MeanLatency(1) != 10000 {
		t.Fatalf("MeanLatency(1) = %f", tr.MeanLatency(1))
	}
	if tr.Reg(0).Objective != 20 {
		t.Fatal("Reg accessor")
	}
}

func TestTrackerEmptyMeanLatency(t *testing.T) {
	tr := NewTracker([]Reg{{Class: NRT}})
	if tr.MeanLatency(0) != 0 {
		t.Fatal("mean latency with no grants should be 0")
	}
}

func TestTrackerPanicsOnInvalidReg(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTracker([]Reg{{Class: RT}})
}

func TestClassString(t *testing.T) {
	if NRT.String() != "NRT" || RT.String() != "RT" || Class(7).String() == "" {
		t.Fatal("Class.String")
	}
}

// Package qos implements the AHB+ quality-of-service bookkeeping: the
// "special internal registers" the paper describes, which hold each
// master's QoS objective value and its real-time / non-real-time type,
// plus the violation tracking used to evaluate whether the bus actually
// guarantees the objectives.
package qos

import (
	"fmt"

	"repro/internal/sim"
)

// Class is a master's service class.
type Class uint8

const (
	// NRT is a non-real-time (best effort) master.
	NRT Class = iota
	// RT is a real-time master with a latency objective.
	RT
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case NRT:
		return "NRT"
	case RT:
		return "RT"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Reg is the per-master QoS register pair: class type and objective
// value (the maximum request-to-first-data latency, in cycles, the bus
// should guarantee). An Objective of 0 on an NRT master means "no
// objective".
type Reg struct {
	Class     Class
	Objective sim.Cycle
	// Quota is the master's relative bandwidth share used by the
	// bandwidth arbitration filter; 0 means no reservation.
	Quota float64
}

// MaxObjective bounds the latency objective a QoS register accepts.
// An objective beyond it cannot be met by any realizable platform and
// almost certainly indicates a units mistake in the configuration.
const MaxObjective sim.Cycle = 1 << 30

// Validate reports nonsensical register settings.
func (r Reg) Validate() error {
	if r.Class == RT && r.Objective == 0 {
		return fmt.Errorf("qos: RT master requires a nonzero objective")
	}
	if r.Objective > MaxObjective {
		return fmt.Errorf("qos: objective %d cycles out of range (max %d)", r.Objective, MaxObjective)
	}
	if r.Quota < 0 || r.Quota > 1 {
		return fmt.Errorf("qos: quota %f outside [0,1]", r.Quota)
	}
	return nil
}

// Slack returns the remaining cycles before the objective is violated
// for a request that has been waiting since reqSince. For masters with
// no objective it returns sim.CycleMax.
func (r Reg) Slack(now, reqSince sim.Cycle) sim.Cycle {
	if r.Objective == 0 {
		return sim.CycleMax
	}
	waited := now.SubFloor(reqSince)
	return r.Objective.SubFloor(waited)
}

// Tracker accumulates per-master QoS outcomes.
type Tracker struct {
	regs       []Reg
	violations []uint64
	grants     []uint64
	worstLat   []sim.Cycle
	latSum     []sim.Cycle
}

// NewTracker returns a tracker for the given per-master registers. It
// panics on invalid registers; QoS settings are static configuration.
func NewTracker(regs []Reg) *Tracker {
	for i, r := range regs {
		if err := r.Validate(); err != nil {
			panic(fmt.Sprintf("master %d: %v", i, err))
		}
	}
	t := &Tracker{
		regs:       append([]Reg(nil), regs...),
		violations: make([]uint64, len(regs)),
		grants:     make([]uint64, len(regs)),
		worstLat:   make([]sim.Cycle, len(regs)),
		latSum:     make([]sim.Cycle, len(regs)),
	}
	return t
}

// Reg returns master m's QoS register.
func (t *Tracker) Reg(m int) Reg { return t.regs[m] }

// Masters returns the number of tracked masters.
func (t *Tracker) Masters() int { return len(t.regs) }

// Record notes that master m's request issued at reqSince received its
// first data at dataAt, and returns whether this violated the
// objective.
func (t *Tracker) Record(m int, reqSince, dataAt sim.Cycle) bool {
	lat := dataAt.SubFloor(reqSince)
	t.grants[m]++
	t.latSum[m] += lat
	if lat > t.worstLat[m] {
		t.worstLat[m] = lat
	}
	r := t.regs[m]
	if r.Objective != 0 && lat > r.Objective {
		t.violations[m]++
		return true
	}
	return false
}

// Violations returns the violation count for master m.
func (t *Tracker) Violations(m int) uint64 { return t.violations[m] }

// TotalViolations returns the violation count across all masters.
func (t *Tracker) TotalViolations() uint64 {
	var s uint64
	for _, v := range t.violations {
		s += v
	}
	return s
}

// Grants returns how many transactions master m completed.
func (t *Tracker) Grants(m int) uint64 { return t.grants[m] }

// WorstLatency returns the maximum observed latency for master m.
func (t *Tracker) WorstLatency(m int) sim.Cycle { return t.worstLat[m] }

// MeanLatency returns the average observed latency for master m.
func (t *Tracker) MeanLatency(m int) float64 {
	if t.grants[m] == 0 {
		return 0
	}
	return float64(t.latSum[m]) / float64(t.grants[m])
}

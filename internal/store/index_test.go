package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestIndexRoundTripPreservesEntriesAndOrder(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 0)
	for i := 0; i < 5; i++ {
		if err := s1.Put(fmt.Sprintf("run:TL:%02d", i), []byte(fmt.Sprintf("body-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Scramble recency away from write order: 01 becomes hottest.
	if _, ok := s1.Get("run:TL:01"); !ok {
		t.Fatal("get failed")
	}
	wantOrder := s1.Enumerate("")
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	st := s2.StatsSnapshot()
	if st.IndexLoads != 1 || st.IndexRebuilds != 0 {
		t.Fatalf("reopen did not use the index: %+v", st)
	}
	if st.Entries != 5 {
		t.Fatalf("entries %d, want 5", st.Entries)
	}
	// The access order must survive via the index — not mtimes, which
	// this test never spaced out for coarse clocks.
	if got := s2.Enumerate(""); !reflect.DeepEqual(got, wantOrder) {
		t.Fatalf("order after reopen %v, want %v", got, wantOrder)
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("run:TL:%02d", i)
		if got, ok := s2.Get(key); !ok || string(got) != fmt.Sprintf("body-%d", i) {
			t.Fatalf("%s = %q, %v", key, got, ok)
		}
	}
}

func TestOpenViaIndexIsOOneFileReads(t *testing.T) {
	// IndexRebuilds counts every fall-back to the header-per-file
	// rescan — the only path that reads envelopes at Open. Zero
	// rebuilds on a populated store is the O(1)-file-reads guarantee.
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 0)
	const n = 500
	for i := 0; i < n; i++ {
		if err := s1.Put(fmt.Sprintf("run:TL:%04d", i), bytes.Repeat([]byte("b"), 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, 0)
	st := s2.StatsSnapshot()
	if st.IndexLoads != 1 || st.IndexRebuilds != 0 || st.Entries != n {
		t.Fatalf("indexed open stats %+v, want IndexLoads=1 IndexRebuilds=0 Entries=%d", st, n)
	}
}

func TestCorruptIndexFallsBackToRescan(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 0)
	for i := 0; i < 3; i++ {
		if err := s1.Put(fmt.Sprintf("k:%d", i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the index: the checksum must reject it and the
	// store must degrade to a full rescan — loudly, not a crash.
	path := filepath.Join(dir, indexName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	st := s2.StatsSnapshot()
	if st.IndexRebuilds != 1 || st.IndexLoads != 0 {
		t.Fatalf("corrupt index stats %+v, want one rebuild", st)
	}
	if st.Entries != 3 || st.Corrupt != 0 {
		t.Fatalf("rescan lost entries: %+v", st)
	}
	for i := 0; i < 3; i++ {
		if _, ok := s2.Get(fmt.Sprintf("k:%d", i)); !ok {
			t.Fatalf("k:%d lost after index corruption", i)
		}
	}
	// Open rewrote a good index; the next reopen loads it.
	s3 := mustOpen(t, dir, 0)
	if st := s3.StatsSnapshot(); st.IndexLoads != 1 || st.IndexRebuilds != 0 {
		t.Fatalf("index not repaired at open: %+v", st)
	}
}

func TestStaleIndexDetectedByNameSet(t *testing.T) {
	// A file deleted (or added) behind the store's back makes the
	// index's name set disagree with the directory — that must trigger
	// a rescan, not serve phantom entries.
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 0)
	for i := 0; i < 3; i++ {
		if err := s1.Put(fmt.Sprintf("k:%d", i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, fileName("k:1"))); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, 0)
	st := s2.StatsSnapshot()
	if st.IndexRebuilds != 1 || st.Entries != 2 {
		t.Fatalf("stale index stats %+v, want rebuild with 2 entries", st)
	}
	if _, ok := s2.Get("k:1"); ok {
		t.Fatal("phantom entry served from stale index")
	}
}

func TestIndexBudgetedButNeverEvicted(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 300)
	body := bytes.Repeat([]byte("e"), 90)
	// Enough writes to trip several GC passes and index flushes.
	for i := 0; i < 2*indexFlushEvery; i++ {
		if err := s.Put(fmt.Sprintf("k:%03d", i), body); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, indexName)); err != nil {
		t.Fatalf("index file evicted or never written: %v", err)
	}
	s2 := mustOpen(t, dir, 300)
	st := s2.StatsSnapshot()
	if st.IndexLoads != 1 {
		t.Fatalf("index unusable after GC churn: %+v", st)
	}
	if st.IndexBytes <= 0 {
		t.Fatalf("IndexBytes not accounted: %+v", st)
	}
	if got := st.Bytes + st.IndexBytes; got > 300 {
		t.Fatalf("budget ignores index file: payload %d + index %d = %d > 300", st.Bytes, st.IndexBytes, got)
	}
}

func TestEnumerateFiltersByPrefixInRecencyOrder(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	for _, k := range []string{"run:TL:aa", "run:RTL:bb", "sweep:cc", "run:TL:dd"} {
		if err := s.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Enumerate("run:TL:"); !reflect.DeepEqual(got, []string{"run:TL:dd", "run:TL:aa"}) {
		t.Fatalf("Enumerate(run:TL:) = %v", got)
	}
	if got := s.Enumerate(""); len(got) != 4 {
		t.Fatalf("Enumerate(\"\") = %v", got)
	}
	if got := s.Enumerate("nope:"); len(got) != 0 {
		t.Fatalf("Enumerate(nope:) = %v", got)
	}
}

func TestEncodeDecodeEnvelopeRoundTrip(t *testing.T) {
	raw := EncodeEnvelope("run:TL:abc", []byte("the-body"))
	key, body, err := DecodeEnvelope(raw)
	if err != nil || key != "run:TL:abc" || string(body) != "the-body" {
		t.Fatalf("round trip = %q, %q, %v", key, body, err)
	}
	// A flipped body bit must fail the checksum.
	raw[len(raw)-1] ^= 0x01
	if _, _, err := DecodeEnvelope(raw); err == nil {
		t.Fatal("corrupt envelope decoded")
	}
}

// benchStore populates dir with n small envelopes and a fresh index.
func benchStore(b *testing.B, dir string, n int) {
	b.Helper()
	s, err := Open(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	body := bytes.Repeat([]byte("p"), 64)
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("run:TL:%05d", i), body); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkOpenIndexed10k times the O(1)-file-reads startup path on a
// 10k-envelope store and asserts no per-envelope work happened: a
// single rescan (the only path that stats or reads envelopes at Open)
// would show up in IndexRebuilds.
func BenchmarkOpenIndexed10k(b *testing.B) {
	dir := b.TempDir()
	benchStore(b, dir, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, 0)
		if err != nil {
			b.Fatal(err)
		}
		st := s.StatsSnapshot()
		if st.IndexLoads != 1 || st.IndexRebuilds != 0 || st.Entries != 10_000 {
			b.Fatalf("open fell off the index fast path: %+v", st)
		}
	}
}

// BenchmarkOpenRescan10k is the comparison point: the same store with
// its index deleted before every Open, forcing the O(files) rescan.
func BenchmarkOpenRescan10k(b *testing.B) {
	dir := b.TempDir()
	benchStore(b, dir, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		os.Remove(filepath.Join(dir, indexName))
		b.StartTimer()
		s, err := Open(dir, 0)
		if err != nil {
			b.Fatal(err)
		}
		if st := s.StatsSnapshot(); st.IndexRebuilds != 1 || st.Entries != 10_000 {
			b.Fatalf("expected a rescan: %+v", st)
		}
	}
}

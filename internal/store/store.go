// Package store is the disk-backed half of the simulation service's
// content-addressed result cache. Every simulation in this repository
// is bit-reproducible, so a result is fully determined by its cache
// key (endpoint, model and spec content hash) — which makes results
// safe to persist and replay byte-identically across process
// restarts.
//
// Layout: one file per key under the store root, named after the key
// with every byte outside [A-Za-z0-9._-] rewritten to '-', plus a
// ".res" suffix (so "run:TL:<hash>" lands in "run-TL-<hash>.res").
// Each file carries a one-line envelope header — magic, the SHA-256 of
// the body, the body length and the original key — followed by the
// raw body bytes. Loads verify all three; a file that fails any check
// (torn write survived by a crash, flipped bits, a key that merely
// collides after sanitization) is treated as a miss, and genuinely
// corrupt files are deleted on sight.
//
// Writes are atomic: the envelope is written to a ".tmp" file in the
// store directory and renamed over the final name, so a reader (or a
// crash) can never observe a half-written result. Stale ".tmp" files
// from interrupted writes are swept on Open.
//
// The store is size-bounded: once the payload bytes (plus the startup
// index file, see index.go) exceed the configured budget, the
// least-recently-accessed entries are deleted until the store fits.
// Access order is tracked in memory, mirrored to file modification
// times on every hit, and persisted in the startup index, so the LRU
// order survives restarts.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultMaxBytes is the default payload budget: 256 MiB holds
// hundreds of thousands of simulation responses.
const DefaultMaxBytes = 256 << 20

// suffix is the result-file extension; tmpSuffix marks in-progress
// atomic writes.
const (
	suffix    = ".res"
	tmpSuffix = ".tmp"
)

// magic is the envelope format tag; bump it if the header changes so
// old files read as corrupt instead of misparsing.
const magic = "simstore1"

// Stats is a snapshot of the store's counters and occupancy.
type Stats struct {
	// Entries is the number of stored results.
	Entries int `json:"entries"`
	// Bytes is the total payload bytes on disk (envelope excluded).
	Bytes int64 `json:"bytes"`
	// Hits counts Gets served from disk.
	Hits uint64 `json:"hits"`
	// Misses counts Gets that found nothing (or found corruption).
	Misses uint64 `json:"misses"`
	// Writes counts successful Puts.
	Writes uint64 `json:"writes"`
	// Evictions counts entries deleted by the size-budget GC.
	Evictions uint64 `json:"evictions"`
	// Corrupt counts files rejected (and removed) by load verification.
	Corrupt uint64 `json:"corrupt"`
	// CorruptAtOpen is the subset of Corrupt found (and deleted) while
	// indexing the directory at Open — damage that happened while the
	// store was closed (crash mid-write, disk rot, a chaos drill).
	// Exposed separately, and logged per file, because silent deletion
	// at startup is indistinguishable from data never written: a
	// recovery drill asserts on this counter.
	CorruptAtOpen uint64 `json:"corrupt_at_open"`
	// IndexBytes is the size of the persisted startup index file. It
	// counts against the byte budget but is never evicted — evicting
	// it would only trade a few KiB now for an O(files) rescan later.
	IndexBytes int64 `json:"index_bytes"`
	// IndexLoads counts Opens served from a valid startup index — the
	// O(1)-file-reads fast path.
	IndexLoads uint64 `json:"index_loads"`
	// IndexRebuilds counts Opens that fell back to the full
	// header-by-header directory rescan because the startup index was
	// missing, corrupt, or stale against the directory listing. A
	// rebuild is a recovery, not a failure — but it is loud (logged and
	// counted) because a shard that rebuilds on every boot is paying
	// O(files) startups for nothing.
	IndexRebuilds uint64 `json:"index_rebuilds"`
}

// entry is the in-memory bookkeeping for one stored result; its
// recency lives in its position on the store's access-ordered list.
type entry struct {
	key  string
	size int64
	gen  int64 // write generation; a reader's miss-cleanup only
	// removes the generation it actually observed, so a concurrent
	// re-Put of the key is never thrown away by a stale reader.
}

// Store is a disk-backed key→bytes result store. It is safe for
// concurrent use; it assumes it is the directory's only writer.
type Store struct {
	dir      string
	maxBytes int64

	// observe, when set, is called after each Get/Peek and Put with the
	// operation name ("get" or "put") and its wall duration — the hook
	// an observability layer turns into store-latency histograms
	// without this package importing it. Set once before the store is
	// shared; never called under the store lock.
	observe func(op string, d time.Duration)

	mu sync.Mutex
	// byKey indexes the access-ordered list (front = most recently
	// accessed; values are *entry), so a hit refreshes recency and the
	// GC picks its victim in O(1) instead of scanning every entry.
	byKey map[string]*list.Element
	order *list.List
	size  int64
	gen   int64
	stats Stats
	// mutations counts writes and evictions since the last index
	// flush; indexBytes is the current index file's size (budgeted but
	// never evicted). flushMu serializes index flushers so an older
	// snapshot can never rename over a newer one.
	mutations  int
	indexBytes int64
	flushMu    sync.Mutex
}

// Open opens (creating if needed) a store rooted at dir, bounded to
// maxBytes of payload (<= 0 selects DefaultMaxBytes). Stale temp
// files from interrupted writes are removed, then the entry table is
// recovered from the startup index when one is present and valid —
// O(1) file reads regardless of entry count — or rebuilt by the full
// directory rescan (header read per file, corrupt envelopes deleted,
// LRU order from modification times) when it is missing, corrupt, or
// stale. Either way a fresh index is written before Open returns.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, byKey: make(map[string]*list.Element), order: list.New()}
	if err := s.load(); err != nil {
		return nil, err
	}
	// Enforce the budget immediately: a store reopened with a smaller
	// budget (or one that grew right up to a crash) must not wait for
	// the next Put to shed its oldest entries. Safe without the lock —
	// the store isn't published to any other goroutine yet.
	s.gcLocked("")
	// Persist what we just learned: after a rescan this replaces the
	// bad index, after an index load it folds in the GC above.
	// Best-effort — a store that cannot write its index still serves.
	if err := s.flushIndex(); err != nil {
		log.Printf("store: %v", err)
	}
	return s, nil
}

// load recovers the entry table at Open: one ReadDir to sweep temp
// files and collect the result-file name set, then the startup index
// if it validates against that set, else the full rescan.
func (s *Store) load() error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	resNames := make(map[string]bool)
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			os.Remove(filepath.Join(s.dir, name)) // interrupted write
			continue
		}
		if strings.HasSuffix(name, suffix) {
			resNames[name] = true
		}
	}
	if entries, idxSize, ok := s.loadIndex(resNames); ok {
		s.stats.IndexLoads++
		s.indexBytes = idxSize
		// Index order is most-recent-first; PushBack preserves it.
		for _, e := range entries {
			s.gen++
			s.byKey[e.key] = s.order.PushBack(&entry{key: e.key, size: e.size, gen: s.gen})
			s.size += e.size
		}
		return nil
	}
	if len(resNames) > 0 {
		// A missing index over an empty directory is a brand-new store,
		// not a defect; anything else is a real (if recoverable) event
		// that costs an O(files) startup — count and log it.
		s.stats.IndexRebuilds++
		log.Printf("store: rebuilding startup index for %s from %d result files", s.dir, len(resNames))
	}
	return s.rescan()
}

// dropCorruptAtOpen deletes an unreadable envelope found while
// rescanning and accounts for it — loudly. Deleting is the right
// recovery (every result is recomputable from its spec), but doing it
// silently would make startup corruption indistinguishable from data
// never written; the log line plus the CorruptAtOpen counter give
// operators and chaos drills something to see.
func (s *Store) dropCorruptAtOpen(path, reason string) {
	s.stats.Corrupt++
	s.stats.CorruptAtOpen++
	log.Printf("store: deleting corrupt envelope %s at open: %s", path, reason)
	os.Remove(path)
}

// rescan walks the store directory rebuilding the entry table and the
// LRU order from file modification times — the slow, always-correct
// path behind the startup index.
func (s *Store) rescan() error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	type seen struct {
		key  string
		size int64
		mod  time.Time
	}
	var found []seen
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			os.Remove(filepath.Join(s.dir, name)) // interrupted write
			continue
		}
		if !strings.HasSuffix(name, suffix) {
			continue
		}
		path := filepath.Join(s.dir, name)
		// Index from the header alone — no body read or hash, so a
		// store of hundreds of thousands of results opens in O(files)
		// stats, not O(bytes) checksums. Body bit-rot is still caught:
		// every Get verifies the full envelope and deletes on failure.
		key, size, err := readHeader(path)
		if err != nil {
			s.dropCorruptAtOpen(path, err.Error())
			continue
		}
		if fileName(key) != name {
			// A foreign or renamed file; its header key doesn't produce
			// this name, so Get would never find it. Drop it.
			s.dropCorruptAtOpen(path, "header key does not match file name")
			continue
		}
		info, err := de.Info()
		mod := time.Time{}
		if err == nil {
			mod = info.ModTime()
		}
		found = append(found, seen{key: key, size: size, mod: mod})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mod.Before(found[j].mod) })
	// Oldest first pushed first: each PushFront leaves the newest file
	// at the front of the access order.
	for _, f := range found {
		s.gen++
		s.byKey[f.key] = s.order.PushFront(&entry{key: f.key, size: f.size, gen: s.gen})
		s.size += f.size
	}
	return nil
}

// Dir returns the store root directory.
func (s *Store) Dir() string { return s.dir }

// SetObserver installs the per-operation duration callback. Call it
// before the store is shared between goroutines (it is not
// synchronized); fn must be fast and non-blocking.
func (s *Store) SetObserver(fn func(op string, d time.Duration)) { s.observe = fn }

// StatsSnapshot returns the current counters and occupancy.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.byKey)
	st.Bytes = s.size
	st.IndexBytes = s.indexBytes
	return st
}

// validKey reports whether a key can be stored: printable ASCII with
// no whitespace, so the envelope header stays one parseable line.
func validKey(key string) bool {
	if key == "" {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] > '~' {
			return false
		}
	}
	return true
}

// fileName maps a key to its file name: every byte outside
// [A-Za-z0-9._-] becomes '-'. The envelope records the exact key, so
// two keys colliding after this rewrite read as misses, never as each
// other's results.
func fileName(key string) string {
	b := []byte(key)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			b[i] = '-'
		}
	}
	return string(b) + suffix
}

// envelope renders the on-disk form: header line, then the body.
func envelope(key string, body []byte) []byte {
	sum := sha256.Sum256(body)
	header := fmt.Sprintf("%s %s %d %s\n", magic, hex.EncodeToString(sum[:]), len(body), key)
	out := make([]byte, 0, len(header)+len(body))
	out = append(out, header...)
	return append(out, body...)
}

// maxHeaderBytes bounds the envelope header line: magic + hex digest
// + length + key, all short in practice.
const maxHeaderBytes = 4096

// readHeader parses just the envelope header of a result file,
// returning the recorded key and body length, and checks that the
// file size is consistent with them. It never reads or checksums the
// body — that is Get's job on each access.
func readHeader(path string) (key string, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	buf := make([]byte, maxHeaderBytes)
	n, err := f.Read(buf)
	if n == 0 && err != nil {
		return "", 0, fmt.Errorf("store: %s: %w", path, err)
	}
	nl := bytes.IndexByte(buf[:n], '\n')
	if nl < 0 {
		return "", 0, fmt.Errorf("store: %s: no envelope header", path)
	}
	fields := strings.Split(string(buf[:nl]), " ")
	if len(fields) != 4 || fields[0] != magic {
		return "", 0, fmt.Errorf("store: %s: bad envelope header", path)
	}
	var bodyLen int64
	if _, err := fmt.Sscanf(fields[2], "%d", &bodyLen); err != nil || bodyLen < 0 {
		return "", 0, fmt.Errorf("store: %s: bad length", path)
	}
	info, err := f.Stat()
	if err != nil {
		return "", 0, fmt.Errorf("store: %s: %w", path, err)
	}
	if info.Size() != int64(nl+1)+bodyLen {
		return "", 0, fmt.Errorf("store: %s: file is %d bytes, envelope says %d", path, info.Size(), int64(nl+1)+bodyLen)
	}
	return fields[3], bodyLen, nil
}

// readEnvelope loads and verifies one result file, returning the
// recorded key and body. Any mismatch — magic, length, checksum,
// malformed header — is an error.
func readEnvelope(path string) (key string, body []byte, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	return parseEnvelope(raw, path)
}

// parseEnvelope verifies raw envelope bytes (from disk or from the
// router's in-memory cache); label names the source in errors.
func parseEnvelope(raw []byte, label string) (key string, body []byte, err error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return "", nil, fmt.Errorf("store: %s: no envelope header", label)
	}
	fields := strings.Split(string(raw[:nl]), " ")
	if len(fields) != 4 || fields[0] != magic {
		return "", nil, fmt.Errorf("store: %s: bad envelope header", label)
	}
	var n int
	if _, err := fmt.Sscanf(fields[2], "%d", &n); err != nil {
		return "", nil, fmt.Errorf("store: %s: bad length: %w", label, err)
	}
	body = raw[nl+1:]
	if len(body) != n {
		return "", nil, fmt.Errorf("store: %s: body is %d bytes, header says %d", label, len(body), n)
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != fields[1] {
		return "", nil, fmt.Errorf("store: %s: checksum mismatch", label)
	}
	return fields[3], body, nil
}

// Get returns the stored body for key. The disk read happens outside
// the store lock, so concurrent Gets don't serialize on IO; a file
// deleted by the GC between the index check and the read is a miss,
// and a file that fails verification is removed and a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.get(key, true)
}

// Peek is Get without moving the hit/miss counters (corruption and
// access recency are still recorded). Callers that re-probe a key
// they already counted a miss for — the service's under-lock
// re-check, a sweep row's saturation retries — use it so the stats
// stay one-probe-per-request.
func (s *Store) Peek(key string) ([]byte, bool) {
	return s.get(key, false)
}

// get implements Get/Peek; count selects hit/miss accounting.
func (s *Store) get(key string, count bool) ([]byte, bool) {
	if s.observe != nil {
		start := time.Now()
		defer func() { s.observe("get", time.Since(start)) }()
	}
	s.mu.Lock()
	el, present := s.byKey[key]
	if !present {
		if count {
			s.stats.Misses++
		}
		s.mu.Unlock()
		return nil, false
	}
	probedGen := el.Value.(*entry).gen
	s.mu.Unlock()

	path := filepath.Join(s.dir, fileName(key))
	gotKey, body, err := readEnvelope(path)
	ok := err == nil && gotKey == key

	s.mu.Lock()
	if !ok {
		// The GC may have legitimately evicted the file between the
		// probe and the read; only an existing-but-unreadable file is
		// corruption. Either way, only clean up the entry generation
		// this reader observed — a concurrent re-Put installed a fresh
		// file (atomically with its new generation, both under this
		// lock) that the failure says nothing about.
		if el, still := s.byKey[key]; still && el.Value.(*entry).gen == probedGen {
			if err != nil && !os.IsNotExist(err) {
				s.stats.Corrupt++
				os.Remove(path)
			}
			s.removeLocked(el)
		}
		if count {
			s.stats.Misses++
		}
		s.mu.Unlock()
		return nil, false
	}
	if el, present := s.byKey[key]; present {
		s.order.MoveToFront(el)
	}
	if count {
		s.stats.Hits++
	}
	s.mu.Unlock()
	// Mirror the touch to the file clock so the LRU order survives a
	// restart. Best-effort and outside the lock: a failed or misdirected
	// touch (the file just evicted or replaced) only ages the entry.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return body, true
}

// Put stores body under key, atomically (tmp file + rename), then
// enforces the size budget by evicting the least-recently-accessed
// entries. Storing the same key again overwrites in place. The
// envelope is written to the temp file outside the lock (the bulk of
// the IO); the rename happens under it, so the visible file and its
// entry generation always move together — a stale reader's cleanup
// can never observe the new file with the old generation.
func (s *Store) Put(key string, body []byte) error {
	if s.observe != nil {
		start := time.Now()
		defer func() { s.observe("put", time.Since(start)) }()
	}
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	name := fileName(key)
	tmp, err := os.CreateTemp(s.dir, name+".*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(envelope(key, body))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("store: writing %s: %w", name, werr)
	}

	s.mu.Lock()
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		s.mu.Unlock()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if old, ok := s.byKey[key]; ok {
		s.size -= old.Value.(*entry).size
		s.order.Remove(old)
	}
	s.gen++
	s.byKey[key] = s.order.PushFront(&entry{key: key, size: int64(len(body)), gen: s.gen})
	s.size += int64(len(body))
	s.stats.Writes++
	s.gcLocked(key)
	flush := s.maybeFlushLocked()
	s.mu.Unlock()
	if flush {
		if err := s.flushIndex(); err != nil {
			log.Printf("store: %v", err) // advisory; next Open rescans
		}
	}
	return nil
}

// removeLocked drops one entry from the index and the access order.
func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.order.Remove(el)
	delete(s.byKey, e.key)
	s.size -= e.size
}

// gcLocked evicts from the back of the access order — O(1) per
// victim — until the store fits its byte budget. The budget covers
// payload bytes plus the startup index file; the index itself is
// never an eviction candidate (it is not an entry), it only shrinks
// the room left for results. keep (the key just written, at the
// front) is never evicted: a budget smaller than a single result
// would otherwise thrash every Put into an immediate delete.
func (s *Store) gcLocked(keep string) {
	for s.size+s.indexBytes > s.maxBytes && s.order.Len() > 1 {
		back := s.order.Back()
		e := back.Value.(*entry)
		if e.key == keep {
			return
		}
		s.removeLocked(back)
		os.Remove(filepath.Join(s.dir, fileName(e.key)))
		s.stats.Evictions++
		s.mutations++ // stales the index; folded into the next flush
	}
}

// Touch refreshes key's LRU recency without reading the file — the
// hook for a memory tier in front of this store: results served from
// memory never call Get here, and without the touch the hottest
// results would look coldest to the GC. In-memory tick only (no
// per-hit syscall); the file mtime still ages until the next disk
// Get, so restart-order fidelity trades off against hot-path cost.
func (s *Store) Touch(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		s.order.MoveToFront(el)
	}
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

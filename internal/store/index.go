// Startup-index persistence. Opening a store used to cost one header
// read per envelope — O(files) stats that dominate startup for a
// 50k-result shard. The store now mirrors its in-memory bookkeeping
// (keys, sizes, access order) into one compact, checksummed index file
// alongside the envelopes, so a reopen costs a single directory
// listing plus one file read regardless of entry count.
//
// The index is advisory, never authoritative: Open cross-checks the
// listed file-name set against the actual directory listing (names
// only — no per-file stat), and any drift, parse failure or checksum
// mismatch falls back — loudly, with the IndexRebuilds counter — to
// the full header-by-header rescan that has always been correct.
// Writes are atomic (tmp + rename) and amortized: every
// indexFlushEvery mutations, plus once at Open and once at Close.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// indexName is the startup index's file name. It carries no ".res"
// suffix, and fileName always appends one, so no stored key can ever
// collide with it — which is also what keeps it invisible to the
// rescan and ineligible for eviction.
const indexName = "index"

// indexMagic tags the index format; bump it if the layout changes so
// old files read as stale and trigger a rescan instead of misparsing.
const indexMagic = "simidx1"

// indexFlushEvery is how many mutations (writes and evictions) may
// accumulate before the index is rewritten. Amortizing keeps the
// per-Put cost negligible; a crash inside the window only stales the
// index, and a stale index is detected and rebuilt at the next Open.
const indexFlushEvery = 64

// indexEntry is one parsed line of the startup index.
type indexEntry struct {
	key  string
	size int64
}

// encodeIndex renders the index file: a header line with the magic,
// the SHA-256 of the payload and the entry count, then one
// "<size> <key>" line per entry in access order, most recent first.
func encodeIndex(entries []indexEntry) []byte {
	var payload bytes.Buffer
	for _, e := range entries {
		payload.WriteString(strconv.FormatInt(e.size, 10))
		payload.WriteByte(' ')
		payload.WriteString(e.key)
		payload.WriteByte('\n')
	}
	sum := sha256.Sum256(payload.Bytes())
	header := fmt.Sprintf("%s %s %d\n", indexMagic, hex.EncodeToString(sum[:]), len(entries))
	out := make([]byte, 0, len(header)+payload.Len())
	out = append(out, header...)
	return append(out, payload.Bytes()...)
}

// parseIndex parses and verifies an index file body. Any defect —
// bad magic, checksum mismatch, count mismatch, malformed line,
// invalid key — is an error; the caller treats every error the same
// way (full rescan), so the messages only serve the log line.
func parseIndex(raw []byte) ([]indexEntry, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("no header line")
	}
	fields := strings.Split(string(raw[:nl]), " ")
	if len(fields) != 3 || fields[0] != indexMagic {
		return nil, fmt.Errorf("bad header")
	}
	payload := raw[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[1] {
		return nil, fmt.Errorf("checksum mismatch")
	}
	count, err := strconv.Atoi(fields[2])
	if err != nil || count < 0 {
		return nil, fmt.Errorf("bad entry count")
	}
	entries := make([]indexEntry, 0, count)
	for len(payload) > 0 {
		line := payload
		if i := bytes.IndexByte(payload, '\n'); i >= 0 {
			line, payload = payload[:i], payload[i+1:]
		} else {
			payload = nil
		}
		sp := bytes.IndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("malformed entry line")
		}
		size, err := strconv.ParseInt(string(line[:sp]), 10, 64)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("bad entry size")
		}
		key := string(line[sp+1:])
		if !validKey(key) {
			return nil, fmt.Errorf("invalid key in index")
		}
		entries = append(entries, indexEntry{key: key, size: size})
	}
	if len(entries) != count {
		return nil, fmt.Errorf("header says %d entries, found %d", count, len(entries))
	}
	return entries, nil
}

// loadIndex reads and validates the startup index against the actual
// set of result-file names in the directory. It returns the entries
// (most recent first) and the index file's size, or ok=false when the
// store must fall back to a rescan. resNames is the set of ".res"
// file names ReadDir found; the index is usable only if the file-name
// sets match exactly — a name-set comparison, deliberately not a
// per-file stat, so validation stays O(1) file reads.
func (s *Store) loadIndex(resNames map[string]bool) (entries []indexEntry, size int64, ok bool) {
	path := filepath.Join(s.dir, indexName)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			log.Printf("store: unreadable startup index %s: %v", path, err)
		}
		return nil, 0, false
	}
	entries, err = parseIndex(raw)
	if err != nil {
		log.Printf("store: corrupt startup index %s: %v", path, err)
		return nil, 0, false
	}
	if len(entries) != len(resNames) {
		log.Printf("store: stale startup index %s: %d entries, %d result files", path, len(entries), len(resNames))
		return nil, 0, false
	}
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		name := fileName(e.key)
		if !resNames[name] || seen[name] {
			log.Printf("store: stale startup index %s: entry %q has no matching file", path, e.key)
			return nil, 0, false
		}
		seen[name] = true
	}
	return entries, int64(len(raw)), true
}

// maybeFlushLocked notes one index-relevant mutation and reports
// whether the caller should rewrite the index once it releases the
// store lock.
func (s *Store) maybeFlushLocked() bool {
	s.mutations++
	if s.mutations < indexFlushEvery {
		return false
	}
	s.mutations = 0
	return true
}

// flushIndex rewrites the startup index from the current in-memory
// state: snapshot under the store lock, encode and write outside it,
// atomic tmp + rename. flushMu serializes flushers so a slow older
// snapshot can never rename over a newer one.
func (s *Store) flushIndex() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()

	s.mu.Lock()
	entries := make([]indexEntry, 0, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		entries = append(entries, indexEntry{key: e.key, size: e.size})
	}
	s.mu.Unlock()

	data := encodeIndex(entries)
	tmp, err := os.CreateTemp(s.dir, indexName+".*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("store: index: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("store: writing index: %w", werr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, indexName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: index: %w", err)
	}

	s.mu.Lock()
	s.indexBytes = int64(len(data))
	s.mu.Unlock()
	return nil
}

// Close flushes the startup index so the next Open is O(1) file
// reads. The store holds no descriptors, so Close is only this flush;
// the store technically remains usable afterwards, but callers should
// treat Close as the end of its life.
func (s *Store) Close() error {
	return s.flushIndex()
}

// Enumerate returns every stored key with the given prefix (""
// matches all), most recently accessed first. It reads only the
// in-memory bookkeeping — no IO — so draining a shard can snapshot a
// 100k-entry slice cheaply. The snapshot is point-in-time: keys
// written or evicted afterwards are not reflected, which is why a
// drain re-enumerates for stragglers before retiring the shard.
func (s *Store) Enumerate(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.byKey))
	for el := s.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if strings.HasPrefix(e.key, prefix) {
			keys = append(keys, e.key)
		}
	}
	return keys
}

// EncodeEnvelope renders key and body in the store's self-verifying
// on-disk envelope form (header line with magic, body checksum,
// length and key, then the raw body). Exported so the router's
// in-memory result cache can hold the exact bytes a store would
// persist — same integrity check, no second format.
func EncodeEnvelope(key string, body []byte) []byte {
	return envelope(key, body)
}

// DecodeEnvelope parses and verifies an envelope produced by
// EncodeEnvelope (or read from a store file), returning the recorded
// key and body. Any mismatch — magic, length, checksum — is an error.
func DecodeEnvelope(raw []byte) (key string, body []byte, err error) {
	return parseEnvelope(raw, "envelope")
}

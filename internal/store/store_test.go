package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
)

func mustOpen(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	body := []byte(`{"cycles":12345}`)
	if err := s.Put("run:TL:abc123", body); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("run:TL:abc123")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("get = %q, %v", got, ok)
	}
	if _, ok := s.Get("run:TL:other"); ok {
		t.Fatal("missing key reported present")
	}
	st := s.StatsSnapshot()
	if st.Entries != 1 || st.Bytes != int64(len(body)) || st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestResultsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 0)
	bodies := map[string][]byte{}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("compare:hash%d", i)
		bodies[key] = []byte(fmt.Sprintf(`{"row":%d}`, i))
		if err := s1.Put(key, bodies[key]); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh process over the same directory serves every result
	// byte-identically.
	s2 := mustOpen(t, dir, 0)
	if s2.Len() != 5 {
		t.Fatalf("reopened store has %d entries", s2.Len())
	}
	for key, want := range bodies {
		got, ok := s2.Get(key)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("%s: got %q, %v", key, got, ok)
		}
	}
}

func TestCorruptFilesReadAsMissesAndAreRemoved(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put("run:TL:x", []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileName("run:TL:x"))

	cases := []struct {
		name   string
		mangle func(t *testing.T, raw []byte) []byte
	}{
		{"flipped body bit", func(t *testing.T, raw []byte) []byte {
			raw[len(raw)-1] ^= 1
			return raw
		}},
		{"truncated", func(t *testing.T, raw []byte) []byte {
			return raw[:len(raw)-4]
		}},
		{"no header", func(t *testing.T, raw []byte) []byte {
			return []byte("garbage with no newline")
		}},
		{"wrong magic", func(t *testing.T, raw []byte) []byte {
			return append([]byte("wrongmagic a 1 k\n"), 'x')
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := s.Put("run:TL:x", []byte("payload-bytes")); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.mangle(t, raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("run:TL:x"); ok {
				t.Fatalf("corrupt file served: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt file not removed (stat err %v)", err)
			}
		})
	}
	if st := s.StatsSnapshot(); st.Corrupt != uint64(len(cases)) {
		t.Fatalf("corrupt counter %d, want %d", st.Corrupt, len(cases))
	}
}

func TestOpenSweepsCorruptAndTempFiles(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 0)
	if err := s1.Put("run:TL:keep", []byte("good")); err != nil {
		t.Fatal(err)
	}
	// A torn write the rename never committed...
	if err := os.WriteFile(filepath.Join(dir, "run-TL-torn.res.12345.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	// ...a file whose envelope header is broken (length disagrees with
	// the file size — swept at Open, which indexes headers only)...
	torn := filepath.Join(dir, fileName("run:TL:torn"))
	if err := os.WriteFile(torn, []byte("simstore1 ffff 99 run:TL:torn\nxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	// ...and one whose header is consistent but whose body bytes
	// rotted: indexing keeps it (no body hashing at startup) and the
	// first Get catches and deletes it.
	rotten := filepath.Join(dir, fileName("run:TL:rotten"))
	if err := os.WriteFile(rotten, []byte("simstore1 ffff 4 run:TL:rotten\nrot!"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d entries, want 2 (keep + unread rotten)", s2.Len())
	}
	if _, ok := s2.Get("run:TL:rotten"); ok {
		t.Fatal("bit-rotted body served")
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range left {
		if de.Name() == indexName { // the startup index rides along
			continue
		}
		names = append(names, de.Name())
	}
	if len(names) != 1 || names[0] != fileName("run:TL:keep") {
		t.Fatalf("directory not swept: %v", names)
	}
	st := s2.StatsSnapshot()
	if st.Corrupt != 2 {
		t.Fatalf("corrupt counter %d, want 2 (one at Open, one at Get)", st.Corrupt)
	}
}

func TestOpenRejectsNewerGenerationEnvelopesAndCrashedPutTmp(t *testing.T) {
	// A store directory inherited from a NEWER binary generation: its
	// envelope magic is unknown to this build, so the files must read
	// as corrupt and be dropped — a downgraded process serves misses
	// and recomputes, it never misparses a future format. Alongside it,
	// a tmp file exactly as a Put crashed mid-write would leave it
	// (CreateTemp name for a real key, valid-looking envelope inside):
	// swept at Open, never indexed, never served.
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 0)
	if err := s1.Put("run:TL:old", []byte("from-this-generation")); err != nil {
		t.Fatal(err)
	}

	// The future-format file: shaped like an envelope, wrong magic.
	future := filepath.Join(dir, fileName("run:TL:future"))
	body := []byte("future-payload")
	env := fmt.Sprintf("simstore2 %064x %d run:TL:future\n%s", 0, len(body), body)
	if err := os.WriteFile(future, []byte(env), 0o644); err != nil {
		t.Fatal(err)
	}
	// The crashed Put: a tmp file whose CONTENT is a perfectly valid
	// current-generation envelope — only the .tmp name marks it as
	// never-committed. Indexing it anyway would resurrect a write that
	// was never acknowledged.
	crashed := filepath.Join(dir, fileName("run:TL:crashed")+".8821.tmp")
	s2 := mustOpen(t, t.TempDir(), 0) // scratch store renders a valid envelope
	if err := s2.Put("run:TL:crashed", []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(s2.Dir(), fileName("run:TL:crashed")))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(crashed, valid, 0o644); err != nil {
		t.Fatal(err)
	}

	s3 := mustOpen(t, dir, 0)
	if s3.Len() != 1 {
		t.Fatalf("reopened store indexed %d entries, want 1", s3.Len())
	}
	if _, ok := s3.Get("run:TL:future"); ok {
		t.Fatal("newer-generation envelope served")
	}
	if _, ok := s3.Get("run:TL:crashed"); ok {
		t.Fatal("crashed Put's tmp file served")
	}
	if got, ok := s3.Get("run:TL:old"); !ok || !bytes.Equal(got, []byte("from-this-generation")) {
		t.Fatalf("surviving entry lost: %q %v", got, ok)
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range left {
		if de.Name() == indexName { // the startup index rides along
			continue
		}
		names = append(names, de.Name())
	}
	if len(names) != 1 || names[0] != fileName("run:TL:old") {
		t.Fatalf("directory not swept: %v", names)
	}
	// The future file counted as corruption (it was removed on sight);
	// the tmp sweep is routine, not corruption.
	if st := s3.StatsSnapshot(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter %d, want 1", st.Corrupt)
	}
}

func TestGCEvictsLeastRecentlyAccessed(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("x"), 100)
	// Room for three 100-byte bodies plus the startup index file,
	// which counts against the budget too.
	s := mustOpen(t, dir, 450)
	for _, k := range []string{"k:a", "k:b", "k:c"} {
		if err := s.Put(k, body); err != nil {
			t.Fatal(err)
		}
	}
	// Refresh a: the eviction victim must now be b.
	if _, ok := s.Get("k:a"); !ok {
		t.Fatal("a missing")
	}
	if err := s.Put("k:d", body); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k:b"); ok {
		t.Fatal("b survived; LRU order ignored")
	}
	for _, k := range []string{"k:a", "k:c", "k:d"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s evicted, want b only", k)
		}
	}
	st := s.StatsSnapshot()
	if st.Evictions != 1 || st.Bytes != 300 || st.Entries != 3 {
		t.Fatalf("stats %+v", st)
	}
	// The evicted entry's file is gone from disk too.
	if _, err := os.Stat(filepath.Join(dir, fileName("k:b"))); !os.IsNotExist(err) {
		t.Fatalf("evicted file still on disk (stat err %v)", err)
	}
}

func TestGCNeverEvictsTheEntryJustWritten(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 10) // budget below a single body
	body := bytes.Repeat([]byte("y"), 64)
	if err := s.Put("k:a", body); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k:b", body); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k:b"); !ok {
		t.Fatal("freshly written entry was evicted")
	}
	if s.Len() != 1 {
		t.Fatalf("len %d, want 1 (older entry evicted)", s.Len())
	}
}

func TestLRUOrderSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("z"), 100)
	s1 := mustOpen(t, dir, 1000)
	if err := s1.Put("k:old", body); err != nil {
		t.Fatal(err)
	}
	// File mtimes carry the LRU order across restarts; make the gap
	// visible to coarse filesystem clocks.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, fileName("k:old")), past, past); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k:new", body); err != nil {
		t.Fatal(err)
	}

	// Budget sized so that, with the startup index counted, the third
	// write evicts exactly the stalest entry.
	s2 := mustOpen(t, dir, 350)
	if err := s2.Put("k:third", body); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("k:old"); ok {
		t.Fatal("stalest entry survived the post-restart GC")
	}
	if _, ok := s2.Get("k:new"); !ok {
		t.Fatal("fresher entry evicted")
	}
}

func TestOpenEnforcesShrunkenBudget(t *testing.T) {
	// A store reopened with a smaller budget sheds its oldest entries
	// at Open — a read-only workload must not keep it over budget.
	dir := t.TempDir()
	body := bytes.Repeat([]byte("q"), 100)
	s1 := mustOpen(t, dir, 1000)
	for i := 0; i < 5; i++ {
		if err := s1.Put(fmt.Sprintf("k:%d", i), body); err != nil {
			t.Fatal(err)
		}
		// Space the mtimes out so coarse filesystem clocks preserve the
		// write order for the reopen's LRU reconstruction.
		past := time.Now().Add(time.Duration(i-10) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, fileName(fmt.Sprintf("k:%d", i))), past, past); err != nil {
			t.Fatal(err)
		}
	}

	s2 := mustOpen(t, dir, 250)
	st := s2.StatsSnapshot()
	if st.Bytes > 250 || st.Entries != 2 || st.Evictions != 3 {
		t.Fatalf("reopened stats %+v", st)
	}
	// The survivors are the most recently written.
	for _, k := range []string{"k:3", "k:4"} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("%s evicted, want oldest-first", k)
		}
	}
}

func TestTouchRefreshesRecencyWithoutReading(t *testing.T) {
	// Touch is the memory-tier hook: a result served from an upstream
	// cache must still look hot to this store's GC.
	body := bytes.Repeat([]byte("t"), 100)
	s := mustOpen(t, t.TempDir(), 450) // three bodies + the startup index
	for _, k := range []string{"k:a", "k:b", "k:c"} {
		if err := s.Put(k, body); err != nil {
			t.Fatal(err)
		}
	}
	s.Touch("k:a")
	s.Touch("k:nonexistent") // harmless
	if err := s.Put("k:d", body); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k:b"); ok {
		t.Fatal("b survived; Touch did not refresh a")
	}
	if _, ok := s.Get("k:a"); !ok {
		t.Fatal("touched entry evicted")
	}
	if st := s.StatsSnapshot(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("touch moved hit/miss counters: %+v", st)
	}
}

func TestPeekServesWithoutMovingHitMissCounters(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	if err := s.Put("k:a", []byte("body")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Peek("k:a"); !ok || string(got) != "body" {
		t.Fatalf("peek hit = %q, %v", got, ok)
	}
	if _, ok := s.Peek("k:none"); ok {
		t.Fatal("peek invented an entry")
	}
	st := s.StatsSnapshot()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("peek moved counters: %+v", st)
	}
	// Get still counts.
	s.Get("k:a")
	if st := s.StatsSnapshot(); st.Hits != 1 {
		t.Fatalf("get stopped counting: %+v", st)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	for _, key := range []string{"", "has space", "has\nnewline", "has\ttab"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("key %q accepted", key)
		}
	}
}

func TestSanitizedKeyCollisionIsAMissNotAnAlias(t *testing.T) {
	// "run:a" and "run-a" share a file name after sanitization; the
	// envelope key check must keep them from reading each other.
	s := mustOpen(t, t.TempDir(), 0)
	if err := s.Put("run:a", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("run-a", []byte("second")); err != nil {
		t.Fatal(err)
	}
	// Last write wins the shared file; the other key must miss, never
	// serve the other's bytes.
	if got, ok := s.Get("run:a"); ok && string(got) != "first" {
		t.Fatalf("run:a served aliased bytes %q", got)
	}
	if got, ok := s.Get("run-a"); ok && string(got) != "second" {
		t.Fatalf("run-a served aliased bytes %q", got)
	}
}

// TestGCUnderConcurrentReads races the size-budget GC against
// concurrent readers: every successful Get must return exactly the
// bytes written for that key, never a torn file or another key's
// body. Run with -race.
func TestGCUnderConcurrentReads(t *testing.T) {
	const keys = 32
	body := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i%26)}, 200+i)
	}
	// Budget holds only a fraction of the key space, so writers force
	// constant eviction while readers probe.
	s := mustOpen(t, t.TempDir(), 2000)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(keys)
				if err := s.Put(fmt.Sprintf("k:%d", i), body(i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(int64(w))
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(keys)
				got, ok := s.Get(fmt.Sprintf("k:%d", i))
				if ok && !bytes.Equal(got, body(i)) {
					t.Errorf("k:%d served wrong bytes (%d of them)", i, len(got))
					return
				}
			}
		}(int64(100 + r))
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := s.StatsSnapshot()
	if st.Evictions == 0 {
		t.Fatal("GC never ran; the race went unexercised")
	}
	if st.Corrupt != 0 {
		t.Fatalf("readers saw %d corrupt files", st.Corrupt)
	}
	if st.Bytes > 2000+int64(keys)+400 {
		t.Fatalf("store grew past its budget: %d bytes", st.Bytes)
	}
}

func TestFileNameSanitization(t *testing.T) {
	got := fileName("run:TL:ab/cd é")
	if strings.ContainsAny(got, ":/ é") || !strings.HasSuffix(got, suffix) {
		t.Fatalf("fileName = %q", got)
	}
}

func TestOpenCountsAndLogsCorruptEnvelopes(t *testing.T) {
	// The startup sweep must not just silently tidy up: operators need
	// the count (surfaced through healthz via Stats) to notice a disk
	// or crash-corruption problem before it becomes a re-simulation
	// storm. chaos.CorruptResults is the same fault the cluster drills
	// use, so this pins the exact envelope damage they inject.
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 0)
	keys := []string{"run:TL:aa", "run:TL:bb", "run:TL:cc", "run:TL:dd"}
	for _, k := range keys {
		if err := s1.Put(k, []byte("payload for "+k)); err != nil {
			t.Fatal(err)
		}
	}
	damaged, err := chaos.CorruptResults(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if damaged != 3 {
		t.Fatalf("damaged %d envelopes, want 3", damaged)
	}

	s2 := mustOpen(t, dir, 0)
	st := s2.StatsSnapshot()
	if st.CorruptAtOpen != 3 || st.Corrupt != 3 {
		t.Fatalf("stats %+v, want 3 corrupt at open", st)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store has %d entries, want the 1 survivor", s2.Len())
	}
	// The damaged envelopes are deleted, not quarantined: a later Put
	// of the same key must start clean.
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, de := range left {
		if strings.HasSuffix(de.Name(), ".res") {
			files++
		}
	}
	if files != 1 {
		t.Fatalf("%d envelope files survive, want 1", files)
	}
	// A second reopen of the now-clean directory counts zero.
	if st := mustOpen(t, dir, 0).StatsSnapshot(); st.CorruptAtOpen != 0 {
		t.Fatalf("clean reopen reports %d corrupt", st.CorruptAtOpen)
	}
}

// Package bi implements the BI (Bus Interface) side-band protocol of
// the AHB+ architecture: the dedicated link over which the arbiter
// sends the memory controller "the next transaction information" ahead
// of time, and the controller reports idle banks and access permission
// back — the machinery behind the paper's bank-interleaving throughput
// feature (§2, §3.4).
package bi

import (
	"repro/internal/sim"
)

// NextTxn is the arbiter→DDRC announcement of an upcoming transaction.
type NextTxn struct {
	// Master is the index of the master the arbiter expects to grant.
	Master int
	// Addr is the first-beat address of the expected transaction.
	Addr uint32
	// Write is the expected direction.
	Write bool
	// Beats is the expected burst length.
	Beats int
}

// item is a message in flight on the link.
type item struct {
	at  sim.Cycle
	msg NextTxn
}

// Link is a unidirectional arbiter→DDRC message pipe with a fixed
// pipeline latency, modeling the registered BI signal stage. Messages
// become visible to the consumer Latency cycles after they are sent.
// The zero-latency link delivers in the same cycle.
type Link struct {
	// Latency is the pipeline delay in cycles.
	Latency sim.Cycle
	// Enabled gates the whole interface; a disabled link drops sends,
	// modeling the "BI off" ablation configuration.
	Enabled bool

	q       []item
	sent    uint64
	drop    uint64
	deliver []Delivery // reused result buffer
}

// NewLink returns an enabled link with the given latency.
func NewLink(latency sim.Cycle) *Link {
	return &Link{Latency: latency, Enabled: true}
}

// Send enqueues msg at cycle now; it becomes deliverable at
// now+Latency. Sends on a disabled link are counted and dropped.
func (l *Link) Send(now sim.Cycle, msg NextTxn) {
	if !l.Enabled {
		l.drop++
		return
	}
	l.sent++
	l.q = append(l.q, item{at: now.AddSat(l.Latency), msg: msg})
}

// Delivery is a message paired with the cycle it arrived at the
// consumer.
type Delivery struct {
	// At is the delivery cycle (send time + link latency).
	At sim.Cycle
	// Msg is the delivered announcement.
	Msg NextTxn
}

// DeliverUpTo removes and returns, in send order, every message whose
// delivery time is <= now, with its delivery timestamp. Consumers that
// poll every cycle observe At == now; event-driven consumers use At to
// apply the message at its true arrival cycle. The returned slice is
// reused by the next call: consume it before calling again.
func (l *Link) DeliverUpTo(now sim.Cycle) []Delivery {
	n := 0
	for n < len(l.q) && l.q[n].at <= now {
		n++
	}
	if n == 0 {
		return nil
	}
	out := l.deliver[:0]
	for i := 0; i < n; i++ {
		out = append(out, Delivery{At: l.q[i].at, Msg: l.q[i].msg})
	}
	l.deliver = out
	l.q = append(l.q[:0], l.q[n:]...)
	return out
}

// Pending returns the number of undelivered messages.
func (l *Link) Pending() int { return len(l.q) }

// Sent returns the number of accepted messages.
func (l *Link) Sent() uint64 { return l.sent }

// Dropped returns the number of messages dropped because the link was
// disabled.
func (l *Link) Dropped() uint64 { return l.drop }

// BankStatus is the DDRC→arbiter report consumed by the permission and
// bank-affinity arbitration filters. It is produced fresh each
// arbitration round by the controller side (see the Provider interface)
// rather than queued, because it is level-, not edge-, signaling.
type BankStatus struct {
	// Permit is false while the controller cannot accept new work
	// (refresh window).
	Permit bool
	// BankIdle is true when the target bank is idle (cheap to open).
	BankIdle bool
	// RowOpen is true when the target row is already open (free access).
	RowOpen bool
}

// Provider is the controller-side interface that answers status
// queries for a candidate address. The DDR engine implements the two
// underlying queries; this adapter gives the arbiter one typed view and
// honors the Enabled gate: with BI off the arbiter sees a permissive,
// information-free status, exactly like a bus with no side-band wiring.
type Provider struct {
	Link *Link
	// PermitFn and InfoFn are wired to the DDR engine.
	PermitFn func(now sim.Cycle, addr uint32) bool
	InfoFn   func(now sim.Cycle, addr uint32) (idle, rowOpen bool)
}

// Permit reports just the access-permission bit for addr at cycle now,
// skipping the bank-affinity queries. With BI off it is always true,
// like the Status fallback.
func (p *Provider) Permit(now sim.Cycle, addr uint32) bool {
	if p.Link == nil || !p.Link.Enabled {
		return true
	}
	return p.PermitFn(now, addr)
}

// Status returns the BankStatus for addr at cycle now.
func (p *Provider) Status(now sim.Cycle, addr uint32) BankStatus {
	if p.Link == nil || !p.Link.Enabled {
		return BankStatus{Permit: true}
	}
	idle, open := p.InfoFn(now, addr)
	return BankStatus{
		Permit:   p.PermitFn(now, addr),
		BankIdle: idle,
		RowOpen:  open,
	}
}

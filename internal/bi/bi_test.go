package bi

import (
	"testing"

	"repro/internal/sim"
)

func TestLinkDeliversAfterLatency(t *testing.T) {
	l := NewLink(3)
	l.Send(10, NextTxn{Master: 1, Addr: 0x40})
	if got := l.DeliverUpTo(12); got != nil {
		t.Fatalf("delivered %v before latency elapsed", got)
	}
	got := l.DeliverUpTo(13)
	if len(got) != 1 || got[0].Msg.Master != 1 || got[0].Msg.Addr != 0x40 || got[0].At != 13 {
		t.Fatalf("DeliverUpTo = %v", got)
	}
	if l.Pending() != 0 {
		t.Fatalf("Pending = %d after delivery", l.Pending())
	}
}

func TestLinkPreservesOrder(t *testing.T) {
	l := NewLink(0)
	for i := 0; i < 5; i++ {
		l.Send(sim.Cycle(i), NextTxn{Master: i})
	}
	got := l.DeliverUpTo(10)
	if len(got) != 5 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, m := range got {
		if m.Msg.Master != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestLinkPartialDelivery(t *testing.T) {
	l := NewLink(0)
	l.Send(5, NextTxn{Master: 0})
	l.Send(10, NextTxn{Master: 1})
	got := l.DeliverUpTo(7)
	if len(got) != 1 || got[0].Msg.Master != 0 {
		t.Fatalf("partial delivery = %v", got)
	}
	if l.Pending() != 1 {
		t.Fatalf("Pending = %d", l.Pending())
	}
}

func TestDisabledLinkDrops(t *testing.T) {
	l := NewLink(0)
	l.Enabled = false
	l.Send(0, NextTxn{})
	if l.Pending() != 0 || l.Sent() != 0 || l.Dropped() != 1 {
		t.Fatalf("disabled link: pending=%d sent=%d dropped=%d", l.Pending(), l.Sent(), l.Dropped())
	}
}

func TestProviderStatus(t *testing.T) {
	l := NewLink(0)
	p := &Provider{
		Link:     l,
		PermitFn: func(now sim.Cycle, addr uint32) bool { return addr != 0xBAD0 },
		InfoFn: func(now sim.Cycle, addr uint32) (bool, bool) {
			return addr == 0x1000, addr == 0x2000
		},
	}
	st := p.Status(0, 0x1000)
	if !st.Permit || !st.BankIdle || st.RowOpen {
		t.Fatalf("idle-bank status = %+v", st)
	}
	st = p.Status(0, 0x2000)
	if !st.RowOpen || st.BankIdle {
		t.Fatalf("open-row status = %+v", st)
	}
	st = p.Status(0, 0xBAD0)
	if st.Permit {
		t.Fatal("permit should be denied")
	}
}

func TestProviderDisabledIsPermissive(t *testing.T) {
	l := NewLink(0)
	l.Enabled = false
	p := &Provider{
		Link:     l,
		PermitFn: func(sim.Cycle, uint32) bool { return false },
		InfoFn:   func(sim.Cycle, uint32) (bool, bool) { return true, true },
	}
	st := p.Status(0, 0)
	if !st.Permit || st.BankIdle || st.RowOpen {
		t.Fatalf("disabled BI should be permissive and information-free, got %+v", st)
	}
	// Nil link behaves the same.
	p.Link = nil
	st = p.Status(0, 0)
	if !st.Permit || st.BankIdle {
		t.Fatalf("nil link status = %+v", st)
	}
}

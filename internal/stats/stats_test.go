package stats

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func simCycle(v uint64) sim.Cycle { return sim.Cycle(v) }

func TestMasterRecordTxn(t *testing.T) {
	var m Master
	m.RecordTxn(false, 4, 16, 2, 10, false)
	m.RecordTxn(true, 8, 32, 4, 30, true)
	if m.Txns != 2 || m.Beats != 12 || m.Bytes != 48 {
		t.Fatalf("counts %+v", m)
	}
	if m.Reads != 1 || m.Writes != 1 {
		t.Fatalf("direction split %d/%d", m.Reads, m.Writes)
	}
	if m.LatencyMin != 10 || m.LatencyMax != 30 {
		t.Fatalf("lat bounds %d/%d", m.LatencyMin, m.LatencyMax)
	}
	if m.MeanLatency() != 20 {
		t.Fatalf("mean latency %f", m.MeanLatency())
	}
	if m.MeanWait() != 3 {
		t.Fatalf("mean wait %f", m.MeanWait())
	}
	if m.QoSViolations != 1 {
		t.Fatalf("violations %d", m.QoSViolations)
	}
}

func TestMasterHistogramBuckets(t *testing.T) {
	var m Master
	m.RecordTxn(false, 1, 4, 0, 1, false)    // bucket 0: [1,2)
	m.RecordTxn(false, 1, 4, 0, 5, false)    // bucket 2: [4,8)
	m.RecordTxn(false, 1, 4, 0, 1000, false) // bucket 9: [512,1024)
	if m.Hist[0] != 1 || m.Hist[2] != 1 || m.Hist[9] != 1 {
		t.Fatalf("histogram %v", m.Hist)
	}
	// Enormous latency lands in the last bucket, not out of range.
	m.RecordTxn(false, 1, 4, 0, 1<<40, false)
	if m.Hist[histBuckets-1] != 1 {
		t.Fatalf("overflow bucket %v", m.Hist)
	}
}

func TestMasterZeroTxnsMeans(t *testing.T) {
	var m Master
	if m.MeanLatency() != 0 || m.MeanWait() != 0 {
		t.Fatal("zero-txn means should be 0")
	}
}

func TestBusDerivedMetrics(t *testing.T) {
	b := NewBus(2)
	b.Cycles = 1000
	b.BusyBeats = 250
	b.Masters[0].RecordTxn(false, 4, 16, 0, 10, false)
	b.Masters[1].RecordTxn(true, 4, 16, 0, 12, true)
	if got := b.Utilization(); got != 0.25 {
		t.Fatalf("utilization %f", got)
	}
	if got := b.ThroughputBytesPerKCycle(); got != 32 {
		t.Fatalf("throughput %f", got)
	}
	if b.TotalTxns() != 2 {
		t.Fatalf("total txns %d", b.TotalTxns())
	}
	if b.TotalViolations() != 1 {
		t.Fatalf("total violations %d", b.TotalViolations())
	}
}

func TestBusZeroCycles(t *testing.T) {
	b := NewBus(1)
	if b.Utilization() != 0 || b.ThroughputBytesPerKCycle() != 0 {
		t.Fatal("zero-cycle metrics should be 0")
	}
}

func TestReportContainsKeyMetrics(t *testing.T) {
	b := NewBus(2)
	b.Cycles = 500
	b.BusyBeats = 100
	b.Grants = 25
	b.ArbRounds = 30
	b.FilterDecisive["realtime"] = 7
	b.Masters[0].Name = "cpu"
	b.Masters[0].RecordTxn(false, 4, 16, 3, 11, false)
	var sb strings.Builder
	b.Report(&sb)
	out := sb.String()
	for _, want := range []string{"utilization", "throughput", "cpu", "realtime=7", "500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Idle master rows are suppressed.
	if strings.Contains(out, "m1") {
		t.Fatalf("idle master should be suppressed:\n%s", out)
	}
}

func TestReportErrorsColumn(t *testing.T) {
	b := NewBus(1)
	b.Cycles = 100
	b.Masters[0].RecordTxn(false, 1, 0, 0, 5, false)
	b.Masters[0].Errors = 3
	var sb strings.Builder
	b.Report(&sb)
	if !strings.Contains(sb.String(), "err") || !strings.Contains(sb.String(), " 3") {
		t.Fatalf("errors column missing:\n%s", sb.String())
	}
}

func TestReportHistograms(t *testing.T) {
	b := NewBus(2)
	b.Cycles = 100
	for _, lat := range []uint64{3, 5, 9, 40, 41, 42} {
		b.Masters[0].RecordTxn(false, 1, 4, 0, simCycle(lat), false)
	}
	var sb strings.Builder
	b.ReportHistograms(&sb)
	out := sb.String()
	if !strings.Contains(out, "m0 latency histogram") {
		t.Fatalf("histogram header missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars rendered:\n%s", out)
	}
	// Idle master must not render.
	if strings.Contains(out, "m1 latency") {
		t.Fatalf("idle master rendered:\n%s", out)
	}
}

// Package stats implements the profiling features the paper attaches to
// the AHB+ TLM (§3.6): bus and master-port profiling — contention,
// utilization, throughput, per-master latency — plus write-buffer and
// DDR statistics, with a text report renderer.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ddr"
	"repro/internal/sim"
)

// histBuckets is the number of power-of-two latency histogram buckets:
// bucket i counts latencies in [2^i, 2^(i+1)).
const histBuckets = 16

// Master accumulates per-master-port measurements.
type Master struct {
	// Name labels the port in reports.
	Name string
	// Txns is the number of completed transactions.
	Txns uint64
	// Beats is the number of completed data beats.
	Beats uint64
	// Bytes is the number of bytes transferred.
	Bytes uint64
	// Reads and Writes split Txns by direction.
	Reads, Writes uint64
	// WaitCycles is the total request-to-grant contention time.
	WaitCycles sim.Cycle
	// LatencySum is the total request-to-first-data latency.
	LatencySum sim.Cycle
	// LatencyMin and LatencyMax bound the observed latencies.
	LatencyMin, LatencyMax sim.Cycle
	// QoSViolations counts transactions that missed the objective.
	QoSViolations uint64
	// Errors counts transactions terminated with an ERROR response
	// (unmapped address).
	Errors uint64
	// Hist is the latency histogram (power-of-two buckets).
	Hist [histBuckets]uint64
}

// RecordTxn folds one completed transaction into the master stats.
func (m *Master) RecordTxn(write bool, beats, bytes int, wait, latency sim.Cycle, violated bool) {
	m.Txns++
	m.Beats += uint64(beats)
	m.Bytes += uint64(bytes)
	if write {
		m.Writes++
	} else {
		m.Reads++
	}
	m.WaitCycles += wait
	m.LatencySum += latency
	if m.Txns == 1 || latency < m.LatencyMin {
		m.LatencyMin = latency
	}
	if latency > m.LatencyMax {
		m.LatencyMax = latency
	}
	if violated {
		m.QoSViolations++
	}
	b := 0
	for l := latency; l > 1 && b < histBuckets-1; l >>= 1 {
		b++
	}
	m.Hist[b]++
}

// MeanLatency returns the average request-to-first-data latency.
func (m *Master) MeanLatency() float64 {
	if m.Txns == 0 {
		return 0
	}
	return float64(m.LatencySum) / float64(m.Txns)
}

// MeanWait returns the average request-to-grant wait.
func (m *Master) MeanWait() float64 {
	if m.Txns == 0 {
		return 0
	}
	return float64(m.WaitCycles) / float64(m.Txns)
}

// Bus aggregates a whole simulation run.
type Bus struct {
	// Cycles is the number of simulated bus cycles.
	Cycles sim.Cycle
	// BusyBeats is the number of cycles the AHB data bus carried a beat.
	BusyBeats uint64
	// Grants is the number of arbitration grants issued.
	Grants uint64
	// ArbRounds is the number of arbitration rounds evaluated.
	ArbRounds uint64
	// WBPosted counts writes absorbed by the write buffer.
	WBPosted uint64
	// WBDrained counts write-buffer drain transactions.
	WBDrained uint64
	// WBFullStalls counts writes that found the buffer full.
	WBFullStalls uint64
	// WBPeak is the highest write-buffer occupancy observed.
	WBPeak int
	// Masters holds the per-port stats (the write buffer pseudo-master
	// is the final entry when present).
	Masters []Master
	// DDR is the memory-engine statistics snapshot.
	DDR ddr.Stats
	// FilterDecisive maps arbitration filter name to the number of
	// rounds it narrowed the candidate set.
	FilterDecisive map[string]uint64
}

// NewBus returns a Bus with per-master slots named m0..m(n-1).
func NewBus(masters int) *Bus {
	b := &Bus{Masters: make([]Master, masters), FilterDecisive: map[string]uint64{}}
	for i := range b.Masters {
		b.Masters[i].Name = fmt.Sprintf("m%d", i)
	}
	return b
}

// Utilization returns the fraction of cycles the data bus was busy.
func (b *Bus) Utilization() float64 {
	if b.Cycles == 0 {
		return 0
	}
	return float64(b.BusyBeats) / float64(b.Cycles)
}

// ThroughputBytesPerKCycle returns bytes moved per thousand cycles.
func (b *Bus) ThroughputBytesPerKCycle() float64 {
	if b.Cycles == 0 {
		return 0
	}
	var bytes uint64
	for _, m := range b.Masters {
		bytes += m.Bytes
	}
	return float64(bytes) * 1000 / float64(b.Cycles)
}

// TotalTxns returns transactions completed across all ports.
func (b *Bus) TotalTxns() uint64 {
	var t uint64
	for _, m := range b.Masters {
		t += m.Txns
	}
	return t
}

// TotalViolations returns QoS violations across all ports.
func (b *Bus) TotalViolations() uint64 {
	var t uint64
	for _, m := range b.Masters {
		t += m.QoSViolations
	}
	return t
}

// Report writes a human-readable profile, mirroring the metrics the
// paper calls out as essential for communication-architecture analysis
// (contention, utilization, throughput).
func (b *Bus) Report(w io.Writer) {
	fmt.Fprintf(w, "simulated cycles      : %d\n", uint64(b.Cycles))
	fmt.Fprintf(w, "bus utilization       : %5.1f%%\n", 100*b.Utilization())
	fmt.Fprintf(w, "throughput            : %8.1f bytes/kcycle\n", b.ThroughputBytesPerKCycle())
	fmt.Fprintf(w, "grants / arb rounds   : %d / %d\n", b.Grants, b.ArbRounds)
	fmt.Fprintf(w, "write buffer          : posted=%d drained=%d fullStalls=%d peak=%d\n",
		b.WBPosted, b.WBDrained, b.WBFullStalls, b.WBPeak)
	fmt.Fprintf(w, "ddr                   : hits=%d misses=%d conflicts=%d (hit rate %4.1f%%) refreshes=%d hintActs=%d\n",
		b.DDR.RowHits, b.DDR.RowMisses, b.DDR.RowConflicts, 100*b.DDR.HitRate(), b.DDR.Refreshes, b.DDR.HintActivates)
	if len(b.FilterDecisive) > 0 {
		names := make([]string, 0, len(b.FilterDecisive))
		for k := range b.FilterDecisive {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "decisive filters      :")
		for _, n := range names {
			fmt.Fprintf(w, " %s=%d", n, b.FilterDecisive[n])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-8s %8s %8s %10s %9s %9s %9s %9s %6s %5s\n",
		"port", "txns", "beats", "bytes", "meanWait", "meanLat", "maxLat", "minLat", "QoSvio", "err")
	for i := range b.Masters {
		m := &b.Masters[i]
		if m.Txns == 0 {
			continue
		}
		fmt.Fprintf(w, "%-8s %8d %8d %10d %9.1f %9.1f %9d %9d %6d %5d\n",
			m.Name, m.Txns, m.Beats, m.Bytes, m.MeanWait(), m.MeanLatency(),
			uint64(m.LatencyMax), uint64(m.LatencyMin), m.QoSViolations, m.Errors)
	}
}

// ReportHistograms renders the per-master latency histograms as text
// bars, the latency-distribution view of the profiling feature set.
func (b *Bus) ReportHistograms(w io.Writer) {
	for i := range b.Masters {
		m := &b.Masters[i]
		if m.Txns == 0 {
			continue
		}
		fmt.Fprintf(w, "%s latency histogram (cycles):\n", m.Name)
		var peak uint64
		for _, c := range m.Hist {
			if c > peak {
				peak = c
			}
		}
		for bkt, c := range m.Hist {
			if c == 0 {
				continue
			}
			lo := uint64(1) << bkt
			if bkt == 0 {
				lo = 0
			}
			bar := int(40 * c / peak)
			fmt.Fprintf(w, "  [%6d,%6d) %8d %s\n", lo, uint64(1)<<(bkt+1), c, strings.Repeat("#", bar))
		}
	}
}

package traffic

import (
	"strings"
	"testing"
)

const sampleTrace = `master,at,addr,dir,beats
0,0,0x1000,R,8
1,25,0x80000,W,4
0,40,4096,r,1
2,5,0x100000,w,16
`

func TestLoadCSV(t *testing.T) {
	gens, err := LoadCSV(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("%d generators, want 3 (max master + 1)", len(gens))
	}
	r0, ok := gens[0].Next(0)
	if !ok || r0.Addr != 0x1000 || r0.Write || r0.Beats != 8 {
		t.Fatalf("m0 first req %+v", r0)
	}
	r0b, ok := gens[0].Next(100) // prevDone floor applies
	if !ok || r0b.Addr != 4096 || r0b.At != 100 {
		t.Fatalf("m0 second req %+v", r0b)
	}
	if _, ok := gens[0].Next(0); ok {
		t.Fatal("m0 should be exhausted")
	}
	r1, ok := gens[1].Next(0)
	if !ok || !r1.Write || r1.At != 25 {
		t.Fatalf("m1 req %+v", r1)
	}
	r2, _ := gens[2].Next(0)
	if r2.Beats != 16 || !r2.Write {
		t.Fatalf("m2 req %+v", r2)
	}
	if gens[0].Name() != "trace-m0" {
		t.Fatalf("name %q", gens[0].Name())
	}
}

func TestLoadCSVNoHeader(t *testing.T) {
	gens, err := LoadCSV(strings.NewReader("0,0,0x40,R,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 {
		t.Fatalf("%d generators", len(gens))
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []struct {
		name, data string
	}{
		{"wrong fields", "0,0,0x40,R\n"},
		{"bad master", "x,0,0x40,R,4\n0,0,0x40,R,4\nbogus,0,0x40,R,4\n"},
		{"negative master", "-1,0,0x40,R,4\n"},
		{"bad cycle", "0,abc,0x40,R,4\n"},
		{"bad addr", "0,0,zz,R,4\n"},
		{"bad dir", "0,0,0x40,Q,4\n"},
		{"bad beats", "0,0,0x40,R,99\n"},
		{"zero beats", "0,0,0x40,R,0\n"},
		{"empty", "master,at,addr,dir,beats\n"},
	}
	for _, c := range cases {
		if _, err := LoadCSV(strings.NewReader(c.data)); err == nil {
			t.Errorf("%s: accepted invalid trace", c.name)
		}
	}
}

func TestLoadCSVGapFillsIdleMasters(t *testing.T) {
	// Master 1 absent from the trace: it gets an empty script, not a
	// nil slot.
	gens, err := LoadCSV(strings.NewReader("0,0,0x40,R,4\n2,0,0x80,R,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("%d generators", len(gens))
	}
	if _, ok := gens[1].Next(0); ok {
		t.Fatal("idle master should produce nothing")
	}
}

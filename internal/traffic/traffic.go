// Package traffic provides the parameterized master traffic generators
// used to drive both bus models. The paper's Table 1 varies "the
// traffic patterns of the masters"; the generator families here cover
// the same space: streaming/DMA sequential traffic, CPU-like random
// traffic, bursty on/off sources, and periodic real-time streams, all
// deterministic under a fixed seed so the RTL model and the TLM replay
// identical workloads.
package traffic

import (
	"math/rand"

	"repro/internal/amba"
	"repro/internal/sim"
)

// Req is one transaction a master wants to issue.
type Req struct {
	// At is the earliest cycle the master asserts its bus request.
	At sim.Cycle
	// Addr is the first-beat address.
	Addr uint32
	// Write is the direction.
	Write bool
	// Burst is the AHB burst kind.
	Burst amba.Burst
	// Beats is the burst length.
	Beats int
}

// Generator produces a master's transaction sequence. Next is called
// with the completion cycle of the previous transaction (0 for the
// first call) and returns the next request, or ok=false when the
// workload is exhausted. Generators must be deterministic.
type Generator interface {
	// Name labels the generator in reports.
	Name() string
	// Next returns the next request given the previous completion time.
	Next(prevDone sim.Cycle) (req Req, ok bool)
	// Reset rewinds the generator to its initial state so the identical
	// sequence can be replayed through another model.
	Reset()
}

// burstLengths are the beat counts Random draws from.
var burstLengths = [...]int{1, 4, 8, 16}

// beatsFor converts a beat count into the matching fixed burst kind.
func beatsFor(beats int) amba.Burst {
	return amba.FixedBurstFor(beats, false)
}

// BurstFor returns the burst kind a generator emits for a beats-long
// fixed request. External workload compilers (internal/spec) use it so
// scripted requests carry the same encoding the generators produce.
func BurstFor(beats int) amba.Burst { return beatsFor(beats) }

// Sequential walks an address range with a fixed stride, the classic
// DMA/streaming pattern.
type Sequential struct {
	// NameStr labels the generator.
	NameStr string
	// Base is the starting address.
	Base uint32
	// Beats is the burst length of every transaction.
	Beats int
	// Gap is the idle time between a completion and the next request.
	Gap sim.Cycle
	// Count is the number of transactions to produce.
	Count int
	// WriteEvery makes every n-th transaction a write (0 = all reads,
	// 1 = all writes).
	WriteEvery int
	// WrapBytes wraps the address walk within this window (0 = no wrap).
	WrapBytes uint32
	// StrideBytes overrides the step between transactions (0 = the
	// burst size, i.e. a contiguous walk). Large strides model
	// row-thrashing access patterns.
	StrideBytes uint32
	// BeatBytes is the bus beat width the walk assumes (0 = 4, the
	// 32-bit AHB default); it sizes the contiguous stride.
	BeatBytes int

	issued int
	addr   uint32
}

// Name implements Generator.
func (s *Sequential) Name() string {
	if s.NameStr != "" {
		return s.NameStr
	}
	return "sequential"
}

// Next implements Generator.
func (s *Sequential) Next(prevDone sim.Cycle) (Req, bool) {
	if s.issued >= s.Count {
		return Req{}, false
	}
	if s.issued == 0 {
		s.addr = s.Base
	}
	write := s.WriteEvery == 1 || (s.WriteEvery > 1 && (s.issued+1)%s.WriteEvery == 0)
	r := Req{
		At:    prevDone + s.Gap,
		Addr:  s.addr,
		Write: write,
		Burst: beatsFor(s.Beats),
		Beats: s.Beats,
	}
	step := s.StrideBytes
	if step == 0 {
		bb := s.BeatBytes
		if bb == 0 {
			bb = 4
		}
		step = uint32(s.Beats * bb)
	}
	s.addr += step
	if s.WrapBytes > 0 && s.addr >= s.Base+s.WrapBytes {
		s.addr = s.Base
	}
	s.issued++
	return r, true
}

// Reset implements Generator.
func (s *Sequential) Reset() { s.issued = 0; s.addr = s.Base }

// Random issues uniformly random addresses within a window with random
// burst lengths and a configurable write fraction: CPU-like traffic
// with no locality.
type Random struct {
	// NameStr labels the generator.
	NameStr string
	// Seed fixes the pseudo-random sequence.
	Seed int64
	// Base and WindowBytes bound the addresses.
	Base        uint32
	WindowBytes uint32
	// MaxBeats bounds the burst length (chosen from {1,4,8,16} up to it).
	MaxBeats int
	// WriteFrac in [0,1] is the fraction of writes.
	WriteFrac float64
	// MeanGap is the average idle time between transactions.
	MeanGap int
	// Count is the number of transactions to produce.
	Count int

	rng    *rand.Rand
	issued int
}

// Name implements Generator.
func (r *Random) Name() string {
	if r.NameStr != "" {
		return r.NameStr
	}
	return "random"
}

func (r *Random) ensure() {
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.Seed))
	}
}

// Next implements Generator.
func (r *Random) Next(prevDone sim.Cycle) (Req, bool) {
	if r.issued >= r.Count {
		return Req{}, false
	}
	r.ensure()
	r.issued++
	beats := 1
	for _, l := range burstLengths {
		if l <= r.MaxBeats && r.rng.Intn(2) == 0 {
			beats = l
		}
	}
	gap := sim.Cycle(0)
	if r.MeanGap > 0 {
		gap = sim.Cycle(r.rng.Intn(2*r.MeanGap + 1))
	}
	// Align so the burst cannot cross the 1KB AHB boundary.
	span := uint32(beats * 4)
	addr := r.Base + (uint32(r.rng.Int63())%(r.WindowBytes/span))*span
	return Req{
		At:    prevDone + gap,
		Addr:  addr,
		Write: r.rng.Float64() < r.WriteFrac,
		Burst: beatsFor(beats),
		Beats: beats,
	}, true
}

// Reset implements Generator.
func (r *Random) Reset() { r.rng = nil; r.issued = 0 }

// Bursty alternates between an active phase of back-to-back sequential
// transactions and a long idle phase — on/off traffic such as a block
// DMA that sleeps between buffers.
type Bursty struct {
	// NameStr labels the generator.
	NameStr string
	// Base is the starting address.
	Base uint32
	// Beats is the per-transaction burst length.
	Beats int
	// BurstTxns is the number of transactions per active phase.
	BurstTxns int
	// IdleGap is the idle time between active phases.
	IdleGap sim.Cycle
	// Count is the total number of transactions.
	Count int
	// Write makes the traffic writes instead of reads.
	Write bool

	issued int
	addr   uint32
}

// Name implements Generator.
func (b *Bursty) Name() string {
	if b.NameStr != "" {
		return b.NameStr
	}
	return "bursty"
}

// Next implements Generator.
func (b *Bursty) Next(prevDone sim.Cycle) (Req, bool) {
	if b.issued >= b.Count {
		return Req{}, false
	}
	if b.issued == 0 {
		b.addr = b.Base
	}
	gap := sim.Cycle(0)
	if b.issued%b.BurstTxns == 0 && b.issued > 0 {
		gap = b.IdleGap
	}
	r := Req{
		At:    prevDone + gap,
		Addr:  b.addr,
		Write: b.Write,
		Burst: beatsFor(b.Beats),
		Beats: b.Beats,
	}
	b.addr += uint32(b.Beats * 4)
	b.issued++
	return r, true
}

// Reset implements Generator.
func (b *Bursty) Reset() { b.issued = 0; b.addr = b.Base }

// Stream issues one transaction per fixed period, like a real-time
// video/audio IP with a hard service deadline per frame slice. If the
// bus falls behind, the next request is issued immediately after the
// previous completes (the stream does not skip work).
type Stream struct {
	// NameStr labels the generator.
	NameStr string
	// Base is the starting address.
	Base uint32
	// Beats is the per-transaction burst length.
	Beats int
	// Period is the issue period in cycles.
	Period sim.Cycle
	// Count is the number of transactions.
	Count int
	// Write makes the stream a producer instead of a consumer.
	Write bool
	// WrapBytes wraps the address walk (0 = no wrap).
	WrapBytes uint32

	issued int
	addr   uint32
	nextAt sim.Cycle
}

// Name implements Generator.
func (s *Stream) Name() string {
	if s.NameStr != "" {
		return s.NameStr
	}
	return "stream"
}

// Next implements Generator.
func (s *Stream) Next(prevDone sim.Cycle) (Req, bool) {
	if s.issued >= s.Count {
		return Req{}, false
	}
	if s.issued == 0 {
		s.addr = s.Base
		s.nextAt = 0
	}
	at := sim.MaxCycle(prevDone, s.nextAt)
	s.nextAt += s.Period
	r := Req{
		At:    at,
		Addr:  s.addr,
		Write: s.Write,
		Burst: beatsFor(s.Beats),
		Beats: s.Beats,
	}
	s.addr += uint32(s.Beats * 4)
	if s.WrapBytes > 0 && s.addr >= s.Base+s.WrapBytes {
		s.addr = s.Base
	}
	s.issued++
	return r, true
}

// Reset implements Generator.
func (s *Stream) Reset() { s.issued = 0; s.addr = s.Base; s.nextAt = 0 }

// Script replays a fixed request list; used for directed tests and for
// capturing regression workloads.
type Script struct {
	// NameStr labels the generator.
	NameStr string
	// Reqs is the request list. Req.At is interpreted as an absolute
	// floor: the request is issued at max(prevDone, At).
	Reqs []Req

	pos int
}

// Name implements Generator.
func (s *Script) Name() string {
	if s.NameStr != "" {
		return s.NameStr
	}
	return "script"
}

// Next implements Generator.
func (s *Script) Next(prevDone sim.Cycle) (Req, bool) {
	if s.pos >= len(s.Reqs) {
		return Req{}, false
	}
	r := s.Reqs[s.pos]
	s.pos++
	r.At = sim.MaxCycle(r.At, prevDone)
	return r, true
}

// Reset implements Generator.
func (s *Script) Reset() { s.pos = 0 }

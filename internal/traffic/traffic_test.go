package traffic

import (
	"testing"

	"repro/internal/amba"
	"repro/internal/sim"
)

// drain pulls every request from g, validating the chained completion
// protocol with a fixed service time per transaction.
func drain(t *testing.T, g Generator, service sim.Cycle) []Req {
	t.Helper()
	var out []Req
	prevDone := sim.Cycle(0)
	for {
		r, ok := g.Next(prevDone)
		if !ok {
			return out
		}
		if r.Beats <= 0 {
			t.Fatalf("%s produced %d beats", g.Name(), r.Beats)
		}
		if r.At < prevDone {
			t.Fatalf("%s requested at %v before previous completion %v", g.Name(), r.At, prevDone)
		}
		txn := amba.Txn{Addr: r.Addr, Burst: r.Burst, Size: amba.Size32, Beats: r.Beats, Write: r.Write}
		if err := txn.Validate(); err != nil {
			t.Fatalf("%s produced protocol-illegal txn: %v", g.Name(), err)
		}
		out = append(out, r)
		prevDone = r.At + service
	}
}

func TestSequentialWalksAddresses(t *testing.T) {
	g := &Sequential{Base: 0x1000, Beats: 4, Gap: 2, Count: 5}
	reqs := drain(t, g, 10)
	if len(reqs) != 5 {
		t.Fatalf("produced %d reqs, want 5", len(reqs))
	}
	for i, r := range reqs {
		if want := uint32(0x1000 + i*16); r.Addr != want {
			t.Fatalf("req %d addr %#x, want %#x", i, r.Addr, want)
		}
		if r.Write {
			t.Fatal("WriteEvery=0 must produce reads")
		}
	}
	// Gap honored.
	if reqs[1].At != reqs[0].At+10+2 {
		t.Fatalf("gap not honored: %v -> %v", reqs[0].At, reqs[1].At)
	}
}

func TestSequentialWriteEvery(t *testing.T) {
	g := &Sequential{Base: 0, Beats: 1, Count: 6, WriteEvery: 3}
	reqs := drain(t, g, 1)
	wantWrites := []bool{false, false, true, false, false, true}
	for i, r := range reqs {
		if r.Write != wantWrites[i] {
			t.Fatalf("req %d write=%v, want %v", i, r.Write, wantWrites[i])
		}
	}
	g2 := &Sequential{Base: 0, Beats: 1, Count: 3, WriteEvery: 1}
	for _, r := range drain(t, g2, 1) {
		if !r.Write {
			t.Fatal("WriteEvery=1 must produce all writes")
		}
	}
}

func TestSequentialWrap(t *testing.T) {
	g := &Sequential{Base: 0x100, Beats: 4, Count: 10, WrapBytes: 48}
	reqs := drain(t, g, 1)
	for _, r := range reqs {
		if r.Addr < 0x100 || r.Addr >= 0x100+48 {
			t.Fatalf("wrapped walk escaped window: %#x", r.Addr)
		}
	}
}

func TestRandomDeterministicUnderSeed(t *testing.T) {
	mk := func() *Random {
		return &Random{Seed: 42, Base: 0, WindowBytes: 1 << 20, MaxBeats: 16, WriteFrac: 0.3, MeanGap: 5, Count: 50}
	}
	a := drain(t, mk(), 7)
	b := drain(t, mk(), 7)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRandomResetReplays(t *testing.T) {
	g := &Random{Seed: 7, Base: 0, WindowBytes: 1 << 16, MaxBeats: 8, Count: 20}
	a := drain(t, g, 3)
	g.Reset()
	b := drain(t, g, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Reset did not replay: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestRandomRespects1KBBoundary(t *testing.T) {
	g := &Random{Seed: 3, Base: 0, WindowBytes: 1 << 18, MaxBeats: 16, Count: 200}
	for _, r := range drain(t, g, 1) {
		if amba.CrossesBoundary(r.Addr, amba.Size32, r.Beats, amba.KB) {
			t.Fatalf("random burst crosses 1KB: %#x x%d", r.Addr, r.Beats)
		}
	}
}

func TestBurstyPhases(t *testing.T) {
	g := &Bursty{Base: 0, Beats: 4, BurstTxns: 3, IdleGap: 100, Count: 6}
	reqs := drain(t, g, 10)
	// Within a phase: back-to-back (At == prevDone).
	if reqs[1].At != reqs[0].At+10 {
		t.Fatalf("intra-phase gap wrong: %v -> %v", reqs[0].At, reqs[1].At)
	}
	// Between phases: idle gap inserted at txn index 3.
	if reqs[3].At != reqs[2].At+10+100 {
		t.Fatalf("inter-phase gap wrong: %v -> %v", reqs[2].At, reqs[3].At)
	}
}

func TestStreamPeriodicIssue(t *testing.T) {
	g := &Stream{Base: 0, Beats: 4, Period: 50, Count: 4}
	var reqs []Req
	prevDone := sim.Cycle(0)
	for {
		r, ok := g.Next(prevDone)
		if !ok {
			break
		}
		reqs = append(reqs, r)
		prevDone = r.At + 5 // fast service
	}
	want := []sim.Cycle{0, 50, 100, 150}
	for i, r := range reqs {
		if r.At != want[i] {
			t.Fatalf("period issue %d at %v, want %v", i, r.At, want[i])
		}
	}
}

func TestStreamFallsBehindGracefully(t *testing.T) {
	g := &Stream{Base: 0, Beats: 4, Period: 10, Count: 3}
	r0, _ := g.Next(0)
	// Service takes far longer than the period: next issues immediately
	// after completion, not in the past.
	r1, _ := g.Next(r0.At + 100)
	if r1.At != r0.At+100 {
		t.Fatalf("overloaded stream issued at %v, want %v", r1.At, r0.At+100)
	}
}

func TestScriptReplay(t *testing.T) {
	s := &Script{Reqs: []Req{
		{At: 5, Addr: 0x10, Beats: 1, Burst: amba.BurstSingle},
		{At: 2, Addr: 0x20, Beats: 4, Burst: amba.BurstIncr4},
	}}
	r0, ok := s.Next(0)
	if !ok || r0.At != 5 {
		t.Fatalf("script r0 = %+v", r0)
	}
	// Absolute floor: prevDone later than At wins.
	r1, ok := s.Next(50)
	if !ok || r1.At != 50 {
		t.Fatalf("script r1 = %+v", r1)
	}
	if _, ok := s.Next(0); ok {
		t.Fatal("exhausted script must return false")
	}
	s.Reset()
	if _, ok := s.Next(0); !ok {
		t.Fatal("reset script must replay")
	}
}

func TestThreadedMatchesInner(t *testing.T) {
	mk := func() *Sequential {
		return &Sequential{Base: 0x1000, Beats: 4, Gap: 2, Count: 20, WriteEvery: 4}
	}
	plain := drain(t, mk(), 9)
	th := NewThreaded(mk())
	wrapped := drain(t, th, 9)
	if len(plain) != len(wrapped) {
		t.Fatalf("lengths %d/%d", len(plain), len(wrapped))
	}
	for i := range plain {
		if plain[i] != wrapped[i] {
			t.Fatalf("threaded diverged at %d", i)
		}
	}
	if th.Name() != "sequential+thread" {
		t.Fatalf("Name = %q", th.Name())
	}
}

func TestThreadedResetMidStream(t *testing.T) {
	th := NewThreaded(&Sequential{Base: 0, Beats: 1, Count: 10})
	th.Next(0)
	th.Next(0)
	th.Reset()
	r, ok := th.Next(0)
	if !ok || r.Addr != 0 {
		t.Fatalf("after reset got %+v ok=%v, want first request", r, ok)
	}
}

func TestGeneratorNames(t *testing.T) {
	gens := []Generator{
		&Sequential{}, &Random{}, &Bursty{}, &Stream{}, &Script{},
		&Sequential{NameStr: "dma0"},
	}
	for _, g := range gens {
		if g.Name() == "" {
			t.Errorf("%T has empty name", g)
		}
	}
	if gens[5].Name() != "dma0" {
		t.Fatal("NameStr override ignored")
	}
}

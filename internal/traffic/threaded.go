package traffic

import "repro/internal/sim"

// Threaded wraps a Generator so that every Next crosses a goroutine
// boundary: the wrapped generator runs in its own goroutine and each
// call performs a synchronous channel rendezvous, the way a
// thread-based TLM synchronizes one simulation thread per master with
// the kernel. The paper chose method-based modeling over thread-based
// modeling for speed (§4); benchmarking the same workload through
// Threaded generators reproduces that comparison.
type Threaded struct {
	inner   Generator
	reqCh   chan sim.Cycle
	respCh  chan threadResp
	started bool
}

type threadResp struct {
	req Req
	ok  bool
}

// NewThreaded returns a thread-backed view of g. The goroutine starts
// lazily on the first Next and exits when the generator is exhausted or
// Reset is called.
func NewThreaded(g Generator) *Threaded {
	return &Threaded{inner: g}
}

// Name implements Generator.
func (t *Threaded) Name() string { return t.inner.Name() + "+thread" }

func (t *Threaded) start() {
	t.reqCh = make(chan sim.Cycle)
	t.respCh = make(chan threadResp)
	t.started = true
	go func(req <-chan sim.Cycle, resp chan<- threadResp) {
		for prevDone := range req {
			r, ok := t.inner.Next(prevDone)
			resp <- threadResp{r, ok}
			if !ok {
				return
			}
		}
	}(t.reqCh, t.respCh)
}

// Next implements Generator by round-tripping through the master
// goroutine.
func (t *Threaded) Next(prevDone sim.Cycle) (Req, bool) {
	if !t.started {
		t.start()
	}
	t.reqCh <- prevDone
	r := <-t.respCh
	if !r.ok {
		t.started = false
	}
	return r.req, r.ok
}

// Reset implements Generator. Any running goroutine is released and the
// inner generator rewound.
func (t *Threaded) Reset() {
	if t.started {
		close(t.reqCh)
		t.started = false
	}
	t.inner.Reset()
}

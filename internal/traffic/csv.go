package traffic

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/amba"
	"repro/internal/sim"
)

// LoadCSV parses a transaction trace into one Script generator per
// master, so captured or externally generated workloads can be replayed
// through either model. The format is one transaction per row:
//
//	master,at,addr,dir,beats
//	0,0,0x1000,R,8
//	1,25,0x80000,W,4
//
// A header row is optional (detected by a non-numeric first field).
// `at` is the earliest request cycle (absolute floor, like Script),
// `addr` accepts 0x-prefixed hex or decimal, `dir` is R or W.
func LoadCSV(r io.Reader) ([]Generator, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("traffic: reading trace: %w", err)
	}
	perMaster := map[int][]Req{}
	maxMaster := -1
	for i, row := range rows {
		if len(row) != 5 {
			return nil, fmt.Errorf("traffic: row %d has %d fields, want 5", i+1, len(row))
		}
		if i == 0 {
			if _, err := strconv.Atoi(strings.TrimSpace(row[0])); err != nil {
				continue // header row
			}
		}
		master, err := strconv.Atoi(strings.TrimSpace(row[0]))
		if err != nil || master < 0 {
			return nil, fmt.Errorf("traffic: row %d: bad master %q", i+1, row[0])
		}
		at, err := strconv.ParseUint(strings.TrimSpace(row[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: row %d: bad cycle %q", i+1, row[1])
		}
		addr, err := parseAddr(strings.TrimSpace(row[2]))
		if err != nil {
			return nil, fmt.Errorf("traffic: row %d: %w", i+1, err)
		}
		dir := strings.ToUpper(strings.TrimSpace(row[3]))
		if dir != "R" && dir != "W" {
			return nil, fmt.Errorf("traffic: row %d: bad direction %q", i+1, row[3])
		}
		beats, err := strconv.Atoi(strings.TrimSpace(row[4]))
		if err != nil || beats < 1 || beats > 16 {
			return nil, fmt.Errorf("traffic: row %d: bad beat count %q", i+1, row[4])
		}
		perMaster[master] = append(perMaster[master], Req{
			At:    sim.Cycle(at),
			Addr:  addr,
			Write: dir == "W",
			Burst: amba.FixedBurstFor(beats, false),
			Beats: beats,
		})
		if master > maxMaster {
			maxMaster = master
		}
	}
	if maxMaster < 0 {
		return nil, fmt.Errorf("traffic: trace contains no transactions")
	}
	gens := make([]Generator, maxMaster+1)
	for m := 0; m <= maxMaster; m++ {
		gens[m] = &Script{
			NameStr: fmt.Sprintf("trace-m%d", m),
			Reqs:    perMaster[m],
		}
	}
	return gens, nil
}

func parseAddr(s string) (uint32, error) {
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		base = 16
		s = s[2:]
	}
	v, err := strconv.ParseUint(s, base, 32)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return uint32(v), nil
}

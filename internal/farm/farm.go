// Package farm is the experiment run farm: a bounded worker pool that
// executes independent simulation runs across goroutines. A single
// simulation is strictly single-threaded by design (the kernels are
// deterministic state machines), but the experiment harnesses —
// Table 1 accuracy rows, ablation sweeps, scenario batteries — are
// embarrassingly parallel across runs, so multi-scenario experiments
// scale with cores instead of running one run at a time.
//
// Workers never share model state: every job builds its own platform
// (engine, memory, checker, stats) from its workload description, and
// results land in per-index slots, so runs stay bit-reproducible
// regardless of scheduling order.
package farm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes
// workers <= 0: one per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Do runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means DefaultWorkers). It returns when every call has
// finished. A panic in any call is re-raised on the caller's goroutine
// after the remaining jobs drain, so a model assertion failing inside a
// farmed run surfaces exactly like a serial one.
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: no goroutines, identical call order.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, fmt.Sprintf("farm: job %d panicked: %v", i, r))
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// and returns the results in index order. Scheduling order never
// affects the output: slot i always holds fn(i).
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Pair runs two independent functions concurrently (on two goroutines
// at most) and returns when both finish. It is the two-model harness
// shape: the same workload pushed through the pin-accurate model and
// the TLM at once.
func Pair(a, b func()) {
	Do(2, 2, func(i int) {
		if i == 0 {
			a()
		} else {
			b()
		}
	})
}

// ErrSaturated is returned by Pool.Submit when the bounded job queue
// is full — the backpressure signal a service translates into "try
// again later" instead of queueing unboundedly.
var ErrSaturated = errors.New("farm: job queue saturated")

// Pool is a long-lived worker pool with a bounded job queue. Unlike
// Do/Map — which are built for a fixed batch known up front — a Pool
// serves jobs that arrive one at a time (the simulation service's
// request stream), applying backpressure once the queue fills.
//
// A panic inside a job is recovered and rethrown on the goroutine
// that waits on the job's done function, not the worker, so one bad
// job cannot take a worker out of the pool.
type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup
	// inFlight counts jobs a worker is currently executing (picked up
	// from the queue, not yet returned). Together with Queued it is the
	// pool's instantaneous load — the number a service divides by its
	// worker count to tell clients how long to back off.
	inFlight atomic.Int64
	// submitted/completed are lifetime totals (accepted jobs and jobs
	// a worker finished) — the monotonic pair an observability layer
	// exports, where the instantaneous Queued/InFlight gauges can
	// never show load that came and went between scrapes.
	submitted atomic.Uint64
	completed atomic.Uint64
	// mu serializes Submit's closed-check-then-send against Close's
	// flag-set-then-close so a late Submit can never send on a closed
	// channel. Submitters share a read lock (the send itself is
	// non-blocking); Close takes the write lock.
	mu     sync.RWMutex
	closed bool
}

// NewPool starts a pool with the given worker count (<= 0 selects
// DefaultWorkers) and queue capacity (<= 0 selects 2x the workers).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if queue <= 0 {
		queue = 2 * workers
	}
	p := &Pool{jobs: make(chan func(), queue)}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.inFlight.Add(1)
				job()
				p.inFlight.Add(-1)
				p.completed.Add(1)
			}
		}()
	}
	return p
}

// Submit enqueues a job and returns a wait function that blocks until
// the job finishes (rethrowing the job's panic, if any). It returns
// ErrSaturated without enqueueing when the queue is full, and an
// error after Close.
func (p *Pool) Submit(job func()) (wait func(), err error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, errors.New("farm: pool closed")
	}
	done := make(chan any, 1)
	wrapped := func() {
		defer func() { done <- recover() }()
		job()
	}
	select {
	case p.jobs <- wrapped:
		p.submitted.Add(1)
		return func() {
			if r := <-done; r != nil {
				panic(r)
			}
		}, nil
	default:
		return nil, ErrSaturated
	}
}

// Queued returns the number of jobs waiting in the queue (not yet
// picked up by a worker).
func (p *Pool) Queued() int { return len(p.jobs) }

// InFlight returns the number of jobs currently executing on a
// worker. Queued()+InFlight() is the pool's instantaneous load.
func (p *Pool) InFlight() int { return int(p.inFlight.Load()) }

// Submitted returns the lifetime count of jobs accepted by Submit.
func (p *Pool) Submitted() uint64 { return p.submitted.Load() }

// Completed returns the lifetime count of jobs finished by a worker.
func (p *Pool) Completed() uint64 { return p.completed.Load() }

// Close stops accepting jobs and waits for queued ones to drain.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Package farm is the experiment run farm: a bounded worker pool that
// executes independent simulation runs across goroutines. A single
// simulation is strictly single-threaded by design (the kernels are
// deterministic state machines), but the experiment harnesses —
// Table 1 accuracy rows, ablation sweeps, scenario batteries — are
// embarrassingly parallel across runs, so multi-scenario experiments
// scale with cores instead of running one run at a time.
//
// Workers never share model state: every job builds its own platform
// (engine, memory, checker, stats) from its workload description, and
// results land in per-index slots, so runs stay bit-reproducible
// regardless of scheduling order.
package farm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes
// workers <= 0: one per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Do runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means DefaultWorkers). It returns when every call has
// finished. A panic in any call is re-raised on the caller's goroutine
// after the remaining jobs drain, so a model assertion failing inside a
// farmed run surfaces exactly like a serial one.
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: no goroutines, identical call order.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, fmt.Sprintf("farm: job %d panicked: %v", i, r))
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// and returns the results in index order. Scheduling order never
// affects the output: slot i always holds fn(i).
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Pair runs two independent functions concurrently (on two goroutines
// at most) and returns when both finish. It is the two-model harness
// shape: the same workload pushed through the pin-accurate model and
// the TLM at once.
func Pair(a, b func()) {
	Do(2, 2, func(i int) {
		if i == 0 {
			a()
		} else {
			b()
		}
	})
}

package farm

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	out := Map(4, 100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	Do(workers, 64, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, bound %d", p, workers)
	}
}

func TestDoRunsEveryJobExactlyOnce(t *testing.T) {
	counts := make([]atomic.Int64, 500)
	Do(0, len(counts), func(i int) { counts[i].Add(1) })
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("job %d ran %d times", i, counts[i].Load())
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	Do(4, 0, func(int) { t.Fatal("no job should run") })
}

func TestDoSerialFallback(t *testing.T) {
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestDoPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic payload %v", r)
		}
	}()
	Do(4, 16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestPairRunsBoth(t *testing.T) {
	var a, b bool
	Pair(func() { a = true }, func() { b = true })
	if !a || !b {
		t.Fatalf("a=%v b=%v", a, b)
	}
}

func TestPoolRunsSubmittedJobs(t *testing.T) {
	p := NewPool(2, 8)
	defer p.Close()
	var ran atomic.Int64
	var waits []func()
	for i := 0; i < 8; i++ {
		wait, err := p.Submit(func() { ran.Add(1) })
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		waits = append(waits, wait)
	}
	for _, w := range waits {
		w()
	}
	if ran.Load() != 8 {
		t.Fatalf("ran %d of 8", ran.Load())
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker...
	w1, err := p.Submit(func() { close(started); <-block })
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// ...fill the single queue slot...
	w2, err := p.Submit(func() {})
	if err != nil {
		t.Fatal(err)
	}
	// ...and the next submission must be refused, not queued.
	if _, err := p.Submit(func() {}); err != ErrSaturated {
		t.Fatalf("saturated submit: %v", err)
	}
	close(block)
	w1()
	w2()
	// Capacity freed: submissions flow again.
	w3, err := p.Submit(func() {})
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	w3()
}

func TestPoolJobPanicSurfacesOnWait(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()
	wait, err := p.Submit(func() { panic("kaboom") })
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(r.(string), "kaboom") {
				t.Errorf("recovered %v", r)
			}
		}()
		wait()
	}()
	// The worker survived the panic.
	w2, err := p.Submit(func() {})
	if err != nil {
		t.Fatal(err)
	}
	w2()
}

func TestPoolCloseRejectsNewJobs(t *testing.T) {
	p := NewPool(1, 1)
	p.Close()
	if _, err := p.Submit(func() {}); err == nil {
		t.Fatal("closed pool accepted a job")
	}
}

package farm

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	out := Map(4, 100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	Do(workers, 64, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, bound %d", p, workers)
	}
}

func TestDoRunsEveryJobExactlyOnce(t *testing.T) {
	counts := make([]atomic.Int64, 500)
	Do(0, len(counts), func(i int) { counts[i].Add(1) })
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("job %d ran %d times", i, counts[i].Load())
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	Do(4, 0, func(int) { t.Fatal("no job should run") })
}

func TestDoSerialFallback(t *testing.T) {
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestDoPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic payload %v", r)
		}
	}()
	Do(4, 16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestPairRunsBoth(t *testing.T) {
	var a, b bool
	Pair(func() { a = true }, func() { b = true })
	if !a || !b {
		t.Fatalf("a=%v b=%v", a, b)
	}
}

package farm

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	out := Map(4, 100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	Do(workers, 64, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, bound %d", p, workers)
	}
}

func TestDoRunsEveryJobExactlyOnce(t *testing.T) {
	counts := make([]atomic.Int64, 500)
	Do(0, len(counts), func(i int) { counts[i].Add(1) })
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("job %d ran %d times", i, counts[i].Load())
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	Do(4, 0, func(int) { t.Fatal("no job should run") })
}

func TestDoSerialFallback(t *testing.T) {
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestDoPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic payload %v", r)
		}
	}()
	Do(4, 16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestPairRunsBoth(t *testing.T) {
	var a, b bool
	Pair(func() { a = true }, func() { b = true })
	if !a || !b {
		t.Fatalf("a=%v b=%v", a, b)
	}
}

func TestPoolRunsSubmittedJobs(t *testing.T) {
	p := NewPool(2, 8)
	defer p.Close()
	var ran atomic.Int64
	var waits []func()
	for i := 0; i < 8; i++ {
		wait, err := p.Submit(func() { ran.Add(1) })
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		waits = append(waits, wait)
	}
	for _, w := range waits {
		w()
	}
	if ran.Load() != 8 {
		t.Fatalf("ran %d of 8", ran.Load())
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker...
	w1, err := p.Submit(func() { close(started); <-block })
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// ...fill the single queue slot...
	w2, err := p.Submit(func() {})
	if err != nil {
		t.Fatal(err)
	}
	// ...and the next submission must be refused, not queued.
	if _, err := p.Submit(func() {}); err != ErrSaturated {
		t.Fatalf("saturated submit: %v", err)
	}
	close(block)
	w1()
	w2()
	// Capacity freed: submissions flow again.
	w3, err := p.Submit(func() {})
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	w3()
}

func TestPoolJobPanicSurfacesOnWait(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()
	wait, err := p.Submit(func() { panic("kaboom") })
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(r.(string), "kaboom") {
				t.Errorf("recovered %v", r)
			}
		}()
		wait()
	}()
	// The worker survived the panic.
	w2, err := p.Submit(func() {})
	if err != nil {
		t.Fatal(err)
	}
	w2()
}

func TestPoolCloseRejectsNewJobs(t *testing.T) {
	p := NewPool(1, 1)
	p.Close()
	if _, err := p.Submit(func() {}); err == nil {
		t.Fatal("closed pool accepted a job")
	}
}

// TestPoolCloseWhileSaturated races Close against a crowd of
// submitters hammering a fully saturated pool. The invariants, best
// exercised under -race: no Submit ever panics (the closed-channel
// send Close guards against), every accepted job eventually runs
// (waits return), and Close itself returns. Run with -race.
func TestPoolCloseWhileSaturated(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the worker and fill the queue so every submitter below
	// lands on the saturated path while Close races them.
	w1, err := p.Submit(func() { close(started); <-block })
	if err != nil {
		t.Fatal(err)
	}
	<-started
	w2, err := p.Submit(func() {})
	if err != nil {
		t.Fatal(err)
	}

	const submitters = 8
	var (
		wg       sync.WaitGroup
		rejected atomic.Int64
		mu       sync.Mutex
		waits    []func()
	)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Bounded spin: enough iterations to straddle the
			// saturated phase, the drain and the Close, without
			// soaking the race detector for seconds.
			for n := 0; n < 5000; n++ {
				wait, err := p.Submit(func() {})
				switch {
				case err == nil:
					mu.Lock()
					waits = append(waits, wait)
					mu.Unlock()
				case err == ErrSaturated:
					rejected.Add(1)
				default:
					// Pool closed: the terminal state every submitter
					// lands in once Close wins the race.
					return
				}
			}
		}()
	}

	time.Sleep(10 * time.Millisecond) // submitters hammer the full queue
	close(block)                      // free the worker
	// Guarantee at least one post-drain acceptance before Close joins
	// the race.
	for {
		if wait, err := p.Submit(func() {}); err == nil {
			mu.Lock()
			waits = append(waits, wait)
			mu.Unlock()
			break
		}
	}
	p.Close()
	wg.Wait()

	// Every job the pool accepted must have run; its wait returns
	// instead of deadlocking on a dropped job.
	w1()
	w2()
	mu.Lock()
	defer mu.Unlock()
	for _, wait := range waits {
		wait()
	}
	if rejected.Load() == 0 {
		t.Error("saturation path never exercised")
	}
	if len(waits) == 0 {
		t.Error("acceptance path never exercised")
	}
}

func TestPoolInFlightTracksExecutingJobs(t *testing.T) {
	p := NewPool(2, 4)
	defer p.Close()
	if got := p.InFlight(); got != 0 {
		t.Fatalf("idle pool in-flight %d", got)
	}
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	var waits []func()
	for i := 0; i < 2; i++ {
		w, err := p.Submit(func() { started <- struct{}{}; <-block })
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, w)
	}
	<-started
	<-started
	// Both workers are executing; a queued job is load but not in-flight.
	wq, err := p.Submit(func() {})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.InFlight(); got != 2 {
		t.Fatalf("in-flight %d with both workers held, want 2", got)
	}
	if got := p.Queued(); got != 1 {
		t.Fatalf("queued %d, want 1", got)
	}
	close(block)
	for _, w := range waits {
		w()
	}
	wq()
	// Drained: in-flight settles back to zero (the worker decrements
	// after the job's wait function observes completion, so poll).
	for i := 0; i < 1000 && p.InFlight() != 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := p.InFlight(); got != 0 {
		t.Fatalf("drained pool in-flight %d", got)
	}
}

package trace

import (
	"strings"
	"testing"
)

func TestVCDHeader(t *testing.T) {
	var b strings.Builder
	v := NewVCD(&b)
	v.AddSignal("clk", 1)
	v.AddSignal("addr", 32)
	if err := v.Begin("top"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module top $end",
		"$var wire 1 ! clk $end",
		"$var wire 32 \" addr $end",
		"$enddefinitions $end",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("header missing %q:\n%s", want, out)
		}
	}
}

func TestVCDChangeOnlyEmission(t *testing.T) {
	var b strings.Builder
	v := NewVCD(&b)
	clk := v.AddSignal("clk", 1)
	if err := v.Begin("top"); err != nil {
		t.Fatal(err)
	}
	v.Sample(0, clk, 1)
	v.Sample(1, clk, 1) // unchanged: must not emit
	v.Sample(2, clk, 0)
	v.Flush()
	out := b.String()
	if !strings.Contains(out, "#0\n1!") {
		t.Fatalf("missing initial change:\n%s", out)
	}
	if strings.Contains(out, "#1") {
		t.Fatalf("unchanged sample emitted a timestamp:\n%s", out)
	}
	if !strings.Contains(out, "#2\n0!") {
		t.Fatalf("missing change at t=2:\n%s", out)
	}
}

func TestVCDVectorFormat(t *testing.T) {
	var b strings.Builder
	v := NewVCD(&b)
	addr := v.AddSignal("addr", 16)
	if err := v.Begin("top"); err != nil {
		t.Fatal(err)
	}
	v.Sample(5, addr, 0xAB)
	v.Flush()
	if !strings.Contains(b.String(), "b10101011 !") {
		t.Fatalf("vector change format wrong:\n%s", b.String())
	}
	// Values are masked to the declared width.
	v.Sample(6, addr, 0x1FFFF)
	v.Flush()
	if !strings.Contains(b.String(), "b1111111111111111 !") {
		t.Fatalf("width mask not applied:\n%s", b.String())
	}
}

func TestVCDIdCodesUnique(t *testing.T) {
	var b strings.Builder
	v := NewVCD(&b)
	for i := 0; i < 200; i++ {
		v.AddSignal(sname(i), 1)
	}
	if err := v.Begin("m"); err != nil {
		t.Fatal(err)
	}
	// 200 distinct codes must appear in the header.
	lines := strings.Split(b.String(), "\n")
	codes := map[string]bool{}
	for _, l := range lines {
		if strings.HasPrefix(l, "$var") {
			parts := strings.Fields(l)
			codes[parts[3]] = true
		}
	}
	if len(codes) != 200 {
		t.Fatalf("%d unique id codes, want 200", len(codes))
	}
	if got := v.SortedSignals(); len(got) != 200 {
		t.Fatalf("Signals() returned %d names", len(got))
	}
}

func sname(i int) string { return "s" + string(rune('a'+i%26)) + string(rune('0'+i%10)) }

func TestVCDMisuse(t *testing.T) {
	var b strings.Builder
	v := NewVCD(&b)
	id := v.AddSignal("x", 1)
	mustPanic(t, func() { NewVCD(&b).Sample(0, 0, 0) })
	mustPanic(t, func() { v.AddSignal("bad", 0) })
	if err := v.Begin("m"); err != nil {
		t.Fatal(err)
	}
	if err := v.Begin("m"); err == nil {
		t.Fatal("double Begin should error")
	}
	mustPanic(t, func() { v.AddSignal("late", 1) })
	v.Sample(0, id, 1) // still usable
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

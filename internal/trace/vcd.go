package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// VCD writes IEEE-1364 value-change-dump waveforms, the interchange
// format every waveform viewer reads. The pin-accurate model uses it
// to dump its AHB signals per cycle — the kind of EDA-tool integration
// the paper wires its profiling features into (§3.6).
type VCD struct {
	w       *bufio.Writer
	sigs    []vcdSignal
	started bool
	curTime uint64
	timeSet bool
}

type vcdSignal struct {
	name string
	bits int
	code string
	last uint64
	init bool
}

// SignalID identifies a registered signal.
type SignalID int

// NewVCD returns a writer targeting w.
func NewVCD(w io.Writer) *VCD {
	return &VCD{w: bufio.NewWriter(w)}
}

// idCode converts a signal index to a VCD identifier code (printable
// ASCII, base-94).
func idCode(i int) string {
	const lo, hi = 33, 127
	code := ""
	for {
		code += string(rune(lo + i%(hi-lo)))
		i /= hi - lo
		if i == 0 {
			return code
		}
	}
}

// AddSignal registers a signal before Begin. bits is the vector width
// (1 for a single wire).
func (v *VCD) AddSignal(name string, bits int) SignalID {
	if v.started {
		panic("trace: AddSignal after Begin")
	}
	if bits < 1 || bits > 64 {
		panic(fmt.Sprintf("trace: signal %q width %d outside [1,64]", name, bits))
	}
	v.sigs = append(v.sigs, vcdSignal{name: name, bits: bits, code: idCode(len(v.sigs))})
	return SignalID(len(v.sigs) - 1)
}

// Begin emits the VCD header. The timescale is one bus cycle = 1 ns by
// convention.
func (v *VCD) Begin(module string) error {
	if v.started {
		return fmt.Errorf("trace: Begin called twice")
	}
	v.started = true
	fmt.Fprintf(v.w, "$timescale 1ns $end\n$scope module %s $end\n", module)
	for _, s := range v.sigs {
		kind := "wire"
		fmt.Fprintf(v.w, "$var %s %d %s %s $end\n", kind, s.bits, s.code, s.name)
	}
	fmt.Fprintf(v.w, "$upscope $end\n$enddefinitions $end\n")
	return v.w.Flush()
}

// Sample records the value of id at time t. Only changes are emitted;
// time markers are emitted lazily when a change occurs.
func (v *VCD) Sample(t uint64, id SignalID, value uint64) {
	if !v.started {
		panic("trace: Sample before Begin")
	}
	s := &v.sigs[id]
	if s.bits < 64 {
		value &= (1 << s.bits) - 1
	}
	if s.init && s.last == value {
		return
	}
	if !v.timeSet || v.curTime != t {
		fmt.Fprintf(v.w, "#%d\n", t)
		v.curTime = t
		v.timeSet = true
	}
	s.last = value
	s.init = true
	if s.bits == 1 {
		fmt.Fprintf(v.w, "%d%s\n", value&1, s.code)
		return
	}
	fmt.Fprintf(v.w, "b%b %s\n", value, s.code)
}

// Flush drains buffered output.
func (v *VCD) Flush() error { return v.w.Flush() }

// Signals returns the registered signal names in registration order;
// useful for tests and tooling.
func (v *VCD) Signals() []string {
	out := make([]string, len(v.sigs))
	for i, s := range v.sigs {
		out[i] = s.name
	}
	return out
}

// SortedSignals returns the names sorted, for stable assertions.
func (v *VCD) SortedSignals() []string {
	out := v.Signals()
	sort.Strings(out)
	return out
}

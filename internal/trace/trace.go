// Package trace records per-transaction timelines for debugging and for
// the profiling integration the paper describes (§3.6). A Recorder is
// optional everywhere: a nil *Recorder records nothing at zero cost.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// Record is the full timeline of one transaction.
type Record struct {
	// ID is the bus-assigned transaction number.
	ID uint64
	// Master is the issuing port index.
	Master int
	// Addr is the first-beat address.
	Addr uint32
	// Write is the direction.
	Write bool
	// Beats is the burst length.
	Beats int
	// Req is the cycle the request became visible to the arbiter.
	Req sim.Cycle
	// Grant is the cycle the grant became visible to the master.
	Grant sim.Cycle
	// FirstData and Done bound the data phase.
	FirstData, Done sim.Cycle
	// Kind describes the DDR page outcome ("hit"/"miss"/"conflict"),
	// or "posted" for write-buffer absorbed writes.
	Kind string
}

// Recorder stores transaction records up to a cap.
type Recorder struct {
	// Cap limits stored records; 0 means unlimited.
	Cap int

	recs    []Record
	dropped uint64
}

// New returns a Recorder storing at most cap records (0 = unlimited).
func New(cap int) *Recorder { return &Recorder{Cap: cap} }

// Add stores r. A nil Recorder ignores the call.
func (t *Recorder) Add(r Record) {
	if t == nil {
		return
	}
	if t.Cap > 0 && len(t.recs) >= t.Cap {
		t.dropped++
		return
	}
	t.recs = append(t.recs, r)
}

// Records returns the stored records.
func (t *Recorder) Records() []Record {
	if t == nil {
		return nil
	}
	return t.recs
}

// Dropped returns how many records were discarded due to the cap.
func (t *Recorder) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// WriteText renders a fixed-width human-readable trace.
func (t *Recorder) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%6s %4s %3s %10s %5s %8s %8s %8s %8s %s\n",
		"id", "mst", "dir", "addr", "beats", "req", "grant", "first", "done", "kind")
	for _, r := range t.Records() {
		dir := "R"
		if r.Write {
			dir = "W"
		}
		fmt.Fprintf(w, "%6d %4d %3s %#10x %5d %8d %8d %8d %8d %s\n",
			r.ID, r.Master, dir, r.Addr, r.Beats,
			uint64(r.Req), uint64(r.Grant), uint64(r.FirstData), uint64(r.Done), r.Kind)
	}
}

// WriteCSV renders the trace as CSV with a header row.
func (t *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "master", "dir", "addr", "beats", "req", "grant", "first_data", "done", "kind"}); err != nil {
		return err
	}
	for _, r := range t.Records() {
		dir := "R"
		if r.Write {
			dir = "W"
		}
		row := []string{
			strconv.FormatUint(r.ID, 10),
			strconv.Itoa(r.Master),
			dir,
			fmt.Sprintf("%#x", r.Addr),
			strconv.Itoa(r.Beats),
			strconv.FormatUint(uint64(r.Req), 10),
			strconv.FormatUint(uint64(r.Grant), 10),
			strconv.FormatUint(uint64(r.FirstData), 10),
			strconv.FormatUint(uint64(r.Done), 10),
			r.Kind,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

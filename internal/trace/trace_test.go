package trace

import (
	"strings"
	"testing"
)

func sample() Record {
	return Record{ID: 1, Master: 2, Addr: 0x1000, Write: true, Beats: 4,
		Req: 10, Grant: 12, FirstData: 18, Done: 21, Kind: "miss"}
}

func TestRecorderStores(t *testing.T) {
	r := New(0)
	r.Add(sample())
	if len(r.Records()) != 1 {
		t.Fatalf("stored %d", len(r.Records()))
	}
}

func TestRecorderCap(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Add(Record{ID: uint64(i)})
	}
	if len(r.Records()) != 2 || r.Dropped() != 3 {
		t.Fatalf("stored=%d dropped=%d", len(r.Records()), r.Dropped())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(sample()) // must not panic
	if r.Records() != nil || r.Dropped() != 0 {
		t.Fatal("nil recorder state")
	}
}

func TestWriteText(t *testing.T) {
	r := New(0)
	r.Add(sample())
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{"0x1000", "W", "miss", "18", "21"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text trace missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	r := New(0)
	r.Add(sample())
	rec := sample()
	rec.ID, rec.Write = 2, false
	r.Add(rec)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines %d:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "id,master,dir") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], ",W,") || !strings.Contains(lines[2], ",R,") {
		t.Fatalf("direction columns wrong:\n%s", b.String())
	}
}

package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// scrape fetches and parses GET /metrics.
func scrape(t *testing.T, url string) []obs.Family {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q", ct)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

// findOne returns the single matching sample value or fails.
func findOne(t *testing.T, fams []obs.Family, name string, labels ...string) string {
	t.Helper()
	vals := obs.Find(fams, name, labels...)
	if len(vals) != 1 {
		t.Fatalf("%s%v: want one sample, got %v", name, labels, vals)
	}
	return vals[0]
}

func TestMetricsEndpointCountsDispositions(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	req := map[string]any{"spec": testSpec(90)}
	if status, _, body := post(t, ts.URL+"/run", req); status != http.StatusOK {
		t.Fatalf("miss status %d: %s", status, body)
	}
	if status, _, _ := post(t, ts.URL+"/run", req); status != http.StatusOK {
		t.Fatal("hit request failed")
	}

	fams := scrape(t, ts.URL)
	if v := findOne(t, fams, "simd_cache_requests_total", "tier", "miss"); v != "1" {
		t.Fatalf("miss tier = %s", v)
	}
	if v := findOne(t, fams, "simd_cache_requests_total", "tier", "memory_hit"); v != "1" {
		t.Fatalf("memory_hit tier = %s", v)
	}
	if v := findOne(t, fams, "simd_jobs_total"); v != "1" {
		t.Fatalf("jobs = %s", v)
	}
	if v := findOne(t, fams, "simd_http_requests_total", "endpoint", "/run", "code", "200"); v != "2" {
		t.Fatalf("/run 200 count = %s", v)
	}
	// The request-latency histogram saw both requests.
	if v := findOne(t, fams, "simd_http_request_seconds_count", "endpoint", "/run"); v != "2" {
		t.Fatalf("/run latency count = %s", v)
	}
	// The scrape itself is instrumented on the next scrape.
	fams2 := scrape(t, ts.URL)
	if v := findOne(t, fams2, "simd_http_requests_total", "endpoint", "/metrics", "code", "200"); v != "1" {
		t.Fatalf("/metrics self-count = %s", v)
	}
}

func TestMetricsCountsErrorsAndRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	fams := scrape(t, ts.URL)
	if v := findOne(t, fams, "simd_http_requests_total", "endpoint", "/run", "code", "400"); v != "1" {
		t.Fatalf("/run 400 count = %s", v)
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var v VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" || v.Pid == 0 {
		t.Fatalf("implausible version: %+v", v)
	}
	if v.UptimeSeconds < 0 {
		t.Fatalf("negative uptime: %+v", v)
	}
}

func TestRequestIDEchoAndMinting(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	// A valid client-supplied ID is honored verbatim.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "trace-me.42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "trace-me.42" {
		t.Fatalf("echoed rid = %q", got)
	}

	// No ID: one is minted and returned.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(obs.RequestIDHeader); got == "" {
		t.Fatal("no request ID minted")
	}

	// An invalid ID (embedded space) is replaced, not echoed.
	req3, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req3.Header.Set(obs.RequestIDHeader, "bad id")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get(obs.RequestIDHeader); got == "bad id" || got == "" {
		t.Fatalf("invalid rid handling: %q", got)
	}
}

func TestErrorBodyCarriesRequestID(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(`{"model":"tl"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "err-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var e struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != "err-trace-1" {
		t.Fatalf("error body rid = %q (body %s)", e.RequestID, body)
	}
}

func TestTimingHeaderOnMissAbsentOnHit(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := map[string]any{"spec": testSpec(91)}

	_, hdr1, _ := post(t, ts.URL+"/run", req)
	tm := hdr1.Get(TimingHeader)
	if tm == "" {
		t.Fatal("miss response has no X-Timing")
	}
	for _, stage := range []string{"queue=", "simulate=", "encode="} {
		if !strings.Contains(tm, stage) {
			t.Fatalf("X-Timing %q missing %s", tm, stage)
		}
	}

	_, hdr2, _ := post(t, ts.URL+"/run", req)
	if hdr2.Get("X-Cache") != "hit" {
		t.Fatalf("second request X-Cache = %q", hdr2.Get("X-Cache"))
	}
	if got := hdr2.Get(TimingHeader); got != "" {
		t.Fatalf("cache hit has X-Timing %q; a replayed body did no work to time", got)
	}
}

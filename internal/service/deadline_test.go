// Deadline and cycle-cap tests: the server-side request timeout (a
// simulation over budget is interrupted and answered 504, and the
// worker that ran it goes straight back to useful work) and the
// validation-time max_cycles cap.
package service

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// slowSpec is a workload guaranteed to outlive a small deadline: its
// stream master keeps issuing until cycle ~400k, and it runs the
// pin-accurate RTL model, so the simulator must chew through at least
// one full interrupt stride (2^18 cycles of per-cycle kernel work —
// milliseconds on any host) before the first deadline check can fire.
// The event-driven TLM would be useless here: it can clear the whole
// workload inside the deadline.
func slowSpec(salt int) map[string]any {
	sp := testSpec(salt)
	sp.Masters[1].Count = 20000
	sp.Masters[1].Period = 20
	return map[string]any{"spec": sp, "model": "rtl"}
}

func TestRequestDeadlineAnswers504WithoutPoisoningThePool(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, RequestTimeout: time.Millisecond})

	status, _, body := post(t, ts.URL+"/run", slowSpec(900))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("over-budget run: %d %s", status, body)
	}
	if !strings.Contains(string(body), "request deadline") {
		t.Fatalf("504 body %q does not name the deadline", body)
	}

	// A 504 is an abandoned computation, not a result: it must never be
	// cached or persisted, so the identical request recomputes (and
	// deterministically exceeds the deadline again).
	status, hdr, _ := post(t, ts.URL+"/run", slowSpec(900))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("repeat over-budget run: %d", status)
	}
	if hdr.Get("X-Cache") == "hit" {
		t.Fatal("an interrupted simulation was served from cache")
	}

	// The ONE worker that was interrupted must be back in the pool
	// serving normal traffic — an interrupt that leaked the worker
	// would wedge this request forever (well, until the test timeout).
	status, _, body = post(t, ts.URL+"/run", map[string]any{"spec": testSpec(901), "model": "tl"})
	if status != http.StatusOK {
		t.Fatalf("post-interrupt run: %d %s", status, body)
	}
}

func TestRequestDeadlineAppliesToCompareAndSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, RequestTimeout: time.Millisecond})

	req := slowSpec(910)
	delete(req, "model")
	status, _, body := post(t, ts.URL+"/compare", req)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("over-budget compare: %d %s", status, body)
	}

	// Sweep rows ride the same job path: an over-budget variant becomes
	// an error row naming the deadline, never a hung stream.
	sweepReq := map[string]any{
		"base":  slowSpec(911)["spec"],
		"model": "rtl",
		"axes": []map[string]any{
			{"param": "bi_enabled", "values": []bool{true}},
		},
	}
	_, rows, summary := sweepBody(t, ts.URL, sweepReq)
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	if summary.Errors != 1 || !strings.Contains(rows[0].Error, "request deadline") {
		t.Fatalf("row error %q summary %+v, want a deadline error row", rows[0].Error, summary)
	}
}

func TestMaxCyclesCapRejectsAtValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxCycles: 100_000})

	sp := testSpec(920)
	sp.MaxCycles = 1_000_000_000
	status, _, body := post(t, ts.URL+"/run", map[string]any{"spec": sp, "model": "tl"})
	if status != http.StatusBadRequest || !strings.Contains(string(body), "exceeds the server cap") {
		t.Fatalf("over-cap /run: %d %s", status, body)
	}

	// The same cap guards every variant of a sweep and an analyze — a
	// pathological budget must not slip in through the grid.
	grid := map[string]any{
		"base":  sp,
		"model": "tl",
		"axes": []map[string]any{
			{"param": "bi_enabled", "values": []bool{true, false}},
		},
	}
	status, _, body = post(t, ts.URL+"/sweep", grid)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "exceeds the server cap") {
		t.Fatalf("over-cap /sweep: %d %s", status, body)
	}
	grid["metric"] = "cycles"
	status, _, body = post(t, ts.URL+"/sweep/analyze", grid)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "exceeds the server cap") {
		t.Fatalf("over-cap /sweep/analyze: %d %s", status, body)
	}

	// In budget: flows normally.
	sp.MaxCycles = 50_000
	status, _, body = post(t, ts.URL+"/run", map[string]any{"spec": sp, "model": "tl"})
	if status != http.StatusOK {
		t.Fatalf("in-budget /run: %d %s", status, body)
	}
}

func FuzzRetryWait(f *testing.F) {
	for _, seed := range []string{"", "0", "1", "-3", "60", "2.5", "garbage",
		"Fri, 31 Dec 1999 23:59:59 GMT", "9223372036854775807", "99999999999999999999", "-9223372036854775808"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, header string) {
		wait := RetryWait(header)
		// The one invariant every caller relies on: whatever the header
		// said — garbage, overflow, negative — the sleep lands in
		// [MinRetryWait, MaxRetryWait]. Anything below hammers a
		// saturated pool; anything above parks a sweep worker.
		if wait < MinRetryWait || wait > MaxRetryWait {
			t.Fatalf("RetryWait(%q) = %v outside [%v, %v]", header, wait, MinRetryWait, MaxRetryWait)
		}
	})
}

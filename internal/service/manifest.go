// Sweep manifests: the named-checkpoint layer under POST /sweep.
//
// Every sweep has a deterministic identity — the SHA-256 of its base
// spec's content hash, name prefix, canonical model and axes — and a
// compact manifest (per-variant done/failed bitmaps) persisted
// through the SAME two-tier cache path as simulation results: atomic
// disk writes, checksum-verified reads, corruption degrades to an
// honest miss. The manifest is observability and resume metadata,
// never an optimization the correctness of a stream depends on: a
// resume replays every variant past the client's high-water mark
// (done ones as cache hits), so a stale, torn or missing manifest can
// lose bookkeeping but can never silently shrink a grid.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/agg"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// Headers of the checkpointed-sweep protocol.
const (
	// SweepIDHeader carries the sweep's deterministic identity on
	// /sweep, /sweep/analyze and resume responses.
	SweepIDHeader = "X-Sweep-ID"
	// ResultKeyHeader names the store key of a result body POSTed to
	// /results (the router's stolen-variant write-back).
	ResultKeyHeader = "X-Result-Key"
	// StolenHeader tags a write-back with "owner->thief" shard
	// indices — the router's work-stealing audit trail.
	StolenHeader = "X-Stolen"
)

// SweepID derives the sweep's deterministic identity: a SHA-256 over
// the base spec's content hash, the name prefix, the canonical model
// and the axes. Every tier computes it the same way from the same
// request, so a client can POST /sweep against a single process,
// lose the connection, and resume the same id against a cluster.
func SweepID(req SweepRequest, byName map[string]spec.Spec) (string, error) {
	base, err := resolveSweepBase(req, byName)
	if err != nil {
		return "", err
	}
	baseHash, err := base.Hash()
	if err != nil {
		return "", err
	}
	model, compare, err := sweepModel(req.Model)
	if err != nil {
		return "", err
	}
	canon := strings.ToLower(model.String())
	if compare {
		canon = "compare"
	}
	doc, err := json.Marshal(struct {
		V     int         `json:"v"`
		Base  string      `json:"base"`
		Name  string      `json:"name,omitempty"`
		Model string      `json:"model"`
		Axes  []SweepAxis `json:"axes"`
	}{1, baseHash, req.Name, canon, req.Axes})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}

// SweepManifest is the persisted checkpoint of one sweep: the request
// that defines it (so a bare id can be resumed or re-analyzed with no
// grid in hand) plus per-variant progress bitmaps indexed by the
// variant's Cartesian coordinate. At 100k variants the two bitmaps
// cost ~25 KB — a checkpoint is one small store write, not a row log.
type SweepManifest struct {
	// Version guards the wire shape; readers reject what they don't
	// speak rather than misread progress.
	Version int `json:"version"`
	// ID is the sweep's deterministic identity (SweepID of Request).
	ID string `json:"id"`
	// Request is the defining sweep request, verbatim.
	Request SweepRequest `json:"request"`
	// Total is the grid's full Cartesian product — the bitmaps' index
	// space.
	Total int `json:"total"`
	// Variants is the deduplicated variant count, recorded after a
	// complete walk (0 until then). Done+Failed reach it exactly when
	// every distinct variant has a row.
	Variants int `json:"variants,omitempty"`
	// Done marks variants whose result row was emitted successfully.
	Done *sweep.Bitset `json:"done"`
	// Failed marks variants whose last row carried an error. A later
	// success clears the bit.
	Failed *sweep.Bitset `json:"failed"`
}

// Normalize resets bitmaps that disagree with the manifest's own
// grid size: a shape mismatch means the bits describe some other
// grid, and claiming zero progress is honest where claiming theirs
// is not. Every reader of an externally-sourced manifest — the store
// tiers, a PUT body, the router's cluster fetch — runs it before
// trusting the bits.
func (m *SweepManifest) Normalize() {
	if m.Done.Len() != m.Total {
		m.Done = sweep.NewBitset(m.Total)
	}
	if m.Failed.Len() != m.Total {
		m.Failed = sweep.NewBitset(m.Total)
	}
}

// SweepStatus is the body of GET /sweep/{id}: the manifest plus
// derived progress counts.
type SweepStatus struct {
	SweepManifest
	// DoneCount and FailedCount are the bitmap populations.
	DoneCount   int `json:"done_count"`
	FailedCount int `json:"failed_count"`
	// Complete reports that every deduplicated variant has a row. It
	// stays false until some stream has walked the full grid once
	// (Variants is unknown before that).
	Complete bool `json:"complete"`
}

// Status derives the wire status from the manifest.
func (m *SweepManifest) Status() SweepStatus {
	done, failed := m.Done.Count(), m.Failed.Count()
	return SweepStatus{
		SweepManifest: *m,
		DoneCount:     done,
		FailedCount:   failed,
		Complete:      m.Variants > 0 && done+failed >= m.Variants,
	}
}

// manifestKey is the store key a sweep's manifest lives under.
func manifestKey(id string) string { return "sweep:" + id }

// loadManifest reads and validates the manifest for id from the
// cache tiers. Corruption at any layer — store checksum, JSON shape,
// id mismatch, bitmap size — degrades to (nil, false), which the
// handlers surface as 404: the client's honest fallback is re-POSTing
// the sweep, whose deterministic id rebuilds the same manifest with a
// full re-enumeration (mostly cache hits).
func (s *Server) loadManifest(id string) (*SweepManifest, bool) {
	body, ok := s.lookup(manifestKey(id))
	if !ok {
		return nil, false
	}
	var m SweepManifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, false
	}
	if m.Version != 1 || m.ID != id || m.Total <= 0 || m.Total > sweep.MaxVariants {
		return nil, false
	}
	m.Normalize()
	return &m, true
}

// loadOrNewManifest resumes the stored manifest when its grid size
// still matches, otherwise starts a fresh one.
func (s *Server) loadOrNewManifest(id string, req SweepRequest, total int) *SweepManifest {
	if m, ok := s.loadManifest(id); ok && m.Total == total {
		return m
	}
	return &SweepManifest{
		Version: 1, ID: id, Request: req, Total: total,
		Done: sweep.NewBitset(total), Failed: sweep.NewBitset(total),
	}
}

// checkpointManifest persists m, first merging the stored copy's
// progress bits (concurrent streams of the same sweep — or a router
// write-through racing a local stream — union instead of clobbering
// each other). The store write is atomic (tmp+rename), so a SIGKILL
// mid-checkpoint leaves the previous manifest intact, never a torn
// one.
func (s *Server) checkpointManifest(m *SweepManifest) {
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	if prev, ok := s.loadManifest(m.ID); ok && prev.Total == m.Total {
		m.Done.Or(prev.Done)
		m.Failed.Or(prev.Failed)
		if m.Variants == 0 {
			m.Variants = prev.Variants
		}
	}
	// A success anywhere outranks a failure anywhere: a variant that
	// failed in one stream and completed in another is done.
	m.Failed.AndNot(m.Done)
	body, err := json.Marshal(m)
	if err != nil {
		return
	}
	s.persist(manifestKey(m.ID), body)
	s.sweepCheckpoints.Inc()
}

// handleSweepStatus serves /sweep/{id}: GET returns the manifest with
// derived progress counts; PUT (the router's checkpoint write-through)
// merge-persists a manifest into this shard's store.
func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		m, ok := s.loadManifest(id)
		if !ok {
			s.writeError(w, r, http.StatusNotFound, "unknown sweep %q (re-POST the grid to /sweep to rebuild it)", id)
			return
		}
		body, err := json.Marshal(m.Status())
		if err != nil {
			s.writeError(w, r, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set(SweepIDHeader, id)
		s.writeBody(w, http.StatusOK, body, "", "")
	case http.MethodPut:
		raw, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		var m SweepManifest
		if err := json.Unmarshal(raw, &m); err != nil {
			s.writeError(w, r, http.StatusBadRequest, "parsing manifest: %v", err)
			return
		}
		if m.Version != 1 || m.ID != id || m.Total <= 0 || m.Total > sweep.MaxVariants {
			s.writeError(w, r, http.StatusBadRequest, "manifest does not describe sweep %q", id)
			return
		}
		m.Normalize()
		s.checkpointManifest(&m)
		w.WriteHeader(http.StatusNoContent)
	default:
		s.writeError(w, r, http.StatusMethodNotAllowed, "GET or PUT required")
	}
}

// handleSweepResume serves GET /sweep/{id}/resume?after=N: the stored
// sweep's NDJSON stream restricted to variants with Index > N. The
// semantics are replay, not delta — every variant past the offset
// streams again regardless of manifest bits (done ones at cache
// speed), so duplicate offsets are idempotent and a lost checkpoint
// can never turn into a silent gap. after defaults to -1 (the whole
// grid).
func (s *Server) handleSweepResume(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	after := -1
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "after=%q is not an integer", q)
			return
		}
		after = n
	}
	if after < -1 {
		after = -1
	}
	id := r.PathValue("id")
	m, ok := s.loadManifest(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "unknown sweep %q (re-POST the grid to /sweep to rebuild it)", id)
		return
	}
	s.sweepResumes.Inc()
	rid, err := s.requestIdent(r, sched.Batch)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	s.streamSweep(w, r, m.Request, after, rid)
}

// handleSweepStoredAnalyze serves POST /sweep/{id}/analyze: the
// analysis selector in the body is applied to the STORED sweep's
// grid. A completed sweep re-analyzes with zero simulations — every
// variant is a cache tier hit — and the document is byte-identical
// to POST /sweep/analyze with the full grid inlined, because both
// run the same collect-and-aggregate path.
func (s *Server) handleSweepStoredAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var sel agg.Request
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sel); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "parsing analysis selector: %v", err)
		return
	}
	id := r.PathValue("id")
	m, ok := s.loadManifest(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "unknown sweep %q (re-POST the grid to /sweep to rebuild it)", id)
		return
	}
	aid, err := s.requestIdent(r, sched.Batch)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	s.analyzeGrid(w, r, AnalyzeRequest{SweepRequest: m.Request, Request: sel}, aid)
}

// handleResults serves the router's stolen-variant side channel.
// POST is the write-back: the body is a complete result envelope
// (the exact bytes a /run or /compare of that spec would answer) and
// X-Result-Key names the store key — the same content-addressed key
// a local simulation would have persisted under, so ownership-based
// cache placement holds even when another shard did the work.
// GET ?key=<result-key> is the probe: before a thief re-simulates a
// queued variant it asks whether the owner already holds the bytes —
// 200 with X-Cache: hit when it does, 404 when the work is genuinely
// cold. GET ?prefix=<p> is the enumeration the router's drain path
// walks: every stored key with that prefix (empty prefix: all keys),
// as {"keys":[...]}, disk keys most-recent-first followed by any
// memory-only stragglers. Exact fetches still require a well-formed
// result key.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && r.URL.Query().Has("prefix") {
		body, err := json.Marshal(struct {
			Keys []string `json:"keys"`
		}{Keys: s.enumerateKeys(r.URL.Query().Get("prefix"))})
		if err != nil {
			s.writeError(w, r, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return
	}
	if r.Method == http.MethodGet {
		key := r.URL.Query().Get("key")
		if !ValidResultKey(key) {
			s.writeError(w, r, http.StatusBadRequest, "key %q is not a result key", key)
			return
		}
		body, ok := s.lookup(key)
		if !ok {
			s.writeError(w, r, http.StatusNotFound, "no stored result under %q", key)
			return
		}
		s.writeBody(w, http.StatusOK, body, "hit", "")
		return
	}
	if r.Method != http.MethodPost {
		s.writeError(w, r, http.StatusMethodNotAllowed, "GET or POST required")
		return
	}
	key := r.Header.Get(ResultKeyHeader)
	if !ValidResultKey(key) {
		s.writeError(w, r, http.StatusBadRequest, "%s %q is not a result key", ResultKeyHeader, key)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) == 0 || !json.Valid(body) {
		s.writeError(w, r, http.StatusBadRequest, "body is not a JSON result")
		return
	}
	s.persist(key, body)
	s.stolenResults.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// enumerateKeys lists every key this shard holds under prefix: the
// disk store's keys most-recent-first, then any keys only the memory
// cache holds (a store-less shard, or a race where the memory tier
// runs ahead). The union is what a drain must migrate — missing a
// memory-only key would silently cool a result its owner had warm.
func (s *Server) enumerateKeys(prefix string) []string {
	keys := []string{}
	seen := map[string]struct{}{}
	if s.disk != nil {
		for _, k := range s.disk.Enumerate(prefix) {
			keys = append(keys, k)
			seen[k] = struct{}{}
		}
	}
	for _, k := range s.cache.keys() {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if _, ok := seen[k]; !ok {
			keys = append(keys, k)
		}
	}
	return keys
}

// ResultKey maps a model selector ("", "tl", "tlm", "rtl",
// "compare") and a spec content hash to the content-addressed key
// that result is cached and persisted under. It is the export the
// shard router's write-back uses, so a stolen result lands under
// exactly the key the owner's own simulation would have written.
func ResultKey(model string, hash string) (string, error) {
	if !validSpecHash(hash) {
		return "", fmt.Errorf("%q is not a spec content hash", hash)
	}
	m, compare, err := sweepModel(model)
	if err != nil {
		return "", err
	}
	if compare {
		return compareKey(hash), nil
	}
	return runKey(m, hash), nil
}

// ValidResultKey reports whether key names a result slot /results
// accepts: run:TL:<hash>, run:RTL:<hash> or compare:<hash>.
func ValidResultKey(key string) bool {
	for _, prefix := range []string{"run:TL:", "run:RTL:", "compare:"} {
		if rest, ok := strings.CutPrefix(key, prefix); ok {
			return validSpecHash(rest)
		}
	}
	return false
}

// validSpecHash reports whether s looks like a SHA-256 content hash.
func validSpecHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/sweep"
)

// sweepLine distinguishes the two NDJSON line shapes: data rows never
// set done, the terminal summary always does.
type sweepLine struct {
	SweepRow
	Done bool `json:"done"`
}

// sweepBody posts a /sweep request, decodes every NDJSON data row and
// requires the stream to end with a well-formed terminal summary —
// the completion marker whose absence means truncation.
func sweepBody(t *testing.T, url string, req any) (http.Header, []SweepRow, SweepSummary) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var rows []SweepRow
	summary, done, err := DecodeSweepStream(resp.Body, func(line []byte) error {
		var row SweepRow
		if err := json.Unmarshal(line, &row); err != nil {
			return err
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("stream ended without a terminal summary (%d rows) — truncated", len(rows))
	}
	errored := 0
	for _, r := range rows {
		if r.Error != "" {
			errored++
		}
	}
	if summary.Rows != len(rows) || summary.Errors != errored {
		t.Fatalf("summary %+v vs %d rows / %d errors received", summary, len(rows), errored)
	}
	return resp.Header, rows, summary
}

// gridRequest is the canonical 8-variant test grid (4 depths × 2
// interleaving settings) over the small test workload.
func gridRequest(salt int) map[string]any {
	return map[string]any{
		"base":  testSpec(salt),
		"name":  "grid/test",
		"model": "tl",
		"axes": []map[string]any{
			{"param": "write_buffer_depth", "values": []int{0, 2, 4, 8}},
			{"param": "bi_enabled", "values": []bool{true, false}},
		},
	}
}

func TestSweepGridStreamsEveryVariant(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 4, Queue: 64})
	hdr, rows, _ := sweepBody(t, ts.URL, gridRequest(20))
	if got := hdr.Get("X-Sweep-Variants"); got != "8" {
		t.Fatalf("X-Sweep-Variants = %q", got)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	seenHash := map[string]bool{}
	seenIndex := map[int]bool{}
	for _, row := range rows {
		if row.Error != "" {
			t.Fatalf("row %s: %s", row.Name, row.Error)
		}
		if row.Cache != "miss" {
			t.Errorf("cold row %s disposition %q", row.Name, row.Cache)
		}
		if !strings.HasPrefix(row.Name, "grid/test/") {
			t.Errorf("row name %q", row.Name)
		}
		if seenHash[row.Hash] || seenIndex[row.Index] {
			t.Errorf("duplicate row %s (#%d)", row.Hash, row.Index)
		}
		seenHash[row.Hash] = true
		seenIndex[row.Index] = true
		var res RunResponse
		if err := json.Unmarshal(row.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.Cycles == 0 || !res.Completed || res.Hash != row.Hash {
			t.Errorf("row %s implausible result %+v", row.Name, res)
		}
		depth, ok := row.Params["write_buffer_depth"].(float64)
		if !ok || depth < 0 || depth > 8 {
			t.Errorf("row %s params %v", row.Name, row.Params)
		}
	}
	if jobs := srv.CountersSnapshot().Jobs; jobs != 8 {
		t.Fatalf("cold grid ran %d jobs, want 8", jobs)
	}

	// A repeat of the whole grid is served entirely from the cache —
	// zero new simulations — and byte-identical per variant.
	first := map[string]json.RawMessage{}
	for _, row := range rows {
		first[row.Hash] = row.Result
	}
	_, rows2, _ := sweepBody(t, ts.URL, gridRequest(20))
	if len(rows2) != 8 {
		t.Fatalf("warm sweep %d rows", len(rows2))
	}
	for _, row := range rows2 {
		if row.Cache != "hit" {
			t.Errorf("warm row %s disposition %q", row.Name, row.Cache)
		}
		if !bytes.Equal(row.Result, first[row.Hash]) {
			t.Errorf("warm row %s differs from cold result", row.Name)
		}
	}
	if jobs := srv.CountersSnapshot().Jobs; jobs != 8 {
		t.Fatalf("warm grid grew jobs to %d", jobs)
	}
}

func TestSweepSharesResultSpaceWithRun(t *testing.T) {
	// A /sweep row and a direct /run of the identical variant spec are
	// one cache entry: the sweep warms /run and vice versa.
	srv, ts := newTestServer(t, Options{Workers: 2})
	vs := sweep.MustExpand(sweep.Grid{
		Name: "grid/test", Base: testSpec(21),
		Axes: []sweep.Axis{
			{Param: sweep.ParamWriteBufferDepth, Values: []sweep.Value{{V: 0}, {V: 2}, {V: 4}, {V: 8}}},
			{Param: sweep.ParamBIEnabled, Values: []sweep.Value{{V: true}, {V: false}}},
		},
	})
	if len(vs) != 8 {
		t.Fatalf("engine expanded %d variants", len(vs))
	}
	status, hdr, runBody := post(t, ts.URL+"/run", map[string]any{"spec": vs[3].Spec, "model": "tl"})
	if status != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("priming run: %d %q", status, hdr.Get("X-Cache"))
	}

	_, rows, _ := sweepBody(t, ts.URL, gridRequest(21))
	var primed *SweepRow
	for i := range rows {
		if rows[i].Hash == vs[3].Hash {
			primed = &rows[i]
		}
	}
	if primed == nil {
		t.Fatal("primed variant missing from sweep")
	}
	if primed.Cache != "hit" || !bytes.Equal(primed.Result, runBody) {
		t.Fatalf("primed row: cache %q, identical %v", primed.Cache, bytes.Equal(primed.Result, runBody))
	}
	if jobs := srv.CountersSnapshot().Jobs; jobs != 8 {
		t.Fatalf("jobs %d, want 8 (1 run + 7 sweep misses)", jobs)
	}
}

// TestSweepStreamsIncrementally proves rows arrive before the grid
// finishes: with the pool fully saturated by foreign jobs, the
// already-cached variants of a grid must stream back while the
// uncached one is still waiting for capacity.
func TestSweepStreamsIncrementally(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, Queue: 1})

	// Cache 7 of the 8 variants through direct runs.
	vs := sweep.MustExpand(sweep.Grid{
		Name: "grid/test", Base: testSpec(22),
		Axes: []sweep.Axis{
			{Param: sweep.ParamWriteBufferDepth, Values: []sweep.Value{{V: 0}, {V: 2}, {V: 4}, {V: 8}}},
			{Param: sweep.ParamBIEnabled, Values: []sweep.Value{{V: true}, {V: false}}},
		},
	})
	for _, v := range vs[:7] {
		status, _, body := post(t, ts.URL+"/run", map[string]any{"spec": v.Spec, "model": "tl"})
		if status != http.StatusOK {
			t.Fatalf("priming %s: %d %s", v.Spec.Name, status, body)
		}
	}

	// Saturate the pool: worker held, queue slot filled.
	block := make(chan struct{})
	started := make(chan struct{})
	w1, err := srv.sched.Submit("t", sched.Interactive, func() { close(started); <-block })
	if err != nil {
		t.Fatal(err)
	}
	<-started
	w2, err := srv.sched.Submit("t", sched.Interactive, func() {})
	if err != nil {
		t.Fatal(err)
	}

	buf, _ := json.Marshal(gridRequest(22))
	resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// The 7 cached rows must stream while the pool is still blocked —
	// reading them would deadlock here if the server buffered the
	// whole grid before flushing.
	type scanned struct {
		row sweepLine
		err error
	}
	lines := make(chan scanned)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var row sweepLine
			err := json.Unmarshal(sc.Bytes(), &row)
			lines <- scanned{row, err}
		}
		close(lines)
	}()
	for i := 0; i < 7; i++ {
		select {
		case got, ok := <-lines:
			if !ok || got.err != nil {
				t.Fatalf("stream ended early at row %d (%v)", i, got.err)
			}
			if got.row.Cache != "hit" {
				t.Fatalf("blocked-pool row %d disposition %q", i, got.row.Cache)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("cached rows did not stream while the pool was saturated")
		}
	}
	select {
	case got, ok := <-lines:
		if ok {
			t.Fatalf("uncached row arrived with the pool saturated: %+v", got.row)
		}
		t.Fatal("stream closed with the last variant unserved")
	case <-time.After(100 * time.Millisecond):
		// The last row is correctly still pending.
	}

	// Free the pool: the final row completes the stream, followed by
	// the terminal summary.
	close(block)
	w1()
	w2()
	got, ok := <-lines
	if !ok || got.err != nil {
		t.Fatalf("final row: %v (%v)", ok, got.err)
	}
	if got.row.Cache != "miss" || got.row.Error != "" {
		t.Fatalf("final row %+v", got.row)
	}
	last, ok := <-lines
	if !ok || !last.row.Done {
		t.Fatalf("terminal summary missing: %v %+v", ok, last.row)
	}
	if _, more := <-lines; more {
		t.Fatal("extra rows after the terminal summary")
	}
	// The sweep retried the saturated pool internally; none of those
	// attempts was a 503 response, so the backpressure metric must not
	// have moved.
	if got := srv.CountersSnapshot().Rejected; got != 0 {
		t.Fatalf("sweep retries inflated Rejected to %d", got)
	}
}

func TestSweepTerminatesWhenPoolCloses(t *testing.T) {
	// A closed pool is terminal, not "busy": the sweep must emit error
	// rows and end the stream instead of retrying 503s forever (which
	// would hang graceful shutdown on the in-flight handler).
	srv, ts := newTestServer(t, Options{Workers: 1, Queue: 4})
	srv.sched.Close()

	// The timeout is the hang detector: a sweep that retries the
	// closed pool forever trips it instead of wedging the test.
	client := &http.Client{Timeout: 10 * time.Second}
	buf, _ := json.Marshal(gridRequest(25))
	resp, err := client.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []SweepRow
	var summary SweepSummary
	done := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line sweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done {
			json.Unmarshal(sc.Bytes(), &summary)
			done = true
			continue
		}
		rows = append(rows, line.SweepRow)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream never terminated cleanly: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	for _, row := range rows {
		if row.Error == "" || !strings.Contains(row.Error, "shutting down") {
			t.Fatalf("row %s error %q", row.Name, row.Error)
		}
	}
	// Every row failed, and the terminal summary says so: a client can
	// tell "8 failures, complete" apart from a truncated stream.
	if !done || summary.Rows != 8 || summary.Errors != 8 {
		t.Fatalf("terminal summary: done=%v %+v", done, summary)
	}

	// The plain request path still answers a crisp 503, marked
	// X-Terminal so machine clients (the shard router) fail over
	// instead of backing off against a dying server.
	status, hdr, body := post(t, ts.URL+"/run", map[string]any{"spec": testSpec(25), "model": "tl"})
	if status != http.StatusServiceUnavailable || !strings.Contains(string(body), "shutting down") {
		t.Fatalf("closed-pool /run: %d %s", status, body)
	}
	if hdr.Get("X-Terminal") != "1" {
		t.Fatalf("shutdown 503 without X-Terminal (headers %v)", hdr)
	}
}

func TestSweepRequestShapeErrors(t *testing.T) {
	// MaxSweepVariants is lowered so the "oversized" case trips the
	// configurable cap without enumerating 100k axis values.
	_, ts := newTestServer(t, Options{Workers: 1, MaxSweepVariants: 256})
	cases := []struct {
		name string
		req  any
		want string
	}{
		{"empty", map[string]any{}, "base spec or a scenario"},
		{"both", map[string]any{"base": testSpec(23), "scenario": "seq/read-dominant"}, "both"},
		{"unknown scenario", map[string]any{"scenario": "no/such"}, "unknown scenario"},
		{"bad model", map[string]any{"base": testSpec(23), "model": "spice"}, "unknown model"},
		{"unknown param", map[string]any{"base": testSpec(23),
			"axes": []map[string]any{{"param": "warp", "values": []int{1}}}}, "unknown sweep parameter"},
		{"no values", map[string]any{"base": testSpec(23),
			"axes": []map[string]any{{"param": "pipelining"}}}, "no values"},
		{"oversized", map[string]any{"base": testSpec(23),
			"axes": []map[string]any{{"param": "write_buffer_depth", "values": bigValues(300)}}},
			"variants"},
	}
	for _, c := range cases {
		buf, _ := json.Marshal(c.req)
		resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), c.want) {
			t.Errorf("%s: status %d body %s", c.name, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /sweep: %d", resp.StatusCode)
	}
}

// bigValues builds n distinct axis values.
func bigValues(n int) []int {
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	return vals
}

func TestSweepCompareModelCarriesAccuracyDelta(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	req := map[string]any{
		"base":  testSpec(24),
		"name":  "grid/cmp",
		"model": "compare",
		"axes": []map[string]any{
			{"param": "pipelining", "values": []bool{true, false}},
		},
	}
	_, rows, _ := sweepBody(t, ts.URL, req)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		var res CompareResponse
		if err := json.Unmarshal(row.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.RTLCycles == 0 || res.TLMCycles == 0 || !res.Completed {
			t.Fatalf("row %s compare result %+v", row.Name, res)
		}
	}
}

func TestSweepScenarioBase(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	req := map[string]any{
		"scenario": "seq/read-dominant",
		"model":    "tl",
		"axes": []map[string]any{
			{"param": "write_buffer_depth", "values": []int{0, 8}},
		},
	}
	_, rows, _ := sweepBody(t, ts.URL, req)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		if !strings.HasPrefix(row.Name, "seq/read-dominant/") || row.Error != "" {
			t.Fatalf("row %+v", row)
		}
	}
}

// --- disk store integration ---

func TestStoreServesAcrossRestartByteIdentically(t *testing.T) {
	dir := t.TempDir()
	sp := testSpec(30)

	srv1, ts1 := newTestServer(t, Options{Workers: 2, StoreDir: dir})
	status, hdr, body1 := post(t, ts1.URL+"/run", map[string]any{"spec": sp, "model": "tl"})
	if status != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first run: %d %q", status, hdr.Get("X-Cache"))
	}
	if st := srv1.disk.StatsSnapshot(); st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("cold store counters %+v (disk probed more than once per request?)", st)
	}
	ts1.Close()
	srv1.Close()

	// A brand-new process over the same store directory: the result
	// replays from disk with hit semantics and zero simulations.
	srv2, ts2 := newTestServer(t, Options{Workers: 2, StoreDir: dir})
	status, hdr, body2 := post(t, ts2.URL+"/run", map[string]any{"spec": sp, "model": "tl"})
	if status != http.StatusOK {
		t.Fatalf("restarted run: %d", status)
	}
	if hdr.Get("X-Cache") != "hit" {
		t.Fatalf("restarted X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("restart lost byte identity:\n%s\n%s", body1, body2)
	}
	c := srv2.CountersSnapshot()
	if c.Jobs != 0 || c.StoreHits != 1 || c.CacheHits != 1 {
		t.Fatalf("restarted counters %+v", c)
	}
	// Disk probes are one-per-request: the restarted server's single
	// request cost exactly one store hit and no misses, and the
	// original cold request cost its store exactly one miss.
	if st := srv2.disk.StatsSnapshot(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("restarted store counters %+v", st)
	}

	// The second request is a pure memory hit (the store promotion).
	_, hdr, _ = post(t, ts2.URL+"/run", map[string]any{"spec": sp, "model": "tl"})
	if hdr.Get("X-Cache") != "hit" {
		t.Fatalf("promoted X-Cache = %q", hdr.Get("X-Cache"))
	}
	if c := srv2.CountersSnapshot(); c.StoreHits != 1 {
		t.Fatalf("promotion went back to disk: %+v", c)
	}
}

func TestStoreBacksTinyMemoryCache(t *testing.T) {
	// With a one-entry memory LRU, alternating specs evict each other
	// constantly; the disk tier keeps every replay a hit.
	srv, ts := newTestServer(t, Options{Workers: 2, CacheEntries: 1, StoreDir: t.TempDir()})
	a := map[string]any{"spec": testSpec(31), "model": "tl"}
	b := map[string]any{"spec": testSpec(32), "model": "tl"}
	post(t, ts.URL+"/run", a)
	post(t, ts.URL+"/run", b) // evicts a from memory
	_, hdr, _ := post(t, ts.URL+"/run", a)
	if hdr.Get("X-Cache") != "hit" {
		t.Fatalf("a after eviction: X-Cache = %q", hdr.Get("X-Cache"))
	}
	c := srv.CountersSnapshot()
	if c.Jobs != 2 || c.StoreHits == 0 {
		t.Fatalf("counters %+v", c)
	}
}

func TestHealthzReportsStore(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, StoreDir: t.TempDir()})
	post(t, ts.URL+"/run", map[string]any{"spec": testSpec(33), "model": "tl"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Store *struct {
			Entries int   `json:"entries"`
			Bytes   int64 `json:"bytes"`
			Writes  uint64
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Store == nil || h.Store.Entries != 1 || h.Store.Bytes == 0 {
		t.Fatalf("healthz store section %+v", h.Store)
	}
}

func TestNewRejectsUnusableStoreDir(t *testing.T) {
	// A store path that collides with an existing file cannot open.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{StoreDir: file}); err == nil {
		t.Fatal("New accepted a file as a store directory")
	}
}

func TestSweepClientDisconnectStopsRetriesAndFreesPool(t *testing.T) {
	// A sweep whose client vanishes mid-stream must not keep retrying
	// the saturated pool in the background: cancelling the request
	// context has to stop the per-variant retry loops, release the
	// sweep's goroutines and leave the pool usable — with no goroutine
	// leaked per abandoned sweep.
	srv, ts := newTestServer(t, Options{Workers: 1, Queue: 1})

	// Saturate the pool so every variant of the sweep is stuck in its
	// retry-with-backoff loop (nothing cached, no capacity). The
	// blocker is released through a Once registered BEFORE any Fatal
	// path, so a failed assertion can never leave srv.Close (the
	// t.Cleanup above) waiting on the held worker forever.
	block := make(chan struct{})
	var unblock sync.Once
	release := func() { unblock.Do(func() { close(block) }) }
	defer release()
	started := make(chan struct{})
	w1, err := srv.sched.Submit("t", sched.Interactive, func() { close(started); <-block })
	if err != nil {
		t.Fatal(err)
	}
	<-started
	w2, err := srv.sched.Submit("t", sched.Interactive, func() {})
	if err != nil {
		t.Fatal(err)
	}

	// A dedicated transport: its only connection dies with the cancel,
	// so the goroutine baseline isn't polluted by shared keep-alives.
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf, _ := json.Marshal(gridRequest(26))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sweep", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("status %d", resp.StatusCode)
	}

	// The stream is committed but no row can complete; give the sweep
	// a moment to spin up its retry loops, then hang up.
	time.Sleep(50 * time.Millisecond)
	cancel()
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tr.CloseIdleConnections()

	// Every sweep goroutine must unwind. Poll: goroutine teardown is
	// asynchronous with the response error surfacing to the client.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		stack := make([]byte, 1<<20)
		t.Fatalf("goroutines %d > baseline %d after disconnect\n%s",
			got, baseline, stack[:runtime.Stack(stack, true)])
	}

	// The pool was not poisoned: drain it and the service runs new work.
	release()
	w1()
	w2()
	status, _, body := post(t, ts.URL+"/run", map[string]any{"spec": testSpec(27), "model": "tl"})
	if status != http.StatusOK {
		t.Fatalf("post-disconnect run: %d %s", status, body)
	}
}

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/sched"
	"repro/internal/spec"
)

// testSpec returns a small distinct workload; vary salt to defeat the
// cache.
func testSpec(salt int) spec.Spec {
	return spec.Spec{
		SpecVersion: spec.Version,
		Name:        fmt.Sprintf("svc/test-%d", salt),
		Params:      config.Default(2),
		Masters: []spec.GenSpec{
			{Kind: spec.KindSequential, Base: 0, Beats: 8, Count: 20 + salt, Gap: 2},
			{Kind: spec.KindStream, Base: 0x80000, Beats: 4, Period: 40, Count: 20},
		},
	}
}

// newTestServer returns a server plus its httptest frontend.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// post sends a JSON request body and returns status, headers, body.
func post(t *testing.T, url string, req any) (int, http.Header, []byte) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	status, hdr, body := post(t, ts.URL+"/run", map[string]any{"spec": testSpec(0), "model": "tl"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first request X-Cache = %q", hdr.Get("X-Cache"))
	}
	var res RunResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || !res.Completed || res.Model != "TL" {
		t.Fatalf("implausible result: %+v", res)
	}
	wantHash, _ := testSpec(0).Hash()
	if res.Hash != wantHash || hdr.Get("X-Spec-Hash") != wantHash {
		t.Fatalf("hash mismatch: %s vs %s", res.Hash, wantHash)
	}
	if res.Stats == nil || res.Stats.TotalTxns() == 0 {
		t.Fatal("stats missing")
	}

	// Both models, distinct cache keys.
	status2, _, body2 := post(t, ts.URL+"/run", map[string]any{"spec": testSpec(0), "model": "rtl"})
	if status2 != http.StatusOK {
		t.Fatalf("rtl status %d: %s", status2, body2)
	}
	var res2 RunResponse
	if err := json.Unmarshal(body2, &res2); err != nil {
		t.Fatal(err)
	}
	if res2.Model != "RTL" || res2.Cycles == 0 {
		t.Fatalf("rtl result: %+v", res2)
	}
}

func TestRepeatRequestServedByteIdenticalFromCache(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	req := map[string]any{"spec": testSpec(1)}
	status1, hdr1, body1 := post(t, ts.URL+"/compare", req)
	if status1 != http.StatusOK {
		t.Fatalf("status %d: %s", status1, body1)
	}
	if hdr1.Get("X-Cache") != "miss" {
		t.Fatalf("first X-Cache = %q", hdr1.Get("X-Cache"))
	}
	jobsAfterFirst := srv.CountersSnapshot().Jobs

	status2, hdr2, body2 := post(t, ts.URL+"/compare", req)
	if status2 != http.StatusOK {
		t.Fatalf("status %d", status2)
	}
	if hdr2.Get("X-Cache") != "hit" {
		t.Fatalf("repeat X-Cache = %q", hdr2.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached body differs:\n%s\n%s", body1, body2)
	}
	c := srv.CountersSnapshot()
	if c.Jobs != jobsAfterFirst {
		t.Fatalf("repeat request re-simulated: %d -> %d jobs", jobsAfterFirst, c.Jobs)
	}
	if c.CacheHits == 0 {
		t.Fatal("cache hit not counted")
	}
}

func TestConcurrentDuplicatesCoalesceIntoOneSimulation(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 4, Queue: 64})
	const dups = 16
	req := map[string]any{"spec": testSpec(2)}

	var wg sync.WaitGroup
	bodies := make([][]byte, dups)
	statuses := make([]int, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/compare", "application/json", bytes.NewReader(buf))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	for i := 0; i < dups; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	c := srv.CountersSnapshot()
	if c.Jobs != 1 {
		t.Fatalf("%d duplicate submissions ran %d simulations, want 1", dups, c.Jobs)
	}
	if c.Coalesced+c.CacheHits != dups-1 {
		t.Fatalf("coalesced %d + hits %d != %d", c.Coalesced, c.CacheHits, dups-1)
	}

	// And afterwards the result is cached: one more request, still one job.
	_, hdr, _ := post(t, ts.URL+"/compare", req)
	if hdr.Get("X-Cache") != "hit" {
		t.Fatalf("post-coalesce X-Cache = %q", hdr.Get("X-Cache"))
	}
	if got := srv.CountersSnapshot().Jobs; got != 1 {
		t.Fatalf("jobs grew to %d", got)
	}
}

func TestScenarioByName(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	status, _, body := post(t, ts.URL+"/compare", map[string]any{"scenario": "seq/read-dominant"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var res CompareResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Name != "seq/read-dominant" || res.RTLCycles == 0 || res.TLMCycles == 0 || !res.Completed {
		t.Fatalf("result %+v", res)
	}

	status, _, body = post(t, ts.URL+"/compare", map[string]any{"scenario": "no/such"})
	if status != http.StatusBadRequest || !strings.Contains(string(body), "unknown scenario") {
		t.Fatalf("unknown scenario: status %d body %s", status, body)
	}
}

func TestScenariosListing(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []ScenarioInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(spec.Scenarios()) {
		t.Fatalf("%d scenarios listed", len(infos))
	}
	for _, info := range infos {
		if info.Name == "" || len(info.Hash) != 64 || info.Masters == 0 {
			t.Fatalf("bad entry %+v", info)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 3, Queue: 7})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		OK       bool `json:"ok"`
		Workers  int  `json:"workers"`
		QueueCap int  `json:"queue_capacity"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Workers != 3 || h.QueueCap != 7 {
		t.Fatalf("healthz %+v", h)
	}
}

func TestValidationErrorsAreDescriptive(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	bad := testSpec(3)
	bad.Masters[0].Count = 0
	bad.Masters[0].Beats = 0
	status, _, body := post(t, ts.URL+"/run", map[string]any{"spec": bad})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d: %s", status, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	// Both problems reported at once.
	if !strings.Contains(e.Error, "count") || !strings.Contains(e.Error, "beats") {
		t.Fatalf("error not descriptive: %q", e.Error)
	}
}

func TestRequestShapeErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		req  any
		want string
	}{
		{"empty", map[string]any{}, "spec or a scenario"},
		{"both", map[string]any{"spec": testSpec(4), "scenario": "seq/read-dominant"}, "both"},
		{"bad model", map[string]any{"spec": testSpec(4), "model": "spice"}, "unknown model"},
	}
	for _, c := range cases {
		status, _, body := post(t, ts.URL+"/run", c.req)
		if status != http.StatusBadRequest || !strings.Contains(string(body), c.want) {
			t.Errorf("%s: status %d body %s", c.name, status, body)
		}
	}
	// Unknown fields rejected (strict decode).
	status, _, body := post(t, ts.URL+"/compare", map[string]any{"spce": testSpec(4)})
	if status != http.StatusBadRequest {
		t.Errorf("typo'd field accepted: %d %s", status, body)
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: %d", resp.StatusCode)
	}
}

func TestBackpressureRejectsWhenSaturated(t *testing.T) {
	// One worker, one queue slot. Saturate the pool deterministically
	// (the worker held on a channel, the queue slot filled); a
	// submission arriving now must get 503 with Retry-After rather
	// than queue unboundedly, and capacity must flow again after the
	// queue drains.
	srv, ts := newTestServer(t, Options{Workers: 1, Queue: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	w1, err := srv.sched.Submit("t", sched.Interactive, func() { close(started); <-block })
	if err != nil {
		t.Fatal(err)
	}
	<-started
	w2, err := srv.sched.Submit("t", sched.Interactive, func() {})
	if err != nil {
		t.Fatal(err)
	}

	buf, _ := json.Marshal(map[string]any{"spec": testSpec(10)})
	resp, err := http.Post(ts.URL+"/compare", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated service answered %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := srv.CountersSnapshot().Rejected; got != 1 {
		t.Fatalf("rejection counter %d", got)
	}

	// Drain the pool: the same request must now run (not be poisoned
	// by the earlier rejection's flight bookkeeping).
	close(block)
	w1()
	w2()
	status, hdr, body := post(t, ts.URL+"/compare", map[string]any{"spec": testSpec(10)})
	if status != http.StatusOK {
		t.Fatalf("post-drain status %d: %s", status, body)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("post-drain X-Cache = %q", hdr.Get("X-Cache"))
	}
}

func TestSaturatedDuplicatesAllGet503(t *testing.T) {
	// With the pool saturated, concurrent identical requests race
	// between becoming the (rejected) flight leader and coalescing
	// onto it. Whichever side each lands on, every response must be a
	// real 503 with a JSON error body — a coalesced waiter must never
	// observe the rejected flight as a zero-valued response.
	srv, ts := newTestServer(t, Options{Workers: 1, Queue: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	w1, err := srv.sched.Submit("t", sched.Interactive, func() { close(started); <-block })
	if err != nil {
		t.Fatal(err)
	}
	<-started
	w2, err := srv.sched.Submit("t", sched.Interactive, func() {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); w1(); w2() }()

	buf, _ := json.Marshal(map[string]any{"spec": testSpec(11)})
	for round := 0; round < 20; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/compare", "application/json", bytes.NewReader(buf))
				if err != nil {
					t.Errorf("round %d: %v", round, err)
					return
				}
				defer resp.Body.Close()
				body, _ := io.ReadAll(resp.Body)
				if resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("round %d: status %d body %q", round, resp.StatusCode, body)
				}
				if !bytes.Contains(body, []byte("saturated")) {
					t.Errorf("round %d: body %q", round, body)
				}
			}()
		}
		wg.Wait()
		if t.Failed() {
			return
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	c.get("a") // refresh a; b is now LRU
	c.put("c", []byte("3"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || string(v) != "1" {
		t.Fatal("a lost")
	}
	if c.len() != 2 {
		t.Fatalf("len %d", c.len())
	}
}

// healthz fetches and decodes GET /healthz.
func healthz(t *testing.T, url string) Health {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestRetryAfterScalesWithPoolLoad(t *testing.T) {
	// The Retry-After a 503 carries is derived from the pool's actual
	// backlog, not a constant: a saturated pool must tell clients to
	// back off longer than an idle one, so retries thin out exactly
	// when the server is deepest under water.
	srv, ts := newTestServer(t, Options{Workers: 1, Queue: 4})
	idle := healthz(t, ts.URL)
	if !idle.OK || idle.RetryAfter != 1 {
		t.Fatalf("idle health %+v, want retry_after 1", idle)
	}
	if idle.Pid != os.Getpid() {
		t.Fatalf("health pid %d", idle.Pid)
	}

	// Hold the worker and fill every queue slot: backlog 5 on 1 worker.
	block := make(chan struct{})
	started := make(chan struct{})
	waits := []func(){}
	w, err := srv.sched.Submit("t", sched.Interactive, func() { close(started); <-block })
	if err != nil {
		t.Fatal(err)
	}
	waits = append(waits, w)
	<-started
	for i := 0; i < 4; i++ {
		w, err := srv.sched.Submit("t", sched.Interactive, func() {})
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, w)
	}

	sat := healthz(t, ts.URL)
	if sat.RetryAfter <= idle.RetryAfter {
		t.Fatalf("saturated retry_after %d not above idle %d", sat.RetryAfter, idle.RetryAfter)
	}
	if sat.Queued != 4 || sat.InFlight != 1 {
		t.Fatalf("saturated occupancy %+v", sat)
	}

	// A rejected request's header carries the same live number.
	buf, _ := json.Marshal(map[string]any{"spec": testSpec(40)})
	resp, err := http.Post(ts.URL+"/compare", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated status %d", resp.StatusCode)
	}
	got, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || got != sat.RetryAfter {
		t.Fatalf("503 Retry-After %q, healthz said %d", resp.Header.Get("Retry-After"), sat.RetryAfter)
	}

	close(block)
	for _, w := range waits {
		w()
	}
}

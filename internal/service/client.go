// The backend client: the typed HTTP face of one simd worker process,
// extracted from the handler wire types so every frontend — the shard
// router, smoke harnesses, operational tooling — speaks to a backend
// through one vocabulary instead of hand-rolled requests. The client
// is deliberately thin: a backend's responses are deterministic and
// byte-addressed, so the router forwards bodies verbatim and this
// client never re-encodes what a backend said.
package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/agg"
	"repro/internal/obs"
	"repro/internal/spec"
)

// The one retry/backoff vocabulary for every client of a saturated
// backend — the shard router's sweep fan-out and the service's own
// in-process sweep rows both wait through RetryWait, so the two paths
// cannot drift apart again.
//
// MinRetryWait floors the sleep (Retry-After is integer seconds, so
// "0" means "soon", not "busy-loop"); MaxRetryWait caps it whatever
// the header advertised; DefaultRetryWait is used when the header is
// missing or unparseable — a 503 that advertised SOMETHING we cannot
// read still said "busy", and the honest response is the wait a
// minimally loaded server would have asked for (1s), not the floor.
const (
	MinRetryWait     = 50 * time.Millisecond
	MaxRetryWait     = 5 * time.Second
	DefaultRetryWait = time.Second
)

// Tenant-aware scheduling headers — the wire form of the identity the
// weighted-fair scheduler (internal/sched) queues by. Both are
// optional on every endpoint: a request without them is tenant
// "default" in the endpoint's natural class (interactive for /run and
// /compare, batch for the sweep family).
const (
	// DefaultTenantHeader names the header carrying the caller's tenant
	// for fair-share accounting (Options.TenantHeader overrides the
	// name per deployment). Values must match [A-Za-z0-9._-]{1,64}.
	DefaultTenantHeader = "X-Tenant"
	// ClassHeader carries the scheduling class, "interactive" or
	// "batch" — it overrides the endpoint's default class, letting a
	// latency-sensitive scripted sweep run interactive or a bulk /run
	// replay demote itself to batch.
	ClassHeader = "X-Class"
)

// RetryWait maps a 503's Retry-After header value onto the backoff a
// retry loop should sleep. Integer seconds are honored and clamped to
// [MinRetryWait, MaxRetryWait]; a missing or unparseable value (an
// HTTP-date, garbage) yields DefaultRetryWait rather than silently
// falling through to the floor and hammering a saturated pool.
func RetryWait(header string) time.Duration {
	secs, err := strconv.Atoi(header)
	if err != nil || secs < 0 {
		return DefaultRetryWait
	}
	return RetryWaitSeconds(secs)
}

// RetryWaitSeconds clamps an advertised whole-second wait to
// [MinRetryWait, MaxRetryWait] — the in-process form of RetryWait for
// callers that hold the number itself (the service's own sweep
// retries) rather than a header to parse.
func RetryWaitSeconds(secs int) time.Duration {
	// Cap before multiplying: a huge advertised wait must clamp to
	// MaxRetryWait, not overflow time.Duration into the 50ms floor and
	// hammer the one backend that asked for the most patience.
	if secs > int(MaxRetryWait/time.Second) {
		return MaxRetryWait
	}
	wait := time.Duration(secs) * time.Second
	if wait < MinRetryWait {
		return MinRetryWait
	}
	return wait
}

// SleepRetryAfter waits out RetryWait(header); false means ctx ended
// first.
func SleepRetryAfter(ctx context.Context, header string) bool {
	return sleepFor(ctx, RetryWait(header))
}

// sleepFor sleeps d unless ctx ends first.
func sleepFor(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Client speaks the simd HTTP API to one backend server.
type Client struct {
	// Base is the backend's root URL (no trailing slash), e.g.
	// "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport; nil selects http.DefaultClient.
	HTTP *http.Client
}

// maxClientBodyBytes bounds a backend response read; simulation
// bodies are small, so anything past this is a protocol violation,
// not a result.
const maxClientBodyBytes = 16 << 20

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Do sends one request and returns the status, headers and body. A
// non-2xx status is NOT an error — the caller routes on it (503 means
// back off, 400 means the request was bad); err is reserved for
// transport failure, the signal that the backend itself is
// unreachable. header entries (may be nil) are copied onto the
// request — the write-back and manifest paths ride their protocol
// headers through here.
func (c *Client) Do(ctx context.Context, method, path string, body []byte, header http.Header) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	for name, vals := range header {
		for _, v := range vals {
			req.Header.Add(name, v)
		}
	}
	// Propagate the caller's request ID (the shard router puts the
	// front-door ID in ctx), so one ID traces a request through every
	// hop — router access log, backend log, backend error body.
	if rid := obs.RequestIDFrom(ctx); rid != "" {
		req.Header.Set(obs.RequestIDHeader, rid)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxClientBodyBytes))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, out, nil
}

// PostJSON posts raw JSON to path (e.g. "/run"); same contract as Do.
func (c *Client) PostJSON(ctx context.Context, path string, body []byte) (int, http.Header, []byte, error) {
	return c.Do(ctx, http.MethodPost, path, body, http.Header{"Content-Type": {"application/json"}})
}

// RunSpec submits one inline spec to POST /run (model "tl", "rtl" or
// "" for the default).
func (c *Client) RunSpec(ctx context.Context, sp spec.Spec, model string) (int, http.Header, []byte, error) {
	body, err := json.Marshal(RunRequest{Spec: &sp, Model: model})
	if err != nil {
		return 0, nil, nil, err
	}
	return c.PostJSON(ctx, "/run", body)
}

// CompareSpec submits one inline spec to POST /compare.
func (c *Client) CompareSpec(ctx context.Context, sp spec.Spec) (int, http.Header, []byte, error) {
	body, err := json.Marshal(RunRequest{Spec: &sp})
	if err != nil {
		return 0, nil, nil, err
	}
	return c.PostJSON(ctx, "/compare", body)
}

// AnalyzeSweep submits a grid to POST /sweep/analyze and decodes the
// analysis document. A non-2xx status returns the error body's
// message; the raw body is returned alongside so callers that assert
// byte-identity across deployments (the smokes) can compare exactly
// what the server said.
func (c *Client) AnalyzeSweep(ctx context.Context, req AnalyzeRequest) (*agg.Analysis, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	status, _, respBody, err := c.PostJSON(ctx, "/sweep/analyze", body)
	if err != nil {
		return nil, nil, err
	}
	if status != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(respBody, &e) == nil && e.Error != "" {
			return nil, respBody, fmt.Errorf("service: analyze status %d: %s", status, e.Error)
		}
		return nil, respBody, fmt.Errorf("service: analyze status %d", status)
	}
	var doc agg.Analysis
	if err := json.Unmarshal(respBody, &doc); err != nil {
		return nil, respBody, fmt.Errorf("service: decoding analysis: %w", err)
	}
	return &doc, respBody, nil
}

// DecodeSweepStream consumes an NDJSON /sweep response body: onRow is
// invoked with each raw data line — callers decode into their own row
// shape (SweepRow for a backend stream, the shard router's row for a
// cluster stream) and may abort by returning an error. The terminal
// summary line is decoded and returned with done=true; done=false
// with a nil error means the stream ended WITHOUT a summary and must
// be treated as truncated. This is the one parser for the terminal-row
// protocol — smokes, tests and tools all read sweep streams through
// it, so a protocol change cannot silently diverge between readers.
func DecodeSweepStream(body io.Reader, onRow func(line []byte) error) (summary SweepSummary, done bool, err error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if done {
			return summary, done, fmt.Errorf("service: line after the terminal summary: %q", line)
		}
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return summary, false, fmt.Errorf("service: sweep line %q: %w", line, err)
		}
		if probe.Done {
			if err := json.Unmarshal(line, &summary); err != nil {
				return summary, false, fmt.Errorf("service: sweep summary %q: %w", line, err)
			}
			done = true
			continue
		}
		if onRow != nil {
			if err := onRow(line); err != nil {
				return summary, false, err
			}
		}
	}
	return summary, done, sc.Err()
}

// FetchHealth reads and decodes the backend's GET /healthz.
func (c *Client) FetchHealth(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return Health{}, fmt.Errorf("healthz status %d: %s", resp.StatusCode, body)
	}
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxClientBodyBytes)).Decode(&h); err != nil {
		return Health{}, err
	}
	return h, nil
}

// EnumerateResults lists every store key the backend holds under
// prefix (GET /results?prefix=...) — the drain path's work list. An
// empty prefix lists everything.
func (c *Client) EnumerateResults(ctx context.Context, prefix string) ([]string, error) {
	status, _, body, err := c.Do(ctx, http.MethodGet, "/results?prefix="+url.QueryEscape(prefix), nil, nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("enumerate status %d: %s", status, body)
	}
	var out struct {
		Keys []string `json:"keys"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("enumerate: %w", err)
	}
	return out.Keys, nil
}

// FetchResult fetches one stored result body by its exact store key
// (GET /results?key=...). ok=false with a nil error means the backend
// answered 404 — the key is genuinely absent, which enumeration races
// (a concurrent GC) make an ordinary outcome, not a failure.
func (c *Client) FetchResult(ctx context.Context, key string) (body []byte, ok bool, err error) {
	status, _, respBody, err := c.Do(ctx, http.MethodGet, "/results?key="+url.QueryEscape(key), nil, nil)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case http.StatusOK:
		return respBody, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	}
	return nil, false, fmt.Errorf("fetch %q status %d: %s", key, status, respBody)
}

// The backend client: the typed HTTP face of one simd worker process,
// extracted from the handler wire types so every frontend — the shard
// router, smoke harnesses, operational tooling — speaks to a backend
// through one vocabulary instead of hand-rolled requests. The client
// is deliberately thin: a backend's responses are deterministic and
// byte-addressed, so the router forwards bodies verbatim and this
// client never re-encodes what a backend said.
package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/spec"
)

// Client speaks the simd HTTP API to one backend server.
type Client struct {
	// Base is the backend's root URL (no trailing slash), e.g.
	// "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport; nil selects http.DefaultClient.
	HTTP *http.Client
}

// maxClientBodyBytes bounds a backend response read; simulation
// bodies are small, so anything past this is a protocol violation,
// not a result.
const maxClientBodyBytes = 16 << 20

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// PostJSON posts raw JSON to path (e.g. "/run") and returns the
// status, headers and body. A non-2xx status is NOT an error — the
// caller routes on it (503 means back off, 400 means the request was
// bad); err is reserved for transport failure, the signal that the
// backend itself is unreachable.
func (c *Client) PostJSON(ctx context.Context, path string, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxClientBodyBytes))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, out, nil
}

// RunSpec submits one inline spec to POST /run (model "tl", "rtl" or
// "" for the default).
func (c *Client) RunSpec(ctx context.Context, sp spec.Spec, model string) (int, http.Header, []byte, error) {
	body, err := json.Marshal(RunRequest{Spec: &sp, Model: model})
	if err != nil {
		return 0, nil, nil, err
	}
	return c.PostJSON(ctx, "/run", body)
}

// CompareSpec submits one inline spec to POST /compare.
func (c *Client) CompareSpec(ctx context.Context, sp spec.Spec) (int, http.Header, []byte, error) {
	body, err := json.Marshal(RunRequest{Spec: &sp})
	if err != nil {
		return 0, nil, nil, err
	}
	return c.PostJSON(ctx, "/compare", body)
}

// DecodeSweepStream consumes an NDJSON /sweep response body: onRow is
// invoked with each raw data line — callers decode into their own row
// shape (SweepRow for a backend stream, the shard router's row for a
// cluster stream) and may abort by returning an error. The terminal
// summary line is decoded and returned with done=true; done=false
// with a nil error means the stream ended WITHOUT a summary and must
// be treated as truncated. This is the one parser for the terminal-row
// protocol — smokes, tests and tools all read sweep streams through
// it, so a protocol change cannot silently diverge between readers.
func DecodeSweepStream(body io.Reader, onRow func(line []byte) error) (summary SweepSummary, done bool, err error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if done {
			return summary, done, fmt.Errorf("service: line after the terminal summary: %q", line)
		}
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return summary, false, fmt.Errorf("service: sweep line %q: %w", line, err)
		}
		if probe.Done {
			if err := json.Unmarshal(line, &summary); err != nil {
				return summary, false, fmt.Errorf("service: sweep summary %q: %w", line, err)
			}
			done = true
			continue
		}
		if onRow != nil {
			if err := onRow(line); err != nil {
				return summary, false, err
			}
		}
	}
	return summary, done, sc.Err()
}

// FetchHealth reads and decodes the backend's GET /healthz.
func (c *Client) FetchHealth(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return Health{}, fmt.Errorf("healthz status %d: %s", resp.StatusCode, body)
	}
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxClientBodyBytes)).Decode(&h); err != nil {
		return Health{}, err
	}
	return h, nil
}

// The worker's metric vocabulary: every simd_* series GET /metrics
// exposes, registered once at construction. Almost everything is a
// callback metric read at scrape time from counters the serving path
// already maintains (the healthz atomics, the scheduler, the store),
// so
// instrumentation adds nothing to the hot path beyond what /healthz
// already paid — the kernel-side zero-alloc contract
// (BenchmarkSchedulerPostDispatch) is untouched by construction.
package service

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/store"
)

// Timing is the per-stage breakdown of one computed (cache-miss)
// response: queue wait (submission to worker pickup), simulate
// (kernel time) and encode (result marshalling). Carried on /run,
// /compare and coalesced responses as the X-Timing header.
type Timing struct {
	Queue    time.Duration
	Simulate time.Duration
	Encode   time.Duration
}

// TimingHeader is the response header carrying a computed response's
// stage breakdown.
const TimingHeader = "X-Timing"

// Header renders the X-Timing value: semicolon-separated stage=dur
// pairs, each parseable with time.ParseDuration.
func (t *Timing) Header() string {
	return "queue=" + t.Queue.String() + ";simulate=" + t.Simulate.String() + ";encode=" + t.Encode.String()
}

// initMetrics registers the server's metric families. Called once
// from New, after the scheduler, cache and store exist.
func (s *Server) initMetrics() {
	reg := obs.NewRegistry()
	s.reg = reg
	s.httpMetrics = obs.NewHTTPMetrics(reg, "simd_")

	// Cache dispositions per tier, derived from the healthz atomics.
	// memory_hit is hits minus storeHits (disk hits increment both);
	// loading storeHits first guarantees the subtraction never sees a
	// disk hit's second increment without its first.
	tiers := reg.CounterVec("simd_cache_requests_total", "Cache lookups by disposition tier.", "tier")
	tiers.Func(func() uint64 {
		sh := s.storeHits.Load()
		return s.hits.Load() - sh
	}, "memory_hit")
	tiers.Func(s.storeHits.Load, "disk_hit")
	tiers.Func(s.coalesced.Load, "coalesced")
	tiers.Func(s.jobs.Load, "miss")

	reg.CounterFunc("simd_jobs_total", "Simulation jobs executed.", s.jobs.Load)
	reg.CounterFunc("simd_rejections_total", "Requests refused 503 under backpressure.", s.rejected.Load)
	reg.CounterFunc("simd_timeouts_total", "Simulations aborted 504 at the request deadline.", s.timeouts.Load)

	reg.GaugeFunc("simd_pool_workers", "Worker pool size.", func() float64 { return float64(s.workers) })
	reg.GaugeFunc("simd_pool_queue_capacity", "Bounded job-queue capacity per scheduling class.", func() float64 { return float64(s.queue) })
	reg.GaugeFunc("simd_pool_queue_depth", "Jobs waiting in scheduler queues, all classes.", func() float64 { return float64(s.sched.Queued()) })
	reg.GaugeFunc("simd_pool_in_flight", "Jobs executing on a worker.", func() float64 { return float64(s.sched.InFlight()) })
	reg.CounterFunc("simd_pool_jobs_submitted_total", "Jobs admitted by the scheduler.", s.sched.Admitted)
	reg.CounterFunc("simd_pool_jobs_completed_total", "Jobs finished by a worker.", s.sched.Completed)

	// The weighted-fair scheduler's own vocabulary. Depth and wait are
	// pushed by the scheduler's observer hooks (called under its lock,
	// so a scrape always sees a depth the scheduler actually had);
	// per-class dispatch/rejection counters and in-flight read the
	// snapshot at scrape time.
	depth := reg.GaugeVec("simd_sched_queue_depth", "Queued jobs per tenant and class.", "tenant", "class")
	waits := reg.HistogramVec("simd_sched_wait_seconds", "Queue wait from admission to worker pickup.", obs.DefTimeBuckets, "class")
	rejects := reg.CounterVec("simd_sched_rejections_total", "Submissions refused at a full class queue.", "class")
	inFlight := reg.GaugeVec("simd_sched_in_flight", "Jobs executing on a worker per class.", "class")
	dispatched := reg.CounterVec("simd_sched_dispatched_total", "Jobs handed to a worker per class.", "class")
	classWait := make([]*obs.Histogram, len(sched.Classes()))
	for _, c := range sched.Classes() {
		classWait[c] = waits.With(c.String())
		cl := c
		inFlight.Func(func() float64 {
			return float64(s.sched.Snapshot().Classes[cl].InFlight)
		}, cl.String())
		dispatched.Func(func() uint64 {
			return s.sched.Snapshot().Classes[cl].Dispatched
		}, cl.String())
		rejects.With(cl.String()) // pre-register so the series exists at zero
	}
	s.sched.SetObserver(sched.Observer{
		QueueDepth: func(tenant string, class sched.Class, depthNow int) {
			depth.With(tenant, class.String()).Set(float64(depthNow))
		},
		Wait: func(class sched.Class, d time.Duration) {
			classWait[class].Observe(d.Seconds())
		},
		Rejected: func(class sched.Class) {
			rejects.With(class.String()).Inc()
		},
	})

	reg.GaugeFunc("simd_cache_memory_entries", "Results held in the memory LRU.", func() float64 { return float64(s.cache.len()) })
	reg.GaugeFunc("simd_process_start_time_seconds", "Unix time the process started serving.", func() float64 { return float64(s.since.Unix()) })

	s.sweepRows = reg.Counter("simd_sweep_rows_total", "Sweep data rows streamed to clients.")
	s.sweepCheckpoints = reg.Counter("simd_sweep_checkpoints_total", "Sweep manifest checkpoints persisted.")
	s.sweepResumes = reg.Counter("simd_sweep_resumes_total", "Sweep resume streams served.")
	s.stolenResults = reg.Counter("simd_stolen_results_total", "Stolen-variant result bodies written back by a router.")

	if s.disk != nil {
		stat := func(pick func(st store.Stats) uint64) func() uint64 {
			return func() uint64 { return pick(s.disk.StatsSnapshot()) }
		}
		reg.GaugeFunc("simd_store_bytes", "Disk store payload bytes.", func() float64 { return float64(s.disk.StatsSnapshot().Bytes) })
		reg.GaugeFunc("simd_store_entries", "Disk store entries.", func() float64 { return float64(s.disk.Len()) })
		reg.CounterFunc("simd_store_hits_total", "Disk store Gets served.", stat(func(st store.Stats) uint64 { return st.Hits }))
		reg.CounterFunc("simd_store_misses_total", "Disk store Gets that found nothing.", stat(func(st store.Stats) uint64 { return st.Misses }))
		reg.CounterFunc("simd_store_writes_total", "Disk store Puts.", stat(func(st store.Stats) uint64 { return st.Writes }))
		reg.CounterFunc("simd_store_evictions_total", "Entries deleted by the size-budget GC.", stat(func(st store.Stats) uint64 { return st.Evictions }))
		reg.CounterFunc("simd_store_corrupt_total", "Envelopes rejected by verification.", stat(func(st store.Stats) uint64 { return st.Corrupt }))
		reg.CounterFunc("simd_store_corrupt_at_open_total", "Corrupt envelopes found while indexing at open.", stat(func(st store.Stats) uint64 { return st.CorruptAtOpen }))
		reg.CounterFunc("simd_store_index_loads_total", "Opens served from the persisted startup index (no per-envelope rescan).", stat(func(st store.Stats) uint64 { return st.IndexLoads }))
		reg.CounterFunc("simd_store_index_rebuilds_total", "Opens that fell back to a full directory rescan (missing or corrupt index).", stat(func(st store.Stats) uint64 { return st.IndexRebuilds }))
		reg.GaugeFunc("simd_store_index_bytes", "Bytes held by the persisted startup index file.", func() float64 { return float64(s.disk.StatsSnapshot().IndexBytes) })

		ops := reg.HistogramVec("simd_store_op_seconds", "Disk store operation latency.", obs.DefTimeBuckets, "op")
		get, put := ops.With("get"), ops.With("put")
		s.disk.SetObserver(func(op string, d time.Duration) {
			if op == "get" {
				get.Observe(d.Seconds())
			} else {
				put.Observe(d.Seconds())
			}
		})
	}
}

// Metrics returns the server's metric registry (the /metrics source;
// tests and embedding processes read through it).
func (s *Server) Metrics() *obs.Registry { return s.reg }

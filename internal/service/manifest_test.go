package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// decodeSweepRequest turns the map-shaped test grid into the typed
// request the manifest API works in.
func decodeSweepRequest(t *testing.T, req map[string]any) SweepRequest {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var typed SweepRequest
	if err := json.Unmarshal(buf, &typed); err != nil {
		t.Fatal(err)
	}
	return typed
}

// getJSON issues a GET and returns status, headers and body.
func getJSON(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// resumeStream reads GET /sweep/{id}/resume?after=N as a sweep
// stream, requiring status 200.
func resumeStream(t *testing.T, base, id string, after int) ([]SweepRow, SweepSummary, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/sweep/%s/resume?after=%d", base, id, after))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("resume status %d: %s", resp.StatusCode, body)
	}
	var rows []SweepRow
	summary, done, err := DecodeSweepStream(resp.Body, func(line []byte) error {
		var row SweepRow
		if err := json.Unmarshal(line, &row); err != nil {
			return err
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows, summary, done
}

func TestSweepIDDeterministicAndCanonical(t *testing.T) {
	req := decodeSweepRequest(t, gridRequest(60))
	id1, err := SweepID(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := SweepID(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("SweepID not deterministic: %q vs %q", id1, id2)
	}
	if !validSpecHash(id1) {
		t.Fatalf("SweepID %q is not a 64-hex digest", id1)
	}

	// "" and "tl" canonicalize to the same model, so the same sweep
	// keeps its identity however the client spells the default.
	blank := req
	blank.Model = ""
	idBlank, err := SweepID(blank, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idBlank != id1 {
		t.Fatalf("model \"\" and \"tl\" disagree: %q vs %q", idBlank, id1)
	}

	// Different axes are a different sweep.
	other := decodeSweepRequest(t, gridRequest(60))
	other.Axes = other.Axes[:1]
	idOther, err := SweepID(other, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idOther == id1 {
		t.Fatal("distinct grids share a sweep id")
	}
}

func TestSweepManifestStatusAndResume(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, Queue: 64})
	req := gridRequest(61)

	hdr, rows, _ := sweepBody(t, ts.URL, req)
	id := hdr.Get(SweepIDHeader)
	if !validSpecHash(id) {
		t.Fatalf("%s = %q, want a sweep id", SweepIDHeader, id)
	}
	want, err := SweepID(decodeSweepRequest(t, req), nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != want {
		t.Fatalf("header id %q != computed id %q", id, want)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}

	// Status after a complete stream: all 8 done, none failed,
	// complete.
	status, shdr, body := getJSON(t, ts.URL+"/sweep/"+id)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if shdr.Get(SweepIDHeader) != id {
		t.Fatalf("status %s = %q", SweepIDHeader, shdr.Get(SweepIDHeader))
	}
	var st SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Total != 8 || st.Variants != 8 || st.DoneCount != 8 || st.FailedCount != 0 || !st.Complete {
		t.Fatalf("status %+v, want 8/8 done complete", st)
	}

	// Resume past index 3: exactly indices 4..7, terminal summary.
	got, sum, done := resumeStream(t, ts.URL, id, 3)
	if !done || sum.Rows != 4 || len(got) != 4 {
		t.Fatalf("resume: done=%v summary=%+v rows=%d", done, sum, len(got))
	}
	for i, row := range got {
		if row.Index != 4+i {
			t.Fatalf("resume row %d has index %d, want %d", i, row.Index, 4+i)
		}
		if row.Cache != "hit" {
			t.Fatalf("resume row %d cache %q, want hit (already simulated)", i, row.Cache)
		}
	}

	// Duplicate offset: replay semantics make the same request
	// idempotent, byte-equal results included.
	again, sum2, done2 := resumeStream(t, ts.URL, id, 3)
	if !done2 || sum2 != sum || len(again) != len(got) {
		t.Fatalf("duplicate resume diverged: %+v vs %+v", sum2, sum)
	}
	for i := range got {
		if !bytes.Equal(got[i].Result, again[i].Result) {
			t.Fatalf("duplicate resume row %d not byte-identical", i)
		}
	}

	// Offset past the end: no rows, but still a well-formed terminal
	// summary (an empty replay is complete, not truncated).
	tail, sumTail, doneTail := resumeStream(t, ts.URL, id, 100)
	if !doneTail || len(tail) != 0 || sumTail.Rows != 0 {
		t.Fatalf("past-end resume: done=%v rows=%d summary=%+v", doneTail, len(tail), sumTail)
	}

	// after=-5 clamps to the full grid.
	full, _, _ := resumeStream(t, ts.URL, id, -5)
	if len(full) != 8 {
		t.Fatalf("clamped resume streamed %d rows, want 8", len(full))
	}
}

func TestSweepResumeRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	unknown := strings.Repeat("ab", 32)

	status, _, body := getJSON(t, ts.URL+"/sweep/"+unknown)
	if status != http.StatusNotFound || !strings.Contains(string(body), "re-POST") {
		t.Fatalf("unknown id status: %d %s", status, body)
	}
	status, _, body = getJSON(t, ts.URL+"/sweep/"+unknown+"/resume?after=0")
	if status != http.StatusNotFound {
		t.Fatalf("unknown id resume: %d %s", status, body)
	}
	status, _, body = getJSON(t, ts.URL+"/sweep/"+unknown+"/resume?after=three")
	if status != http.StatusBadRequest || !strings.Contains(string(body), "not an integer") {
		t.Fatalf("garbage offset: %d %s", status, body)
	}
}

func TestSweepCorruptManifestReenumeratesHonestly(t *testing.T) {
	// A manifest that fails validation must behave exactly like a
	// missing one: 404 from the id endpoints, and a re-POST of the
	// grid performs a full re-enumeration — the row count never
	// shrinks to whatever the corrupt bits claimed.
	srv, ts := newTestServer(t, Options{Workers: 4, Queue: 64})
	req := gridRequest(62)
	hdr, _, _ := sweepBody(t, ts.URL, req)
	id := hdr.Get(SweepIDHeader)

	// Overwrite the stored manifest with valid JSON of the wrong
	// shape (version 9, bogus totals).
	srv.persist(manifestKey(id), []byte(`{"version":9,"id":"`+id+`","total":-3}`))

	status, _, _ := getJSON(t, ts.URL+"/sweep/"+id)
	if status != http.StatusNotFound {
		t.Fatalf("corrupt manifest status %d, want 404", status)
	}
	status, _, _ = getJSON(t, ts.URL+"/sweep/"+id+"/resume?after=0")
	if status != http.StatusNotFound {
		t.Fatalf("corrupt manifest resume %d, want 404", status)
	}

	// Re-POST: the full 8-variant grid streams again (as cache hits)
	// and rebuilds the manifest.
	hdr2, rows, _ := sweepBody(t, ts.URL, req)
	if hdr2.Get(SweepIDHeader) != id {
		t.Fatalf("rebuilt sweep changed id: %q vs %q", hdr2.Get(SweepIDHeader), id)
	}
	if len(rows) != 8 {
		t.Fatalf("re-enumeration streamed %d rows, want the full 8", len(rows))
	}
	status, _, body := getJSON(t, ts.URL+"/sweep/"+id)
	if status != http.StatusOK {
		t.Fatalf("rebuilt manifest status %d: %s", status, body)
	}
	var st SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Complete || st.DoneCount != 8 {
		t.Fatalf("rebuilt manifest %+v, want complete 8", st)
	}
}

func TestSweepManifestPutMergesProgress(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := decodeSweepRequest(t, gridRequest(63))
	id, err := SweepID(req, nil)
	if err != nil {
		t.Fatal(err)
	}

	put := func(m *SweepManifest, pathID string) (int, []byte) {
		t.Helper()
		buf, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		httpReq, err := http.NewRequest(http.MethodPut, ts.URL+"/sweep/"+pathID, bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(httpReq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	m := &SweepManifest{
		Version: 1, ID: id, Request: req, Total: 8,
		Done: sweep.NewBitset(8), Failed: sweep.NewBitset(8),
	}
	for i := 0; i < 3; i++ {
		m.Done.Set(i)
	}
	if status, body := put(m, id); status != http.StatusNoContent {
		t.Fatalf("PUT status %d: %s", status, body)
	}

	status, _, body := getJSON(t, ts.URL+"/sweep/"+id)
	if status != http.StatusOK {
		t.Fatalf("status after PUT %d: %s", status, body)
	}
	var st SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.DoneCount != 3 || st.Complete {
		t.Fatalf("after first PUT %+v, want 3 done incomplete", st)
	}

	// A second PUT with disjoint bits unions, never clobbers.
	m2 := &SweepManifest{
		Version: 1, ID: id, Request: req, Total: 8,
		Done: sweep.NewBitset(8), Failed: sweep.NewBitset(8),
	}
	m2.Done.Set(5)
	m2.Failed.Set(1) // failure of an already-done variant is outranked
	if status, body := put(m2, id); status != http.StatusNoContent {
		t.Fatalf("second PUT status %d: %s", status, body)
	}
	status, _, body = getJSON(t, ts.URL+"/sweep/"+id)
	if status != http.StatusOK {
		t.Fatalf("status after merge %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.DoneCount != 4 || st.FailedCount != 0 {
		t.Fatalf("after merge %+v, want union of 4 done, 0 failed", st)
	}

	// A manifest whose ID disagrees with the path is rejected.
	if status, body := put(m2, strings.Repeat("cd", 32)); status != http.StatusBadRequest ||
		!strings.Contains(string(body), "does not describe") {
		t.Fatalf("mismatched-id PUT: %d %s", status, body)
	}
}

func TestResultsWriteBackReplaysByteIdentically(t *testing.T) {
	// Simulate a variant on one server, then POST its envelope into a
	// second (empty) server via /results under the same
	// content-addressed key. The second server must serve a direct
	// /run of that spec as a hit with the exact same bytes — the
	// property the router's work-stealing write-back depends on.
	_, src := newTestServer(t, Options{Workers: 1})
	_, dst := newTestServer(t, Options{Workers: 1})

	runReq := map[string]any{"spec": testSpec(64), "model": "tl"}
	status, hdr, envelope := post(t, src.URL+"/run", runReq)
	if status != http.StatusOK {
		t.Fatalf("source run status %d: %s", status, envelope)
	}
	hash := hdr.Get("X-Spec-Hash")
	key, err := ResultKey("tl", hash)
	if err != nil {
		t.Fatal(err)
	}

	httpReq, err := http.NewRequest(http.MethodPost, dst.URL+"/results", bytes.NewReader(envelope))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(ResultKeyHeader, key)
	httpReq.Header.Set(StolenHeader, "0->1")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("write-back status %d: %s", resp.StatusCode, body)
	}

	status, hdr2, replay := post(t, dst.URL+"/run", runReq)
	if status != http.StatusOK {
		t.Fatalf("replay status %d: %s", status, replay)
	}
	if hdr2.Get("X-Cache") != "hit" {
		t.Fatalf("replay X-Cache %q, want hit (write-back should have seeded the store)", hdr2.Get("X-Cache"))
	}
	if !bytes.Equal(envelope, replay) {
		t.Fatalf("write-back not byte-identical:\n%s\n%s", envelope, replay)
	}
}

func TestResultsProbeServesStoredBytes(t *testing.T) {
	// GET /results?key=... is the router's steal-avoidance probe: a
	// stored result answers 200 + X-Cache: hit with the exact stored
	// bytes, a cold key 404s, and a malformed key is rejected outright.
	_, ts := newTestServer(t, Options{Workers: 1})

	runReq := map[string]any{"spec": testSpec(65), "model": "rtl"}
	status, hdr, envelope := post(t, ts.URL+"/run", runReq)
	if status != http.StatusOK {
		t.Fatalf("run status %d: %s", status, envelope)
	}
	hash := hdr.Get("X-Spec-Hash")
	key, err := ResultKey("rtl", hash)
	if err != nil {
		t.Fatal(err)
	}

	status, phdr, probed := getJSON(t, ts.URL+"/results?key="+url.QueryEscape(key))
	if status != http.StatusOK {
		t.Fatalf("probe status %d: %s", status, probed)
	}
	if phdr.Get("X-Cache") != "hit" {
		t.Fatalf("probe X-Cache %q, want hit", phdr.Get("X-Cache"))
	}
	if !bytes.Equal(envelope, probed) {
		t.Fatalf("probe not byte-identical to the stored envelope:\n%s\n%s", envelope, probed)
	}

	// Same hash under the OTHER model: a valid key shape nothing has
	// computed — the probe must miss, not guess.
	coldKey, err := ResultKey("tl", hash)
	if err != nil {
		t.Fatal(err)
	}
	if status, _, body := getJSON(t, ts.URL+"/results?key="+url.QueryEscape(coldKey)); status != http.StatusNotFound {
		t.Fatalf("cold probe status %d, want 404: %s", status, body)
	}

	for _, bad := range []string{"", "run:TL:deadbeef", "sweep:" + hash} {
		if status, _, body := getJSON(t, ts.URL+"/results?key="+url.QueryEscape(bad)); status != http.StatusBadRequest {
			t.Fatalf("probe with key %q: status %d, want 400: %s", bad, status, body)
		}
	}
}

func TestResultsRejectsBadKeyAndBody(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	send := func(key string, body []byte) (int, []byte) {
		t.Helper()
		httpReq, err := http.NewRequest(http.MethodPost, ts.URL+"/results", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			httpReq.Header.Set(ResultKeyHeader, key)
		}
		resp, err := http.DefaultClient.Do(httpReq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	hash := strings.Repeat("ab", 32)
	if status, body := send("", []byte(`{}`)); status != http.StatusBadRequest {
		t.Fatalf("missing key: %d %s", status, body)
	}
	if status, body := send("run:TL:nothex", []byte(`{}`)); status != http.StatusBadRequest {
		t.Fatalf("bad hash: %d %s", status, body)
	}
	if status, body := send("secret:"+hash, []byte(`{}`)); status != http.StatusBadRequest {
		t.Fatalf("foreign prefix: %d %s", status, body)
	}
	if status, body := send("run:TL:"+hash, []byte(`{broken`)); status != http.StatusBadRequest {
		t.Fatalf("non-JSON body: %d %s", status, body)
	}
	if status, body := send("run:TL:"+hash, nil); status != http.StatusBadRequest {
		t.Fatalf("empty body: %d %s", status, body)
	}
}

func TestResultKeyShapes(t *testing.T) {
	hash := strings.Repeat("0f", 32)
	cases := []struct {
		model, want string
	}{
		{"", "run:TL:" + hash},
		{"tl", "run:TL:" + hash},
		{"tlm", "run:TL:" + hash},
		{"rtl", "run:RTL:" + hash},
		{"compare", "compare:" + hash},
	}
	for _, c := range cases {
		got, err := ResultKey(c.model, hash)
		if err != nil {
			t.Fatalf("ResultKey(%q): %v", c.model, err)
		}
		if got != c.want {
			t.Fatalf("ResultKey(%q) = %q, want %q", c.model, got, c.want)
		}
		if !ValidResultKey(got) {
			t.Fatalf("ValidResultKey(%q) = false", got)
		}
	}
	if _, err := ResultKey("tl", "short"); err == nil {
		t.Fatal("ResultKey accepted a bogus hash")
	}
	if _, err := ResultKey("warp", hash); err == nil {
		t.Fatal("ResultKey accepted a bogus model")
	}
	for _, bad := range []string{"", "run:TL:", "sweep:" + hash, "run:tl:" + hash, "run:TL:" + hash + "ff"} {
		if ValidResultKey(bad) {
			t.Fatalf("ValidResultKey(%q) = true", bad)
		}
	}
}

func TestStoredAnalyzeMatchesInlineAnalyze(t *testing.T) {
	// POST /sweep/{id}/analyze with a bare selector must produce the
	// byte-identical document to POST /sweep/analyze with the full
	// grid inlined — and, on a completed sweep, without simulating
	// anything.
	_, ts := newTestServer(t, Options{Workers: 4, Queue: 64})
	req := gridRequest(65)
	hdr, _, _ := sweepBody(t, ts.URL, req)
	id := hdr.Get(SweepIDHeader)

	inline := gridRequest(65)
	inline["metric"] = "cycles"
	inline["top_k"] = 3
	status, _, want := post(t, ts.URL+"/sweep/analyze", inline)
	if status != http.StatusOK {
		t.Fatalf("inline analyze status %d: %s", status, want)
	}

	sel := map[string]any{"metric": "cycles", "top_k": 3}
	status, ahdr, got := post(t, ts.URL+"/sweep/"+id+"/analyze", sel)
	if status != http.StatusOK {
		t.Fatalf("stored analyze status %d: %s", status, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("stored analyze differs from inline:\n%s\n%s", want, got)
	}
	if ahdr.Get(SweepIDHeader) != id {
		t.Fatalf("stored analyze %s = %q", SweepIDHeader, ahdr.Get(SweepIDHeader))
	}

	// Unknown id → 404; malformed selector → 400.
	status, _, body := post(t, ts.URL+"/sweep/"+strings.Repeat("ef", 32)+"/analyze", sel)
	if status != http.StatusNotFound {
		t.Fatalf("unknown stored analyze: %d %s", status, body)
	}
	status, _, body = post(t, ts.URL+"/sweep/"+id+"/analyze", map[string]any{"metric": "cycles", "axes": []string{"x"}, "bogus": 1})
	if status != http.StatusBadRequest || !strings.Contains(string(body), "analysis selector") {
		t.Fatalf("bad selector: %d %s", status, body)
	}
}

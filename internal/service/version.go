// GET /version: build identity and process age. The worker and the
// shard router both serve one (the router also embeds its own in the
// aggregated /healthz), so an operator can tell which revision every
// process in a cluster is running and how long it has been up —
// which, next to the per-shard restarts count, is how a counter reset
// after a respawn is told apart from a counter that really went
// backwards.
package service

import (
	"encoding/json"
	"net/http"
	"os"
	"runtime/debug"
	"time"
)

// VersionInfo is the body of GET /version.
type VersionInfo struct {
	// GoVersion is the toolchain that built this binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit the binary was built from (absent
	// when built outside a checkout, e.g. straight `go run` of sources
	// without VCS stamping).
	Revision string `json:"revision,omitempty"`
	// Dirty marks a build from a modified working tree.
	Dirty bool `json:"dirty,omitempty"`
	Pid   int  `json:"pid"`
	// Since is when this process started serving; monotonic per
	// process life, so a respawn is visible as a jump forward.
	Since         time.Time `json:"since"`
	UptimeSeconds float64   `json:"uptime_seconds"`
}

// ReadVersion builds the version document for a process that started
// serving at since.
func ReadVersion(since time.Time) VersionInfo {
	v := VersionInfo{Pid: os.Getpid(), Since: since, UptimeSeconds: time.Since(since).Seconds()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		v.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				v.Revision = s.Value
			case "vcs.modified":
				v.Dirty = s.Value == "true"
			}
		}
	}
	return v
}

// VersionHandler serves GET /version for a process that started at
// since — shared by the worker and the shard router.
func VersionHandler(since time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusMethodNotAllowed)
			json.NewEncoder(w).Encode(errorResponse{Error: "GET required"})
			return
		}
		body, _ := json.Marshal(ReadVersion(since))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	})
}

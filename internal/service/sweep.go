// POST /sweep: parameter-grid sweeps with per-row streaming.
//
// The request names a base workload (inline spec or library scenario)
// plus axis descriptors; the grid engine (internal/sweep) expands
// them into a deduplicated variant list, and the response streams one
// NDJSON row per variant as its simulation completes — not when the
// whole grid is done. Every variant consults the full cache path
// (memory LRU, disk store, in-flight coalescing) before costing a
// simulation, and runs through the same weighted-fair scheduler as
// /run and /compare — under the Batch class (unless X-Class says
// otherwise), so a deep sweep fills its own class queue while
// interactive requests keep their weighted share of the workers.
// When the batch queue saturates, a sweep row waits out the BATCH
// class's Retry-After and retries instead of failing the stream, so
// sweeps apply backpressure to themselves rather than starving
// interactive requests of their 503 signal.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// DefaultMaxSweepVariants bounds one sweep request's full Cartesian
// product when Options.MaxSweepVariants is unset (the -max-sweep-
// variants flag). The engine's own hard bound (sweep.MaxVariants) is
// an upper limit on top. Grids this size are processed in bounded
// chunks (sweepChunkSize variants in memory at a time), so the cap
// protects simulation budget, not process memory.
const DefaultMaxSweepVariants = 100_000

// sweepChunkSize is how many expanded variants a sweep holds in
// memory at once: the grid is walked lazily and resolved chunk by
// chunk, so a 100k-variant sweep costs O(chunk), not O(grid).
const sweepChunkSize = 2048

// manifestCheckpointRows is how many emitted rows ride between
// manifest checkpoints. Small enough that a killed stream loses
// little progress, large enough that checkpoint writes stay noise
// next to simulation cost.
const manifestCheckpointRows = 256

// SweepRequest is the body of POST /sweep — the wire contract shared
// with frontends (the shard router decodes one to partition its grid).
// Exactly one of Base and Scenario selects the base workload the axes
// are applied to.
type SweepRequest struct {
	// Base is an inline base workload spec.
	Base *spec.Spec `json:"base,omitempty"`
	// Scenario names a base spec from the built-in library.
	Scenario string `json:"scenario,omitempty"`
	// Name prefixes variant names (default: the base spec's name).
	Name string `json:"name,omitempty"`
	// Model selects what each variant runs: "tl" (default), "rtl", or
	// "compare" (both models, one accuracy row per variant).
	Model string `json:"model,omitempty"`
	// Axes are the swept dimensions (sweep.Apply parameter names).
	Axes []SweepAxis `json:"axes"`
}

// SweepAxis is one wire-form axis: a parameter name and its values.
type SweepAxis struct {
	Param  string `json:"param"`
	Values []any  `json:"values"`
}

// SweepRow is one NDJSON line of the /sweep response, emitted when
// the variant's result is ready. Result carries the exact cached body
// of the variant's /run or /compare response (so a sweep row and a
// direct request are byte-identical where they overlap); Cache is the
// row's disposition — "hit", "coalesced" or "miss" — and is omitted
// on error rows (Error set, no result to attribute).
type SweepRow struct {
	Index  int             `json:"index"`
	Name   string          `json:"name"`
	Hash   string          `json:"hash"`
	Params map[string]any  `json:"params"`
	Cache  string          `json:"cache,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// SweepSummary is the terminal NDJSON line of a completed /sweep
// stream: Done is always true, Rows counts the data rows emitted
// before it and Errors how many of those carried an error field. A
// stream that ends *without* this line was truncated — the connection
// dropped, the handler died, a shard vanished — and the rows received
// must not be mistaken for the whole grid. (Data rows never set Done,
// so the two line shapes cannot be confused.)
type SweepSummary struct {
	Done   bool `json:"done"`
	Rows   int  `json:"rows"`
	Errors int  `json:"errors"`
}

// resolveSweepBase picks the base workload: an inline spec or a
// library-scenario name looked up in byName, exactly one of them.
func resolveSweepBase(req SweepRequest, byName map[string]spec.Spec) (spec.Spec, error) {
	switch {
	case req.Base != nil && req.Scenario != "":
		return spec.Spec{}, errors.New("request has both base and scenario; send one")
	case req.Base != nil:
		return *req.Base, nil
	case req.Scenario != "":
		found, ok := byName[req.Scenario]
		if !ok {
			return spec.Spec{}, fmt.Errorf("unknown scenario %q", req.Scenario)
		}
		return found, nil
	}
	return spec.Spec{}, errors.New("request needs a base spec or a scenario name")
}

// ResolveSweepGrid is the ONE place a sweep request becomes an engine
// grid: it resolves the base workload, builds the axes, sizes the
// full Cartesian product against max (<= 0: DefaultMaxSweepVariants)
// and pre-validates every axis value against a clone of the base —
// all without expanding a single variant. The backend handler and the
// shard router both call it, so the two tiers of a deployment accept
// exactly the same grids and enforce exactly the same cap; the old
// duplicated per-tier checks could (and briefly did) drift. Returns
// the grid and the product size.
func ResolveSweepGrid(req SweepRequest, byName map[string]spec.Spec, max int) (sweep.Grid, int, error) {
	base, err := resolveSweepBase(req, byName)
	if err != nil {
		return sweep.Grid{}, 0, err
	}
	grid := sweep.Grid{Name: req.Name, Base: base}
	for _, ax := range req.Axes {
		vals := make([]sweep.Value, len(ax.Values))
		for i, v := range ax.Values {
			vals[i] = sweep.Value{V: v}
		}
		grid.Axes = append(grid.Axes, sweep.Axis{Param: ax.Param, Values: vals})
	}
	total, err := grid.Total()
	if err != nil {
		return grid, 0, err
	}
	if max <= 0 {
		max = DefaultMaxSweepVariants
	}
	if total > max {
		return grid, 0, fmt.Errorf("grid expands to %d variants (max %d)", total, max)
	}
	// Pre-flight every axis value against the base: an unknown
	// parameter or a mistyped value fails the request with a 400
	// before the stream commits, exactly as full expansion used to,
	// at O(axis values) cost. Combination-dependent failures (legal
	// values that conflict mid-grid) surface later as error rows.
	for _, ax := range grid.Axes {
		for _, v := range ax.Values {
			sp := base.Clone()
			if err := sweep.Apply(&sp, ax.Param, v.V); err != nil {
				return grid, 0, fmt.Errorf("sweep: axis %q value %v: %w", ax.Param, v.V, err)
			}
		}
	}
	return grid, total, nil
}

// ExpandSweepRequest resolves and fully materializes the request's
// deduplicated variant list, enforcing max (<= 0:
// DefaultMaxSweepVariants). Streaming paths walk the grid in chunks
// instead; this remains for callers that need the whole list (tests,
// offline tools).
func ExpandSweepRequest(req SweepRequest, byName map[string]spec.Spec, max int) ([]sweep.Variant, error) {
	grid, _, err := ResolveSweepGrid(req, byName, max)
	if err != nil {
		return nil, err
	}
	return grid.Expand()
}

// sweepModel resolves the request's model selector.
func sweepModel(name string) (model core.Model, compare bool, err error) {
	switch name {
	case "", "tl", "tlm":
		return core.TLM, false, nil
	case "rtl":
		return core.RTL, false, nil
	case "compare":
		return core.TLM, true, nil
	}
	return 0, false, fmt.Errorf("unknown model %q (want tl, rtl or compare)", name)
}

// handleSweep serves POST /sweep.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	id, err := s.requestIdent(r, sched.Batch)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	s.streamSweep(w, r, req, -1, id)
}

// streamSweep validates the grid and streams its NDJSON rows — the
// shared engine of POST /sweep (after = -1: the whole grid) and GET
// /sweep/{id}/resume (after = the client's high-water mark). Variants
// execute under rid (normally the caller's tenant in the Batch
// class). It checkpoints a sweep manifest as rows complete, so the
// sweep's identity and per-variant progress survive this stream's
// death.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, req SweepRequest, after int, rid ident) {
	grid, total, err := ResolveSweepGrid(req, s.scenarioByName, s.maxSweepVariants)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if err := CheckGridCycleCaps(grid, s.checkCycleCap); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	model, compare, err := sweepModel(req.Model)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := SweepID(req, s.scenarioByName)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	man := s.loadOrNewManifest(id, req, total)

	// The stream is committed: from here, per-variant failures are
	// rows with an error field, not HTTP errors.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Variants", strconv.Itoa(total))
	w.Header().Set(SweepIDHeader, id)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// Push the headers out now: on an all-miss grid no row may flush
	// for a while, and a client (or the shard router) pacing itself on
	// X-Sweep-Variants must not block on a header buffered server-side.
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	emitted, errored, sinceCheckpoint := 0, 0, 0
	emit := func(row SweepRow) {
		enc.Encode(row)
		if flusher != nil {
			flusher.Flush()
		}
		s.sweepRows.Inc()
		emitted++
		if row.Error != "" {
			errored++
			man.Failed.Set(row.Index)
		} else {
			man.Done.Set(row.Index)
			man.Failed.Clear(row.Index)
		}
		if sinceCheckpoint++; sinceCheckpoint >= manifestCheckpointRows {
			sinceCheckpoint = 0
			s.checkpointManifest(man)
		}
	}

	// Client gone mid-grid: no terminal row — a truncated stream IS
	// truncated, and saying otherwise to a half-closed socket helps
	// nobody. The final checkpoint still runs: progress made before
	// the disconnect is exactly what a resume wants to skip.
	distinct, complete := s.collectGrid(r.Context(), grid, after, model, compare, rid, emit)
	if complete {
		// The terminal summary row runs only when every variant
		// produced a row — nothing here fakes completion.
		enc.Encode(SweepSummary{Done: true, Rows: emitted, Errors: errored})
		if flusher != nil {
			flusher.Flush()
		}
		// A completed walk knows the deduplicated variant count even
		// when it only EMITTED a suffix — the walk itself always
		// enumerates from index 0 — so a resume that reaches the end
		// can mark the sweep complete just like the initial stream.
		man.Variants = distinct
	}
	s.checkpointManifest(man)
}

// collectGrid walks the grid lazily and resolves it in bounded
// chunks: at most sweepChunkSize expanded variants exist at a time,
// so grid memory stays O(chunk) while the emit contract matches the
// old fully-materialized path row for row. Variants with Index <=
// after are skipped (their rows streamed before a disconnect); build
// failures on individual grid points become error rows, not stream
// deaths. Returns the deduplicated variant count of the FULL walk
// (valid only when complete) and whether the walk finished before
// ctx ended.
func (s *Server) collectGrid(ctx context.Context, grid sweep.Grid, after int, model core.Model, compare bool, id ident, emit func(SweepRow)) (distinct int, complete bool) {
	chunk := make([]sweep.Variant, 0, sweepChunkSize)
	flush := func() bool {
		if len(chunk) == 0 {
			return true
		}
		ok := s.collectRows(ctx, chunk, model, compare, id, emit)
		chunk = chunk[:0]
		return ok
	}
	err := grid.Walk(func(v sweep.Variant, verr error) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if verr != nil {
			if v.Index > after {
				emit(SweepRow{Index: v.Index, Name: v.Spec.Name, Params: v.Params, Error: verr.Error()})
			}
			return nil
		}
		distinct++
		if v.Index <= after {
			return nil
		}
		chunk = append(chunk, v)
		if len(chunk) >= sweepChunkSize {
			if !flush() {
				return context.Canceled
			}
		}
		return nil
	})
	if err != nil {
		return distinct, false
	}
	return distinct, flush()
}

// collectRows resolves one chunk of variants through the shared
// cache/singleflight/pool path and invokes emit — always from this
// goroutine — once per variant in completion order. It is the one
// chunk-resolution engine behind /sweep, /sweep/{id}/resume and both
// analyze endpoints (via collectGrid), so none of them can diverge
// on caching, backpressure or failure semantics. Returns false when
// ctx ended first — the row set is then a subset and must not be
// read as the whole chunk.
func (s *Server) collectRows(ctx context.Context, variants []sweep.Variant, model core.Model, compare bool, id ident, emit func(SweepRow)) bool {
	// First pass: serve every memory-cached variant immediately, so a
	// warm sweep streams at memory speed no matter how busy the pool
	// is, and collect the rest for the workers. Disk-held variants
	// resolve in the worker pass — executeOnce's lookup finds them
	// without touching the pool, so they also stream while it is
	// saturated, and the disk tier is probed exactly once per variant.
	var pending []sweep.Variant
	for _, v := range variants {
		if body, ok := s.lookupMemory(s.sweepKey(v, model, compare)); ok {
			emit(sweepRow(v, "hit", http.StatusOK, body))
			continue
		}
		pending = append(pending, v)
	}

	// Second pass: resolve the misses concurrently (bounded by the
	// worker count — the pool's queue bound stays the real limiter)
	// and hand rows over in completion order.
	if len(pending) == 0 {
		return true
	}
	rows := make(chan SweepRow)
	work := make(chan sweep.Variant)
	workersN := min(s.workers, len(pending))
	for i := 0; i < workersN; i++ {
		go func() {
			for v := range work {
				row, ok := s.resolveVariant(ctx, v, model, compare, id)
				if !ok {
					return // client gone; in-flight jobs still fill the cache
				}
				select {
				case rows <- row:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(work)
		for _, v := range pending {
			select {
			case work <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
	for n := 0; n < len(pending); n++ {
		select {
		case row := <-rows:
			emit(row)
		case <-ctx.Done():
			return false
		}
	}
	return true
}

// sweepKey is the cache key a variant's result lives under — the same
// key a direct /run or /compare of that spec uses, so sweeps and
// single requests share one result space.
func (s *Server) sweepKey(v sweep.Variant, model core.Model, compare bool) string {
	if compare {
		return compareKey(v.Hash)
	}
	return runKey(model, v.Hash)
}

// resolveVariant computes (or replays) one variant through the shared
// execute path, retrying with backoff while its class queue is
// saturated. ok=false means the request context ended first.
func (s *Server) resolveVariant(ctx context.Context, v sweep.Variant, model core.Model, compare bool, id ident) (SweepRow, bool) {
	// Compile the spec inside the job, not here: a warm variant is
	// answered from a cache tier or a coalesced flight without paying
	// generator compilation (a restarted server replaying a big grid
	// from disk compiles nothing). Expand already validated the spec,
	// so a FromSpec failure is a programming error the job surfaces as
	// its panic-captured 500 body.
	compute := func(jobCtx context.Context, tm *Timing) ([]byte, error) {
		wl, err := core.FromSpec(v.Spec)
		if err != nil {
			return nil, err
		}
		if compare {
			return computeCompare(v.Spec, v.Hash, wl)(jobCtx, tm)
		}
		return computeRun(v.Spec, v.Hash, model, wl)(jobCtx, tm)
	}
	key := s.sweepKey(v, model, compare)
	for attempt := 0; ; attempt++ {
		status, body, disposition, _, err := s.executeOnce(ctx, key, id, compute, attempt > 0)
		if err != nil {
			return SweepRow{}, false
		}
		if status != http.StatusServiceUnavailable {
			return sweepRow(v, disposition, status, body), true
		}
		if disposition == dispositionClosed {
			// The scheduler is shut down, not busy: emit the failure as
			// the row instead of retrying against a terminal condition.
			return sweepRow(v, "", status, body), true
		}
		// Saturated: the sweep absorbs its own backpressure instead of
		// surfacing a mid-stream 503 row. The wait honors the SAME
		// number a 503 response would have advertised in Retry-After —
		// this request's OWN class backlog (a batch sweep backs off on
		// batch depth, never on interactive load), clamped exactly
		// like the shard router's retries — not a hardcoded
		// millisecond loop that hammers a saturated queue dozens of
		// times a second per pending variant.
		if !sleepFor(ctx, RetryWaitSeconds(s.sched.RetryAfterSeconds(id.class))) {
			return SweepRow{}, false
		}
	}
}

// sweepRow renders one emitted row. Non-200 statuses surface the
// body's error message in the row's error field.
func sweepRow(v sweep.Variant, disposition string, status int, body []byte) SweepRow {
	row := SweepRow{
		Index:  v.Index,
		Name:   v.Spec.Name,
		Hash:   v.Hash,
		Params: v.Params,
	}
	if status == http.StatusOK {
		row.Cache = disposition
		row.Result = json.RawMessage(body)
		return row
	}
	var e errorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		row.Error = e.Error
	} else {
		row.Error = fmt.Sprintf("status %d", status)
	}
	return row
}

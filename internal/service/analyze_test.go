package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/agg"
)

// analyzeRequest is the canonical 8-variant grid plus an analysis
// selector: argmin cycles, top-3, cycles-vs-throughput frontier.
func analyzeRequest(salt int) map[string]any {
	req := gridRequest(salt)
	req["metric"] = "cycles"
	req["top_k"] = 3
	req["frontier"] = map[string]any{"x": "cycles", "y": "throughput", "y_objective": "max"}
	return req
}

func TestAnalyzeEndpointAggregatesGrid(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 4, Queue: 64})

	// Run the grid as a plain sweep first: the analysis must agree
	// with an argmin computed by hand from the raw rows, and must be
	// served from the same result space (zero extra jobs).
	_, rows, _ := sweepBody(t, ts.URL, gridRequest(40))
	wantBest := ""
	wantCycles := float64(0)
	for _, row := range rows {
		var res RunResponse
		if err := json.Unmarshal(row.Result, &res); err != nil {
			t.Fatal(err)
		}
		c := float64(res.Cycles)
		if wantBest == "" || c < wantCycles || (c == wantCycles && row.Hash < wantBest) {
			wantBest, wantCycles = row.Hash, c
		}
	}
	jobsAfterSweep := srv.CountersSnapshot().Jobs

	status, hdr, body := post(t, ts.URL+"/sweep/analyze", analyzeRequest(40))
	if status != http.StatusOK {
		t.Fatalf("analyze status %d: %s", status, body)
	}
	if hdr.Get("X-Sweep-Variants") != "8" || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("headers %v", hdr)
	}
	var doc agg.Analysis
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Variants != 8 || doc.Analyzed != 8 || doc.Incomplete || len(doc.Failed) != 0 {
		t.Fatalf("completeness %+v", doc)
	}
	if doc.Best == nil || doc.Best.Hash != wantBest || doc.Best.Value != wantCycles {
		t.Fatalf("best %+v, want hash %s value %v", doc.Best, wantBest, wantCycles)
	}
	if len(doc.Top) != 3 || doc.Top[0].Hash != wantBest {
		t.Fatalf("top %+v", doc.Top)
	}
	if len(doc.Groups) != 2 || doc.Groups[0].Param != "write_buffer_depth" || doc.Groups[1].Param != "bi_enabled" {
		t.Fatalf("groups %+v", doc.Groups)
	}
	for _, g := range doc.Groups {
		for _, cell := range g.Values {
			if cell.Count == 0 || cell.Mean == nil {
				t.Fatalf("axis %s cell %+v empty on a full grid", g.Param, cell)
			}
		}
	}
	if doc.Frontier == nil || len(doc.Frontier.Points) == 0 {
		t.Fatal("frontier missing")
	}
	if jobs := srv.CountersSnapshot().Jobs; jobs != jobsAfterSweep {
		t.Fatalf("analyze re-simulated: jobs %d -> %d", jobsAfterSweep, jobs)
	}

	// The document is deterministic: a repeat analysis (all cache
	// hits, arbitrary completion order) is byte-identical.
	status2, _, body2 := post(t, ts.URL+"/sweep/analyze", analyzeRequest(40))
	if status2 != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatalf("repeat analysis differs (status %d):\n%s\n%s", status2, body, body2)
	}
}

func TestAnalyzeColdGridComputesAndWarmsCache(t *testing.T) {
	// A cold analyze runs the grid itself (sharing the pool/cache
	// path) and leaves the rows warm for a subsequent /sweep.
	srv, ts := newTestServer(t, Options{Workers: 4, Queue: 64})
	status, _, body := post(t, ts.URL+"/sweep/analyze", analyzeRequest(41))
	if status != http.StatusOK {
		t.Fatalf("analyze status %d: %s", status, body)
	}
	if jobs := srv.CountersSnapshot().Jobs; jobs != 8 {
		t.Fatalf("cold analyze ran %d jobs, want 8", jobs)
	}
	_, rows, _ := sweepBody(t, ts.URL, gridRequest(41))
	for _, row := range rows {
		if row.Cache != "hit" {
			t.Fatalf("post-analyze sweep row %s disposition %q, want hit", row.Name, row.Cache)
		}
	}
}

func TestAnalyzeCompareModel(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	req := map[string]any{
		"base":  testSpec(42),
		"model": "compare",
		"axes": []map[string]any{
			{"param": "pipelining", "values": []bool{true, false}},
		},
		"metric": "abs_diff_pct",
	}
	status, _, body := post(t, ts.URL+"/sweep/analyze", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var doc agg.Analysis
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Analyzed != 2 || doc.Best == nil || doc.Metric != "abs_diff_pct" {
		t.Fatalf("doc %+v", doc)
	}
}

func TestAnalyzeRequestErrors(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		req  map[string]any
		want string
	}{
		{"unknown metric", withField(analyzeRequest(43), "metric", "warp"), "unknown metric"},
		{"compare metric on run model", withField(analyzeRequest(43), "metric", "rtl_cycles"), "unknown metric"},
		{"bad objective", withField(analyzeRequest(43), "objective", "best"), "unknown objective"},
		{"bad frontier", withField(analyzeRequest(43), "frontier", map[string]any{"x": "cycles"}), "both x and y"},
		{"no base", map[string]any{"metric": "cycles"}, "base spec or a scenario"},
		{"bad model", withField(analyzeRequest(43), "model", "spice"), "unknown model"},
	}
	for _, c := range cases {
		status, _, body := post(t, ts.URL+"/sweep/analyze", c.req)
		if status != http.StatusBadRequest || !strings.Contains(string(body), c.want) {
			t.Errorf("%s: status %d body %s", c.name, status, body)
		}
	}
	// Selector validation happens BEFORE the grid costs anything.
	if jobs := srv.CountersSnapshot().Jobs; jobs != 0 {
		t.Fatalf("bad requests burned %d simulations", jobs)
	}
	resp, err := http.Get(ts.URL + "/sweep/analyze")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /sweep/analyze: %d", resp.StatusCode)
	}
}

// withField copies a request map with one field overridden.
func withField(req map[string]any, key string, v any) map[string]any {
	out := make(map[string]any, len(req)+1)
	for k, val := range req {
		out[k] = val
	}
	out[key] = v
	return out
}

func TestRetryWaitParsesAndClamps(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"2", 2 * time.Second},                              // honored verbatim
		{"0", MinRetryWait},                                 // "soon", not busy-loop
		{"1", time.Second},                                  // the idle-server base
		{"60", MaxRetryWait},                                // capped
		{"", DefaultRetryWait},                              // missing header
		{"soon", DefaultRetryWait},                          // garbage
		{"1.5", DefaultRetryWait},                           // non-integer
		{"-3", DefaultRetryWait},                            // negative nonsense
		{"Wed, 21 Oct 2198 07:28:00 GMT", DefaultRetryWait}, // HTTP-date form: unparsed, default — never the floor
	}
	for _, c := range cases {
		if got := RetryWait(c.header); got != c.want {
			t.Errorf("RetryWait(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}
